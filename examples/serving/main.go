// Trigger-based serving: the paper's §2.2 deployment model end to end.
// A continuous update feed flows through a deadline-bounded Batcher into
// the engine with label tracking on; subscribers receive push
// notifications the moment any vertex's prediction flips — no polling, no
// recomputation on read.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"ripple"
)

const (
	numUsers = 2000
	featDim  = 12
	classes  = 4 // content cohorts for recommendation
)

func main() {
	rng := rand.New(rand.NewSource(33))

	// A follower graph with heavy-tailed popularity.
	g := ripple.NewGraph(numUsers)
	for added := 0; added < numUsers*6; {
		u := popular(rng)
		v := popular(rng)
		if u != v {
			if err := g.AddEdge(u, v, 1); err == nil {
				added++
			}
		}
	}
	features := make([]ripple.Vector, numUsers)
	for i := range features {
		features[i] = ripple.NewVector(featDim)
		for j := range features[i] {
			features[i][j] = rng.Float32()*2 - 1
		}
	}
	model, err := ripple.NewModel("GC-M", []int{featDim, 24, classes}, 3)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, features, ripple.WithLabelTracking())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d users, cohort model %s\n", numUsers, model)

	// Subscribers: notified on every cohort flip of a watched user.
	watched := map[ripple.VertexID]bool{}
	for i := 0; i < 50; i++ {
		watched[popular(rng)] = true
	}
	var mu sync.Mutex
	notifications := 0
	batches := 0
	onBatch := func(res ripple.BatchResult, err error) {
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		batches++
		for _, lc := range res.LabelChanges {
			if watched[lc.Vertex] {
				notifications++
				if notifications <= 5 {
					fmt.Printf("  push → user %d moved cohort %d→%d (batch of %d updates, %v)\n",
						lc.Vertex, lc.Old, lc.New, res.Updates, (res.UpdateTime + res.PropagateTime).Round(time.Microsecond))
				}
			}
		}
	}

	// Dynamic batching: flush at 64 updates or 5ms staleness, whichever
	// first — the paper's §8 latency-deadline extension.
	batcher, err := ripple.NewBatcher(eng, 64, 5*time.Millisecond, onBatch)
	if err != nil {
		log.Fatal(err)
	}

	// The live feed: follows/unfollows and interest drift.
	start := time.Now()
	const totalUpdates = 3000
	for i := 0; i < totalUpdates; i++ {
		switch rng.Intn(3) {
		case 0: // interest drift
			u := popular(rng)
			f := ripple.NewVector(featDim)
			for j := range f {
				f[j] = rng.Float32()*2 - 1
			}
			if err := batcher.Submit(ripple.Update{Kind: ripple.FeatureUpdate, U: u, Features: f}); err != nil {
				log.Fatal(err)
			}
		default: // new follow
			u, v := popular(rng), popular(rng)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := batcher.Submit(ripple.Update{Kind: ripple.EdgeAdd, U: u, V: v, Weight: 1}); err != nil {
				log.Fatal(err)
			}
		}
	}
	batcher.Close()
	elapsed := time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nprocessed ~%d updates in %v (%.0f up/s) across %d dynamic batches\n",
		totalUpdates, elapsed.Round(time.Millisecond), float64(totalUpdates)/elapsed.Seconds(), batches)
	fmt.Printf("%d push notifications delivered for %d watched users\n", notifications, len(watched))
}

func popular(rng *rand.Rand) ripple.VertexID {
	f := rng.Float64()
	return ripple.VertexID(int(f * f * numUsers))
}
