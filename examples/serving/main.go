// Trigger-based serving: the paper's §2.2 deployment model end to end,
// on the snapshot-isolated concurrent serving layer.
//
// A continuous update feed flows through the serving layer's admission
// queue into the engine; subscribers receive push notifications the
// moment any vertex's prediction flips — no polling, no recomputation on
// read. Meanwhile a pool of reader goroutines serves lock-free label
// lookups from published snapshots the whole time: reads never wait for
// an applying batch and each read observes one consistent epoch.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ripple"
)

const (
	numUsers = 2000
	featDim  = 12
	classes  = 4 // content cohorts for recommendation
)

func main() {
	rng := rand.New(rand.NewSource(33))

	// A follower graph with heavy-tailed popularity. follows shadows the
	// engine-owned topology so the feeder never submits duplicate edges.
	g := ripple.NewGraph(numUsers)
	follows := map[[2]ripple.VertexID]bool{}
	for added := 0; added < numUsers*6; {
		u := popular(rng)
		v := popular(rng)
		if u != v {
			if err := g.AddEdge(u, v, 1); err == nil {
				follows[[2]ripple.VertexID{u, v}] = true
				added++
			}
		}
	}
	features := make([]ripple.Vector, numUsers)
	for i := range features {
		features[i] = ripple.NewVector(featDim)
		for j := range features[i] {
			features[i][j] = rng.Float32()*2 - 1
		}
	}
	model, err := ripple.NewModel("GC-M", []int{featDim, 24, classes}, 3)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic batching: flush at 64 updates or 5ms staleness, whichever
	// first — the paper's §8 latency-deadline extension. 128-row snapshot
	// pages put the 2000 users on 16 pages, so each published epoch
	// copies only the pages its batch touched (see the receipt below).
	srv, err := ripple.Serve(eng, ripple.WithAdmission(64, 5*time.Millisecond), ripple.WithPageRows(128))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d users, cohort model %s\n", numUsers, model)

	// Subscribers: notified on every cohort flip of a watched user.
	watched := map[ripple.VertexID]bool{}
	for i := 0; i < 50; i++ {
		watched[popular(rng)] = true
	}
	flips, cancel := srv.Subscribe(4096)
	defer cancel()
	var notifyWG sync.WaitGroup
	notifyWG.Add(1)
	notifications := 0
	go func() {
		defer notifyWG.Done()
		for lc := range flips {
			if watched[lc.Vertex] {
				notifications++
				if notifications <= 5 {
					fmt.Printf("  push → user %d moved cohort %d→%d (epoch %d)\n",
						lc.Vertex, lc.Old, lc.New, srv.Snapshot().Epoch())
				}
			}
		}
	}()

	// The read side: 8 recommendation workers hammering lock-free label
	// lookups while the write stream applies underneath them.
	var stopReaders atomic.Bool
	var reads atomic.Int64
	var readerWG sync.WaitGroup
	for r := 0; r < 8; r++ {
		readerWG.Add(1)
		go func(seed int64) {
			defer readerWG.Done()
			rr := rand.New(rand.NewSource(seed))
			for !stopReaders.Load() {
				u := popular(rr)
				if srv.Label(u) >= 0 {
					reads.Add(1)
				}
			}
		}(int64(r))
	}

	// The live feed: follows and interest drift through the admission
	// queue.
	start := time.Now()
	const totalUpdates = 3000
	for i := 0; i < totalUpdates; i++ {
		switch rng.Intn(3) {
		case 0: // interest drift
			u := popular(rng)
			f := ripple.NewVector(featDim)
			for j := range f {
				f[j] = rng.Float32()*2 - 1
			}
			if err := srv.Submit(ripple.Update{Kind: ripple.FeatureUpdate, U: u, Features: f}); err != nil {
				log.Fatal(err)
			}
		default: // new follow
			u, v := popular(rng), popular(rng)
			key := [2]ripple.VertexID{u, v}
			if u == v || follows[key] {
				continue
			}
			follows[key] = true
			if err := srv.Submit(ripple.Update{Kind: ripple.EdgeAdd, U: u, V: v, Weight: 1}); err != nil {
				log.Fatal(err)
			}
		}
	}
	srv.Close() // flushes the queue, closes the flip channel
	elapsed := time.Since(start)
	notifyWG.Wait()
	stopReaders.Store(true)
	readerWG.Wait()

	st := srv.Stats()
	fmt.Printf("\nprocessed %d updates in %v (%.0f up/s) across %d dynamic batches (final epoch %d)\n",
		st.UpdatesApplied, elapsed.Round(time.Millisecond), float64(st.UpdatesApplied)/elapsed.Seconds(), st.Batches, st.Epoch)
	fmt.Printf("%d lock-free label reads served concurrently with the update stream\n", reads.Load())
	fmt.Printf("%d cohort flips published, %d push notifications delivered for %d watched users\n",
		st.LabelFlips, notifications, len(watched))
	// The paged publisher's receipt: every shared page is a page the old
	// whole-table-clone design would have memmoved on that epoch.
	if total := st.PagesCopied + st.PagesShared; total > 0 {
		fmt.Printf("paged publication: %d pages copied, %d shared (%.1f%% of page publishes avoided a copy)\n",
			st.PagesCopied, st.PagesShared, 100*float64(st.PagesShared)/float64(total))
	}
}

func popular(rng *rand.Rand) ripple.VertexID {
	f := rng.Float64()
	return ripple.VertexID(int(f * f * numUsers))
}
