// Traffic-flow prediction on a road network — the paper's weighted-sum
// scenario (§1): junction ETAs depend on neighbouring flows weighted by
// live congestion, and the weights change continuously.
//
// Junctions are vertices on a grid road network; directed edges carry a
// congestion coefficient as the aggregation weight (GC-W workload). A
// congestion change is streamed as delete+re-add with the new weight in
// one batch, which the engine applies exactly.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ripple"
)

const (
	side    = 40 // 40×40 junction grid
	featDim = 12
	classes = 5 // congestion level predicted per junction
)

func main() {
	n := side * side
	rng := rand.New(rand.NewSource(11))

	// Grid topology: each junction feeds its east and south neighbours,
	// with congestion weights in [0.5, 1.5).
	g := ripple.NewGraph(n)
	type road struct {
		u, v ripple.VertexID
		w    float32
	}
	var roads []road
	addRoad := func(u, v ripple.VertexID) {
		w := 0.5 + rng.Float32()
		if err := g.AddEdge(u, v, w); err != nil {
			log.Fatal(err)
		}
		roads = append(roads, road{u, v, w})
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			u := ripple.VertexID(r*side + c)
			if c+1 < side {
				addRoad(u, u+1)
				addRoad(u+1, u)
			}
			if r+1 < side {
				addRoad(u, u+ripple.VertexID(side))
				addRoad(u+ripple.VertexID(side), u)
			}
		}
	}

	// Junction features: sensor statistics.
	features := make([]ripple.Vector, n)
	for i := range features {
		features[i] = ripple.NewVector(featDim)
		for j := range features[i] {
			features[i][j] = rng.Float32()
		}
	}

	model, err := ripple.NewModel("GC-W", []int{featDim, 24, classes}, 5)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions, %d road segments\n", n, len(roads))

	// Rush hour: every tick, a handful of segments change congestion. A
	// weight change is an exact delete + re-add pair within one batch.
	var relabelled int
	start := time.Now()
	const ticks = 30
	for tick := 0; tick < ticks; tick++ {
		batch := make([]ripple.Update, 0, 16)
		for i := 0; i < 8; i++ {
			ri := rng.Intn(len(roads))
			newW := 0.5 + rng.Float32()
			batch = append(batch,
				ripple.Update{Kind: ripple.EdgeDelete, U: roads[ri].u, V: roads[ri].v},
				ripple.Update{Kind: ripple.EdgeAdd, U: roads[ri].u, V: roads[ri].v, Weight: newW},
			)
			roads[ri].w = newW
		}
		res, err := eng.ApplyBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		relabelled += res.Affected
		if tick%10 == 0 {
			center := ripple.VertexID(side*side/2 + side/2)
			fmt.Printf("tick %2d: %2d segments changed, %4d junctions re-predicted in %v (centre junction → level %d)\n",
				tick, len(batch)/2, res.Affected, (res.UpdateTime + res.PropagateTime).Round(time.Microsecond),
				eng.Label(center))
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d congestion changes processed in %v (%.0f changes/sec), %d junction re-predictions\n",
		ticks*8, elapsed.Round(time.Millisecond), float64(ticks*8)/elapsed.Seconds(), relabelled)
}
