// Traffic-flow prediction on a road network — the paper's weighted-sum
// scenario (§1): junction ETAs depend on neighbouring flows weighted by
// live congestion, and the weights change continuously.
//
// Junctions are vertices on a grid road network; directed edges carry a
// congestion coefficient as the aggregation weight (GC-W workload). A
// congestion change is streamed as delete+re-add with the new weight in
// one batch, which the engine applies exactly.
//
// The serving side demonstrates snapshot isolation: navigation dashboards
// read congestion levels lock-free from published epochs while rush-hour
// batches apply, and a route planner pins one snapshot for a consistent
// multi-junction view that later batches can never tear.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ripple"
)

const (
	side    = 40 // 40×40 junction grid
	featDim = 12
	classes = 5 // congestion level predicted per junction
)

func main() {
	n := side * side
	rng := rand.New(rand.NewSource(11))

	// Grid topology: each junction feeds its east and south neighbours,
	// with congestion weights in [0.5, 1.5).
	g := ripple.NewGraph(n)
	type road struct {
		u, v ripple.VertexID
		w    float32
	}
	var roads []road
	addRoad := func(u, v ripple.VertexID) {
		w := 0.5 + rng.Float32()
		if err := g.AddEdge(u, v, w); err != nil {
			log.Fatal(err)
		}
		roads = append(roads, road{u, v, w})
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			u := ripple.VertexID(r*side + c)
			if c+1 < side {
				addRoad(u, u+1)
				addRoad(u+1, u)
			}
			if r+1 < side {
				addRoad(u, u+ripple.VertexID(side))
				addRoad(u+ripple.VertexID(side), u)
			}
		}
	}

	// Junction features: sensor statistics.
	features := make([]ripple.Vector, n)
	for i := range features {
		features[i] = ripple.NewVector(featDim)
		for j := range features[i] {
			features[i][j] = rng.Float32()
		}
	}

	model, err := ripple.NewModel("GC-W", []int{featDim, 24, classes}, 5)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := ripple.Serve(eng)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("road network: %d junctions, %d road segments\n", n, len(roads))

	// A route planner pins the pre-rush-hour epoch: its multi-junction
	// route stays internally consistent no matter what applies meanwhile.
	pinned := srv.Snapshot()
	route := []ripple.VertexID{0, 1, side + 1, side + 2, 2*side + 2}
	pinnedLevels := make([]int, len(route))
	for i, j := range route {
		pinnedLevels[i] = pinned.Label(j)
	}

	// Dashboards: 6 readers polling junction levels lock-free during the
	// whole rush hour.
	var stop atomic.Bool
	var dashReads atomic.Int64
	var wg sync.WaitGroup
	for d := 0; d < 6; d++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				j := ripple.VertexID(rr.Intn(n))
				if top := srv.TopK(j, 2); len(top) == 2 {
					dashReads.Add(1)
				}
			}
		}(int64(d + 7))
	}

	// Rush hour: every tick, a handful of segments change congestion. A
	// weight change is an exact delete + re-add pair within one batch.
	var relabelled int
	var busy time.Duration // engine time, excluding the tick cadence sleeps
	start := time.Now()
	const ticks = 30
	for tick := 0; tick < ticks; tick++ {
		batch := make([]ripple.Update, 0, 16)
		seen := map[int]bool{}
		for len(batch) < 16 {
			ri := rng.Intn(len(roads))
			if seen[ri] {
				continue
			}
			seen[ri] = true
			newW := 0.5 + rng.Float32()
			batch = append(batch,
				ripple.Update{Kind: ripple.EdgeDelete, U: roads[ri].u, V: roads[ri].v},
				ripple.Update{Kind: ripple.EdgeAdd, U: roads[ri].u, V: roads[ri].v, Weight: newW},
			)
			roads[ri].w = newW
		}
		res, err := srv.Apply(batch)
		if err != nil {
			log.Fatal(err)
		}
		relabelled += res.Affected
		busy += res.UpdateTime + res.PropagateTime
		time.Sleep(500 * time.Microsecond) // sensor tick cadence; lets dashboards overlap the stream
		if tick%10 == 0 {
			center := ripple.VertexID(side*side/2 + side/2)
			fmt.Printf("tick %2d: %2d segments changed, %4d junctions re-predicted in %v (centre junction → level %d, epoch %d)\n",
				tick, len(batch)/2, res.Affected, (res.UpdateTime + res.PropagateTime).Round(time.Microsecond),
				srv.Label(center), srv.Snapshot().Epoch())
		}
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	// The pinned route view is bit-identical to what was planned against,
	// even though 30 batches were published since.
	for i, j := range route {
		if pinned.Label(j) != pinnedLevels[i] {
			log.Fatalf("snapshot isolation violated at junction %d", j)
		}
	}
	fmt.Printf("\nroute planner's pinned epoch %d unchanged after %d published epochs (snapshot isolation)\n",
		pinned.Epoch(), srv.Snapshot().Epoch())
	fmt.Printf("%d congestion changes over a %v rush hour; %v engine time (%.0f changes/sec), %d junction re-predictions\n",
		ticks*8, elapsed.Round(time.Millisecond), busy.Round(time.Microsecond), float64(ticks*8)/busy.Seconds(), relabelled)
	fmt.Printf("%d dashboard reads served lock-free during rush hour\n", dashReads.Load())
}
