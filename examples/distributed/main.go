// Distributed inference on a graph partitioned across 4 in-process
// workers — the paper's §5 execution model with measured halo-exchange
// traffic. Also runs the distributed recompute baseline on the identical
// workload to show the communication asymmetry behind Fig. 12c.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ripple"
)

const (
	numVertices = 8000
	avgDegree   = 12
	featDim     = 32
	classes     = 8
	workers     = 4
)

func buildWorld(seed int64) (*ripple.Graph, []ripple.Vector, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	g := ripple.NewGraph(numVertices)
	for added := 0; added < numVertices*avgDegree; {
		u := skewed(rng)
		v := skewed(rng)
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v, 1); err == nil {
			added++
		}
	}
	features := make([]ripple.Vector, numVertices)
	for i := range features {
		features[i] = ripple.NewVector(featDim)
		for j := range features[i] {
			features[i][j] = rng.Float32()*2 - 1
		}
	}
	return g, features, rng
}

func skewed(rng *rand.Rand) ripple.VertexID {
	f := rng.Float64()
	return ripple.VertexID(int(f * f * numVertices))
}

func main() {
	model, err := ripple.NewModel("GC-S", []int{featDim, 48, classes}, 17)
	if err != nil {
		log.Fatal(err)
	}

	for _, baseline := range []bool{false, true} {
		name := "Ripple (incremental)"
		if baseline {
			name = "RC (recompute baseline)"
		}
		g, features, rng := buildWorld(3)
		start := time.Now()
		cl, err := ripple.BootstrapDistributed(g, model, features, ripple.DistOptions{
			Workers:     workers,
			Partitioner: "multilevel",
			Baseline:    baseline,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d workers ready in %v\n", name, cl.K(), time.Since(start).Round(time.Millisecond))

		var bytes, msgs, affected int64
		var simLat time.Duration
		for batchNum := 0; batchNum < 10; batchNum++ {
			batch := make([]ripple.Update, 0, 40)
			for len(batch) < 40 {
				u, v := skewed(rng), skewed(rng)
				if u == v || g.HasEdge(u, v) {
					continue
				}
				batch = append(batch, ripple.Update{Kind: ripple.EdgeAdd, U: u, V: v, Weight: 1})
			}
			res, err := cl.ApplyBatch(batch)
			if err != nil {
				log.Fatal(err)
			}
			bytes += res.CommBytes
			msgs += res.CommMsgs
			affected += res.Affected
			simLat += res.SimLatency()
		}
		fmt.Printf("  10 batches: %d vertices recomputed, %d KiB / %d messages over the wire\n",
			affected, bytes/1024, msgs)
		fmt.Printf("  modelled 10GbE latency per batch: %v\n", (simLat / 10).Round(time.Microsecond))
		if err := cl.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nthe recompute baseline ships whole unaffected in-neighbourhoods per hop;")
	fmt.Println("incremental propagation ships only deltas of changed vertices (paper Fig. 12c).")
}
