// Distributed inference on a graph partitioned across 4 in-process
// workers — the paper's §5 execution model with measured halo-exchange
// traffic. Also runs the distributed recompute baseline on the identical
// workload to show the communication asymmetry behind Fig. 12c, then
// serves predictions straight from the cluster (ServeCluster): epochs
// published from O(frontier-rows) delta gathers instead of whole-table
// scans.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ripple"
)

const (
	numVertices = 8000
	avgDegree   = 12
	featDim     = 32
	classes     = 8
	workers     = 4
)

func buildWorld(seed int64) (*ripple.Graph, []ripple.Vector, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	g := ripple.NewGraph(numVertices)
	for added := 0; added < numVertices*avgDegree; {
		u := skewed(rng)
		v := skewed(rng)
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v, 1); err == nil {
			added++
		}
	}
	features := make([]ripple.Vector, numVertices)
	for i := range features {
		features[i] = ripple.NewVector(featDim)
		for j := range features[i] {
			features[i][j] = rng.Float32()*2 - 1
		}
	}
	return g, features, rng
}

func skewed(rng *rand.Rand) ripple.VertexID {
	f := rng.Float64()
	return ripple.VertexID(int(f * f * numVertices))
}

func main() {
	model, err := ripple.NewModel("GC-S", []int{featDim, 48, classes}, 17)
	if err != nil {
		log.Fatal(err)
	}

	for _, baseline := range []bool{false, true} {
		name := "Ripple (incremental)"
		if baseline {
			name = "RC (recompute baseline)"
		}
		g, features, rng := buildWorld(3)
		start := time.Now()
		cl, err := ripple.BootstrapDistributed(g, model, features, ripple.DistOptions{
			Workers:     workers,
			Partitioner: "multilevel",
			Baseline:    baseline,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d workers ready in %v\n", name, cl.K(), time.Since(start).Round(time.Millisecond))

		var bytes, msgs, affected int64
		var simLat time.Duration
		for batchNum := 0; batchNum < 10; batchNum++ {
			batch := make([]ripple.Update, 0, 40)
			for len(batch) < 40 {
				u, v := skewed(rng), skewed(rng)
				if u == v || g.HasEdge(u, v) {
					continue
				}
				batch = append(batch, ripple.Update{Kind: ripple.EdgeAdd, U: u, V: v, Weight: 1})
			}
			res, err := cl.ApplyBatch(batch)
			if err != nil {
				log.Fatal(err)
			}
			bytes += res.CommBytes
			msgs += res.CommMsgs
			affected += res.Affected
			simLat += res.SimLatency()
		}
		fmt.Printf("  10 batches: %d vertices recomputed, %d KiB / %d messages over the wire\n",
			affected, bytes/1024, msgs)
		fmt.Printf("  modelled 10GbE latency per batch: %v\n", (simLat / 10).Round(time.Microsecond))
		if err := cl.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nthe recompute baseline ships whole unaffected in-neighbourhoods per hop;")
	fmt.Println("incremental propagation ships only deltas of changed vertices (paper Fig. 12c).")

	serveFromCluster(model)
}

// serveFromCluster is the distributed serving tier: the same cluster
// runtime behind the snapshot-isolated Server — lock-free reads against
// published epochs while batches propagate across workers, every epoch
// gathered as a changed-rows delta.
func serveFromCluster(model *ripple.Model) {
	g, features, rng := buildWorld(5)
	srv, err := ripple.ServeCluster(g, model, features, ripple.DistOptions{
		Workers:     workers,
		Partitioner: "multilevel",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	fmt.Printf("\nServing from the cluster: %d workers behind one epoch-published Server\n", workers)
	flips, cancel := srv.Subscribe(1 << 14)
	defer cancel()
	probe := ripple.VertexID(7)
	for batchNum := 0; batchNum < 5; batchNum++ {
		batch := make([]ripple.Update, 0, 32)
		for len(batch) < 32 {
			feat := ripple.NewVector(featDim)
			for j := range feat {
				feat[j] = rng.Float32()*2 - 1
			}
			batch = append(batch, ripple.Update{Kind: ripple.FeatureUpdate, U: skewed(rng), Features: feat})
		}
		if _, err := srv.Apply(batch); err != nil {
			log.Fatal(err)
		}
	}
	st := srv.Stats()
	fmt.Printf("  epoch %d after %d batches: vertex %d → class %d (top-3 %v)\n",
		st.Epoch, st.Batches, probe, srv.Label(probe), srv.TopK(probe, 3))
	fmt.Printf("  %d label flips pushed to subscribers; wire cost: %d KiB halo, %d KiB routed, %d KiB gathered\n",
		len(flips), st.CommBytes/1024, st.RouteBytes/1024, st.GatherBytes/1024)
	fmt.Println("  each epoch shipped only the batch's changed final-layer rows (O(frontier), not O(|V|)).")
}
