// Quickstart: a 60-second tour of the public API, replaying the paper's
// Fig. 3 scenario — an edge addition rippling through a small graph while
// distant vertices stay untouched.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ripple"
)

func main() {
	// A small social graph: A=0 follows nobody; B, C, D consume A's posts
	// (edges point toward the aggregating vertex); F→E is a separate pair.
	const n = 6
	names := []string{"A", "B", "C", "D", "E", "F"}
	g := ripple.NewGraph(n)
	for _, e := range [][2]ripple.VertexID{{0, 1}, {0, 2}, {0, 3}, {5, 4}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}

	// Seeded features and a 2-layer GraphSAGE-sum model with 4 classes.
	rng := rand.New(rand.NewSource(7))
	features := make([]ripple.Vector, n)
	for i := range features {
		features[i] = ripple.NewVector(8)
		for j := range features[i] {
			features[i][j] = rng.Float32()*2 - 1
		}
	}
	model, err := ripple.NewModel("GS-S", []int{8, 16, 4}, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap: one offline layer-wise forward pass primes the engine.
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bootstrap labels:")
	printLabels(eng, names)

	// Stream the paper's update: ADD EDGE (E, A). Only A and its
	// downstream neighbourhood recompute; E and F are untouched.
	res, err := eng.ApplyBatch([]ripple.Update{
		{Kind: ripple.EdgeAdd, U: 4, V: 0, Weight: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter ADD EDGE (E→A): %d vertices recomputed (of %d), frontier per hop %v\n",
		res.Affected, n, res.FrontierPerHop)
	printLabels(eng, names)

	// Stream a feature update on E: its change ripples through the edge we
	// just added.
	newFeat := ripple.NewVector(8)
	for j := range newFeat {
		newFeat[j] = rng.Float32()*2 - 1
	}
	res, err = eng.ApplyBatch([]ripple.Update{
		{Kind: ripple.FeatureUpdate, U: 4, Features: newFeat},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter feature update on E: %d vertices recomputed, %d delta messages, %d vector ops\n",
		res.Affected, res.Messages, res.VectorOps)
	printLabels(eng, names)

	// Deleting the edge restores the original neighbourhood influence.
	if _, err := eng.ApplyBatch([]ripple.Update{
		{Kind: ripple.EdgeDelete, U: 4, V: 0},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter DELETE EDGE (E→A):")
	printLabels(eng, names)
}

func printLabels(eng *ripple.Engine, names []string) {
	for u, name := range names {
		fmt.Printf("  %s→class %d", name, eng.Label(ripple.VertexID(u)))
	}
	fmt.Println()
}
