// Fraud detection on a streaming fintech transaction network — the
// paper's motivating low-latency scenario (§1): a delay in re-classifying
// an account after a suspicious transaction is money lost.
//
// Accounts are vertices (features = balance profile), transactions are
// streamed edge additions, and balance changes are feature updates. A
// GINConv model classifies accounts into risk bands; the engine keeps
// every affected account's class fresh within the batch latency.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ripple"
)

const (
	numAccounts = 3000
	featDim     = 16
	riskBands   = 3 // 0 = normal, 1 = watch, 2 = high-risk
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	// Historic transaction graph: heavy-tailed (a few merchant hubs).
	g := ripple.NewGraph(numAccounts)
	for added := 0; added < numAccounts*4; {
		payer := hub(rng)
		payee := hub(rng)
		if payer == payee {
			continue
		}
		if err := g.AddEdge(payer, payee, 1); err == nil {
			added++
		}
	}

	// Account features: balance stats, activity counters.
	features := make([]ripple.Vector, numAccounts)
	for i := range features {
		features[i] = ripple.NewVector(featDim)
		for j := range features[i] {
			features[i][j] = rng.Float32()*2 - 1
		}
	}

	model, err := ripple.NewModel("GI-S", []int{featDim, 32, riskBands}, 99)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped %d accounts in %v\n", numAccounts, time.Since(start).Round(time.Millisecond))

	watchlist := before(eng, riskBands-1)
	fmt.Printf("high-risk accounts at start: %d\n", len(watchlist))

	// Live feed: batches of transactions (edge adds) and balance changes
	// (feature updates). Trigger-based serving: after each batch, the
	// engine's labels are already fresh — we just diff the high-risk set.
	var totalUpdates int
	var totalLatency time.Duration
	for batchNum := 0; batchNum < 20; batchNum++ {
		batch := make([]ripple.Update, 0, 50)
		for len(batch) < 50 {
			if rng.Intn(3) == 0 { // balance change
				acct := hub(rng)
				f := ripple.NewVector(featDim)
				for j := range f {
					f[j] = rng.Float32()*2 - 1
				}
				batch = append(batch, ripple.Update{Kind: ripple.FeatureUpdate, U: acct, Features: f})
				continue
			}
			payer, payee := hub(rng), hub(rng)
			if payer == payee || g.HasEdge(payer, payee) {
				continue
			}
			batch = append(batch, ripple.Update{Kind: ripple.EdgeAdd, U: payer, V: payee, Weight: 1})
		}
		res, err := eng.ApplyBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		totalUpdates += res.Updates
		totalLatency += res.UpdateTime + res.PropagateTime

		now := before(eng, riskBands-1)
		newly := diff(now, watchlist)
		watchlist = now
		if len(newly) > 0 {
			fmt.Printf("batch %2d: %5.2fms, %4d accounts re-scored, ALERT %d newly high-risk (e.g. account %d)\n",
				batchNum, ms(res.UpdateTime+res.PropagateTime), res.Affected, len(newly), newly[0])
		} else {
			fmt.Printf("batch %2d: %5.2fms, %4d accounts re-scored\n",
				batchNum, ms(res.UpdateTime+res.PropagateTime), res.Affected)
		}
	}
	fmt.Printf("\nthroughput: %.0f transactions/sec with exact, deterministic re-scoring\n",
		float64(totalUpdates)/totalLatency.Seconds())
}

// hub draws an account with heavy-tailed popularity.
func hub(rng *rand.Rand) ripple.VertexID {
	f := rng.Float64()
	return ripple.VertexID(int(f * f * float64(numAccounts)))
}

// before collects the accounts currently classified in the given band.
func before(eng *ripple.Engine, band int) []ripple.VertexID {
	var out []ripple.VertexID
	for u := ripple.VertexID(0); int(u) < numAccounts; u++ {
		if eng.Label(u) == band {
			out = append(out, u)
		}
	}
	return out
}

// diff returns the entries of cur that are absent from prev.
func diff(cur, prev []ripple.VertexID) []ripple.VertexID {
	seen := make(map[ripple.VertexID]bool, len(prev))
	for _, u := range prev {
		seen[u] = true
	}
	var out []ripple.VertexID
	for _, u := range cur {
		if !seen[u] {
			out = append(out, u)
		}
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
