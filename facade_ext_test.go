package ripple_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"ripple"
)

func TestPublicLabelTracking(t *testing.T) {
	g, x := buildSmall(t)
	model, err := ripple.NewModel("GS-S", []int{8, 16, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, x, ripple.WithLabelTracking())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var sawFlip bool
	for i := 0; i < 20 && !sawFlip; i++ {
		u := ripple.VertexID(rng.Intn(30))
		f := ripple.NewVector(8)
		for j := range f {
			f[j] = rng.Float32()*4 - 2
		}
		res, err := eng.ApplyBatch([]ripple.Update{{Kind: ripple.FeatureUpdate, U: u, Features: f}})
		if err != nil {
			t.Fatal(err)
		}
		for _, lc := range res.LabelChanges {
			sawFlip = true
			if eng.Label(lc.Vertex) != lc.New {
				t.Errorf("reported new label %d, engine says %d", lc.New, eng.Label(lc.Vertex))
			}
		}
	}
	if !sawFlip {
		t.Log("no label flip observed in 20 batches (acceptable but unusual)")
	}
}

func TestPublicPruningOptionStaysCorrect(t *testing.T) {
	g1, x := buildSmall(t)
	g2, _ := buildSmall(t)
	model, err := ripple.NewModel("GC-S", []int{8, 16, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ripple.Bootstrap(g1, model, x)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := ripple.Bootstrap(g2, model, x, ripple.WithZeroDeltaPruning())
	if err != nil {
		t.Fatal(err)
	}
	batch := []ripple.Update{{Kind: ripple.FeatureUpdate, U: 3, Features: ripple.NewVector(8)}}
	if _, err := plain.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := pruned.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d := plain.Embeddings().MaxAbsDiff(pruned.Embeddings()); d > 1e-5 {
		t.Errorf("pruned engine diverged by %v", d)
	}
}

// TestPublicShardOptions checks WithShards/WithSerial plumb through the
// facade: the knob reaches the engine (rounded up to a power of two),
// batch results carry the scatter accounting, and shard count never
// changes predictions.
func TestPublicShardOptions(t *testing.T) {
	model, err := ripple.NewModel("GS-S", []int{8, 16, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	g0, x := buildSmall(t)
	serial, err := ripple.Bootstrap(g0, model, x, ripple.WithSerial())
	if err != nil {
		t.Fatal(err)
	}
	batch := []ripple.Update{{Kind: ripple.FeatureUpdate, U: 3, Features: ripple.NewVector(8)}}
	if _, err := serial.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 8} {
		g, _ := buildSmall(t)
		eng, err := ripple.Bootstrap(g, model, x, ripple.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		got := eng.Shards()
		if got < shards || got&(got-1) != 0 {
			t.Fatalf("WithShards(%d): engine has %d shards, want power of two ≥ %d", shards, got, shards)
		}
		res, err := eng.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.ScatterShards != got || res.ScatterHopsParallel+res.ScatterHopsSerial == 0 {
			t.Fatalf("WithShards(%d): scatter accounting %+v", shards, res)
		}
		if d := serial.Embeddings().MaxAbsDiff(eng.Embeddings()); d != 0 {
			t.Errorf("WithShards(%d) diverged from serial engine by %v", shards, d)
		}
	}
}

// TestPublicDurableServeRestart drives the facade's durability surface:
// a durable Server survives an abrupt restart — same epoch, same labels —
// through WithDataDir recovery, for both the single-node and the
// distributed backend.
func TestPublicDurableServeRestart(t *testing.T) {
	model, err := ripple.NewModel("GS-S", []int{8, 16, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	stream := func(srv *ripple.Server) {
		t.Helper()
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < 6; i++ {
			f := ripple.NewVector(8)
			for j := range f {
				f[j] = rng.Float32()*4 - 2
			}
			if _, err := srv.Apply([]ripple.Update{{Kind: ripple.FeatureUpdate, U: ripple.VertexID(rng.Intn(30)), Features: f}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(name string, open func() (*ripple.Server, error)) {
		t.Helper()
		srv, err := open()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stream(srv)
		wantEpoch := srv.Snapshot().Epoch()
		wantLabels := make([]int, 30)
		for v := range wantLabels {
			wantLabels[v] = srv.Label(ripple.VertexID(v))
		}
		srv.Close() // graceful: final checkpoint, zero replay on reopen

		srv2, err := open()
		if err != nil {
			t.Fatalf("%s restart: %v", name, err)
		}
		defer srv2.Close()
		st := srv2.Stats()
		if st.Epoch != wantEpoch || st.LastCheckpointEpoch != wantEpoch || st.RecoveredBatches != 0 {
			t.Fatalf("%s restart: %+v, want epoch %d from clean checkpoint", name, st, wantEpoch)
		}
		for v := range wantLabels {
			if got := srv2.Label(ripple.VertexID(v)); got != wantLabels[v] {
				t.Fatalf("%s restart: vertex %d label %d, want %d", name, v, got, wantLabels[v])
			}
		}
	}

	engDir := t.TempDir()
	check("engine", func() (*ripple.Server, error) {
		g, x := buildSmall(t)
		eng, err := ripple.Bootstrap(g, model, x)
		if err != nil {
			return nil, err
		}
		return ripple.Serve(eng, ripple.WithDataDir(engDir), ripple.WithCheckpointEvery(2))
	})

	cluDir := t.TempDir()
	check("cluster", func() (*ripple.Server, error) {
		g, x := buildSmall(t)
		return ripple.ServeCluster(g, model, x,
			ripple.DistOptions{Workers: 2, Partitioner: "hash"},
			ripple.WithDataDir(cluDir), ripple.WithCheckpointEvery(2))
	})
}

func TestPublicVertexLifecycle(t *testing.T) {
	g, x := buildSmall(t)
	model, err := ripple.NewModel("GI-S", []int{8, 16, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, x)
	if err != nil {
		t.Fatal(err)
	}
	id, err := eng.AddVertex(ripple.NewVector(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyBatch([]ripple.Update{{Kind: ripple.EdgeAdd, U: id, V: 0, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RemoveVertex(id); err != nil {
		t.Fatal(err)
	}
	if eng.Label(id) != -1 {
		t.Error("removed vertex should report label -1")
	}
}

func TestPublicBatcher(t *testing.T) {
	g, x := buildSmall(t)
	model, err := ripple.NewModel("GC-S", []int{8, 16, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, x)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	flushed := 0
	b, err := ripple.NewBatcher(eng, 3, 50*time.Millisecond, func(res ripple.BatchResult, err error) {
		if err != nil {
			t.Errorf("flush: %v", err)
		}
		mu.Lock()
		flushed += res.Updates
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 7; i++ {
		f := ripple.NewVector(8)
		for j := range f {
			f[j] = rng.Float32()
		}
		if err := b.Submit(ripple.Update{Kind: ripple.FeatureUpdate, U: ripple.VertexID(rng.Intn(30)), Features: f}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if flushed != 7 {
		t.Errorf("flushed %d of 7 updates", flushed)
	}
}
