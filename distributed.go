package ripple

import (
	"fmt"
	"io"

	"ripple/internal/cluster"
	"ripple/internal/gnn"
	"ripple/internal/partition"
	"ripple/internal/serve"
)

// Cluster is an in-process distributed inference deployment: the graph and
// its embeddings are partitioned across worker goroutines that propagate
// updates with hop-synchronous (BSP) halo exchanges, mirroring the paper's
// multi-machine design (§5) with measured communication volumes.
type Cluster = cluster.LocalCluster

// DistResult aggregates one distributed batch: critical-path compute time,
// measured communication bytes/messages, and modelled wire time.
type DistResult = cluster.Result

// DistOptions configures BootstrapDistributed.
type DistOptions struct {
	// Workers is the number of partitions (required, >= 1).
	Workers int
	// Partitioner selects vertex placement: "multilevel" (default, the
	// METIS-substitute), "ldg" or "hash".
	Partitioner string
	// Baseline switches the workers to distributed layer-wise recompute
	// (the paper's distributed RC baseline) instead of incremental
	// propagation. Used for comparisons; leave false for production use.
	Baseline bool
}

// BootstrapDistributed partitions g, runs the offline forward pass, and
// launches an in-process cluster maintaining the embeddings under
// streaming updates. Close the returned cluster when done.
func BootstrapDistributed(g *Graph, model *Model, features []Vector, opts DistOptions) (*Cluster, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("ripple: DistOptions.Workers = %d, need >= 1", opts.Workers)
	}
	emb, err := gnn.Forward(g, model, features)
	if err != nil {
		return nil, err
	}
	assign, err := partition.ByName(opts.Partitioner, g, opts.Workers)
	if err != nil {
		return nil, err
	}
	strat := cluster.StratRipple
	if opts.Baseline {
		strat = cluster.StratRC
	}
	return cluster.NewLocal(cluster.LocalConfig{
		Graph:      g,
		Model:      model,
		Embeddings: emb,
		Assignment: assign,
		Strategy:   strat,
	})
}

// ServeCluster bootstraps a distributed cluster (like BootstrapDistributed)
// and wraps it in the concurrent serving layer: the same
// Label/Embedding/TopK/Snapshot/Submit/Subscribe surface as Serve, but the
// propagation work runs across partitioned workers and each epoch is
// published from a delta gather — every worker ships only the final-layer
// rows the batch touched, so a distributed publish costs O(frontier rows
// on the wire), not O(|V|).
//
// ServeCluster takes ownership of g (it becomes the leader-side validation
// mirror); do not mutate it afterwards. opts.Baseline is rejected: the
// recompute baseline cannot ship changed-row deltas. Closing the Server
// shuts the cluster's workers down.
//
// With WithDataDir the distributed server is durable: checkpoints run the
// leader-coordinated barrier (every worker serializes its partition, the
// leader writes one manifest), and on start a data dir holding prior
// state rebuilds the whole cluster from the manifest — topology,
// placement and embeddings, skipping the bootstrap forward pass — then
// replays the WAL tail to the exact pre-crash epoch. The manifest's
// worker count must match opts.Workers.
func ServeCluster(g *Graph, model *Model, features []Vector, opts DistOptions, sopts ...ServeOption) (*Server, error) {
	if opts.Baseline {
		return nil, fmt.Errorf("ripple: ServeCluster requires the incremental strategy; the RC baseline cannot serve deltas")
	}
	var cfg serve.Config
	for _, opt := range sopts {
		opt(&cfg)
	}
	if cfg.DataDir == "" {
		cl, err := BootstrapDistributed(g, model, features, opts)
		if err != nil {
			return nil, err
		}
		backend, err := serve.NewClusterBackend(cl, g)
		if err != nil {
			cl.Close()
			return nil, err
		}
		srv, err := serve.NewBackend(backend, cfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		return srv, nil
	}
	return serve.Open(func(ckpt io.Reader) (serve.Backend, error) {
		if ckpt == nil {
			cl, err := BootstrapDistributed(g, model, features, opts)
			if err != nil {
				return nil, err
			}
			backend, err := serve.NewClusterBackend(cl, g)
			if err != nil {
				cl.Close()
				return nil, err
			}
			return backend, nil
		}
		topo, assign, emb, err := cluster.LoadManifest(ckpt)
		if err != nil {
			return nil, err
		}
		if assign.K != opts.Workers {
			return nil, fmt.Errorf("ripple: checkpoint manifest partitions %d workers, flags ask for %d (repartitioning a checkpoint is not supported)", assign.K, opts.Workers)
		}
		cl, err := cluster.NewLocal(cluster.LocalConfig{
			Graph:      topo,
			Model:      model,
			Embeddings: emb,
			Assignment: assign,
			Strategy:   cluster.StratRipple,
		})
		if err != nil {
			return nil, err
		}
		backend, err := serve.NewClusterBackend(cl, topo)
		if err != nil {
			cl.Close()
			return nil, err
		}
		return backend, nil
	}, cfg)
}
