package ripple

import (
	"fmt"

	"ripple/internal/cluster"
	"ripple/internal/gnn"
	"ripple/internal/partition"
)

// Cluster is an in-process distributed inference deployment: the graph and
// its embeddings are partitioned across worker goroutines that propagate
// updates with hop-synchronous (BSP) halo exchanges, mirroring the paper's
// multi-machine design (§5) with measured communication volumes.
type Cluster = cluster.LocalCluster

// DistResult aggregates one distributed batch: critical-path compute time,
// measured communication bytes/messages, and modelled wire time.
type DistResult = cluster.Result

// DistOptions configures BootstrapDistributed.
type DistOptions struct {
	// Workers is the number of partitions (required, >= 1).
	Workers int
	// Partitioner selects vertex placement: "multilevel" (default, the
	// METIS-substitute), "ldg" or "hash".
	Partitioner string
	// Baseline switches the workers to distributed layer-wise recompute
	// (the paper's distributed RC baseline) instead of incremental
	// propagation. Used for comparisons; leave false for production use.
	Baseline bool
}

// BootstrapDistributed partitions g, runs the offline forward pass, and
// launches an in-process cluster maintaining the embeddings under
// streaming updates. Close the returned cluster when done.
func BootstrapDistributed(g *Graph, model *Model, features []Vector, opts DistOptions) (*Cluster, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("ripple: DistOptions.Workers = %d, need >= 1", opts.Workers)
	}
	emb, err := gnn.Forward(g, model, features)
	if err != nil {
		return nil, err
	}
	assign, err := partition.ByName(opts.Partitioner, g, opts.Workers)
	if err != nil {
		return nil, err
	}
	strat := cluster.StratRipple
	if opts.Baseline {
		strat = cluster.StratRC
	}
	return cluster.NewLocal(cluster.LocalConfig{
		Graph:      g,
		Model:      model,
		Embeddings: emb,
		Assignment: assign,
		Strategy:   strat,
	})
}
