// Macro-benchmarks: one per table/figure of the paper's evaluation. Each
// runs the corresponding experiment from internal/bench at a reduced scale
// so `go test -bench=.` finishes in minutes; set RIPPLE_BENCH_SCALE (e.g.
// "1" for the full default scales, "0.2" for smoke) to resize. See
// DESIGN.md §5 for how these map onto the paper's evaluation; the full
// default-scale record is generated with cmd/ripplebench.
package ripple_test

import (
	"io"
	"os"
	"strconv"
	"testing"

	"ripple/internal/bench"
)

func benchScale() float64 {
	if s := os.Getenv("RIPPLE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05 // 5% of the already-reduced default dataset scales
}

func newBenchHarness() *bench.Harness {
	return bench.New(bench.Config{
		Scale:      benchScale(),
		StreamLen:  600,
		MaxBatches: 5,
		Hidden:     32,
		Seed:       42,
	})
}

// runFigure drives one experiment runner under the benchmark timer and
// reports the mean Ripple throughput as a custom metric when present.
func runFigure(b *testing.B, run func(io.Writer) ([]bench.Cell, error)) {
	b.Helper()
	var cells []bench.Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = run(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	var thru float64
	var n int
	for _, c := range cells {
		if c.Strategy == "Ripple" && c.ThroughputUpS > 0 {
			thru += c.ThroughputUpS
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(thru/float64(n), "ripple-up/s")
	}
}

func BenchmarkTable3Datasets(b *testing.B) { runFigure(b, newBenchHarness().Table3) }
func BenchmarkFig2aFanout(b *testing.B)    { runFigure(b, newBenchHarness().Fig2a) }
func BenchmarkFig2bAffected(b *testing.B)  { runFigure(b, newBenchHarness().Fig2b) }
func BenchmarkFig8Strategies(b *testing.B) { runFigure(b, newBenchHarness().Fig8) }
func BenchmarkFig9SingleMachine(b *testing.B) {
	runFigure(b, newBenchHarness().Fig9)
}
func BenchmarkFig10ThreeLayer(b *testing.B) { runFigure(b, newBenchHarness().Fig10) }
func BenchmarkFig11Affected(b *testing.B)   { runFigure(b, newBenchHarness().Fig11) }
func BenchmarkFig12aDistributed(b *testing.B) {
	runFigure(b, newBenchHarness().Fig12a)
}
func BenchmarkFig12bScaling(b *testing.B) { runFigure(b, newBenchHarness().Fig12b) }
func BenchmarkFig12cCommSplit(b *testing.B) {
	runFigure(b, newBenchHarness().Fig12c)
}
func BenchmarkFig13aProducts(b *testing.B) { runFigure(b, newBenchHarness().Fig13a) }
func BenchmarkFig13bProductsScaling(b *testing.B) {
	runFigure(b, newBenchHarness().Fig13b)
}
