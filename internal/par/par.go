// Package par provides the tiny deterministic data-parallel helper shared
// by the inference and engine packages.
package par

import (
	"runtime"
	"sync"
)

// For splits [0, n) into contiguous shards across up to GOMAXPROCS workers
// and waits for completion. Shard boundaries are deterministic and the
// per-iteration work must be independent, so results do not depend on
// scheduling.
func For(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForShards is like For but also hands each shard its index, letting
// callers keep deterministic per-shard accumulators that are merged in
// shard order afterwards. shards is the exact number of shard invocations.
func ForShards(n int, fn func(shard, lo, hi int)) (shards int) {
	return ForShardsN(n, runtime.GOMAXPROCS(0), fn)
}

// ForShardsN is ForShards with an explicit worker bound: shard indices
// stay below max(workers, 1) regardless of GOMAXPROCS. Callers that
// pre-size per-shard state to a bound they read themselves use this form,
// so the fan-out and the state agree by construction instead of via two
// separate GOMAXPROCS reads that a concurrent change could split.
func ForShardsN(n, workers int, fn func(shard, lo, hi int)) (shards int) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
			return 1
		}
		return 0
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	shard := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(shard, lo, hi)
		shard++
	}
	wg.Wait()
	return shard
}
