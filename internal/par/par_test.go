package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		hits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForShardsDisjointAndComplete(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 999} {
		hits := make([]int32, n)
		maxShard := int32(-1)
		shards := ForShards(n, func(shard, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			for {
				cur := atomic.LoadInt32(&maxShard)
				if int32(shard) <= cur || atomic.CompareAndSwapInt32(&maxShard, cur, int32(shard)) {
					break
				}
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
		if n == 0 && shards != 0 {
			t.Errorf("n=0 shards = %d", shards)
		}
		if n > 0 && int(maxShard) != shards-1 {
			t.Errorf("n=%d: max shard %d with %d shards", n, maxShard, shards)
		}
	}
}
