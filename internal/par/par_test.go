package par

import (
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		hits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForShardsDisjointAndComplete(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 999} {
		hits := make([]int32, n)
		maxShard := int32(-1)
		shards := ForShards(n, func(shard, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			for {
				cur := atomic.LoadInt32(&maxShard)
				if int32(shard) <= cur || atomic.CompareAndSwapInt32(&maxShard, cur, int32(shard)) {
					break
				}
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
		if n == 0 && shards != 0 {
			t.Errorf("n=0 shards = %d", shards)
		}
		if n > 0 && int(maxShard) != shards-1 {
			t.Errorf("n=%d: max shard %d with %d shards", n, maxShard, shards)
		}
	}
}

// shardSpans records every (shard, lo, hi) invocation of one ForShards
// call, ordered by shard index.
func shardSpans(n int) (spans [][3]int, shards int) {
	var mu sync.Mutex
	shards = ForShards(n, func(shard, lo, hi int) {
		mu.Lock()
		spans = append(spans, [3]int{shard, lo, hi})
		mu.Unlock()
	})
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	return spans, shards
}

// TestForShardsEdgeCases pins the contract the engine's sharded scatter
// merge depends on: shard indices are dense [0, shards), spans are
// contiguous, in shard order, and cover [0, n) exactly — including n=0,
// n smaller than the worker count, and n not divisible by the chunk size.
func TestForShardsEdgeCases(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	t.Run("n=0", func(t *testing.T) {
		spans, shards := shardSpans(0)
		if shards != 0 || len(spans) != 0 {
			t.Fatalf("n=0: %d shards, spans %v; want no invocations", shards, spans)
		}
	})

	t.Run("n<workers", func(t *testing.T) {
		// 4 workers, 3 items: every shard must get exactly one item —
		// no empty invocations, no items lost.
		spans, shards := shardSpans(3)
		if shards != 3 || len(spans) != 3 {
			t.Fatalf("n=3, procs=4: %d shards, %d spans", shards, len(spans))
		}
		for i, s := range spans {
			if s != [3]int{i, i, i + 1} {
				t.Fatalf("n=3: shard %d spans [%d,%d), want [%d,%d)", s[0], s[1], s[2], i, i+1)
			}
		}
	})

	t.Run("n%chunk!=0", func(t *testing.T) {
		// 10 items over 4 workers → chunk 3: spans 3,3,3,1. The ragged
		// final shard must still be invoked with its own index.
		spans, shards := shardSpans(10)
		want := [][3]int{{0, 0, 3}, {1, 3, 6}, {2, 6, 9}, {3, 9, 10}}
		if shards != 4 || !reflect.DeepEqual(spans, want) {
			t.Fatalf("n=10, procs=4: shards=%d spans=%v, want %v", shards, spans, want)
		}
	})

	t.Run("contiguous-any-n", func(t *testing.T) {
		for _, n := range []int{1, 2, 4, 5, 17, 63, 64, 65, 1000} {
			spans, shards := shardSpans(n)
			if len(spans) != shards {
				t.Fatalf("n=%d: %d spans for %d shards", n, len(spans), shards)
			}
			next := 0
			for i, s := range spans {
				if s[0] != i {
					t.Fatalf("n=%d: shard indices not dense: %v", n, spans)
				}
				if s[1] != next || s[2] <= s[1] {
					t.Fatalf("n=%d: span %v not contiguous from %d", n, s, next)
				}
				next = s[2]
			}
			if next != n {
				t.Fatalf("n=%d: spans cover [0,%d)", n, next)
			}
		}
	})

	t.Run("explicit-worker-bound", func(t *testing.T) {
		// ForShardsN must respect the caller's bound even when it is
		// below (or above) GOMAXPROCS — the engine sizes per-worker state
		// from the same number.
		for _, workers := range []int{1, 2, 3, 100} {
			var mu sync.Mutex
			maxShard := -1
			covered := 0
			shards := ForShardsN(50, workers, func(shard, lo, hi int) {
				mu.Lock()
				if shard > maxShard {
					maxShard = shard
				}
				covered += hi - lo
				mu.Unlock()
			})
			bound := workers
			if bound > 50 {
				bound = 50
			}
			if shards > bound || maxShard != shards-1 || covered != 50 {
				t.Fatalf("workers=%d: %d shards (max index %d, %d covered), bound %d",
					workers, shards, maxShard, covered, bound)
			}
		}
	})

	t.Run("deterministic-boundaries", func(t *testing.T) {
		// The engine's merge replays logs by shard index: two identical
		// calls must chunk identically or worker slices would not be
		// reproducible.
		a, _ := shardSpans(777)
		b, _ := shardSpans(777)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same n chunked differently across calls:\n%v\n%v", a, b)
		}
	})
}
