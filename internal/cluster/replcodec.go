package cluster

// Replication stream codec. The serving tier's leader→replica stream
// (internal/serve) speaks four frame kinds over a point-to-point
// transport stream; the payloads reuse this package's wire primitives and
// the delta-gather row shape (DeltaRow), because a replication delta IS
// the delta-gather result the leader already computed for publication —
// just epoch-tagged instead of seq-tagged.
//
// The kinds live in a separate numeric space (0x20+) from the private
// intra-cluster kinds so a frame can never be misrouted across protocols.

import (
	"fmt"

	"ripple/internal/graph"
)

const (
	// KindRepSubscribe (follower→leader) opens a session: the payload is
	// an epoch frame carrying the follower's watermark — the newest epoch
	// it already has (MaxUint64 for an empty follower, which the leader
	// answers with a full snapshot rather than deltas).
	KindRepSubscribe uint8 = 0x20 + iota
	// KindRepHello (leader→follower) carries the leader's current epoch:
	// once at session start (the follower's lag baseline) and periodically
	// as a heartbeat so lag is observable even when no batches flow.
	KindRepHello
	// KindRepSnapshot (leader→follower) resyncs a follower that is too
	// far behind the in-memory replication log: full dense tables at one
	// epoch.
	KindRepSnapshot
	// KindRepDelta (leader→follower) is one published epoch's changed
	// rows.
	KindRepDelta
)

// EncodeEpochFrame serializes a bare epoch watermark (subscribe, hello).
func EncodeEpochFrame(epoch uint64) []byte {
	return appendU64(nil, epoch)
}

// DecodeEpochFrame is the inverse of EncodeEpochFrame.
func DecodeEpochFrame(payload []byte) (uint64, error) {
	r := &reader{b: payload}
	epoch := r.u64("epoch")
	if err := r.done(); err != nil {
		return 0, err
	}
	return epoch, nil
}

// EncodeDeltaFrame serializes one published epoch's changed rows — the
// epoch-tagged twin of the private delta-gather encoding.
func EncodeDeltaFrame(epoch uint64, classes int, rows []DeltaRow) []byte {
	b := appendU64(nil, epoch)
	b = appendU32(b, uint32(classes))
	b = appendU32(b, uint32(len(rows)))
	for _, row := range rows {
		b = appendU32(b, uint32(row.Vertex))
		b = appendU32(b, uint32(row.OldLabel))
		b = appendU32(b, uint32(row.NewLabel))
		b = appendVec(b, row.Logits)
	}
	return b
}

// DecodeDeltaFrame is the inverse of EncodeDeltaFrame, with the same
// truncation/overflow hardening as the intra-cluster decoders.
func DecodeDeltaFrame(payload []byte) (epoch uint64, classes int, rows []DeltaRow, err error) {
	r := &reader{b: payload}
	epoch = r.u64("epoch")
	classes = int(r.u32("classes"))
	// Each row is id + old + new + the logits: 12 + classes*4 bytes; the
	// division-based count guard rejects widths whose product would wrap.
	n := r.count(r.u32("count"), 12+classes*4, "count")
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	rows = make([]DeltaRow, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		row := DeltaRow{
			Vertex:   graph.VertexID(r.u32("vertex")),
			OldLabel: int32(r.u32("old")),
			NewLabel: int32(r.u32("new")),
		}
		row.Logits = r.vec(classes, "logits")
		rows = append(rows, row)
	}
	if err := r.done(); err != nil {
		return 0, 0, nil, err
	}
	return epoch, classes, rows, nil
}

// EncodeSnapshotFrame serializes full dense serving tables at one epoch:
// every vertex's label and its row-major final-layer logits. This is the
// follower resync payload and the follower's checkpoint payload — one
// format, one decoder.
func EncodeSnapshotFrame(epoch uint64, classes int, labels []int32, logits []float32) []byte {
	b := appendU64(nil, epoch)
	b = appendU32(b, uint32(classes))
	b = appendU32(b, uint32(len(labels)))
	for _, l := range labels {
		b = appendU32(b, uint32(l))
	}
	for _, x := range logits {
		b = appendF32(b, x)
	}
	return b
}

// DecodeSnapshotFrame is the inverse of EncodeSnapshotFrame. The returned
// slices are freshly allocated.
func DecodeSnapshotFrame(payload []byte) (epoch uint64, classes int, labels []int32, logits []float32, err error) {
	r := &reader{b: payload}
	epoch = r.u64("epoch")
	classes = int(r.u32("classes"))
	if classes < 0 {
		return 0, 0, nil, nil, fmt.Errorf("cluster: snapshot frame classes overflow")
	}
	// Each vertex owns 4 label bytes + classes*4 logit bytes; the count
	// guard bounds the allocation by the payload size.
	n := r.count(r.u32("vertices"), 4+classes*4, "vertices")
	if r.err != nil {
		return 0, 0, nil, nil, r.err
	}
	labels = make([]int32, n)
	for i := 0; i < n && r.err == nil; i++ {
		labels[i] = int32(r.u32("label"))
	}
	logits = make([]float32, n*classes)
	for i := range logits {
		if r.err != nil {
			break
		}
		logits[i] = r.f32("logit")
	}
	if err := r.done(); err != nil {
		return 0, 0, nil, nil, err
	}
	return epoch, classes, labels, logits, nil
}
