package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
)

// Barrier checkpoint (durability subsystem, distributed side): the leader
// asks every worker to serialize its partition's embedding state, then
// assembles the per-rank payloads — together with its own topology mirror
// and the placement — into one manifest a future process can rebuild the
// whole cluster from without re-running the bootstrap forward pass.
//
// The barrier runs between batches (the serving tier holds its write lock
// across it), so every rank's state belongs to the same epoch: the
// manifest is an epoch-consistent cut of the distributed state.

// --- ckpt-state wire encoding (kindCkpt / kindCkptState) ---

// encodeCkptState serializes one worker's local embedding state: every
// layer's H rows and (for l>0) raw aggregate A rows, in ascending local
// index — the same row order the engine checkpoint uses.
func encodeCkptState(seq uint32, emb *gnn.Embeddings) []byte {
	n := emb.N
	b := appendU32(nil, seq)
	b = appendU32(b, uint32(len(emb.Dims)))
	for _, d := range emb.Dims {
		b = appendU32(b, uint32(d))
	}
	b = appendU32(b, uint32(n))
	for l := range emb.H {
		for i := 0; i < n; i++ {
			b = appendVec(b, emb.H[l][i])
			if l > 0 {
				b = appendVec(b, emb.A[l][i])
			}
		}
	}
	return b
}

// decodeCkptState decodes a worker's checkpoint payload into a local
// Embeddings. Like every decoder here it distrusts the wire: the declared
// geometry must match the payload length exactly before any row is read.
func decodeCkptState(payload []byte) (seq uint32, emb *gnn.Embeddings, err error) {
	r := &reader{b: payload}
	seq = r.u32("seq")
	ndims := r.count(r.u32("ndims"), 4, "ndims")
	dims := make([]int, 0, ndims)
	for i := 0; i < ndims && r.err == nil; i++ {
		dims = append(dims, int(r.u32("dim")))
	}
	n := int(r.u32("nlocal"))
	if r.err != nil {
		return 0, nil, r.err
	}
	if len(dims) < 2 {
		return 0, nil, fmt.Errorf("cluster: checkpoint state with %d dims", len(dims))
	}
	rowFloats := 0
	for l, d := range dims {
		if d <= 0 {
			return 0, nil, fmt.Errorf("cluster: checkpoint state dim[%d] = %d", l, d)
		}
		rowFloats += d
		if l > 0 {
			rowFloats += dims[l-1]
		}
	}
	// Division-based geometry guard, like the codec's count checks: the
	// n·rowFloats·4 product of wire-chosen values could wrap uint64 and
	// slip past an equality-only comparison.
	remaining := uint64(len(payload) - r.off)
	perVertex := uint64(rowFloats) * 4
	if n < 0 || uint64(n) > remaining/perVertex || uint64(n)*perVertex != remaining {
		return 0, nil, fmt.Errorf("cluster: checkpoint state geometry (%d vertices × %d floats) does not match %d payload bytes", n, rowFloats, remaining)
	}
	emb = gnn.NewEmbeddings(n, dims)
	for l := range emb.H {
		for i := 0; i < n; i++ {
			emb.H[l][i] = r.vec(dims[l], "H")
			if l > 0 {
				emb.A[l][i] = r.vec(dims[l-1], "A")
			}
		}
	}
	if err := r.done(); err != nil {
		return 0, nil, err
	}
	return seq, emb, nil
}

// GatherState runs the leader side of the barrier checkpoint: every
// worker serializes its partition and the payloads are assembled into one
// global embedding table via the ownership map. Must not overlap a batch;
// like a batch, any protocol failure breaks the leader permanently (the
// mesh may hold unconsumed messages).
func (l *Leader) GatherState() (*gnn.Embeddings, error) {
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrWorkerFailed, err)
	}
	l.seq++
	seq := l.seq
	l.mu.Unlock()

	for r := 0; r < l.own.K; r++ {
		if err := l.conn.Send(r, kindCkpt, appendU32(nil, seq)); err != nil {
			return nil, l.fail(fmt.Errorf("cluster: sending checkpoint request to worker %d: %w", r, err))
		}
	}

	var emb *gnn.Embeddings
	got := make([]bool, l.own.K)
	for received := 0; received < l.own.K; received++ {
		msg, err := l.conn.Recv()
		if err != nil {
			return nil, l.fail(fmt.Errorf("cluster: leader checkpoint recv: %w", err))
		}
		switch msg.Kind {
		case kindCkptState:
			if msg.From < 0 || msg.From >= l.own.K || got[msg.From] {
				return nil, l.fail(fmt.Errorf("cluster: duplicate/invalid checkpoint state from %d", msg.From))
			}
			got[msg.From] = true
			mseq, local, err := decodeCkptState(msg.Payload)
			if err != nil {
				return nil, l.fail(fmt.Errorf("cluster: checkpoint state from worker %d: %w", msg.From, err))
			}
			if mseq != seq {
				return nil, l.fail(fmt.Errorf("cluster: worker %d shipped checkpoint %d, expected %d", msg.From, mseq, seq))
			}
			if local.N != l.own.NumLocal(msg.From) {
				return nil, l.fail(fmt.Errorf("cluster: worker %d shipped %d rows, owns %d", msg.From, local.N, l.own.NumLocal(msg.From)))
			}
			if emb == nil {
				emb = gnn.NewEmbeddings(len(l.own.Owner), local.Dims)
			} else if !equalDims(emb.Dims, local.Dims) {
				return nil, l.fail(fmt.Errorf("cluster: worker %d shipped dims %v, others %v", msg.From, local.Dims, emb.Dims))
			}
			for li, gid := range l.own.Locals[msg.From] {
				for layer := range emb.H {
					emb.H[layer][gid].CopyFrom(local.H[layer][li])
					if layer > 0 {
						emb.A[layer][gid].CopyFrom(local.A[layer][li])
					}
				}
			}
		case kindError:
			return nil, l.fail(fmt.Errorf("%w: %s", ErrWorkerFailed, msg.Payload))
		default:
			return nil, l.fail(fmt.Errorf("cluster: leader got unexpected kind %d from %d during checkpoint", msg.Kind, msg.From))
		}
	}
	return emb, nil
}

func equalDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckpointEmbeddings runs the leader-coordinated barrier checkpoint and
// returns the epoch-consistent global embedding table. Must not overlap a
// batch (the serving tier serialises it on its write lock).
func (c *LocalCluster) CheckpointEmbeddings() (*gnn.Embeddings, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrWorkerFailed
	}
	c.mu.Unlock()
	return c.leader.GatherState()
}

// Ownership exposes the cluster's placement metadata (read-only).
func (c *LocalCluster) Ownership() *Ownership { return c.own }

// --- manifest serialization ---

const manifestMagic = "RIPPLMAN"
const (
	// v1: serial per-vertex binary.Write/Read embedding loops (seed era).
	// v2: the gnn sectioned embedding block — contiguous row ranges behind
	//     a per-section CRC index, encoded/decoded by a worker pool.
	// WriteManifest emits v2; LoadManifest reads both.
	manifestVersionSerial    = 1
	manifestVersionSectioned = 2
)

// ErrBadManifest wraps corruption and mismatch failures in LoadManifest.
var ErrBadManifest = errors.New("cluster: invalid checkpoint manifest")

// WriteManifest persists an epoch-consistent cut of a distributed
// deployment: the global topology, the partition placement, and the
// barrier-gathered embedding/aggregate state. Everything a restarted
// process needs to rebuild the cluster — workers slice their partitions
// straight out of it — without the bootstrap forward pass. Model weights
// are NOT included (like the engine checkpoint, they are the product of
// the shared model spec/seed).
func WriteManifest(w io.Writer, g *graph.Graph, own *Ownership, emb *gnn.Embeddings) error {
	n := g.NumVertices()
	if emb.N != n || len(own.Owner) != n {
		return fmt.Errorf("cluster: manifest pieces disagree: graph %d, embeddings %d, ownership %d vertices", n, emb.N, len(own.Owner))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(manifestMagic); err != nil {
		return fmt.Errorf("cluster: writing manifest: %w", err)
	}
	writeU32 := func(v uint32) { _ = binary.Write(bw, binary.LittleEndian, v) }
	writeU32(manifestVersionSectioned)
	writeU32(uint32(n))
	writeU32(uint32(own.K))
	writeU32(uint32(len(emb.Dims)))
	for _, d := range emb.Dims {
		writeU32(uint32(d))
	}
	for _, r := range own.Owner {
		writeU32(uint32(r))
	}

	writeU32(uint32(g.NumEdges()))
	var edgeErr error
	g.ForEachEdge(func(u, v graph.VertexID, wgt float32) {
		writeU32(uint32(u))
		writeU32(uint32(v))
		if err := binary.Write(bw, binary.LittleEndian, wgt); err != nil && edgeErr == nil {
			edgeErr = err
		}
	})
	if edgeErr != nil {
		return fmt.Errorf("cluster: writing manifest edges: %w", edgeErr)
	}

	// The embedding state — the bulk of the manifest — goes out as the
	// sectioned block, encoded in parallel and byte-identical at any
	// worker count.
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cluster: writing manifest: %w", err)
	}
	if _, err := w.Write(emb.AppendSectioned(nil)); err != nil {
		return fmt.Errorf("cluster: writing manifest embeddings: %w", err)
	}
	return nil
}

// LoadManifest reconstructs the global topology, placement and embedding
// state from a manifest written by WriteManifest. The result feeds
// straight into NewLocal (or a worker's local-state slicing), skipping
// the offline forward pass entirely.
func LoadManifest(rd io.Reader) (*graph.Graph, *partition.Assignment, *gnn.Embeddings, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != manifestMagic {
		return nil, nil, nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	readU32 := func(what string) (uint32, error) {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return 0, fmt.Errorf("%w: truncated %s: %v", ErrBadManifest, what, err)
		}
		return v, nil
	}
	version, err := readU32("version")
	if err != nil {
		return nil, nil, nil, err
	}
	if version != manifestVersionSerial && version != manifestVersionSectioned {
		return nil, nil, nil, fmt.Errorf("%w: version %d, want %d or %d", ErrBadManifest,
			version, manifestVersionSerial, manifestVersionSectioned)
	}
	n, err := readU32("vertex count")
	if err != nil {
		return nil, nil, nil, err
	}
	k, err := readU32("worker count")
	if err != nil {
		return nil, nil, nil, err
	}
	ndims, err := readU32("dims count")
	if err != nil {
		return nil, nil, nil, err
	}
	if k == 0 || ndims < 2 || ndims > 1024 {
		return nil, nil, nil, fmt.Errorf("%w: k=%d, %d dims", ErrBadManifest, k, ndims)
	}
	dims := make([]int, ndims)
	for i := range dims {
		d, err := readU32("dim")
		if err != nil {
			return nil, nil, nil, err
		}
		if d == 0 {
			return nil, nil, nil, fmt.Errorf("%w: dim[%d] = 0", ErrBadManifest, i)
		}
		dims[i] = int(d)
	}
	assign := &partition.Assignment{K: int(k), Part: make([]int32, n)}
	for u := range assign.Part {
		p, err := readU32("owner")
		if err != nil {
			return nil, nil, nil, err
		}
		if p >= k {
			return nil, nil, nil, fmt.Errorf("%w: vertex %d owned by rank %d of %d", ErrBadManifest, u, p, k)
		}
		assign.Part[u] = int32(p)
	}

	g := graph.New(int(n))
	m, err := readU32("edge count")
	if err != nil {
		return nil, nil, nil, err
	}
	for i := uint32(0); i < m; i++ {
		u, err := readU32("edge source")
		if err != nil {
			return nil, nil, nil, err
		}
		v, err := readU32("edge sink")
		if err != nil {
			return nil, nil, nil, err
		}
		var wgt float32
		if err := binary.Read(br, binary.LittleEndian, &wgt); err != nil {
			return nil, nil, nil, fmt.Errorf("%w: truncated edge weight: %v", ErrBadManifest, err)
		}
		if err := g.AddEdge(graph.VertexID(u), graph.VertexID(v), wgt); err != nil {
			return nil, nil, nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
		}
	}

	if version == manifestVersionSerial {
		emb := gnn.NewEmbeddings(int(n), dims)
		for l := range emb.H {
			for u := 0; u < int(n); u++ {
				if err := binary.Read(br, binary.LittleEndian, []float32(emb.H[l][u])); err != nil {
					return nil, nil, nil, fmt.Errorf("%w: truncated embeddings: %v", ErrBadManifest, err)
				}
				if l > 0 {
					if err := binary.Read(br, binary.LittleEndian, []float32(emb.A[l][u])); err != nil {
						return nil, nil, nil, fmt.Errorf("%w: truncated embeddings: %v", ErrBadManifest, err)
					}
				}
			}
		}
		return g, assign, emb, nil
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: reading embeddings: %v", ErrBadManifest, err)
	}
	emb, rest, err := gnn.DecodeSectioned(data, int(n), dims)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if len(rest) != 0 {
		return nil, nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadManifest, len(rest))
	}
	return g, assign, emb, nil
}
