package cluster

import (
	"fmt"
	"sort"
	"time"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
	"ripple/internal/transport"
)

// Strategy selects the distributed maintenance algorithm a worker runs.
type Strategy string

const (
	// StratRipple is distributed incremental propagation (§5.3): per hop,
	// one push-only halo exchange carrying delta messages for remote
	// mailbox stubs.
	StratRipple Strategy = "ripple"
	// StratRC is the distributed recompute baseline: per hop it must mark
	// remote affected vertices, then pull the previous-hop embeddings of
	// ALL remote in-neighbours of affected vertices — including unaffected
	// ones. This pull traffic is the ≈70× communication overhead the
	// paper measures (Fig. 12c).
	StratRC Strategy = "rc"
)

// localTable is a dense local-index→vector accumulator with deterministic
// iteration and pooled storage (the per-hop mailboxes of one worker).
type localTable struct {
	width   int
	slots   []tensor.Vector
	touched []int32
	pool    []tensor.Vector
}

func newLocalTable(n, width int) *localTable {
	return &localTable{width: width, slots: make([]tensor.Vector, n)}
}

func (t *localTable) get(u int32) tensor.Vector {
	if v := t.slots[u]; v != nil {
		return v
	}
	var v tensor.Vector
	if k := len(t.pool); k > 0 {
		v = t.pool[k-1]
		t.pool = t.pool[:k-1]
	} else {
		v = tensor.NewVector(t.width)
	}
	t.slots[u] = v
	t.touched = append(t.touched, u)
	return v
}

func (t *localTable) lookup(u int32) tensor.Vector { return t.slots[u] }

func (t *localTable) sortedTouched() []int32 {
	sort.Slice(t.touched, func(i, j int) bool { return t.touched[i] < t.touched[j] })
	return t.touched
}

func (t *localTable) reset() {
	for _, u := range t.touched {
		v := t.slots[u]
		v.Zero()
		t.pool = append(t.pool, v)
		t.slots[u] = nil
	}
	t.touched = t.touched[:0]
}

// wEdgeEvent is a structural event held by the source's owner. The sink is
// a global id (possibly remote).
type wEdgeEvent struct {
	srcLocal int32
	sink     graph.VertexID
	coeff    float32
}

// Worker is one rank of the distributed runtime. It owns a partition's
// vertices, their adjacency (with global peer ids — remote peers are halo
// vertices), and their embeddings, and executes the BSP propagation loop.
type Worker struct {
	rank       int
	leaderRank int
	conn       transport.Conn
	model      *gnn.Model
	own        *Ownership
	strat      Strategy

	st      *localState
	scratch *gnn.Scratch

	// Ripple state.
	mailbox []*localTable
	oldH    []*localTable
	changed [][]int32
	events  []wEdgeEvent
	halo    *haloTable // pooled remote-sink accumulators, recycled per hop

	// RC state.
	affectStamp []uint32
	affectEpoch uint32

	// batch-scoped distinct-affected counter
	affectedStamp []uint32
	epoch         uint32

	pending []transport.Message // out-of-phase reorder buffer
}

// NewWorker builds a worker from the global bootstrap state (its share is
// sliced out; the global structures are not retained).
func NewWorker(rank int, conn transport.Conn, leaderRank int, model *gnn.Model, own *Ownership, strat Strategy, g *graph.Graph, emb *gnn.Embeddings) (*Worker, error) {
	st, err := buildLocalState(g, emb, own, rank)
	if err != nil {
		return nil, err
	}
	if strat != StratRipple && strat != StratRC {
		return nil, fmt.Errorf("cluster: unknown strategy %q", strat)
	}
	nLocal := own.NumLocal(rank)
	w := &Worker{
		rank:          rank,
		leaderRank:    leaderRank,
		conn:          conn,
		model:         model,
		own:           own,
		strat:         strat,
		st:            st,
		scratch:       gnn.NewScratch(model.MaxDim()),
		mailbox:       make([]*localTable, model.L()+1),
		oldH:          make([]*localTable, model.L()+1),
		changed:       make([][]int32, model.L()+1),
		halo:          newHaloTable(model.MaxDim()),
		affectStamp:   make([]uint32, nLocal),
		affectedStamp: make([]uint32, nLocal),
	}
	for l := 0; l <= model.L(); l++ {
		w.oldH[l] = newLocalTable(nLocal, model.Dims[l])
		if l > 0 {
			w.mailbox[l] = newLocalTable(nLocal, model.Dims[l-1])
		}
	}
	return w, nil
}

// Embeddings exposes the worker's local embedding state (read-only; only
// safe when no batch is in flight).
func (w *Worker) Embeddings() *gnn.Embeddings { return w.st.emb }

// Run processes batches until a shutdown message or a fatal error. A
// processing error is reported to the leader as a kindError message before
// returning.
func (w *Worker) Run() error {
	defer func() {
		if r := recover(); r != nil {
			// A panicking worker must not hang the cluster: convert to an
			// error message for the leader, then re-panic to surface the bug.
			_ = w.conn.Send(w.leaderRank, kindError, []byte(fmt.Sprintf("worker %d panic: %v", w.rank, r)))
			panic(r)
		}
	}()
	for {
		// Between batches, worker-to-worker traffic for the *next* batch
		// can outrun the leader's batch message on independent TCP links;
		// buffer it instead of treating it as a protocol error.
		msg, err := w.nextMessage(func(m transport.Message) bool {
			return m.Kind == kindBatch || m.Kind == kindShutdown || m.Kind == kindCkpt
		})
		if err != nil {
			return fmt.Errorf("cluster: worker %d recv: %w", w.rank, err)
		}
		switch msg.Kind {
		case kindShutdown:
			return nil
		case kindCkpt:
			// Barrier checkpoint: serialize this partition's embedding
			// state for the leader's manifest. Arrives only between
			// batches, so the reply is an epoch-consistent cut.
			r := &reader{b: msg.Payload}
			seq := r.u32("seq")
			if err := r.done(); err == nil {
				err = w.conn.Send(w.leaderRank, kindCkptState, encodeCkptState(seq, w.st.emb))
			}
			if err != nil {
				sendErr := w.conn.Send(w.leaderRank, kindError, []byte(fmt.Sprintf("worker %d: %v", w.rank, err)))
				if sendErr != nil {
					return fmt.Errorf("cluster: worker %d: %v (and report failed: %w)", w.rank, err, sendErr)
				}
				return fmt.Errorf("cluster: worker %d: %w", w.rank, err)
			}
		case kindBatch:
			seq, flags, updates, err := decodeBatch(msg.Payload)
			if err == nil {
				err = w.processBatch(seq, flags, updates)
			}
			if err != nil {
				sendErr := w.conn.Send(w.leaderRank, kindError, []byte(fmt.Sprintf("worker %d: %v", w.rank, err)))
				if sendErr != nil {
					return fmt.Errorf("cluster: worker %d: %v (and report failed: %w)", w.rank, err, sendErr)
				}
				return fmt.Errorf("cluster: worker %d: %w", w.rank, err)
			}
		default:
			return fmt.Errorf("cluster: worker %d unexpected message kind %d between batches", w.rank, msg.Kind)
		}
	}
}

// processBatch applies one routed sub-batch and participates in the BSP
// propagation rounds for every hop. When the leader set batchFlagDelta it
// additionally ships the final-layer rows this worker's local frontier
// touched, as a kindDelta message following the kindDone report.
func (w *Worker) processBatch(seq uint32, flags uint8, updates []routedUpdate) error {
	before := w.conn.Counters()
	stats := workerStats{Seq: seq}
	w.epoch++
	if w.epoch == 0 {
		for i := range w.affectedStamp {
			w.affectedStamp[i] = 0
		}
		w.epoch = 1
	}

	// --- Update phase: local topology and feature changes. ---
	t0 := time.Now()
	w.events = w.events[:0]
	w.changed[0] = w.changed[0][:0]
	for _, upd := range updates {
		if err := w.applyUpdate(upd, &stats); err != nil {
			return err
		}
	}
	for _, lu := range w.oldH[0].sortedTouched() {
		w.changed[0] = append(w.changed[0], lu)
		w.countAffected(lu, &stats)
	}
	stats.UpdateNanos = time.Since(t0).Nanoseconds()

	// --- Propagate phase. ---
	var err error
	switch w.strat {
	case StratRipple:
		err = w.propagateRipple(&stats)
	case StratRC:
		err = w.propagateRC(&stats)
	}
	if err != nil {
		return err
	}

	// The delta payload must be built before the per-batch tables reset:
	// the old labels come from oldH's pre-batch final-layer rows.
	var delta []byte
	if flags&batchFlagDelta != 0 {
		rows, err := w.deltaRows()
		if err != nil {
			return err
		}
		delta = encodeDelta(seq, w.model.Dims[w.model.L()], rows)
	}

	for l := 0; l <= w.model.L(); l++ {
		w.oldH[l].reset()
		if l > 0 {
			w.mailbox[l].reset()
		}
	}

	after := w.conn.Counters()
	stats.BytesSent = after.BytesSent - before.BytesSent
	stats.MsgsSent = after.MsgsSent - before.MsgsSent
	if err := w.conn.Send(w.leaderRank, kindDone, encodeDone(stats)); err != nil {
		return err
	}
	// Gather traffic rides after the stats snapshot on purpose: the leader
	// accounts it separately (Result.GatherBytes), keeping the workers'
	// propagation byte counts comparable with and without a serving tier.
	if delta != nil {
		return w.conn.Send(w.leaderRank, kindDelta, delta)
	}
	return nil
}

// deltaRows collects the final-layer rows this batch touched, in local
// (hence ascending-global) frontier order. Only the incremental strategy
// maintains the pre-batch final-layer table the old labels come from; the
// RC baseline is a measurement harness, not a serving backend.
func (w *Worker) deltaRows() ([]DeltaRow, error) {
	if w.strat != StratRipple {
		return nil, fmt.Errorf("cluster: delta gather requires the %q strategy, worker %d runs %q", StratRipple, w.rank, w.strat)
	}
	l := w.model.L()
	rows := make([]DeltaRow, 0, len(w.changed[l]))
	for _, lv := range w.changed[l] {
		h := w.st.emb.H[l][lv]
		oldLabel := int32(-1)
		if old := w.oldH[l].lookup(lv); old != nil {
			oldLabel = int32(old.ArgMax())
		}
		rows = append(rows, DeltaRow{
			Vertex:   w.own.Locals[w.rank][lv],
			OldLabel: oldLabel,
			NewLabel: int32(h.ArgMax()),
			Logits:   h,
		})
	}
	return rows, nil
}

// applyUpdate applies one routed update to the local topology/features.
func (w *Worker) applyUpdate(upd routedUpdate, stats *workerStats) error {
	switch upd.Kind {
	case engine.EdgeAdd:
		if !upd.NoCompute { // we own the source
			lu := w.localOf(upd.U)
			for _, e := range w.st.out[lu] {
				if e.Peer == upd.V {
					return fmt.Errorf("%w: edge-add (%d,%d) already exists", engine.ErrBadUpdate, upd.U, upd.V)
				}
			}
			w.st.out[lu] = append(w.st.out[lu], graph.Edge{Peer: upd.V, Weight: upd.Weight})
			w.events = append(w.events, wEdgeEvent{srcLocal: lu, sink: upd.V, coeff: gnn.Coeff(w.model.Agg, upd.Weight)})
		}
		if w.own.Owner[upd.V] == int32(w.rank) {
			lv := w.localOf(upd.V)
			w.st.in[lv] = append(w.st.in[lv], graph.Edge{Peer: upd.U, Weight: upd.Weight})
		}
	case engine.EdgeDelete:
		if !upd.NoCompute {
			lu := w.localOf(upd.U)
			wgt, ok := removeEdgeFrom(&w.st.out[lu], upd.V)
			if !ok {
				return fmt.Errorf("%w: edge-delete (%d,%d) not found", engine.ErrBadUpdate, upd.U, upd.V)
			}
			w.events = append(w.events, wEdgeEvent{srcLocal: lu, sink: upd.V, coeff: -gnn.Coeff(w.model.Agg, wgt)})
		}
		if w.own.Owner[upd.V] == int32(w.rank) {
			lv := w.localOf(upd.V)
			if _, ok := removeEdgeFrom(&w.st.in[lv], upd.U); !ok {
				return fmt.Errorf("%w: edge-delete (%d,%d) missing from in-list", engine.ErrBadUpdate, upd.U, upd.V)
			}
		}
	case engine.FeatureUpdate:
		lu := w.localOf(upd.U)
		if len(upd.Features) != w.model.Dims[0] {
			return fmt.Errorf("%w: feature width %d, want %d", engine.ErrBadUpdate, len(upd.Features), w.model.Dims[0])
		}
		if w.oldH[0].lookup(lu) == nil {
			w.oldH[0].get(lu).CopyFrom(w.st.emb.H[0][lu])
		}
		w.st.emb.H[0][lu].CopyFrom(upd.Features)
	default:
		return fmt.Errorf("%w: unknown kind %v", engine.ErrBadUpdate, upd.Kind)
	}
	return nil
}

func removeEdgeFrom(list *[]graph.Edge, peer graph.VertexID) (float32, bool) {
	l := *list
	for i, e := range l {
		if e.Peer == peer {
			wgt := e.Weight
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return wgt, true
		}
	}
	return 0, false
}

func (w *Worker) localOf(gid graph.VertexID) int32 { return w.own.LocalIdx[gid] }

func (w *Worker) countAffected(lu int32, stats *workerStats) {
	if w.affectedStamp[lu] != w.epoch {
		w.affectedStamp[lu] = w.epoch
		stats.Affected++
	}
}

// nextMessage returns the next message satisfying match, buffering any
// other worker-to-worker traffic that arrives early (a fast peer may
// already be one hop ahead).
func (w *Worker) nextMessage(match func(transport.Message) bool) (transport.Message, error) {
	for i, m := range w.pending {
		if match(m) {
			w.pending = append(w.pending[:i], w.pending[i+1:]...)
			return m, nil
		}
	}
	for {
		m, err := w.conn.Recv()
		if err != nil {
			return transport.Message{}, err
		}
		if match(m) {
			return m, nil
		}
		if m.Kind == kindShutdown || m.Kind == kindBatch {
			return transport.Message{}, fmt.Errorf("cluster: worker %d received %d mid-batch", w.rank, m.Kind)
		}
		w.pending = append(w.pending, m)
	}
}

// collectPeers gathers exactly one message of the given kind and hop from
// every other worker, returned ordered by sender rank (deterministic
// accumulation order).
func (w *Worker) collectPeers(kind uint8, hop int) ([]transport.Message, error) {
	k := w.own.K
	byRank := make([]transport.Message, k)
	got := make([]bool, k)
	for count := 0; count < k-1; {
		m, err := w.nextMessage(func(m transport.Message) bool {
			if m.Kind != kind || len(m.Payload) < 4 {
				return false
			}
			msgHop := int(uint32(m.Payload[0]) | uint32(m.Payload[1])<<8 | uint32(m.Payload[2])<<16 | uint32(m.Payload[3])<<24)
			return msgHop == hop
		})
		if err != nil {
			return nil, err
		}
		if m.From < 0 || m.From >= k || got[m.From] {
			return nil, fmt.Errorf("cluster: worker %d duplicate/invalid %d-message from %d at hop %d", w.rank, kind, m.From, hop)
		}
		byRank[m.From] = m
		got[m.From] = true
		count++
	}
	out := make([]transport.Message, 0, k-1)
	for r := 0; r < k; r++ {
		if got[r] {
			out = append(out, byRank[r])
		}
	}
	return out, nil
}
