package cluster

import (
	"bytes"
	"testing"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// TestDecodeRejectsOverflowingCounts pins the bounds-guard arithmetic: a
// hostile halo header whose count×entry-size product wraps uint64 must be
// rejected before any allocation, not admitted by the wrapped product.
func TestDecodeRejectsOverflowingCounts(t *testing.T) {
	payload := appendU32(appendU32(appendU32(nil, 1), 0x7FFFFFFF), 0x80000000)
	if _, _, err := decodeHalo(payload); err == nil {
		t.Fatal("overflowing halo count decoded without error")
	}
	if _, _, _, err := decodeBatch(appendU32(append(appendU32(nil, 0), 0), 0xFFFFFFFF)); err == nil {
		t.Fatal("oversized batch count decoded without error")
	}
	if _, _, _, err := decodeIDs(append(appendU32(nil, 0), 0, 0xFF, 0xFF, 0xFF, 0xFF)); err == nil {
		t.Fatal("oversized id count decoded without error")
	}
	// A delta header with classes/count chosen so n·(12+classes·4) wraps
	// uint64 must be rejected by the division-based guard, like the halo
	// case above. appendU32 order: seq, classes, count.
	if _, _, _, err := decodeDelta(appendU32(appendU32(appendU32(nil, 1), 0x7FFFFFFF), 0x80000000)); err == nil {
		t.Fatal("overflowing delta count decoded without error")
	}
	if _, _, _, err := decodeDelta(appendU32(appendU32(appendU32(nil, 1), 2), 0xFFFFFFFF)); err == nil {
		t.Fatal("oversized delta count decoded without error")
	}
}

// FuzzCodecRoundTrip fuzzes every wire decoder with (kind, payload)
// pairs. Two properties must hold for arbitrary input:
//
//  1. Decoding never panics and never allocates unboundedly (hostile
//     counts/widths are rejected by the bounds checks).
//  2. Whatever decodes successfully re-encodes canonically: a second
//     decode+encode cycle reproduces the exact same bytes.
//
// The seed corpus covers every message kind of the cluster protocol
// (kindBatch, kindHalo, kindAffect, kindNeed, kindFill, kindDone,
// kindDelta), each routed to the decoder its kind selects on the real
// wire.
func FuzzCodecRoundTrip(f *testing.F) {
	// kindBatch: a routed sub-batch with all three update kinds, a
	// NoCompute topology copy, a feature vector, and the delta-gather flag.
	f.Add(kindBatch, encodeBatch(7, batchFlagDelta, []routedUpdate{
		{Update: engine.Update{Kind: engine.EdgeAdd, U: 1, V: 2, Weight: 1.5}},
		{Update: engine.Update{Kind: engine.EdgeDelete, U: 2, V: 1}, NoCompute: true},
		{Update: engine.Update{Kind: engine.FeatureUpdate, U: 3, Features: tensor.Vector{0.25, -1, 3.5}}},
	}))
	// kindHalo / kindFill: per-hop vector payloads (incl. empty).
	f.Add(kindHalo, encodeHalo(2, 3, []haloEntry{
		{id: 4, vec: tensor.Vector{1, 2, 3}},
		{id: 9, vec: tensor.Vector{-0.5, 0, 0.5}},
	}))
	f.Add(kindFill, encodeHalo(1, 4, nil))
	// kindAffect / kindNeed: id lists for the RC phases.
	f.Add(kindAffect, encodeIDs(1, 0, []graph.VertexID{0, 7, 42}))
	f.Add(kindNeed, encodeIDs(3, 1, nil))
	// kindDone: per-batch worker stats.
	f.Add(kindDone, encodeDone(workerStats{
		Seq: 9, ComputeNanos: 1e6, UpdateNanos: 2e5, Affected: 12,
		Messages: 99, VectorOps: 1024, BytesSent: 4096, MsgsSent: 7,
	}))
	// kindDelta: gathered final-layer rows (incl. empty, the common case
	// for batches whose frontier dies before the label layer).
	f.Add(kindDelta, encodeDelta(5, 3, []DeltaRow{
		{Vertex: 2, OldLabel: 1, NewLabel: 0, Logits: tensor.Vector{2, 1, -3}},
		{Vertex: 40, OldLabel: -1, NewLabel: 2, Logits: tensor.Vector{0, 0, 1}},
	}))
	f.Add(kindDelta, encodeDelta(6, 4, nil))
	// Truncated/garbage seeds steer the fuzzer at the error paths.
	f.Add(kindBatch, []byte{1, 2})
	f.Add(kindHalo, []byte{0xff, 0xff, 0xff, 0xff})
	// Regression: width/count chosen so n*(4+width*4) wraps uint64 to 0 —
	// a multiplication-based bounds guard would admit a ~64 GiB
	// preallocation. appendU32 order: hop, width, count.
	f.Add(kindHalo, appendU32(appendU32(appendU32(nil, 1), 0x7FFFFFFF), 0x80000000))
	// Same wrap shape against the delta decoder (seq, classes, count).
	f.Add(kindDelta, appendU32(appendU32(appendU32(nil, 1), 0x7FFFFFFF), 0x80000000))
	// kindCkptState: a barrier-checkpoint partition payload, plus a
	// geometry/length mismatch that must be rejected before allocation.
	ckptEmb := gnn.NewEmbeddings(3, []int{2, 2})
	ckptEmb.H[1][1][0] = 4.5
	f.Add(kindCkptState, encodeCkptState(3, ckptEmb))
	f.Add(kindCkptState, appendU32(appendU32(appendU32(appendU32(appendU32(nil, 1), 2), 4), 4), 0x7FFFFFFF))
	// The WAL payload codec (byte 0 is not a wire kind; it routes the
	// fuzzer at EncodeUpdates/DecodeUpdates).
	f.Add(byte(0), EncodeUpdates([]engine.Update{
		{Kind: engine.EdgeAdd, U: 1, V: 2, Weight: 1.5},
		{Kind: engine.FeatureUpdate, U: 3, Features: tensor.Vector{0.25, -1, 3.5}},
	}))
	// Replication frames (0x20+): the leader→follower stream's
	// epoch-tagged payloads, including the count-wrap shapes that must be
	// rejected before allocation.
	f.Add(KindRepHello, EncodeEpochFrame(1<<40))
	f.Add(KindRepDelta, EncodeDeltaFrame(41, 3, []DeltaRow{
		{Vertex: 2, OldLabel: 1, NewLabel: 0, Logits: tensor.Vector{2, 1, -3}},
	}))
	f.Add(KindRepDelta, appendU32(appendU32(appendU64(nil, 1), 0x7FFFFFFF), 0x80000000))
	f.Add(KindRepSnapshot, EncodeSnapshotFrame(9, 2, []int32{1, -1, 0}, []float32{1, 2, 3, 4, 5, 6}))
	f.Add(KindRepSnapshot, appendU32(appendU32(appendU64(nil, 1), 0x7FFFFFFF), 0x80000000))

	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		switch kind {
		case kindBatch:
			seq, flags, ups, err := decodeBatch(payload)
			if err != nil {
				return
			}
			enc := encodeBatch(seq, flags, ups)
			seq2, flags2, ups2, err := decodeBatch(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if seq2 != seq || flags2 != flags || len(ups2) != len(ups) {
				t.Fatalf("re-decode mismatch: seq %d→%d, flags %d→%d, %d→%d updates", seq, seq2, flags, flags2, len(ups), len(ups2))
			}
			if enc2 := encodeBatch(seq2, flags2, ups2); !bytes.Equal(enc, enc2) {
				t.Fatal("batch encoding not canonical")
			}
		case kindHalo, kindFill:
			hop, entries, err := decodeHalo(payload)
			if err != nil {
				return
			}
			width := 0
			if len(entries) > 0 {
				width = len(entries[0].vec)
			}
			enc := encodeHalo(hop, width, entries)
			hop2, entries2, err := decodeHalo(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if hop2 != hop || len(entries2) != len(entries) {
				t.Fatalf("re-decode mismatch: hop %d→%d, %d→%d entries", hop, hop2, len(entries), len(entries2))
			}
			if enc2 := encodeHalo(hop2, width, entries2); !bytes.Equal(enc, enc2) {
				t.Fatal("halo encoding not canonical")
			}
		case kindAffect, kindNeed:
			hop, phase, ids, err := decodeIDs(payload)
			if err != nil {
				return
			}
			enc := encodeIDs(hop, phase, ids)
			hop2, phase2, ids2, err := decodeIDs(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if hop2 != hop || phase2 != phase || len(ids2) != len(ids) {
				t.Fatal("re-decode mismatch")
			}
			if enc2 := encodeIDs(hop2, phase2, ids2); !bytes.Equal(enc, enc2) {
				t.Fatal("id-list encoding not canonical")
			}
		case kindDelta:
			seq, classes, rows, err := decodeDelta(payload)
			if err != nil {
				return
			}
			enc := encodeDelta(seq, classes, rows)
			seq2, classes2, rows2, err := decodeDelta(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if seq2 != seq || classes2 != classes || len(rows2) != len(rows) {
				t.Fatalf("re-decode mismatch: seq %d→%d, classes %d→%d, %d→%d rows", seq, seq2, classes, classes2, len(rows), len(rows2))
			}
			if enc2 := encodeDelta(seq2, classes2, rows2); !bytes.Equal(enc, enc2) {
				t.Fatal("delta encoding not canonical")
			}
		case kindCkptState:
			seq, emb, err := decodeCkptState(payload)
			if err != nil {
				return
			}
			enc := encodeCkptState(seq, emb)
			seq2, emb2, err := decodeCkptState(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if seq2 != seq || emb2.N != emb.N || emb2.MaxAbsDiff(emb) != 0 {
				t.Fatal("ckpt-state re-decode mismatch")
			}
			if enc2 := encodeCkptState(seq2, emb2); !bytes.Equal(enc, enc2) {
				t.Fatal("ckpt-state encoding not canonical")
			}
		case KindRepSubscribe, KindRepHello:
			epoch, err := DecodeEpochFrame(payload)
			if err != nil {
				return
			}
			if !bytes.Equal(EncodeEpochFrame(epoch), payload) {
				t.Fatal("epoch frame encoding not canonical")
			}
		case KindRepDelta:
			epoch, classes, rows, err := DecodeDeltaFrame(payload)
			if err != nil {
				return
			}
			enc := EncodeDeltaFrame(epoch, classes, rows)
			epoch2, classes2, rows2, err := DecodeDeltaFrame(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if epoch2 != epoch || classes2 != classes || len(rows2) != len(rows) {
				t.Fatalf("re-decode mismatch: epoch %d→%d, classes %d→%d, %d→%d rows", epoch, epoch2, classes, classes2, len(rows), len(rows2))
			}
			if enc2 := EncodeDeltaFrame(epoch2, classes2, rows2); !bytes.Equal(enc, enc2) {
				t.Fatal("replication delta encoding not canonical")
			}
		case KindRepSnapshot:
			epoch, classes, labels, logits, err := DecodeSnapshotFrame(payload)
			if err != nil {
				return
			}
			enc := EncodeSnapshotFrame(epoch, classes, labels, logits)
			epoch2, classes2, labels2, logits2, err := DecodeSnapshotFrame(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if epoch2 != epoch || classes2 != classes || len(labels2) != len(labels) || len(logits2) != len(logits) {
				t.Fatal("snapshot frame re-decode mismatch")
			}
			if enc2 := EncodeSnapshotFrame(epoch2, classes2, labels2, logits2); !bytes.Equal(enc, enc2) {
				t.Fatal("snapshot frame encoding not canonical")
			}
		case 0:
			ups, err := DecodeUpdates(payload)
			if err != nil {
				return
			}
			enc := EncodeUpdates(ups)
			ups2, err := DecodeUpdates(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if len(ups2) != len(ups) {
				t.Fatal("updates re-decode mismatch")
			}
			if enc2 := EncodeUpdates(ups2); !bytes.Equal(enc, enc2) {
				t.Fatal("updates encoding not canonical")
			}
		case kindDone:
			st, err := decodeDone(payload)
			if err != nil {
				return
			}
			enc := encodeDone(st)
			st2, err := decodeDone(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if enc2 := encodeDone(st2); !bytes.Equal(enc, enc2) {
				t.Fatal("stats encoding not canonical")
			}
		}
	})
}
