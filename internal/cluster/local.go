package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/tensor"
	"ripple/internal/transport"
)

// Result aggregates one distributed batch. Wall time is measured on this
// machine; SimCommTime is the modelled wire time for the paper's 10 Gbps
// cluster, computed from the actually-serialised bytes and message counts
// (DESIGN.md §1 documents this substitution for the MPI/Ethernet testbed).
type Result struct {
	Updates  int
	Affected int64
	// VectorOps and Messages aggregate the workers' numerical work.
	VectorOps, Messages int64
	// WallTime is the leader-observed end-to-end batch latency.
	WallTime time.Duration
	// UpdateTime is the slowest worker's topology-update time.
	UpdateTime time.Duration
	// ComputeTime is the slowest worker's pure local compute time
	// (communication waits excluded) — the BSP critical path.
	ComputeTime time.Duration
	// RouteBytes is what the leader shipped to workers for this batch.
	RouteBytes int64
	// GatherBytes/GatherMsgs measure the delta-gather phase (ApplyBatchDelta
	// only): the changed final-layer rows workers shipped back for epoch
	// publication. O(frontier rows), never O(|V|).
	GatherBytes, GatherMsgs int64
	// CommBytes/CommMsgs total the workers' sent traffic (halo exchanges,
	// RC pulls).
	CommBytes, CommMsgs int64
	// SimCommTime is the modelled communication time: the busiest worker's
	// traffic plus the leader's routing traffic over the modelled network.
	SimCommTime time.Duration
}

// SimLatency is the modelled batch latency on the paper's testbed:
// update + compute critical path + modelled communication.
func (r Result) SimLatency() time.Duration {
	return r.UpdateTime + r.ComputeTime + r.SimCommTime
}

// ErrWorkerFailed wraps worker-reported fatal errors.
var ErrWorkerFailed = errors.New("cluster: worker failed")

// LocalConfig configures an in-process cluster.
type LocalConfig struct {
	Graph      *graph.Graph // bootstrapped global topology
	Model      *gnn.Model
	Embeddings *gnn.Embeddings // bootstrapped global embeddings
	Assignment *partition.Assignment
	Strategy   Strategy           // StratRipple or StratRC
	Net        transport.NetModel // zero value → transport.TenGigE
}

// LocalCluster runs k worker goroutines plus a leader endpoint over the
// in-process fabric — the execution harness for the distributed
// experiments and examples. The leader logic (§5.2 batching/routing) lives
// in Leader and is shared with the TCP deployment.
type LocalCluster struct {
	leader  *Leader
	own     *Ownership
	workers []*Worker
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

// NewLocal bootstraps a k-worker in-process cluster from globally
// bootstrapped state. The global graph/embeddings are only read.
func NewLocal(cfg LocalConfig) (*LocalCluster, error) {
	if cfg.Graph == nil || cfg.Model == nil || cfg.Embeddings == nil || cfg.Assignment == nil {
		return nil, errors.New("cluster: NewLocal requires graph, model, embeddings and assignment")
	}
	if err := cfg.Assignment.Validate(cfg.Graph.NumVertices()); err != nil {
		return nil, err
	}
	k := cfg.Assignment.K
	own := BuildOwnership(cfg.Assignment)
	conns, err := transport.NewMemoryFabric(k + 1) // rank k = leader
	if err != nil {
		return nil, err
	}
	c := &LocalCluster{own: own, leader: NewLeader(conns[k], own, cfg.Net)}
	for r := 0; r < k; r++ {
		w, err := NewWorker(r, conns[r], k, cfg.Model, own, cfg.Strategy, cfg.Graph, cfg.Embeddings)
		if err != nil {
			return nil, fmt.Errorf("cluster: building worker %d: %w", r, err)
		}
		c.workers = append(c.workers, w)
	}
	for _, w := range c.workers {
		c.wg.Add(1)
		go func(w *Worker) {
			defer c.wg.Done()
			if err := w.Run(); err != nil {
				c.leader.mu.Lock()
				if c.leader.broken == nil {
					c.leader.broken = err
				}
				c.leader.mu.Unlock()
			}
		}(w)
	}
	return c, nil
}

// K returns the number of workers.
func (c *LocalCluster) K() int { return c.own.K }

// NumVertices returns the number of vertices across all partitions.
func (c *LocalCluster) NumVertices() int { return len(c.own.Owner) }

// Dims returns the model dimensions [featDim, hidden..., classes] of the
// maintained embeddings.
func (c *LocalCluster) Dims() []int { return c.workers[0].st.emb.Dims }

// ApplyBatch routes one update batch to the workers, runs the BSP
// propagation, and aggregates the workers' reports.
func (c *LocalCluster) ApplyBatch(batch []engine.Update) (Result, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Result{}, transport.ErrClosed
	}
	c.mu.Unlock()
	return c.leader.ApplyBatch(batch)
}

// ApplyBatchDelta is ApplyBatch plus the delta-gather phase: the returned
// rows are the final-layer rows this batch touched, globally id-sorted —
// what a serving tier needs to publish the next epoch. See
// Leader.ApplyBatchDelta.
func (c *LocalCluster) ApplyBatchDelta(batch []engine.Update) (Result, []DeltaRow, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Result{}, nil, transport.ErrClosed
	}
	c.mu.Unlock()
	return c.leader.ApplyBatchDelta(batch)
}

// GatherFinalLayer stitches only the workers' final-layer embeddings —
// the label/logit source — into one global table of copied rows. This is
// what a serving tier bootstraps from: O(|V|·classes) instead of
// GatherEmbeddings' every-layer-every-aggregate copy. Only valid while no
// batch is in flight.
func (c *LocalCluster) GatherFinalLayer() []tensor.Vector {
	dims := c.Dims()
	l := len(dims) - 1
	classes := dims[l]
	n := len(c.own.Owner)
	backing := make([]float32, n*classes)
	out := make([]tensor.Vector, n)
	for v := range out {
		out[v] = backing[v*classes : (v+1)*classes : (v+1)*classes]
	}
	for r, w := range c.workers {
		for li, gid := range c.own.Locals[r] {
			out[gid].CopyFrom(w.st.emb.H[l][li])
		}
	}
	return out
}

// GatherEmbeddings stitches the workers' local embeddings back into a
// global view. Only valid while no batch is in flight (in-process only;
// used for verification and serving).
func (c *LocalCluster) GatherEmbeddings() *gnn.Embeddings {
	dims := c.workers[0].st.emb.Dims
	n := len(c.own.Owner)
	out := gnn.NewEmbeddings(n, dims)
	for r, w := range c.workers {
		for li, gid := range c.own.Locals[r] {
			for l := range out.H {
				out.H[l][gid].CopyFrom(w.st.emb.H[l][li])
				if l > 0 {
					out.A[l][gid].CopyFrom(w.st.emb.A[l][li])
				}
			}
		}
	}
	return out
}

// Label returns the current predicted class of a vertex (idle clusters
// only).
func (c *LocalCluster) Label(u graph.VertexID) int {
	r := c.own.Owner[u]
	return c.workers[r].st.emb.H[len(c.workers[r].st.emb.Dims)-1][c.own.LocalIdx[u]].ArgMax()
}

// Close shuts the workers down and waits for their goroutines to exit.
func (c *LocalCluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.leader.Shutdown()
	c.wg.Wait()
	return c.leader.conn.Close()
}
