package cluster

import (
	"fmt"
	"sort"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// propagateRC runs the distributed layer-wise recompute baseline. Each hop
// needs three communication sub-rounds where Ripple needs one:
//
//  1. affect marks — owners of out-neighbours learn their vertices are
//     affected;
//  2. need lists — owners of affected vertices request the h^{l-1} of all
//     remote in-neighbours (affected or not);
//  3. fills — full embeddings come back over the wire.
//
// Round 3 is the communication volume that dominates the paper's Fig. 12c:
// unchanged remote embeddings are shipped anyway, because recompute
// re-aggregates the whole in-neighbourhood.
func (w *Worker) propagateRC(stats *workerStats) error {
	loopStart := time.Now()
	var waitNanos int64
	k := w.own.K
	prev := w.changed[0]

	for l := 1; l <= w.model.L(); l++ {
		layer := w.model.Layers[l-1]
		width := w.model.Dims[l-1]

		// --- Round 1: affected marks. ---
		markSet := make(map[graph.VertexID]struct{})
		for _, lu := range prev {
			gid := w.own.Locals[w.rank][lu]
			for _, e := range w.st.out[lu] {
				markSet[e.Peer] = struct{}{}
			}
			if w.model.SelfDependent() {
				markSet[gid] = struct{}{}
			}
		}
		for _, ev := range w.events {
			markSet[ev.sink] = struct{}{}
		}
		perPeer := make([][]graph.VertexID, k)
		var affected []int32
		w.affectEpoch++
		if w.affectEpoch == 0 {
			for i := range w.affectStamp {
				w.affectStamp[i] = 0
			}
			w.affectEpoch = 1
		}
		addAffected := func(gid graph.VertexID) {
			lv := w.localOf(gid)
			if w.affectStamp[lv] != w.affectEpoch {
				w.affectStamp[lv] = w.affectEpoch
				affected = append(affected, lv)
			}
		}
		for gid := range markSet {
			if owner := w.own.Owner[gid]; owner == int32(w.rank) {
				addAffected(gid)
			} else {
				perPeer[owner] = append(perPeer[owner], gid)
			}
		}
		for r := 0; r < k; r++ {
			if r == w.rank {
				continue
			}
			sort.Slice(perPeer[r], func(i, j int) bool { return perPeer[r][i] < perPeer[r][j] })
			if err := w.conn.Send(r, kindAffect, encodeIDs(l, 0, perPeer[r])); err != nil {
				return fmt.Errorf("cluster: worker %d affect send: %w", w.rank, err)
			}
		}
		tWait := time.Now()
		affectMsgs, err := w.collectPeers(kindAffect, l)
		waitNanos += time.Since(tWait).Nanoseconds()
		if err != nil {
			return err
		}
		for _, m := range affectMsgs {
			_, _, ids, err := decodeIDs(m.Payload)
			if err != nil {
				return fmt.Errorf("cluster: worker %d affect from %d: %w", w.rank, m.From, err)
			}
			for _, gid := range ids {
				addAffected(gid)
			}
		}
		sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

		// --- Round 2: need lists for remote in-neighbours. ---
		needPerPeer := make([]map[graph.VertexID]struct{}, k)
		for _, lv := range affected {
			for _, e := range w.st.in[lv] {
				if owner := w.own.Owner[e.Peer]; owner != int32(w.rank) {
					if needPerPeer[owner] == nil {
						needPerPeer[owner] = make(map[graph.VertexID]struct{})
					}
					needPerPeer[owner][e.Peer] = struct{}{}
				}
			}
		}
		for r := 0; r < k; r++ {
			if r == w.rank {
				continue
			}
			ids := make([]graph.VertexID, 0, len(needPerPeer[r]))
			for gid := range needPerPeer[r] {
				ids = append(ids, gid)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			if err := w.conn.Send(r, kindNeed, encodeIDs(l, 0, ids)); err != nil {
				return fmt.Errorf("cluster: worker %d need send: %w", w.rank, err)
			}
		}
		tWait = time.Now()
		needMsgs, err := w.collectPeers(kindNeed, l)
		waitNanos += time.Since(tWait).Nanoseconds()
		if err != nil {
			return err
		}

		// --- Round 3: serve fills, then collect ours. ---
		for _, m := range needMsgs {
			_, _, ids, err := decodeIDs(m.Payload)
			if err != nil {
				return fmt.Errorf("cluster: worker %d need from %d: %w", w.rank, m.From, err)
			}
			entries := make([]haloEntry, 0, len(ids))
			for _, gid := range ids {
				if w.own.Owner[gid] != int32(w.rank) {
					return fmt.Errorf("cluster: worker %d asked to fill foreign vertex %d", w.rank, gid)
				}
				entries = append(entries, haloEntry{id: gid, vec: w.st.emb.H[l-1][w.localOf(gid)]})
			}
			if err := w.conn.Send(m.From, kindFill, encodeHalo(l, width, entries)); err != nil {
				return fmt.Errorf("cluster: worker %d fill send: %w", w.rank, err)
			}
		}
		tWait = time.Now()
		fillMsgs, err := w.collectPeers(kindFill, l)
		waitNanos += time.Since(tWait).Nanoseconds()
		if err != nil {
			return err
		}
		fill := make(map[graph.VertexID]tensor.Vector)
		for _, m := range fillMsgs {
			_, entries, err := decodeHalo(m.Payload)
			if err != nil {
				return fmt.Errorf("cluster: worker %d fill from %d: %w", w.rank, m.From, err)
			}
			for _, e := range entries {
				fill[e.id] = e.vec
			}
		}

		// --- Recompute every affected local vertex over its full
		// in-neighbourhood. ---
		for _, lv := range affected {
			w.countAffected(lv, stats)
			agg := w.st.emb.A[l][lv]
			agg.Zero()
			for _, e := range w.st.in[lv] {
				var h tensor.Vector
				if w.own.Owner[e.Peer] == int32(w.rank) {
					h = w.st.emb.H[l-1][w.localOf(e.Peer)]
				} else {
					var ok bool
					h, ok = fill[e.Peer]
					if !ok {
						return fmt.Errorf("cluster: worker %d missing fill for vertex %d at hop %d", w.rank, e.Peer, l)
					}
				}
				agg.AXPY(gnn.Coeff(w.model.Agg, e.Weight), h)
				stats.VectorOps++
				stats.Messages++
			}
			layer.UpdateInto(w.st.emb.H[l][lv], w.st.emb.H[l-1][lv], agg, len(w.st.in[lv]), w.scratch)
			stats.VectorOps++
		}
		prev = append([]int32(nil), affected...)
	}
	stats.ComputeNanos += time.Since(loopStart).Nanoseconds() - waitNanos
	return nil
}
