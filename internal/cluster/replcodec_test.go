package cluster

import (
	"math"
	"testing"

	"ripple/internal/tensor"
)

func TestEpochFrameRoundTrip(t *testing.T) {
	for _, epoch := range []uint64{0, 1, 1 << 20, math.MaxUint64} {
		got, err := DecodeEpochFrame(EncodeEpochFrame(epoch))
		if err != nil || got != epoch {
			t.Fatalf("epoch %d: got %d err %v", epoch, got, err)
		}
	}
	if _, err := DecodeEpochFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated epoch frame decoded")
	}
	if _, err := DecodeEpochFrame(append(EncodeEpochFrame(7), 0)); err == nil {
		t.Fatal("epoch frame with trailing bytes decoded")
	}
}

func TestDeltaFrameRoundTrip(t *testing.T) {
	rows := []DeltaRow{
		{Vertex: 3, OldLabel: 1, NewLabel: 2, Logits: tensor.Vector{0.5, -1.25, 3}},
		{Vertex: 9, OldLabel: -1, NewLabel: 0, Logits: tensor.Vector{0, 0, float32(math.Inf(1))}},
	}
	payload := EncodeDeltaFrame(41, 3, rows)
	epoch, classes, got, err := DecodeDeltaFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 41 || classes != 3 || len(got) != len(rows) {
		t.Fatalf("decoded epoch=%d classes=%d rows=%d", epoch, classes, len(got))
	}
	for i, row := range rows {
		g := got[i]
		if g.Vertex != row.Vertex || g.OldLabel != row.OldLabel || g.NewLabel != row.NewLabel {
			t.Fatalf("row %d: %+v != %+v", i, g, row)
		}
		for j := range row.Logits {
			if math.Float32bits(g.Logits[j]) != math.Float32bits(row.Logits[j]) {
				t.Fatalf("row %d logit %d: %x != %x", i, j, g.Logits[j], row.Logits[j])
			}
		}
	}

	// An empty epoch (admitted batch that flipped nothing) is legal.
	if _, _, got, err := DecodeDeltaFrame(EncodeDeltaFrame(5, 3, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty delta frame: rows=%d err=%v", len(got), err)
	}

	// Truncation at every byte boundary errors instead of panicking or
	// fabricating rows.
	for cut := 0; cut < len(payload); cut++ {
		if _, _, _, err := DecodeDeltaFrame(payload[:cut]); err == nil {
			t.Fatalf("truncated delta frame (%d/%d bytes) decoded", cut, len(payload))
		}
	}
	// A forged row count cannot force a huge allocation: the count guard
	// rejects counts the payload cannot hold.
	forged := EncodeDeltaFrame(1, 3, rows)
	forged[12], forged[13], forged[14], forged[15] = 0xff, 0xff, 0xff, 0x7f
	if _, _, _, err := DecodeDeltaFrame(forged); err == nil {
		t.Fatal("forged row count decoded")
	}
}

func TestSnapshotFrameRoundTrip(t *testing.T) {
	labels := []int32{2, -1, 0, 1}
	logits := make([]float32, len(labels)*3)
	for i := range logits {
		logits[i] = float32(i) * 0.75
	}
	payload := EncodeSnapshotFrame(9, 3, labels, logits)
	epoch, classes, gl, gx, err := DecodeSnapshotFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 9 || classes != 3 || len(gl) != len(labels) || len(gx) != len(logits) {
		t.Fatalf("decoded epoch=%d classes=%d labels=%d logits=%d", epoch, classes, len(gl), len(gx))
	}
	for i := range labels {
		if gl[i] != labels[i] {
			t.Fatalf("label %d: %d != %d", i, gl[i], labels[i])
		}
	}
	for i := range logits {
		if math.Float32bits(gx[i]) != math.Float32bits(logits[i]) {
			t.Fatalf("logit %d: %x != %x", i, gx[i], logits[i])
		}
	}

	for cut := 0; cut < len(payload); cut++ {
		if _, _, _, _, err := DecodeSnapshotFrame(payload[:cut]); err == nil {
			t.Fatalf("truncated snapshot frame (%d/%d bytes) decoded", cut, len(payload))
		}
	}
	forged := EncodeSnapshotFrame(9, 3, labels, logits)
	forged[12], forged[13], forged[14], forged[15] = 0xff, 0xff, 0xff, 0x7f
	if _, _, _, _, err := DecodeSnapshotFrame(forged); err == nil {
		t.Fatal("forged vertex count decoded")
	}
}
