package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/partition"
	"ripple/internal/transport"
)

// TestClusterOverRealTCP runs a 2-worker cluster over loopback TCP —
// the cmd/rippled deployment path — and checks exactness end to end.
func TestClusterOverRealTCP(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 31}
	w := newWorld(t, spec, 40, 160, 211)
	emb := w.truth()
	assign, err := partition.Multilevel(w.g, 2, partition.DefaultMultilevelOptions)
	if err != nil {
		t.Fatal(err)
	}
	own := BuildOwnership(assign)

	addrs := []string{"127.0.0.1:39311", "127.0.0.1:39312", "127.0.0.1:39310"}
	conns := make([]*transport.TCPConn, 3)
	var dialWG sync.WaitGroup
	var dialErr error
	var mu sync.Mutex
	for r := 0; r < 3; r++ {
		dialWG.Add(1)
		go func(r int) {
			defer dialWG.Done()
			c, err := transport.DialTCP(r, addrs, 10*time.Second)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && dialErr == nil {
				dialErr = fmt.Errorf("rank %d: %w", r, err)
			}
			conns[r] = c
		}(r)
	}
	dialWG.Wait()
	if dialErr != nil {
		t.Fatal(dialErr)
	}
	t.Cleanup(func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	})

	workers := make([]*Worker, 2)
	var runWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		wk, err := NewWorker(r, conns[r], 2, w.model, own, StratRipple, w.g, emb)
		if err != nil {
			t.Fatal(err)
		}
		workers[r] = wk
		runWG.Add(1)
		go func(wk *Worker) {
			defer runWG.Done()
			if err := wk.Run(); err != nil {
				t.Errorf("worker: %v", err)
			}
		}(wk)
	}
	leader := NewLeader(conns[2], own, transport.TenGigE)

	for b := 0; b < 4; b++ {
		batch := w.randomBatch(8)
		res, err := leader.ApplyBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if res.Updates != len(batch) {
			t.Errorf("batch %d: updates %d", b, res.Updates)
		}
	}
	leader.Shutdown()
	runWG.Wait()

	// Stitch worker states and compare against ground truth.
	truth := w.truth()
	for r, wk := range workers {
		for li, gid := range own.Locals[r] {
			for l := range truth.H {
				if d := wk.Embeddings().H[l][li].MaxAbsDiff(truth.H[l][gid]); d > distTol {
					t.Fatalf("worker %d vertex %d layer %d drift %v", r, gid, l, d)
				}
			}
		}
	}
}
