package cluster

import (
	"fmt"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
)

// Ownership is the read-only placement metadata every rank holds: which
// worker owns each vertex and the vertex's dense local index on that
// worker. It is built deterministically from a partition assignment, so
// separate processes derive identical ownership from the same assignment.
type Ownership struct {
	K        int
	Owner    []int32 // Owner[global] = rank
	LocalIdx []int32 // LocalIdx[global] = index within owner's local arrays
	Locals   [][]graph.VertexID
}

// BuildOwnership derives ownership tables from an assignment. Local
// indices follow ascending global id within each partition.
func BuildOwnership(a *partition.Assignment) *Ownership {
	n := len(a.Part)
	o := &Ownership{
		K:        a.K,
		Owner:    make([]int32, n),
		LocalIdx: make([]int32, n),
		Locals:   make([][]graph.VertexID, a.K),
	}
	copy(o.Owner, a.Part)
	for u := 0; u < n; u++ {
		p := a.Part[u]
		o.LocalIdx[u] = int32(len(o.Locals[p]))
		o.Locals[p] = append(o.Locals[p], graph.VertexID(u))
	}
	return o
}

// NumLocal returns the number of vertices owned by rank.
func (o *Ownership) NumLocal(rank int) int { return len(o.Locals[rank]) }

// localState is one worker's share of the graph and embeddings: adjacency
// lists of local vertices (peer ids remain global — remote peers are the
// halo vertices of §5.1) and the embedding/aggregate state for local
// vertices only.
type localState struct {
	out [][]graph.Edge // indexed by local idx; Peer is a global id
	in  [][]graph.Edge
	emb *gnn.Embeddings // N = NumLocal(rank)
}

// BuildLocalState slices a rank's share out of the globally bootstrapped
// graph and embeddings. The global structures are read, not retained, so
// every rank of an in-process cluster (or each process of a TCP cluster,
// after deterministic regeneration) gets independent state.
func buildLocalState(g *graph.Graph, emb *gnn.Embeddings, own *Ownership, rank int) (*localState, error) {
	if rank < 0 || rank >= own.K {
		return nil, fmt.Errorf("cluster: rank %d out of [0,%d)", rank, own.K)
	}
	locals := own.Locals[rank]
	st := &localState{
		out: make([][]graph.Edge, len(locals)),
		in:  make([][]graph.Edge, len(locals)),
		emb: gnn.NewEmbeddings(len(locals), emb.Dims),
	}
	for li, gid := range locals {
		if o := g.Out(gid); len(o) > 0 {
			st.out[li] = append([]graph.Edge(nil), o...)
		}
		if i := g.In(gid); len(i) > 0 {
			st.in[li] = append([]graph.Edge(nil), i...)
		}
		for l := range emb.H {
			st.emb.H[l][li].CopyFrom(emb.H[l][gid])
			if l > 0 {
				st.emb.A[l][li].CopyFrom(emb.A[l][gid])
			}
		}
	}
	return st, nil
}
