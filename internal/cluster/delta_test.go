package cluster

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/tensor"
	"ripple/internal/transport"
)

// TestApplyBatchDeltaRowsMatchState checks the delta-gather phase end to
// end: the gathered rows are globally id-sorted, carry the post-batch
// final-layer logits and labels, and name exactly the vertices whose final
// layer the batch recomputed.
func TestApplyBatchDeltaRowsMatchState(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 21}
	w := newWorld(t, spec, 60, 250, 121)
	c := w.cluster(3, StratRipple, "hash")

	for b := 0; b < 5; b++ {
		batch := w.randomBatch(6)
		res, rows, err := c.ApplyBatchDelta(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if res.GatherMsgs != 3 {
			t.Fatalf("batch %d: gather msgs %d, want one per worker", b, res.GatherMsgs)
		}
		if res.GatherBytes <= 0 {
			t.Fatalf("batch %d: gather bytes %d", b, res.GatherBytes)
		}
		emb := c.GatherEmbeddings()
		final := emb.H[len(emb.Dims)-1]
		for i, row := range rows {
			if i > 0 && rows[i-1].Vertex >= row.Vertex {
				t.Fatalf("batch %d: rows not strictly id-sorted at %d: %v >= %v", b, i, rows[i-1].Vertex, row.Vertex)
			}
			if d := row.Logits.MaxAbsDiff(final[row.Vertex]); d != 0 {
				t.Fatalf("batch %d: row %v logits drift %v from worker state", b, row.Vertex, d)
			}
			if int(row.NewLabel) != final[row.Vertex].ArgMax() {
				t.Fatalf("batch %d: row %v label %d, state says %d", b, row.Vertex, row.NewLabel, final[row.Vertex].ArgMax())
			}
		}
	}

	// An empty batch reaches no final-layer row: the gather is k headers
	// and zero rows.
	res, rows, err := c.ApplyBatchDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty batch gathered %d rows", len(rows))
	}
	if res.GatherMsgs != 3 {
		t.Fatalf("empty batch gather msgs %d", res.GatherMsgs)
	}
}

// TestApplyBatchDeltaLabelFlips cross-checks the gathered old/new labels
// against a single-node engine fed the identical stream: the set of
// vertices whose label flipped must agree.
func TestApplyBatchDeltaLabelFlips(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 8, 4}, Seed: 23}
	w := newWorld(t, spec, 50, 220, 131)
	refGraph := w.g.Clone()
	refEmb := w.truth().Clone()
	model, err := gnn.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(refGraph, model, refEmb, engine.Config{TrackLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	c := w.cluster(3, StratRipple, "hash")

	for b := 0; b < 5; b++ {
		batch := w.randomBatch(5)
		_, rows, err := c.ApplyBatchDelta(batch)
		if err != nil {
			t.Fatal(err)
		}
		refRes, err := eng.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		flips := map[graph.VertexID][2]int32{}
		for _, row := range rows {
			if row.OldLabel != row.NewLabel {
				flips[row.Vertex] = [2]int32{row.OldLabel, row.NewLabel}
			}
		}
		if len(flips) != len(refRes.LabelChanges) {
			t.Fatalf("batch %d: %d gathered flips, engine saw %d", b, len(flips), len(refRes.LabelChanges))
		}
		for _, lc := range refRes.LabelChanges {
			got, ok := flips[lc.Vertex]
			if !ok || got[0] != int32(lc.Old) || got[1] != int32(lc.New) {
				t.Fatalf("batch %d: flip %+v missing or wrong in gathered rows (%v)", b, lc, got)
			}
		}
	}
}

// TestDeltaGatherRequiresRipple pins the contract that the RC baseline is
// not a serving backend: a delta-gather request fails the batch with a
// worker error instead of shipping bogus rows.
func TestDeltaGatherRequiresRipple(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 3}, Seed: 25}
	w := newWorld(t, spec, 20, 60, 141)
	c := w.cluster(2, StratRC, "hash")
	if _, _, err := c.ApplyBatchDelta(w.randomBatch(3)); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("RC delta gather error = %v, want ErrWorkerFailed", err)
	}
}

// TestDeltaGatherBytesScaleWithFrontier is the wire-cost guarantee: the
// gather ships O(final frontier) bytes, independent of |V|. The same
// update stream over the same active subgraph must gather byte-identical
// volume on a 10× larger graph, and that volume must be far below a
// whole-table ship.
func TestDeltaGatherBytesScaleWithFrontier(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 27}
	classes := spec.Dims[len(spec.Dims)-1]

	// The active subgraph is vertices 0..9 wired in a ring; every other
	// vertex is isolated and never touched by the stream.
	gather := func(n int) int64 {
		t.Helper()
		model, err := gnn.NewModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.New(n)
		for i := 0; i < 10; i++ {
			if err := g.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%10), 1); err != nil {
				t.Fatal(err)
			}
		}
		x := make([]tensor.Vector, n)
		for i := range x {
			x[i] = tensor.NewVector(spec.Dims[0])
			x[i][i%spec.Dims[0]] = float32(i%7) - 3
		}
		emb, err := gnn.Forward(g, model, x)
		if err != nil {
			t.Fatal(err)
		}
		assign, err := partition.ByName("hash", g, 3)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewLocal(LocalConfig{Graph: g, Model: model, Embeddings: emb, Assignment: assign, Strategy: StratRipple})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })

		var total int64
		for b := 0; b < 3; b++ {
			feat := tensor.NewVector(spec.Dims[0])
			feat[0] = float32(b + 1)
			res, _, err := c.ApplyBatchDelta([]engine.Update{
				{Kind: engine.FeatureUpdate, U: graph.VertexID(b), Features: feat},
			})
			if err != nil {
				t.Fatal(err)
			}
			total += res.GatherBytes
		}
		return total
	}

	small := gather(200)
	large := gather(2000)
	if small != large {
		t.Errorf("gather bytes depend on |V|: %d at n=200, %d at n=2000", small, large)
	}
	// A whole-table gather would ship ≥ |V|·classes·4 bytes per batch.
	wholeTable := int64(3 * 2000 * classes * 4)
	if large >= wholeTable/10 {
		t.Errorf("gather bytes %d not ≪ whole-table %d", large, wholeTable)
	}
	if small == 0 {
		t.Error("gather shipped zero bytes for a live frontier")
	}
}

// fakeWorkerEnv builds a 1-worker fabric whose "worker" end is driven by
// the test, so protocol error paths (seq mismatches, unsolicited deltas)
// can be exercised deterministically.
func fakeWorkerEnv(t *testing.T) (*Leader, transport.Conn) {
	t.Helper()
	conns, err := transport.NewMemoryFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		conns[0].Close()
		conns[1].Close()
	})
	own := BuildOwnership(&partition.Assignment{K: 1, Part: []int32{0, 0}})
	return NewLeader(conns[1], own, transport.TenGigE), conns[0]
}

// TestLeaderRejectsSeqMismatch covers the sequencing error paths of both
// the done barrier and the delta-gather phase.
func TestLeaderRejectsSeqMismatch(t *testing.T) {
	t.Run("done", func(t *testing.T) {
		leader, wconn := fakeWorkerEnv(t)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := wconn.Recv(); err != nil {
				t.Errorf("fake worker recv: %v", err)
				return
			}
			_ = wconn.Send(1, kindDone, encodeDone(workerStats{Seq: 99}))
		}()
		_, err := leader.ApplyBatch(nil)
		wg.Wait()
		if err == nil || !strings.Contains(err.Error(), "answered batch") {
			t.Fatalf("stale done error = %v", err)
		}
		// A desynced barrier leaves stale traffic in the mesh: the leader
		// must fail fast from then on, not choke message by message.
		if _, err := leader.ApplyBatch(nil); !errors.Is(err, ErrWorkerFailed) {
			t.Fatalf("post-desync batch error = %v, want ErrWorkerFailed", err)
		}
	})
	t.Run("delta", func(t *testing.T) {
		leader, wconn := fakeWorkerEnv(t)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := wconn.Recv(); err != nil {
				t.Errorf("fake worker recv: %v", err)
				return
			}
			_ = wconn.Send(1, kindDone, encodeDone(workerStats{Seq: 1}))
			_ = wconn.Send(1, kindDelta, encodeDelta(42, 3, nil))
		}()
		_, _, err := leader.ApplyBatchDelta(nil)
		wg.Wait()
		if err == nil || !strings.Contains(err.Error(), "shipped delta for batch") {
			t.Fatalf("stale delta error = %v", err)
		}
		if _, _, err := leader.ApplyBatchDelta(nil); !errors.Is(err, ErrWorkerFailed) {
			t.Fatalf("post-desync delta batch error = %v, want ErrWorkerFailed", err)
		}
	})
	t.Run("unsolicited", func(t *testing.T) {
		leader, wconn := fakeWorkerEnv(t)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := wconn.Recv(); err != nil {
				t.Errorf("fake worker recv: %v", err)
				return
			}
			_ = wconn.Send(1, kindDelta, encodeDelta(1, 3, nil))
		}()
		_, err := leader.ApplyBatch(nil)
		wg.Wait()
		if err == nil || !strings.Contains(err.Error(), "unsolicited delta") {
			t.Fatalf("unsolicited delta error = %v", err)
		}
	})
}

// TestHaloAccumulatorReusesAllocations pins the halo-table pooling: after
// a warm-up round, accumulating and resetting an arbitrary number of
// remote-sink deltas allocates nothing — previously every hop allocated a
// fresh map plus one vector per remote sink.
func TestHaloAccumulatorReusesAllocations(t *testing.T) {
	ht := newHaloTable(16)
	src := tensor.NewVector(16)
	for i := range src {
		src[i] = float32(i)
	}
	round := func(width, sinks int) {
		for i := 0; i < sinks; i++ {
			ht.get(graph.VertexID(i*3), width).AXPY(0.5, src[:width])
		}
		ht.reset()
	}
	round(16, 64) // warm the pool at the widest hop
	allocs := testing.AllocsPerRun(50, func() {
		round(12, 64) // narrower hop reuses the wide buffers
		round(16, 48)
	})
	if allocs > 0 {
		t.Errorf("steady-state halo accumulation allocates %.1f/run, want 0", allocs)
	}

	// Pool reuse must hand back fully zeroed accumulators.
	v := ht.get(7, 16)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("pooled accumulator not zeroed at %d: %v", i, x)
		}
	}
}
