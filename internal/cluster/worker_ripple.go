package cluster

import (
	"fmt"
	"sort"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// haloTable is the pooled accumulator for remote (halo) sink deltas. One
// instance lives on the worker and is recycled across hops and batches:
// accumulator vectors are carved from a pool of MaxDim-wide buffers and
// zeroed back into it on reset, so steady-state propagation allocates
// nothing per hop regardless of how many remote sinks the frontier
// touches (pinned by TestHaloAccumulatorReusesAllocations).
type haloTable struct {
	maxDim  int
	m       map[graph.VertexID]tensor.Vector
	touched []graph.VertexID
	pool    []tensor.Vector
}

func newHaloTable(maxDim int) *haloTable {
	return &haloTable{maxDim: maxDim, m: make(map[graph.VertexID]tensor.Vector)}
}

// get returns sink's accumulator, handing out a zeroed width-wide slice of
// a pooled buffer on first touch. width must not vary within one hop.
func (t *haloTable) get(sink graph.VertexID, width int) tensor.Vector {
	if v, ok := t.m[sink]; ok {
		return v
	}
	var v tensor.Vector
	if k := len(t.pool); k > 0 {
		v = t.pool[k-1]
		t.pool = t.pool[:k-1]
	} else {
		v = tensor.NewVector(t.maxDim)
	}
	v = v[:width]
	t.m[sink] = v
	t.touched = append(t.touched, sink)
	return v
}

// reset zeroes every handed-out accumulator and returns it to the pool.
// Pooled buffers are fully zero by induction: only the handed-out prefix
// is ever written, and exactly that prefix is zeroed here — so a later get
// at a larger width still sees zeroes past the old prefix.
func (t *haloTable) reset() {
	for _, sink := range t.touched {
		v := t.m[sink]
		v.Zero()
		t.pool = append(t.pool, v[:cap(v)])
		delete(t.m, sink)
	}
	t.touched = t.touched[:0]
}

// propagateRipple runs the distributed incremental propagation (§5.3): per
// hop, messages destined to remote (halo) vertices accumulate in halo stub
// mailboxes, one aggregated message per peer is exchanged (the BSP
// communication phase), then the local apply/compute phases run exactly as
// on a single machine.
func (w *Worker) propagateRipple(stats *workerStats) error {
	loopStart := time.Now()
	var waitNanos int64
	delta := tensor.NewVector(w.model.MaxDim())

	for l := 1; l <= w.model.L(); l++ {
		layer := w.model.Layers[l-1]
		width := w.model.Dims[l-1]
		mb := w.mailbox[l]
		halo := w.halo

		deposit := func(sink graph.VertexID, coeff float32, vec tensor.Vector) {
			stats.Messages++
			stats.VectorOps++
			if w.own.Owner[sink] == int32(w.rank) {
				mb.get(w.localOf(sink)).AXPY(coeff, vec)
				return
			}
			halo.get(sink, width).AXPY(coeff, vec)
		}

		// (a) Structural contributions from this batch's edge events, using
		// the pre-batch h^{l-1} of the (always local) source.
		for _, ev := range w.events {
			hPrev := w.oldH[l-1].lookup(ev.srcLocal)
			if hPrev == nil {
				hPrev = w.st.emb.H[l-1][ev.srcLocal]
			}
			deposit(ev.sink, ev.coeff, hPrev)
		}

		// (b) Delta messages from local vertices whose h^{l-1} changed.
		d := delta[:width]
		for _, lu := range w.changed[l-1] {
			old := w.oldH[l-1].lookup(lu)
			tensor.AddSubInto(d, w.st.emb.H[l-1][lu], old)
			stats.VectorOps++
			for _, e := range w.st.out[lu] {
				deposit(e.Peer, gnn.Coeff(w.model.Agg, e.Weight), d)
			}
		}

		// (c) Self-dependence keeps changed vertices in their own frontier.
		if w.model.SelfDependent() {
			for _, lu := range w.changed[l-1] {
				mb.get(lu)
			}
		}

		// (d) Halo exchange: exactly one message per peer per hop, empty or
		// not, so the hop barrier is a fixed k-1 message count.
		if err := w.exchangeHalo(l, width, halo, &waitNanos); err != nil {
			return err
		}

		// (e) Apply phase over the sorted local frontier.
		frontier := mb.sortedTouched()
		for _, lv := range frontier {
			w.oldH[l].get(lv).CopyFrom(w.st.emb.H[l][lv])
			w.countAffected(lv, stats)
			agg := w.st.emb.A[l][lv]
			agg.Add(mb.lookup(lv))
			layer.UpdateInto(w.st.emb.H[l][lv], w.st.emb.H[l-1][lv], agg, len(w.st.in[lv]), w.scratch)
			stats.VectorOps += 2
		}
		w.changed[l] = append(w.changed[l][:0], frontier...)
	}
	stats.ComputeNanos += time.Since(loopStart).Nanoseconds() - waitNanos
	return nil
}

// exchangeHalo sends this hop's halo deltas (grouped per owner, sorted per
// sink) to every peer and merges the k-1 inbound messages, in sender-rank
// order, into the local mailboxes. The accumulator table is recycled into
// its pool before returning — the encoded sends own their bytes by then.
func (w *Worker) exchangeHalo(hop, width int, halo *haloTable, waitNanos *int64) error {
	defer halo.reset()
	k := w.own.K
	perPeer := make([][]haloEntry, k)
	for _, sink := range halo.touched {
		owner := w.own.Owner[sink]
		perPeer[owner] = append(perPeer[owner], haloEntry{id: sink, vec: halo.m[sink]})
	}
	for r := 0; r < k; r++ {
		if r == w.rank {
			continue
		}
		entries := perPeer[r]
		sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
		if err := w.conn.Send(r, kindHalo, encodeHalo(hop, width, entries)); err != nil {
			return fmt.Errorf("cluster: worker %d halo send to %d: %w", w.rank, r, err)
		}
	}
	tWait := time.Now()
	msgs, err := w.collectPeers(kindHalo, hop)
	*waitNanos += time.Since(tWait).Nanoseconds()
	if err != nil {
		return err
	}
	mb := w.mailbox[hop]
	for _, m := range msgs {
		_, entries, err := decodeHalo(m.Payload)
		if err != nil {
			return fmt.Errorf("cluster: worker %d halo from %d: %w", w.rank, m.From, err)
		}
		for _, e := range entries {
			if w.own.Owner[e.id] != int32(w.rank) {
				return fmt.Errorf("cluster: worker %d received halo for foreign vertex %d", w.rank, e.id)
			}
			mb.get(w.localOf(e.id)).Add(e.vec)
		}
	}
	return nil
}
