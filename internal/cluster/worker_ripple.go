package cluster

import (
	"fmt"
	"sort"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// propagateRipple runs the distributed incremental propagation (§5.3): per
// hop, messages destined to remote (halo) vertices accumulate in halo stub
// mailboxes, one aggregated message per peer is exchanged (the BSP
// communication phase), then the local apply/compute phases run exactly as
// on a single machine.
func (w *Worker) propagateRipple(stats *workerStats) error {
	loopStart := time.Now()
	var waitNanos int64
	delta := tensor.NewVector(w.model.MaxDim())

	for l := 1; l <= w.model.L(); l++ {
		layer := w.model.Layers[l-1]
		width := w.model.Dims[l-1]
		mb := w.mailbox[l]
		halo := make(map[graph.VertexID]tensor.Vector)

		deposit := func(sink graph.VertexID, coeff float32, vec tensor.Vector) {
			stats.Messages++
			stats.VectorOps++
			if w.own.Owner[sink] == int32(w.rank) {
				mb.get(w.localOf(sink)).AXPY(coeff, vec)
				return
			}
			acc, ok := halo[sink]
			if !ok {
				acc = tensor.NewVector(width)
				halo[sink] = acc
			}
			acc.AXPY(coeff, vec)
		}

		// (a) Structural contributions from this batch's edge events, using
		// the pre-batch h^{l-1} of the (always local) source.
		for _, ev := range w.events {
			hPrev := w.oldH[l-1].lookup(ev.srcLocal)
			if hPrev == nil {
				hPrev = w.st.emb.H[l-1][ev.srcLocal]
			}
			deposit(ev.sink, ev.coeff, hPrev)
		}

		// (b) Delta messages from local vertices whose h^{l-1} changed.
		d := delta[:width]
		for _, lu := range w.changed[l-1] {
			old := w.oldH[l-1].lookup(lu)
			tensor.AddSubInto(d, w.st.emb.H[l-1][lu], old)
			stats.VectorOps++
			for _, e := range w.st.out[lu] {
				deposit(e.Peer, gnn.Coeff(w.model.Agg, e.Weight), d)
			}
		}

		// (c) Self-dependence keeps changed vertices in their own frontier.
		if w.model.SelfDependent() {
			for _, lu := range w.changed[l-1] {
				mb.get(lu)
			}
		}

		// (d) Halo exchange: exactly one message per peer per hop, empty or
		// not, so the hop barrier is a fixed k-1 message count.
		if err := w.exchangeHalo(l, width, halo, &waitNanos); err != nil {
			return err
		}

		// (e) Apply phase over the sorted local frontier.
		frontier := mb.sortedTouched()
		for _, lv := range frontier {
			w.oldH[l].get(lv).CopyFrom(w.st.emb.H[l][lv])
			w.countAffected(lv, stats)
			agg := w.st.emb.A[l][lv]
			agg.Add(mb.lookup(lv))
			layer.UpdateInto(w.st.emb.H[l][lv], w.st.emb.H[l-1][lv], agg, len(w.st.in[lv]), w.scratch)
			stats.VectorOps += 2
		}
		w.changed[l] = append(w.changed[l][:0], frontier...)
	}
	stats.ComputeNanos += time.Since(loopStart).Nanoseconds() - waitNanos
	return nil
}

// exchangeHalo sends this hop's halo deltas (grouped per owner, sorted per
// sink) to every peer and merges the k-1 inbound messages, in sender-rank
// order, into the local mailboxes.
func (w *Worker) exchangeHalo(hop, width int, halo map[graph.VertexID]tensor.Vector, waitNanos *int64) error {
	k := w.own.K
	perPeer := make([][]haloEntry, k)
	for sink, vec := range halo {
		owner := w.own.Owner[sink]
		perPeer[owner] = append(perPeer[owner], haloEntry{id: sink, vec: vec})
	}
	for r := 0; r < k; r++ {
		if r == w.rank {
			continue
		}
		entries := perPeer[r]
		sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
		if err := w.conn.Send(r, kindHalo, encodeHalo(hop, width, entries)); err != nil {
			return fmt.Errorf("cluster: worker %d halo send to %d: %w", w.rank, r, err)
		}
	}
	tWait := time.Now()
	msgs, err := w.collectPeers(kindHalo, hop)
	*waitNanos += time.Since(tWait).Nanoseconds()
	if err != nil {
		return err
	}
	mb := w.mailbox[hop]
	for _, m := range msgs {
		_, entries, err := decodeHalo(m.Payload)
		if err != nil {
			return fmt.Errorf("cluster: worker %d halo from %d: %w", w.rank, m.From, err)
		}
		for _, e := range entries {
			if w.own.Owner[e.id] != int32(w.rank) {
				return fmt.Errorf("cluster: worker %d received halo for foreign vertex %d", w.rank, e.id)
			}
			mb.get(w.localOf(e.id)).Add(e.vec)
		}
	}
	return nil
}
