package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/tensor"
)

// world mirrors reference topology/features so ground truth can be
// recomputed from scratch after streaming updates.
type world struct {
	t     *testing.T
	rng   *rand.Rand
	model *gnn.Model
	g     *graph.Graph
	x     []tensor.Vector
	edges [][2]graph.VertexID
}

func newWorld(t *testing.T, spec gnn.Spec, n, m int, seed int64) *world {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model, err := gnn.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n)
	var edges [][2]graph.VertexID
	for i := 0; i < m; i++ {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if err := g.AddEdge(u, v, 0.1+rng.Float32()); err == nil {
			edges = append(edges, [2]graph.VertexID{u, v})
		}
	}
	x := make([]tensor.Vector, n)
	for i := range x {
		x[i] = tensor.NewVector(spec.Dims[0])
		for j := range x[i] {
			x[i][j] = rng.Float32()*2 - 1
		}
	}
	return &world{t: t, rng: rng, model: model, g: g, x: x, edges: edges}
}

func (w *world) truth() *gnn.Embeddings {
	w.t.Helper()
	emb, err := gnn.Forward(w.g, w.model, w.x)
	if err != nil {
		w.t.Fatal(err)
	}
	return emb
}

func (w *world) randomBatch(size int) []engine.Update {
	w.t.Helper()
	n := w.g.NumVertices()
	var batch []engine.Update
	for len(batch) < size {
		switch w.rng.Intn(3) {
		case 0:
			u, v := graph.VertexID(w.rng.Intn(n)), graph.VertexID(w.rng.Intn(n))
			if w.g.HasEdge(u, v) {
				continue
			}
			wt := 0.1 + w.rng.Float32()
			if err := w.g.AddEdge(u, v, wt); err != nil {
				w.t.Fatal(err)
			}
			w.edges = append(w.edges, [2]graph.VertexID{u, v})
			batch = append(batch, engine.Update{Kind: engine.EdgeAdd, U: u, V: v, Weight: wt})
		case 1:
			if len(w.edges) == 0 {
				continue
			}
			i := w.rng.Intn(len(w.edges))
			e := w.edges[i]
			if !w.g.HasEdge(e[0], e[1]) {
				w.edges[i] = w.edges[len(w.edges)-1]
				w.edges = w.edges[:len(w.edges)-1]
				continue
			}
			if _, err := w.g.RemoveEdge(e[0], e[1]); err != nil {
				w.t.Fatal(err)
			}
			w.edges[i] = w.edges[len(w.edges)-1]
			w.edges = w.edges[:len(w.edges)-1]
			batch = append(batch, engine.Update{Kind: engine.EdgeDelete, U: e[0], V: e[1]})
		default:
			u := graph.VertexID(w.rng.Intn(n))
			feat := tensor.NewVector(len(w.x[u]))
			for j := range feat {
				feat[j] = w.rng.Float32()*2 - 1
			}
			w.x[u].CopyFrom(feat)
			batch = append(batch, engine.Update{Kind: engine.FeatureUpdate, U: u, Features: feat.Clone()})
		}
	}
	return batch
}

func (w *world) cluster(k int, strat Strategy, partName string) *LocalCluster {
	w.t.Helper()
	emb := w.truth()
	assign, err := partition.ByName(partName, w.g, k)
	if err != nil {
		w.t.Fatal(err)
	}
	c, err := NewLocal(LocalConfig{
		Graph:      w.g,
		Model:      w.model,
		Embeddings: emb,
		Assignment: assign,
		Strategy:   strat,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { c.Close() })
	return c
}

const distTol = 5e-3

func TestDistributedRippleMatchesGroundTruth(t *testing.T) {
	specs := map[string]gnn.Spec{
		"GC-S": {Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 1},
		"GS-S": {Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 2},
		"GC-M": {Kind: gnn.GraphConv, Agg: gnn.AggMean, Dims: []int{5, 6, 6, 4}, Seed: 3},
		"GI-S": {Kind: gnn.GINConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 4},
		"GC-W": {Kind: gnn.GraphConv, Agg: gnn.AggWeighted, Dims: []int{5, 6, 4}, Seed: 5},
	}
	for name, spec := range specs {
		for _, k := range []int{1, 3} {
			t.Run(name, func(t *testing.T) {
				w := newWorld(t, spec, 60, 250, 71)
				// Hash partitioning maximises cross-partition edges — the
				// hardest routing case.
				c := w.cluster(k, StratRipple, "hash")
				for b := 0; b < 6; b++ {
					batch := w.randomBatch(1 + w.rng.Intn(8))
					if _, err := c.ApplyBatch(batch); err != nil {
						t.Fatalf("k=%d batch %d: %v", k, b, err)
					}
					if d := c.GatherEmbeddings().MaxAbsDiff(w.truth()); d > distTol {
						t.Fatalf("k=%d batch %d: drift %v", k, b, d)
					}
				}
			})
		}
	}
}

func TestDistributedRCMatchesGroundTruth(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggMean, Dims: []int{5, 6, 4}, Seed: 7}
	for _, k := range []int{2, 4} {
		w := newWorld(t, spec, 50, 200, 73)
		c := w.cluster(k, StratRC, "hash")
		for b := 0; b < 5; b++ {
			batch := w.randomBatch(6)
			if _, err := c.ApplyBatch(batch); err != nil {
				t.Fatalf("k=%d batch %d: %v", k, b, err)
			}
			if d := c.GatherEmbeddings().MaxAbsDiff(w.truth()); d > distTol {
				t.Fatalf("k=%d batch %d: drift %v", k, b, d)
			}
		}
	}
}

func TestDistributedMatchesWithMultilevelPartition(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 8}
	w := newWorld(t, spec, 80, 350, 79)
	c := w.cluster(4, StratRipple, "multilevel")
	for b := 0; b < 5; b++ {
		batch := w.randomBatch(8)
		if _, err := c.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if d := c.GatherEmbeddings().MaxAbsDiff(w.truth()); d > distTol {
		t.Fatalf("drift %v", d)
	}
}

func TestRCCommunicatesFarMoreThanRipple(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{8, 16, 8}, Seed: 9}

	run := func(strat Strategy) (int64, int64) {
		w := newWorld(t, spec, 100, 800, 83)
		c := w.cluster(4, strat, "hash")
		var bytes, affected int64
		for b := 0; b < 5; b++ {
			batch := w.randomBatch(10)
			res, err := c.ApplyBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			bytes += res.CommBytes
			affected += res.Affected
		}
		return bytes, affected
	}
	rippleBytes, rippleAffected := run(StratRipple)
	rcBytes, rcAffected := run(StratRC)
	if rippleAffected != rcAffected {
		t.Errorf("affected mismatch: ripple %d, rc %d", rippleAffected, rcAffected)
	}
	// The paper measures ≈70× on Papers; on this small dense graph the
	// exact factor differs, but RC must communicate strictly more — it
	// ships whole unaffected in-neighbourhoods plus two extra control
	// rounds per hop.
	if rcBytes < 2*rippleBytes {
		t.Errorf("RC bytes %d not ≫ Ripple bytes %d", rcBytes, rippleBytes)
	}
}

func TestRouteBatch(t *testing.T) {
	assign := &partition.Assignment{K: 2, Part: []int32{0, 0, 1, 1}}
	own := BuildOwnership(assign)
	batch := []engine.Update{
		{Kind: engine.EdgeAdd, U: 0, V: 1, Weight: 1},                  // local to worker 0
		{Kind: engine.EdgeAdd, U: 1, V: 2, Weight: 1},                  // cross: 0 computes, 1 no-compute
		{Kind: engine.FeatureUpdate, U: 3, Features: tensor.Vector{1}}, // worker 1
		{Kind: engine.EdgeDelete, U: 2, V: 0},                          // cross: 1 computes, 0 no-compute
	}
	routed := routeBatch(own, batch)
	if len(routed[0]) != 3 || len(routed[1]) != 3 {
		t.Fatalf("routed sizes = %d/%d, want 3/3", len(routed[0]), len(routed[1]))
	}
	// Worker 0: local add (compute), cross add (compute), cross delete (no-compute).
	if routed[0][0].NoCompute || routed[0][1].NoCompute || !routed[0][2].NoCompute {
		t.Errorf("worker 0 no-compute flags wrong: %+v", routed[0])
	}
	// Worker 1: cross add (no-compute), feature (compute), cross delete (compute).
	if !routed[1][0].NoCompute || routed[1][1].NoCompute || routed[1][2].NoCompute {
		t.Errorf("worker 1 no-compute flags wrong: %+v", routed[1])
	}
}

func TestBuildOwnership(t *testing.T) {
	assign := &partition.Assignment{K: 3, Part: []int32{2, 0, 1, 0, 2}}
	own := BuildOwnership(assign)
	if own.K != 3 {
		t.Fatal("K wrong")
	}
	if own.NumLocal(0) != 2 || own.NumLocal(1) != 1 || own.NumLocal(2) != 2 {
		t.Errorf("local counts = %d/%d/%d", own.NumLocal(0), own.NumLocal(1), own.NumLocal(2))
	}
	// Vertex 3 is worker 0's second local (ids ascend).
	if own.Owner[3] != 0 || own.LocalIdx[3] != 1 {
		t.Errorf("vertex 3 placement = owner %d idx %d", own.Owner[3], own.LocalIdx[3])
	}
	if own.Locals[2][0] != 0 || own.Locals[2][1] != 4 {
		t.Errorf("worker 2 locals = %v", own.Locals[2])
	}
}

func TestWorkerFailurePropagatesAndCloseDoesNotHang(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 3}, Seed: 11}
	w := newWorld(t, spec, 20, 60, 89)
	c := w.cluster(3, StratRipple, "hash")

	// A duplicate edge add is invalid; the owning worker reports the error.
	var dup engine.Update
	for _, e := range w.edges {
		dup = engine.Update{Kind: engine.EdgeAdd, U: e[0], V: e[1], Weight: 1}
		break
	}
	if _, err := c.ApplyBatch([]engine.Update{dup}); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("duplicate add error = %v, want ErrWorkerFailed", err)
	}
	// The cluster is now broken; further batches fail fast.
	if _, err := c.ApplyBatch(nil); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("post-failure batch error = %v", err)
	}
	// Close (via t.Cleanup) must not hang — reaching the end of this test
	// is the assertion.
}

func TestEmptyBatchIsHarmless(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 3}, Seed: 12}
	w := newWorld(t, spec, 20, 60, 97)
	c := w.cluster(2, StratRipple, "hash")
	res, err := c.ApplyBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 0 {
		t.Errorf("empty batch affected %d vertices", res.Affected)
	}
	if d := c.GatherEmbeddings().MaxAbsDiff(w.truth()); d != 0 {
		t.Errorf("empty batch changed embeddings by %v", d)
	}
}

func TestResultSimLatency(t *testing.T) {
	r := Result{UpdateTime: 1, ComputeTime: 2, SimCommTime: 4}
	if r.SimLatency() != 7 {
		t.Errorf("SimLatency = %v", r.SimLatency())
	}
}

func TestLabelAndGather(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 3}, Seed: 13}
	w := newWorld(t, spec, 20, 60, 101)
	c := w.cluster(2, StratRipple, "hash")
	truth := w.truth()
	for u := 0; u < 20; u++ {
		if c.Label(graph.VertexID(u)) != truth.Label(int32(u)) {
			t.Fatalf("label mismatch at %d", u)
		}
	}
}

func TestNewLocalValidation(t *testing.T) {
	if _, err := NewLocal(LocalConfig{}); err == nil {
		t.Error("expected error for empty config")
	}
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 3}, Seed: 14}
	w := newWorld(t, spec, 10, 20, 103)
	emb := w.truth()
	bad := &partition.Assignment{K: 2, Part: []int32{0}} // wrong length
	if _, err := NewLocal(LocalConfig{Graph: w.g, Model: w.model, Embeddings: emb, Assignment: bad, Strategy: StratRipple}); err == nil {
		t.Error("expected error for invalid assignment")
	}
	good := &partition.Assignment{K: 2, Part: make([]int32, 10)}
	if _, err := NewLocal(LocalConfig{Graph: w.g, Model: w.model, Embeddings: emb, Assignment: good, Strategy: Strategy("bogus")}); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

// --- codec round trips ---

func TestBatchCodecRoundTrip(t *testing.T) {
	in := []routedUpdate{
		{Update: engine.Update{Kind: engine.EdgeAdd, U: 3, V: 9, Weight: 1.5}},
		{Update: engine.Update{Kind: engine.EdgeDelete, U: 7, V: 2}, NoCompute: true},
		{Update: engine.Update{Kind: engine.FeatureUpdate, U: 4, Features: tensor.Vector{1, -2, 3.5}}},
	}
	seq, flags, out, err := decodeBatch(encodeBatch(42, batchFlagDelta, in))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || flags != batchFlagDelta || len(out) != 3 {
		t.Fatalf("seq=%d flags=%d len=%d", seq, flags, len(out))
	}
	if out[0].Kind != engine.EdgeAdd || out[0].U != 3 || out[0].V != 9 || out[0].Weight != 1.5 || out[0].NoCompute {
		t.Errorf("update 0 = %+v", out[0])
	}
	if !out[1].NoCompute {
		t.Error("update 1 should be no-compute")
	}
	if out[2].Features.MaxAbsDiff(tensor.Vector{1, -2, 3.5}) != 0 {
		t.Error("features corrupted")
	}
}

func TestHaloCodecRoundTrip(t *testing.T) {
	in := []haloEntry{
		{id: 5, vec: tensor.Vector{1, 2}},
		{id: 1000000, vec: tensor.Vector{-3.5, 0}},
	}
	hop, out, err := decodeHalo(encodeHalo(2, 2, in))
	if err != nil {
		t.Fatal(err)
	}
	if hop != 2 || len(out) != 2 {
		t.Fatalf("hop=%d len=%d", hop, len(out))
	}
	for i := range in {
		if out[i].id != in[i].id || out[i].vec.MaxAbsDiff(in[i].vec) != 0 {
			t.Errorf("entry %d = %+v", i, out[i])
		}
	}
	// Empty halo messages are the common case on sparse cuts.
	hop, out, err = decodeHalo(encodeHalo(1, 4, nil))
	if err != nil || hop != 1 || len(out) != 0 {
		t.Errorf("empty halo: hop=%d len=%d err=%v", hop, len(out), err)
	}
}

func TestIDsCodecRoundTrip(t *testing.T) {
	ids := []graph.VertexID{1, 5, 99999}
	hop, phase, out, err := decodeIDs(encodeIDs(3, 1, ids))
	if err != nil {
		t.Fatal(err)
	}
	if hop != 3 || phase != 1 || len(out) != 3 || out[2] != 99999 {
		t.Errorf("hop=%d phase=%d out=%v", hop, phase, out)
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	in := []DeltaRow{
		{Vertex: 3, OldLabel: 1, NewLabel: 2, Logits: tensor.Vector{0.5, -1, 2}},
		{Vertex: 999999, OldLabel: -1, NewLabel: 0, Logits: tensor.Vector{1, 0, 0}},
	}
	seq, classes, out, err := decodeDelta(encodeDelta(11, 3, in))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 || classes != 3 || len(out) != 2 {
		t.Fatalf("seq=%d classes=%d len=%d", seq, classes, len(out))
	}
	for i := range in {
		if out[i].Vertex != in[i].Vertex || out[i].OldLabel != in[i].OldLabel || out[i].NewLabel != in[i].NewLabel {
			t.Errorf("row %d = %+v", i, out[i])
		}
		if out[i].Logits.MaxAbsDiff(in[i].Logits) != 0 {
			t.Errorf("row %d logits corrupted", i)
		}
	}
	// Empty deltas are the common case for batches with no label-layer reach.
	if seq, classes, out, err = decodeDelta(encodeDelta(4, 7, nil)); err != nil || seq != 4 || classes != 7 || len(out) != 0 {
		t.Errorf("empty delta: seq=%d classes=%d len=%d err=%v", seq, classes, len(out), err)
	}
}

func TestDoneCodecRoundTrip(t *testing.T) {
	in := workerStats{Seq: 7, ComputeNanos: 123, UpdateNanos: 45, Affected: 6, Messages: 7, VectorOps: 8, BytesSent: 9, MsgsSent: 10}
	out, err := decodeDone(encodeDone(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	payload := encodeHalo(1, 4, []haloEntry{{id: 2, vec: tensor.NewVector(4)}})
	for _, cut := range []int{1, 5, 11, len(payload) - 1} {
		if _, _, err := decodeHalo(payload[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, _, _, err := decodeBatch([]byte{1, 2}); err == nil {
		t.Error("truncated batch not detected")
	}
	payload = encodeDelta(3, 2, []DeltaRow{{Vertex: 5, OldLabel: 0, NewLabel: 1, Logits: tensor.NewVector(2)}})
	for _, cut := range []int{2, 7, 13, len(payload) - 1} {
		if _, _, _, err := decodeDelta(payload[:cut]); err == nil {
			t.Errorf("delta truncation at %d not detected", cut)
		}
	}
	if _, _, _, err := decodeDelta(append(encodeDelta(1, 0, nil), 0xAB)); err == nil {
		t.Error("delta trailing bytes not detected")
	}
	if _, err := decodeDone([]byte{0}); err == nil {
		t.Error("truncated done not detected")
	}
	// Trailing garbage must also be rejected.
	if _, _, _, err := decodeIDs(append(encodeIDs(1, 0, nil), 0xFF)); err == nil {
		t.Error("trailing bytes not detected")
	}
}
