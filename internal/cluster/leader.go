package cluster

import (
	"fmt"
	"sync"
	"time"

	"ripple/internal/engine"
	"ripple/internal/transport"
)

// Leader drives a worker fleet over any transport: it batches and routes
// updates (§5.2) and aggregates the workers' per-batch reports. It is the
// shared core of the in-process LocalCluster and the TCP deployment in
// cmd/rippled.
type Leader struct {
	conn transport.Conn
	own  *Ownership
	net  transport.NetModel

	mu     sync.Mutex
	seq    uint32
	broken error
}

// NewLeader wraps a leader endpoint. conn must be able to reach ranks
// [0, own.K); by convention the leader itself is rank own.K.
func NewLeader(conn transport.Conn, own *Ownership, net transport.NetModel) *Leader {
	if net.BandwidthBytesPerSec == 0 && net.LatencyPerMsg == 0 {
		net = transport.TenGigE
	}
	return &Leader{conn: conn, own: own, net: net}
}

// K returns the number of workers.
func (l *Leader) K() int { return l.own.K }

// routeBatch splits a batch across workers (§5.2): every update goes to
// the owner of its hop-0 vertex; cross-partition edge updates additionally
// produce a no-compute topology request for the sink's owner.
func routeBatch(own *Ownership, batch []engine.Update) [][]routedUpdate {
	routed := make([][]routedUpdate, own.K)
	for _, u := range batch {
		src := own.Owner[u.Source()]
		routed[src] = append(routed[src], routedUpdate{Update: u})
		if u.Kind == engine.EdgeAdd || u.Kind == engine.EdgeDelete {
			if sink := own.Owner[u.V]; sink != src {
				routed[sink] = append(routed[sink], routedUpdate{Update: u, NoCompute: true})
			}
		}
	}
	return routed
}

// ApplyBatch routes one update batch to the workers, waits for the BSP
// propagation to complete, and aggregates the workers' reports.
func (l *Leader) ApplyBatch(batch []engine.Update) (Result, error) {
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return Result{}, fmt.Errorf("%w: %v", ErrWorkerFailed, err)
	}
	l.seq++
	seq := l.seq
	l.mu.Unlock()

	res := Result{Updates: len(batch)}
	routed := routeBatch(l.own, batch)
	before := l.conn.Counters()
	start := time.Now()
	for r := 0; r < l.own.K; r++ {
		if err := l.conn.Send(r, kindBatch, encodeBatch(seq, routed[r])); err != nil {
			return res, fmt.Errorf("cluster: sending batch to worker %d: %w", r, err)
		}
	}
	res.RouteBytes = l.conn.Counters().BytesSent - before.BytesSent

	var maxWorkerComm time.Duration
	for received := 0; received < l.own.K; received++ {
		msg, err := l.conn.Recv()
		if err != nil {
			return res, fmt.Errorf("cluster: leader recv: %w", err)
		}
		switch msg.Kind {
		case kindDone:
			st, err := decodeDone(msg.Payload)
			if err != nil {
				return res, fmt.Errorf("cluster: done from worker %d: %w", msg.From, err)
			}
			if st.Seq != seq {
				return res, fmt.Errorf("cluster: worker %d answered batch %d, expected %d", msg.From, st.Seq, seq)
			}
			res.Affected += st.Affected
			res.VectorOps += st.VectorOps
			res.Messages += st.Messages
			res.CommBytes += st.BytesSent
			res.CommMsgs += st.MsgsSent
			if d := time.Duration(st.UpdateNanos); d > res.UpdateTime {
				res.UpdateTime = d
			}
			if d := time.Duration(st.ComputeNanos); d > res.ComputeTime {
				res.ComputeTime = d
			}
			if d := l.net.CommTime(st.BytesSent, st.MsgsSent); d > maxWorkerComm {
				maxWorkerComm = d
			}
		case kindError:
			err := fmt.Errorf("%w: %s", ErrWorkerFailed, msg.Payload)
			l.mu.Lock()
			if l.broken == nil {
				l.broken = err
			}
			l.mu.Unlock()
			return res, err
		default:
			return res, fmt.Errorf("cluster: leader got unexpected kind %d from %d", msg.Kind, msg.From)
		}
	}
	res.WallTime = time.Since(start)
	res.SimCommTime = maxWorkerComm + l.net.CommTime(res.RouteBytes, int64(l.own.K))
	return res, nil
}

// Shutdown asks every worker to terminate (best effort).
func (l *Leader) Shutdown() {
	for r := 0; r < l.own.K; r++ {
		_ = l.conn.Send(r, kindShutdown, nil)
	}
}
