package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ripple/internal/engine"
	"ripple/internal/transport"
)

// Leader drives a worker fleet over any transport: it batches and routes
// updates (§5.2) and aggregates the workers' per-batch reports. It is the
// shared core of the in-process LocalCluster and the TCP deployment in
// cmd/rippled.
type Leader struct {
	conn transport.Conn
	own  *Ownership
	net  transport.NetModel

	mu     sync.Mutex
	seq    uint32
	broken error
}

// NewLeader wraps a leader endpoint. conn must be able to reach ranks
// [0, own.K); by convention the leader itself is rank own.K.
func NewLeader(conn transport.Conn, own *Ownership, net transport.NetModel) *Leader {
	if net.BandwidthBytesPerSec == 0 && net.LatencyPerMsg == 0 {
		net = transport.TenGigE
	}
	return &Leader{conn: conn, own: own, net: net}
}

// K returns the number of workers.
func (l *Leader) K() int { return l.own.K }

// fail marks the leader permanently broken and returns err. Any failure
// after the batch fan-out has started — a partial send, a desynced or
// undecodable reply, an aborted barrier — leaves unconsumed messages in
// the mesh, so no later batch can be sequenced reliably; subsequent
// ApplyBatch calls fail fast with ErrWorkerFailed instead of choking on
// the stale traffic one message at a time.
func (l *Leader) fail(err error) error {
	l.mu.Lock()
	if l.broken == nil {
		l.broken = err
	}
	l.mu.Unlock()
	return err
}

// routeBatch splits a batch across workers (§5.2): every update goes to
// the owner of its hop-0 vertex; cross-partition edge updates additionally
// produce a no-compute topology request for the sink's owner.
func routeBatch(own *Ownership, batch []engine.Update) [][]routedUpdate {
	routed := make([][]routedUpdate, own.K)
	for _, u := range batch {
		src := own.Owner[u.Source()]
		routed[src] = append(routed[src], routedUpdate{Update: u})
		if u.Kind == engine.EdgeAdd || u.Kind == engine.EdgeDelete {
			if sink := own.Owner[u.V]; sink != src {
				routed[sink] = append(routed[sink], routedUpdate{Update: u, NoCompute: true})
			}
		}
	}
	return routed
}

// ApplyBatch routes one update batch to the workers, waits for the BSP
// propagation to complete, and aggregates the workers' reports.
func (l *Leader) ApplyBatch(batch []engine.Update) (Result, error) {
	res, _, err := l.apply(batch, false)
	return res, err
}

// ApplyBatchDelta is ApplyBatch plus the delta-gather phase of the
// distributed serving tier: after every worker's kindDone report, each
// worker ships the final-layer rows its local frontier touched, and the
// leader merges them into one globally id-sorted changed-rows delta. The
// wire cost of the gather (Result.GatherBytes) is O(frontier rows), never
// O(|V|) — the distributed analogue of the serving layer's O(pages
// touched) copy-on-write publish.
func (l *Leader) ApplyBatchDelta(batch []engine.Update) (Result, []DeltaRow, error) {
	return l.apply(batch, true)
}

func (l *Leader) apply(batch []engine.Update, gather bool) (Result, []DeltaRow, error) {
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return Result{}, nil, fmt.Errorf("%w: %v", ErrWorkerFailed, err)
	}
	l.seq++
	seq := l.seq
	l.mu.Unlock()

	var flags uint8
	if gather {
		flags |= batchFlagDelta
	}

	res := Result{Updates: len(batch)}
	routed := routeBatch(l.own, batch)
	before := l.conn.Counters()
	start := time.Now()
	// Fan the per-worker sends out: encoding and socket writes for the K
	// sub-batches overlap instead of serialising on one goroutine (the
	// transports serialise per-peer internally, so concurrent sends to
	// distinct ranks are safe). All sends complete before the receive loop
	// so a failed send surfaces here instead of deadlocking the barrier.
	sendErrs := make([]error, l.own.K)
	var sends sync.WaitGroup
	for r := 0; r < l.own.K; r++ {
		sends.Add(1)
		go func(r int) {
			defer sends.Done()
			sendErrs[r] = l.conn.Send(r, kindBatch, encodeBatch(seq, flags, routed[r]))
		}(r)
	}
	sends.Wait()
	for r, err := range sendErrs {
		if err != nil {
			// Other workers may already hold (and answer) this batch.
			return res, nil, l.fail(fmt.Errorf("cluster: sending batch to worker %d: %w", r, err))
		}
	}
	res.RouteBytes = l.conn.Counters().BytesSent - before.BytesSent

	// Collect every worker's kindDone. Fast workers may ship their
	// kindDelta before a slow worker's kindDone arrives; stash those for
	// the gather phase instead of treating them as protocol errors.
	var pendingDeltas []transport.Message
	var maxWorkerComm time.Duration
	doneFrom := make([]bool, l.own.K)
	for dones := 0; dones < l.own.K; {
		msg, err := l.conn.Recv()
		if err != nil {
			return res, nil, l.fail(fmt.Errorf("cluster: leader recv: %w", err))
		}
		switch msg.Kind {
		case kindDone:
			// Exactly one done per rank, like the delta phase's dedup: a
			// duplicate would end the barrier while a worker still runs.
			if msg.From < 0 || msg.From >= l.own.K || doneFrom[msg.From] {
				return res, nil, l.fail(fmt.Errorf("cluster: duplicate/invalid done from %d", msg.From))
			}
			doneFrom[msg.From] = true
			dones++
			st, err := decodeDone(msg.Payload)
			if err != nil {
				return res, nil, l.fail(fmt.Errorf("cluster: done from worker %d: %w", msg.From, err))
			}
			if st.Seq != seq {
				return res, nil, l.fail(fmt.Errorf("cluster: worker %d answered batch %d, expected %d", msg.From, st.Seq, seq))
			}
			res.Affected += st.Affected
			res.VectorOps += st.VectorOps
			res.Messages += st.Messages
			res.CommBytes += st.BytesSent
			res.CommMsgs += st.MsgsSent
			if d := time.Duration(st.UpdateNanos); d > res.UpdateTime {
				res.UpdateTime = d
			}
			if d := time.Duration(st.ComputeNanos); d > res.ComputeTime {
				res.ComputeTime = d
			}
			if d := l.net.CommTime(st.BytesSent, st.MsgsSent); d > maxWorkerComm {
				maxWorkerComm = d
			}
		case kindDelta:
			if !gather {
				return res, nil, l.fail(fmt.Errorf("cluster: leader got unsolicited delta from %d", msg.From))
			}
			pendingDeltas = append(pendingDeltas, msg)
		case kindError:
			return res, nil, l.fail(fmt.Errorf("%w: %s", ErrWorkerFailed, msg.Payload))
		default:
			return res, nil, l.fail(fmt.Errorf("cluster: leader got unexpected kind %d from %d", msg.Kind, msg.From))
		}
	}

	var rows []DeltaRow
	if gather {
		var err error
		rows, err = l.gatherDeltas(seq, pendingDeltas, &res)
		if err != nil {
			return res, nil, err
		}
	}
	res.WallTime = time.Since(start)
	res.SimCommTime = maxWorkerComm + l.net.CommTime(res.RouteBytes+res.GatherBytes, int64(l.own.K)+res.GatherMsgs)
	return res, rows, nil
}

// gatherDeltas completes the delta-gather phase: exactly one kindDelta per
// worker (some possibly stashed during the done barrier), merged and
// sorted by global vertex id so the publication order is deterministic
// regardless of worker finishing order.
func (l *Leader) gatherDeltas(seq uint32, pending []transport.Message, res *Result) ([]DeltaRow, error) {
	k := l.own.K
	got := make([]bool, k)
	classes := -1
	var rows []DeltaRow
	consume := func(msg transport.Message) error {
		if msg.From < 0 || msg.From >= k || got[msg.From] {
			return fmt.Errorf("cluster: duplicate/invalid delta from %d", msg.From)
		}
		got[msg.From] = true
		mseq, mclasses, workerRows, err := decodeDelta(msg.Payload)
		if err != nil {
			return fmt.Errorf("cluster: delta from worker %d: %w", msg.From, err)
		}
		if mseq != seq {
			return fmt.Errorf("cluster: worker %d shipped delta for batch %d, expected %d", msg.From, mseq, seq)
		}
		// All ranks must agree on the final-layer width, or wrong-width
		// logits would silently truncate into the published tables (a
		// mismatched world flag in a multi-process deployment).
		if classes == -1 {
			classes = mclasses
		} else if mclasses != classes {
			return fmt.Errorf("cluster: worker %d shipped %d-class delta rows, others shipped %d", msg.From, mclasses, classes)
		}
		// Distrust wire-decoded ids like the rest of the protocol does: a
		// row must name a vertex the sender actually owns (or it would
		// index past, or into someone else's rows of, the serving tables),
		// and rows must be strictly ascending — workers emit them sorted,
		// and a duplicate would publish contradictory logits/flips for
		// one vertex.
		for i, row := range workerRows {
			if row.Vertex < 0 || int(row.Vertex) >= len(l.own.Owner) || l.own.Owner[row.Vertex] != int32(msg.From) {
				return fmt.Errorf("cluster: worker %d shipped delta row for vertex %d it does not own", msg.From, row.Vertex)
			}
			if i > 0 && workerRows[i-1].Vertex >= row.Vertex {
				return fmt.Errorf("cluster: worker %d shipped unsorted/duplicate delta row for vertex %d", msg.From, row.Vertex)
			}
		}
		res.GatherBytes += int64(len(msg.Payload))
		res.GatherMsgs++
		rows = append(rows, workerRows...)
		return nil
	}
	for _, msg := range pending {
		if err := consume(msg); err != nil {
			return nil, l.fail(err)
		}
	}
	for received := len(pending); received < k; received++ {
		msg, err := l.conn.Recv()
		if err != nil {
			return nil, l.fail(fmt.Errorf("cluster: leader delta recv: %w", err))
		}
		switch msg.Kind {
		case kindDelta:
			if err := consume(msg); err != nil {
				return nil, l.fail(err)
			}
		case kindError:
			return nil, l.fail(fmt.Errorf("%w: %s", ErrWorkerFailed, msg.Payload))
		default:
			return nil, l.fail(fmt.Errorf("cluster: leader got unexpected kind %d from %d during delta gather", msg.Kind, msg.From))
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Vertex < rows[j].Vertex })
	return rows, nil
}

// Shutdown asks every worker to terminate (best effort).
func (l *Leader) Shutdown() {
	for r := 0; r < l.own.K; r++ {
		_ = l.conn.Send(r, kindShutdown, nil)
	}
}
