package cluster

import (
	"math/rand"
	"sync"
	"testing"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/tensor"
)

func TestLocalTable(t *testing.T) {
	lt := newLocalTable(8, 3)
	v := lt.get(5)
	if !v.IsZero() || lt.lookup(4) != nil {
		t.Error("fresh table state wrong")
	}
	v[1] = 7
	if lt.get(5)[1] != 7 {
		t.Error("get should return the same vector")
	}
	lt.get(2)
	lt.get(7)
	got := lt.sortedTouched()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 7 {
		t.Errorf("sortedTouched = %v", got)
	}
	lt.reset()
	if len(lt.touched) != 0 || lt.lookup(5) != nil {
		t.Error("reset incomplete")
	}
	if !lt.get(1).IsZero() {
		t.Error("pooled vector not zeroed")
	}
}

func TestRemoveEdgeFromList(t *testing.T) {
	list := []graph.Edge{{Peer: 1, Weight: 10}, {Peer: 2, Weight: 20}, {Peer: 3, Weight: 30}}
	w, ok := removeEdgeFrom(&list, 2)
	if !ok || w != 20 || len(list) != 2 {
		t.Errorf("removeEdgeFrom = %v,%v len=%d", w, ok, len(list))
	}
	if _, ok := removeEdgeFrom(&list, 99); ok {
		t.Error("removing absent peer should fail")
	}
}

// TestConcurrentClustersAreIndependent runs two clusters side by side on
// different goroutines to catch shared-state bugs between instances.
func TestConcurrentClustersAreIndependent(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 91}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for inst := 0; inst < 2; inst++ {
		wg.Add(1)
		go func(inst int) {
			defer wg.Done()
			w := newWorld(t, spec, 30, 120, int64(500+inst))
			c := w.cluster(3, StratRipple, "hash")
			for b := 0; b < 4; b++ {
				if _, err := c.ApplyBatch(w.randomBatch(5)); err != nil {
					errs <- err
					return
				}
			}
			if d := c.GatherEmbeddings().MaxAbsDiff(w.truth()); d > distTol {
				t.Errorf("instance %d drifted by %v", inst, d)
			}
		}(inst)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLeaderSequenceNumbers verifies batches are answered in order with
// matching sequence numbers across many batches.
func TestLeaderSequenceNumbers(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 93}
	w := newWorld(t, spec, 20, 60, 503)
	c := w.cluster(2, StratRipple, "hash")
	rng := rand.New(rand.NewSource(1))
	for b := 0; b < 12; b++ {
		var batch []engine.Update
		if rng.Intn(3) > 0 {
			batch = w.randomBatch(1 + rng.Intn(4))
		} // sometimes empty
		if _, err := c.ApplyBatch(batch); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if d := c.GatherEmbeddings().MaxAbsDiff(w.truth()); d > distTol {
		t.Fatalf("drift %v after mixed empty/non-empty batches", d)
	}
}

// TestFeatureUpdateCrossPartitionNeighbours exercises the specific
// routing case where a feature update's propagation immediately crosses a
// partition boundary.
func TestFeatureUpdateCrossPartitionNeighbours(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 97}
	// Build a path 0→1→2→3 with alternating ownership under hash(2):
	// every hop crosses the cut.
	model, err := gnn.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(4)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	x := make([]tensor.Vector, 4)
	for i := range x {
		x[i] = tensor.NewVector(4)
		x[i][0] = float32(i + 1)
	}
	emb, err := gnn.Forward(g, model, x)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewLocal(LocalConfig{
		Graph: g, Model: model, Embeddings: emb,
		Assignment: hashAssign(4, 2), Strategy: StratRipple,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	newFeat := tensor.Vector{9, -3, 2, 0}
	if _, err := c.ApplyBatch([]engine.Update{{Kind: engine.FeatureUpdate, U: 0, Features: newFeat}}); err != nil {
		t.Fatal(err)
	}
	x[0] = newFeat
	truth, err := gnn.Forward(g.Clone(), model, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.GatherEmbeddings().MaxAbsDiff(truth); d > distTol {
		t.Fatalf("cross-partition path drift %v", d)
	}
}

func hashAssign(n, k int) *partition.Assignment {
	part := make([]int32, n)
	for i := range part {
		part[i] = int32(i % k)
	}
	return &partition.Assignment{K: k, Part: part}
}
