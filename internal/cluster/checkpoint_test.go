package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/tensor"
)

// ckptWorld builds a small bootstrapped world shared by the barrier tests.
func ckptWorld(t *testing.T, n, m, k int, seed int64) (*graph.Graph, *gnn.Model, *gnn.Embeddings, *partition.Assignment) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model, err := gnn.NewWorkload("GC-S", []int{5, 7, 4}, seed)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if u != v {
			_ = g.AddEdge(u, v, 0.2+rng.Float32())
		}
	}
	x := make([]tensor.Vector, n)
	for i := range x {
		x[i] = tensor.NewVector(model.Dims[0])
		for j := range x[i] {
			x[i][j] = rng.Float32() - 0.5
		}
	}
	emb, err := gnn.Forward(g, model, x)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.ByName("hash", g, k)
	if err != nil {
		t.Fatal(err)
	}
	return g, model, emb, assign
}

// TestBarrierCheckpointGathersGlobalState: the leader-coordinated barrier
// must reassemble exactly the per-worker state — including batches applied
// after bootstrap — bit-identically to the in-process gather.
func TestBarrierCheckpointGathersGlobalState(t *testing.T) {
	g, model, emb, assign := ckptWorld(t, 48, 200, 3, 11)
	c, err := NewLocal(LocalConfig{Graph: g.Clone(), Model: model, Embeddings: emb, Assignment: assign, Strategy: StratRipple})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Mutate state past bootstrap so the barrier is not trivially the
	// bootstrap embedding.
	if _, err := c.ApplyBatch([]engine.Update{
		{Kind: engine.FeatureUpdate, U: 3, Features: tensor.NewVector(model.Dims[0])},
		{Kind: engine.FeatureUpdate, U: 17, Features: tensor.NewVector(model.Dims[0])},
	}); err != nil {
		t.Fatal(err)
	}

	gathered, err := c.CheckpointEmbeddings()
	if err != nil {
		t.Fatal(err)
	}
	direct := c.GatherEmbeddings()
	if d := gathered.MaxAbsDiff(direct); d != 0 {
		t.Fatalf("barrier checkpoint drifts from direct gather by %v", d)
	}

	// The cluster must keep applying batches after a barrier.
	if _, err := c.ApplyBatch([]engine.Update{{Kind: engine.FeatureUpdate, U: 9, Features: tensor.NewVector(model.Dims[0])}}); err != nil {
		t.Fatalf("batch after barrier: %v", err)
	}
}

// TestManifestRoundTrip: WriteManifest → LoadManifest must reproduce the
// topology, placement and embeddings bit-identically, and a cluster
// rebuilt from the manifest must continue from the same state.
func TestManifestRoundTrip(t *testing.T) {
	g, model, emb, assign := ckptWorld(t, 40, 160, 2, 13)
	own := BuildOwnership(assign)

	var buf bytes.Buffer
	if err := WriteManifest(&buf, g, own, emb); err != nil {
		t.Fatal(err)
	}
	g2, assign2, emb2, err := LoadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("topology mismatch: %d/%d vertices, %d/%d edges", g2.NumVertices(), g.NumVertices(), g2.NumEdges(), g.NumEdges())
	}
	g.ForEachEdge(func(u, v graph.VertexID, w float32) {
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost in manifest", u, v)
		}
	})
	if assign2.K != assign.K {
		t.Fatalf("K %d, want %d", assign2.K, assign.K)
	}
	for u := range assign.Part {
		if assign.Part[u] != assign2.Part[u] {
			t.Fatalf("vertex %d owner %d, want %d", u, assign2.Part[u], assign.Part[u])
		}
	}
	if d := emb2.MaxAbsDiff(emb); d != 0 {
		t.Fatalf("embeddings drift %v through manifest", d)
	}

	// A cluster rebuilt from the manifest serves the same labels and
	// accepts further batches.
	c, err := NewLocal(LocalConfig{Graph: g2, Model: model, Embeddings: emb2, Assignment: assign2, Strategy: StratRipple})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for v := 0; v < g.NumVertices(); v++ {
		if got, want := c.Label(graph.VertexID(v)), emb.Label(int32(v)); got != want {
			t.Fatalf("vertex %d label %d after manifest rebuild, want %d", v, got, want)
		}
	}
	if _, err := c.ApplyBatch([]engine.Update{{Kind: engine.FeatureUpdate, U: 1, Features: tensor.NewVector(model.Dims[0])}}); err != nil {
		t.Fatalf("batch after manifest rebuild: %v", err)
	}
}

// TestLoadManifestRejectsCorruption: truncations and bit flips must fail
// with ErrBadManifest (or a structural error), never a panic or a
// silently wrong load.
func TestLoadManifestTruncation(t *testing.T) {
	g, _, emb, assign := ckptWorld(t, 12, 40, 2, 17)
	var buf bytes.Buffer
	if err := WriteManifest(&buf, g, BuildOwnership(assign), emb); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, _, _, err := LoadManifest(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated manifest (%d of %d bytes) loaded", cut, len(full))
		} else if !errors.Is(err, ErrBadManifest) {
			t.Fatalf("truncated manifest error %v, want ErrBadManifest", err)
		}
	}
}

// TestUpdatesCodecRoundTrip pins the WAL payload encoding.
func TestUpdatesCodecRoundTrip(t *testing.T) {
	batch := []engine.Update{
		{Kind: engine.EdgeAdd, U: 3, V: 9, Weight: 1.25},
		{Kind: engine.EdgeDelete, U: 9, V: 3},
		{Kind: engine.FeatureUpdate, U: 7, Features: tensor.Vector{0.5, -1, 2.25}},
	}
	got, err := DecodeUpdates(EncodeUpdates(batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d updates, want %d", len(got), len(batch))
	}
	for i := range batch {
		w, g := batch[i], got[i]
		if w.Kind != g.Kind || w.U != g.U || w.V != g.V || w.Weight != g.Weight || len(w.Features) != len(g.Features) {
			t.Fatalf("update %d: %+v != %+v", i, g, w)
		}
		for j := range w.Features {
			if w.Features[j] != g.Features[j] {
				t.Fatalf("update %d feature %d mismatch", i, j)
			}
		}
	}
	// Truncations must error, not misparse.
	enc := EncodeUpdates(batch)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeUpdates(enc[:cut]); err == nil {
			t.Fatalf("truncated updates payload (%d of %d bytes) decoded", cut, len(enc))
		}
	}
}
