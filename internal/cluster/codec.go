// Package cluster implements distributed streaming GNN inference (§5):
// METIS-substitute partition placement, leader-side request batching and
// routing (including no-compute topology requests for cross-partition
// edges), halo-vertex stub mailboxes, and hop-synchronous BSP propagation
// for both distributed Ripple and the distributed recompute (RC) baseline.
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"ripple/internal/engine"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// Message kinds on the wire.
const (
	kindBatch     uint8 = iota + 1 // leader→worker: routed sub-batch
	kindHalo                       // worker→worker: per-hop halo deltas (Ripple)
	kindAffect                     // worker→worker: per-hop affected marks (RC)
	kindNeed                       // worker→worker: embedding requests (RC)
	kindFill                       // worker→worker: embedding responses (RC)
	kindDone                       // worker→leader: per-batch stats
	kindShutdown                   // leader→worker: terminate
	kindError                      // worker→leader: fatal worker error
	kindDelta                      // worker→leader: final-layer changed rows (delta gather)
	kindCkpt                       // leader→worker: barrier-checkpoint state request
	kindCkptState                  // worker→leader: serialized partition state
)

// routedUpdate is an update as delivered to one worker. NoCompute marks
// the topology-only copy sent to the sink's owner for cross-partition edge
// updates (§5.2): it changes the local in-adjacency but triggers no
// propagation.
type routedUpdate struct {
	engine.Update
	NoCompute bool
}

// --- primitive appenders/readers (little-endian) ---

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF32(b []byte, v float32) []byte {
	return appendU32(b, math.Float32bits(v))
}

func appendVec(b []byte, v tensor.Vector) []byte {
	for _, x := range v {
		b = appendF32(b, x)
	}
	return b
}

// reader is a bounds-checked cursor over a payload.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("cluster: truncated payload reading %s at offset %d/%d", what, r.off, len(r.b))
	}
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f32(what string) float32 {
	return math.Float32frombits(r.u32(what))
}

func (r *reader) byte(what string) byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) vec(width int, what string) tensor.Vector {
	if width < 0 || r.err != nil {
		r.fail(what)
		return nil
	}
	// Bounds-check the whole vector before allocating: a hostile or
	// corrupt width must not trigger a giant allocation.
	if uint64(r.off)+uint64(width)*4 > uint64(len(r.b)) {
		r.fail(what)
		return nil
	}
	v := tensor.NewVector(width)
	for i := 0; i < width; i++ {
		v[i] = r.f32(what)
	}
	return v
}

// count validates a wire-declared element count against the bytes left in
// the payload: n elements of at least minBytes each must fit. This both
// rejects truncated payloads early and keeps decode allocation bounded by
// the payload size, so corrupt counts cannot cause huge allocations.
func (r *reader) count(n uint32, minBytes int, what string) int {
	if r.err != nil {
		return 0
	}
	// Compare by division: minBytes is wire-derived in the halo case
	// (4+width*4), so the product n*minBytes could wrap uint64 and slip
	// past a multiplication-based guard.
	if minBytes <= 0 || uint64(n) > uint64(len(r.b)-r.off)/uint64(minBytes) {
		r.fail(what)
		return 0
	}
	return int(n)
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("cluster: %d trailing bytes in payload", len(r.b)-r.off)
	}
	return nil
}

// --- batch encoding ---

// batchFlagDelta asks the worker to follow its kindDone report with a
// kindDelta message carrying the final-layer rows its local frontier
// touched (the serving tier's delta-gather phase).
const batchFlagDelta uint8 = 1 << 0

func encodeBatch(seq uint32, flags uint8, updates []routedUpdate) []byte {
	b := appendU32(nil, seq)
	b = append(b, flags)
	b = appendU32(b, uint32(len(updates)))
	for _, u := range updates {
		b = append(b, byte(u.Kind))
		if u.NoCompute {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendU32(b, uint32(u.U))
		b = appendU32(b, uint32(u.V))
		b = appendF32(b, u.Weight)
		b = appendU32(b, uint32(len(u.Features)))
		b = appendVec(b, u.Features)
	}
	return b
}

func decodeBatch(payload []byte) (uint32, uint8, []routedUpdate, error) {
	r := &reader{b: payload}
	seq := r.u32("seq")
	flags := r.byte("flags")
	// Each routed update occupies at least 18 bytes on the wire
	// (kind + nocompute + u + v + weight + featlen).
	n := r.count(r.u32("count"), 18, "count")
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	updates := make([]routedUpdate, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var u routedUpdate
		u.Kind = engine.UpdateKind(r.byte("kind"))
		u.NoCompute = r.byte("nocompute") == 1
		u.U = graph.VertexID(r.u32("u"))
		u.V = graph.VertexID(r.u32("v"))
		u.Weight = r.f32("weight")
		if fl := r.u32("featlen"); fl > 0 {
			u.Features = r.vec(int(fl), "features")
		}
		updates = append(updates, u)
	}
	if err := r.done(); err != nil {
		return 0, 0, nil, err
	}
	return seq, flags, updates, nil
}

// --- plain update-batch encoding (WAL payloads) ---

// EncodeUpdates serializes one admitted update batch in the same wire
// form the leader's routed sub-batches use, minus the routing envelope
// (no seq/flags/no-compute). It is the payload format of the durability
// WAL: the serving tier frames exactly the accepted-batch sequence
// through internal/wal with this encoding.
func EncodeUpdates(batch []engine.Update) []byte {
	b := appendU32(nil, uint32(len(batch)))
	for _, u := range batch {
		b = append(b, byte(u.Kind))
		b = appendU32(b, uint32(u.U))
		b = appendU32(b, uint32(u.V))
		b = appendF32(b, u.Weight)
		b = appendU32(b, uint32(len(u.Features)))
		b = appendVec(b, u.Features)
	}
	return b
}

// DecodeUpdates is the inverse of EncodeUpdates, with the same
// truncation/overflow hardening as the routed-batch decoder.
func DecodeUpdates(payload []byte) ([]engine.Update, error) {
	r := &reader{b: payload}
	// Each update occupies at least 17 bytes on the wire
	// (kind + u + v + weight + featlen).
	n := r.count(r.u32("count"), 17, "count")
	if r.err != nil {
		return nil, r.err
	}
	updates := make([]engine.Update, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var u engine.Update
		u.Kind = engine.UpdateKind(r.byte("kind"))
		u.U = graph.VertexID(r.u32("u"))
		u.V = graph.VertexID(r.u32("v"))
		u.Weight = r.f32("weight")
		if fl := r.u32("featlen"); fl > 0 {
			u.Features = r.vec(int(fl), "features")
		}
		updates = append(updates, u)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return updates, nil
}

// --- halo delta encoding (Ripple) ---

// haloEntry pairs a global vertex id with its accumulated delta.
type haloEntry struct {
	id  graph.VertexID
	vec tensor.Vector
}

func encodeHalo(hop int, width int, entries []haloEntry) []byte {
	b := appendU32(nil, uint32(hop))
	b = appendU32(b, uint32(width))
	b = appendU32(b, uint32(len(entries)))
	for _, e := range entries {
		b = appendU32(b, uint32(e.id))
		b = appendVec(b, e.vec)
	}
	return b
}

func decodeHalo(payload []byte) (hop int, entries []haloEntry, err error) {
	r := &reader{b: payload}
	hop = int(r.u32("hop"))
	width := int(r.u32("width"))
	n := r.count(r.u32("count"), 4+width*4, "count")
	if r.err != nil {
		return 0, nil, r.err
	}
	entries = make([]haloEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		id := graph.VertexID(r.u32("id"))
		vec := r.vec(width, "delta")
		entries = append(entries, haloEntry{id: id, vec: vec})
	}
	if err := r.done(); err != nil {
		return 0, nil, err
	}
	return hop, entries, nil
}

// --- delta-gather encoding (distributed serving) ---

// DeltaRow is one final-layer row a batch touched, as gathered by the
// leader for epoch publication: the vertex's global id, its predicted
// class before and after the batch, and its fresh logits. Shipping only
// these rows makes a distributed epoch publish cost O(frontier rows on
// the wire) instead of a whole-table gather's O(|V|·classes).
type DeltaRow struct {
	Vertex             graph.VertexID
	OldLabel, NewLabel int32
	Logits             tensor.Vector
}

func encodeDelta(seq uint32, classes int, rows []DeltaRow) []byte {
	b := appendU32(nil, seq)
	b = appendU32(b, uint32(classes))
	b = appendU32(b, uint32(len(rows)))
	for _, row := range rows {
		b = appendU32(b, uint32(row.Vertex))
		b = appendU32(b, uint32(row.OldLabel))
		b = appendU32(b, uint32(row.NewLabel))
		b = appendVec(b, row.Logits)
	}
	return b
}

func decodeDelta(payload []byte) (seq uint32, classes int, rows []DeltaRow, err error) {
	r := &reader{b: payload}
	seq = r.u32("seq")
	classes = int(r.u32("classes"))
	// Each row is id + old + new + the logits: 12 + classes*4 bytes. The
	// division-based count guard rejects wire-chosen widths whose product
	// would wrap before any allocation happens.
	n := r.count(r.u32("count"), 12+classes*4, "count")
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	rows = make([]DeltaRow, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		row := DeltaRow{
			Vertex:   graph.VertexID(r.u32("vertex")),
			OldLabel: int32(r.u32("old")),
			NewLabel: int32(r.u32("new")),
		}
		row.Logits = r.vec(classes, "logits")
		rows = append(rows, row)
	}
	if err := r.done(); err != nil {
		return 0, 0, nil, err
	}
	return seq, classes, rows, nil
}

// --- id list encoding (RC affect marks and need lists) ---

func encodeIDs(hop int, phase uint8, ids []graph.VertexID) []byte {
	b := appendU32(nil, uint32(hop))
	b = append(b, phase)
	b = appendU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = appendU32(b, uint32(id))
	}
	return b
}

func decodeIDs(payload []byte) (hop int, phase uint8, ids []graph.VertexID, err error) {
	r := &reader{b: payload}
	hop = int(r.u32("hop"))
	phase = r.byte("phase")
	n := r.count(r.u32("count"), 4, "count")
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	ids = make([]graph.VertexID, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		ids = append(ids, graph.VertexID(r.u32("id")))
	}
	if err := r.done(); err != nil {
		return 0, 0, nil, err
	}
	return hop, phase, ids, nil
}

// --- done/stats encoding ---

// workerStats is one worker's per-batch report to the leader.
type workerStats struct {
	Seq          uint32
	ComputeNanos int64
	UpdateNanos  int64
	Affected     int64
	Messages     int64
	VectorOps    int64
	BytesSent    int64
	MsgsSent     int64
}

func encodeDone(s workerStats) []byte {
	b := appendU32(nil, s.Seq)
	b = appendU64(b, uint64(s.ComputeNanos))
	b = appendU64(b, uint64(s.UpdateNanos))
	b = appendU64(b, uint64(s.Affected))
	b = appendU64(b, uint64(s.Messages))
	b = appendU64(b, uint64(s.VectorOps))
	b = appendU64(b, uint64(s.BytesSent))
	b = appendU64(b, uint64(s.MsgsSent))
	return b
}

func decodeDone(payload []byte) (workerStats, error) {
	r := &reader{b: payload}
	s := workerStats{
		Seq:          r.u32("seq"),
		ComputeNanos: int64(r.u64("compute")),
		UpdateNanos:  int64(r.u64("update")),
		Affected:     int64(r.u64("affected")),
		Messages:     int64(r.u64("messages")),
		VectorOps:    int64(r.u64("vecops")),
		BytesSent:    int64(r.u64("bytes")),
		MsgsSent:     int64(r.u64("msgs")),
	}
	if err := r.done(); err != nil {
		return workerStats{}, err
	}
	return s, nil
}
