package gnn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// TestQuickAggregationLinearity: the raw aggregate A is linear in the
// input embeddings — the exact property Ripple's delta messages rely on.
// Verified by comparing A(x+y) with A(x)+A(y) on identity-update models
// (no nonlinearity in the way).
func TestQuickAggregationLinearity(t *testing.T) {
	property := func(seed int64, rawX, rawY [12]int8) bool {
		const n = 12
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(n)
		for i := 0; i < 40; i++ {
			// Power-of-two weights keep float arithmetic exact.
			w := float32(int(1) << uint(rng.Intn(3)))
			_ = g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), w)
		}
		xs := toFeatures(rawX)
		ys := toFeatures(rawY)
		sum := make([]tensor.Vector, n)
		for i := range sum {
			sum[i] = xs[i].Clone()
			sum[i].Add(ys[i])
		}
		for _, agg := range []Aggregator{AggSum, AggWeighted} {
			ax := aggregateOnce(g, agg, xs)
			ay := aggregateOnce(g, agg, ys)
			asum := aggregateOnce(g, agg, sum)
			for u := 0; u < n; u++ {
				combined := ax[u].Clone()
				combined.Add(ay[u])
				if combined.MaxAbsDiff(asum[u]) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// toFeatures expands int8 seeds into 1-dim feature vectors.
func toFeatures(raw [12]int8) []tensor.Vector {
	out := make([]tensor.Vector, len(raw))
	for i, v := range raw {
		out[i] = tensor.Vector{float32(v)}
	}
	return out
}

// aggregateOnce computes the hop-1 raw aggregates for 1-dim features.
func aggregateOnce(g *graph.Graph, agg Aggregator, x []tensor.Vector) []tensor.Vector {
	n := g.NumVertices()
	out := make([]tensor.Vector, n)
	for u := 0; u < n; u++ {
		acc := tensor.NewVector(1)
		for _, in := range g.In(graph.VertexID(u)) {
			acc.AXPY(Coeff(agg, in.Weight), x[in.Peer])
		}
		out[u] = acc
	}
	return out
}

// TestQuickForwardDeterminism: two Forward passes over the same inputs are
// bit-identical despite the parallel execution.
func TestQuickForwardDeterminism(t *testing.T) {
	property := func(graphSeed, featSeed int64, kindIdx uint8) bool {
		kinds := []ModelKind{GraphConv, GraphSAGE, GINConv}
		spec := Spec{Kind: kinds[int(kindIdx)%3], Agg: AggSum, Dims: []int{5, 6, 4}, Seed: 7}
		m, err := NewModel(spec)
		if err != nil {
			return false
		}
		g := randomQuickGraph(graphSeed, 30, 120)
		x := randomFeatures(30, 5, featSeed)
		e1, err := Forward(g, m, x)
		if err != nil {
			return false
		}
		e2, err := Forward(g, m, x)
		if err != nil {
			return false
		}
		return e1.MaxAbsDiff(e2) == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func randomQuickGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < m; i++ {
		_ = g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 0.1+rng.Float32())
	}
	return g
}

// TestQuickEmbeddingsGrow: growing keeps existing rows intact and appends
// zeroed rows of the right widths.
func TestQuickEmbeddingsGrow(t *testing.T) {
	property := func(nRaw, growRaw uint8) bool {
		n := 1 + int(nRaw)%20
		grows := int(growRaw) % 5
		dims := []int{3, 4, 2}
		e := NewEmbeddings(n, dims)
		e.H[0][0][0] = 42
		for i := 0; i < grows; i++ {
			id := e.Grow()
			if id != n+i {
				return false
			}
			for l, d := range dims {
				if len(e.H[l][id]) != d || !e.H[l][id].IsZero() {
					return false
				}
				if l > 0 && len(e.A[l][id]) != dims[l-1] {
					return false
				}
			}
		}
		return e.N == n+grows && e.H[0][0][0] == 42
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
