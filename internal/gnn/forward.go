package gnn

import (
	"fmt"

	"ripple/internal/graph"
	"ripple/internal/par"
	"ripple/internal/tensor"
)

// Coeff returns the aggregation coefficient α for an edge with the given
// stored weight: 1 for sum and mean (mean divides by degree at Update
// time), the edge weight for weighted sum. The engine's delta messages use
// the same coefficient, which is what makes incremental and full
// computation bit-compatible in structure.
func Coeff(agg Aggregator, edgeWeight float32) float32 {
	if agg == AggWeighted {
		return edgeWeight
	}
	return 1
}

// Forward runs full layer-wise inference over the whole graph: for each
// layer it computes the raw aggregate A^l and embedding h^l of every
// vertex, parallelised across vertices. X provides the input features
// (h^0); len(X) must equal g.NumVertices() and each feature vector must
// have width m.Dims[0].
//
// This is the bootstrap step of the paper (§4.1): it produces the initial
// embedding state that streaming updates are then applied to. It is also
// the ground-truth oracle the tests compare every incremental strategy
// against.
func Forward(g *graph.Graph, m *Model, x []tensor.Vector) (*Embeddings, error) {
	n := g.NumVertices()
	if len(x) != n {
		return nil, fmt.Errorf("gnn: Forward got %d feature rows for %d vertices", len(x), n)
	}
	e := NewEmbeddings(n, m.Dims)
	for u := 0; u < n; u++ {
		if len(x[u]) != m.Dims[0] {
			return nil, fmt.Errorf("gnn: feature row %d has width %d, want %d", u, len(x[u]), m.Dims[0])
		}
		e.H[0][u].CopyFrom(x[u])
	}
	ForwardLayers(g, m, e, 1)
	return e, nil
}

// ForwardLayers recomputes layers [fromLayer..L] of e for all vertices from
// the current H[fromLayer-1] and topology. fromLayer must be in [1..L].
func ForwardLayers(g *graph.Graph, m *Model, e *Embeddings, fromLayer int) {
	n := g.NumVertices()
	for l := fromLayer; l <= m.L(); l++ {
		layer := m.Layers[l-1]
		par.For(n, func(lo, hi int) {
			s := NewScratch(m.MaxDim())
			for u := lo; u < hi; u++ {
				uid := graph.VertexID(u)
				agg := e.A[l][u]
				agg.Zero()
				for _, in := range g.In(uid) {
					agg.AXPY(Coeff(m.Agg, in.Weight), e.H[l-1][in.Peer])
				}
				layer.UpdateInto(e.H[l][u], e.H[l-1][u], agg, g.InDegree(uid), s)
			}
		})
	}
}
