package gnn

import (
	"math/rand"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// vertexMemo caches per-(layer, vertex) embeddings during one vertex-wise
// inference call. The memo is scoped to a single target on purpose: the
// paper's point about vertex-wise inference (Fig. 1) is that computation
// subgraphs of nearby targets overlap and the work is *not* shared between
// them, which is exactly the redundancy layer-wise inference removes.
type vertexMemo map[int64]tensor.Vector

func memoKey(l int, u graph.VertexID) int64 { return int64(l)<<32 | int64(uint32(u)) }

// InferVertex computes the exact final-layer embedding of target by
// vertex-wise (computation-graph) inference over its full L-hop in-
// neighbourhood. x provides h^0 for all vertices.
func InferVertex(g *graph.Graph, m *Model, x []tensor.Vector, target graph.VertexID) tensor.Vector {
	memo := vertexMemo{}
	s := NewScratch(m.MaxDim())
	return inferRec(g, m, x, target, m.L(), memo, s, 0, nil)
}

// InferVertexSampled computes the final-layer embedding of target using
// neighbourhood sampling with the given fanout per hop (Fig. 2a). At each
// vertex of the computation graph, at most fanout in-neighbours are drawn
// without replacement. fanout <= 0 means no sampling (exact). Mean
// aggregation normalises by the number of *sampled* neighbours, matching
// sampled-inference semantics in DGL.
func InferVertexSampled(g *graph.Graph, m *Model, x []tensor.Vector, target graph.VertexID, fanout int, rng *rand.Rand) tensor.Vector {
	memo := vertexMemo{}
	s := NewScratch(m.MaxDim())
	return inferRec(g, m, x, target, m.L(), memo, s, fanout, rng)
}

// inferRec returns h^l_u, computing the subtree below it on demand.
func inferRec(g *graph.Graph, m *Model, x []tensor.Vector, u graph.VertexID, l int, memo vertexMemo, s *Scratch, fanout int, rng *rand.Rand) tensor.Vector {
	if l == 0 {
		return x[u]
	}
	if h, ok := memo[memoKey(l, u)]; ok {
		return h
	}
	layer := m.Layers[l-1]

	neighbours := g.In(u)
	sampled := neighbours
	if fanout > 0 && len(neighbours) > fanout {
		sampled = sampleEdges(neighbours, fanout, rng)
	}

	agg := tensor.NewVector(layer.In)
	for _, in := range sampled {
		agg.AXPY(Coeff(m.Agg, in.Weight), inferRec(g, m, x, in.Peer, l-1, memo, s, fanout, rng))
	}

	var hSelf tensor.Vector
	if layer.Kind.SelfDependent() {
		hSelf = inferRec(g, m, x, u, l-1, memo, s, fanout, rng)
	} else {
		hSelf = s.b[:layer.In] // unused by GraphConv's Update; any buffer works
	}

	dst := tensor.NewVector(layer.Out)
	layer.UpdateInto(dst, hSelf, agg, len(sampled), s)
	memo[memoKey(l, u)] = dst
	return dst
}

// sampleEdges draws k distinct edges from list without replacement using a
// partial Fisher–Yates shuffle over a copied index set.
func sampleEdges(list []graph.Edge, k int, rng *rand.Rand) []graph.Edge {
	idx := make([]int, len(list))
	for i := range idx {
		idx[i] = i
	}
	out := make([]graph.Edge, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = list[idx[i]]
	}
	return out
}
