// Package gnn implements the GNN model substrate: GraphConv, GraphSAGE and
// GINConv layers over linear aggregation functions (sum, mean, weighted
// sum), full layer-wise inference over a graph, and sampled vertex-wise
// inference. It replaces the DGL/PyTorch stack of the reference
// implementation; weights are deterministic functions of a seed, standing
// in for trained parameters (see DESIGN.md §1).
package gnn

import (
	"fmt"
	"math/rand"

	"ripple/internal/tensor"
)

// Aggregator selects the linear neighbourhood aggregation function
// (paper Table 1). All three commute and distribute over deltas, which is
// the property Ripple's incremental messages rely on.
type Aggregator uint8

const (
	// AggSum is h_i = Σ_{j∈N(i)} h_j.
	AggSum Aggregator = iota + 1
	// AggMean is h_i = (1/|N(i)|) Σ_{j∈N(i)} h_j.
	AggMean
	// AggWeighted is h_i = Σ_{j∈N(i)} α_ij·h_j with per-edge static α.
	AggWeighted
)

// String returns the aggregator's name.
func (a Aggregator) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggMean:
		return "mean"
	case AggWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("Aggregator(%d)", uint8(a))
	}
}

// ModelKind selects the layer architecture.
type ModelKind uint8

const (
	// GraphConv is h_u = σ(W·agg + b): pure neighbour aggregation, no self
	// term (Kipf & Welling style, with the normalisation expressed through
	// the chosen aggregator).
	GraphConv ModelKind = iota + 1
	// GraphSAGE is h_u = σ(W_self·h_u + W_neigh·agg + b) (Hamilton et al.).
	GraphSAGE
	// GINConv is h_u = σ(MLP((1+ε)·h_u + agg)) with a 2-layer ReLU MLP
	// (Xu et al.).
	GINConv
)

// String returns the model kind's name.
func (k ModelKind) String() string {
	switch k {
	case GraphConv:
		return "GraphConv"
	case GraphSAGE:
		return "GraphSAGE"
	case GINConv:
		return "GINConv"
	default:
		return fmt.Sprintf("ModelKind(%d)", uint8(k))
	}
}

// SelfDependent reports whether a layer's output depends on the vertex's
// own previous-layer embedding (through W_self or the (1+ε) term). When
// true, a change to h^{l-1}_u forces h^l_u to be recomputed even if no
// in-neighbour changed, so the propagation frontier includes the vertex
// itself.
func (k ModelKind) SelfDependent() bool { return k == GraphSAGE || k == GINConv }

// Layer is one GNN layer: the Aggregate function (selected by Agg) plus the
// learnable Update function (the weight matrices) and the activation.
type Layer struct {
	Kind ModelKind
	Agg  Aggregator
	Act  tensor.Activation
	In   int // input embedding dimension
	Out  int // output embedding dimension

	// GraphConv and GraphSAGE parameters.
	WNeigh *tensor.Matrix // Out×In
	WSelf  *tensor.Matrix // Out×In (GraphSAGE only)
	B      tensor.Vector  // Out

	// GINConv parameters: MLP(z) = W2·relu(W1·z + B1) + B2 with hidden
	// width equal to Out.
	Eps float32
	W1  *tensor.Matrix // Out×In
	B1  tensor.Vector  // Out
	W2  *tensor.Matrix // Out×Out
	B2  tensor.Vector  // Out
}

// Scratch holds per-caller temporary buffers so Layer.UpdateInto performs
// no allocation on the hot path. One Scratch must not be shared across
// goroutines.
type Scratch struct {
	a tensor.Vector
	b tensor.Vector
}

// NewScratch returns scratch buffers able to serve layers whose dimensions
// do not exceed maxDim.
func NewScratch(maxDim int) *Scratch {
	return &Scratch{a: tensor.NewVector(maxDim), b: tensor.NewVector(maxDim)}
}

// UpdateInto computes the layer output for one vertex:
//
//	dst = Update(hSelf, normalise(rawAgg, inDeg))
//
// rawAgg is the *raw* aggregate Σ α·h over in-neighbours (never divided by
// degree); mean normalisation uses the live inDeg here. Keeping the raw sum
// external is what lets the incremental engine fold O(k′) deltas into the
// aggregate and still evaluate mean exactly under degree changes.
//
// dst must not alias hSelf or rawAgg.
func (l *Layer) UpdateInto(dst, hSelf, rawAgg tensor.Vector, inDeg int, s *Scratch) {
	agg := rawAgg
	if l.Agg == AggMean {
		norm := s.a[:l.In]
		if inDeg > 0 {
			tensor.ScaleInto(norm, rawAgg, 1/float32(inDeg))
		} else {
			norm.Zero()
		}
		agg = norm
	}

	switch l.Kind {
	case GraphConv:
		l.WNeigh.MatVec(dst, agg)
		dst.Add(l.B)
	case GraphSAGE:
		l.WSelf.MatVec(dst, hSelf)
		l.WNeigh.MatVecAcc(dst, agg)
		dst.Add(l.B)
	case GINConv:
		z := s.b[:l.In]
		tensor.ScaleAddInto(z, hSelf, agg, 1+l.Eps)
		hid := s.a[:l.Out] // safe: agg (aliasing s.a) is consumed into z above
		l.W1.MatVec(hid, z)
		hid.Add(l.B1)
		tensor.ReLU(hid)
		l.W2.MatVec(dst, hid)
		dst.Add(l.B2)
	default:
		panic(fmt.Sprintf("gnn: unknown layer kind %v", l.Kind))
	}
	l.Act.Apply(dst)
}

// Model is an L-layer GNN for vertex classification. Dims[0] is the input
// feature width and Dims[L] the number of classes; the predicted label of a
// vertex is the argmax of its final-layer embedding.
type Model struct {
	Kind   ModelKind
	Agg    Aggregator
	Layers []*Layer
	Dims   []int
}

// Spec configures NewModel.
type Spec struct {
	Kind ModelKind
	Agg  Aggregator
	// Dims is [featureDim, hidden..., numClasses]; len(Dims) = L+1.
	Dims []int
	// Seed determines the (stand-in for trained) weights.
	Seed int64
}

// NewModel builds a model with deterministic Glorot-initialised weights.
// Hidden layers use ReLU; the final layer is linear (logits).
func NewModel(spec Spec) (*Model, error) {
	if len(spec.Dims) < 2 {
		return nil, fmt.Errorf("gnn: model needs at least 2 dims (feat, classes), got %v", spec.Dims)
	}
	for i, d := range spec.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("gnn: dims[%d] = %d must be positive", i, d)
		}
	}
	switch spec.Kind {
	case GraphConv, GraphSAGE, GINConv:
	default:
		return nil, fmt.Errorf("gnn: unknown model kind %v", spec.Kind)
	}
	switch spec.Agg {
	case AggSum, AggMean, AggWeighted:
	default:
		return nil, fmt.Errorf("gnn: unknown aggregator %v", spec.Agg)
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	m := &Model{
		Kind: spec.Kind,
		Agg:  spec.Agg,
		Dims: append([]int(nil), spec.Dims...),
	}
	numLayers := len(spec.Dims) - 1
	for l := 0; l < numLayers; l++ {
		in, out := spec.Dims[l], spec.Dims[l+1]
		layer := &Layer{
			Kind: spec.Kind,
			Agg:  spec.Agg,
			In:   in,
			Out:  out,
			Act:  tensor.ActReLU,
		}
		if l == numLayers-1 {
			layer.Act = tensor.ActIdentity
		}
		switch spec.Kind {
		case GraphConv:
			layer.WNeigh = tensor.NewMatrix(out, in)
			layer.WNeigh.GlorotInit(rng)
			layer.B = tensor.NewVector(out)
		case GraphSAGE:
			layer.WSelf = tensor.NewMatrix(out, in)
			layer.WSelf.GlorotInit(rng)
			layer.WNeigh = tensor.NewMatrix(out, in)
			layer.WNeigh.GlorotInit(rng)
			layer.B = tensor.NewVector(out)
		case GINConv:
			layer.Eps = 0.1
			layer.W1 = tensor.NewMatrix(out, in)
			layer.W1.GlorotInit(rng)
			layer.B1 = tensor.NewVector(out)
			layer.W2 = tensor.NewMatrix(out, out)
			layer.W2.GlorotInit(rng)
			layer.B2 = tensor.NewVector(out)
		}
		m.Layers = append(m.Layers, layer)
	}
	return m, nil
}

// L returns the number of layers.
func (m *Model) L() int { return len(m.Layers) }

// MaxDim returns the largest dimension across all layers, the sizing bound
// for Scratch buffers.
func (m *Model) MaxDim() int {
	max := 0
	for _, d := range m.Dims {
		if d > max {
			max = d
		}
	}
	return max
}

// SelfDependent reports whether the architecture's layers depend on the
// vertex's own previous-layer embedding.
func (m *Model) SelfDependent() bool { return m.Kind.SelfDependent() }

// String describes the model, e.g. "GraphSAGE-sum-2L[128 64 40]".
func (m *Model) String() string {
	return fmt.Sprintf("%v-%v-%dL%v", m.Kind, m.Agg, m.L(), m.Dims)
}
