package gnn

import (
	"math/rand"
	"testing"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// makeEdgeList builds n edges with distinct peers for sampling tests.
func makeEdgeList(n int) []graph.Edge {
	list := make([]graph.Edge, n)
	for i := range list {
		list[i] = graph.Edge{Peer: int32(i), Weight: 1}
	}
	return list
}

// randomGraph builds a seeded random directed graph.
func randomGraph(t testing.TB, n, edges int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < edges; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		w := 0.1 + rng.Float32()
		_ = g.AddEdge(u, v, w) // duplicate attempts ignored
	}
	return g
}

// randomFeatures builds seeded features of width d.
func randomFeatures(n, d int, seed int64) []tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	x := make([]tensor.Vector, n)
	for i := range x {
		x[i] = tensor.NewVector(d)
		for j := range x[i] {
			x[i][j] = rng.Float32()*2 - 1
		}
	}
	return x
}

func allSpecs() []Spec {
	var specs []Spec
	for _, kind := range []ModelKind{GraphConv, GraphSAGE, GINConv} {
		for _, agg := range []Aggregator{AggSum, AggMean, AggWeighted} {
			specs = append(specs, Spec{Kind: kind, Agg: agg, Dims: []int{6, 5, 4}, Seed: 11})
		}
	}
	return specs
}

// naiveForward recomputes embeddings with the simplest possible serial
// reference implementation, independent of the production code paths.
func naiveForward(g *graph.Graph, m *Model, x []tensor.Vector) [][]tensor.Vector {
	n := g.NumVertices()
	h := make([][]tensor.Vector, m.L()+1)
	h[0] = make([]tensor.Vector, n)
	for u := 0; u < n; u++ {
		h[0][u] = x[u].Clone()
	}
	s := NewScratch(m.MaxDim())
	for l := 1; l <= m.L(); l++ {
		layer := m.Layers[l-1]
		h[l] = make([]tensor.Vector, n)
		for u := 0; u < n; u++ {
			uid := graph.VertexID(u)
			agg := tensor.NewVector(layer.In)
			for _, in := range g.In(uid) {
				agg.AXPY(Coeff(m.Agg, in.Weight), h[l-1][in.Peer])
			}
			dst := tensor.NewVector(layer.Out)
			layer.UpdateInto(dst, h[l-1][u], agg, g.InDegree(uid), s)
			h[l][u] = dst
		}
	}
	return h
}

func TestForwardMatchesNaiveReference(t *testing.T) {
	g := randomGraph(t, 60, 300, 3)
	x := randomFeatures(60, 6, 4)
	for _, spec := range allSpecs() {
		m, err := NewModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Forward(g, m, x)
		if err != nil {
			t.Fatalf("%v: Forward: %v", m, err)
		}
		ref := naiveForward(g, m, x)
		for l := 0; l <= m.L(); l++ {
			for u := 0; u < 60; u++ {
				if d := e.H[l][u].MaxAbsDiff(ref[l][u]); d > 1e-4 {
					t.Fatalf("%v: H[%d][%d] diff %v", m, l, u, d)
				}
			}
		}
	}
}

func TestForwardPaperFigure3Shape(t *testing.T) {
	// The 6-vertex graph of Fig. 3 (edges oriented toward the aggregating
	// vertex). A 2-layer sum GNN with identity weights reproduces the
	// hand-computable aggregation cascade.
	//
	// Vertices: A=0 B=1 C=2 D=3 E=4 F=5.
	g := graph.New(6)
	edges := [][2]graph.VertexID{
		{1, 0}, {2, 0}, {3, 0}, // B,C,D → A
		{0, 1},         // A → B
		{0, 3}, {2, 3}, // A,C → D
		{5, 2}, // F → C
		{2, 4}, // C → E
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	// Identity-weight 1-dim GC-S: h^l_u = Σ_{v∈In(u)} h^{l-1}_v.
	m := identitySumModel(2)
	x := []tensor.Vector{{1}, {2}, {3}, {4}, {5}, {6}}
	e, err := Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	// h1: A=2+3+4=9, B=1, C=6, D=1+3=4, E=3, F=0
	wantH1 := []float32{9, 1, 6, 4, 3, 0}
	for u, want := range wantH1 {
		if got := e.H[1][u][0]; got != want {
			t.Errorf("h1[%d] = %v, want %v", u, got, want)
		}
	}
	// h2: A=1+6+4=11, B=9, C=0, D=9+6=15, E=6, F=0
	wantH2 := []float32{11, 9, 0, 15, 6, 0}
	for u, want := range wantH2 {
		if got := e.H[2][u][0]; got != want {
			t.Errorf("h2[%d] = %v, want %v", u, got, want)
		}
	}
}

// identitySumModel builds an L-layer 1-dim GraphConv/sum model whose Update
// is the identity, so embeddings equal pure neighbourhood sums —
// hand-checkable against the paper's figures.
func identitySumModel(layers int) *Model {
	dims := make([]int, layers+1)
	for i := range dims {
		dims[i] = 1
	}
	m := &Model{Kind: GraphConv, Agg: AggSum, Dims: dims}
	for l := 0; l < layers; l++ {
		m.Layers = append(m.Layers, &Layer{
			Kind: GraphConv, Agg: AggSum, Act: tensor.ActIdentity,
			In: 1, Out: 1,
			WNeigh: tensor.NewMatrixFrom(1, 1, []float32{1}),
			B:      tensor.NewVector(1),
		})
	}
	return m
}

func TestForwardValidation(t *testing.T) {
	g := graph.New(3)
	m, err := NewModel(Spec{Kind: GraphConv, Agg: AggSum, Dims: []int{4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Forward(g, m, make([]tensor.Vector, 2)); err == nil {
		t.Error("expected error for wrong feature row count")
	}
	x := []tensor.Vector{tensor.NewVector(4), tensor.NewVector(3), tensor.NewVector(4)}
	if _, err := Forward(g, m, x); err == nil {
		t.Error("expected error for wrong feature width")
	}
}

func TestVertexWiseMatchesLayerWise(t *testing.T) {
	g := randomGraph(t, 40, 160, 7)
	x := randomFeatures(40, 6, 8)
	for _, spec := range allSpecs() {
		m, err := NewModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Forward(g, m, x)
		if err != nil {
			t.Fatal(err)
		}
		for u := graph.VertexID(0); u < 40; u++ {
			got := InferVertex(g, m, x, u)
			if d := got.MaxAbsDiff(e.H[m.L()][u]); d > 1e-4 {
				t.Fatalf("%v: vertex-wise h[%d] differs from layer-wise by %v", m, u, d)
			}
		}
	}
}

func TestSampledInferenceConvergesToExact(t *testing.T) {
	g := randomGraph(t, 50, 400, 9)
	x := randomFeatures(50, 6, 10)
	m, err := NewWorkload("GS-S", []int{6, 8, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	// Fanout larger than any in-degree must be exact.
	rng := rand.New(rand.NewSource(5))
	for u := graph.VertexID(0); u < 50; u++ {
		got := InferVertexSampled(g, m, x, u, 64, rng)
		if d := got.MaxAbsDiff(e.H[m.L()][u]); d > 1e-4 {
			t.Fatalf("fanout>=deg sampled differs at %d by %v", u, d)
		}
	}
	// Agreement (accuracy proxy) should not decrease with fanout, within
	// sampling noise: check fanout 2 <= fanout 16 + slack.
	agree := func(fanout int) float64 {
		rng := rand.New(rand.NewSource(77))
		hits := 0
		for u := graph.VertexID(0); u < 50; u++ {
			if InferVertexSampled(g, m, x, u, fanout, rng).ArgMax() == e.Label(int32(u)) {
				hits++
			}
		}
		return float64(hits) / 50
	}
	lo, hi := agree(2), agree(16)
	if hi < lo-0.15 {
		t.Errorf("agreement fell sharply with larger fanout: f2=%v f16=%v", lo, hi)
	}
}

func TestEmbeddingsCloneAndDiff(t *testing.T) {
	g := randomGraph(t, 10, 30, 1)
	x := randomFeatures(10, 6, 2)
	m, err := NewModel(Spec{Kind: GraphSAGE, Agg: AggSum, Dims: []int{6, 4, 3}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	if e.MaxAbsDiff(c) != 0 {
		t.Error("clone differs from original")
	}
	c.H[1][0][0] += 5
	if e.MaxAbsDiff(c) != 5 {
		t.Errorf("MaxAbsDiff = %v, want 5", e.MaxAbsDiff(c))
	}
	if e.H[1][0][0] == c.H[1][0][0] {
		t.Error("clone shares storage")
	}
	if e.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}

func TestEmbeddingsLabel(t *testing.T) {
	e := NewEmbeddings(2, []int{3, 4})
	e.H[1][0].CopyFrom(tensor.Vector{0, 5, 2, 1})
	e.H[1][1].CopyFrom(tensor.Vector{9, 0, 0, 0})
	if e.Label(0) != 1 || e.Label(1) != 0 {
		t.Error("Label argmax wrong")
	}
}
