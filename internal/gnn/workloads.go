package gnn

import "fmt"

// WorkloadNames lists the five representative model/aggregator pairings the
// paper evaluates (§7.1.1), in the order its figures present them.
var WorkloadNames = []string{"GC-S", "GS-S", "GC-M", "GI-S", "GC-W"}

// WorkloadSpec returns the model spec for one of the paper's named
// workloads: GraphConv+Sum (GC-S), GraphSAGE+Sum (GS-S), GraphConv+Mean
// (GC-M), GINConv+Sum (GI-S) and GraphConv+WeightedSum (GC-W).
func WorkloadSpec(name string, dims []int, seed int64) (Spec, error) {
	spec := Spec{Dims: dims, Seed: seed}
	switch name {
	case "GC-S":
		spec.Kind, spec.Agg = GraphConv, AggSum
	case "GS-S":
		spec.Kind, spec.Agg = GraphSAGE, AggSum
	case "GC-M":
		spec.Kind, spec.Agg = GraphConv, AggMean
	case "GI-S":
		spec.Kind, spec.Agg = GINConv, AggSum
	case "GC-W":
		spec.Kind, spec.Agg = GraphConv, AggWeighted
	default:
		return Spec{}, fmt.Errorf("gnn: unknown workload %q (want one of %v)", name, WorkloadNames)
	}
	return spec, nil
}

// NewWorkload builds the named workload model directly.
func NewWorkload(name string, dims []int, seed int64) (*Model, error) {
	spec, err := WorkloadSpec(name, dims, seed)
	if err != nil {
		return nil, err
	}
	return NewModel(spec)
}
