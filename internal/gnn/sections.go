package gnn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"

	"ripple/internal/par"
)

// Sectioned embedding codec: the embedding tables (every layer's H rows plus
// the A aggregates for l ≥ 1) are split into contiguous vertex-row ranges —
// sections — behind a small index of per-section CRCs. A worker pool encodes
// or decodes sections concurrently; because section boundaries are a pure
// function of N and sections land at fixed offsets, the encoded bytes are
// identical at any parallelism. This is the checkpoint fast path: the legacy
// per-vector binary.Write/Read loops remain in the v1 formats as the serial
// baseline.
//
// Block layout (all integers little-endian):
//
//	u32 sectionCount
//	sectionCount × u32 CRC32-IEEE over that section's row bytes
//	row bytes, section 0 .. section S-1 concatenated
//
// A row is vertex v's state in layer order: H[0][v] .. H[L][v], then
// A[1][v] .. A[L][v], each float32 LE. Row width is fixed by Dims, so every
// offset is computable without reading the payload.

// Section sizing: each section targets ~sectionByteBudget of row payload,
// so CRC granularity and per-worker chunks stay roughly constant in bytes
// whether rows are 40 bytes (a small conf model) or 4 KiB (a wide one) —
// a static row-count rule makes sections balloon with row width, starving
// encode parallelism exactly when checkpoints are largest. The clamps:
// minSections keeps small states on the multi-section path (so tests
// exercise it), sectionRowQuantum keeps sections at least 16 rows (a
// 1-row state does not split), and maxSections bounds the index.
const (
	sectionRowQuantum = 16
	sectionByteBudget = 256 << 10
	minSections       = 4
	maxSections       = 1024
)

// NumSections returns the section count used for n vertex rows of rowBytes
// encoded bytes each. It depends only on (n, rowBytes), never on
// GOMAXPROCS, so encoded bytes are machine-independent.
func NumSections(n, rowBytes int) int {
	if n <= 0 {
		return 1
	}
	if rowBytes < 4 {
		rowBytes = 4 // defensive: a row is at least one float32
	}
	s := (n*rowBytes + sectionByteBudget - 1) / sectionByteBudget
	if s < minSections {
		s = minSections
	}
	if q := (n + sectionRowQuantum - 1) / sectionRowQuantum; s > q {
		s = q
	}
	if s > maxSections {
		s = maxSections
	}
	return s
}

// RowBytes returns the encoded size of one vertex row for the given dims.
func RowBytes(dims []int) int {
	total := 0
	for l, d := range dims {
		total += d
		if l > 0 {
			total += dims[l-1] // A^l has the width of layer l-1
		}
	}
	return total * 4
}

// SectionedSize returns the exact encoded size of the sectioned block for n
// rows of the given dims.
func SectionedSize(n int, dims []int) int {
	rowB := RowBytes(dims)
	return 4 + 4*NumSections(n, rowB) + n*rowB
}

// AppendSectioned appends the sectioned encoding of e to dst and returns the
// extended slice. Sections are filled in place by a worker pool; the output
// is byte-identical regardless of worker count.
func (e *Embeddings) AppendSectioned(dst []byte) []byte {
	n, dims := e.N, e.Dims
	rowB := RowBytes(dims)
	S := NumSections(n, rowB)
	base := len(dst)
	dst = append(dst, make([]byte, SectionedSize(n, dims))...)
	b := dst[base:]
	binary.LittleEndian.PutUint32(b, uint32(S))
	index := b[4 : 4+4*S]
	payload := b[4+4*S:]
	chunk := (n + S - 1) / S
	par.ForShardsN(S, runtime.GOMAXPROCS(0), func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			lo := s * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo > hi {
				lo = hi
			}
			out := payload[lo*rowB : hi*rowB]
			off := 0
			for v := lo; v < hi; v++ {
				off = e.putRow(out, off, v)
			}
			binary.LittleEndian.PutUint32(index[4*s:], crc32.ChecksumIEEE(out))
		}
	})
	return dst
}

// putRow encodes vertex v's row at out[off:] and returns the new offset.
func (e *Embeddings) putRow(out []byte, off, v int) int {
	for l := range e.Dims {
		for _, x := range e.H[l][v] {
			binary.LittleEndian.PutUint32(out[off:], math.Float32bits(x))
			off += 4
		}
		if l > 0 {
			for _, x := range e.A[l][v] {
				binary.LittleEndian.PutUint32(out[off:], math.Float32bits(x))
				off += 4
			}
		}
	}
	return off
}

// getRow decodes vertex v's row from in[off:] into e and returns the new
// offset. Rows are disjoint, so concurrent calls for different v are safe.
func (e *Embeddings) getRow(in []byte, off, v int) int {
	for l := range e.Dims {
		row := e.H[l][v]
		for i := range row {
			row[i] = math.Float32frombits(binary.LittleEndian.Uint32(in[off:]))
			off += 4
		}
		if l > 0 {
			row = e.A[l][v]
			for i := range row {
				row[i] = math.Float32frombits(binary.LittleEndian.Uint32(in[off:]))
				off += 4
			}
		}
	}
	return off
}

// AppendRow appends vertex v's row (H for every layer, then A for l ≥ 1) to
// dst in the sectioned row encoding. Delta checkpoints use this to persist
// individual dirty rows with the exact same byte layout as full sections.
func (e *Embeddings) AppendRow(dst []byte, v int) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, RowBytes(e.Dims))...)
	e.putRow(dst[base:], 0, v)
	return dst
}

// DecodeRow reads one row for vertex v from b in place and returns the
// remaining bytes.
func (e *Embeddings) DecodeRow(b []byte, v int) ([]byte, error) {
	rb := RowBytes(e.Dims)
	if len(b) < rb {
		return nil, fmt.Errorf("gnn: row for vertex %d truncated: %d bytes, need %d", v, len(b), rb)
	}
	e.getRow(b[:rb], 0, v)
	return b[rb:], nil
}

// DecodeSectioned parses a sectioned block for n rows of dims from b,
// verifying every section CRC, and returns the decoded embeddings plus the
// remaining bytes. Sections decode concurrently into disjoint row ranges of
// one freshly allocated Embeddings, so the result is deterministic.
func DecodeSectioned(b []byte, n int, dims []int) (*Embeddings, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("gnn: sectioned block truncated in header")
	}
	S := int(binary.LittleEndian.Uint32(b))
	rowB := RowBytes(dims)
	if S < 1 || S > maxSections || S != NumSections(n, rowB) {
		return nil, nil, fmt.Errorf("gnn: sectioned block has %d sections, want %d", S, NumSections(n, rowB))
	}
	total := 4 + 4*S + n*rowB
	if len(b) < total {
		return nil, nil, fmt.Errorf("gnn: sectioned block truncated: %d bytes, need %d", len(b), total)
	}
	index := b[4 : 4+4*S]
	payload := b[4+4*S : total]
	e := NewEmbeddings(n, dims)
	chunk := (n + S - 1) / S
	errs := make([]error, S)
	par.ForShardsN(S, runtime.GOMAXPROCS(0), func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			lo := s * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo > hi {
				lo = hi
			}
			in := payload[lo*rowB : hi*rowB]
			if got, want := crc32.ChecksumIEEE(in), binary.LittleEndian.Uint32(index[4*s:]); got != want {
				errs[s] = fmt.Errorf("gnn: section %d CRC mismatch: %08x, want %08x", s, got, want)
				continue
			}
			off := 0
			for v := lo; v < hi; v++ {
				off = e.getRow(in, off, v)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return e, b[total:], nil
}
