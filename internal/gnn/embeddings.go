package gnn

import (
	"fmt"

	"ripple/internal/tensor"
)

// Embeddings holds the per-vertex state of layer-wise inference: the
// embeddings h^l for l ∈ [0..L] and the raw aggregates A^l for l ∈ [1..L].
//
// Storing A (the un-normalised Σ α·h over in-neighbours) alongside h is the
// core state design from the paper's incremental model: folding a delta
// message into A costs O(1) vector ops instead of re-aggregating all k
// in-neighbours, and mean stays exact because normalisation by the live
// in-degree happens at Update time.
type Embeddings struct {
	N    int
	Dims []int             // [featDim, hidden..., classes]
	H    [][]tensor.Vector // H[l][u], l ∈ [0..L]
	A    [][]tensor.Vector // A[l][u], l ∈ [1..L]; A[0] is nil
}

// NewEmbeddings allocates zeroed embedding storage for n vertices. Each
// layer's vectors share one contiguous backing array for cache locality.
func NewEmbeddings(n int, dims []int) *Embeddings {
	if len(dims) < 2 {
		panic(fmt.Sprintf("gnn: NewEmbeddings needs >=2 dims, got %v", dims))
	}
	e := &Embeddings{
		N:    n,
		Dims: append([]int(nil), dims...),
		H:    make([][]tensor.Vector, len(dims)),
		A:    make([][]tensor.Vector, len(dims)),
	}
	for l, d := range dims {
		e.H[l] = sliceStore(n, d)
		if l > 0 {
			// A^l aggregates layer-(l-1) embeddings, so it has their width.
			e.A[l] = sliceStore(n, dims[l-1])
		}
	}
	return e
}

// sliceStore returns n vectors of width d carved out of one backing array.
func sliceStore(n, d int) []tensor.Vector {
	backing := make([]float32, n*d)
	vecs := make([]tensor.Vector, n)
	for i := 0; i < n; i++ {
		vecs[i] = backing[i*d : (i+1)*d : (i+1)*d]
	}
	return vecs
}

// L returns the number of GNN layers.
func (e *Embeddings) L() int { return len(e.Dims) - 1 }

// Grow appends zeroed embedding/aggregate rows for one new vertex and
// returns its index (vertex-addition support, the paper's §8 extension).
func (e *Embeddings) Grow() int {
	for l, d := range e.Dims {
		e.H[l] = append(e.H[l], tensor.NewVector(d))
		if l > 0 {
			e.A[l] = append(e.A[l], tensor.NewVector(e.Dims[l-1]))
		}
	}
	e.N++
	return e.N - 1
}

// Label returns the predicted class of vertex u: argmax of its final-layer
// embedding.
func (e *Embeddings) Label(u int32) int { return e.H[e.L()][u].ArgMax() }

// Clone returns a deep copy of the embedding state.
func (e *Embeddings) Clone() *Embeddings {
	c := NewEmbeddings(e.N, e.Dims)
	for l := range e.H {
		for u := 0; u < e.N; u++ {
			c.H[l][u].CopyFrom(e.H[l][u])
			if l > 0 {
				c.A[l][u].CopyFrom(e.A[l][u])
			}
		}
	}
	return c
}

// MaxAbsDiff returns the largest absolute difference across all embeddings
// (all layers, all vertices) between e and o. Used to assert equivalence of
// inference strategies.
func (e *Embeddings) MaxAbsDiff(o *Embeddings) float32 {
	var m float32
	for l := range e.H {
		for u := 0; u < e.N; u++ {
			if d := e.H[l][u].MaxAbsDiff(o.H[l][u]); d > m {
				m = d
			}
		}
	}
	return m
}

// MemoryBytes estimates the resident size of the embedding state, the
// quantity that drives the paper's single-machine-vs-distributed decision
// (Papers needs ≈500 GiB).
func (e *Embeddings) MemoryBytes() int64 {
	var total int64
	for l, d := range e.Dims {
		total += int64(e.N) * int64(d) * 4 // H
		if l > 0 {
			total += int64(e.N) * int64(d) * 4 // A
		}
	}
	return total
}
