package gnn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"ripple/internal/tensor"
)

// randomEmbeddings fills every H and A table with seeded values,
// including negative zero and denormals, so byte-level comparisons catch
// encodings that normalise float bits.
func randomEmbeddings(n int, dims []int, seed int64) *Embeddings {
	rng := rand.New(rand.NewSource(seed))
	e := NewEmbeddings(n, dims)
	fill := func(rows []tensor.Vector) {
		for _, row := range rows {
			for i := range row {
				switch rng.Intn(20) {
				case 0:
					row[i] = float32(math.Copysign(0, -1)) // -0: value-equal to +0, different bits
				case 1:
					row[i] = math.Float32frombits(1) // smallest denormal
				default:
					row[i] = rng.Float32()*2 - 1
				}
			}
		}
	}
	for l := range e.H {
		fill(e.H[l])
		if l > 0 {
			fill(e.A[l])
		}
	}
	return e
}

func TestSectionedRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 16, 17, 100, 1500} {
		dims := []int{5, 6, 4}
		e := randomEmbeddings(n, dims, int64(1000+n))
		enc := e.AppendSectioned(nil)
		if got, want := len(enc), SectionedSize(n, dims); got != want {
			t.Fatalf("n=%d: encoded %d bytes, SectionedSize says %d", n, got, want)
		}
		dec, rest, err := DecodeSectioned(enc, n, dims)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d trailing bytes", n, len(rest))
		}
		for l := range e.H {
			for v := 0; v < n; v++ {
				for i, x := range e.H[l][v] {
					if math.Float32bits(dec.H[l][v][i]) != math.Float32bits(x) {
						t.Fatalf("n=%d: H[%d][%d][%d] not bit-identical", n, l, v, i)
					}
				}
				if l > 0 {
					for i, x := range e.A[l][v] {
						if math.Float32bits(dec.A[l][v][i]) != math.Float32bits(x) {
							t.Fatalf("n=%d: A[%d][%d][%d] not bit-identical", n, l, v, i)
						}
					}
				}
			}
		}
	}
}

// TestSectionedDeterministicAcrossParallelism pins the format contract
// the checkpoint layer depends on: the encoded bytes are a function of
// the state alone, never of the worker count that encoded them.
func TestSectionedDeterministicAcrossParallelism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	// Two row widths: the narrow one sits on the minSections floor, the
	// wide one is sized by the byte budget — the contract must hold on
	// both sides of the sizing rule.
	for _, dims := range [][]int{{8, 12, 6}, {128, 256, 40}} {
		e := randomEmbeddings(700, dims, 2024)
		var first []byte
		for _, workers := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(workers)
			enc := e.AppendSectioned(nil)
			if first == nil {
				first = enc
				continue
			}
			if len(enc) != len(first) {
				t.Fatalf("dims=%v GOMAXPROCS=%d: %d bytes, want %d", dims, workers, len(enc), len(first))
			}
			for i := range enc {
				if enc[i] != first[i] {
					t.Fatalf("dims=%v GOMAXPROCS=%d: byte %d differs — encoding depends on parallelism", dims, workers, i)
				}
			}
		}
	}
}

func TestSectionedRejectsCorruption(t *testing.T) {
	n, dims := 200, []int{5, 6, 4}
	e := randomEmbeddings(n, dims, 7)
	enc := e.AppendSectioned(nil)

	if _, _, err := DecodeSectioned(enc[:3], n, dims); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := DecodeSectioned(enc[:len(enc)/2], n, dims); err == nil {
		t.Error("truncated body accepted")
	}
	if _, _, err := DecodeSectioned(enc, n+1, dims); err == nil {
		t.Error("wrong row count accepted")
	}
	// Flip one payload byte in each section-sized stride: every flip must
	// be caught by that section's CRC.
	for _, off := range []int{4 + 4*NumSections(n, RowBytes(dims)), len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, _, err := DecodeSectioned(bad, n, dims); err == nil {
			t.Errorf("flipped byte %d accepted", off)
		}
	}
}

func TestNumSections(t *testing.T) {
	const smallRow = 104 // RowBytes([]int{5, 6, 4})
	for _, tt := range []struct{ n, rowBytes, want int }{
		// Tiny states: the 16-row quantum wins, down to a single section.
		{0, smallRow, 1}, {1, smallRow, 1}, {16, smallRow, 1}, {17, smallRow, 2}, {48, smallRow, 3},
		// Small states: the minSections floor keeps the multi-section path hot.
		{160, smallRow, 4}, {10_000, smallRow, 4},
		// Large states: count tracks total bytes at ~256 KiB per section,
		// so wider rows mean more sections for the same row count.
		{100_000, smallRow, 40},
		{100_000, 10 * smallRow, 397},
		// Huge states cap at maxSections.
		{1 << 24, 4096, maxSections},
	} {
		if got := NumSections(tt.n, tt.rowBytes); got != tt.want {
			t.Errorf("NumSections(%d, %d) = %d, want %d", tt.n, tt.rowBytes, got, tt.want)
		}
	}
	// Per-section payload stays near the budget once past the clamps.
	n, rowBytes := 500_000, 256
	s := NumSections(n, rowBytes)
	perSection := n * rowBytes / s
	if perSection < sectionByteBudget/2 || perSection > 2*sectionByteBudget {
		t.Errorf("per-section payload %d bytes, want within 2x of budget %d (S=%d)", perSection, sectionByteBudget, s)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	n, dims := 30, []int{4, 5, 3}
	src := randomEmbeddings(n, dims, 11)
	dst := NewEmbeddings(n, dims)
	for _, v := range []int{0, 7, 29} {
		row := src.AppendRow(nil, v)
		if len(row) != RowBytes(dims) {
			t.Fatalf("row is %d bytes, RowBytes says %d", len(row), RowBytes(dims))
		}
		rest, err := dst.DecodeRow(row, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		for l := range src.H {
			for i := range src.H[l][v] {
				if math.Float32bits(dst.H[l][v][i]) != math.Float32bits(src.H[l][v][i]) {
					t.Fatalf("H[%d][%d][%d] not bit-identical", l, v, i)
				}
			}
		}
	}
	if _, err := dst.DecodeRow(make([]byte, RowBytes(dims)-1), 0); err == nil {
		t.Error("short row accepted")
	}
}
