package gnn

import (
	"math/rand"
	"testing"

	"ripple/internal/tensor"
)

func TestNewModelValidation(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{"valid GC", Spec{Kind: GraphConv, Agg: AggSum, Dims: []int{4, 3, 2}}, false},
		{"valid SAGE", Spec{Kind: GraphSAGE, Agg: AggMean, Dims: []int{4, 2}}, false},
		{"valid GIN", Spec{Kind: GINConv, Agg: AggSum, Dims: []int{4, 8, 8, 2}}, false},
		{"too few dims", Spec{Kind: GraphConv, Agg: AggSum, Dims: []int{4}}, true},
		{"zero dim", Spec{Kind: GraphConv, Agg: AggSum, Dims: []int{4, 0, 2}}, true},
		{"bad kind", Spec{Kind: ModelKind(99), Agg: AggSum, Dims: []int{4, 2}}, true},
		{"bad agg", Spec{Kind: GraphConv, Agg: Aggregator(99), Dims: []int{4, 2}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewModel(tt.spec)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewModel err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && m.L() != len(tt.spec.Dims)-1 {
				t.Errorf("L = %d, want %d", m.L(), len(tt.spec.Dims)-1)
			}
		})
	}
}

func TestModelDeterministicWeights(t *testing.T) {
	spec := Spec{Kind: GraphSAGE, Agg: AggSum, Dims: []int{8, 16, 4}, Seed: 42}
	m1, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	for l := range m1.Layers {
		if !m1.Layers[l].WNeigh.EqualWithin(m2.Layers[l].WNeigh, 0) {
			t.Fatalf("layer %d WNeigh differs across identical seeds", l)
		}
		if !m1.Layers[l].WSelf.EqualWithin(m2.Layers[l].WSelf, 0) {
			t.Fatalf("layer %d WSelf differs across identical seeds", l)
		}
	}
	spec.Seed = 43
	m3, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Layers[0].WNeigh.EqualWithin(m3.Layers[0].WNeigh, 0) {
		t.Error("different seeds produced identical weights")
	}
}

func TestLayerActivationsAcrossDepth(t *testing.T) {
	m, err := NewModel(Spec{Kind: GraphConv, Agg: AggSum, Dims: []int{4, 8, 8, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < m.L()-1; l++ {
		if m.Layers[l].Act != tensor.ActReLU {
			t.Errorf("hidden layer %d activation = %v, want relu", l, m.Layers[l].Act)
		}
	}
	if m.Layers[m.L()-1].Act != tensor.ActIdentity {
		t.Error("final layer should be linear")
	}
}

func TestSelfDependence(t *testing.T) {
	if GraphConv.SelfDependent() {
		t.Error("GraphConv must not be self-dependent")
	}
	if !GraphSAGE.SelfDependent() || !GINConv.SelfDependent() {
		t.Error("GraphSAGE and GINConv must be self-dependent")
	}
}

// UpdateInto against hand-computed references for each architecture.
func TestUpdateIntoGraphConv(t *testing.T) {
	l := &Layer{
		Kind: GraphConv, Agg: AggSum, Act: tensor.ActIdentity,
		In: 2, Out: 2,
		WNeigh: tensor.NewMatrixFrom(2, 2, []float32{1, 0, 0, 2}),
		B:      tensor.Vector{1, 1},
	}
	s := NewScratch(2)
	dst := tensor.NewVector(2)
	l.UpdateInto(dst, tensor.Vector{99, 99} /* ignored */, tensor.Vector{3, 4}, 5, s)
	if !dst.EqualWithin(tensor.Vector{4, 9}, 1e-6) {
		t.Errorf("GraphConv UpdateInto = %v, want [4 9]", dst)
	}
}

func TestUpdateIntoGraphConvMean(t *testing.T) {
	l := &Layer{
		Kind: GraphConv, Agg: AggMean, Act: tensor.ActIdentity,
		In: 2, Out: 2,
		WNeigh: tensor.NewMatrixFrom(2, 2, []float32{1, 0, 0, 1}),
		B:      tensor.Vector{0, 0},
	}
	s := NewScratch(2)
	dst := tensor.NewVector(2)
	l.UpdateInto(dst, nil, tensor.Vector{8, 4}, 4, s)
	if !dst.EqualWithin(tensor.Vector{2, 1}, 1e-6) {
		t.Errorf("mean UpdateInto = %v, want [2 1]", dst)
	}
	// Zero in-degree: aggregate contributes nothing (no division by zero).
	l.UpdateInto(dst, nil, tensor.Vector{8, 4}, 0, s)
	if !dst.EqualWithin(tensor.Vector{0, 0}, 1e-6) {
		t.Errorf("mean deg-0 UpdateInto = %v, want zeros", dst)
	}
}

func TestUpdateIntoGraphSAGE(t *testing.T) {
	l := &Layer{
		Kind: GraphSAGE, Agg: AggSum, Act: tensor.ActReLU,
		In: 2, Out: 2,
		WSelf:  tensor.NewMatrixFrom(2, 2, []float32{1, 0, 0, 1}),
		WNeigh: tensor.NewMatrixFrom(2, 2, []float32{2, 0, 0, 2}),
		B:      tensor.Vector{0, -100},
	}
	s := NewScratch(2)
	dst := tensor.NewVector(2)
	l.UpdateInto(dst, tensor.Vector{1, 1}, tensor.Vector{2, 3}, 2, s)
	// pre-act: [1+4, 1+6-100] = [5, -93]; ReLU → [5, 0]
	if !dst.EqualWithin(tensor.Vector{5, 0}, 1e-6) {
		t.Errorf("SAGE UpdateInto = %v, want [5 0]", dst)
	}
}

func TestUpdateIntoGINConv(t *testing.T) {
	l := &Layer{
		Kind: GINConv, Agg: AggSum, Act: tensor.ActIdentity,
		In: 2, Out: 2, Eps: 0.5,
		W1: tensor.NewMatrixFrom(2, 2, []float32{1, 0, 0, -1}),
		B1: tensor.Vector{0, 0},
		W2: tensor.NewMatrixFrom(2, 2, []float32{1, 1, 0, 1}),
		B2: tensor.Vector{10, 20},
	}
	s := NewScratch(2)
	dst := tensor.NewVector(2)
	// z = 1.5*[2,2] + [1,-1] = [4,2]; W1z = [4,-2]; relu → [4,0];
	// W2·[4,0] = [4,0]; +B2 = [14,20]
	l.UpdateInto(dst, tensor.Vector{2, 2}, tensor.Vector{1, -1}, 1, s)
	if !dst.EqualWithin(tensor.Vector{14, 20}, 1e-5) {
		t.Errorf("GIN UpdateInto = %v, want [14 20]", dst)
	}
}

func TestWorkloadSpecs(t *testing.T) {
	wantKind := map[string]ModelKind{
		"GC-S": GraphConv, "GS-S": GraphSAGE, "GC-M": GraphConv,
		"GI-S": GINConv, "GC-W": GraphConv,
	}
	wantAgg := map[string]Aggregator{
		"GC-S": AggSum, "GS-S": AggSum, "GC-M": AggMean,
		"GI-S": AggSum, "GC-W": AggWeighted,
	}
	for _, name := range WorkloadNames {
		m, err := NewWorkload(name, []int{8, 4, 3}, 1)
		if err != nil {
			t.Fatalf("NewWorkload(%s): %v", name, err)
		}
		if m.Kind != wantKind[name] || m.Agg != wantAgg[name] {
			t.Errorf("%s = %v/%v, want %v/%v", name, m.Kind, m.Agg, wantKind[name], wantAgg[name])
		}
	}
	if _, err := NewWorkload("bogus", []int{8, 4}, 1); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestCoeff(t *testing.T) {
	if Coeff(AggSum, 7) != 1 || Coeff(AggMean, 7) != 1 {
		t.Error("sum/mean coefficient must be 1 regardless of edge weight")
	}
	if Coeff(AggWeighted, 7) != 7 {
		t.Error("weighted coefficient must be the edge weight")
	}
}

func TestModelStringAndMaxDim(t *testing.T) {
	m, err := NewModel(Spec{Kind: GraphConv, Agg: AggSum, Dims: []int{128, 64, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxDim() != 128 {
		t.Errorf("MaxDim = %d", m.MaxDim())
	}
	if got := m.String(); got != "GraphConv-sum-2L[128 64 40]" {
		t.Errorf("String = %q", got)
	}
}

func TestAggregatorModelKindStrings(t *testing.T) {
	if AggSum.String() != "sum" || AggMean.String() != "mean" || AggWeighted.String() != "weighted" {
		t.Error("aggregator names wrong")
	}
	if GraphConv.String() != "GraphConv" || GraphSAGE.String() != "GraphSAGE" || GINConv.String() != "GINConv" {
		t.Error("model kind names wrong")
	}
}

func TestSampleEdgesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	list := makeEdgeList(20)
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(20)
		got := sampleEdges(list, k, rng)
		if len(got) != k {
			t.Fatalf("sampled %d, want %d", len(got), k)
		}
		seen := map[int32]bool{}
		for _, e := range got {
			if seen[e.Peer] {
				t.Fatalf("duplicate peer %d in sample", e.Peer)
			}
			seen[e.Peer] = true
		}
	}
}
