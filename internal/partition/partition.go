// Package partition provides the graph partitioners used to place vertices
// on workers for distributed inference (§5.1). The paper uses METIS, which
// is unavailable here; the Multilevel partitioner reimplements the same
// algorithm family from scratch — heavy-edge-matching coarsening, greedy
// region-growing initial partitioning, and boundary refinement — targeting
// the same objective: balanced vertex counts with minimised edge cut.
// Hash and LDG (linear deterministic greedy) streaming partitioners are
// included as baselines/ablations.
package partition

import (
	"fmt"

	"ripple/internal/graph"
)

// Assignment maps every vertex to one of K partitions.
type Assignment struct {
	K    int
	Part []int32 // Part[u] ∈ [0, K)
}

// Of returns the partition that owns u.
func (a *Assignment) Of(u graph.VertexID) int32 { return a.Part[u] }

// Sizes returns per-partition vertex counts.
func (a *Assignment) Sizes() []int {
	sizes := make([]int, a.K)
	for _, p := range a.Part {
		sizes[p]++
	}
	return sizes
}

// Validate checks structural sanity of the assignment.
func (a *Assignment) Validate(n int) error {
	if a.K <= 0 {
		return fmt.Errorf("partition: K = %d", a.K)
	}
	if len(a.Part) != n {
		return fmt.Errorf("partition: assignment covers %d of %d vertices", len(a.Part), n)
	}
	for u, p := range a.Part {
		if p < 0 || int(p) >= a.K {
			return fmt.Errorf("partition: vertex %d assigned to invalid partition %d", u, p)
		}
	}
	return nil
}

// Quality summarises an assignment: the edge cut drives halo communication
// volume, the imbalance drives the slowest worker's load.
type Quality struct {
	EdgeCut     int64   // directed edges whose endpoints differ in partition
	CutFraction float64 // EdgeCut / |E|
	Imbalance   float64 // max partition size ÷ ideal size (1.0 = perfect)
}

// Evaluate measures the quality of an assignment over g.
func Evaluate(g *graph.Graph, a *Assignment) Quality {
	var cut int64
	g.ForEachEdge(func(u, v graph.VertexID, w float32) {
		if a.Part[u] != a.Part[v] {
			cut++
		}
	})
	q := Quality{EdgeCut: cut}
	if m := g.NumEdges(); m > 0 {
		q.CutFraction = float64(cut) / float64(m)
	}
	sizes := a.Sizes()
	ideal := float64(g.NumVertices()) / float64(a.K)
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if ideal > 0 {
		q.Imbalance = float64(maxSize) / ideal
	}
	return q
}

// Hash assigns vertices round-robin by id: perfectly balanced, oblivious
// to topology (the worst-case communication baseline).
func Hash(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	a := &Assignment{K: k, Part: make([]int32, g.NumVertices())}
	for u := range a.Part {
		a.Part[u] = int32(u % k)
	}
	return a, nil
}

// LDG is the linear deterministic greedy streaming partitioner
// (Stanton & Kliot): each vertex goes to the partition holding most of its
// already-placed neighbours, damped by a capacity penalty.
func LDG(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	a := &Assignment{K: k, Part: make([]int32, n)}
	for u := range a.Part {
		a.Part[u] = -1
	}
	capacity := float64(n)/float64(k)*1.05 + 1
	sizes := make([]float64, k)
	neigh := make([]float64, k)
	for u := 0; u < n; u++ {
		for i := range neigh {
			neigh[i] = 0
		}
		uid := graph.VertexID(u)
		for _, e := range g.Out(uid) {
			if p := a.Part[e.Peer]; p >= 0 {
				neigh[p]++
			}
		}
		for _, e := range g.In(uid) {
			if p := a.Part[e.Peer]; p >= 0 {
				neigh[p]++
			}
		}
		best, bestScore := 0, -1.0
		for p := 0; p < k; p++ {
			if sizes[p] >= capacity {
				continue
			}
			score := (neigh[p] + 1) * (1 - sizes[p]/capacity)
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		a.Part[u] = int32(best)
		sizes[best]++
	}
	return a, nil
}

func checkK(g *graph.Graph, k int) error {
	if k <= 0 {
		return fmt.Errorf("partition: k = %d must be positive", k)
	}
	if k > g.NumVertices() {
		return fmt.Errorf("partition: k = %d exceeds %d vertices", k, g.NumVertices())
	}
	return nil
}

// ByName builds the named partitioner's assignment. Recognised names:
// "multilevel" (default, METIS substitute), "ldg", "hash".
func ByName(name string, g *graph.Graph, k int) (*Assignment, error) {
	switch name {
	case "", "multilevel":
		return Multilevel(g, k, DefaultMultilevelOptions)
	case "ldg":
		return LDG(g, k)
	case "hash":
		return Hash(g, k)
	default:
		return nil, fmt.Errorf("partition: unknown partitioner %q", name)
	}
}
