package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/dataset"
	"ripple/internal/graph"
)

func testGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		_ = g.AddEdge(u, v, 1)
	}
	return g
}

// communityGraph builds k dense clusters with sparse inter-cluster edges —
// the structure a good partitioner must discover.
func communityGraph(t *testing.T, clusters, perCluster, intra, inter int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := clusters * perCluster
	g := graph.New(n)
	for c := 0; c < clusters; c++ {
		base := c * perCluster
		for i := 0; i < intra; i++ {
			u := graph.VertexID(base + rng.Intn(perCluster))
			v := graph.VertexID(base + rng.Intn(perCluster))
			if u != v {
				_ = g.AddEdge(u, v, 1)
			}
		}
	}
	for i := 0; i < inter; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u/graph.VertexID(perCluster) != v/graph.VertexID(perCluster) {
			_ = g.AddEdge(u, v, 1)
		}
	}
	return g
}

func TestHashBalanced(t *testing.T) {
	g := testGraph(t, 100, 300, 1)
	a, err := Hash(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(100); err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Sizes() {
		if s != 25 {
			t.Errorf("hash sizes = %v, want all 25", a.Sizes())
		}
	}
}

func TestPartitionersCoverAndBalance(t *testing.T) {
	g := testGraph(t, 500, 3000, 2)
	for _, name := range []string{"multilevel", "ldg", "hash"} {
		t.Run(name, func(t *testing.T) {
			for _, k := range []int{2, 4, 7} {
				a, err := ByName(name, g, k)
				if err != nil {
					t.Fatal(err)
				}
				if err := a.Validate(500); err != nil {
					t.Fatal(err)
				}
				q := Evaluate(g, a)
				if q.Imbalance > 1.35 {
					t.Errorf("k=%d imbalance %v too high", k, q.Imbalance)
				}
			}
		})
	}
}

func TestMultilevelBeatsHashOnCommunities(t *testing.T) {
	g := communityGraph(t, 4, 100, 2000, 120, 3)
	ml, err := Multilevel(g, 4, DefaultMultilevelOptions)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Hash(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	qML := Evaluate(g, ml)
	qH := Evaluate(g, h)
	// Hash cuts ~75% of edges on 4 parts; a multilevel partitioner must
	// recover most of the community structure.
	if qML.CutFraction > qH.CutFraction*0.5 {
		t.Errorf("multilevel cut %.3f not clearly better than hash cut %.3f", qML.CutFraction, qH.CutFraction)
	}
	if qML.CutFraction > 0.25 {
		t.Errorf("multilevel cut %.3f on planted communities", qML.CutFraction)
	}
}

func TestLDGBeatsHashOnCommunities(t *testing.T) {
	g := communityGraph(t, 4, 100, 2000, 120, 5)
	ldg, err := LDG(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Hash(g, 4)
	if Evaluate(g, ldg).CutFraction >= Evaluate(g, h).CutFraction {
		t.Error("LDG should beat hash on community structure")
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := testGraph(t, 300, 1500, 7)
	a1, err := Multilevel(g, 4, DefaultMultilevelOptions)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Multilevel(g, 4, DefaultMultilevelOptions)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a1.Part {
		if a1.Part[u] != a2.Part[u] {
			t.Fatal("multilevel not deterministic for identical seeds")
		}
	}
}

func TestMultilevelK1(t *testing.T) {
	g := testGraph(t, 50, 100, 9)
	a, err := Multilevel(g, 1, DefaultMultilevelOptions)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, a)
	if q.EdgeCut != 0 || q.Imbalance != 1 {
		t.Errorf("k=1 quality = %+v", q)
	}
}

func TestPartitionErrors(t *testing.T) {
	g := testGraph(t, 10, 20, 11)
	if _, err := Multilevel(g, 0, DefaultMultilevelOptions); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := Hash(g, 11); err == nil {
		t.Error("expected error for k > n")
	}
	if _, err := LDG(g, -1); err == nil {
		t.Error("expected error for negative k")
	}
	if _, err := ByName("bogus", g, 2); err == nil {
		t.Error("expected error for unknown partitioner")
	}
}

func TestEvaluateOnKnownAssignment(t *testing.T) {
	g := graph.New(4)
	mustAdd := func(u, v graph.VertexID) {
		t.Helper()
		if err := g.AddEdge(u, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1) // intra part 0
	mustAdd(2, 3) // intra part 1
	mustAdd(0, 2) // cut
	mustAdd(3, 1) // cut
	a := &Assignment{K: 2, Part: []int32{0, 0, 1, 1}}
	q := Evaluate(g, a)
	if q.EdgeCut != 2 || q.CutFraction != 0.5 || q.Imbalance != 1 {
		t.Errorf("quality = %+v", q)
	}
}

func TestMultilevelOnPowerLawDataset(t *testing.T) {
	spec := dataset.Arxiv(0.01) // ~1.7K vertices
	g, _, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Multilevel(g, 8, DefaultMultilevelOptions)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g.NumVertices()); err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, a)
	if q.Imbalance > 1.5 {
		t.Errorf("imbalance %v on power-law graph", q.Imbalance)
	}
	// Must beat random assignment's expected 87.5% cut on 8 parts.
	if q.CutFraction > 0.8 {
		t.Errorf("cut fraction %v no better than random", q.CutFraction)
	}
}

func TestValidateCatchesBadAssignments(t *testing.T) {
	a := &Assignment{K: 2, Part: []int32{0, 1, 2}}
	if err := a.Validate(3); err == nil {
		t.Error("expected error for out-of-range partition id")
	}
	b := &Assignment{K: 2, Part: []int32{0}}
	if err := b.Validate(3); err == nil {
		t.Error("expected error for short assignment")
	}
}

// Property: every partitioner produces a valid, reasonably balanced
// assignment on arbitrary random graphs.
func TestQuickPartitionersAlwaysValid(t *testing.T) {
	property := func(seed int64, kRaw uint8) bool {
		n := 60
		g := testGraphSeeded(n, 240, seed)
		k := 1 + int(kRaw)%8
		for _, name := range []string{"multilevel", "ldg", "hash"} {
			a, err := ByName(name, g, k)
			if err != nil {
				return false
			}
			if a.Validate(n) != nil {
				return false
			}
			q := Evaluate(g, a)
			if q.Imbalance > 2.0 { // generous bound for tiny parts
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func testGraphSeeded(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < m; i++ {
		_ = g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 1)
	}
	return g
}
