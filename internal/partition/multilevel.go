package partition

import (
	"math/rand"
	"sort"

	"ripple/internal/graph"
)

// MultilevelOptions tunes the METIS-substitute partitioner.
type MultilevelOptions struct {
	// CoarsenTo stops coarsening when the graph has at most
	// CoarsenTo×k vertices.
	CoarsenTo int
	// RefinePasses is the number of boundary-refinement sweeps applied at
	// every uncoarsening level.
	RefinePasses int
	// BalanceSlack is the tolerated imbalance ε: partitions may hold up to
	// (1+ε)·n/k vertex weight.
	BalanceSlack float64
	// Seed drives tie-breaking in matching order.
	Seed int64
}

// DefaultMultilevelOptions mirrors METIS's usual operating point.
var DefaultMultilevelOptions = MultilevelOptions{
	CoarsenTo:    30,
	RefinePasses: 4,
	BalanceSlack: 0.05,
	Seed:         1,
}

// uEdge is an undirected weighted adjacency entry of the working graph.
type uEdge struct {
	to int32
	w  float64
}

// uGraph is the undirected weighted multilevel working graph: vertex
// weights carry the number of original vertices collapsed into each node.
type uGraph struct {
	vwgt []int64
	adj  [][]uEdge
}

func (ug *uGraph) n() int { return len(ug.vwgt) }

// Multilevel partitions g into k parts with the classic three-phase
// multilevel scheme (coarsen → initial partition → uncoarsen + refine).
func Multilevel(g *graph.Graph, k int, opts MultilevelOptions) (*Assignment, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	if opts.CoarsenTo <= 0 {
		opts.CoarsenTo = DefaultMultilevelOptions.CoarsenTo
	}
	if opts.RefinePasses <= 0 {
		opts.RefinePasses = DefaultMultilevelOptions.RefinePasses
	}
	if opts.BalanceSlack <= 0 {
		opts.BalanceSlack = DefaultMultilevelOptions.BalanceSlack
	}
	if k == 1 {
		return &Assignment{K: 1, Part: make([]int32, g.NumVertices())}, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))

	// Level 0: symmetrise the directed graph into the working form.
	levels := []*uGraph{undirect(g)}
	var maps [][]int32 // maps[i][u] = coarse id of u at level i+1

	// Phase 1: coarsen via heavy-edge matching until small or stuck.
	for levels[len(levels)-1].n() > opts.CoarsenTo*k {
		cur := levels[len(levels)-1]
		coarse, cmap, shrunk := coarsen(cur, rng)
		if !shrunk {
			break
		}
		levels = append(levels, coarse)
		maps = append(maps, cmap)
	}

	// Phase 2: initial partition of the coarsest level by greedy region
	// growing over vertex weight.
	coarsest := levels[len(levels)-1]
	part := growRegions(coarsest, k, opts.BalanceSlack, rng)
	refine(coarsest, part, k, opts)

	// Phase 3: project back level by level, refining at each step.
	for i := len(levels) - 2; i >= 0; i-- {
		finer := levels[i]
		finerPart := make([]int32, finer.n())
		cmap := maps[i]
		for u := range finerPart {
			finerPart[u] = part[cmap[u]]
		}
		part = finerPart
		refine(finer, part, k, opts)
	}

	return &Assignment{K: k, Part: part}, nil
}

// undirect builds the undirected weighted working graph from a directed
// graph, merging (u,v) and (v,u) into one edge of combined weight 1 or 2
// (topological weight, not the GNN aggregation weight — the partitioner
// minimises edge *count* crossing the cut, like METIS on an unweighted
// graph).
func undirect(g *graph.Graph) *uGraph {
	n := g.NumVertices()
	ug := &uGraph{vwgt: make([]int64, n), adj: make([][]uEdge, n)}
	for u := 0; u < n; u++ {
		ug.vwgt[u] = 1
	}
	deg := make([]int, n)
	g.ForEachEdge(func(u, v graph.VertexID, w float32) {
		if u != v {
			deg[u]++
			deg[v]++
		}
	})
	for u := 0; u < n; u++ {
		ug.adj[u] = make([]uEdge, 0, deg[u])
	}
	g.ForEachEdge(func(u, v graph.VertexID, w float32) {
		if u != v {
			ug.adj[u] = append(ug.adj[u], uEdge{to: v, w: 1})
			ug.adj[v] = append(ug.adj[v], uEdge{to: u, w: 1})
		}
	})
	for u := 0; u < n; u++ {
		ug.adj[u] = mergeParallel(ug.adj[u])
	}
	return ug
}

// mergeParallel sums the weights of parallel edges in an adjacency list.
func mergeParallel(list []uEdge) []uEdge {
	if len(list) < 2 {
		return list
	}
	sort.Slice(list, func(i, j int) bool { return list[i].to < list[j].to })
	out := list[:1]
	for _, e := range list[1:] {
		if last := &out[len(out)-1]; last.to == e.to {
			last.w += e.w
		} else {
			out = append(out, e)
		}
	}
	return out
}

// coarsen performs one level of heavy-edge matching and contraction.
// Returns (coarse graph, fine→coarse map, whether the graph shrank
// meaningfully).
func coarsen(ug *uGraph, rng *rand.Rand) (*uGraph, []int32, bool) {
	n := ug.n()
	match := make([]int32, n)
	for u := range match {
		match[u] = -1
	}
	// Visit in random order (METIS visits randomly to avoid degenerate
	// matchings on regular structures).
	order := rng.Perm(n)
	for _, u := range order {
		if match[u] != -1 {
			continue
		}
		best, bestW := int32(-1), -1.0
		for _, e := range ug.adj[u] {
			if match[e.to] == -1 && int(e.to) != u && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = int32(u)
		} else {
			match[u] = int32(u) // matched with itself
		}
	}

	// Number coarse vertices.
	cmap := make([]int32, n)
	for u := range cmap {
		cmap[u] = -1
	}
	next := int32(0)
	for u := 0; u < n; u++ {
		if cmap[u] != -1 {
			continue
		}
		cmap[u] = next
		if m := match[u]; int(m) != u {
			cmap[m] = next
		}
		next++
	}
	if int(next) >= n { // no contraction happened
		return nil, nil, false
	}

	coarse := &uGraph{vwgt: make([]int64, next), adj: make([][]uEdge, next)}
	for u := 0; u < n; u++ {
		coarse.vwgt[cmap[u]] += ug.vwgt[u]
	}
	for u := 0; u < n; u++ {
		cu := cmap[u]
		for _, e := range ug.adj[u] {
			cv := cmap[e.to]
			if cu != cv {
				coarse.adj[cu] = append(coarse.adj[cu], uEdge{to: cv, w: e.w})
			}
		}
	}
	for u := range coarse.adj {
		coarse.adj[u] = mergeParallel(coarse.adj[u])
	}
	return coarse, cmap, true
}

// growRegions produces the initial k-way partition by greedy BFS region
// growing: repeatedly seed the next region at an unassigned vertex and
// absorb unassigned neighbours until the region reaches its weight target.
func growRegions(ug *uGraph, k int, slack float64, rng *rand.Rand) []int32 {
	n := ug.n()
	part := make([]int32, n)
	for u := range part {
		part[u] = -1
	}
	var totalW int64
	for _, w := range ug.vwgt {
		totalW += w
	}
	target := float64(totalW) / float64(k)

	order := rng.Perm(n)
	oi := 0
	nextSeed := func() int {
		for ; oi < len(order); oi++ {
			if part[order[oi]] == -1 {
				return order[oi]
			}
		}
		return -1
	}

	for p := int32(0); p < int32(k); p++ {
		var w int64
		limit := target
		if p == int32(k)-1 {
			limit = float64(totalW) // last region takes the remainder
		}
		queue := []int{}
		if s := nextSeed(); s >= 0 {
			part[s] = p
			w += ug.vwgt[s]
			queue = append(queue, s)
		}
		for len(queue) > 0 && float64(w) < limit {
			u := queue[0]
			queue = queue[1:]
			for _, e := range ug.adj[u] {
				v := int(e.to)
				if part[v] != -1 || float64(w+ug.vwgt[v]) > limit*(1+slack) {
					continue
				}
				part[v] = p
				w += ug.vwgt[v]
				queue = append(queue, v)
				if float64(w) >= limit {
					break
				}
			}
			// If the frontier dried up but the region is underweight,
			// jump to a fresh seed (disconnected components).
			if len(queue) == 0 && float64(w) < limit {
				if s := nextSeed(); s >= 0 {
					part[s] = p
					w += ug.vwgt[s]
					queue = append(queue, s)
				} else {
					break
				}
			}
		}
	}
	// Any stragglers go to the lightest partition.
	sizes := make([]int64, k)
	for u, p := range part {
		if p >= 0 {
			sizes[p] += ug.vwgt[u]
		}
	}
	for u, p := range part {
		if p == -1 {
			best := 0
			for q := 1; q < k; q++ {
				if sizes[q] < sizes[best] {
					best = q
				}
			}
			part[u] = int32(best)
			sizes[best] += ug.vwgt[u]
		}
	}
	return part
}

// refine runs greedy boundary-move passes (a lightweight Kernighan–Lin /
// FM variant): move a boundary vertex to the neighbouring partition with
// the largest positive cut gain, provided balance stays within slack.
func refine(ug *uGraph, part []int32, k int, opts MultilevelOptions) {
	n := ug.n()
	var totalW int64
	for _, w := range ug.vwgt {
		totalW += w
	}
	maxW := int64(float64(totalW) / float64(k) * (1 + opts.BalanceSlack))
	sizes := make([]int64, k)
	for u, p := range part {
		sizes[p] += ug.vwgt[u]
	}
	conn := make([]float64, k)
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := 0
		for u := 0; u < n; u++ {
			home := part[u]
			// Tally connectivity to each partition.
			touched := conn[:k]
			for i := range touched {
				touched[i] = 0
			}
			for _, e := range ug.adj[u] {
				touched[part[e.to]] += e.w
			}
			best, bestGain := home, 0.0
			for p := int32(0); p < int32(k); p++ {
				if p == home {
					continue
				}
				gain := touched[p] - touched[home]
				if gain > bestGain && sizes[p]+ug.vwgt[u] <= maxW {
					best, bestGain = p, gain
				}
			}
			if best != home {
				sizes[home] -= ug.vwgt[u]
				sizes[best] += ug.vwgt[u]
				part[u] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
