package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecords throws arbitrary bytes at the segment scanner — the
// record-framing sibling of the cluster codec fuzzers. Whatever the bytes
// are, Open must not panic, must recover only a strictly epoch-increasing
// record prefix, and the reopened log must accept appends that survive a
// further reopen (i.e. corruption never wedges the log).
func FuzzWALRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// A valid two-record stream, so mutations explore near-valid framing.
	valid := appendRecord(nil, 1, []byte("first"))
	valid = appendRecord(valid, 2, []byte("second"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	// An epoch regression: second record must be dropped.
	regress := appendRecord(nil, 7, []byte("seven"))
	regress = appendRecord(regress, 3, []byte("three"))
	f.Add(regress)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segment{index: 1}.name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("open over fuzzed segment: %v", err)
		}
		last := uint64(0)
		if err := l.Replay(0, func(epoch uint64, payload []byte) error {
			if epoch <= last {
				t.Fatalf("replay emitted non-increasing epoch %d after %d", epoch, last)
			}
			last = epoch
			return nil
		}); err != nil {
			t.Fatalf("replay over recovered prefix: %v", err)
		}
		if st := l.Stats(); st.LastEpoch != last {
			t.Fatalf("stats.LastEpoch = %d, replay ended at %d", st.LastEpoch, last)
		}

		// The recovered log must keep working: append, reopen, re-read.
		if err := l.Append(last+1, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		found := false
		if err := l2.Replay(last, func(epoch uint64, payload []byte) error {
			if epoch == last+1 && string(payload) == "post-recovery" {
				found = true
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatal("post-recovery append lost across reopen")
		}
	})
}

// FuzzWALRecordRoundTrip pins the framing itself: any payload appended is
// parsed back bit-identically, and any prefix truncation of the framed
// bytes is rejected rather than misparsed.
func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint64(1))
	f.Add([]byte("hello"), uint64(42))
	f.Fuzz(func(t *testing.T, payload []byte, epoch uint64) {
		rec := appendRecord(nil, epoch, payload)
		n, gotEpoch, gotPayload, ok := parseRecord(rec)
		if !ok || n != int64(len(rec)) || gotEpoch != epoch || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip failed: ok=%v n=%d epoch=%d", ok, n, gotEpoch)
		}
		for cut := 0; cut < len(rec); cut++ {
			if _, _, _, ok := parseRecord(rec[:cut]); ok {
				t.Fatalf("truncated record (%d of %d bytes) parsed as valid", cut, len(rec))
			}
		}
	})
}
