// Package wal is the append-only write-ahead log of the durability
// subsystem: a segment log of opaque records (one per admitted update
// batch), each tagged with the epoch it produces, CRC32-framed so a torn
// write from a crash is detected and discarded instead of replayed.
//
// The log is payload-agnostic — the serving layer frames the cluster
// codec's batch encoding through it — and single-writer: the serving
// write path appends under its own lock, but the Log carries an internal
// mutex so stats and Close are safe from other goroutines.
//
// Durability contract:
//
//   - Append writes a record for epoch e. Once Append returns (with
//     Config.Fsync set; once the OS flushes otherwise), a reopened log
//     replays exactly the appended prefix.
//   - Records are strictly epoch-ordered. On Open, the segments are
//     scanned and validated; the first invalid record (short header,
//     length past EOF, CRC mismatch, epoch out of order) ends the log:
//     the torn tail is truncated away and any later segment is discarded.
//   - MarkCheckpoint(e) drops every segment whose records are all covered
//     by a checkpoint at epoch e, so steady-state disk usage is O(latest
//     checkpoint + records since it).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Record framing: a fixed 16-byte header followed by the payload.
//
//	u32 little-endian payload length
//	u32 little-endian CRC32 (IEEE) over epoch bytes + payload
//	u64 little-endian epoch
//	payload bytes
const headerSize = 16

// maxRecordBytes bounds a single record so a corrupt length field cannot
// trigger a giant allocation during the open scan. Far above any real
// batch (the HTTP ingress caps request bodies at 8 MiB).
const maxRecordBytes = 1 << 30

// segSuffix names segment files; the basename is a zero-padded creation
// index so lexicographic order is append order.
const segSuffix = ".wal"

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Config tunes a Log. The zero value gets sensible defaults.
type Config struct {
	// SegmentBytes rotates the active segment once it reaches this size.
	// Default 4 MiB.
	SegmentBytes int64
	// Fsync syncs the active segment after every Append. Off, appends are
	// durable against process death immediately (the data is in the OS
	// page cache) and against power loss only after the next rotation,
	// checkpoint or Close — the torn-tail recovery contract makes either
	// policy safe, trading the fsync per batch for bounded loss.
	Fsync bool
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	return c
}

// Stats is a point-in-time snapshot of the log's on-disk footprint and
// its append/fsync traffic.
type Stats struct {
	Bytes     int64  // total bytes across all live segments
	Segments  int    // live segment files (including the active one)
	LastEpoch uint64 // epoch of the newest record, 0 if none
	Appends   uint64 // records written since Open
	// Fsyncs counts fsyncs of the active segment since Open. Under
	// Config.Fsync with concurrent appenders, group commit amortises one
	// sync across every record written while the previous sync ran, so
	// this stays below Appends.
	Fsyncs uint64
}

// segment is one on-disk log file: its creation index, the epoch range of
// its records (first==0 means empty), and its validated byte size.
type segment struct {
	index       uint64
	first, last uint64
	bytes       int64
}

func (s segment) name() string {
	return fmt.Sprintf("%020d%s", s.index, segSuffix)
}

// Log is an append-only segment log. Open recovers the valid record
// prefix; Append adds records; Replay iterates them; MarkCheckpoint
// retires segments a checkpoint made dead.
type Log struct {
	mu     sync.Mutex
	dir    string
	cfg    Config
	closed bool

	segs   []segment // closed segments, append order
	active segment
	f      *os.File // active segment, positioned at its validated end

	lastEpoch uint64 // newest record epoch across the whole log
	dirty     bool   // active segment has unsynced appends

	// Group-commit state (Config.Fsync): appenders write their record
	// under mu, then wait until an fsync covers it. The first waiter not
	// already covered becomes the leader — it snapshots the write
	// sequence, drops mu, fsyncs once, and wakes every waiter whose
	// record that single sync made durable. All fields below are guarded
	// by mu; the leader's f.Sync itself runs outside it, so anything that
	// retires or truncates the active file (rotation, abort, Close) must
	// first drain an in-flight sync via waitSyncLocked.
	flushed   sync.Cond // broadcast when a sync completes or fails
	writeSeq  uint64    // records written to the active file
	syncedSeq uint64    // records covered by a completed fsync
	syncing   bool      // a leader is fsyncing outside mu
	syncErr   error     // sticky: an fsync failed; the log can no longer promise durability
	appends   uint64    // records written since Open
	fsyncs    uint64    // fsyncs of the active segment since Open

	// One-deep undo state for AbortLast: the active segment and epoch
	// as they were before the most recent Append. Invalidated by
	// rotation, checkpointing, aborting, and Open.
	canUndo bool
	undo    struct {
		bytes       int64
		first, last uint64
		lastEpoch   uint64
	}
}

// Open opens (creating if needed) the log in dir and recovers its valid
// record prefix: segments are scanned in creation order and the first
// invalid record — a torn write from a crash — truncates the log there;
// the torn bytes and any later segment are deleted. The returned log is
// positioned to append after the last valid record.
func Open(dir string, cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, cfg: cfg}
	l.flushed.L = &l.mu

	names, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	sort.Strings(names)
	torn := false
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), segSuffix)
		index, err := strconv.ParseUint(base, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unrecognised segment file %s", name)
		}
		if torn {
			// Everything after a torn segment is unreachable for replay
			// (its epochs would skip the gap); drop it.
			if err := os.Remove(name); err != nil {
				return nil, fmt.Errorf("wal: dropping post-tear segment: %w", err)
			}
			continue
		}
		seg := segment{index: index}
		valid, segTorn, err := l.scanSegment(name, &seg)
		if err != nil {
			return nil, err
		}
		if segTorn {
			torn = true
			if err := os.Truncate(name, valid); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
			}
			seg.bytes = valid
		}
		l.segs = append(l.segs, seg)
	}

	// Reopen the newest segment for append if it has room; otherwise (or
	// with no segments at all) start a fresh one.
	if k := len(l.segs); k > 0 && l.segs[k-1].bytes < cfg.SegmentBytes {
		l.active = l.segs[k-1]
		l.segs = l.segs[:k-1]
		f, err := os.OpenFile(filepath.Join(dir, l.active.name()), os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopening active segment: %w", err)
		}
		if _, err := f.Seek(l.active.bytes, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seeking active segment: %w", err)
		}
		l.f = f
	} else if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// scanSegment validates one segment file, filling seg's epoch range and
// byte size. It returns the length of the valid record prefix and whether
// a torn/invalid record was found after it.
func (l *Log) scanSegment(path string, seg *segment) (valid int64, torn bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, false, fmt.Errorf("wal: reading segment %s: %w", path, err)
	}
	off := int64(0)
	for {
		n, epoch, _, ok := parseRecord(b[off:])
		if !ok {
			break
		}
		if epoch <= l.lastEpoch {
			// Out-of-order epoch: treat like a torn record — the log ends
			// at the last strictly increasing prefix.
			break
		}
		l.lastEpoch = epoch
		if seg.first == 0 {
			seg.first = epoch
		}
		seg.last = epoch
		off += n
	}
	seg.bytes = off
	return off, off != int64(len(b)), nil
}

// parseRecord validates one record at the head of b, returning its total
// framed length, epoch and payload. ok is false for a short, oversized or
// corrupt record.
func parseRecord(b []byte) (n int64, epoch uint64, payload []byte, ok bool) {
	if len(b) < headerSize {
		return 0, 0, nil, false
	}
	plen := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if plen > maxRecordBytes || int64(headerSize)+int64(plen) > int64(len(b)) {
		return 0, 0, nil, false
	}
	body := b[8 : headerSize+plen] // epoch bytes + payload
	if crc32.ChecksumIEEE(body) != crc {
		return 0, 0, nil, false
	}
	return int64(headerSize) + int64(plen), binary.LittleEndian.Uint64(b[8:]), b[headerSize : headerSize+plen], true
}

// appendRecord frames epoch+payload onto buf.
func appendRecord(buf []byte, epoch uint64, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	bodyAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = append(buf, payload...)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[bodyAt:]))
	return buf
}

// openSegmentLocked starts a fresh active segment after the newest index.
func (l *Log) openSegmentLocked() error {
	next := uint64(1)
	if k := len(l.segs); k > 0 {
		next = l.segs[k-1].index + 1
	}
	if l.active.index >= next {
		next = l.active.index + 1
	}
	l.active = segment{index: next}
	f, err := os.OpenFile(filepath.Join(l.dir, l.active.name()), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.f = f
	return syncDir(l.dir)
}

// waitSyncLocked drains an in-flight group-commit fsync. Anything that
// retires, truncates or closes the active file must call this first: the
// leader syncs l.f outside mu, and yanking the file out from under it
// would turn an ordinary rotation into a spurious sync failure.
func (l *Log) waitSyncLocked() {
	for l.syncing {
		l.flushed.Wait()
	}
}

// rotateLocked retires the active segment (syncing it) and opens a new one.
func (l *Log) rotateLocked() error {
	l.waitSyncLocked()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment: %w", err)
	}
	l.fsyncs++
	l.syncedSeq = l.writeSeq // everything written so far is in the synced file
	l.dirty = false
	l.canUndo = false
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	l.segs = append(l.segs, l.active)
	return l.openSegmentLocked()
}

// rotateIfDueLocked rotates the active segment when it has reached its
// size limit. Rotation must drain any in-flight group commit first, and
// that wait releases mu — so every fact established before the wait is
// stale after it. The loop re-evaluates from scratch after each wait and
// only calls rotateLocked once no sync is in flight, making the rotation
// itself (sync, close, reopen) run under an uninterrupted mu hold.
//
// Callers rotate via this helper BEFORE choosing/validating the record's
// epoch: because the wait inside can release mu, an epoch chosen earlier
// could be allocated twice (two AppendNext callers both reading
// lastEpoch+1 across a rotation wait was exactly that bug). After this
// returns, the caller holds mu continuously through the record write.
func (l *Log) rotateIfDueLocked() error {
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.active.bytes < l.cfg.SegmentBytes || l.active.first == 0 {
			return nil // not due (or freshly rotated by a racing appender)
		}
		if l.syncing {
			l.waitSyncLocked() // releases mu; loop re-checks everything
			continue
		}
		return l.rotateLocked()
	}
}

// Append writes one record. epoch must be strictly greater than every
// previously appended epoch — records are the admitted-batch sequence and
// epochs are its positions. With Config.Fsync the record is on stable
// storage when Append returns. Rotation happens before the write, so the
// newest record always sits at the tail of the active segment (the
// invariant AbortLast relies on).
//
// Concurrent Appends are safe and, under Config.Fsync, group-committed:
// see AppendNext for the variant concurrent appenders actually want
// (strictly-increasing epochs make externally chosen epochs race).
func (l *Log) Append(epoch uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.rotateIfDueLocked(); err != nil {
		return err
	}
	// Checked after the rotation point: rotating can release mu, and the
	// ordering decision must be made in the same critical section as the
	// write or a racing appender invalidates it.
	if epoch <= l.lastEpoch {
		return fmt.Errorf("wal: append epoch %d out of order (last %d)", epoch, l.lastEpoch)
	}
	if err := l.appendLocked(epoch, payload); err != nil {
		return err
	}
	if l.cfg.Fsync {
		return l.groupSyncLocked(l.writeSeq)
	}
	return nil
}

// AppendNext writes one record at the next free epoch (lastEpoch+1) and
// returns the epoch it was assigned. This is the concurrent-appender
// entry point: the epoch is allocated after the rotation point, in the
// same uninterrupted critical section as the write, so any number of
// goroutines can append without racing the strictly-increasing-epoch
// invariant, and under Config.Fsync their syncs are group-committed —
// the first uncovered appender fsyncs once for every record written
// while the previous sync was in flight (see BenchmarkWALAppend's
// fsyncs/append metric).
func (l *Log) AppendNext(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rotateIfDueLocked(); err != nil {
		return 0, err
	}
	epoch := l.lastEpoch + 1
	if err := l.appendLocked(epoch, payload); err != nil {
		return 0, err
	}
	if l.cfg.Fsync {
		if err := l.groupSyncLocked(l.writeSeq); err != nil {
			return 0, err
		}
	}
	return epoch, nil
}

// AppendNextNoWait is AppendNext with the durability wait split off: it
// assigns the next free epoch and writes the record, but returns without
// waiting for an fsync to cover it. The returned write sequence is the
// record's position in the append order — hand it to WaitDurable before
// acting on the record (publishing its epoch, acking its client). This is
// the staged-admission entry point: the caller can release its own
// admission lock between the write and the durability wait, so concurrent
// admitters pile into one group commit while earlier epochs apply.
func (l *Log) AppendNextNoWait(payload []byte) (epoch, seq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrClosed
	}
	if err := l.rotateIfDueLocked(); err != nil {
		return 0, 0, err
	}
	epoch = l.lastEpoch + 1
	if err := l.appendLocked(epoch, payload); err != nil {
		return 0, 0, err
	}
	return epoch, l.writeSeq, nil
}

// WaitDurable blocks until an fsync covers the record AppendNextNoWait
// wrote at write sequence seq. Without Config.Fsync it returns
// immediately — the log's durability policy is then page-cache-level and
// the torn-tail recovery contract absorbs the difference. Concurrent
// waiters group-commit: the first uncovered one fsyncs once for every
// record written while the previous sync ran.
func (l *Log) WaitDurable(seq uint64) error {
	if !l.cfg.Fsync {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.groupSyncLocked(seq)
}

// AdvanceEpoch raises the log's epoch floor: subsequent AppendNext /
// AppendNextNoWait calls allocate from epoch+1. Recovery calls this after
// replay when a checkpoint truncated every segment — the on-disk log is
// empty, but the next admitted batch must continue the pre-crash epoch
// sequence, not restart at 1. A floor at or below the newest record is a
// no-op.
func (l *Log) AdvanceEpoch(epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch > l.lastEpoch {
		l.lastEpoch = epoch
		l.canUndo = false
	}
}

// appendLocked validates nothing about epoch (callers do, after rotating
// via rotateIfDueLocked); it writes the framed record and updates the
// bookkeeping. It does NOT wait for durability — callers that promise it
// (Append, AppendNext) follow up with groupSyncLocked; callers that defer
// it (AppendNextNoWait) hand the returned write sequence to WaitDurable.
// mu is held without release from entry to exit, so the record write and
// the bookkeeping (lastEpoch included) are one atomic step.
func (l *Log) appendLocked(epoch uint64, payload []byte) error {
	if l.syncErr != nil {
		// A failed fsync already broke the durability promise for some
		// earlier record; admitting more would silently widen the hole.
		return l.syncErr
	}
	undo := l.undo
	undo.bytes, undo.first, undo.last, undo.lastEpoch = l.active.bytes, l.active.first, l.active.last, l.lastEpoch
	rec := appendRecord(nil, epoch, payload)
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	l.dirty = true
	l.appends++
	l.writeSeq++
	if l.active.first == 0 {
		l.active.first = epoch
	}
	l.active.last = epoch
	l.active.bytes += int64(len(rec))
	l.lastEpoch = epoch
	l.undo, l.canUndo = undo, true
	return nil
}

// groupSyncLocked blocks until an fsync covers write sequence seq. The
// caller's record is already in the file; if no sync is running, the
// caller becomes the leader — it snapshots how far the file has been
// written, fsyncs outside mu (appenders keep writing meanwhile), then
// marks every record up to the snapshot durable and wakes the waiters.
// If a sync is already in flight the caller waits: either that sync's
// snapshot covers it, or it becomes the next leader when the current one
// finishes. mu is held on entry and exit, released around the fsync.
func (l *Log) groupSyncLocked(seq uint64) error {
	for l.syncedSeq < seq {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.closed {
			// Close drains and syncs before closing the file, so a waiter
			// can only observe closed with its record already covered or
			// the sync error set; this is unreachable, kept as a guard
			// against leading a sync on a closed file.
			return ErrClosed
		}
		if l.syncing {
			l.flushed.Wait()
			continue
		}
		l.syncing = true
		upTo := l.writeSeq
		f := l.f
		l.mu.Unlock()
		err := f.Sync()
		l.mu.Lock()
		l.syncing = false
		l.fsyncs++
		if err != nil && l.syncErr == nil {
			l.syncErr = fmt.Errorf("wal: syncing record: %w", err)
		}
		if err == nil && upTo > l.syncedSeq {
			l.syncedSeq = upTo
		}
		l.dirty = l.syncedSeq < l.writeSeq
		l.flushed.Broadcast()
	}
	// syncedSeq reached seq: this record is on stable storage, whatever
	// later records' syncs may have done.
	return nil
}

// AbortLast withdraws the most recent Append — the record for epoch —
// by truncating it off the active segment: used when the write the
// record covers failed after logging (the batch never became an epoch,
// so replaying it would resurrect a write its client saw fail). Only the
// immediately preceding Append can be aborted; rotation or a checkpoint
// in between refuses.
func (l *Log) AbortLast(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.canUndo || epoch != l.lastEpoch {
		return fmt.Errorf("wal: cannot abort record %d (last appended %d, undo available %v)", epoch, l.lastEpoch, l.canUndo)
	}
	l.waitSyncLocked() // never truncate a file a leader is fsyncing
	if err := l.f.Truncate(l.undo.bytes); err != nil {
		return fmt.Errorf("wal: aborting record: %w", err)
	}
	if _, err := l.f.Seek(l.undo.bytes, io.SeekStart); err != nil {
		return fmt.Errorf("wal: aborting record: %w", err)
	}
	l.active.bytes, l.active.first, l.active.last = l.undo.bytes, l.undo.first, l.undo.last
	l.lastEpoch = l.undo.lastEpoch
	l.canUndo = false
	if l.cfg.Fsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing abort: %w", err)
		}
	}
	return nil
}

// Replay calls fn for every record with epoch > after, in epoch order.
// The payload slice is only valid during the call. Replay re-reads the
// segment files; records appended after Replay begins are not visited.
func (l *Log) Replay(after uint64, fn func(epoch uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.dirty {
		// The active segment may have OS-buffered appends; a same-process
		// replay reads the file back, and the page cache makes that
		// coherent without a sync. Nothing to do — noted for clarity.
		_ = l.dirty
	}
	segs := make([]segment, 0, len(l.segs)+1)
	segs = append(segs, l.segs...)
	segs = append(segs, l.active)
	l.mu.Unlock()

	for _, seg := range segs {
		if seg.bytes == 0 || (seg.last != 0 && seg.last <= after) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(l.dir, seg.name()))
		if err != nil {
			return fmt.Errorf("wal: replaying segment: %w", err)
		}
		if int64(len(b)) > seg.bytes {
			b = b[:seg.bytes] // ignore appends racing this replay
		}
		off := int64(0)
		for off < int64(len(b)) {
			n, epoch, payload, ok := parseRecord(b[off:])
			if !ok {
				return fmt.Errorf("wal: segment %s corrupt at offset %d (validated at open)", seg.name(), off)
			}
			if epoch > after {
				if err := fn(epoch, payload); err != nil {
					return err
				}
			}
			off += n
		}
	}
	return nil
}

// ReplayRecord is one committed record surfaced by StreamReplay. Payload
// aliases a per-segment read buffer that the stream never reuses, so it
// remains valid after receipt; treat it as read-only.
type ReplayRecord struct {
	Epoch   uint64
	Payload []byte
}

// StreamReplay is the pipelined counterpart of Replay: a background reader
// goroutine reads segment files ahead, validates record framing, and
// delivers records with epoch > after in strict epoch order over a channel
// with the given buffer depth — overlapping disk reads and CRC checks with
// whatever the consumer does per record (decode + apply, on the recovery
// path). The consumer must drain the channel or call stop (idempotent,
// safe after drain); err reports the terminal read error, if any, once the
// channel has closed. Records appended after StreamReplay begins are not
// visited.
func (l *Log) StreamReplay(after uint64, depth int) (records <-chan ReplayRecord, stop func(), err func() error) {
	if depth < 1 {
		depth = 1
	}
	ch := make(chan ReplayRecord, depth)
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	var terminal error

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		terminal = ErrClosed
		close(ch)
		return ch, func() {}, func() error { return terminal }
	}
	segs := make([]segment, 0, len(l.segs)+1)
	segs = append(segs, l.segs...)
	segs = append(segs, l.active)
	l.mu.Unlock()

	go func() {
		defer close(ch)
		for _, seg := range segs {
			if seg.bytes == 0 || (seg.last != 0 && seg.last <= after) {
				continue
			}
			b, rerr := os.ReadFile(filepath.Join(l.dir, seg.name()))
			if rerr != nil {
				terminal = fmt.Errorf("wal: replaying segment: %w", rerr)
				return
			}
			if int64(len(b)) > seg.bytes {
				b = b[:seg.bytes] // ignore appends racing this replay
			}
			off := int64(0)
			for off < int64(len(b)) {
				n, epoch, payload, ok := parseRecord(b[off:])
				if !ok {
					terminal = fmt.Errorf("wal: segment %s corrupt at offset %d (validated at open)", seg.name(), off)
					return
				}
				if epoch > after {
					select {
					case ch <- ReplayRecord{Epoch: epoch, Payload: payload}:
					case <-stopCh:
						return
					}
				}
				off += n
			}
		}
	}()
	return ch, func() { stopOnce.Do(func() { close(stopCh) }) }, func() error { return terminal }
}

// MarkCheckpoint records that a checkpoint at epoch covers every record
// with epoch ≤ that value: the active segment is rotated out (if it holds
// records) and every segment whose records are all covered is deleted.
// Steady-state disk usage is therefore the newest checkpoint plus the
// records appended since it.
func (l *Log) MarkCheckpoint(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.canUndo = false
	if l.active.first != 0 && l.active.last <= epoch {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	live := l.segs[:0]
	removed := false
	for _, seg := range l.segs {
		if seg.last <= epoch {
			if err := os.Remove(filepath.Join(l.dir, seg.name())); err != nil {
				return fmt.Errorf("wal: removing dead segment: %w", err)
			}
			removed = true
			continue
		}
		live = append(live, seg)
	}
	l.segs = live
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.waitSyncLocked()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs++
	l.syncedSeq = l.writeSeq
	l.dirty = false
	return nil
}

// Stats returns the log's current on-disk footprint and traffic counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		LastEpoch: l.lastEpoch,
		Segments:  len(l.segs) + 1,
		Bytes:     l.active.bytes,
		Appends:   l.appends,
		Fsyncs:    l.fsyncs,
	}
	for _, seg := range l.segs {
		st.Bytes += seg.bytes
	}
	return st
}

// Close syncs and closes the active segment. Further operations return
// ErrClosed. An in-flight group-commit sync is drained first, and the
// final sync marks every written record durable, so appenders still
// waiting on a group commit return success rather than ErrClosed — their
// records are on disk.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.waitSyncLocked()
	l.closed = true
	err := l.f.Sync()
	if err == nil {
		l.fsyncs++
		l.syncedSeq = l.writeSeq
		l.dirty = false
	} else if l.syncErr == nil {
		l.syncErr = err
	}
	l.flushed.Broadcast()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so entry creations/removals survive power
// loss (best effort on platforms where directories cannot be synced).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// WriteFileAtomic publishes a file through the crash-safe sequence every
// checkpoint artifact uses: write a temp sibling, fsync it, rename it
// over path, fsync the directory. A crash at any point leaves either the
// old file or the complete new one, never a tear. Shared by the serving
// tier's checkpoint envelopes and rippled's cluster manifests.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ListEpochFiles returns the epochs of the files in dir named
// prefix + %016x + suffix, newest first — the naming scheme of every
// checkpoint artifact (serve's ckpt-*.ckpt envelopes, rippled's
// ckpt-*.manifest files). Files that do not parse are ignored.
func ListEpochFiles(dir, prefix, suffix string) []uint64 {
	names, err := filepath.Glob(filepath.Join(dir, prefix+"*"+suffix))
	if err != nil {
		return nil
	}
	epochs := make([]uint64, 0, len(names))
	for _, name := range names {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(name), prefix), suffix)
		if e, err := strconv.ParseUint(base, 16, 64); err == nil {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	return epochs
}
