package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collectStream drains StreamReplay into slices, copying payloads so
// they may be compared after the stream ends.
func collectStream(t *testing.T, l *Log, after uint64, depth int) ([]uint64, [][]byte, error) {
	t.Helper()
	records, stop, werr := l.StreamReplay(after, depth)
	defer stop()
	var epochs []uint64
	var payloads [][]byte
	for rec := range records {
		epochs = append(epochs, rec.Epoch)
		payloads = append(payloads, append([]byte(nil), rec.Payload...))
	}
	return epochs, payloads, werr()
}

// TestStreamReplayMatchesReplay: the streaming reader is a drop-in for
// the callback reader — same records, same epochs, same payload bytes,
// across segment rotations and every read-ahead depth.
func TestStreamReplayMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{SegmentBytes: 256}) // force many segments
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 120
	for e := uint64(1); e <= n; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	for _, after := range []uint64{0, 1, 57, n - 1, n} {
		wantEpochs, wantPayloads := collect(t, l, after)
		for _, depth := range []int{1, 8, 256} {
			gotEpochs, gotPayloads, err := collectStream(t, l, after, depth)
			if err != nil {
				t.Fatalf("after=%d depth=%d: %v", after, depth, err)
			}
			if len(gotEpochs) != len(wantEpochs) {
				t.Fatalf("after=%d depth=%d: %d records, want %d", after, depth, len(gotEpochs), len(wantEpochs))
			}
			for i := range wantEpochs {
				if gotEpochs[i] != wantEpochs[i] || !bytes.Equal(gotPayloads[i], wantPayloads[i]) {
					t.Fatalf("after=%d depth=%d: record %d diverges from Replay", after, depth, i)
				}
			}
		}
	}
}

// TestStreamReplayTornTail: a mid-record tear (the crash-truncation case
// replay must tolerate) ends the stream cleanly after the intact prefix,
// exactly as Replay does.
func TestStreamReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 10; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%v)", segs, err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	wantEpochs, _ := collect(t, l2, 0)
	gotEpochs, _, serr := collectStream(t, l2, 0, 4)
	if serr != nil {
		t.Fatalf("stream over torn tail: %v", serr)
	}
	if len(gotEpochs) != len(wantEpochs) {
		t.Fatalf("stream replayed %d records over torn tail, Replay saw %d", len(gotEpochs), len(wantEpochs))
	}
}

// TestStreamReplayStop: an applier that bails mid-stream (apply error)
// must be able to abandon the channel without leaking the reader — stop
// unblocks a reader mid-send and is idempotent.
func TestStreamReplayStop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := uint64(1); e <= 200; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	records, stop, werr := l.StreamReplay(0, 1) // depth 1: reader blocks on send immediately
	rec, ok := <-records
	if !ok || rec.Epoch != 1 {
		t.Fatalf("first record = %+v, ok=%v", rec, ok)
	}
	stop()
	stop() // idempotent
	// The reader must wind down and close the channel.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-records:
			if !ok {
				if err := werr(); err != nil {
					t.Fatalf("stopped stream reports error: %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("reader did not exit after stop")
		}
	}
}

// TestStreamReplayClosedLog: streaming from a closed log fails fast via
// the error func instead of hanging.
func TestStreamReplayClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	records, stop, werr := l.StreamReplay(0, 4)
	defer stop()
	for range records {
		t.Fatal("closed log produced a record")
	}
	if err := werr(); err == nil {
		t.Fatal("closed log streamed without error")
	}
}
