package wal

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

// TestTailFollowConcurrentGroupCommit is the replication follower's
// correctness contract on the WAL read side: a reader tailing the log
// while concurrent AppendNext appenders race through group commit must
// observe every record exactly once, in strict epoch order, with no torn
// reads — across segment rotations.
func TestTailFollowConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	// Small segments force rotations under the reader's feet; Fsync turns
	// the appender race into real group commits.
	l, err := Open(dir, Config{Fsync: true, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const appenders = 8
	const perAppender = 100
	const total = appenders * perAppender

	// Each payload names its writer and sequence; appenders record the
	// epoch the log assigned so the reader's view can be checked exactly.
	var mu sync.Mutex
	want := make(map[uint64][]byte, total)
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				payload := make([]byte, 24)
				binary.LittleEndian.PutUint32(payload, uint32(id))
				binary.LittleEndian.PutUint32(payload[4:], uint32(i))
				for j := 8; j < len(payload); j++ {
					payload[j] = byte(id*31 + i + j)
				}
				epoch, err := l.AppendNext(payload)
				if err != nil {
					t.Errorf("appender %d: %v", id, err)
					return
				}
				mu.Lock()
				want[epoch] = payload
				mu.Unlock()
			}
		}(a)
	}

	// Tail from the beginning while the appenders run.
	tail := l.Tail(0)
	got := make(map[uint64][]byte, total)
	var lastEpoch uint64
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < total {
		epoch, payload, ok, err := tail.Next()
		if err != nil {
			t.Fatalf("tail after epoch %d: %v", lastEpoch, err)
		}
		if !ok {
			if time.Now().After(deadline) {
				t.Fatalf("tail stalled: %d/%d records after 30s", len(got), total)
			}
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if epoch <= lastEpoch {
			t.Fatalf("tail delivered epoch %d after %d (out of order)", epoch, lastEpoch)
		}
		if _, dup := got[epoch]; dup {
			t.Fatalf("tail delivered epoch %d twice", epoch)
		}
		lastEpoch = epoch
		got[epoch] = append([]byte(nil), payload...)
	}
	wg.Wait()

	// Exactly-once over exactly the assigned epochs (AppendNext allocates
	// densely from 1), with bit-identical payloads.
	for e := uint64(1); e <= total; e++ {
		w, ok := want[e]
		if !ok {
			t.Fatalf("no appender was assigned epoch %d", e)
		}
		g, ok := got[e]
		if !ok {
			t.Fatalf("tail never delivered epoch %d", e)
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("epoch %d: tail read %x, appender wrote %x (torn read?)", e, g, w)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("test never rotated a segment (got %d); rotation-crossing is untested", st.Segments)
	}
}

// TestTailSkipsCheckpointRetiredSegments pins the interplay with
// MarkCheckpoint: retiring segments mid-tail must not error or duplicate —
// the retired records are covered by the owner's checkpoint, so a reader
// positioned before them simply skips ahead to the live tail.
func TestTailSkipsCheckpointRetiredSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	payload := func(e uint64) []byte {
		b := make([]byte, 64)
		binary.LittleEndian.PutUint64(b, e)
		return b
	}
	for e := uint64(1); e <= 20; e++ {
		if err := l.Append(e, payload(e)); err != nil {
			t.Fatal(err)
		}
	}

	// Drain the first few records, then checkpoint past them AND past
	// part of what the reader has not seen yet.
	tail := l.Tail(0)
	for i := 0; i < 3; i++ {
		epoch, _, ok, err := tail.Next()
		if err != nil || !ok || epoch != uint64(i+1) {
			t.Fatalf("prefix read %d: epoch=%d ok=%v err=%v", i, epoch, ok, err)
		}
	}
	if err := l.MarkCheckpoint(12); err != nil {
		t.Fatal(err)
	}

	// The reader resumes somewhere past its watermark with no error, no
	// duplicates, still in order, and reaches the tail.
	last := uint64(3)
	for {
		epoch, p, ok, err := tail.Next()
		if err != nil {
			t.Fatalf("tail after checkpoint: %v", err)
		}
		if !ok {
			break
		}
		if epoch <= last {
			t.Fatalf("epoch %d after %d", epoch, last)
		}
		if got := binary.LittleEndian.Uint64(p); got != epoch {
			t.Fatalf("epoch %d carries payload for %d", epoch, got)
		}
		last = epoch
	}
	if last != 20 {
		t.Fatalf("tail ended at epoch %d, want 20", last)
	}

	// A closed log fails the tail loudly instead of reporting caught-up.
	l.Close()
	if _, _, _, err := tail.Next(); err == nil {
		t.Fatal("tail on a closed log reported no error")
	}
}
