package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collect replays everything after `after` into a slice of (epoch, payload).
func collect(t *testing.T, l *Log, after uint64) (epochs []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(after, func(epoch uint64, payload []byte) error {
		epochs = append(epochs, epoch)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return epochs, payloads
}

func payloadFor(e uint64) []byte {
	return []byte(fmt.Sprintf("batch-%d-%s", e, bytes.Repeat([]byte{byte(e)}, int(e%32))))
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for e := uint64(1); e <= n; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(l *Log, ctx string) {
		t.Helper()
		epochs, payloads := collect(t, l, 0)
		if len(epochs) != n {
			t.Fatalf("%s: replayed %d records, want %d", ctx, len(epochs), n)
		}
		for i, e := range epochs {
			if e != uint64(i+1) {
				t.Fatalf("%s: record %d has epoch %d", ctx, i, e)
			}
			if !bytes.Equal(payloads[i], payloadFor(e)) {
				t.Fatalf("%s: record %d payload mismatch", ctx, i)
			}
		}
	}
	check(l, "live")
	if st := l.Stats(); st.LastEpoch != n || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened log replays the identical sequence and appends after it.
	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	check(l2, "reopened")
	if err := l2.Append(n, []byte("stale")); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if err := l2.Append(n+1, payloadFor(n+1)); err != nil {
		t.Fatal(err)
	}
	if epochs, _ := collect(t, l2, n); len(epochs) != 1 || epochs[0] != n+1 {
		t.Fatalf("tail replay after %d = %v", n, epochs)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 40
	for e := uint64(1); e <= n; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation at 128-byte segments, got %d segments", st.Segments)
	}
	if epochs, _ := collect(t, l, 0); len(epochs) != n {
		t.Fatalf("replayed %d across segments, want %d", len(epochs), n)
	}
}

// TestTornTailTruncation is the crash contract at the record-framing
// level: for every possible truncation length of the log's byte stream,
// reopening recovers exactly the records whose bytes fully survived, and
// appends continue cleanly after them.
func TestTornTailTruncation(t *testing.T) {
	ref := t.TempDir()
	l, err := Open(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var boundaries []int64 // cumulative record end offsets
	off := int64(0)
	for e := uint64(1); e <= n; e++ {
		p := payloadFor(e)
		if err := l.Append(e, p); err != nil {
			t.Fatal(err)
		}
		off += headerSize + int64(len(p))
		boundaries = append(boundaries, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segName := filepath.Join(ref, segment{index: 1}.name())
	full, err := os.ReadFile(segName)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != off {
		t.Fatalf("segment is %d bytes, expected %d", len(full), off)
	}

	survivors := func(cut int64) int {
		k := 0
		for _, b := range boundaries {
			if b <= cut {
				k++
			}
		}
		return k
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segment{index: 1}.name()), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lt, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		epochs, payloads := collect(t, lt, 0)
		want := survivors(cut)
		if len(epochs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(epochs), want)
		}
		for i, e := range epochs {
			if e != uint64(i+1) || !bytes.Equal(payloads[i], payloadFor(e)) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		// The log must accept new appends right after the torn point.
		next := uint64(want + 1)
		if err := lt.Append(next, payloadFor(next)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if epochs, _ := collect(t, lt, 0); len(epochs) != want+1 {
			t.Fatalf("cut %d: %d records after post-recovery append, want %d", cut, len(epochs), want+1)
		}
		lt.Close()
	}
}

// TestCorruptMiddleDiscardsLaterSegments: a flipped bit mid-history must
// not let replay skip a gap — everything from the corruption on is
// discarded at open.
func TestCorruptMiddleDiscardsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 20; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := l.Stats().Segments
	if segsBefore < 3 {
		t.Fatalf("need ≥3 segments for this test, got %d", segsBefore)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the second segment's first record payload.
	second := filepath.Join(dir, segment{index: 2}.name())
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize] ^= 0xff
	if err := os.WriteFile(second, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Config{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	epochs, _ := collect(t, l2, 0)
	if len(epochs) == 0 || len(epochs) >= 20 {
		t.Fatalf("recovered %d records, want the first-segment prefix only", len(epochs))
	}
	for i, e := range epochs {
		if e != uint64(i+1) {
			t.Fatalf("gap in recovered epochs: %v", epochs)
		}
	}
	if st := l2.Stats(); st.Segments > 2 {
		t.Fatalf("later segments survived corruption: %+v", st)
	}
}

func TestMarkCheckpointDropsDeadSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := uint64(1); e <= 30; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	grown := l.Stats()
	if err := l.MarkCheckpoint(30); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Bytes != 0 || st.Segments != 1 {
		t.Fatalf("after covering checkpoint: %+v (was %+v)", st, grown)
	}
	if epochs, _ := collect(t, l, 30); len(epochs) != 0 {
		t.Fatalf("replay after full checkpoint returned %d records", len(epochs))
	}
	// Appends continue with the epoch sequence intact.
	if err := l.Append(31, payloadFor(31)); err != nil {
		t.Fatal(err)
	}
	if epochs, _ := collect(t, l, 30); len(epochs) != 1 || epochs[0] != 31 {
		t.Fatal("post-checkpoint append not replayable")
	}

	// A partial checkpoint keeps the segments holding newer records.
	for e := uint64(32); e <= 60; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.MarkCheckpoint(45); err != nil {
		t.Fatal(err)
	}
	epochs, _ := collect(t, l, 45)
	if len(epochs) != 15 || epochs[0] != 46 || epochs[len(epochs)-1] != 60 {
		t.Fatalf("post-partial-checkpoint replay = %d records [%v..]", len(epochs), epochs[0])
	}
}

// TestAbortLast: a withdrawn record must vanish from replay, survive a
// reopen as gone, free its epoch for re-append, and refuse once anything
// (another append consumed the undo slot via a later abort, a rotation,
// a checkpoint) invalidated the one-deep undo.
func TestAbortLast(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		if err := l.Append(e, payloadFor(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AbortLast(2); err == nil {
		t.Fatal("aborted a non-last record")
	}
	if err := l.AbortLast(3); err != nil {
		t.Fatal(err)
	}
	if epochs, _ := collect(t, l, 0); len(epochs) != 2 || epochs[1] != 2 {
		t.Fatalf("replay after abort = %v, want [1 2]", epochs)
	}
	if err := l.AbortLast(2); err == nil {
		t.Fatal("double abort accepted (undo is one-deep)")
	}
	// The aborted epoch is free again; its re-appended payload wins.
	if err := l.Append(3, []byte("retried")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	epochs, payloads := collect(t, l2, 0)
	if len(epochs) != 3 || string(payloads[2]) != "retried" {
		t.Fatalf("reopen after abort+retry = %v records, last %q", len(epochs), payloads[len(payloads)-1])
	}
	if err := l2.AbortLast(3); err == nil {
		t.Fatal("abort across reopen accepted")
	}
}

func TestWriteFileAtomicAndListEpochFiles(t *testing.T) {
	dir := t.TempDir()
	path := func(e uint64) string { return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.x", e)) }
	for _, e := range []uint64{3, 12, 7} {
		if err := WriteFileAtomic(path(e), func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "epoch %d", e)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ListEpochFiles(dir, "ckpt-", ".x"); len(got) != 3 || got[0] != 12 || got[2] != 3 {
		t.Fatalf("ListEpochFiles = %v, want [12 7 3]", got)
	}
	// A failed write must leave no artifact — not the temp, not the target.
	bad := filepath.Join(dir, "ckpt-0000000000000020.x")
	if err := WriteFileAtomic(bad, func(w io.Writer) error { return fmt.Errorf("boom") }); err == nil {
		t.Fatal("failed write reported success")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("failed write left the target file")
	}
	if strays, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(strays) != 0 {
		t.Fatalf("failed write left temp files %v", strays)
	}
	if b, err := os.ReadFile(path(12)); err != nil || string(b) != "epoch 12" {
		t.Fatalf("published file = %q, %v", b, err)
	}
}

func TestFsyncPolicy(t *testing.T) {
	for _, fsync := range []bool{false, true} {
		dir := t.TempDir()
		l, err := Open(dir, Config{Fsync: fsync})
		if err != nil {
			t.Fatal(err)
		}
		for e := uint64(1); e <= 10; e++ {
			if err := l.Append(e, payloadFor(e)); err != nil {
				t.Fatal(err)
			}
		}
		// Both policies must replay the full prefix after reopen (process
		// death keeps the page cache; only power loss differs).
		l.Close()
		l2, err := Open(dir, Config{Fsync: fsync})
		if err != nil {
			t.Fatal(err)
		}
		if epochs, _ := collect(t, l2, 0); len(epochs) != 10 {
			t.Fatalf("fsync=%v: replayed %d records", fsync, len(epochs))
		}
		l2.Close()
	}
}

// TestAppendNextConcurrent: many goroutines appending through AppendNext
// must produce the contiguous epoch sequence 1..N with every payload
// intact, and under Fsync the group commit must not lose a single record
// across a reopen.
func TestAppendNextConcurrent(t *testing.T) {
	for _, fsync := range []bool{false, true} {
		dir := t.TempDir()
		l, err := Open(dir, Config{Fsync: fsync})
		if err != nil {
			t.Fatal(err)
		}
		const goroutines, perG = 8, 25
		var (
			mu      sync.Mutex
			byEpoch = map[uint64][]byte{}
			wg      sync.WaitGroup
		)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					p := []byte(fmt.Sprintf("g%d-i%d", g, i))
					epoch, err := l.AppendNext(p)
					if err != nil {
						t.Errorf("AppendNext: %v", err)
						return
					}
					mu.Lock()
					byEpoch[epoch] = p
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		const n = goroutines * perG
		st := l.Stats()
		if st.LastEpoch != n || st.Appends != n {
			t.Fatalf("fsync=%v: stats %+v, want lastEpoch=appends=%d", fsync, st, n)
		}
		if fsync && (st.Fsyncs == 0 || st.Fsyncs > st.Appends) {
			t.Fatalf("fsync=%v: %d fsyncs for %d appends", fsync, st.Fsyncs, st.Appends)
		}
		if !fsync && st.Fsyncs != 0 {
			t.Fatalf("fsync=%v: %d fsyncs on the append path", fsync, st.Fsyncs)
		}
		check := func(l *Log, ctx string) {
			t.Helper()
			epochs, payloads := collect(t, l, 0)
			if len(epochs) != n {
				t.Fatalf("%s: replayed %d records, want %d", ctx, len(epochs), n)
			}
			for i, e := range epochs {
				if e != uint64(i+1) {
					t.Fatalf("%s: epoch gap at %d: %v", ctx, i, e)
				}
				if !bytes.Equal(payloads[i], byEpoch[e]) {
					t.Fatalf("%s: epoch %d payload %q, appended %q", ctx, e, payloads[i], byEpoch[e])
				}
			}
		}
		check(l, "live")
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Config{Fsync: fsync})
		if err != nil {
			t.Fatal(err)
		}
		check(l2, "reopened")
		l2.Close()
	}
}

// TestGroupCommitCrashTruncation reuses the torn-tail harness over a log
// written by concurrent group-committed appenders: whatever byte the
// "crash" cuts at, reopening recovers exactly the contiguous epoch prefix
// whose bytes survived — group commit changes when fsyncs happen, never
// the on-disk record sequence.
func TestGroupCommitCrashTruncation(t *testing.T) {
	ref := t.TempDir()
	l, err := Open(ref, Config{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 6, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := l.AppendNext([]byte(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
					t.Errorf("AppendNext: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	const n = goroutines * perG
	full, err := os.ReadFile(filepath.Join(ref, segment{index: 1}.name()))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries come from the framing itself: group commit writes
	// records strictly in epoch order under the log's lock.
	var boundaries []int64
	off := int64(0)
	for int(off) < len(full) {
		rn, _, _, ok := parseRecord(full[off:])
		if !ok {
			t.Fatalf("reference log corrupt at %d", off)
		}
		off += rn
		boundaries = append(boundaries, off)
	}
	if len(boundaries) != n {
		t.Fatalf("reference log has %d records, want %d", len(boundaries), n)
	}
	survivors := func(cut int64) int {
		k := 0
		for _, b := range boundaries {
			if b <= cut {
				k++
			}
		}
		return k
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segment{index: 1}.name()), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lt, err := Open(dir, Config{Fsync: true})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		epochs, _ := collect(t, lt, 0)
		if want := survivors(cut); len(epochs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(epochs), want)
		}
		for i, e := range epochs {
			if e != uint64(i+1) {
				t.Fatalf("cut %d: epoch gap: %v", cut, epochs)
			}
		}
		if _, err := lt.AppendNext([]byte("post-crash")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		lt.Close()
	}
}

func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 4096) // ~a routed 100-update batch
	for _, mode := range []struct {
		name  string
		fsync bool
	}{{"NoFsync", false}, {"Fsync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), Config{Fsync: mode.fsync, SegmentBytes: 64 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)) + headerSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(uint64(i+1), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Group commit: 8 concurrent appenders share fsyncs. The
	// fsyncs/append metric is the amortisation — 1.0 is serial Fsync
	// behaviour, well under 1.0 means one disk flush covered many
	// appends.
	b.Run("FsyncGroup8", func(b *testing.B) {
		l, err := Open(b.TempDir(), Config{Fsync: true, SegmentBytes: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		b.SetBytes(int64(len(payload)) + headerSize)
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := l.AppendNext(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		st := l.Stats()
		if st.Appends > 0 {
			b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/append")
		}
	})
}
