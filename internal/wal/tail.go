package wal

// Tail-follow reads: a TailReader iterates the log's records from a
// watermark forward while appenders keep writing — the read side of the
// serving tier's replication follower, which replays its own WAL tail on
// recovery and must never observe a torn or duplicated record.
//
// Torn-read safety falls out of the append protocol: appendLocked writes
// each framed record with a single Write under l.mu and only then
// publishes the segment's validated byte count, so a reader that snapshots
// the counts under l.mu and reads at most that many bytes sees whole,
// CRC-valid records — even while concurrent AppendNext group commits race.
// Exactly-once falls out of the epoch discipline: epochs are strictly
// increasing across the log, so "newer than the last delivered epoch" is
// a complete dedupe.

import (
	"fmt"
	"os"
	"path/filepath"
)

// TailReader iterates records with epoch > a watermark, in epoch order.
// Not safe for concurrent use by multiple goroutines; safe to use while
// other goroutines Append/AppendNext/rotate. Concurrent MarkCheckpoint is
// tolerated — a retired segment's records are covered by the owner's
// checkpoint, so the reader skips ahead — but concurrent AbortLast is not
// (the aborted record may already have been delivered).
type TailReader struct {
	l    *Log
	last uint64 // newest epoch delivered (floor passed to Tail initially)

	seg    uint64 // current segment index; 0 = not positioned yet
	off    int64  // validated bytes consumed from seg
	buf    []byte // whole validated records, refilled in chunks
	bufOff int
}

// Tail returns a reader positioned after epoch `after`: the first Next
// delivers the oldest record with a greater epoch.
func (l *Log) Tail(after uint64) *TailReader {
	return &TailReader{l: l, last: after}
}

// Next returns the next record, or ok=false when the reader has caught up
// with the log's validated end (more records may appear later — call Next
// again to poll). The returned payload is valid until the next call.
func (t *TailReader) Next() (epoch uint64, payload []byte, ok bool, err error) {
	for {
		for t.bufOff < len(t.buf) {
			n, epoch, payload, ok := parseRecord(t.buf[t.bufOff:])
			if !ok {
				// Unreachable while the append protocol holds: the buffer
				// only ever contains bytes the log counted as validated.
				return 0, nil, false, fmt.Errorf("wal: tail: corrupt record in segment %d", t.seg)
			}
			t.bufOff += int(n)
			if epoch <= t.last {
				continue // already delivered (or below the floor)
			}
			t.last = epoch
			return epoch, payload, true, nil
		}
		more, err := t.refill()
		if err != nil {
			return 0, nil, false, err
		}
		if !more {
			return 0, nil, false, nil
		}
	}
}

// refill loads the next chunk of validated bytes into t.buf, advancing
// across rotated segments and skipping checkpoint-retired ones. Returns
// false with no error when the reader is caught up.
func (t *TailReader) refill() (bool, error) {
	t.buf, t.bufOff = t.buf[:0], 0
	for {
		l := t.l
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return false, ErrClosed
		}
		activeIdx := l.active.index
		if t.seg == 0 {
			// Initial positioning: the oldest live segment that can still
			// hold undelivered records (the active one always qualifies —
			// it may grow).
			t.seg, t.off = activeIdx, 0
			for _, seg := range l.segs {
				if seg.last > t.last || seg.first == 0 {
					t.seg = seg.index
					break
				}
			}
		}
		// Locate the current segment and snapshot its validated size.
		end, found := int64(-1), false
		if t.seg == activeIdx {
			end, found = l.active.bytes, true
		} else {
			for _, seg := range l.segs {
				if seg.index == t.seg {
					end, found = seg.bytes, true
					break
				}
			}
		}
		// The segment we were reading is gone: MarkCheckpoint retired it,
		// meaning every record it held is covered by the owner's
		// checkpoint. Skip to the oldest live segment after it.
		next := activeIdx
		if !found {
			for _, seg := range l.segs {
				if seg.index > t.seg {
					next = seg.index
					break
				}
			}
		}
		l.mu.Unlock()

		switch {
		case !found:
			t.seg, t.off = next, 0
			continue
		case end < t.off:
			return false, fmt.Errorf("wal: tail: segment %d shrank under the reader (%d < %d)", t.seg, end, t.off)
		case end == t.off:
			if t.seg == activeIdx {
				return false, nil // caught up with the validated end
			}
			// Rotated segment fully consumed: move one segment forward.
			// The next live index is re-derived under the lock next pass;
			// incrementing is enough because indices only grow.
			t.seg, t.off = t.seg+1, 0
			continue
		}

		// Read [t.off, end) outside the lock: those bytes are immutable
		// whole records (appends only grow the file past end; only
		// AbortLast violates this, and tailing across aborts is excluded
		// by contract).
		f, err := os.Open(filepath.Join(l.dir, segment{index: t.seg}.name()))
		if err != nil {
			return false, fmt.Errorf("wal: tail: opening segment: %w", err)
		}
		n := end - t.off
		if cap(t.buf) < int(n) {
			t.buf = make([]byte, n)
		}
		t.buf = t.buf[:n]
		_, err = f.ReadAt(t.buf, t.off)
		f.Close()
		if err != nil {
			return false, fmt.Errorf("wal: tail: reading segment %d: %w", t.seg, err)
		}
		t.off = end
		return true, nil
	}
}
