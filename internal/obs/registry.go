package obs

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// MetricType is the exposition TYPE of a metric family.
type MetricType uint8

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// sample is one exposition line (or, for histograms, one bucket series).
type sample struct {
	labels []Label
	value  float64
	hist   *HistSnapshot // non-nil for histogram samples
}

// family groups every sample of one metric name under one HELP/TYPE pair.
type family struct {
	name    string
	help    string
	typ     MetricType
	samples []sample
}

// Emitter receives metrics during one collection pass. Families appear in
// the exposition in first-emission order and samples in emission order, so
// a collector that emits deterministically produces a byte-stable scrape
// (modulo values) — which keeps the conformance test's diffs readable.
type Emitter struct {
	fams  []*family
	index map[string]*family
	errs  []error
}

func (e *Emitter) family(name, help string, typ MetricType) *family {
	if f, ok := e.index[name]; ok {
		if f.typ != typ {
			e.errs = append(e.errs, fmt.Errorf("obs: metric %q emitted as both %s and %s", name, f.typ, typ))
		}
		return f
	}
	if !validMetricName(name) {
		e.errs = append(e.errs, fmt.Errorf("obs: invalid metric name %q", name))
	}
	f := &family{name: name, help: help, typ: typ}
	e.index[name] = f
	e.fams = append(e.fams, f)
	return f
}

func (e *Emitter) checkLabels(name string, labels []Label, histogram bool) {
	for _, l := range labels {
		if !validLabelName(l.Name) {
			e.errs = append(e.errs, fmt.Errorf("obs: metric %q: invalid label name %q", name, l.Name))
		}
		if histogram && l.Name == "le" {
			e.errs = append(e.errs, fmt.Errorf("obs: metric %q: label \"le\" is reserved on histograms", name))
		}
	}
}

// Counter emits one cumulative counter sample.
func (e *Emitter) Counter(name, help string, value float64, labels ...Label) {
	e.checkLabels(name, labels, false)
	f := e.family(name, help, TypeCounter)
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

// Gauge emits one instantaneous gauge sample.
func (e *Emitter) Gauge(name, help string, value float64, labels ...Label) {
	e.checkLabels(name, labels, false)
	f := e.family(name, help, TypeGauge)
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

// Histogram emits one histogram sample from a power-of-two bucket
// snapshot; the encoder renders it as cumulative `le` buckets (in
// seconds) plus `_sum` and `_count`.
func (e *Emitter) Histogram(name, help string, snap HistSnapshot, labels ...Label) {
	e.checkLabels(name, labels, true)
	f := e.family(name, help, TypeHistogram)
	h := snap
	f.samples = append(f.samples, sample{labels: labels, hist: &h})
}

// Registry gathers metrics on demand: each scrape runs every registered
// collector against a fresh Emitter and encodes the result in Prometheus
// text exposition format. Registering is cheap; nothing is retained
// between scrapes except the live instruments the caller created.
type Registry struct {
	mu          sync.Mutex
	collectors  []func(*Emitter)
	constLabels []Label
	start       time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{start: time.Now()}
}

// SetConstLabels attaches labels to every sample the registry exposes
// (e.g. role="leader", rank="0"). Call before serving.
func (r *Registry) SetConstLabels(labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.constLabels = labels
}

// Collect registers a collection callback, run on every scrape in
// registration order. Callbacks must be safe to call concurrently with
// the process's hot paths (snapshot atomics, don't lock write paths).
func (r *Registry) Collect(fn func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// CollectGoRuntime registers the standard process-health series every
// daemon exposes: goroutines, heap, GC totals, uptime.
func (r *Registry) CollectGoRuntime() {
	start := r.start
	r.Collect(func(e *Emitter) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		e.Gauge("go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
		e.Gauge("go_gomaxprocs", "GOMAXPROCS.", float64(runtime.GOMAXPROCS(0)))
		e.Gauge("go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
		e.Gauge("go_mem_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
		e.Counter("go_mem_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", float64(ms.TotalAlloc))
		e.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
		e.Counter("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9)
		e.Gauge("process_uptime_seconds", "Seconds since the registry was created.", time.Since(start).Seconds())
	})
}

// gather runs the collectors and returns the families plus any emission
// errors (bad names, type conflicts).
func (r *Registry) gather() ([]*family, []error) {
	r.mu.Lock()
	collectors := r.collectors
	constLabels := r.constLabels
	r.mu.Unlock()
	e := &Emitter{index: map[string]*family{}}
	for _, fn := range collectors {
		fn(e)
	}
	if len(constLabels) > 0 {
		for _, f := range e.fams {
			for i := range f.samples {
				f.samples[i].labels = append(constLabels, f.samples[i].labels...)
			}
		}
	}
	return e.fams, e.errs
}

// Expose encodes one scrape in Prometheus text exposition format.
func (r *Registry) Expose() ([]byte, error) {
	fams, errs := r.gather()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return encodeExposition(fams)
}

// ServeHTTP serves the exposition — mount at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data, err := r.Expose()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(data)
}

// Counter is a live monotone counter instrument (use NewCounter).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a live instantaneous-value instrument (use NewGauge).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewCounter creates and registers a live counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.Collect(func(e *Emitter) {
		e.Counter(name, help, float64(c.Value()), labels...)
	})
	return c
}

// NewGauge creates and registers a live gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.Collect(func(e *Emitter) {
		e.Gauge(name, help, float64(g.Value()), labels...)
	})
	return g
}

// NewHistogram creates and registers a live latency histogram.
func (r *Registry) NewHistogram(name, help string, labels ...Label) *LatencyHist {
	h := &LatencyHist{}
	r.Collect(func(e *Emitter) {
		e.Histogram(name, help, h.Snapshot(), labels...)
	})
	return h
}

// sortLabels returns labels sorted by name (a copy; emission order is
// preserved in samples, sorting happens only for duplicate detection).
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
