package obs

import (
	"strings"
	"testing"
	"time"
)

// buildRegistry assembles a registry exercising every instrument kind,
// labels, and the runtime collector.
func buildRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.CollectGoRuntime()
	c := r.NewCounter("test_events_total", "Events observed.")
	c.Add(41)
	c.Inc()
	g := r.NewGauge("test_depth", "Current depth.")
	g.Set(-3)
	h := r.NewHistogram("test_wait_seconds", "Wait time.", L("stage", "apply"))
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	r.Collect(func(e *Emitter) {
		e.Counter("test_bytes_total", "Bytes per direction.", 10, L("dir", "in"))
		e.Counter("test_bytes_total", "Bytes per direction.", 20, L("dir", "out"))
		e.Gauge("test_tricky_label", "Escaping.", 1, L("v", "a\\b\"c\nd"))
	})
	return r
}

func TestExpositionConformance(t *testing.T) {
	data, err := buildRegistry(t).Expose()
	if err != nil {
		t.Fatalf("Expose: %v", err)
	}
	exp, err := LintExposition(data)
	if err != nil {
		t.Fatalf("lint failed:\n%s\nerror: %v", data, err)
	}
	if v, ok := exp.Value("test_events_total"); !ok || v != 42 {
		t.Fatalf("test_events_total = %v, %v; want 42, true", v, ok)
	}
	if v, ok := exp.Value("test_depth"); !ok || v != -3 {
		t.Fatalf("test_depth = %v, %v; want -3, true", v, ok)
	}
	if v, ok := exp.Value("test_bytes_total", L("dir", "out")); !ok || v != 20 {
		t.Fatalf("test_bytes_total{dir=out} = %v, %v; want 20, true", v, ok)
	}
	if v, ok := exp.Value("test_tricky_label", L("v", "a\\b\"c\nd")); !ok || v != 1 {
		t.Fatalf("escaped label round-trip failed: %v, %v", v, ok)
	}
	if v, ok := exp.Value("test_wait_seconds_count", L("stage", "apply")); !ok || v != 100 {
		t.Fatalf("histogram _count = %v, %v; want 100, true", v, ok)
	}
	if exp.HistogramCount() != 1 {
		t.Fatalf("HistogramCount = %d, want 1", exp.HistogramCount())
	}
	if got := exp.Types["test_wait_seconds"]; got != "histogram" {
		t.Fatalf("TYPE test_wait_seconds = %q", got)
	}
}

func TestExpositionConstLabels(t *testing.T) {
	r := NewRegistry()
	r.SetConstLabels(L("role", "leader"), L("rank", "0"))
	r.NewCounter("x_total", "X.").Inc()
	data, err := r.Expose()
	if err != nil {
		t.Fatalf("Expose: %v", err)
	}
	exp, err := LintExposition(data)
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, data)
	}
	if v, ok := exp.Value("x_total", L("role", "leader"), L("rank", "0")); !ok || v != 1 {
		t.Fatalf("const labels missing: %v %v\n%s", v, ok, data)
	}
}

func TestExpositionRejectsBadEmission(t *testing.T) {
	cases := []struct {
		name string
		fn   func(e *Emitter)
	}{
		{"bad metric name", func(e *Emitter) { e.Counter("9bad", "x", 1) }},
		{"bad label name", func(e *Emitter) { e.Counter("ok_total", "x", 1, L("9bad", "v")) }},
		{"reserved le", func(e *Emitter) { e.Histogram("h_seconds", "x", HistSnapshot{}, L("le", "1")) }},
		{"type conflict", func(e *Emitter) {
			e.Counter("twice", "x", 1)
			e.Gauge("twice", "x", 1)
		}},
		{"duplicate sample", func(e *Emitter) {
			e.Counter("dup_total", "x", 1, L("a", "b"))
			e.Counter("dup_total", "x", 2, L("a", "b"))
		}},
	}
	for _, tc := range cases {
		r := NewRegistry()
		r.Collect(tc.fn)
		if _, err := r.Expose(); err == nil {
			t.Errorf("%s: Expose accepted invalid emission", tc.name)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"no TYPE", "orphan_total 1\n"},
		{"bad value", "# TYPE x counter\nx abc\n"},
		{"negative counter", "# TYPE x counter\nx -1\n"},
		{"duplicate series", "# TYPE x gauge\nx 1\nx 2\n"},
		{"le not increasing", "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 1` + "\n" + `h_bucket{le="0.1"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n"},
		{"cumulative decreases", "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="0.2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n"},
		{"missing +Inf", "# TYPE h histogram\n" + `h_bucket{le="0.1"} 1` + "\nh_sum 1\nh_count 1\n"},
		{"count mismatch", "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 4\n"},
		{"missing sum", "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 1` + "\nh_count 1\n"},
		{"unterminated label", "# TYPE x gauge\n" + `x{a="b 1` + "\n"},
		{"duplicate TYPE", "# TYPE x gauge\n# TYPE x gauge\nx 1\n"},
	}
	for _, tc := range cases {
		if _, err := LintExposition([]byte(tc.doc)); err == nil {
			t.Errorf("%s: lint accepted malformed exposition:\n%s", tc.name, tc.doc)
		}
	}
}

func TestSeriesCountCollapsesHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "x")
	h.Observe(time.Millisecond)
	r.NewCounter("c_total", "x").Inc()
	data, err := r.Expose()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := LintExposition(data)
	if err != nil {
		t.Fatal(err)
	}
	// One histogram series + one counter series, regardless of bucket count.
	if got := exp.SeriesCount(); got != 2 {
		t.Fatalf("SeriesCount = %d, want 2\n%s", got, data)
	}
	if !strings.Contains(string(data), `h_seconds_bucket{le="+Inf"}`) {
		t.Fatalf("missing +Inf bucket:\n%s", data)
	}
}
