package obs

// The batch flight recorder: every batch admitted to the serve write path
// carries a BatchTrace — monotone stage-span offsets stamped as the batch
// moves admit → wal_append → durable → apply → publish → replicate →
// fanout — and the completed trace is copied into a fixed-size lock-free
// ring of the last N batches. /debug/traces drains the ring; a slow-batch
// threshold surfaces outliers as structured log lines the moment they
// complete, so "where did this 9.8ms batch go?" is answerable without a
// profiler attached.
//
// The hot path (Enter/Exit during the batch, Record at completion) is
// alloc-free and lock-free: spans are fixed-array offsets from one
// time.Now() taken at admission (monotone by construction — time.Since
// reads the monotonic clock), and Record is a seqlock-style slot write —
// one CAS to claim the slot, plain atomic stores for the payload, one
// release store. Readers validate the slot version before and after
// copying; a reader that loses the race to a wrapping writer just skips
// the slot. All payload accesses are atomic word operations, so the ring
// is clean under the race detector as well as the memory model.

import (
	"encoding/json"
	"sync/atomic"
	"time"
)

// Stage indexes one pipeline stage span within a BatchTrace, in temporal
// order of the write path.
type Stage int

const (
	// StageAdmit spans the admission critical section: in-flight
	// validation (durable servers) under the admission lock.
	StageAdmit Stage = iota
	// StageWALAppend spans the WAL record append (no-wait on the pipelined
	// path; append+fsync on the serial baseline).
	StageWALAppend
	// StageDurable spans the residual wait until a group-commit fsync
	// covers the record — near zero when the submitter's own wait already
	// drove the commit while earlier epochs applied.
	StageDurable
	// StageApply spans the backend ApplyBatch call.
	StageApply
	// StagePublish spans the copy-on-write snapshot rebuild + pointer store.
	StagePublish
	// StageReplicate spans the replication hub's record/enqueue (zero-width
	// when replication is not running).
	StageReplicate
	// StageFanout spans the subscriber label-change fan-out (zero-width
	// with no subscribers).
	StageFanout

	// NumStages is the span-array size.
	NumStages = int(StageFanout) + 1
)

var stageNames = [NumStages]string{
	"admit", "wal_append", "durable", "apply", "publish", "replicate", "fanout",
}

func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Span is one stage's [start, end) window as nanosecond offsets from the
// trace's Start. Offsets come from the monotonic clock, so within a trace
// they are totally ordered even across wall-clock steps.
type Span struct {
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
}

// BatchTrace is one batch's ride through the write path.
type BatchTrace struct {
	Seq      uint64 // recorder sequence number (assigned by Record)
	Epoch    uint64 // published epoch (0 for rejected batches)
	Updates  int    // updates in the batch
	Rejected bool
	Start    time.Time // wall-clock admission time
	Spans    [NumStages]Span
}

// Begin stamps the trace's start and clears prior state. Must be called
// before any Enter/Exit.
func (t *BatchTrace) Begin(updates int) {
	*t = BatchTrace{Updates: updates, Start: time.Now()}
}

func (t *BatchTrace) since() int64 { return int64(time.Since(t.Start)) }

// Enter stamps stage s's start offset.
func (t *BatchTrace) Enter(s Stage) { t.Spans[s].StartNS = t.since() }

// Exit stamps stage s's end offset.
func (t *BatchTrace) Exit(s Stage) { t.Spans[s].EndNS = t.since() }

// TotalNS is the trace's end-to-end duration: the latest span end.
func (t *BatchTrace) TotalNS() int64 {
	var max int64
	for _, sp := range t.Spans {
		if sp.EndNS > max {
			max = sp.EndNS
		}
	}
	return max
}

// stageJSON is the wire shape of one stage span in /debug/traces.
type stageJSON struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	DurNS   int64  `json:"dur_ns"`
}

type traceJSON struct {
	Seq      uint64      `json:"seq"`
	Epoch    uint64      `json:"epoch"`
	Updates  int         `json:"updates"`
	Rejected bool        `json:"rejected,omitempty"`
	Start    time.Time   `json:"start"`
	TotalNS  int64       `json:"total_ns"`
	Stages   []stageJSON `json:"stages"`
}

// MarshalJSON renders the trace with named stages in pipeline order, each
// with its duration, so /debug/traces is readable without knowing the
// stage enum.
func (t BatchTrace) MarshalJSON() ([]byte, error) {
	out := traceJSON{
		Seq:      t.Seq,
		Epoch:    t.Epoch,
		Updates:  t.Updates,
		Rejected: t.Rejected,
		Start:    t.Start,
		TotalNS:  t.TotalNS(),
		Stages:   make([]stageJSON, NumStages),
	}
	for i := 0; i < NumStages; i++ {
		sp := t.Spans[i]
		out.Stages[i] = stageJSON{
			Stage:   Stage(i).String(),
			StartNS: sp.StartNS,
			EndNS:   sp.EndNS,
			DurNS:   sp.EndNS - sp.StartNS,
		}
	}
	return json.Marshal(out)
}

// traceWords is the flattened atomic-word footprint of one slot's payload:
// seq, epoch, updates|rejected, start unix-ns, then NumStages (start, end)
// pairs.
const traceWords = 4 + 2*NumStages

type traceSlot struct {
	// ver is the seqlock version: odd while a writer owns the slot. The
	// slot is claimed by CAS, so two wrapping writers can never interleave
	// payload stores — the loser drops its trace instead.
	ver atomic.Uint64
	w   [traceWords]atomic.Int64
}

func (sl *traceSlot) store(t *BatchTrace) {
	sl.w[0].Store(int64(t.Seq))
	sl.w[1].Store(int64(t.Epoch))
	packed := int64(t.Updates) << 1
	if t.Rejected {
		packed |= 1
	}
	sl.w[2].Store(packed)
	sl.w[3].Store(t.Start.UnixNano())
	for i := 0; i < NumStages; i++ {
		sl.w[4+2*i].Store(t.Spans[i].StartNS)
		sl.w[5+2*i].Store(t.Spans[i].EndNS)
	}
}

// read copies the slot into t, returning false if a writer was active or
// overwrote the slot mid-copy.
func (sl *traceSlot) read(t *BatchTrace) bool {
	v1 := sl.ver.Load()
	if v1&1 == 1 {
		return false
	}
	t.Seq = uint64(sl.w[0].Load())
	t.Epoch = uint64(sl.w[1].Load())
	packed := sl.w[2].Load()
	t.Updates = int(packed >> 1)
	t.Rejected = packed&1 == 1
	t.Start = time.Unix(0, sl.w[3].Load())
	for i := 0; i < NumStages; i++ {
		t.Spans[i].StartNS = sl.w[4+2*i].Load()
		t.Spans[i].EndNS = sl.w[5+2*i].Load()
	}
	return sl.ver.Load() == v1
}

// DefaultTraceRing is the default flight-recorder capacity.
const DefaultTraceRing = 1024

// FlightRecorder is the fixed-size lock-free ring of the last N batch
// traces. Record never blocks and never allocates; Snapshot (the cold
// read path) allocates its result.
type FlightRecorder struct {
	slots  []traceSlot
	mask   uint64
	next   atomic.Uint64 // last claimed sequence; sequences start at 1
	slowNS int64
	onSlow func(BatchTrace)
}

// NewFlightRecorder builds a recorder holding the last size traces
// (rounded up to a power of two; <=0 means DefaultTraceRing).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultTraceRing
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]traceSlot, n), mask: uint64(n - 1)}
}

// SetSlowHook arranges for fn to be called (on the recording goroutine)
// with every trace whose total duration reaches threshold. Zero threshold
// disables. Must be set before recording starts; fn must not call back
// into the recorder.
func (r *FlightRecorder) SetSlowHook(threshold time.Duration, fn func(BatchTrace)) {
	r.slowNS = int64(threshold)
	r.onSlow = fn
}

// Cap returns the ring capacity.
func (r *FlightRecorder) Cap() int { return len(r.slots) }

// Recorded returns the total number of traces recorded (including any
// dropped on a wrap race, which count as recorded-then-overwritten).
func (r *FlightRecorder) Recorded() uint64 { return r.next.Load() }

// Record copies the trace into the ring, assigning t.Seq. Lock-free and
// alloc-free: one atomic claim, one CAS, fixed atomic stores. If the ring
// wraps onto a slot another writer still owns — requires Cap concurrent
// in-flight Records — the trace is dropped rather than torn.
func (r *FlightRecorder) Record(t *BatchTrace) {
	seq := r.next.Add(1)
	t.Seq = seq
	sl := &r.slots[seq&r.mask]
	v := sl.ver.Load()
	if v&1 == 1 || !sl.ver.CompareAndSwap(v, v+1) {
		return // wrapped onto an active writer: drop, don't tear
	}
	sl.store(t)
	sl.ver.Add(1)
	if r.slowNS > 0 && r.onSlow != nil && t.TotalNS() >= r.slowNS {
		r.onSlow(*t)
	}
}

// Snapshot returns the retained traces with total duration >= min, oldest
// first. Slots being overwritten during the scan are skipped, never torn.
func (r *FlightRecorder) Snapshot(min time.Duration) []BatchTrace {
	last := r.next.Load()
	if last == 0 {
		return nil
	}
	first := uint64(1)
	if n := uint64(len(r.slots)); last > n {
		first = last - n + 1
	}
	out := make([]BatchTrace, 0, last-first+1)
	for seq := first; seq <= last; seq++ {
		var t BatchTrace
		if !r.slots[seq&r.mask].read(&t) {
			continue
		}
		if t.Seq != seq {
			continue // overwritten since we computed the range
		}
		if min > 0 && time.Duration(t.TotalNS()) < min {
			continue
		}
		out = append(out, t)
	}
	return out
}
