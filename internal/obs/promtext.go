package obs

// Prometheus text exposition format (version 0.0.4): encoder for the
// registry's families, plus a strict parser/linter used by the
// conformance tests and by rippleload's -scrape-metrics parity check.
// Both halves are hand-rolled against the published format so the module
// stays dependency-free; the linter is deliberately stricter than real
// scrapers (it rejects anything the format merely tolerates).

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

func encodeExposition(fams []*family) ([]byte, error) {
	var b bytes.Buffer
	for _, f := range fams {
		if err := checkDuplicateSamples(f); err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for i := range f.samples {
			s := &f.samples[i]
			if f.typ == TypeHistogram {
				encodeHistogram(&b, f.name, s)
				continue
			}
			b.WriteString(f.name)
			writeLabels(&b, s.labels, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
		}
	}
	return b.Bytes(), nil
}

// encodeHistogram renders one power-of-two snapshot as cumulative `le`
// buckets in seconds. Bucket i of the snapshot holds durations in
// [2^(i-1), 2^i) ns, so its upper bound is 2^i ns = 2^i/1e9 s; the exact
// 2^i boundary value lands one bucket high, a quantization the 2×-wide
// buckets already dwarf.
func encodeHistogram(b *bytes.Buffer, name string, s *sample) {
	var cum uint64
	for i, c := range s.hist.Counts {
		cum += c
		le := math.Ldexp(1e-9, i) // 2^i ns in seconds
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, s.labels, "le", le)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabels(b, s.labels, "le", math.Inf(1))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(s.hist.Count, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, s.labels, "", 0)
	b.WriteByte(' ')
	b.WriteString(formatValue(float64(s.hist.SumNS) / 1e9))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, s.labels, "", 0)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(s.hist.Count, 10))
	b.WriteByte('\n')
}

// writeLabels renders `{a="b",...}` (nothing when empty). leName, when
// non-empty, appends the histogram bucket bound last.
func writeLabels(b *bytes.Buffer, labels []Label, leName string, le float64) {
	if len(labels) == 0 && leName == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func checkDuplicateSamples(f *family) error {
	seen := map[string]bool{}
	for i := range f.samples {
		key := labelKey(f.samples[i].labels)
		if seen[key] {
			return fmt.Errorf("obs: metric %q: duplicate sample with labels {%s}", f.name, key)
		}
		seen[key] = true
	}
	return nil
}

func labelKey(labels []Label) string {
	sorted := sortLabels(labels)
	var sb strings.Builder
	for i, l := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Parser / linter.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed scrape: declared family types plus every sample
// in document order.
type Exposition struct {
	Types   map[string]string // family name -> TYPE
	Samples []Sample
}

// Value returns the value of the unique sample with the given name and an
// exact (subset-free) label match. The second return is false when absent.
func (e *Exposition) Value(name string, labels ...Label) (float64, bool) {
	for i := range e.Samples {
		s := &e.Samples[i]
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Name] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// SeriesCount returns the number of distinct (name, labelset) series,
// counting a histogram's buckets/_sum/_count as one series per labelset.
func (e *Exposition) SeriesCount() int {
	seen := map[string]bool{}
	for i := range e.Samples {
		s := &e.Samples[i]
		name := s.Name
		var labels []Label
		if base, isHist := e.histogramBase(name); isHist {
			name = base
			for k, v := range s.Labels {
				if k == "le" {
					continue
				}
				labels = append(labels, Label{k, v})
			}
		} else {
			for k, v := range s.Labels {
				labels = append(labels, Label{k, v})
			}
		}
		seen[name+"\x00"+labelKey(labels)] = true
	}
	return len(seen)
}

// HistogramCount returns the number of histogram families with at least
// one bucket sample.
func (e *Exposition) HistogramCount() int {
	n := 0
	seen := map[string]bool{}
	for i := range e.Samples {
		base, isHist := e.histogramBase(e.Samples[i].Name)
		if isHist && strings.HasSuffix(e.Samples[i].Name, "_bucket") && !seen[base] {
			seen[base] = true
			n++
		}
	}
	return n
}

// histogramBase maps a _bucket/_sum/_count sample name to its family name
// when that family is declared as a histogram.
func (e *Exposition) histogramBase(name string) (string, bool) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && e.Types[base] == "histogram" {
			return base, true
		}
	}
	return name, false
}

// ParseExposition parses Prometheus text exposition format strictly:
// malformed lines, bad charsets, or unknown escapes are errors.
func ParseExposition(data []byte) (*Exposition, error) {
	e := &Exposition{Types: map[string]string{}}
	helpSeen := map[string]bool{}
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch kind {
			case "TYPE":
				if _, dup := e.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %q", lineNo, rest, name)
				}
				e.Types[name] = rest
			case "HELP":
				if helpSeen[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				helpSeen[name] = true
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		e.Samples = append(e.Samples, s)
	}
	return e, nil
}

func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimPrefix(body, " ")
	switch {
	case strings.HasPrefix(body, "TYPE "):
		kind = "TYPE"
		body = strings.TrimPrefix(body, "TYPE ")
	case strings.HasPrefix(body, "HELP "):
		kind = "HELP"
		body = strings.TrimPrefix(body, "HELP ")
	default:
		return "", "", "", nil // free-form comment: legal, ignored
	}
	name, rest, _ = strings.Cut(body, " ")
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("%s comment names invalid metric %q", kind, name)
	}
	return kind, name, rest, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && line[i] == ' ' {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j == len(line) {
				return s, fmt.Errorf("unterminated label in %q", line)
			}
			lname := strings.TrimSpace(line[i:j])
			if !validLabelName(lname) {
				return s, fmt.Errorf("invalid label name %q", lname)
			}
			i = j + 1
			if i >= len(line) || line[i] != '"' {
				return s, fmt.Errorf("label %q: value not quoted", lname)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(line) {
					return s, fmt.Errorf("label %q: unterminated value", lname)
				}
				c := line[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					if i+1 >= len(line) {
						return s, fmt.Errorf("label %q: trailing backslash", lname)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("label %q: bad escape \\%c", lname, line[i+1])
					}
					i += 2
					continue
				}
				val.WriteByte(c)
				i++
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("duplicate label %q", lname)
			}
			s.Labels[lname] = val.String()
			for i < len(line) && line[i] == ' ' {
				i++
			}
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	rest := strings.TrimSpace(line[i:])
	// A timestamp field after the value is legal in the format; we never
	// emit one, and the linter treats any second field as an error.
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// LintExposition parses data and verifies the format invariants the
// conformance test pins: every sample belongs to a declared family, TYPE
// values are consistent with sample shapes, histogram `le` buckets are
// monotone non-decreasing with a `+Inf` bucket equal to `_count`, `_sum`
// and `_count` are present per bucket labelset, counters are finite and
// non-negative, and no (name, labelset) repeats.
func LintExposition(data []byte) (*Exposition, error) {
	e, err := ParseExposition(data)
	if err != nil {
		return nil, err
	}
	type histSeries struct {
		les        []float64
		cums       []float64
		hasInf     bool
		infCount   float64
		sum, count *float64
	}
	hists := map[string]*histSeries{}
	seen := map[string]bool{}
	for i := range e.Samples {
		s := &e.Samples[i]
		base, isHist := e.histogramBase(s.Name)
		famType, declared := e.Types[base]
		if !declared {
			return nil, fmt.Errorf("sample %q: no TYPE declared for family %q", s.Name, base)
		}
		key := s.Name + "\x00" + labelKeyMap(s.Labels)
		if seen[key] {
			return nil, fmt.Errorf("duplicate sample %q {%s}", s.Name, labelKeyMap(s.Labels))
		}
		seen[key] = true
		if famType == "counter" {
			if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
				return nil, fmt.Errorf("counter %q has non-finite or negative value %v", s.Name, s.Value)
			}
		}
		if !isHist {
			if famType == "histogram" {
				return nil, fmt.Errorf("histogram family %q has plain sample %q", base, s.Name)
			}
			continue
		}
		// Histogram component sample: group by labelset sans le.
		var rest []Label
		for k, v := range s.Labels {
			if k != "le" {
				rest = append(rest, Label{k, v})
			}
		}
		hkey := base + "\x00" + labelKey(rest)
		hs := hists[hkey]
		if hs == nil {
			hs = &histSeries{}
			hists[hkey] = hs
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return nil, fmt.Errorf("histogram %q: bucket without le label", base)
			}
			le, err := parseValue(leStr)
			if err != nil || math.IsNaN(le) {
				return nil, fmt.Errorf("histogram %q: bad le %q", base, leStr)
			}
			if math.IsInf(le, 1) {
				hs.hasInf = true
				hs.infCount = s.Value
			}
			hs.les = append(hs.les, le)
			hs.cums = append(hs.cums, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			v := s.Value
			hs.sum = &v
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			hs.count = &v
		}
	}
	for hkey, hs := range hists {
		base := hkey[:strings.Index(hkey, "\x00")]
		if len(hs.les) == 0 {
			return nil, fmt.Errorf("histogram %q: no buckets", base)
		}
		for i := 1; i < len(hs.les); i++ {
			if hs.les[i] <= hs.les[i-1] {
				return nil, fmt.Errorf("histogram %q: le not strictly increasing (%v after %v)", base, hs.les[i], hs.les[i-1])
			}
			if hs.cums[i] < hs.cums[i-1] {
				return nil, fmt.Errorf("histogram %q: cumulative bucket counts decrease (%v after %v at le %v)", base, hs.cums[i], hs.cums[i-1], hs.les[i])
			}
		}
		if !hs.hasInf {
			return nil, fmt.Errorf("histogram %q: missing +Inf bucket", base)
		}
		if hs.sum == nil {
			return nil, fmt.Errorf("histogram %q: missing _sum", base)
		}
		if hs.count == nil {
			return nil, fmt.Errorf("histogram %q: missing _count", base)
		}
		if *hs.count != hs.infCount {
			return nil, fmt.Errorf("histogram %q: _count %v != +Inf bucket %v", base, *hs.count, hs.infCount)
		}
	}
	return e, nil
}

func labelKeyMap(m map[string]string) string {
	var labels []Label
	for k, v := range m {
		labels = append(labels, Label{k, v})
	}
	return labelKey(labels)
}
