package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the daemons' structured logger: level is one of
// "debug", "info", "warn", "error" and format is "text" or "json" (the
// -log-level / -log-format flags). An error means the flag values were
// invalid.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library components whose owner did not wire a logger.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
