package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func stampAll(t *BatchTrace) {
	for s := Stage(0); int(s) < NumStages; s++ {
		t.Enter(s)
		t.Exit(s)
	}
}

func TestFlightRecorderRoundTrip(t *testing.T) {
	r := NewFlightRecorder(8)
	var tr BatchTrace
	tr.Begin(7)
	stampAll(&tr)
	tr.Epoch = 42
	r.Record(&tr)
	got := r.Snapshot(0)
	if len(got) != 1 {
		t.Fatalf("Snapshot returned %d traces, want 1", len(got))
	}
	g := got[0]
	if g.Seq != 1 || g.Epoch != 42 || g.Updates != 7 || g.Rejected {
		t.Fatalf("trace fields mangled: %+v", g)
	}
	if g.Start.UnixNano() != tr.Start.UnixNano() {
		t.Fatalf("start time mangled: %v vs %v", g.Start, tr.Start)
	}
	if g.Spans != tr.Spans {
		t.Fatalf("spans mangled: %+v vs %+v", g.Spans, tr.Spans)
	}
}

func TestFlightRecorderWrapKeepsNewest(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		var tr BatchTrace
		tr.Begin(i)
		stampAll(&tr)
		r.Record(&tr)
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("Snapshot returned %d traces, want 4", len(got))
	}
	for i, g := range got {
		if want := uint64(7 + i); g.Seq != want {
			t.Fatalf("trace %d: seq %d, want %d (oldest-first)", i, g.Seq, want)
		}
	}
}

func TestFlightRecorderMinDurationFilter(t *testing.T) {
	r := NewFlightRecorder(8)
	var fast BatchTrace
	fast.Begin(1)
	fast.Spans[StageApply] = Span{StartNS: 0, EndNS: int64(time.Microsecond)}
	r.Record(&fast)
	var slow BatchTrace
	slow.Begin(1)
	slow.Spans[StageApply] = Span{StartNS: 0, EndNS: int64(50 * time.Millisecond)}
	r.Record(&slow)
	got := r.Snapshot(time.Millisecond)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("min-duration filter returned %+v, want only the slow trace", got)
	}
}

func TestFlightRecorderSlowHook(t *testing.T) {
	r := NewFlightRecorder(8)
	var fired atomic.Int64
	r.SetSlowHook(time.Millisecond, func(tr BatchTrace) { fired.Add(1) })
	var fast, slow BatchTrace
	fast.Begin(1)
	fast.Spans[StageApply].EndNS = int64(time.Microsecond)
	r.Record(&fast)
	slow.Begin(1)
	slow.Spans[StageApply].EndNS = int64(2 * time.Millisecond)
	r.Record(&slow)
	if fired.Load() != 1 {
		t.Fatalf("slow hook fired %d times, want 1", fired.Load())
	}
}

func TestTraceSpansMonotone(t *testing.T) {
	var tr BatchTrace
	tr.Begin(1)
	for s := Stage(0); int(s) < NumStages; s++ {
		tr.Enter(s)
		tr.Exit(s)
	}
	var prev int64
	for s := 0; s < NumStages; s++ {
		sp := tr.Spans[s]
		if sp.EndNS < sp.StartNS {
			t.Fatalf("stage %s: end %d before start %d", Stage(s), sp.EndNS, sp.StartNS)
		}
		if sp.StartNS < prev {
			t.Fatalf("stage %s: start %d before previous stage start %d", Stage(s), sp.StartNS, prev)
		}
		prev = sp.StartNS
	}
}

func TestTraceJSONNamesAllStages(t *testing.T) {
	var tr BatchTrace
	tr.Begin(3)
	stampAll(&tr)
	tr.Epoch = 9
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Epoch  uint64 `json:"epoch"`
		Stages []struct {
			Stage string `json:"stage"`
			DurNS int64  `json:"dur_ns"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Epoch != 9 || len(wire.Stages) != NumStages {
		t.Fatalf("wire shape wrong: %s", data)
	}
	want := []string{"admit", "wal_append", "durable", "apply", "publish", "replicate", "fanout"}
	for i, st := range wire.Stages {
		if st.Stage != want[i] {
			t.Fatalf("stage %d named %q, want %q", i, st.Stage, want[i])
		}
	}
}

// TestFlightRecorderHammer races 8 writers against a draining reader;
// under -race this pins that the ring is atomically clean, and the seq
// check pins that surviving reads are never torn across writers.
func TestFlightRecorderHammer(t *testing.T) {
	r := NewFlightRecorder(64)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			var tr BatchTrace
			for i := 0; i < perWriter; i++ {
				tr.Begin(w)
				stampAll(&tr)
				tr.Epoch = uint64(w)<<32 | uint64(i)
				r.Record(&tr)
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			for _, tr := range r.Snapshot(0) {
				// A torn read would mix one writer's epoch with another's
				// updates field; both encode the writer id.
				if int(tr.Epoch>>32) != tr.Updates {
					t.Errorf("torn trace: epoch writer %d, updates writer %d", tr.Epoch>>32, tr.Updates)
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if got := r.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded = %d, want %d", got, writers*perWriter)
	}
	if got := len(r.Snapshot(0)); got == 0 || got > r.Cap() {
		t.Fatalf("final snapshot has %d traces, want 1..%d", got, r.Cap())
	}
}

// TestTraceRecordAllocFree pins the entire hot path — Begin, stage
// stamping, Record — at zero allocations per batch.
func TestTraceRecordAllocFree(t *testing.T) {
	r := NewFlightRecorder(DefaultTraceRing)
	r.SetSlowHook(time.Hour, func(BatchTrace) {}) // armed but never firing
	var tr BatchTrace
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Begin(16)
		stampAll(&tr)
		tr.Epoch++
		r.Record(&tr)
	})
	if allocs != 0 {
		t.Fatalf("trace hot path allocates %.1f per record, want 0", allocs)
	}
}

// BenchmarkTraceRecord measures the full per-batch recording overhead the
// pipeline pays: one Begin, every stage stamped, one ring Record.
func BenchmarkTraceRecord(b *testing.B) {
	r := NewFlightRecorder(DefaultTraceRing)
	var tr BatchTrace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin(16)
		stampAll(&tr)
		tr.Epoch = uint64(i)
		r.Record(&tr)
	}
}
