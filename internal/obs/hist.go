// Package obs is the zero-dependency observability layer: a hand-rolled
// Prometheus-text metrics registry, a power-of-two latency histogram cheap
// enough for hot paths, a lock-free flight recorder of recent batch
// traces, and slog construction helpers shared by the daemons. It imports
// only the standard library and is imported by every tier — so it must
// never grow a dependency on the rest of the module.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets covers [1ns, 2^47ns ≈ 39h); anything longer clamps into the
// top bucket.
const HistBuckets = 48

// LatencyHist is a fixed-bucket latency histogram: power-of-two nanosecond
// buckets (bucket i holds durations in [2^(i-1), 2^i)), each an atomic
// counter, so observing on a hot path is two atomic adds — no allocation,
// no lock. Quantiles are 2×-granular upper bounds; the full bucket vector
// (Snapshot) gives exact counts for /metrics exposition and for window
// deltas computed by clients.
type LatencyHist struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total observed nanoseconds
}

// Observe records one duration. Negative durations (clock steps) count as
// zero rather than corrupting a bucket index.
func (h *LatencyHist) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	idx := bits.Len64(ns) // 0 for 0ns, else ⌈log2⌉ bucket
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// Quantile returns an upper bound (in ns) for the q-quantile of every
// observation so far — the top of the first bucket whose cumulative count
// reaches q. Zero with no observations.
func (h *LatencyHist) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			return int64(1) << i
		}
	}
	return int64(1) << (HistBuckets - 1)
}

// Count returns the number of observations so far.
func (h *LatencyHist) Count() uint64 { return h.count.Load() }

// Snapshot captures the full bucket vector. Count is derived from the
// bucket counts read (not the separate counter), so an exposition built
// from the snapshot always satisfies `+Inf bucket == _count` even while
// writers race the read. Sum may trail the buckets by in-flight
// observations; the skew is bounded by concurrency and irrelevant at
// scrape cadence.
func (h *LatencyHist) Snapshot() HistSnapshot {
	var s HistSnapshot
	top := -1
	var counts [HistBuckets]uint64
	var total uint64
	for i := 0; i < HistBuckets; i++ {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
		if c != 0 {
			top = i
		}
	}
	s.Count = total
	s.SumNS = h.sum.Load()
	if top >= 0 {
		s.Counts = append([]uint64(nil), counts[:top+1]...)
	}
	return s
}

// HistSnapshot is a point-in-time copy of a LatencyHist's bucket vector:
// Counts[i] holds observations in [2^(i-1), 2^i) ns (Counts[0] holds 0ns),
// with trailing zero buckets trimmed. It serialises into /stats so clients
// (rippleload) can compute exact-count quantiles over a measurement window
// by differencing two snapshots.
type HistSnapshot struct {
	Counts []uint64 `json:"counts_pow2,omitempty"`
	Count  uint64   `json:"count"`
	SumNS  uint64   `json:"sum_ns"`
}

// Sub returns the window delta s−prev: per-bucket count differences plus
// count/sum differences. Both snapshots must come from the same histogram
// with s taken later; buckets that would go negative clamp to zero.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	n := len(s.Counts)
	if len(prev.Counts) > n {
		n = len(prev.Counts)
	}
	out := HistSnapshot{}
	if n > 0 {
		out.Counts = make([]uint64, n)
	}
	top := -1
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.Counts) {
			a = s.Counts[i]
		}
		if i < len(prev.Counts) {
			b = prev.Counts[i]
		}
		if a > b {
			out.Counts[i] = a - b
			top = i
		}
	}
	out.Counts = out.Counts[:top+1]
	if len(out.Counts) == 0 {
		out.Counts = nil
	}
	if s.Count > prev.Count {
		out.Count = s.Count - prev.Count
	}
	if s.SumNS > prev.SumNS {
		out.SumNS = s.SumNS - prev.SumNS
	}
	return out
}

// Quantile mirrors LatencyHist.Quantile over the captured vector: an
// upper bound in ns for the q-quantile. Zero with no observations.
func (s HistSnapshot) Quantile(q float64) int64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			return int64(1) << i
		}
	}
	return int64(1) << (len(s.Counts) - 1)
}

// Mean returns the mean observed duration in ns (0 with no observations).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}
