package obs

import (
	"testing"
	"time"
)

func TestLatencyHistSnapshotAndQuantile(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket 7: [64, 128)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond) // bucket 20
	}
	h.Observe(-time.Second) // clamps to 0ns, bucket 0
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("Count = %d, want 101", s.Count)
	}
	if want := uint64(90*100 + 10*1e6); s.SumNS != want {
		t.Fatalf("SumNS = %d, want %d", s.SumNS, want)
	}
	if len(s.Counts) != 21 {
		t.Fatalf("Counts trimmed to %d buckets, want 21 (top bucket 20)", len(s.Counts))
	}
	if s.Counts[0] != 1 || s.Counts[7] != 90 || s.Counts[20] != 10 {
		t.Fatalf("bucket placement wrong: %v", s.Counts)
	}
	if q := s.Quantile(0.5); q != 128 {
		t.Fatalf("snapshot p50 = %d, want 128", q)
	}
	if q := h.Quantile(0.5); q != 128 {
		t.Fatalf("live p50 = %d, want 128", q)
	}
	if q := s.Quantile(0.99); q != 1<<20 {
		t.Fatalf("snapshot p99 = %d, want %d", q, 1<<20)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	var h LatencyHist
	h.Observe(100 * time.Nanosecond)
	before := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(time.Millisecond)
	}
	d := h.Snapshot().Sub(before)
	if d.Count != 50 {
		t.Fatalf("delta Count = %d, want 50", d.Count)
	}
	if want := uint64(50 * 1e6); d.SumNS != want {
		t.Fatalf("delta SumNS = %d, want %d", d.SumNS, want)
	}
	// The window held only 1ms observations: its p50 must ignore the
	// pre-window 100ns point.
	if q := d.Quantile(0.5); q != 1<<20 {
		t.Fatalf("delta p50 = %d, want %d", q, 1<<20)
	}
	if empty := before.Sub(before); empty.Count != 0 || empty.Counts != nil {
		t.Fatalf("self-delta not empty: %+v", empty)
	}
}

func TestLatencyHistTopBucketClamp(t *testing.T) {
	var h LatencyHist
	h.Observe(1000 * time.Hour) // beyond 2^47ns
	s := h.Snapshot()
	if len(s.Counts) != HistBuckets || s.Counts[HistBuckets-1] != 1 {
		t.Fatalf("overflow observation not clamped into top bucket: %v", s.Counts)
	}
}
