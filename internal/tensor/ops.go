package tensor

// ReLU applies max(0, x) element-wise in place.
func ReLU(v Vector) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// ReLUInto writes max(0, src) into dst without modifying src.
func ReLUInto(dst, src Vector) {
	if len(dst) != len(src) {
		panic("tensor: ReLUInto length mismatch")
	}
	for i, x := range src {
		if x < 0 {
			dst[i] = 0
		} else {
			dst[i] = x
		}
	}
}

// Activation selects the nonlinearity applied after a layer's Update step.
type Activation uint8

const (
	// ActIdentity applies no nonlinearity (used at the final layer, whose
	// output is interpreted as class logits).
	ActIdentity Activation = iota
	// ActReLU applies max(0, x) element-wise (hidden layers).
	ActReLU
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	default:
		return "unknown"
	}
}

// Apply applies the activation to v in place.
func (a Activation) Apply(v Vector) {
	if a == ActReLU {
		ReLU(v)
	}
}
