package tensor

// ReLU applies max(0, x) element-wise in place. NaN is not less than zero
// and passes through unchanged, matching the scalar reference.
func ReLU(v Vector) {
	i := 0
	for ; i+8 <= len(v); i += 8 {
		vv := v[i : i+8 : i+8]
		if vv[0] < 0 {
			vv[0] = 0
		}
		if vv[1] < 0 {
			vv[1] = 0
		}
		if vv[2] < 0 {
			vv[2] = 0
		}
		if vv[3] < 0 {
			vv[3] = 0
		}
		if vv[4] < 0 {
			vv[4] = 0
		}
		if vv[5] < 0 {
			vv[5] = 0
		}
		if vv[6] < 0 {
			vv[6] = 0
		}
		if vv[7] < 0 {
			vv[7] = 0
		}
	}
	for ; i < len(v); i++ {
		if v[i] < 0 {
			v[i] = 0
		}
	}
}

// ReLUInto writes max(0, src) into dst without modifying src.
func ReLUInto(dst, src Vector) {
	if len(dst) != len(src) {
		panic("tensor: ReLUInto length mismatch")
	}
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		dd := dst[i : i+8 : i+8]
		ss := src[i : i+8 : i+8]
		dd[0] = reluOne(ss[0])
		dd[1] = reluOne(ss[1])
		dd[2] = reluOne(ss[2])
		dd[3] = reluOne(ss[3])
		dd[4] = reluOne(ss[4])
		dd[5] = reluOne(ss[5])
		dd[6] = reluOne(ss[6])
		dd[7] = reluOne(ss[7])
	}
	for ; i < len(dst); i++ {
		dst[i] = reluOne(src[i])
	}
}

// reluOne is max(0, x) with NaN passed through (NaN < 0 is false).
func reluOne(x float32) float32 {
	if x < 0 {
		return 0
	}
	return x
}

// Activation selects the nonlinearity applied after a layer's Update step.
type Activation uint8

const (
	// ActIdentity applies no nonlinearity (used at the final layer, whose
	// output is interpreted as class logits).
	ActIdentity Activation = iota
	// ActReLU applies max(0, x) element-wise (hidden layers).
	ActReLU
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	default:
		return "unknown"
	}
}

// Apply applies the activation to v in place.
func (a Activation) Apply(v Vector) {
	if a == ActReLU {
		ReLU(v)
	}
}
