package tensor

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// kernelLens covers the unroll edges: empty, sub-block, exact block,
// block+1, several non-multiples of 8, and the real hot sizes (128 = the
// arxiv feature width, 602 = reddit).
var kernelLens = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64, 100, 128, 602}

// specials are the values the unrolled kernels must pass through exactly
// like the scalar references: NaN, both infinities, both zeros, a
// denormal, and magnitude extremes that overflow/underflow intermediates.
var specials = []float32{
	float32(math.NaN()),
	float32(math.Inf(1)),
	float32(math.Inf(-1)),
	float32(math.Copysign(0, -1)),
	0,
	1.401298464e-45, // smallest denormal
	math.MaxFloat32,
	-math.MaxFloat32,
	1, -1, 0.5, -2.75,
}

// fillVector mixes uniform values with specials so every run exercises the
// non-finite paths.
func fillVector(rng *rand.Rand, v Vector) {
	for i := range v {
		if rng.Intn(4) == 0 {
			v[i] = specials[rng.Intn(len(specials))]
		} else {
			v[i] = rng.Float32()*20 - 10
		}
	}
}

// sameBits fails the test unless got and want are bit-for-bit identical —
// signed zeros included, so -0 != +0 unlike float comparison — with one
// carve-out: two NaNs match regardless of payload. When both inputs of an
// add are NaN the hardware keeps the payload of whichever operand the
// compiler put in the destination register, so payloads are codegen
// noise, not semantics (IEEE 754 leaves them unspecified); what the
// kernels do guarantee is NaN in → NaN out at the same position.
func sameBits(t *testing.T, ctx string, got, want Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", ctx, len(got), len(want))
	}
	for i := range got {
		if !oneBitsMatch(got[i], want[i]) {
			t.Fatalf("%s: [%d] = %x (%v), scalar reference %x (%v)",
				ctx, i, math.Float32bits(got[i]), got[i], math.Float32bits(want[i]), want[i])
		}
	}
}

func oneBitsMatch(got, want float32) bool {
	if math.IsNaN(float64(got)) || math.IsNaN(float64(want)) {
		return math.IsNaN(float64(got)) && math.IsNaN(float64(want))
	}
	return math.Float32bits(got) == math.Float32bits(want)
}

// diffKernels drives one (length, alpha, input) instance through every
// kernel and its scalar reference. Shared by the seeded differential test
// and the fuzz target.
func diffKernels(t *testing.T, n int, alpha float32, src Vector) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)*31 + 7))
	a, b := make(Vector, n), make(Vector, n)
	copy(a, src)
	fillVector(rng, b)

	run := func(ctx string, kernel, scalar func(dst Vector)) {
		t.Helper()
		kd, sd := make(Vector, n), make(Vector, n)
		fillVector(rng, kd)
		copy(sd, kd)
		kernel(kd)
		scalar(sd)
		sameBits(t, ctx, kd, sd)
	}

	run("AXPY", func(d Vector) { d.AXPY(alpha, a) }, func(d Vector) { axpyScalar(d, alpha, a) })
	run("Add", func(d Vector) { d.Add(a) }, func(d Vector) { addScalar(d, a) })
	run("Sub", func(d Vector) { d.Sub(a) }, func(d Vector) { subScalar(d, a) })
	run("Scale", func(d Vector) { d.Scale(alpha) }, func(d Vector) { scaleScalar(d, alpha) })
	run("AddSubInto", func(d Vector) { AddSubInto(d, a, b) }, func(d Vector) { addSubIntoScalar(d, a, b) })
	run("ScaleDeltaInto", func(d Vector) { ScaleDeltaInto(d, a, b, alpha) }, func(d Vector) { scaleDeltaIntoScalar(d, a, b, alpha) })
	run("ScaleInto", func(d Vector) { ScaleInto(d, a, alpha) }, func(d Vector) { scaleIntoScalar(d, a, alpha) })
	run("ScaleAddInto", func(d Vector) { ScaleAddInto(d, a, b, alpha) }, func(d Vector) { scaleAddIntoScalar(d, a, b, alpha) })
	run("ReLU", func(d Vector) { ReLU(d) }, func(d Vector) { reluScalar(d) })
	run("ReLUInto", func(d Vector) { ReLUInto(d, a) }, func(d Vector) { reluIntoScalar(d, a) })

	kDot, sDot := a.Dot(b), dotScalar(a, b)
	if !oneBitsMatch(kDot, sDot) {
		t.Fatalf("Dot(n=%d): %x (%v), scalar reference %x (%v)",
			n, math.Float32bits(kDot), kDot, math.Float32bits(sDot), sDot)
	}
}

// TestKernelsMatchScalarReference is the differential pin: across unroll
// edge lengths and many random inputs (specials included), every unrolled
// kernel must produce exactly the scalar reference's bits.
func TestKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphas := []float32{0, 1, -1, 0.5, -3.25, float32(math.NaN()), float32(math.Inf(1)), 1.401298464e-45}
	for _, n := range kernelLens {
		for trial := 0; trial < 25; trial++ {
			src := make(Vector, n)
			fillVector(rng, src)
			alpha := alphas[trial%len(alphas)]
			diffKernels(t, n, alpha, src)
		}
	}
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		src := make(Vector, n)
		fillVector(rng, src)
		diffKernels(t, n, rng.Float32()*8-4, src)
	}
}

// FuzzKernels lets the fuzzer pick raw bytes that become the input vector
// and alpha, hunting for bit patterns where an unrolled kernel and its
// scalar reference diverge.
func FuzzKernels(f *testing.F) {
	f.Add(uint32(0x3f800000), []byte{0, 0, 0x80, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint32(0x7fc00000), []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0x80})
	f.Add(uint32(0), []byte{})
	f.Fuzz(func(t *testing.T, alphaBits uint32, raw []byte) {
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		n := len(raw) / 4
		src := make(Vector, n)
		for i := 0; i < n; i++ {
			src[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
		}
		diffKernels(t, n, math.Float32frombits(alphaBits), src)
	})
}

// TestAXPYZeroAlphaNoop pins the alpha==0 early-out: v must be untouched
// bit for bit even where u holds NaN (0*NaN would poison it).
func TestAXPYZeroAlphaNoop(t *testing.T) {
	v := Vector{1, float32(math.Copysign(0, -1)), 3}
	u := Vector{float32(math.NaN()), float32(math.Inf(1)), 5}
	want := append(Vector(nil), v...)
	v.AXPY(0, u)
	sameBits(t, "AXPY(0, u)", v, want)
}
