package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Vector
		wantAdd Vector
		wantSub Vector
	}{
		{
			name:    "basic",
			a:       Vector{1, 2, 3},
			b:       Vector{4, -5, 6},
			wantAdd: Vector{5, -3, 9},
			wantSub: Vector{-3, 7, -3},
		},
		{
			name:    "zeros",
			a:       Vector{0, 0},
			b:       Vector{0, 0},
			wantAdd: Vector{0, 0},
			wantSub: Vector{0, 0},
		},
		{
			name:    "empty",
			a:       Vector{},
			b:       Vector{},
			wantAdd: Vector{},
			wantSub: Vector{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gotAdd := tt.a.Clone()
			gotAdd.Add(tt.b)
			if !gotAdd.EqualWithin(tt.wantAdd, 0) {
				t.Errorf("Add = %v, want %v", gotAdd, tt.wantAdd)
			}
			gotSub := tt.a.Clone()
			gotSub.Sub(tt.b)
			if !gotSub.EqualWithin(tt.wantSub, 0) {
				t.Errorf("Sub = %v, want %v", gotSub, tt.wantSub)
			}
		})
	}
}

func TestVectorAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	v := Vector{1, 2}
	v.Add(Vector{1})
}

func TestAXPY(t *testing.T) {
	v := Vector{1, 2, 3}
	v.AXPY(2, Vector{10, 20, 30})
	want := Vector{21, 42, 63}
	if !v.EqualWithin(want, 0) {
		t.Errorf("AXPY = %v, want %v", v, want)
	}

	// alpha == 0 must be a no-op even for NaN-free guarantees.
	v2 := Vector{1, 2, 3}
	v2.AXPY(0, Vector{100, 100, 100})
	if !v2.EqualWithin(Vector{1, 2, 3}, 0) {
		t.Errorf("AXPY(0) modified vector: %v", v2)
	}
}

func TestScaleDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm2(); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Dot(Vector{2, 1}); got != 10 {
		t.Errorf("Dot = %v, want 10", got)
	}
	v.Scale(2)
	if !v.EqualWithin(Vector{6, 8}, 0) {
		t.Errorf("Scale = %v", v)
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want int
	}{
		{"empty", Vector{}, -1},
		{"single", Vector{7}, 0},
		{"middle", Vector{1, 9, 3}, 1},
		{"tie breaks low", Vector{5, 5, 5}, 0},
		{"negative", Vector{-3, -1, -2}, 1},
		{"last", Vector{0, 1, 2, 3}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.ArgMax(); got != tt.want {
				t.Errorf("ArgMax(%v) = %d, want %d", tt.v, got, tt.want)
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
	var nilVec Vector
	if nilVec.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestIsZeroAndZero(t *testing.T) {
	v := Vector{0, 1, 0}
	if v.IsZero() {
		t.Error("IsZero true for nonzero vector")
	}
	v.Zero()
	if !v.IsZero() {
		t.Error("IsZero false after Zero()")
	}
}

func TestDeltaConstructors(t *testing.T) {
	a := Vector{5, 7, 9}
	b := Vector{1, 2, 3}
	dst := NewVector(3)
	AddSubInto(dst, a, b)
	if !dst.EqualWithin(Vector{4, 5, 6}, 0) {
		t.Errorf("AddSubInto = %v", dst)
	}
	ScaleDeltaInto(dst, a, b, 0.5)
	if !dst.EqualWithin(Vector{2, 2.5, 3}, 1e-6) {
		t.Errorf("ScaleDeltaInto = %v", dst)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{1, 5, 2}
	if got := a.MaxAbsDiff(b); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
}

// Property: (a + b) - b == a exactly for values that are exactly
// representable; we use small integers to avoid rounding.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(raw []int8) bool {
		a := make(Vector, len(raw))
		b := make(Vector, len(raw))
		for i, x := range raw {
			a[i] = float32(x)
			b[i] = float32(int(x) * 3 % 7)
		}
		v := a.Clone()
		v.Add(b)
		v.Sub(b)
		return v.EqualWithin(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AXPY(alpha) then AXPY(-alpha) restores the original exactly for
// power-of-two alphas (no rounding introduced by the multiply).
func TestAXPYInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(64)
		a := make(Vector, n)
		u := make(Vector, n)
		for i := range a {
			a[i] = float32(rng.Intn(256) - 128)
			u[i] = float32(rng.Intn(256) - 128)
		}
		alpha := float32(int(1) << uint(rng.Intn(4)))
		v := a.Clone()
		v.AXPY(alpha, u)
		v.AXPY(-alpha, u)
		if !v.EqualWithin(a, 0) {
			t.Fatalf("trial %d: AXPY inverse failed", trial)
		}
	}
}
