package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatVec(t *testing.T) {
	tests := []struct {
		name string
		m    *Matrix
		x    Vector
		want Vector
	}{
		{
			name: "2x3",
			m:    NewMatrixFrom(2, 3, []float32{1, 2, 3, 4, 5, 6}),
			x:    Vector{1, 0, -1},
			want: Vector{-2, -2},
		},
		{
			name: "identity",
			m:    NewMatrixFrom(3, 3, []float32{1, 0, 0, 0, 1, 0, 0, 0, 1}),
			x:    Vector{7, 8, 9},
			want: Vector{7, 8, 9},
		},
		{
			name: "1x1",
			m:    NewMatrixFrom(1, 1, []float32{3}),
			x:    Vector{4},
			want: Vector{12},
		},
		{
			name: "wide row exercises unrolled tail",
			m:    NewMatrixFrom(1, 7, []float32{1, 1, 1, 1, 1, 1, 1}),
			x:    Vector{1, 2, 3, 4, 5, 6, 7},
			want: Vector{28},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dst := NewVector(tt.m.Rows)
			tt.m.MatVec(dst, tt.x)
			if !dst.EqualWithin(tt.want, 1e-6) {
				t.Errorf("MatVec = %v, want %v", dst, tt.want)
			}
		})
	}
}

func TestMatVecAcc(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float32{1, 2, 3, 4})
	dst := Vector{10, 20}
	m.MatVecAcc(dst, Vector{1, 1})
	if !dst.EqualWithin(Vector{13, 27}, 1e-6) {
		t.Errorf("MatVecAcc = %v", dst)
	}
}

func TestMatVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	m := NewMatrix(2, 3)
	m.MatVec(NewVector(2), NewVector(2))
}

// MatVec must agree with a float64 reference implementation within float32
// rounding for random inputs.
func TestMatVecAgainstFloat64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(40)
		m := NewMatrix(rows, cols)
		x := NewVector(cols)
		for i := range m.Data {
			m.Data[i] = rng.Float32()*2 - 1
		}
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		got := NewVector(rows)
		m.MatVec(got, x)
		for i := 0; i < rows; i++ {
			var ref float64
			for j := 0; j < cols; j++ {
				ref += float64(m.At(i, j)) * float64(x[j])
			}
			if math.Abs(float64(got[i])-ref) > 1e-4 {
				t.Fatalf("trial %d row %d: got %v, ref %v", trial, i, got[i], ref)
			}
		}
	}
}

func TestGlorotInitDeterministicAndBounded(t *testing.T) {
	m1 := NewMatrix(8, 16)
	m2 := NewMatrix(8, 16)
	m1.GlorotInit(rand.New(rand.NewSource(5)))
	m2.GlorotInit(rand.New(rand.NewSource(5)))
	if !m1.EqualWithin(m2, 0) {
		t.Error("GlorotInit not deterministic for equal seeds")
	}
	limit := float32(math.Sqrt(6.0 / float64(8+16)))
	for _, v := range m1.Data {
		if v < -limit || v > limit {
			t.Fatalf("GlorotInit value %v outside ±%v", v, limit)
		}
	}
	m3 := NewMatrix(8, 16)
	m3.GlorotInit(rand.New(rand.NewSource(6)))
	if m1.EqualWithin(m3, 0) {
		t.Error("GlorotInit identical across different seeds")
	}
}

func TestMatrixRowSetAtClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Error("Set/At mismatch")
	}
	row := m.Row(0)
	row[0] = 9 // views share storage
	if m.At(0, 0) != 9 {
		t.Error("Row should be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 77)
	if m.At(0, 0) != 9 {
		t.Error("Clone should not share storage")
	}
}

func TestNewMatrixFromValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad data length")
		}
	}()
	NewMatrixFrom(2, 2, []float32{1, 2, 3})
}

func TestReLU(t *testing.T) {
	v := Vector{-1, 0, 2, -3.5}
	ReLU(v)
	if !v.EqualWithin(Vector{0, 0, 2, 0}, 0) {
		t.Errorf("ReLU = %v", v)
	}
	src := Vector{-2, 5}
	dst := NewVector(2)
	ReLUInto(dst, src)
	if !dst.EqualWithin(Vector{0, 5}, 0) || src[0] != -2 {
		t.Errorf("ReLUInto dst=%v src=%v", dst, src)
	}
}

func TestActivation(t *testing.T) {
	if ActReLU.String() != "relu" || ActIdentity.String() != "identity" {
		t.Error("Activation String mismatch")
	}
	v := Vector{-1, 1}
	ActIdentity.Apply(v)
	if !v.EqualWithin(Vector{-1, 1}, 0) {
		t.Error("ActIdentity modified vector")
	}
	ActReLU.Apply(v)
	if !v.EqualWithin(Vector{0, 1}, 0) {
		t.Error("ActReLU failed")
	}
}
