package tensor

// This file holds the one-element-at-a-time scalar reference
// implementations of every unrolled kernel in vector.go and ops.go. They
// are the semantic ground truth: kernels_test.go drives random inputs
// (including NaN, infinities, signed zeros and denormals) through both
// versions and demands bit-for-bit identical results, so any future change
// to an unrolled kernel that alters even a rounding step fails loudly.
//
// Keep these boring. No unrolling, no bounds-check games — each function
// is the loop the package shipped with before the kernels were unrolled
// (PR 6), except dotScalar, which reproduces Dot's eight-lane reduction
// order one element at a time (the order is part of Dot's contract; a
// single left-to-right accumulator would be a different float sum).

func axpyScalar(v Vector, alpha float32, u Vector) {
	if alpha == 0 {
		return
	}
	for i, x := range u {
		v[i] += alpha * x
	}
}

func dotScalar(v, u Vector) float32 {
	// Element i accumulates into lane i mod 8; lanes combine by the same
	// fixed pairwise tree as Dot; the non-multiple-of-8 tail folds into
	// the combined sum left to right. Exactly Dot's arithmetic, scheduled
	// one element at a time.
	var lanes [8]float32
	n := len(v) &^ 7
	for i := 0; i < n; i++ {
		lanes[i&7] += v[i] * u[i]
	}
	s := ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5])) + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]))
	for i := n; i < len(v); i++ {
		s += v[i] * u[i]
	}
	return s
}

func scaleScalar(v Vector, alpha float32) {
	for i := range v {
		v[i] *= alpha
	}
}

func addScalar(v, u Vector) {
	for i, x := range u {
		v[i] += x
	}
}

func subScalar(v, u Vector) {
	for i, x := range u {
		v[i] -= x
	}
}

func addSubIntoScalar(dst, a, b Vector) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

func scaleDeltaIntoScalar(dst, a, b Vector, alpha float32) {
	for i := range dst {
		dst[i] = alpha * (a[i] - b[i])
	}
}

func scaleIntoScalar(dst, a Vector, alpha float32) {
	for i := range dst {
		dst[i] = alpha * a[i]
	}
}

func scaleAddIntoScalar(dst, a, b Vector, alpha float32) {
	for i := range dst {
		t := alpha * a[i] // rounded before the add, like the kernel
		dst[i] = t + b[i]
	}
}

func reluScalar(v Vector) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

func reluIntoScalar(dst, src Vector) {
	for i, x := range src {
		if x < 0 {
			dst[i] = 0
		} else {
			dst[i] = x
		}
	}
}
