package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major float32 matrix. It is the weight container
// for GNN layers; MatVec is the single hot kernel of inference.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix negative dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewMatrixFrom builds a matrix from row-major data. The slice is copied.
func NewMatrixFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: NewMatrixFrom data length %d != %d*%d", len(data), rows, cols))
	}
	m := NewMatrix(rows, cols)
	copy(m.Data, data)
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a vector view sharing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatVec computes dst = m·x. dst must have length m.Rows and x length
// m.Cols; dst and x must not alias.
func (m *Matrix) MatVec(dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec dims %dx%d with |x|=%d |dst|=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		// 4-way unrolled dot product: this loop dominates inference time.
		j := 0
		for ; j+4 <= len(row); j += 4 {
			s += row[j]*x[j] + row[j+1]*x[j+1] + row[j+2]*x[j+2] + row[j+3]*x[j+3]
		}
		for ; j < len(row); j++ {
			s += row[j] * x[j]
		}
		dst[i] = s
	}
}

// MatVecAcc computes dst += m·x, accumulating into dst.
func (m *Matrix) MatVecAcc(dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVecAcc dims %dx%d with |x|=%d |dst|=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float32
		j := 0
		for ; j+4 <= len(row); j += 4 {
			s += row[j]*x[j] + row[j+1]*x[j+1] + row[j+2]*x[j+2] + row[j+3]*x[j+3]
		}
		for ; j < len(row); j++ {
			s += row[j] * x[j]
		}
		dst[i] += s
	}
}

// GlorotInit fills m with Glorot/Xavier-uniform values drawn from rng,
// giving deterministic "trained" weights for a given seed. The scale keeps
// layer outputs well-conditioned so ReLU activations neither die nor blow
// up across layers.
func (m *Matrix) GlorotInit(rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

// EqualWithin reports element-wise equality of two matrices within tol.
func (m *Matrix) EqualWithin(o *Matrix, tol float32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	return Vector(m.Data).EqualWithin(Vector(o.Data), tol)
}
