package tensor

import (
	"math/rand"
	"strconv"
	"testing"
)

func benchMatrix(rows, cols int) (*Matrix, Vector, Vector) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(rows, cols)
	m.GlorotInit(rng)
	x := NewVector(cols)
	for i := range x {
		x[i] = rng.Float32()
	}
	return m, x, NewVector(rows)
}

func BenchmarkMatVec64x128(b *testing.B) {
	m, x, dst := benchMatrix(64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MatVec(dst, x)
	}
}

func BenchmarkMatVec47x100(b *testing.B) {
	m, x, dst := benchMatrix(47, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MatVec(dst, x)
	}
}

func BenchmarkAXPY128(b *testing.B) {
	v := NewVector(128)
	u := NewVector(128)
	for i := range u {
		u[i] = float32(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.AXPY(0.5, u)
	}
}

func BenchmarkAddSubInto602(b *testing.B) {
	// Reddit feature width: the delta-message constructor's hot size.
	dst, a, c := NewVector(602), NewVector(602), NewVector(602)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AddSubInto(dst, a, c)
	}
}

// BenchmarkKernels pins the unrolled kernels against their scalar
// references at the hot dimensions (128 = arxiv features and the per-hop
// message width there, 602 = reddit). The unrolled/scalar ratio is the
// win the BCE + unrolling rewrite bought on this machine; see
// BENCH_kernels.json for recorded points.
func BenchmarkKernels(b *testing.B) {
	for _, dim := range []int{128, 602} {
		rng := rand.New(rand.NewSource(int64(dim)))
		u, v, w := NewVector(dim), NewVector(dim), NewVector(dim)
		for i := range u {
			u[i] = rng.Float32() - 0.5
			v[i] = rng.Float32() - 0.5
			w[i] = rng.Float32() - 0.5
		}
		name := func(op, impl string) string {
			return op + "/" + strconv.Itoa(dim) + "/" + impl
		}
		b.Run(name("AXPY", "unrolled"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v.AXPY(0.5, u)
			}
		})
		b.Run(name("AXPY", "scalar"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				axpyScalar(v, 0.5, u)
			}
		})
		var sink float32
		b.Run(name("Dot", "unrolled"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += v.Dot(u)
			}
		})
		b.Run(name("Dot", "scalar"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += dotScalar(v, u)
			}
		})
		b.Run(name("ScaleDeltaInto", "unrolled"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ScaleDeltaInto(w, u, v, 0.25)
			}
		})
		b.Run(name("ScaleDeltaInto", "scalar"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scaleDeltaIntoScalar(w, u, v, 0.25)
			}
		})
		_ = sink
	}
}
