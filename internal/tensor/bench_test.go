package tensor

import (
	"math/rand"
	"testing"
)

func benchMatrix(rows, cols int) (*Matrix, Vector, Vector) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(rows, cols)
	m.GlorotInit(rng)
	x := NewVector(cols)
	for i := range x {
		x[i] = rng.Float32()
	}
	return m, x, NewVector(rows)
}

func BenchmarkMatVec64x128(b *testing.B) {
	m, x, dst := benchMatrix(64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MatVec(dst, x)
	}
}

func BenchmarkMatVec47x100(b *testing.B) {
	m, x, dst := benchMatrix(47, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MatVec(dst, x)
	}
}

func BenchmarkAXPY128(b *testing.B) {
	v := NewVector(128)
	u := NewVector(128)
	for i := range u {
		u[i] = float32(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.AXPY(0.5, u)
	}
}

func BenchmarkAddSubInto602(b *testing.B) {
	// Reddit feature width: the delta-message constructor's hot size.
	dst, a, c := NewVector(602), NewVector(602), NewVector(602)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AddSubInto(dst, a, c)
	}
}
