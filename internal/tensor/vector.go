// Package tensor provides the dense linear-algebra substrate used by the
// GNN models and the incremental engine. It replaces NumPy from the paper's
// reference implementation with a small, allocation-conscious float32
// library: vectors, row-major matrices, and the fused delta operations that
// the incremental message model relies on.
//
// All operations are deterministic and stdlib-only. Destination-buffer
// variants (…Into) are provided for the hot paths so the engine can reuse
// scratch memory across updates.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float32 vector. The zero value (nil) is an empty vector.
type Vector []float32

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v that shares no storage with it.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom overwrites v with src. The lengths must match.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Zero sets every element of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// IsZero reports whether every element of v is exactly zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Add accumulates u into v element-wise: v += u.
func (v Vector) Add(u Vector) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d != %d", len(v), len(u)))
	}
	for i, x := range u {
		v[i] += x
	}
}

// Sub subtracts u from v element-wise: v -= u.
func (v Vector) Sub(u Vector) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d != %d", len(v), len(u)))
	}
	for i, x := range u {
		v[i] -= x
	}
}

// AXPY performs v += alpha*u, the fused multiply-add used to fold weighted
// delta messages into aggregates.
func (v Vector) AXPY(alpha float32, u Vector) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d != %d", len(v), len(u)))
	}
	if alpha == 0 {
		return
	}
	for i, x := range u {
		v[i] += alpha * x
	}
}

// Scale multiplies every element of v by alpha.
func (v Vector) Scale(alpha float32) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product of v and u.
func (v Vector) Dot(u Vector) float32 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(v), len(u)))
	}
	var s float32
	for i, x := range u {
		s += v[i] * x
	}
	return s
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lower index. It returns -1 for an empty vector. This is how final-layer
// logits become a predicted class label.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best, bestVal := 0, v[0]
	for i := 1; i < len(v); i++ {
		if v[i] > bestVal {
			best, bestVal = i, v[i]
		}
	}
	return best
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// v and u. Used by tests and by the engine's change detection.
func (v Vector) MaxAbsDiff(u Vector) float32 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff length mismatch %d != %d", len(v), len(u)))
	}
	var m float32
	for i, x := range u {
		d := v[i] - x
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// EqualWithin reports whether v and u are element-wise equal within
// absolute tolerance tol.
func (v Vector) EqualWithin(u Vector, tol float32) bool {
	if len(v) != len(u) {
		return false
	}
	return v.MaxAbsDiff(u) <= tol
}

// AddSubInto computes dst = a - b without allocating. It is the delta
// message constructor: m = h_new - h_old.
func AddSubInto(dst, a, b Vector) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("tensor: AddSubInto length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// ScaleDeltaInto computes dst = alpha*(a - b), the weighted delta message
// used by mean and weighted-sum aggregators.
func ScaleDeltaInto(dst, a, b Vector, alpha float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("tensor: ScaleDeltaInto length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	for i := range dst {
		dst[i] = alpha * (a[i] - b[i])
	}
}
