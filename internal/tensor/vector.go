// Package tensor provides the dense linear-algebra substrate used by the
// GNN models and the incremental engine. It replaces NumPy from the paper's
// reference implementation with a small, allocation-conscious float32
// library: vectors, row-major matrices, and the fused delta operations that
// the incremental message model relies on.
//
// All operations are deterministic and stdlib-only. Destination-buffer
// variants (…Into) are provided for the hot paths so the engine can reuse
// scratch memory across updates.
//
// # Kernel style
//
// The hot kernels (AXPY, Dot, Scale, Add, Sub, the …Into family, ReLU) are
// written as 8-wide unrolled loops over constant-length sub-slices:
//
//	vv := v[i : i+8 : i+8] // len(vv) == 8 is a compile-time fact
//
// gives the compiler a slice whose length it can prove, so the eight
// element accesses inside the block carry no bounds checks — one check per
// slice expression instead of one per element — and the independent
// per-lane statements break the loop-carried dependence so the scheduler
// can overlap them. Verify with `go build -gcflags='-d=ssa/check_bce'`:
// only the per-block slice operations and the remainder loop report
// checks. Every kernel has a straight-line twin in scalar.go
// (`axpyScalar`, …) that the differential tests in kernels_test.go pin it
// against bit for bit; see DESIGN.md §3.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float32 vector. The zero value (nil) is an empty vector.
type Vector []float32

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v that shares no storage with it.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom overwrites v with src. The lengths must match.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Zero sets every element of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// IsZero reports whether every element of v is exactly zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Add accumulates u into v element-wise: v += u.
func (v Vector) Add(u Vector) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d != %d", len(v), len(u)))
	}
	i := 0
	for ; i+8 <= len(v); i += 8 {
		vv := v[i : i+8 : i+8]
		uu := u[i : i+8 : i+8]
		vv[0] += uu[0]
		vv[1] += uu[1]
		vv[2] += uu[2]
		vv[3] += uu[3]
		vv[4] += uu[4]
		vv[5] += uu[5]
		vv[6] += uu[6]
		vv[7] += uu[7]
	}
	for ; i < len(v); i++ {
		v[i] += u[i]
	}
}

// Sub subtracts u from v element-wise: v -= u.
func (v Vector) Sub(u Vector) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d != %d", len(v), len(u)))
	}
	i := 0
	for ; i+8 <= len(v); i += 8 {
		vv := v[i : i+8 : i+8]
		uu := u[i : i+8 : i+8]
		vv[0] -= uu[0]
		vv[1] -= uu[1]
		vv[2] -= uu[2]
		vv[3] -= uu[3]
		vv[4] -= uu[4]
		vv[5] -= uu[5]
		vv[6] -= uu[6]
		vv[7] -= uu[7]
	}
	for ; i < len(v); i++ {
		v[i] -= u[i]
	}
}

// AXPY performs v += alpha*u, the fused multiply-add used to fold weighted
// delta messages into aggregates.
func (v Vector) AXPY(alpha float32, u Vector) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d != %d", len(v), len(u)))
	}
	if alpha == 0 {
		return
	}
	i := 0
	for ; i+8 <= len(v); i += 8 {
		vv := v[i : i+8 : i+8]
		uu := u[i : i+8 : i+8]
		vv[0] += alpha * uu[0]
		vv[1] += alpha * uu[1]
		vv[2] += alpha * uu[2]
		vv[3] += alpha * uu[3]
		vv[4] += alpha * uu[4]
		vv[5] += alpha * uu[5]
		vv[6] += alpha * uu[6]
		vv[7] += alpha * uu[7]
	}
	for ; i < len(v); i++ {
		v[i] += alpha * u[i]
	}
}

// Scale multiplies every element of v by alpha.
func (v Vector) Scale(alpha float32) {
	i := 0
	for ; i+8 <= len(v); i += 8 {
		vv := v[i : i+8 : i+8]
		vv[0] *= alpha
		vv[1] *= alpha
		vv[2] *= alpha
		vv[3] *= alpha
		vv[4] *= alpha
		vv[5] *= alpha
		vv[6] *= alpha
		vv[7] *= alpha
	}
	for ; i < len(v); i++ {
		v[i] *= alpha
	}
}

// Dot returns the inner product of v and u.
//
// The reduction runs over eight independent accumulator lanes (element i
// lands in lane i mod 8) combined by a fixed pairwise tree, which breaks
// the latency-bound single-accumulator dependence chain. The lane order is
// part of the function's contract: dotScalar reproduces it exactly, so the
// differential tests can demand bit equality. No production caller depends
// on the old left-to-right order — MatVec/MatVecAcc carry their own inline
// accumulation, deliberately untouched because their sum order is visible
// in published logits.
func (v Vector) Dot(u Vector) float32 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(v), len(u)))
	}
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(v); i += 8 {
		vv := v[i : i+8 : i+8]
		uu := u[i : i+8 : i+8]
		s0 += vv[0] * uu[0]
		s1 += vv[1] * uu[1]
		s2 += vv[2] * uu[2]
		s3 += vv[3] * uu[3]
		s4 += vv[4] * uu[4]
		s5 += vv[5] * uu[5]
		s6 += vv[6] * uu[6]
		s7 += vv[7] * uu[7]
	}
	s := ((s0 + s4) + (s1 + s5)) + ((s2 + s6) + (s3 + s7))
	for ; i < len(v); i++ {
		s += v[i] * u[i]
	}
	return s
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lower index. It returns -1 for an empty vector. This is how final-layer
// logits become a predicted class label.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best, bestVal := 0, v[0]
	for i := 1; i < len(v); i++ {
		if v[i] > bestVal {
			best, bestVal = i, v[i]
		}
	}
	return best
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// v and u. Used by tests and by the engine's change detection.
func (v Vector) MaxAbsDiff(u Vector) float32 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff length mismatch %d != %d", len(v), len(u)))
	}
	var m float32
	for i, x := range u {
		d := v[i] - x
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// EqualWithin reports whether v and u are element-wise equal within
// absolute tolerance tol.
func (v Vector) EqualWithin(u Vector, tol float32) bool {
	if len(v) != len(u) {
		return false
	}
	return v.MaxAbsDiff(u) <= tol
}

// AddSubInto computes dst = a - b without allocating. It is the delta
// message constructor: m = h_new - h_old.
func AddSubInto(dst, a, b Vector) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("tensor: AddSubInto length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		dd := dst[i : i+8 : i+8]
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		dd[0] = aa[0] - bb[0]
		dd[1] = aa[1] - bb[1]
		dd[2] = aa[2] - bb[2]
		dd[3] = aa[3] - bb[3]
		dd[4] = aa[4] - bb[4]
		dd[5] = aa[5] - bb[5]
		dd[6] = aa[6] - bb[6]
		dd[7] = aa[7] - bb[7]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] - b[i]
	}
}

// ScaleDeltaInto computes dst = alpha*(a - b), the weighted delta message
// used by mean and weighted-sum aggregators.
func ScaleDeltaInto(dst, a, b Vector, alpha float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("tensor: ScaleDeltaInto length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		dd := dst[i : i+8 : i+8]
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		dd[0] = alpha * (aa[0] - bb[0])
		dd[1] = alpha * (aa[1] - bb[1])
		dd[2] = alpha * (aa[2] - bb[2])
		dd[3] = alpha * (aa[3] - bb[3])
		dd[4] = alpha * (aa[4] - bb[4])
		dd[5] = alpha * (aa[5] - bb[5])
		dd[6] = alpha * (aa[6] - bb[6])
		dd[7] = alpha * (aa[7] - bb[7])
	}
	for ; i < len(dst); i++ {
		dst[i] = alpha * (a[i] - b[i])
	}
}

// ScaleInto computes dst = alpha*a without allocating — the mean
// aggregator's degree normalisation (alpha = 1/deg over the raw sum).
func ScaleInto(dst, a Vector, alpha float32) {
	if len(dst) != len(a) {
		panic(fmt.Sprintf("tensor: ScaleInto length mismatch %d != %d", len(dst), len(a)))
	}
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		dd := dst[i : i+8 : i+8]
		aa := a[i : i+8 : i+8]
		dd[0] = alpha * aa[0]
		dd[1] = alpha * aa[1]
		dd[2] = alpha * aa[2]
		dd[3] = alpha * aa[3]
		dd[4] = alpha * aa[4]
		dd[5] = alpha * aa[5]
		dd[6] = alpha * aa[6]
		dd[7] = alpha * aa[7]
	}
	for ; i < len(dst); i++ {
		dst[i] = alpha * a[i]
	}
}

// ScaleAddInto computes dst = alpha*a + b without allocating — GINConv's
// (1+ε)·h_self + aggregate combine. The alpha*a product is rounded before
// the add (an explicit float32 intermediate), so the result is identical
// on platforms whose compilers would otherwise contract the expression
// into a fused multiply-add.
func ScaleAddInto(dst, a, b Vector, alpha float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("tensor: ScaleAddInto length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		dd := dst[i : i+8 : i+8]
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		t0 := alpha * aa[0]
		t1 := alpha * aa[1]
		t2 := alpha * aa[2]
		t3 := alpha * aa[3]
		t4 := alpha * aa[4]
		t5 := alpha * aa[5]
		t6 := alpha * aa[6]
		t7 := alpha * aa[7]
		dd[0] = t0 + bb[0]
		dd[1] = t1 + bb[1]
		dd[2] = t2 + bb[2]
		dd[3] = t3 + bb[3]
		dd[4] = t4 + bb[4]
		dd[5] = t5 + bb[5]
		dd[6] = t6 + bb[6]
		dd[7] = t7 + bb[7]
	}
	for ; i < len(dst); i++ {
		t := alpha * a[i]
		dst[i] = t + b[i]
	}
}
