package bench

import (
	"fmt"
	"io"
)

// Fig11 reproduces the latency-vs-propagation-tree-size correlation
// (Fig. 11): per-batch (affected vertices, latency) points for RC and
// Ripple on Products with GC-S at batch size 1, for 2- and 3-layer models.
// The emitted cells bucket the scatter; the per-point series is printed.
func (h *Harness) Fig11(w io.Writer) ([]Cell, error) {
	const ds, workload, bs = "products", "GC-S", 1
	wl, err := h.workload(ds)
	if err != nil {
		return nil, err
	}
	n := wl.Snapshot.NumVertices()
	var cells []Cell
	fmt.Fprintf(w, "Fig 11: batch latency vs #affected vertices (%s, %s, bs=%d)\n", ds, workload, bs)
	for _, layers := range []int{2, 3} {
		for _, strat := range []string{"RC", "Ripple"} {
			s, err := h.newStrategy(strat, ds, workload, layers)
			if err != nil {
				return nil, err
			}
			results, err := runStream(s, wl.Batches(bs), h.cfg.MaxBatches*3)
			if err != nil {
				return nil, err
			}
			cell := summarise(Cell{
				Figure: "fig11", Dataset: ds, Workload: workload,
				Strategy: strat, Layers: layers, BatchSize: bs,
			}, results, n)
			cells = append(cells, cell)
			fmt.Fprintf(w, "  %dL %-7s batches=%d meanAffected=%.0f meanLat=%s\n",
				layers, strat, len(results), cell.AffectedFrac*float64(n), fmtDur(cell.MeanLatency))
			for i, r := range results {
				if i%5 == 0 { // thin the scatter for readability
					fmt.Fprintf(w, "    point affected=%-8d latency=%s\n", r.Affected, fmtDur(r.Total()))
				}
			}
		}
	}
	return cells, nil
}
