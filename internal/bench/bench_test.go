package bench

import (
	"io"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyHarness runs every experiment at a scale small enough for unit
// testing while still exercising the full code path.
func tinyHarness() *Harness {
	return New(Config{Scale: 0.05, StreamLen: 300, MaxBatches: 3, Hidden: 16, Seed: 7})
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 1 || cfg.StreamLen != 3000 || cfg.MaxBatches != 20 || cfg.Hidden != 64 || cfg.Seed != 42 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestTable3(t *testing.T) {
	h := tinyHarness()
	cells, err := h.Table3(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("table3 cells = %d", len(cells))
	}
}

func TestFig2aShape(t *testing.T) {
	h := tinyHarness()
	cells, err := h.Fig2a(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("fig2a cells = %d", len(cells))
	}
	// Latency must grow with fanout (larger sampled trees).
	if cells[3].MeanLatency < cells[0].MeanLatency {
		t.Errorf("latency did not grow with fanout: f4=%v f32=%v", cells[0].MeanLatency, cells[3].MeanLatency)
	}
	for _, c := range cells {
		if c.AccuracyPct < 0 || c.AccuracyPct > 100 {
			t.Errorf("accuracy %v out of range", c.AccuracyPct)
		}
	}
}

func TestFig2bShape(t *testing.T) {
	h := tinyHarness()
	cells, err := h.Fig2b(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Cell{}
	for _, c := range cells {
		byKey[c.Dataset+"/"+c.Strategy+"/"+itoa(c.BatchSize)] = c
	}
	for _, ds := range []string{"arxiv", "products"} {
		// Affected fraction grows with batch size (the paper's headline
		// observation in Fig. 2b).
		if byKey[ds+"/RC/1"].AffectedFrac > byKey[ds+"/RC/100"].AffectedFrac {
			t.Errorf("%s: affected%% should grow with batch size", ds)
		}
		// Affected fraction is strategy-independent.
		for _, bs := range []string{"1", "10", "100"} {
			rc, rp := byKey[ds+"/RC/"+bs], byKey[ds+"/Ripple/"+bs]
			if diff := rc.AffectedFrac - rp.AffectedFrac; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s bs=%s: affected frac differs RC=%v Ripple=%v", ds, bs, rc.AffectedFrac, rp.AffectedFrac)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	h := tinyHarness()
	cells, err := h.Fig8(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 { // 6 strategies × 2 datasets
		t.Fatalf("fig8 cells = %d", len(cells))
	}
	get := func(ds, strat string) Cell {
		for _, c := range cells {
			if c.Dataset == ds && c.Strategy == strat {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s", ds, strat)
		return Cell{}
	}
	for _, ds := range []string{"arxiv", "products"} {
		// Robust shape assertions (wall-clock ordering between close
		// strategies is noisy at this tiny test scale; the authoritative
		// ordering check is cmd/ripplebench at the default scales —
		// DESIGN.md §5):
		// vertex-wise is far slower than layer-wise, and the DGL-style
		// immutable-graph baselines pay orders of magnitude more update
		// (CSR rebuild) time than the edge-list strategies.
		dnc := get(ds, "DNC").UpdateTime + get(ds, "DNC").PropagateTime
		drc := get(ds, "DRC").UpdateTime + get(ds, "DRC").PropagateTime
		if dnc < drc {
			t.Errorf("%s: DNC (%v) should not beat DRC (%v)", ds, dnc, drc)
		}
		if get(ds, "DRC").UpdateTime < get(ds, "Ripple").UpdateTime {
			t.Errorf("%s: DRC update time (%v) should exceed Ripple's (%v)",
				ds, get(ds, "DRC").UpdateTime, get(ds, "Ripple").UpdateTime)
		}
		// Machine-independent: Ripple performs no more aggregation work
		// than recompute.
		if get(ds, "Ripple").VectorOps > 2*get(ds, "RC").VectorOps {
			t.Errorf("%s: Ripple vecOps %d vs RC %d", ds, get(ds, "Ripple").VectorOps, get(ds, "RC").VectorOps)
		}
	}
}

func TestFig9SummarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 sweep is slow")
	}
	h := New(Config{Scale: 0.03, StreamLen: 200, MaxBatches: 2, Hidden: 8, Seed: 7})
	cells, err := h.Fig9(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets × 5 workloads × 4 batch sizes × 3 strategies.
	if len(cells) != 180 {
		t.Fatalf("fig9 cells = %d, want 180", len(cells))
	}
	var sb strings.Builder
	Summary(&sb, cells)
	out := sb.String()
	if !strings.Contains(out, "Ripple/RC speedup") {
		t.Errorf("summary output missing ratios:\n%s", out)
	}
}

func TestFig11Shape(t *testing.T) {
	h := tinyHarness()
	cells, err := h.Fig11(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // 2 layer depths × 2 strategies
		t.Fatalf("fig11 cells = %d", len(cells))
	}
}

func TestFig12aDistributedSmoke(t *testing.T) {
	h := tinyHarness()
	cells, err := h.Fig12a(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 { // 2 workloads × 3 batch sizes × 2 strategies
		t.Fatalf("fig12a cells = %d", len(cells))
	}
	// RC must communicate more than Ripple in every configuration.
	for i := 0; i+1 < len(cells); i += 2 {
		rc, rp := cells[i], cells[i+1]
		if rc.Strategy != "RC" || rp.Strategy != "Ripple" {
			t.Fatalf("unexpected cell order %s/%s", rc.Strategy, rp.Strategy)
		}
		if rc.CommBytes <= rp.CommBytes {
			t.Errorf("bs=%d: RC bytes %d not above Ripple %d", rc.BatchSize, rc.CommBytes, rp.CommBytes)
		}
	}
}

func TestFig13bDistributedSmoke(t *testing.T) {
	h := tinyHarness()
	cells, err := h.Fig13b(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 { // 3 partition counts × 2 strategies
		t.Fatalf("fig13b cells = %d", len(cells))
	}
}

func TestWriteCells(t *testing.T) {
	var sb strings.Builder
	WriteCells(&sb, []Cell{{Figure: "figX", Dataset: "arxiv", Strategy: "Ripple", ThroughputUpS: 123.4, MedianLatency: 2 * time.Millisecond}})
	if !strings.Contains(sb.String(), "figX") || !strings.Contains(sb.String(), "123.4") {
		t.Errorf("WriteCells output: %s", sb.String())
	}
	WriteCells(&sb, nil) // must not panic
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("median(nil)")
	}
	if median([]time.Duration{3, 1, 2}) != 2 {
		t.Error("median odd")
	}
}

func TestNewStrategyUnknown(t *testing.T) {
	h := tinyHarness()
	if _, err := h.newStrategy("bogus", "arxiv", "GC-S", 2); err == nil {
		t.Error("expected error for unknown strategy")
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestAblationsSmoke(t *testing.T) {
	h := tinyHarness()
	cells, err := h.Ablations(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 4 pruning + 2 parallel + 6 serving + 3 partitioner cells.
	if len(cells) != 15 {
		t.Fatalf("ablation cells = %d, want 15", len(cells))
	}
	// The multilevel partitioner must communicate less than hash.
	var ml, hash int64
	for _, c := range cells {
		if c.Figure == "ablation-partitioner" {
			switch c.Strategy {
			case "multilevel":
				ml = c.CommBytes
			case "hash":
				hash = c.CommBytes
			}
		}
	}
	if ml == 0 || hash == 0 || ml >= hash {
		t.Errorf("multilevel bytes %d should undercut hash bytes %d", ml, hash)
	}
}
