package bench

import (
	"fmt"
	"io"
)

// Fig9 reproduces the single-machine sweep of Fig. 9: throughput and
// median batch latency for DRC, RC and Ripple across the five workloads,
// three datasets and four batch sizes, with 2-layer models.
func (h *Harness) Fig9(w io.Writer) ([]Cell, error) {
	return h.singleMachineSweep(w, "fig9", []string{"arxiv", "products", "reddit"}, 2)
}

// Fig10 reproduces Fig. 10: the same sweep with 3-layer models, Products
// only.
func (h *Harness) Fig10(w io.Writer) ([]Cell, error) {
	return h.singleMachineSweep(w, "fig10", []string{"products"}, 3)
}

func (h *Harness) singleMachineSweep(w io.Writer, figure string, datasets []string, layers int) ([]Cell, error) {
	workloads := []string{"GC-S", "GS-S", "GC-M", "GI-S", "GC-W"}
	batchSizes := []int{1, 10, 100, 1000}
	strategies := []string{"DRC", "RC", "Ripple"}
	var cells []Cell
	fmt.Fprintf(w, "%s: single-machine throughput/latency, %d-layer models\n", figure, layers)
	for _, ds := range datasets {
		wl, err := h.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, workload := range workloads {
			for _, bs := range batchSizes {
				for _, strat := range strategies {
					s, err := h.newStrategy(strat, ds, workload, layers)
					if err != nil {
						return nil, err
					}
					results, err := runStream(s, wl.Batches(bs), h.cfg.MaxBatches)
					if err != nil {
						return nil, err
					}
					cell := summarise(Cell{
						Figure: figure, Dataset: ds, Workload: workload,
						Strategy: strat, Layers: layers, BatchSize: bs,
					}, results, wl.Snapshot.NumVertices())
					cells = append(cells, cell)
					fmt.Fprintf(w, "  %-9s %-5s bs=%-5d %-7s thru=%10.1f up/s  medLat=%s\n",
						ds, workload, bs, strat, cell.ThroughputUpS, fmtDur(cell.MedianLatency))
				}
			}
		}
	}
	return cells, nil
}

// Summary prints the headline ratios of §7.3 from a fig9/fig10 cell list:
// peak Ripple throughput per dataset and mean speedups over RC and DRC.
func Summary(w io.Writer, cells []Cell) {
	type key struct {
		ds, workload string
		bs           int
	}
	thru := map[key]map[string]float64{}
	peak := map[string]float64{}
	for _, c := range cells {
		k := key{c.Dataset, c.Workload, c.BatchSize}
		if thru[k] == nil {
			thru[k] = map[string]float64{}
		}
		thru[k][c.Strategy] = c.ThroughputUpS
		if c.Strategy == "Ripple" && c.ThroughputUpS > peak[c.Dataset] {
			peak[c.Dataset] = c.ThroughputUpS
		}
	}
	gain := map[string][]float64{} // dataset → ratios vs RC
	gainD := map[string][]float64{}
	for k, m := range thru {
		if m["Ripple"] > 0 && m["RC"] > 0 {
			gain[k.ds] = append(gain[k.ds], m["Ripple"]/m["RC"])
		}
		if m["Ripple"] > 0 && m["DRC"] > 0 {
			gainD[k.ds] = append(gainD[k.ds], m["Ripple"]/m["DRC"])
		}
	}
	fmt.Fprintf(w, "\nSummary (§7.3 headline numbers):\n")
	for ds, p := range map[string]float64{"arxiv": 28000, "products": 1200, "reddit": 210} {
		if peak[ds] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-9s peak Ripple throughput %10.0f up/s (paper ≈%6.0f at full scale)\n", ds, peak[ds], p)
	}
	for ds := range gain {
		fmt.Fprintf(w, "  %-9s Ripple/RC speedup: max %.1fx mean %.1fx   Ripple/DRC: max %.1fx\n",
			ds, maxOf(gain[ds]), meanOf(gain[ds]), maxOf(gainD[ds]))
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
