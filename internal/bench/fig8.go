package bench

import (
	"fmt"
	"io"
)

// Fig8 reproduces the strategy comparison of Fig. 8: median batch latency
// split into update vs propagate for DNC/DNG/DRC/DRG/RC/Ripple with GC-S,
// 3 layers, batch size 10, on Arxiv- and Products-shaped graphs. The *G
// variants run the identical CPU computation under the simulated
// accelerator cost model (DESIGN.md §1).
//
// The vertex-wise strategies (DNC/DNG) rebuild full computation trees per
// affected target; on the dense Products substitute that is quadratically
// expensive (exactly the paper's point), so they run on a reduced batch
// count.
func (h *Harness) Fig8(w io.Writer) ([]Cell, error) {
	const workload, layers, bs = "GC-S", 3, 10
	strategies := []string{"DNC", "DNG", "DRC", "DRG", "RC", "Ripple"}
	var cells []Cell
	fmt.Fprintf(w, "Fig 8: strategy comparison (%s %dL, bs=%d), update vs propagate\n", workload, layers, bs)
	for _, ds := range []string{"arxiv", "products"} {
		wl, err := h.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, strat := range strategies {
			maxBatches := h.cfg.MaxBatches
			if strat == "DNC" || strat == "DNG" {
				// Vertex-wise recompute is orders of magnitude slower on
				// dense graphs; a few batches give a stable median.
				maxBatches = min(maxBatches, 3)
			}
			s, err := h.newStrategy(strat, ds, workload, layers)
			if err != nil {
				return nil, err
			}
			results, err := runStream(s, wl.Batches(bs), maxBatches)
			if err != nil {
				return nil, err
			}
			cell := summarise(Cell{
				Figure: "fig8", Dataset: ds, Workload: workload,
				Strategy: strat, Layers: layers, BatchSize: bs,
			}, results, wl.Snapshot.NumVertices())
			cells = append(cells, cell)
			fmt.Fprintf(w, "  %-9s %-7s update=%-10s propagate=%-10s total=%s\n",
				ds, strat, fmtDur(cell.UpdateTime), fmtDur(cell.PropagateTime),
				fmtDur(cell.UpdateTime+cell.PropagateTime))
		}
	}
	return cells, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
