package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/dataset"
	"ripple/internal/engine"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/transport"
)

// Ablations quantifies the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//
//  1. zero-delta pruning (the paper's Ripple propagates zero deltas for
//     determinism of the affected set; pruning stays exact — what does it
//     buy?);
//  2. the parallel apply phase (single-core vs multi-core single-machine
//     engine);
//  3. partitioner quality (multilevel vs LDG vs hash) as communication
//     volume in the distributed runtime.
func (h *Harness) Ablations(w io.Writer) ([]Cell, error) {
	var cells []Cell

	// --- 1. zero-delta pruning ---
	fmt.Fprintf(w, "Ablation 1: zero-delta pruning (GC-S 2L, bs=100)\n")
	for _, ds := range []string{"arxiv", "products"} {
		wl, err := h.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, prune := range []bool{false, true} {
			emb, m, err := h.bootstrap(ds, "GC-S", 2)
			if err != nil {
				return nil, err
			}
			s, err := engine.NewRipple(wl.CloneSnapshot(), m, emb, engine.Config{PruneZeroDeltas: prune})
			if err != nil {
				return nil, err
			}
			results, err := runStream(s, wl.Batches(100), h.cfg.MaxBatches)
			if err != nil {
				return nil, err
			}
			name := "Ripple"
			if prune {
				name = "Ripple+prune"
			}
			cell := summarise(Cell{Figure: "ablation-prune", Dataset: ds, Workload: "GC-S",
				Strategy: name, Layers: 2, BatchSize: 100}, results, wl.Snapshot.NumVertices())
			cells = append(cells, cell)
			fmt.Fprintf(w, "  %-9s %-13s thru=%10.1f up/s  affected=%5.2f%%  vecOps=%d\n",
				ds, name, cell.ThroughputUpS, cell.AffectedFrac*100, cell.VectorOps)
		}
	}

	// --- 2. serial vs parallel apply phase ---
	fmt.Fprintf(w, "Ablation 2: serial vs parallel apply (products GC-S 2L, bs=1000)\n")
	{
		wl, err := h.workload("products")
		if err != nil {
			return nil, err
		}
		for _, serial := range []bool{true, false} {
			emb, m, err := h.bootstrap("products", "GC-S", 2)
			if err != nil {
				return nil, err
			}
			s, err := engine.NewRipple(wl.CloneSnapshot(), m, emb, engine.Config{Serial: serial})
			if err != nil {
				return nil, err
			}
			results, err := runStream(s, wl.Batches(1000), h.cfg.MaxBatches)
			if err != nil {
				return nil, err
			}
			name := "parallel"
			if serial {
				name = "serial"
			}
			cell := summarise(Cell{Figure: "ablation-parallel", Dataset: "products",
				Workload: "GC-S", Strategy: name, Layers: 2, BatchSize: 1000},
				results, wl.Snapshot.NumVertices())
			cells = append(cells, cell)
			fmt.Fprintf(w, "  %-9s thru=%10.1f up/s  medLat=%s\n", name, cell.ThroughputUpS, fmtDur(cell.MedianLatency))
		}
	}

	// --- 2b. trigger-based (eager) vs request-based (lazy) serving ---
	fmt.Fprintf(w, "Ablation 2b: trigger-based vs request-based serving (arxiv GC-S 2L)\n")
	{
		wl, err := h.workload("arxiv")
		if err != nil {
			return nil, err
		}
		queryCells, err := h.servingCrossover(w, wl)
		if err != nil {
			return nil, err
		}
		cells = append(cells, queryCells...)
	}

	// --- 3. partitioner quality ---
	fmt.Fprintf(w, "Ablation 3: partitioner vs communication volume (papers GC-S 3L, 8 parts, bs=1000)\n")
	{
		wl, err := h.workload("papers")
		if err != nil {
			return nil, err
		}
		for _, pname := range []string{"multilevel", "ldg", "hash"} {
			emb, m, err := h.bootstrap("papers", "GC-S", 3)
			if err != nil {
				return nil, err
			}
			assign, err := partition.ByName(pname, wl.Snapshot, 8)
			if err != nil {
				return nil, err
			}
			q := partition.Evaluate(wl.Snapshot, assign)
			c, err := cluster.NewLocal(cluster.LocalConfig{
				Graph:      wl.CloneSnapshot(),
				Model:      m,
				Embeddings: emb,
				Assignment: assign,
				Strategy:   cluster.StratRipple,
				Net:        transport.TenGigE,
			})
			if err != nil {
				return nil, err
			}
			cell := Cell{Figure: "ablation-partitioner", Dataset: "papers", Workload: "GC-S",
				Strategy: pname, Layers: 3, BatchSize: 1000, Partitions: 8}
			batches := wl.Batches(1000)
			if len(batches) > h.cfg.MaxBatches {
				batches = batches[:h.cfg.MaxBatches]
			}
			for _, b := range batches {
				res, err := c.ApplyBatch(b)
				if err != nil {
					c.Close()
					return nil, err
				}
				cell.CommBytes += res.CommBytes
				cell.CommMsgs += res.CommMsgs
				cell.CommTime += res.SimCommTime
			}
			c.Close()
			cell.Batches = len(batches)
			cells = append(cells, cell)
			fmt.Fprintf(w, "  %-11s cut=%5.1f%%  commBytes=%-12d simCommTime=%s\n",
				pname, q.CutFraction*100, cell.CommBytes, fmtDur(cell.CommTime))
		}
	}
	return cells, nil
}

// servingCrossover measures total time to process a fixed update stream
// interleaved with label queries, for the trigger-based engine (pays
// propagation per batch, O(1) reads) versus the request-based Lazy engine
// (O(1) updates, vertex-wise recomputation per read), across query:update
// ratios. Update-heavy mixes favour Lazy; read-heavy mixes favour eager —
// the §2.2 trade-off as a measured crossover.
func (h *Harness) servingCrossover(w io.Writer, wl *dataset.Workload) ([]Cell, error) {
	const bs = 50
	emb, m, err := h.bootstrap("arxiv", "GC-S", 2)
	if err != nil {
		return nil, err
	}
	batches := wl.Batches(bs)
	if len(batches) > h.cfg.MaxBatches {
		batches = batches[:h.cfg.MaxBatches]
	}
	n := wl.Snapshot.NumVertices()
	var cells []Cell
	for _, queriesPerBatch := range []int{1, 50, 500} {
		// Eager: maintain embeddings, reads are lookups.
		eager, err := engine.NewRipple(wl.CloneSnapshot(), m, emb.Clone(), engine.Config{})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(h.cfg.Seed))
		start := time.Now()
		for _, b := range batches {
			if _, err := eager.ApplyBatch(b); err != nil {
				return nil, err
			}
			for q := 0; q < queriesPerBatch; q++ {
				_ = eager.Label(graph.VertexID(rng.Intn(n)))
			}
		}
		eagerTime := time.Since(start)

		// Lazy: O(1) updates, vertex-wise recompute per read.
		lazy, err := engine.NewLazy(wl.CloneSnapshot(), m, wl.CloneFeatures())
		if err != nil {
			return nil, err
		}
		rng = rand.New(rand.NewSource(h.cfg.Seed))
		start = time.Now()
		for _, b := range batches {
			if _, err := lazy.ApplyBatch(b); err != nil {
				return nil, err
			}
			for q := 0; q < queriesPerBatch; q++ {
				_ = lazy.Query(graph.VertexID(rng.Intn(n)))
			}
		}
		lazyTime := time.Since(start)

		cells = append(cells,
			Cell{Figure: "ablation-serving", Dataset: "arxiv", Workload: "GC-S",
				Strategy: "eager", Layers: 2, BatchSize: bs, Fanout: queriesPerBatch,
				MeanLatency: eagerTime / time.Duration(len(batches))},
			Cell{Figure: "ablation-serving", Dataset: "arxiv", Workload: "GC-S",
				Strategy: "lazy", Layers: 2, BatchSize: bs, Fanout: queriesPerBatch,
				MeanLatency: lazyTime / time.Duration(len(batches))},
		)
		fmt.Fprintf(w, "  queries/batch=%-4d eager=%-10s lazy=%-10s\n",
			queriesPerBatch, fmtDur(eagerTime/time.Duration(len(batches))), fmtDur(lazyTime/time.Duration(len(batches))))
	}
	return cells, nil
}
