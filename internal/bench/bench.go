// Package bench regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic dataset substitutes: one runner per
// experiment, each emitting the same rows/series the paper reports plus
// machine-independent counters (vector ops, bytes, messages) that survive
// hardware differences. cmd/ripplebench is the CLI front-end;
// bench_test.go exposes each runner as a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/partition"
)

// Config tunes experiment sizing. The zero value gives bench-friendly
// defaults: dataset scales chosen so the full suite completes in minutes
// while preserving each graph's published density (the driver of the
// paper's comparisons).
type Config struct {
	// Scale multiplies the per-dataset default scales (1 = defaults).
	// The defaults are already reduced from the paper's full sizes; see
	// DefaultScales.
	Scale float64
	// StreamLen is the number of updates prepared per dataset (paper: 90K).
	StreamLen int
	// MaxBatches caps the batches measured per experiment cell.
	MaxBatches int
	// Hidden is the hidden-layer width of every model.
	Hidden int
	// Seed drives models and streams.
	Seed int64
}

// DefaultScales holds the per-dataset vertex-count scales (fraction of the
// published |V|) used when Config.Scale == 1. Chosen so density — the
// quantity the evaluation actually varies — is preserved exactly while
// total state stays laptop-sized.
var DefaultScales = map[string]float64{
	"arxiv":    0.25,  // ≈42K vertices, ≈292K edges
	"reddit":   0.008, // ≈1.9K vertices, ≈917K edges (density 492 kept)
	"products": 0.01,  // ≈24K vertices, ≈1.24M edges
	"papers":   0.001, // ≈111K vertices, ≈1.6M edges (distributed runs)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.StreamLen <= 0 {
		c.StreamLen = 3000
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 20
	}
	if c.Hidden <= 0 {
		c.Hidden = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Cell is one measured point of an experiment: a (dataset, workload,
// strategy, parameters) tuple with its metrics. Figures are flat lists of
// cells.
type Cell struct {
	Figure     string
	Dataset    string
	Workload   string
	Strategy   string
	Layers     int
	BatchSize  int
	Partitions int
	Fanout     int

	Batches       int
	ThroughputUpS float64
	MedianLatency time.Duration
	MeanLatency   time.Duration
	UpdateTime    time.Duration // median per batch
	PropagateTime time.Duration // median per batch (simulated for accel)
	AffectedFrac  float64       // mean affected vertices ÷ |V|
	VectorOps     int64         // total
	CommBytes     int64
	CommMsgs      int64
	ComputeTime   time.Duration // distributed: summed critical-path compute
	CommTime      time.Duration // distributed: summed modelled comm time
	AccuracyPct   float64       // Fig. 2a: label agreement with exact inference
}

// Harness caches datasets and bootstrapped embeddings across experiment
// cells so the expensive generation/forward passes run once.
type Harness struct {
	cfg         Config
	workloads   map[string]*dataset.Workload
	boots       map[string]*gnn.Embeddings
	models      map[string]*gnn.Model
	assignments map[string]*partition.Assignment
}

// New builds a harness with the given config.
func New(cfg Config) *Harness {
	return &Harness{
		cfg:       cfg.withDefaults(),
		workloads: map[string]*dataset.Workload{},
		boots:     map[string]*gnn.Embeddings{},
		models:    map[string]*gnn.Model{},
	}
}

// Config returns the harness's effective (default-filled) config.
func (h *Harness) Config() Config { return h.cfg }

// workload returns the (cached) dataset + update stream.
func (h *Harness) workload(ds string) (*dataset.Workload, error) {
	if w, ok := h.workloads[ds]; ok {
		return w, nil
	}
	spec, err := dataset.ByName(ds, DefaultScales[ds]*h.cfg.Scale)
	if err != nil {
		return nil, err
	}
	w, err := dataset.Build(spec, dataset.StreamConfig{
		Total:       h.cfg.StreamLen,
		HoldoutFrac: 0.10,
		Seed:        h.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	h.workloads[ds] = w
	return w, nil
}

// model returns the (cached) workload model for a dataset.
func (h *Harness) model(ds, workload string, layers int) (*gnn.Model, error) {
	key := fmt.Sprintf("%s/%s/%d", ds, workload, layers)
	if m, ok := h.models[key]; ok {
		return m, nil
	}
	w, err := h.workload(ds)
	if err != nil {
		return nil, err
	}
	dims := []int{w.Spec.FeatureDim}
	for i := 1; i < layers; i++ {
		dims = append(dims, h.cfg.Hidden)
	}
	dims = append(dims, w.Spec.NumClasses)
	m, err := gnn.NewWorkload(workload, dims, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	h.models[key] = m
	return m, nil
}

// bootstrap returns a fresh copy of the bootstrapped embeddings for
// (dataset, workload, layers); the underlying forward pass runs once.
func (h *Harness) bootstrap(ds, workload string, layers int) (*gnn.Embeddings, *gnn.Model, error) {
	m, err := h.model(ds, workload, layers)
	if err != nil {
		return nil, nil, err
	}
	key := fmt.Sprintf("%s/%s/%d", ds, workload, layers)
	if e, ok := h.boots[key]; ok {
		return e.Clone(), m, nil
	}
	w, err := h.workload(ds)
	if err != nil {
		return nil, nil, err
	}
	e, err := gnn.Forward(w.Snapshot, m, w.Features)
	if err != nil {
		return nil, nil, err
	}
	h.boots[key] = e
	return e.Clone(), m, nil
}

// newStrategy builds a named single-machine strategy over fresh state.
func (h *Harness) newStrategy(name, ds, workload string, layers int) (engine.Strategy, error) {
	w, err := h.workload(ds)
	if err != nil {
		return nil, err
	}
	emb, m, err := h.bootstrap(ds, workload, layers)
	if err != nil {
		return nil, err
	}
	g := w.CloneSnapshot()
	switch name {
	case "Ripple":
		return engine.NewRipple(g, m, emb, engine.Config{})
	case "RC":
		return engine.NewRC(g, m, emb, engine.Config{})
	case "DRC":
		return engine.NewDRC(g, m, emb, engine.Config{})
	case "DRG":
		drc, err := engine.NewDRC(g, m, emb, engine.Config{})
		if err != nil {
			return nil, err
		}
		return engine.NewAccel(drc, engine.DefaultAccelModel), nil
	case "DNC", "DNG":
		labels := make([]int32, emb.N)
		for u := 0; u < emb.N; u++ {
			labels[u] = int32(emb.Label(int32(u)))
		}
		// Vertex-wise cost is linear in targets; a 16-target sample with
		// extrapolation keeps dense-graph cells tractable (see
		// engine.Config.SampleTargets).
		dnc, err := engine.NewDNC(g, m, w.CloneFeatures(), labels, engine.Config{SampleTargets: 16})
		if err != nil {
			return nil, err
		}
		if name == "DNG" {
			return engine.NewAccel(dnc, engine.DefaultAccelModel), nil
		}
		return dnc, nil
	default:
		return nil, fmt.Errorf("bench: unknown strategy %q", name)
	}
}

// runStream drives a strategy through up to maxBatches batches of the
// dataset's stream and aggregates per-batch results.
func runStream(s engine.Strategy, batches [][]engine.Update, maxBatches int) ([]engine.BatchResult, error) {
	if maxBatches > 0 && len(batches) > maxBatches {
		batches = batches[:maxBatches]
	}
	out := make([]engine.BatchResult, 0, len(batches))
	for i, b := range batches {
		res, err := s.ApplyBatch(b)
		if err != nil {
			return nil, fmt.Errorf("bench: %s batch %d: %w", s.Name(), i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// summarise folds per-batch results into a Cell.
func summarise(cell Cell, results []engine.BatchResult, numVertices int) Cell {
	if len(results) == 0 {
		return cell
	}
	lat := make([]time.Duration, len(results))
	upd := make([]time.Duration, len(results))
	prop := make([]time.Duration, len(results))
	var totalLat time.Duration
	var updates, affected, vecOps int64
	for i, r := range results {
		lat[i] = r.Total()
		upd[i] = r.UpdateTime
		prop[i] = r.Total() - r.UpdateTime
		totalLat += lat[i]
		updates += int64(r.Updates)
		affected += int64(r.Affected)
		vecOps += r.VectorOps
	}
	cell.Batches = len(results)
	cell.MedianLatency = median(lat)
	cell.MeanLatency = totalLat / time.Duration(len(results))
	cell.UpdateTime = median(upd)
	cell.PropagateTime = median(prop)
	cell.VectorOps = vecOps
	if totalLat > 0 {
		cell.ThroughputUpS = float64(updates) / totalLat.Seconds()
	}
	if numVertices > 0 {
		cell.AffectedFrac = float64(affected) / float64(len(results)) / float64(numVertices)
	}
	return cell
}

func median(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WriteCells renders cells as an aligned text table.
func WriteCells(w io.Writer, cells []Cell) {
	if len(cells) == 0 {
		return
	}
	fmt.Fprintf(w, "%-8s %-9s %-5s %-7s %2s %6s %5s %12s %12s %12s %8s %14s %12s %10s\n",
		"figure", "dataset", "wload", "strat", "L", "bs", "parts",
		"thru(up/s)", "medLat", "updTime", "aff%", "vecOps", "commBytes", "acc%")
	for _, c := range cells {
		fmt.Fprintf(w, "%-8s %-9s %-5s %-7s %2d %6d %5d %12.1f %12s %12s %7.2f%% %14d %12d %9.1f%%\n",
			c.Figure, c.Dataset, c.Workload, c.Strategy, c.Layers, c.BatchSize, c.Partitions,
			c.ThroughputUpS, fmtDur(c.MedianLatency), fmtDur(c.UpdateTime),
			c.AffectedFrac*100, c.VectorOps, c.CommBytes, c.AccuracyPct)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
