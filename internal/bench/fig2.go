package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
)

// Fig2a reproduces the sampling trade-off (Fig. 2a): vertex-wise inference
// accuracy and latency vs neighbourhood-sampling fanout on the Reddit
// substitute with a 3-layer SAGEConv model. Accuracy is label agreement
// with exact (unsampled) inference — the determinism/correctness property
// the paper motivates with this figure.
//
// SAGEConv's default aggregation is mean, which is what makes sampled
// estimates unbiased (agreement grows with fanout); sum aggregation would
// scale logits by the sampling ratio and destroy agreement.
func (h *Harness) Fig2a(w io.Writer) ([]Cell, error) {
	const ds, workload, layers = "reddit", "SAGE-mean", 3
	wl, err := h.workload(ds)
	if err != nil {
		return nil, err
	}
	spec := gnn.Spec{
		Kind: gnn.GraphSAGE,
		Agg:  gnn.AggMean,
		Dims: []int{wl.Spec.FeatureDim, h.cfg.Hidden, h.cfg.Hidden, wl.Spec.NumClasses},
		Seed: h.cfg.Seed,
	}
	m, err := gnn.NewModel(spec)
	if err != nil {
		return nil, err
	}
	emb, err := gnn.Forward(wl.Snapshot, m, wl.Features)
	if err != nil {
		return nil, err
	}
	g := wl.Snapshot
	n := g.NumVertices()

	targets := h.cfg.MaxBatches * 2
	if targets > n {
		targets = n
	}
	rng := rand.New(rand.NewSource(h.cfg.Seed))
	targetIDs := make([]graph.VertexID, targets)
	for i := range targetIDs {
		targetIDs[i] = graph.VertexID(rng.Intn(n))
	}

	var cells []Cell
	fmt.Fprintf(w, "Fig 2a: fanout vs accuracy & latency (%s, %s %dL)\n", ds, workload, layers)
	for _, fanout := range []int{4, 8, 16, 32} {
		hits := 0
		start := time.Now()
		for _, t := range targetIDs {
			pred := gnn.InferVertexSampled(g, m, wl.Features, t, fanout, rng).ArgMax()
			if pred == emb.Label(int32(t)) {
				hits++
			}
		}
		elapsed := time.Since(start)
		cell := Cell{
			Figure:        "fig2a",
			Dataset:       ds,
			Workload:      workload,
			Strategy:      "vertex-sampled",
			Layers:        layers,
			Fanout:        fanout,
			Batches:       targets,
			AccuracyPct:   100 * float64(hits) / float64(targets),
			MeanLatency:   elapsed / time.Duration(targets),
			MedianLatency: elapsed / time.Duration(targets),
		}
		cells = append(cells, cell)
		fmt.Fprintf(w, "  fanout=%-3d accuracy=%5.1f%%  avgLatency=%s\n",
			fanout, cell.AccuracyPct, fmtDur(cell.MeanLatency))
	}
	return cells, nil
}

// Fig2b reproduces the affected-vertices/latency growth with batch size
// (Fig. 2b): % of affected vertices and per-batch latency for RC and
// Ripple on Arxiv and Products, 3-layer GraphSAGE.
func (h *Harness) Fig2b(w io.Writer) ([]Cell, error) {
	const workload, layers = "GS-S", 3
	var cells []Cell
	fmt.Fprintf(w, "Fig 2b: %% affected vertices and batch latency vs batch size (%s %dL)\n", workload, layers)
	for _, ds := range []string{"arxiv", "products"} {
		wl, err := h.workload(ds)
		if err != nil {
			return nil, err
		}
		for _, bs := range []int{1, 10, 100} {
			for _, strat := range []string{"RC", "Ripple"} {
				s, err := h.newStrategy(strat, ds, workload, layers)
				if err != nil {
					return nil, err
				}
				results, err := runStream(s, wl.Batches(bs), h.cfg.MaxBatches)
				if err != nil {
					return nil, err
				}
				cell := summarise(Cell{
					Figure: "fig2b", Dataset: ds, Workload: workload,
					Strategy: strat, Layers: layers, BatchSize: bs,
				}, results, wl.Snapshot.NumVertices())
				cells = append(cells, cell)
				fmt.Fprintf(w, "  %-9s bs=%-4d %-7s affected=%5.2f%%  medLat=%s\n",
					ds, bs, strat, cell.AffectedFrac*100, fmtDur(cell.MedianLatency))
			}
		}
	}
	return cells, nil
}
