package bench

import (
	"fmt"
	"io"

	"ripple/internal/dataset"
)

// paperTable3 records the published dataset statistics for side-by-side
// reporting.
var paperTable3 = map[string]struct {
	v, feats, classes int
	e                 int64
	avgInDeg          float64
}{
	"arxiv":    {169343, 128, 40, 1_200_000, 6.9},
	"reddit":   {232965, 602, 41, 114_900_000, 492},
	"products": {2449029, 100, 47, 123_700_000, 50.5},
	"papers":   {111059956, 128, 172, 1_620_000_000, 14.5},
}

// Table3 regenerates the dataset-statistics table over the synthetic
// substitutes, printing generated-vs-published shape.
func (h *Harness) Table3(w io.Writer) ([]Cell, error) {
	fmt.Fprintf(w, "Table 3: datasets (synthetic substitutes at scale, density preserved)\n")
	fmt.Fprintf(w, "%-9s %10s %12s %7s %8s %10s %10s %14s\n",
		"graph", "|V|", "|E|", "#feat", "#class", "avgInDeg", "paperDeg", "paper|V|")
	var cells []Cell
	for _, ds := range []string{"arxiv", "reddit", "products", "papers"} {
		wl, err := h.workload(ds)
		if err != nil {
			return nil, err
		}
		// Report the full pre-holdout graph: snapshot + held-out additions.
		full := wl.Spec.NumEdges()
		st := dataset.Measure(wl.Spec, wl.Snapshot)
		p := paperTable3[ds]
		fmt.Fprintf(w, "%-9s %10d %12d %7d %8d %10.1f %10.1f %14d\n",
			ds, st.NumVertices, full, st.FeatureDim, st.NumClasses,
			wl.Spec.AvgInDegree, p.avgInDeg, p.v)
		cells = append(cells, Cell{
			Figure:       "table3",
			Dataset:      ds,
			AffectedFrac: 0,
			VectorOps:    full,
		})
	}
	return cells, nil
}
