package bench

import (
	"fmt"
	"io"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/partition"
)

// distCell runs one distributed configuration end to end and aggregates
// the workers' reports.
func (h *Harness) distCell(figure, ds, workload string, layers, parts, bs int, strat cluster.Strategy, maxBatches int) (Cell, error) {
	wl, err := h.workload(ds)
	if err != nil {
		return Cell{}, err
	}
	emb, m, err := h.bootstrap(ds, workload, layers)
	if err != nil {
		return Cell{}, err
	}
	assign, err := h.assignment(ds, parts)
	if err != nil {
		return Cell{}, err
	}
	g := wl.CloneSnapshot()
	c, err := cluster.NewLocal(cluster.LocalConfig{
		Graph:      g,
		Model:      m,
		Embeddings: emb,
		Assignment: assign,
		Strategy:   strat,
	})
	if err != nil {
		return Cell{}, err
	}
	defer c.Close()

	batches := wl.Batches(bs)
	if maxBatches > 0 && len(batches) > maxBatches {
		batches = batches[:maxBatches]
	}
	cell := Cell{
		Figure: figure, Dataset: ds, Workload: workload,
		Strategy: strategyLabel(strat), Layers: layers,
		BatchSize: bs, Partitions: parts,
	}
	var totalLat, comp, comm time.Duration
	var updates int64
	lats := make([]time.Duration, 0, len(batches))
	for i, b := range batches {
		res, err := c.ApplyBatch(b)
		if err != nil {
			return cell, fmt.Errorf("bench: %s parts=%d batch %d: %w", strat, parts, i, err)
		}
		lat := res.SimLatency()
		lats = append(lats, lat)
		totalLat += lat
		comp += res.UpdateTime + res.ComputeTime
		comm += res.SimCommTime
		updates += int64(res.Updates)
		cell.CommBytes += res.CommBytes
		cell.CommMsgs += res.CommMsgs
		cell.VectorOps += res.VectorOps
		cell.AffectedFrac += float64(res.Affected)
	}
	cell.Batches = len(batches)
	cell.MedianLatency = median(lats)
	if len(batches) > 0 {
		cell.MeanLatency = totalLat / time.Duration(len(batches))
		cell.AffectedFrac = cell.AffectedFrac / float64(len(batches)) / float64(g.NumVertices())
	}
	if totalLat > 0 {
		cell.ThroughputUpS = float64(updates) / totalLat.Seconds()
	}
	cell.ComputeTime = comp
	cell.CommTime = comm
	return cell, nil
}

func strategyLabel(s cluster.Strategy) string {
	if s == cluster.StratRipple {
		return "Ripple"
	}
	return "RC"
}

// assignment caches multilevel partitions per (dataset, k).
func (h *Harness) assignment(ds string, parts int) (*partition.Assignment, error) {
	wl, err := h.workload(ds)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("assign/%s/%d", ds, parts)
	if a, ok := h.assignments[key]; ok {
		return a, nil
	}
	a, err := partition.Multilevel(wl.Snapshot, parts, partition.DefaultMultilevelOptions)
	if err != nil {
		return nil, err
	}
	if h.assignments == nil {
		h.assignments = map[string]*partition.Assignment{}
	}
	h.assignments[key] = a
	return a, nil
}

// Fig12a reproduces the distributed throughput/latency sweep on the
// Papers substitute: 8 partitions, GC-S and GC-M, 3 layers, batch sizes
// {10, 100, 1000}, Ripple vs distributed RC.
func (h *Harness) Fig12a(w io.Writer) ([]Cell, error) {
	var cells []Cell
	fmt.Fprintf(w, "Fig 12a: distributed throughput/latency, papers, 8 partitions, 3L\n")
	for _, workload := range []string{"GC-S", "GC-M"} {
		for _, bs := range []int{10, 100, 1000} {
			for _, strat := range []cluster.Strategy{cluster.StratRC, cluster.StratRipple} {
				cell, err := h.distCell("fig12a", "papers", workload, 3, 8, bs, strat, h.cfg.MaxBatches)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
				fmt.Fprintf(w, "  %-5s bs=%-5d %-7s thru=%10.1f up/s  medLat=%s\n",
					workload, bs, cell.Strategy, cell.ThroughputUpS, fmtDur(cell.MedianLatency))
			}
		}
	}
	return cells, nil
}

// Fig12b reproduces the strong-scaling study on Papers: partitions 4–16
// for batch sizes {10, 100, 1000}, GC-S 3-layer.
func (h *Harness) Fig12b(w io.Writer) ([]Cell, error) {
	var cells []Cell
	fmt.Fprintf(w, "Fig 12b: strong scaling on papers (GC-S 3L)\n")
	for _, parts := range []int{4, 6, 8, 10, 12, 16} {
		for _, bs := range []int{10, 100, 1000} {
			for _, strat := range []cluster.Strategy{cluster.StratRC, cluster.StratRipple} {
				cell, err := h.distCell("fig12b", "papers", "GC-S", 3, parts, bs, strat, h.cfg.MaxBatches)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
				fmt.Fprintf(w, "  parts=%-3d bs=%-5d %-7s thru=%10.1f up/s\n",
					parts, bs, cell.Strategy, cell.ThroughputUpS)
			}
		}
	}
	return cells, nil
}

// Fig12c reports the compute/communication split of the bs=1000 series
// (the paper plots it from the same runs as 12b).
func (h *Harness) Fig12c(w io.Writer) ([]Cell, error) {
	var cells []Cell
	fmt.Fprintf(w, "Fig 12c: compute vs communication time, papers (GC-S 3L, bs=1000)\n")
	for _, parts := range []int{4, 6, 8, 10, 12, 16} {
		for _, strat := range []cluster.Strategy{cluster.StratRC, cluster.StratRipple} {
			cell, err := h.distCell("fig12c", "papers", "GC-S", 3, parts, 1000, strat, h.cfg.MaxBatches)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
			fmt.Fprintf(w, "  parts=%-3d %-7s comp=%-10s comm=%-10s bytes=%d\n",
				parts, cell.Strategy, fmtDur(cell.ComputeTime), fmtDur(cell.CommTime), cell.CommBytes)
		}
	}
	return cells, nil
}

// Fig13a reproduces the distributed Products run: 8 partitions,
// GC-S 3-layer, throughput and latency across batch sizes.
func (h *Harness) Fig13a(w io.Writer) ([]Cell, error) {
	var cells []Cell
	fmt.Fprintf(w, "Fig 13a: distributed products, 8 partitions (GC-S 3L)\n")
	for _, bs := range []int{10, 100, 1000} {
		for _, strat := range []cluster.Strategy{cluster.StratRC, cluster.StratRipple} {
			cell, err := h.distCell("fig13a", "products", "GC-S", 3, 8, bs, strat, h.cfg.MaxBatches)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
			fmt.Fprintf(w, "  bs=%-5d %-7s thru=%10.1f up/s  medLat=%s\n",
				bs, cell.Strategy, cell.ThroughputUpS, fmtDur(cell.MedianLatency))
		}
	}
	return cells, nil
}

// Fig13b reproduces the Products scaling of compute/communication across
// 2, 4 and 8 partitions at batch size 1000.
func (h *Harness) Fig13b(w io.Writer) ([]Cell, error) {
	var cells []Cell
	fmt.Fprintf(w, "Fig 13b: products comp/comm scaling (GC-S 3L, bs=1000)\n")
	for _, parts := range []int{2, 4, 8} {
		for _, strat := range []cluster.Strategy{cluster.StratRC, cluster.StratRipple} {
			cell, err := h.distCell("fig13b", "products", "GC-S", 3, parts, 1000, strat, h.cfg.MaxBatches)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
			fmt.Fprintf(w, "  parts=%-3d %-7s comp=%-10s comm=%-10s\n",
				parts, cell.Strategy, fmtDur(cell.ComputeTime), fmtDur(cell.CommTime))
		}
	}
	return cells, nil
}
