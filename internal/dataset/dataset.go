// Package dataset generates the synthetic graphs and update streams that
// stand in for the paper's OGB datasets (§7.1.2, Table 3). Real OGB data
// cannot be fetched in this offline environment, so each dataset is
// replaced by a seeded power-law generator parameterised to the published
// shape statistics — |V|, average in-degree, feature width and class count
// — with a scale knob for bench-friendly sizes. The evaluation's
// independent variables (size, density, feature width) are preserved; see
// DESIGN.md §1.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// Spec describes a synthetic dataset's shape.
type Spec struct {
	Name        string
	NumVertices int
	AvgInDegree float64
	FeatureDim  int
	NumClasses  int
	// Skew shapes the power-law vertex popularity: higher skew
	// concentrates edges on fewer hubs. 0 means the default (2.2).
	Skew float64
	// Seed makes generation deterministic.
	Seed int64
}

// NumEdges returns the target edge count implied by the spec.
func (s Spec) NumEdges() int64 {
	return int64(math.Round(float64(s.NumVertices) * s.AvgInDegree))
}

// The paper's four datasets (Table 3), scaled by the given factor in
// vertex count (density, features and classes are preserved — they, not
// raw size, drive the evaluation's comparisons). scale == 1 reproduces the
// published vertex counts.

// Arxiv is the ogbn-arxiv citation network shape: 169K vertices, avg
// in-degree 6.9, 128 features, 40 classes.
func Arxiv(scale float64) Spec {
	return scaled(Spec{Name: "arxiv", NumVertices: 169343, AvgInDegree: 6.9, FeatureDim: 128, NumClasses: 40, Seed: 101}, scale)
}

// Reddit is the Reddit social network shape: 233K vertices, avg in-degree
// 492, 602 features, 41 classes.
func Reddit(scale float64) Spec {
	return scaled(Spec{Name: "reddit", NumVertices: 232965, AvgInDegree: 492, FeatureDim: 602, NumClasses: 41, Seed: 102}, scale)
}

// Products is the ogbn-products co-purchase network shape: 2.45M vertices,
// avg in-degree 50.5, 100 features, 47 classes.
func Products(scale float64) Spec {
	return scaled(Spec{Name: "products", NumVertices: 2449029, AvgInDegree: 50.5, FeatureDim: 100, NumClasses: 47, Seed: 103}, scale)
}

// Papers is the ogbn-papers100M citation network shape: 111M vertices, avg
// in-degree 14.5, 128 features, 172 classes. At scale 1 its state exceeds
// single-machine RAM (the paper's motivation for distributed execution).
func Papers(scale float64) Spec {
	return scaled(Spec{Name: "papers", NumVertices: 111059956, AvgInDegree: 14.5, FeatureDim: 128, NumClasses: 172, Seed: 104}, scale)
}

// ByName returns the named dataset spec at the given scale.
func ByName(name string, scale float64) (Spec, error) {
	switch name {
	case "arxiv":
		return Arxiv(scale), nil
	case "reddit":
		return Reddit(scale), nil
	case "products":
		return Products(scale), nil
	case "papers":
		return Papers(scale), nil
	default:
		return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

func scaled(s Spec, scale float64) Spec {
	if scale <= 0 {
		scale = 1
	}
	s.NumVertices = int(math.Max(8, math.Round(float64(s.NumVertices)*scale)))
	// Dense graphs (Reddit: avg in-degree 492) cannot keep their density
	// at extreme down-scales — a simple graph on n vertices holds at most
	// n-1 in-edges per vertex. Clamp to a 35% load factor so tiny test
	// scales stay generable; at the default benchmark scales the published
	// density is preserved exactly.
	if maxDeg := 0.35 * float64(s.NumVertices-1); s.AvgInDegree > maxDeg {
		s.AvgInDegree = maxDeg
	}
	return s
}

// Generate materialises the spec: a power-law directed graph plus seeded
// features. Edge weights are drawn uniformly from [0.5, 1.5) so
// weighted-sum workloads (GC-W) are meaningful on every dataset; sum/mean
// aggregators ignore them.
func Generate(spec Spec) (*graph.Graph, []tensor.Vector, error) {
	if spec.NumVertices <= 0 {
		return nil, nil, fmt.Errorf("dataset: %q has no vertices", spec.Name)
	}
	if spec.AvgInDegree < 0 {
		return nil, nil, fmt.Errorf("dataset: %q negative density", spec.Name)
	}
	skew := spec.Skew
	if skew == 0 {
		skew = 2.2
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.NumVertices
	g := graph.New(n)
	target := spec.NumEdges()
	if maxPossible := int64(n) * int64(n-1); target > maxPossible {
		return nil, nil, fmt.Errorf("dataset: %q wants %d edges but a simple graph on %d vertices holds at most %d",
			spec.Name, target, n, maxPossible)
	}

	// Power-law endpoint sampling: id = ⌊n·u^skew⌋ concentrates edges on
	// low ids (the hubs), yielding a heavy-tailed in/out-degree
	// distribution like the citation/social/co-purchase graphs the paper
	// uses. Duplicate draws are retried with a bounded budget.
	attempts := int64(0)
	budget := target * 20
	for g.NumEdges() < target && attempts < budget {
		attempts++
		u := skewedVertex(rng, n, skew)
		v := skewedVertex(rng, n, skew)
		if u == v {
			continue
		}
		w := 0.5 + rng.Float32()
		_ = g.AddEdge(u, v, w) // duplicate → retry
	}
	if g.NumEdges() < target {
		return nil, nil, fmt.Errorf("dataset: %q saturated at %d/%d edges", spec.Name, g.NumEdges(), target)
	}

	x := make([]tensor.Vector, n)
	for i := range x {
		x[i] = tensor.NewVector(spec.FeatureDim)
		for j := range x[i] {
			x[i][j] = rng.Float32()*2 - 1
		}
	}
	return g, x, nil
}

// skewedVertex draws a vertex id with power-law popularity.
func skewedVertex(rng *rand.Rand, n int, skew float64) graph.VertexID {
	id := int(math.Pow(rng.Float64(), skew) * float64(n))
	if id >= n {
		id = n - 1
	}
	return graph.VertexID(id)
}

// Stats summarises a graph for the Table 3 reproduction.
type Stats struct {
	Name        string
	NumVertices int
	NumEdges    int64
	FeatureDim  int
	NumClasses  int
	AvgInDegree float64
	MaxInDegree int
}

// Measure computes dataset statistics for a generated graph.
func Measure(spec Spec, g *graph.Graph) Stats {
	maxIn := 0
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.InDegree(graph.VertexID(u)); d > maxIn {
			maxIn = d
		}
	}
	return Stats{
		Name:        spec.Name,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		FeatureDim:  spec.FeatureDim,
		NumClasses:  spec.NumClasses,
		AvgInDegree: g.AvgInDegree(),
		MaxInDegree: maxIn,
	}
}
