package dataset

import (
	"fmt"
	"math/rand"

	"ripple/internal/engine"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// StreamConfig controls update-stream preparation (§7.1.2): a fraction of
// the generated edges is held out of the initial snapshot and streamed
// back as additions, an equal number of snapshot edges is streamed as
// deletions, and an equal number of random vertices receives feature
// updates — shuffled into one stream.
type StreamConfig struct {
	// Total is the number of updates to emit (the paper uses 90K per
	// graph, split equally across the three kinds).
	Total int
	// HoldoutFrac is the fraction of edges withheld from the snapshot for
	// streaming as additions (the paper uses 0.10). The holdout also upper-
	// bounds the number of additions in the stream.
	HoldoutFrac float64
	// Seed makes stream preparation deterministic.
	Seed int64
}

// Workload bundles a bootstrap-ready snapshot with its update stream.
type Workload struct {
	Spec     Spec
	Snapshot *graph.Graph // initial topology (holdout removed)
	Features []tensor.Vector
	Updates  []engine.Update
}

// CloneSnapshot returns an independent copy of the snapshot topology, for
// handing to a strategy that mutates its graph.
func (w *Workload) CloneSnapshot() *graph.Graph { return w.Snapshot.Clone() }

// CloneFeatures returns an independent copy of the features.
func (w *Workload) CloneFeatures() []tensor.Vector {
	out := make([]tensor.Vector, len(w.Features))
	for i, row := range w.Features {
		out[i] = row.Clone()
	}
	return out
}

// Batches partitions the update stream into fixed-size batches (the
// paper's batching model, §4.1). The final short batch is kept.
func (w *Workload) Batches(size int) [][]engine.Update {
	if size <= 0 {
		size = 1
	}
	var out [][]engine.Update
	for lo := 0; lo < len(w.Updates); lo += size {
		hi := lo + size
		if hi > len(w.Updates) {
			hi = len(w.Updates)
		}
		out = append(out, w.Updates[lo:hi])
	}
	return out
}

// Build generates the full graph for spec, splits off the holdout, and
// prepares the shuffled update stream. The stream is valid under any
// batching: each added edge is absent from the snapshot and added once;
// each deleted edge is a distinct snapshot edge never touched by an add;
// feature updates are always valid.
func Build(spec Spec, cfg StreamConfig) (*Workload, error) {
	if cfg.HoldoutFrac < 0 || cfg.HoldoutFrac >= 1 {
		return nil, fmt.Errorf("dataset: holdout fraction %v out of [0,1)", cfg.HoldoutFrac)
	}
	full, x, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ spec.Seed))

	type wedge struct {
		u, v graph.VertexID
		w    float32
	}
	all := make([]wedge, 0, full.NumEdges())
	full.ForEachEdge(func(u, v graph.VertexID, w float32) {
		all = append(all, wedge{u, v, w})
	})
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	holdout := int(float64(len(all)) * cfg.HoldoutFrac)
	perKind := cfg.Total / 3
	adds := all[:holdout]
	if perKind < len(adds) {
		adds = adds[:perKind]
	}
	// Snapshot = full graph minus the entire holdout (matching the paper:
	// the snapshot has 90% of edges even if the stream is shorter).
	snapshot := full
	for _, e := range all[:holdout] {
		if _, err := snapshot.RemoveEdge(e.u, e.v); err != nil {
			return nil, fmt.Errorf("dataset: removing holdout edge: %w", err)
		}
	}

	dels := all[holdout:]
	if perKind < len(dels) {
		dels = dels[:perKind]
	}

	var updates []engine.Update
	for _, e := range adds {
		updates = append(updates, engine.Update{Kind: engine.EdgeAdd, U: e.u, V: e.v, Weight: e.w})
	}
	for _, e := range dels {
		updates = append(updates, engine.Update{Kind: engine.EdgeDelete, U: e.u, V: e.v})
	}
	nFeat := cfg.Total - len(adds) - len(dels)
	for i := 0; i < nFeat; i++ {
		u := graph.VertexID(rng.Intn(spec.NumVertices))
		feat := tensor.NewVector(spec.FeatureDim)
		for j := range feat {
			feat[j] = rng.Float32()*2 - 1
		}
		updates = append(updates, engine.Update{Kind: engine.FeatureUpdate, U: u, Features: feat})
	}
	rng.Shuffle(len(updates), func(i, j int) { updates[i], updates[j] = updates[j], updates[i] })

	return &Workload{Spec: spec, Snapshot: snapshot, Features: x, Updates: updates}, nil
}
