package dataset

import (
	"testing"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
)

func TestSpecScaling(t *testing.T) {
	full := Arxiv(1)
	if full.NumVertices != 169343 || full.AvgInDegree != 6.9 {
		t.Errorf("Arxiv(1) = %+v", full)
	}
	small := Arxiv(0.01)
	if small.NumVertices != 1693 {
		t.Errorf("Arxiv(0.01).NumVertices = %d", small.NumVertices)
	}
	if small.FeatureDim != 128 || small.NumClasses != 40 {
		t.Error("scaling must not change features/classes")
	}
	if def := Arxiv(0); def.NumVertices != 169343 {
		t.Error("scale 0 should mean full size")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"arxiv", "reddit", "products", "papers"} {
		spec, err := ByName(name, 0.001)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("spec name %q", spec.Name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestGenerateShape(t *testing.T) {
	spec := Arxiv(0.02) // ~3.4K vertices, ~23K edges
	g, x, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != spec.NumVertices {
		t.Errorf("vertices = %d, want %d", g.NumVertices(), spec.NumVertices)
	}
	if g.NumEdges() != spec.NumEdges() {
		t.Errorf("edges = %d, want %d", g.NumEdges(), spec.NumEdges())
	}
	if len(x) != spec.NumVertices || len(x[0]) != spec.FeatureDim {
		t.Error("feature shape wrong")
	}
	// Density must land on the published average in-degree.
	if got := g.AvgInDegree(); got < spec.AvgInDegree*0.95 || got > spec.AvgInDegree*1.05 {
		t.Errorf("avg in-degree = %v, want ≈%v", got, spec.AvgInDegree)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Arxiv(0.01)
	g1, x1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g2, x2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("edge counts differ across identical seeds")
	}
	same := true
	g1.ForEachEdge(func(u, v graph.VertexID, w float32) {
		if !g2.HasEdge(u, v) {
			same = false
		}
	})
	if !same {
		t.Error("edge sets differ across identical seeds")
	}
	if x1[0].MaxAbsDiff(x2[0]) != 0 {
		t.Error("features differ across identical seeds")
	}
}

func TestGeneratePowerLawSkew(t *testing.T) {
	spec := Products(0.002) // ~4.9K vertices, dense
	g, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := Measure(spec, g)
	// Heavy-tailed: the max in-degree should far exceed the average.
	if float64(st.MaxInDegree) < 5*st.AvgInDegree {
		t.Errorf("degree distribution not skewed: max %d avg %v", st.MaxInDegree, st.AvgInDegree)
	}
	if st.Name != "products" || st.NumVertices != spec.NumVertices {
		t.Errorf("stats = %+v", st)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := Generate(Spec{Name: "bad", NumVertices: 0}); err == nil {
		t.Error("expected error for zero vertices")
	}
	if _, _, err := Generate(Spec{Name: "bad", NumVertices: 10, AvgInDegree: -1}); err == nil {
		t.Error("expected error for negative density")
	}
	// Density above the simple-graph bound must saturate, not loop forever.
	_, _, err := Generate(Spec{Name: "dense", NumVertices: 4, AvgInDegree: 100, FeatureDim: 2, NumClasses: 2, Seed: 1})
	if err == nil {
		t.Error("expected saturation error for impossible density")
	}
}

func TestBuildWorkloadStream(t *testing.T) {
	spec := Arxiv(0.02)
	w, err := Build(spec, StreamConfig{Total: 900, HoldoutFrac: 0.10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	full := spec.NumEdges()
	holdout := int64(float64(full) * 0.10)
	if w.Snapshot.NumEdges() != full-holdout {
		t.Errorf("snapshot edges = %d, want %d", w.Snapshot.NumEdges(), full-holdout)
	}
	if len(w.Updates) != 900 {
		t.Fatalf("stream length = %d", len(w.Updates))
	}
	counts := map[engine.UpdateKind]int{}
	for _, u := range w.Updates {
		counts[u.Kind]++
	}
	for _, k := range []engine.UpdateKind{engine.EdgeAdd, engine.EdgeDelete, engine.FeatureUpdate} {
		if counts[k] != 300 {
			t.Errorf("%v count = %d, want 300", k, counts[k])
		}
	}
	// Adds must be absent from the snapshot; deletes present.
	for _, u := range w.Updates {
		switch u.Kind {
		case engine.EdgeAdd:
			if w.Snapshot.HasEdge(u.U, u.V) {
				t.Fatalf("streamed add (%d,%d) already in snapshot", u.U, u.V)
			}
		case engine.EdgeDelete:
			if !w.Snapshot.HasEdge(u.U, u.V) {
				t.Fatalf("streamed delete (%d,%d) missing from snapshot", u.U, u.V)
			}
		case engine.FeatureUpdate:
			if len(u.Features) != spec.FeatureDim {
				t.Fatal("feature update width wrong")
			}
		}
	}
}

// The generated stream must be applicable end-to-end by the engine in any
// batch size — the foundational assumption of every benchmark.
func TestStreamAppliesCleanly(t *testing.T) {
	spec := Spec{Name: "tiny", NumVertices: 300, AvgInDegree: 8, FeatureDim: 6, NumClasses: 4, Seed: 11}
	w, err := Build(spec, StreamConfig{Total: 300, HoldoutFrac: 0.10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	model, err := gnn.NewWorkload("GC-S", []int{6, 8, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 7, 64} {
		g := w.CloneSnapshot()
		emb, err := gnn.Forward(g, model, w.CloneFeatures())
		if err != nil {
			t.Fatal(err)
		}
		r, err := engine.NewRipple(g, model, emb, engine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i, batch := range w.Batches(bs) {
			if _, err := r.ApplyBatch(batch); err != nil {
				t.Fatalf("bs=%d batch %d: %v", bs, i, err)
			}
		}
	}
}

func TestBatchesPartition(t *testing.T) {
	w := &Workload{Updates: make([]engine.Update, 10)}
	b := w.Batches(4)
	if len(b) != 3 || len(b[0]) != 4 || len(b[2]) != 2 {
		t.Errorf("Batches(4) shapes wrong: %d parts", len(b))
	}
	if got := w.Batches(0); len(got) != 10 {
		t.Error("batch size 0 should default to 1")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Arxiv(0.001), StreamConfig{Total: 10, HoldoutFrac: 1.5}); err == nil {
		t.Error("expected error for bad holdout fraction")
	}
}

// The full prepared stream, applied through the incremental engine at any
// batch size, must land on exactly the embeddings a from-scratch forward
// pass over the final topology produces — the dataset-level soak test.
func TestStreamEndStateMatchesForward(t *testing.T) {
	spec := Spec{Name: "soak", NumVertices: 250, AvgInDegree: 6, FeatureDim: 8, NumClasses: 5, Seed: 21}
	w, err := Build(spec, StreamConfig{Total: 600, HoldoutFrac: 0.10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	model, err := gnn.NewWorkload("GS-S", []int{8, 10, 5}, 9)
	if err != nil {
		t.Fatal(err)
	}

	// Reference world: final topology and features after the whole stream.
	refG := w.CloneSnapshot()
	refX := w.CloneFeatures()
	for _, u := range w.Updates {
		switch u.Kind {
		case engine.EdgeAdd:
			if err := refG.AddEdge(u.U, u.V, u.Weight); err != nil {
				t.Fatal(err)
			}
		case engine.EdgeDelete:
			if _, err := refG.RemoveEdge(u.U, u.V); err != nil {
				t.Fatal(err)
			}
		case engine.FeatureUpdate:
			refX[u.U].CopyFrom(u.Features)
		}
	}
	truth, err := gnn.Forward(refG, model, refX)
	if err != nil {
		t.Fatal(err)
	}

	for _, bs := range []int{1, 17, 600} {
		g := w.CloneSnapshot()
		emb, err := gnn.Forward(g, model, w.CloneFeatures())
		if err != nil {
			t.Fatal(err)
		}
		r, err := engine.NewRipple(g, model, emb, engine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i, batch := range w.Batches(bs) {
			if _, err := r.ApplyBatch(batch); err != nil {
				t.Fatalf("bs=%d batch %d: %v", bs, i, err)
			}
		}
		if d := r.Embeddings().MaxAbsDiff(truth); d > 5e-3 {
			t.Errorf("bs=%d: end state drifted from forward pass by %v", bs, d)
		}
	}
}
