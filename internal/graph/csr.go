package graph

// CSR is an immutable compressed-sparse-row snapshot of the graph in
// in-neighbour orientation: for vertex u, its in-neighbours are
// ColIdx[RowPtr[u]:RowPtr[u+1]] with matching Weights.
//
// The recompute baselines that model DGL (DNC/DRC) operate on CSR and must
// rebuild it after every update batch — reproducing the immutable-graph
// update overhead the paper measures in Fig. 8's "Update" bars.
type CSR struct {
	N       int
	RowPtr  []int64
	ColIdx  []VertexID
	Weights []float32
}

// BuildInCSR materialises an in-neighbour CSR snapshot of the current
// topology. Cost is O(n + m), paid on every batch by the DGL-style
// baselines.
func (g *Graph) BuildInCSR() *CSR {
	n := len(g.in)
	c := &CSR{
		N:       n,
		RowPtr:  make([]int64, n+1),
		ColIdx:  make([]VertexID, g.m),
		Weights: make([]float32, g.m),
	}
	var pos int64
	for u := 0; u < n; u++ {
		c.RowPtr[u] = pos
		for _, e := range g.in[u] {
			c.ColIdx[pos] = e.Peer
			c.Weights[pos] = e.Weight
			pos++
		}
	}
	c.RowPtr[n] = pos
	return c
}

// In returns the in-neighbour ids and weights of u as views into the CSR.
func (c *CSR) In(u VertexID) ([]VertexID, []float32) {
	lo, hi := c.RowPtr[u], c.RowPtr[u+1]
	return c.ColIdx[lo:hi], c.Weights[lo:hi]
}

// InDegree returns the in-degree of u in the snapshot.
func (c *CSR) InDegree(u VertexID) int {
	return int(c.RowPtr[u+1] - c.RowPtr[u])
}

// NumEdges returns the number of edges in the snapshot.
func (c *CSR) NumEdges() int64 { return c.RowPtr[c.N] }
