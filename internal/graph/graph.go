// Package graph provides the dynamic directed-graph substrate for streaming
// GNN inference. It replaces DGL's graph object with a lightweight edge-list
// representation designed for the update pattern the paper targets: O(deg)
// streaming edge additions and deletions, fast in/out-neighbour iteration,
// per-edge weights (for weighted-sum aggregation), and immutable CSR
// snapshots for the recompute baselines that model DGL's immutable graphs.
//
// The vertex set is fixed at construction (the paper leaves vertex
// addition/deletion to future work); edges and weights are fully dynamic.
package graph

import (
	"errors"
	"fmt"
)

// VertexID identifies a vertex. 32 bits keeps adjacency memory at half the
// cost of int64 on the multi-million-vertex graphs in the evaluation.
type VertexID = int32

// Edge is one directed adjacency entry. In an out-list, Peer is the sink;
// in an in-list, Peer is the source. Weight is the aggregation coefficient
// α used by weighted-sum models (1 for unweighted graphs).
type Edge struct {
	Peer   VertexID
	Weight float32
}

// Sentinel errors returned by topology mutations.
var (
	ErrVertexRange  = errors.New("graph: vertex id out of range")
	ErrEdgeExists   = errors.New("graph: edge already exists")
	ErrEdgeNotFound = errors.New("graph: edge not found")
)

// Graph is a directed graph over a fixed vertex set [0, N) with dynamic,
// weighted edges. It is not safe for concurrent mutation; the engine
// serialises updates per batch, matching the paper's execution model.
type Graph struct {
	out [][]Edge
	in  [][]Edge
	m   int64 // live edge count
}

// New returns an empty graph over n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{
		out: make([][]Edge, n),
		in:  make([][]Edge, n),
	}
}

// NumVertices returns the current number of vertices.
func (g *Graph) NumVertices() int { return len(g.out) }

// AddVertex appends a new isolated vertex and returns its id. This
// implements the vertex-addition extension the paper defers to future
// work (§8); ids are dense and never reused.
func (g *Graph) AddVertex() VertexID {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return VertexID(len(g.out) - 1)
}

// DirectedEdge is a fully-specified directed edge (source, sink, weight).
type DirectedEdge struct {
	From, To VertexID
	Weight   float32
}

// IncidentEdges returns all live edges touching u (both directions).
// Used to implement vertex removal as an exact cascade of edge deletions.
func (g *Graph) IncidentEdges(u VertexID) []DirectedEdge {
	if g.checkVertex(u) != nil {
		return nil
	}
	var out []DirectedEdge
	for _, e := range g.out[u] {
		out = append(out, DirectedEdge{From: u, To: e.Peer, Weight: e.Weight})
	}
	for _, e := range g.in[u] {
		if e.Peer != u { // self-loop already captured from the out-list
			out = append(out, DirectedEdge{From: e.Peer, To: u, Weight: e.Weight})
		}
	}
	return out
}

// NumEdges returns the number of live directed edges.
func (g *Graph) NumEdges() int64 { return g.m }

func (g *Graph) checkVertex(u VertexID) error {
	if u < 0 || int(u) >= len(g.out) {
		return fmt.Errorf("%w: %d (n=%d)", ErrVertexRange, u, len(g.out))
	}
	return nil
}

// AddEdge inserts the directed edge u→v with weight w. It returns
// ErrEdgeExists if the edge is already present (the graph is simple) and
// ErrVertexRange for out-of-range endpoints. Self-loops are permitted.
func (g *Graph) AddEdge(u, v VertexID, w float32) error {
	if err := g.checkVertex(u); err != nil {
		return fmt.Errorf("add edge (%d,%d): %w", u, v, err)
	}
	if err := g.checkVertex(v); err != nil {
		return fmt.Errorf("add edge (%d,%d): %w", u, v, err)
	}
	for _, e := range g.out[u] {
		if e.Peer == v {
			return fmt.Errorf("add edge (%d,%d): %w", u, v, ErrEdgeExists)
		}
	}
	g.out[u] = append(g.out[u], Edge{Peer: v, Weight: w})
	g.in[v] = append(g.in[v], Edge{Peer: u, Weight: w})
	g.m++
	return nil
}

// RemoveEdge deletes the directed edge u→v, returning its weight. It
// returns ErrEdgeNotFound if the edge is absent.
func (g *Graph) RemoveEdge(u, v VertexID) (float32, error) {
	if err := g.checkVertex(u); err != nil {
		return 0, fmt.Errorf("remove edge (%d,%d): %w", u, v, err)
	}
	if err := g.checkVertex(v); err != nil {
		return 0, fmt.Errorf("remove edge (%d,%d): %w", u, v, err)
	}
	w, ok := removeFromList(&g.out[u], v)
	if !ok {
		return 0, fmt.Errorf("remove edge (%d,%d): %w", u, v, ErrEdgeNotFound)
	}
	if _, ok := removeFromList(&g.in[v], u); !ok {
		// The two lists are mutated in lockstep; divergence is a bug, not a
		// caller error.
		panic(fmt.Sprintf("graph: in/out adjacency diverged at edge (%d,%d)", u, v))
	}
	g.m--
	return w, nil
}

// removeFromList deletes the entry with the given peer using swap-delete
// (neighbour order is not semantically meaningful; aggregation commutes).
func removeFromList(list *[]Edge, peer VertexID) (float32, bool) {
	l := *list
	for i, e := range l {
		if e.Peer == peer {
			w := e.Weight
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return w, true
		}
	}
	return 0, false
}

// HasEdge reports whether the directed edge u→v exists. Out-of-range
// endpoints report false.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if g.checkVertex(u) != nil || g.checkVertex(v) != nil {
		return false
	}
	for _, e := range g.out[u] {
		if e.Peer == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge u→v and whether it exists.
func (g *Graph) EdgeWeight(u, v VertexID) (float32, bool) {
	if g.checkVertex(u) != nil || g.checkVertex(v) != nil {
		return 0, false
	}
	for _, e := range g.out[u] {
		if e.Peer == v {
			return e.Weight, true
		}
	}
	return 0, false
}

// SetEdgeWeight updates the weight of an existing edge u→v (used by
// weighted-sum workloads such as traffic networks where the edge feature
// changes over time). It returns ErrEdgeNotFound if the edge is absent.
func (g *Graph) SetEdgeWeight(u, v VertexID, w float32) error {
	if err := g.checkVertex(u); err != nil {
		return fmt.Errorf("set weight (%d,%d): %w", u, v, err)
	}
	if err := g.checkVertex(v); err != nil {
		return fmt.Errorf("set weight (%d,%d): %w", u, v, err)
	}
	found := false
	for i := range g.out[u] {
		if g.out[u][i].Peer == v {
			g.out[u][i].Weight = w
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("set weight (%d,%d): %w", u, v, ErrEdgeNotFound)
	}
	for i := range g.in[v] {
		if g.in[v][i].Peer == u {
			g.in[v][i].Weight = w
			return nil
		}
	}
	panic(fmt.Sprintf("graph: in/out adjacency diverged at edge (%d,%d)", u, v))
}

// Out returns u's out-adjacency list. The returned slice is a view owned by
// the graph: callers must not mutate it and must not retain it across
// topology mutations.
func (g *Graph) Out(u VertexID) []Edge { return g.out[u] }

// In returns u's in-adjacency list, under the same aliasing rules as Out.
func (g *Graph) In(u VertexID) []Edge { return g.in[u] }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u VertexID) int { return len(g.out[u]) }

// InDegree returns the number of in-edges of u. Mean aggregation divides by
// this live value, which is what keeps incremental mean exact under
// topology changes.
func (g *Graph) InDegree(u VertexID) int { return len(g.in[u]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(len(g.out))
	c.m = g.m
	for u := range g.out {
		if len(g.out[u]) > 0 {
			c.out[u] = append([]Edge(nil), g.out[u]...)
		}
		if len(g.in[u]) > 0 {
			c.in[u] = append([]Edge(nil), g.in[u]...)
		}
	}
	return c
}

// ForEachEdge calls fn for every directed edge (u, v, w). Iteration order
// is unspecified. fn must not mutate the graph.
func (g *Graph) ForEachEdge(fn func(u, v VertexID, w float32)) {
	for u := range g.out {
		for _, e := range g.out[u] {
			fn(VertexID(u), e.Peer, e.Weight)
		}
	}
}

// NewFromOutLists builds a graph over len(out) vertices directly from
// per-vertex out-adjacency lists, taking ownership of the slices. Out-list
// order is preserved exactly — it determines scatter accumulation order, so
// checkpoint restore must reproduce it bit-for-bit. In-lists are rebuilt
// with exact-size allocation in edge-scan order (ascending source, out-list
// position), the same order an AddEdge replay of ForEachEdge would produce.
func NewFromOutLists(out [][]Edge) *Graph {
	n := len(out)
	g := &Graph{out: out, in: make([][]Edge, n)}
	indeg := make([]int32, n)
	var m int64
	for u := range out {
		for _, e := range out[u] {
			indeg[e.Peer]++
			m++
		}
	}
	for v := range g.in {
		if indeg[v] > 0 {
			g.in[v] = make([]Edge, 0, indeg[v])
		}
	}
	for u := range out {
		for _, e := range out[u] {
			g.in[e.Peer] = append(g.in[e.Peer], Edge{Peer: VertexID(u), Weight: e.Weight})
		}
	}
	g.m = m
	return g
}

// ReplaceAdjacency overwrites u's out- and in-lists verbatim, taking
// ownership of the slices. This is the delta-checkpoint restore primitive:
// both lists are replaced in their recorded order (out-list order is
// semantically load-bearing for scatter accumulation), and the caller is
// responsible for restoring every vertex whose adjacency changed plus the
// global edge count via SetNumEdges.
func (g *Graph) ReplaceAdjacency(u VertexID, out, in []Edge) error {
	if err := g.checkVertex(u); err != nil {
		return fmt.Errorf("replace adjacency %d: %w", u, err)
	}
	g.out[u] = out
	g.in[u] = in
	return nil
}

// SetNumEdges overwrites the live edge count; paired with ReplaceAdjacency
// during delta-checkpoint restore.
func (g *Graph) SetNumEdges(m int64) { g.m = m }

// AvgInDegree returns the mean in-degree m/n, the density statistic the
// paper uses to characterise datasets (Table 3).
func (g *Graph) AvgInDegree() float64 {
	if len(g.out) == 0 {
		return 0
	}
	return float64(g.m) / float64(len(g.out))
}
