package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickGraphInvariants: for arbitrary operation sequences, the graph
// maintains (1) in/out mirror symmetry, (2) degree sums equal to the edge
// count, and (3) CSR snapshots equal to the live adjacency.
func TestQuickGraphInvariants(t *testing.T) {
	property := func(seed int64, opsRaw []uint16) bool {
		const n = 12
		g := New(n)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range opsRaw {
			u := VertexID(int(op>>8) % n)
			v := VertexID(int(op&0xFF) % n)
			if g.HasEdge(u, v) && rng.Intn(2) == 0 {
				if _, err := g.RemoveEdge(u, v); err != nil {
					return false
				}
			} else if !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v, rng.Float32()); err != nil {
					return false
				}
			}
		}
		var inSum, outSum int64
		for u := VertexID(0); u < n; u++ {
			inSum += int64(g.InDegree(u))
			outSum += int64(g.OutDegree(u))
			for _, e := range g.Out(u) {
				found := false
				for _, ie := range g.In(e.Peer) {
					if ie.Peer == u && ie.Weight == e.Weight {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		if inSum != g.NumEdges() || outSum != g.NumEdges() {
			return false
		}
		c := g.BuildInCSR()
		if c.NumEdges() != g.NumEdges() {
			return false
		}
		for u := VertexID(0); u < n; u++ {
			if c.InDegree(u) != g.InDegree(u) {
				return false
			}
			ids, ws := c.In(u)
			for i, src := range ids {
				w, ok := g.EdgeWeight(src, u)
				if !ok || w != ws[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIsolation: mutations after Clone never leak either way.
func TestQuickCloneIsolation(t *testing.T) {
	property := func(seed int64) bool {
		const n = 10
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < 30; i++ {
			_ = g.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), 1)
		}
		c := g.Clone()
		edgesBefore := g.NumEdges()
		// Mutate the clone arbitrarily.
		for i := 0; i < 10; i++ {
			u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
			if c.HasEdge(u, v) {
				_, _ = c.RemoveEdge(u, v)
			} else {
				_ = c.AddEdge(u, v, 2)
			}
		}
		if g.NumEdges() != edgesBefore {
			return false
		}
		// The original's weights must be untouched (clone uses weight 2).
		ok := true
		g.ForEachEdge(func(u, v VertexID, w float32) {
			if w != 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddVertexGrows(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	id := g.AddVertex()
	if id != 2 || g.NumVertices() != 3 {
		t.Fatalf("AddVertex id=%d n=%d", id, g.NumVertices())
	}
	if g.InDegree(id) != 0 || g.OutDegree(id) != 0 {
		t.Error("new vertex not isolated")
	}
	if err := g.AddEdge(id, 0, 1); err != nil {
		t.Fatalf("edge to new vertex: %v", err)
	}
}

func TestIncidentEdges(t *testing.T) {
	g := New(4)
	mustAdd := func(u, v VertexID) {
		t.Helper()
		if err := g.AddEdge(u, v, float32(u*10)+float32(v)); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1)
	mustAdd(2, 0)
	mustAdd(0, 0) // self loop: must appear exactly once
	got := g.IncidentEdges(0)
	if len(got) != 3 {
		t.Fatalf("IncidentEdges = %d entries: %v", len(got), got)
	}
	seen := map[[2]VertexID]bool{}
	for _, e := range got {
		seen[[2]VertexID{e.From, e.To}] = true
	}
	for _, want := range [][2]VertexID{{0, 1}, {2, 0}, {0, 0}} {
		if !seen[want] {
			t.Errorf("missing incident edge %v", want)
		}
	}
	if g.IncidentEdges(99) != nil {
		t.Error("out-of-range should return nil")
	}
}
