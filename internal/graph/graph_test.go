package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(0, 2, 2.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge direction wrong")
	}
	if w, ok := g.EdgeWeight(0, 2); !ok || w != 2.5 {
		t.Errorf("EdgeWeight = %v,%v", w, ok)
	}
	if g.OutDegree(0) != 2 || g.InDegree(1) != 1 || g.InDegree(2) != 1 {
		t.Error("degree bookkeeping wrong after adds")
	}

	w, err := g.RemoveEdge(0, 1)
	if err != nil || w != 1 {
		t.Fatalf("RemoveEdge = %v, %v", w, err)
	}
	if g.HasEdge(0, 1) || g.NumEdges() != 1 || g.InDegree(1) != 0 {
		t.Error("state wrong after remove")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		u, v    VertexID
		wantErr error
	}{
		{"duplicate", 0, 1, ErrEdgeExists},
		{"u out of range", -1, 0, ErrVertexRange},
		{"v out of range", 0, 3, ErrVertexRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v, 1); !errors.Is(err, tt.wantErr) {
				t.Errorf("AddEdge(%d,%d) err = %v, want %v", tt.u, tt.v, err, tt.wantErr)
			}
		})
	}
}

func TestRemoveEdgeErrors(t *testing.T) {
	g := New(3)
	if _, err := g.RemoveEdge(0, 1); !errors.Is(err, ErrEdgeNotFound) {
		t.Errorf("RemoveEdge missing = %v, want ErrEdgeNotFound", err)
	}
	if _, err := g.RemoveEdge(5, 1); !errors.Is(err, ErrVertexRange) {
		t.Errorf("RemoveEdge range = %v, want ErrVertexRange", err)
	}
}

func TestSelfLoopAllowed(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(1, 1, 1); err != nil {
		t.Fatalf("self-loop should be allowed: %v", err)
	}
	if g.InDegree(1) != 1 || g.OutDegree(1) != 1 {
		t.Error("self-loop degrees wrong")
	}
}

func TestSetEdgeWeight(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdgeWeight(0, 1, 9); err != nil {
		t.Fatalf("SetEdgeWeight: %v", err)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 9 {
		t.Errorf("weight after set = %v", w)
	}
	// The in-list copy must be updated too.
	if g.In(1)[0].Weight != 9 {
		t.Error("in-list weight not updated")
	}
	if err := g.SetEdgeWeight(0, 2, 1); !errors.Is(err, ErrEdgeNotFound) {
		t.Errorf("SetEdgeWeight missing = %v", err)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := c.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) {
		t.Error("Clone shares adjacency with original")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 1 {
		t.Error("edge counts diverged incorrectly")
	}
}

func TestForEachEdgeAndAvgInDegree(t *testing.T) {
	g := New(4)
	edges := [][2]VertexID{{0, 1}, {0, 2}, {3, 1}, {2, 3}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[[2]VertexID]bool{}
	g.ForEachEdge(func(u, v VertexID, w float32) {
		seen[[2]VertexID{u, v}] = true
	})
	if len(seen) != len(edges) {
		t.Errorf("ForEachEdge visited %d edges, want %d", len(seen), len(edges))
	}
	if got := g.AvgInDegree(); got != 1.0 {
		t.Errorf("AvgInDegree = %v, want 1.0", got)
	}
}

// Property test: a random interleaving of adds and removes keeps the in/out
// adjacency lists mirror images of each other, and degree sums equal edge
// counts.
func TestInOutConsistencyUnderRandomOps(t *testing.T) {
	const n = 30
	rng := rand.New(rand.NewSource(99))
	g := New(n)
	type key struct{ u, v VertexID }
	live := map[key]float32{}

	for step := 0; step < 3000; step++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		k := key{u, v}
		if _, ok := live[k]; ok && rng.Intn(2) == 0 {
			w, err := g.RemoveEdge(u, v)
			if err != nil {
				t.Fatalf("step %d: RemoveEdge(%d,%d): %v", step, u, v, err)
			}
			if w != live[k] {
				t.Fatalf("step %d: removed weight %v, want %v", step, w, live[k])
			}
			delete(live, k)
		} else if _, ok := live[k]; !ok {
			w := rng.Float32()
			if err := g.AddEdge(u, v, w); err != nil {
				t.Fatalf("step %d: AddEdge(%d,%d): %v", step, u, v, err)
			}
			live[k] = w
		}
	}

	if int(g.NumEdges()) != len(live) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(live))
	}
	var inSum, outSum int
	for u := VertexID(0); u < n; u++ {
		inSum += g.InDegree(u)
		outSum += g.OutDegree(u)
		for _, e := range g.Out(u) {
			w, ok := live[key{u, e.Peer}]
			if !ok || w != e.Weight {
				t.Fatalf("out-list edge (%d,%d,%v) not in reference", u, e.Peer, e.Weight)
			}
			// Mirror entry must exist in the peer's in-list.
			found := false
			for _, ie := range g.In(e.Peer) {
				if ie.Peer == u && ie.Weight == e.Weight {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) missing from in-list", u, e.Peer)
			}
		}
	}
	if inSum != len(live) || outSum != len(live) {
		t.Fatalf("degree sums in=%d out=%d, want %d", inSum, outSum, len(live))
	}
}

func TestCSRSnapshot(t *testing.T) {
	g := New(4)
	mustAdd := func(u, v VertexID, w float32) {
		t.Helper()
		if err := g.AddEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1, 1)
	mustAdd(2, 1, 3)
	mustAdd(3, 1, 5)
	mustAdd(1, 0, 7)

	c := g.BuildInCSR()
	if c.N != 4 || c.NumEdges() != 4 {
		t.Fatalf("CSR shape n=%d m=%d", c.N, c.NumEdges())
	}
	if c.InDegree(1) != 3 || c.InDegree(0) != 1 || c.InDegree(2) != 0 {
		t.Error("CSR in-degrees wrong")
	}
	ids, ws := c.In(1)
	gotW := map[VertexID]float32{}
	for i, id := range ids {
		gotW[id] = ws[i]
	}
	want := map[VertexID]float32{0: 1, 2: 3, 3: 5}
	for id, w := range want {
		if gotW[id] != w {
			t.Errorf("CSR In(1)[%d] weight = %v, want %v", id, gotW[id], w)
		}
	}

	// CSR is a snapshot: later mutations must not affect it.
	if _, err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if c.InDegree(1) != 3 {
		t.Error("CSR mutated by later graph change")
	}
}

func TestCSRMatchesGraphOnRandomTopology(t *testing.T) {
	const n = 50
	rng := rand.New(rand.NewSource(123))
	g := New(n)
	for i := 0; i < 400; i++ {
		u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
		_ = g.AddEdge(u, v, rng.Float32()) // duplicates rejected, fine
	}
	c := g.BuildInCSR()
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count CSR=%d graph=%d", c.NumEdges(), g.NumEdges())
	}
	for u := VertexID(0); u < n; u++ {
		if c.InDegree(u) != g.InDegree(u) {
			t.Fatalf("in-degree mismatch at %d", u)
		}
		ids, ws := c.In(u)
		for i, src := range ids {
			w, ok := g.EdgeWeight(src, u)
			if !ok || w != ws[i] {
				t.Fatalf("CSR edge (%d,%d) mismatch", src, u)
			}
		}
	}
}
