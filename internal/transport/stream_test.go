package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestStreamRoundTrip covers the point-to-point stream endpoint end to
// end: dial, bidirectional framed send/recv, counter accounting, and the
// close semantics the replication follower's redial loop depends on.
func TestStreamRoundTrip(t *testing.T) {
	ln, err := ListenStream("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan *Stream, 1)
	go func() {
		st, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			close(accepted)
			return
		}
		accepted <- st
	}()
	cl, err := DialStream(ln.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sv, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	defer sv.Close()

	// Client → server.
	payload := []byte("subscribe-from-epoch-42")
	if err := cl.Send(0x21, payload); err != nil {
		t.Fatal(err)
	}
	msg, err := sv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != 0x21 || !bytes.Equal(msg.Payload, payload) || msg.From != 0 {
		t.Fatalf("server received %+v, want kind 0x21 payload %q from 0", msg, payload)
	}

	// Server → client, including an empty frame (heartbeats are small).
	big := bytes.Repeat([]byte{0xab}, 1<<16)
	if err := sv.Send(0x23, big); err != nil {
		t.Fatal(err)
	}
	if err := sv.Send(0x22, nil); err != nil {
		t.Fatal(err)
	}
	if msg, err = cl.Recv(); err != nil || !bytes.Equal(msg.Payload, big) {
		t.Fatalf("big frame: err=%v len=%d", err, len(msg.Payload))
	}
	if msg, err = cl.Recv(); err != nil || msg.Kind != 0x22 || len(msg.Payload) != 0 {
		t.Fatalf("empty frame: %+v err=%v", msg, err)
	}

	// Counters account payload + framing on both ends.
	wantSent := int64(len(payload)) + frameOverhead
	if c := cl.Counters(); c.BytesSent != wantSent || c.MsgsSent != 1 || c.MsgsRecv != 2 {
		t.Fatalf("client counters %+v", c)
	}
	if c := sv.Counters(); c.MsgsRecv != 1 || c.MsgsSent != 2 || c.BytesRecv != wantSent {
		t.Fatalf("server counters %+v", c)
	}

	// Closing one side errors the peer's pending Recv with ErrClosed —
	// the follower's signal to redial.
	sv.Close()
	if _, err := cl.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after peer close: %v, want ErrClosed", err)
	}
}

// TestStreamListenerClose pins that a closed listener fails Accept (the
// leader hub's accept loop exits on it) without touching live streams.
func TestStreamListenerClose(t *testing.T) {
	ln, err := ListenStream("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	ln.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("accept after close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not return after Close")
	}
}

// TestDialTCPHonorsTimeout is the regression test for the dial loop
// hardcoding 1s attempts: a caller's sub-second budget must bound the
// whole dial, not be rounded up to the fixed per-attempt timeout.
// 100::/64 is the IPv6 discard prefix (RFC 6666): a dial there either
// hangs (packets dropped — the case the old code turned into a full
// 1s attempt) or fails fast where IPv6 is unrouted; under the budget
// cap both end the dial within the caller's timeout.
func TestDialTCPHonorsTimeout(t *testing.T) {
	t.Parallel()
	const budget = 300 * time.Millisecond
	start := time.Now()
	c, err := DialTCP(0, []string{"127.0.0.1:0", "[100::1]:1"}, budget)
	elapsed := time.Since(start)
	if err == nil {
		c.Close()
		t.Skip("environment answers dials into the discard prefix; no blackhole to test against")
	}
	if elapsed > 3*budget {
		t.Fatalf("DialTCP ignored its %v budget: returned after %v", budget, elapsed)
	}
}
