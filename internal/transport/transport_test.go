package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMemoryFabricBasic(t *testing.T) {
	conns, err := NewMemoryFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	if conns[1].Rank() != 1 || conns[1].Size() != 3 {
		t.Error("rank/size wrong")
	}
	if err := conns[0].Send(2, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m, err := conns[2].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.Kind != 7 || string(m.Payload) != "hello" {
		t.Errorf("message = %+v", m)
	}
}

func TestMemoryFabricFIFOPerSender(t *testing.T) {
	conns, err := NewMemoryFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := conns[0].Send(1, 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := conns[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("out of order: got %d want %d", m.Payload[0], i)
		}
	}
}

func TestMemoryFabricCounters(t *testing.T) {
	conns, err := NewMemoryFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	if err := conns[0].Send(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := conns[1].Recv(); err != nil {
		t.Fatal(err)
	}
	s := conns[0].Counters()
	r := conns[1].Counters()
	if s.MsgsSent != 1 || s.BytesSent != 100+frameOverhead {
		t.Errorf("send counters = %+v", s)
	}
	if r.MsgsRecv != 1 || r.BytesRecv != 100+frameOverhead {
		t.Errorf("recv counters = %+v", r)
	}
	sum := s.Add(r)
	if sum.BytesSent != s.BytesSent || sum.BytesRecv != r.BytesRecv {
		t.Error("Counters.Add wrong")
	}
}

func TestMemoryFabricCloseUnblocksRecv(t *testing.T) {
	conns, err := NewMemoryFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := conns[1].Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	conns[1].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := conns[0].Send(1, 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Send to closed = %v, want ErrClosed", err)
	}
}

func TestMemoryFabricValidation(t *testing.T) {
	if _, err := NewMemoryFabric(0); err == nil {
		t.Error("expected error for size 0")
	}
	conns, err := NewMemoryFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := conns[0].Send(5, 0, nil); err == nil {
		t.Error("expected error for bad destination rank")
	}
}

func TestMemoryFabricConcurrentAllToAll(t *testing.T) {
	const k = 8
	const msgs = 200
	conns, err := NewMemoryFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				for to := 0; to < k; to++ {
					if to == r {
						continue
					}
					if err := conns[r].Send(to, 1, []byte{byte(r)}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
			expect := msgs * (k - 1)
			for i := 0; i < expect; i++ {
				if _, err := conns[r].Recv(); err != nil {
					t.Errorf("recv: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestNetModelCommTime(t *testing.T) {
	m := NetModel{BandwidthBytesPerSec: 1e6, LatencyPerMsg: time.Millisecond}
	// 1 MB at 1 MB/s = 1s, plus 10 messages × 1ms.
	got := m.CommTime(1_000_000, 10)
	want := time.Second + 10*time.Millisecond
	if got != want {
		t.Errorf("CommTime = %v, want %v", got, want)
	}
	zero := NetModel{LatencyPerMsg: time.Millisecond}
	if zero.CommTime(100, 5) != 5*time.Millisecond {
		t.Error("zero bandwidth should charge latency only")
	}
	if TenGigE.CommTime(0, 0) != 0 {
		t.Error("no traffic should cost nothing")
	}
}

func tcpMesh(t *testing.T, k int) []*TCPConn {
	t.Helper()
	addrs := make([]string, k)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", 39100+i)
	}
	conns := make([]*TCPConn, k)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := DialTCP(r, addrs, 10*time.Second)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			conns[r] = c
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	t.Cleanup(func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	})
	return conns
}

func TestTCPMeshExchange(t *testing.T) {
	conns := tcpMesh(t, 3)
	// Every rank sends its rank byte to every other rank.
	for r := 0; r < 3; r++ {
		for to := 0; to < 3; to++ {
			if to == r {
				continue
			}
			if err := conns[r].Send(to, 9, []byte{byte(r), 0xAB}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < 3; r++ {
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			m, err := conns[r].Recv()
			if err != nil {
				t.Fatal(err)
			}
			if m.Kind != 9 || int(m.Payload[0]) != m.From || m.Payload[1] != 0xAB {
				t.Errorf("rank %d got %+v", r, m)
			}
			seen[m.From] = true
		}
		if len(seen) != 2 {
			t.Errorf("rank %d heard from %d peers", r, len(seen))
		}
	}
	c := conns[0].Counters()
	if c.MsgsSent != 2 || c.MsgsRecv != 2 {
		t.Errorf("counters = %+v", c)
	}
}

func TestTCPLoopback(t *testing.T) {
	conns := tcpMesh(t, 2)
	if err := conns[0].Send(0, 3, []byte("self")); err != nil {
		t.Fatal(err)
	}
	m, err := conns[0].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || string(m.Payload) != "self" {
		t.Errorf("loopback message = %+v", m)
	}
}

func TestTCPLargePayload(t *testing.T) {
	conns := tcpMesh(t, 2)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := conns[0].Send(1, 1, payload); err != nil {
		t.Fatal(err)
	}
	m, err := conns[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != len(payload) {
		t.Fatalf("got %d bytes", len(m.Payload))
	}
	for i := range payload {
		if m.Payload[i] != payload[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	conns := tcpMesh(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := conns[1].Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conns[1].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestDialTCPValidation(t *testing.T) {
	if _, err := DialTCP(5, []string{"a", "b"}, time.Second); err == nil {
		t.Error("expected error for rank out of range")
	}
}
