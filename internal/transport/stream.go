package transport

// Point-to-point framed streams, the transport face of the serving
// tier's leader→replica replication (internal/serve). Unlike the
// full-mesh Conn fabric — fixed membership, rank handshake, shared inbox
// — a Stream is one ephemeral client/server connection: the leader
// listens, followers dial and redial, and either side can go away without
// desyncing a cluster protocol. Frames reuse the mesh's wire format
// ([4B length][1B kind][4B reserved][payload]) and the same traffic
// counters, so replication bytes are accounted like any other transport.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Stream is one endpoint of a framed point-to-point connection. Send and
// Recv are each internally serialised (one lock per direction), so one
// writer and one reader may run concurrently; Close is safe from any
// goroutine and unblocks a pending Recv.
type Stream struct {
	conn net.Conn
	wmu  sync.Mutex
	rmu  sync.Mutex
	counters

	closeOnce sync.Once
}

// DialStream connects to a stream listener, honoring the given dial
// timeout (<=0 selects 5s).
func DialStream(addr string, timeout time.Duration) (*Stream, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial stream %s: %w", addr, err)
	}
	return &Stream{conn: conn}, nil
}

// Send writes one frame. The payload is not retained.
func (s *Stream) Send(kind uint8, payload []byte) error {
	if len(payload) > maxFrameSize {
		return fmt.Errorf("transport: stream frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = kind
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if _, err := s.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: stream send: %w", err)
	}
	if _, err := s.conn.Write(payload); err != nil {
		return fmt.Errorf("transport: stream send: %w", err)
	}
	s.counters.sent(len(payload))
	return nil
}

// Recv blocks for the next inbound frame. Message.From is always 0:
// streams have no rank space. Returns an error once the peer (or Close)
// tears the connection down.
func (s *Stream) Recv() (Message, error) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	var hdr [9]byte
	if _, err := io.ReadFull(s.conn, hdr[:]); err != nil {
		return Message{}, fmt.Errorf("transport: stream recv: %w", ErrClosed)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > maxFrameSize {
		s.conn.Close()
		return Message{}, fmt.Errorf("transport: stream frame of %d bytes exceeds limit", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(s.conn, payload); err != nil {
		return Message{}, fmt.Errorf("transport: stream recv: %w", ErrClosed)
	}
	s.counters.recvd(len(payload))
	return Message{Kind: hdr[4], Payload: payload}, nil
}

// Counters returns a snapshot of this endpoint's traffic counters.
func (s *Stream) Counters() Counters { return s.counters.snapshot() }

// Close tears the connection down; pending Recv calls on either side
// return an error.
func (s *Stream) Close() error {
	s.closeOnce.Do(func() { s.conn.Close() })
	return nil
}

// StreamListener accepts inbound Streams.
type StreamListener struct {
	ln net.Listener
}

// ListenStream binds a stream listener (pass ":0" for an ephemeral port;
// Addr reports the bound address).
func ListenStream(addr string) (*StreamListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen stream %s: %w", addr, err)
	}
	return &StreamListener{ln: ln}, nil
}

// Accept blocks for the next inbound connection. Returns an error once
// the listener is closed.
func (l *StreamListener) Accept() (*Stream, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: stream accept: %w", ErrClosed)
	}
	return &Stream{conn: conn}, nil
}

// Addr returns the listener's bound address.
func (l *StreamListener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting; established streams are unaffected.
func (l *StreamListener) Close() error { return l.ln.Close() }
