// Package transport provides the message fabric for distributed inference,
// standing in for the paper's MPI stack (§5.3). Two implementations share
// one interface: an in-process fabric (goroutine workers, the default for
// experiments — DESIGN.md §1 documents the substitution) and a real TCP
// mesh used by cmd/rippled for multi-process runs.
//
// Every implementation counts serialised bytes and messages; combined with
// the NetModel cost model this yields deterministic communication-time
// estimates for the paper's cluster (10 Gbps Ethernet) independent of the
// machine the benchmarks run on.
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Message is one framed payload between ranks.
type Message struct {
	From    int
	Kind    uint8
	Payload []byte
}

// frameOverhead approximates per-message framing cost (length, kind, rank
// — what our TCP framing actually sends) counted by all transports so
// byte accounting matches across implementations.
const frameOverhead = 9

// Conn is one rank's endpoint of the cluster fabric.
type Conn interface {
	// Rank is this endpoint's id in [0, Size).
	Rank() int
	// Size is the number of ranks in the fabric.
	Size() int
	// Send delivers a message to rank `to`. The payload is owned by the
	// transport after Send returns.
	Send(to int, kind uint8, payload []byte) error
	// Recv blocks for the next inbound message.
	Recv() (Message, error)
	// Counters returns a snapshot of this endpoint's traffic counters.
	Counters() Counters
	// Close tears the endpoint down; blocked Recv calls return an error.
	Close() error
}

// Counters tallies traffic through one endpoint.
type Counters struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Add returns the element-wise sum of two counters.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		BytesSent: c.BytesSent + o.BytesSent,
		BytesRecv: c.BytesRecv + o.BytesRecv,
		MsgsSent:  c.MsgsSent + o.MsgsSent,
		MsgsRecv:  c.MsgsRecv + o.MsgsRecv,
	}
}

// counters is the atomic implementation embedded by transports.
type counters struct {
	bytesSent, bytesRecv atomic.Int64
	msgsSent, msgsRecv   atomic.Int64
}

func (c *counters) sent(n int) {
	c.bytesSent.Add(int64(n) + frameOverhead)
	c.msgsSent.Add(1)
}

func (c *counters) recvd(n int) {
	c.bytesRecv.Add(int64(n) + frameOverhead)
	c.msgsRecv.Add(1)
}

func (c *counters) snapshot() Counters {
	return Counters{
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
	}
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: connection closed")

// NetModel converts measured traffic into communication time for a
// modelled interconnect: time = bytes/bandwidth + messages·latency.
type NetModel struct {
	// BandwidthBytesPerSec is the link bandwidth.
	BandwidthBytesPerSec float64
	// LatencyPerMsg is charged once per message (propagation + MPI
	// envelope handling).
	LatencyPerMsg time.Duration
}

// TenGigE models the paper's 10 Gbps Ethernet cluster interconnect.
var TenGigE = NetModel{
	BandwidthBytesPerSec: 10e9 / 8,
	LatencyPerMsg:        50 * time.Microsecond,
}

// CommTime estimates the wire time for the given traffic.
func (m NetModel) CommTime(bytes, msgs int64) time.Duration {
	if m.BandwidthBytesPerSec <= 0 {
		return time.Duration(msgs) * m.LatencyPerMsg
	}
	wire := time.Duration(float64(bytes) / m.BandwidthBytesPerSec * float64(time.Second))
	return wire + time.Duration(msgs)*m.LatencyPerMsg
}

func checkRank(rank, size int) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("transport: rank %d out of [0,%d)", rank, size)
	}
	return nil
}
