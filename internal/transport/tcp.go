package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConn is one rank's endpoint of a full-mesh TCP fabric, used by
// cmd/rippled for real multi-process deployments. Frames are
// length-prefixed: [4B payload length][1B kind][4B from-rank][payload].
type TCPConn struct {
	rank  int
	size  int
	peers []*peerLink // indexed by rank; nil at own rank
	inbox *mailbox
	wg    sync.WaitGroup
	counters

	closeOnce sync.Once
	listener  net.Listener
}

var _ Conn = (*TCPConn)(nil)

// peerLink serialises writes to one peer socket.
type peerLink struct {
	mu   sync.Mutex
	conn net.Conn
}

// maxFrameSize bounds a single payload; larger frames indicate corruption
// and are rejected rather than allocated.
const maxFrameSize = 1 << 30

// DialTCP establishes the full mesh for this rank. addrs lists every
// rank's listen address (index = rank). The convention is deadlock-free:
// each rank listens on addrs[rank], accepts connections from lower ranks,
// and dials every higher rank (retrying until the peer's listener is up
// or timeout elapses).
func DialTCP(rank int, addrs []string, timeout time.Duration) (*TCPConn, error) {
	size := len(addrs)
	if err := checkRank(rank, size); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	c := &TCPConn{
		rank:     rank,
		size:     size,
		peers:    make([]*peerLink, size),
		inbox:    newMailbox(),
		listener: ln,
	}

	errs := make(chan error, size)
	var setup sync.WaitGroup

	// Accept connections from all lower ranks.
	lower := rank
	setup.Add(1)
	go func() {
		defer setup.Done()
		for i := 0; i < lower; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("transport: rank %d accept: %w", rank, err)
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				errs <- fmt.Errorf("transport: rank %d handshake read: %w", rank, err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer < 0 || peer >= size || peer >= rank || c.peers[peer] != nil {
				errs <- fmt.Errorf("transport: rank %d bad handshake from %d", rank, peer)
				return
			}
			c.peers[peer] = &peerLink{conn: conn}
		}
	}()

	// Dial all higher ranks. The caller's timeout is a budget over the
	// whole mesh setup: each attempt gets at most one second (so a dead
	// peer cannot eat the budget in one syscall) but never more than the
	// time remaining, and the retry loop stops once the budget is spent.
	deadline := time.Now().Add(timeout)
	for peer := rank + 1; peer < size; peer++ {
		var conn net.Conn
		for {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				ln.Close()
				if err == nil {
					err = fmt.Errorf("timed out after %v", timeout)
				}
				return nil, fmt.Errorf("transport: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err)
			}
			attempt := time.Second
			if remaining < attempt {
				attempt = remaining
			}
			conn, err = net.DialTimeout("tcp", addrs[peer], attempt)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				ln.Close()
				return nil, fmt.Errorf("transport: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		var hello [4]byte
		binary.LittleEndian.PutUint32(hello[:], uint32(rank))
		if _, err := conn.Write(hello[:]); err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: rank %d handshake to %d: %w", rank, peer, err)
		}
		c.peers[peer] = &peerLink{conn: conn}
	}

	setup.Wait()
	select {
	case err := <-errs:
		ln.Close()
		return nil, err
	default:
	}

	// One reader goroutine per peer feeds the shared inbox.
	for peer, link := range c.peers {
		if link == nil {
			continue
		}
		c.wg.Add(1)
		go c.readLoop(peer, link.conn)
	}
	return c, nil
}

func (c *TCPConn) readLoop(peer int, conn net.Conn) {
	defer c.wg.Done()
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // peer closed or we closed: inbox close signals Recv
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		kind := hdr[4]
		from := int(binary.LittleEndian.Uint32(hdr[5:9]))
		if length > maxFrameSize || from != peer {
			return // corrupted stream; drop the link
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		c.counters.recvd(len(payload))
		if err := c.inbox.push(Message{From: from, Kind: kind, Payload: payload}); err != nil {
			return
		}
	}
}

// Rank implements Conn.
func (c *TCPConn) Rank() int { return c.rank }

// Size implements Conn.
func (c *TCPConn) Size() int { return c.size }

// Send implements Conn.
func (c *TCPConn) Send(to int, kind uint8, payload []byte) error {
	if err := checkRank(to, c.size); err != nil {
		return err
	}
	if to == c.rank {
		// Loopback without a socket.
		if err := c.inbox.push(Message{From: c.rank, Kind: kind, Payload: payload}); err != nil {
			return err
		}
		c.counters.sent(len(payload))
		c.counters.recvd(len(payload))
		return nil
	}
	link := c.peers[to]
	if link == nil {
		return fmt.Errorf("transport: rank %d has no link to %d: %w", c.rank, to, ErrClosed)
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(c.rank))
	link.mu.Lock()
	defer link.mu.Unlock()
	if _, err := link.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: rank %d send to %d: %w", c.rank, to, err)
	}
	if _, err := link.conn.Write(payload); err != nil {
		return fmt.Errorf("transport: rank %d send to %d: %w", c.rank, to, err)
	}
	c.counters.sent(len(payload))
	return nil
}

// Recv implements Conn.
func (c *TCPConn) Recv() (Message, error) {
	return c.inbox.pop()
}

// Counters implements Conn.
func (c *TCPConn) Counters() Counters { return c.counters.snapshot() }

// Close implements Conn: closes sockets and the listener, unblocks Recv.
func (c *TCPConn) Close() error {
	c.closeOnce.Do(func() {
		c.listener.Close()
		for _, link := range c.peers {
			if link != nil {
				link.conn.Close()
			}
		}
		c.wg.Wait()
		c.inbox.close()
	})
	return nil
}
