package transport

import (
	"fmt"
	"sync"
)

// MemoryConn is one endpoint of an in-process fabric: goroutine workers
// exchanging messages through unbounded mailboxes. It is the default
// experiment transport (the MPI substitution; see the package comment).
type MemoryConn struct {
	rank   int
	fabric *memoryFabric
	counters
}

var _ Conn = (*MemoryConn)(nil)

// memoryFabric holds the shared mailboxes. Queues are unbounded so BSP
// all-to-all exchanges can never deadlock regardless of send order.
type memoryFabric struct {
	size   int
	queues []*mailbox
}

// mailbox is an unbounded FIFO with blocking receive.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.items = append(mb.items, m)
	mb.cond.Signal()
	return nil
}

func (mb *mailbox) pop() (Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.items) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.items) == 0 {
		return Message{}, ErrClosed
	}
	m := mb.items[0]
	mb.items = mb.items[1:]
	return m, nil
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// NewMemoryFabric creates a size-rank in-process fabric and returns one
// connection per rank.
func NewMemoryFabric(size int) ([]*MemoryConn, error) {
	if size <= 0 {
		return nil, fmt.Errorf("transport: fabric size %d", size)
	}
	f := &memoryFabric{size: size, queues: make([]*mailbox, size)}
	conns := make([]*MemoryConn, size)
	for i := 0; i < size; i++ {
		f.queues[i] = newMailbox()
		conns[i] = &MemoryConn{rank: i, fabric: f}
	}
	return conns, nil
}

// Rank implements Conn.
func (c *MemoryConn) Rank() int { return c.rank }

// Size implements Conn.
func (c *MemoryConn) Size() int { return c.fabric.size }

// Send implements Conn. The payload is not copied; callers must not reuse
// the slice after sending (workers serialise into fresh buffers).
func (c *MemoryConn) Send(to int, kind uint8, payload []byte) error {
	if err := checkRank(to, c.fabric.size); err != nil {
		return err
	}
	if err := c.fabric.queues[to].push(Message{From: c.rank, Kind: kind, Payload: payload}); err != nil {
		return err
	}
	c.counters.sent(len(payload))
	return nil
}

// Recv implements Conn.
func (c *MemoryConn) Recv() (Message, error) {
	m, err := c.fabric.queues[c.rank].pop()
	if err != nil {
		return Message{}, err
	}
	c.counters.recvd(len(m.Payload))
	return m, nil
}

// Counters implements Conn.
func (c *MemoryConn) Counters() Counters { return c.counters.snapshot() }

// Close implements Conn: it closes only this rank's inbox; peers observe
// ErrClosed when sending to it.
func (c *MemoryConn) Close() error {
	c.fabric.queues[c.rank].close()
	return nil
}
