package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// Checkpointing persists the engine's full serving state — topology,
// per-layer embeddings and raw aggregates, and tombstones — so a restarted
// process resumes streaming without re-running the bootstrap forward pass
// (which on the paper's large graphs takes minutes and requires the
// feature matrix). The format is versioned, little-endian, and
// self-validating against the model the state is loaded for.

const checkpointMagic = "RIPPLCKP"
const checkpointVersion = 1

// ErrBadCheckpoint wraps corruption and mismatch failures during Load.
var ErrBadCheckpoint = errors.New("engine: invalid checkpoint")

// Save writes the engine's state to w. The model weights are NOT included
// (they are the deterministic product of the model spec/seed); the loader
// must supply the same model.
func (r *Ripple) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("engine: writing checkpoint: %w", err)
	}
	writeU32 := func(v uint32) { _ = binary.Write(bw, binary.LittleEndian, v) }
	writeU32(checkpointVersion)
	n := r.g.NumVertices()
	writeU32(uint32(n))
	writeU32(uint32(len(r.model.Dims)))
	for _, d := range r.model.Dims {
		writeU32(uint32(d))
	}

	// Topology.
	writeU32(uint32(r.g.NumEdges()))
	var edgeErr error
	r.g.ForEachEdge(func(u, v graph.VertexID, wgt float32) {
		writeU32(uint32(u))
		writeU32(uint32(v))
		if err := binary.Write(bw, binary.LittleEndian, wgt); err != nil && edgeErr == nil {
			edgeErr = err
		}
	})
	if edgeErr != nil {
		return fmt.Errorf("engine: writing checkpoint edges: %w", edgeErr)
	}

	// Embeddings and aggregates.
	for l := range r.emb.H {
		for u := 0; u < n; u++ {
			if err := writeVec(bw, r.emb.H[l][u]); err != nil {
				return err
			}
			if l > 0 {
				if err := writeVec(bw, r.emb.A[l][u]); err != nil {
					return err
				}
			}
		}
	}

	// Tombstones.
	removedCount := uint32(0)
	for u := 0; u < n; u++ {
		if r.Removed(graph.VertexID(u)) {
			removedCount++
		}
	}
	writeU32(removedCount)
	for u := 0; u < n; u++ {
		if r.Removed(graph.VertexID(u)) {
			writeU32(uint32(u))
		}
	}
	return bw.Flush()
}

func writeVec(w io.Writer, v tensor.Vector) error {
	if err := binary.Write(w, binary.LittleEndian, []float32(v)); err != nil {
		return fmt.Errorf("engine: writing checkpoint vector: %w", err)
	}
	return nil
}

// LoadRipple reconstructs an engine from a checkpoint written by Save.
// model must be identical to the one the checkpoint was taken under
// (dimension mismatches are detected; weight mismatches cannot be and
// will produce wrong-but-plausible inferences — supply the same spec).
func LoadRipple(rd io.Reader, model *gnn.Model, cfg Config) (*Ripple, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	var version, n, numDims uint32
	for _, p := range []*uint32{&version, &n, &numDims} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: truncated header: %v", ErrBadCheckpoint, err)
		}
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadCheckpoint, version, checkpointVersion)
	}
	if numDims != uint32(len(model.Dims)) {
		return nil, fmt.Errorf("%w: %d dims, model has %d", ErrBadCheckpoint, numDims, len(model.Dims))
	}
	for i := 0; i < int(numDims); i++ {
		var d uint32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, fmt.Errorf("%w: truncated dims: %v", ErrBadCheckpoint, err)
		}
		if int(d) != model.Dims[i] {
			return nil, fmt.Errorf("%w: dim[%d]=%d, model has %d", ErrBadCheckpoint, i, d, model.Dims[i])
		}
	}

	g := graph.New(int(n))
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("%w: truncated edge count: %v", ErrBadCheckpoint, err)
	}
	for i := uint32(0); i < m; i++ {
		var u, v uint32
		var wgt float32
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("%w: truncated edges: %v", ErrBadCheckpoint, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: truncated edges: %v", ErrBadCheckpoint, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &wgt); err != nil {
			return nil, fmt.Errorf("%w: truncated edges: %v", ErrBadCheckpoint, err)
		}
		if err := g.AddEdge(graph.VertexID(u), graph.VertexID(v), wgt); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}

	emb := gnn.NewEmbeddings(int(n), model.Dims)
	for l := range emb.H {
		for u := 0; u < int(n); u++ {
			if err := readVec(br, emb.H[l][u]); err != nil {
				return nil, err
			}
			if l > 0 {
				if err := readVec(br, emb.A[l][u]); err != nil {
					return nil, err
				}
			}
		}
	}

	r, err := NewRipple(g, model, emb, cfg)
	if err != nil {
		return nil, err
	}
	var removedCount uint32
	if err := binary.Read(br, binary.LittleEndian, &removedCount); err != nil {
		return nil, fmt.Errorf("%w: truncated tombstones: %v", ErrBadCheckpoint, err)
	}
	if removedCount > 0 {
		r.removed = make([]bool, n)
		for i := uint32(0); i < removedCount; i++ {
			var u uint32
			if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
				return nil, fmt.Errorf("%w: truncated tombstones: %v", ErrBadCheckpoint, err)
			}
			if u >= n {
				return nil, fmt.Errorf("%w: tombstone %d out of range", ErrBadCheckpoint, u)
			}
			r.removed[u] = true
		}
	}
	return r, nil
}

func readVec(r io.Reader, v tensor.Vector) error {
	if err := binary.Read(r, binary.LittleEndian, []float32(v)); err != nil {
		return fmt.Errorf("%w: truncated embeddings: %v", ErrBadCheckpoint, err)
	}
	return nil
}
