package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// Checkpointing persists the engine's full serving state — topology,
// per-layer embeddings and raw aggregates, and tombstones — so a restarted
// process resumes streaming without re-running the bootstrap forward pass
// (which on the paper's large graphs takes minutes and requires the
// feature matrix). The format is versioned, little-endian, and
// self-validating against the model the state is loaded for.
//
// Two full-checkpoint versions coexist:
//
//	v1 — the seed-era serial format: per-edge and per-vector binary.Write/
//	     Read loops. Retained as the measured restart-cost baseline
//	     (Config.SerialCheckpoint / SaveSerial) and for old files.
//	v2 — the sectioned format: per-vertex out-lists plus the gnn sectioned
//	     embedding block (contiguous row ranges behind a CRC index) that a
//	     worker pool encodes and decodes concurrently. The header, topology
//	     and tombstone blocks carry their own CRC. Identical logical state
//	     encodes to identical bytes at any parallelism.
//
// Delta checkpoints ("RIPPLDLT") persist only the rows whose embeddings,
// adjacency, or tombstone changed since the last checkpoint — the engine
// tracks that set when EnableDirtyTracking is on — so steady-state
// checkpoint bytes are O(changed rows), not O(|V|).

const checkpointMagic = "RIPPLCKP"
const (
	checkpointVersionSerial    = 1
	checkpointVersionSectioned = 2
)

const deltaMagic = "RIPPLDLT"
const deltaVersion = 1

// ErrBadCheckpoint wraps corruption and mismatch failures during Load.
var ErrBadCheckpoint = errors.New("engine: invalid checkpoint")

// Save writes the engine's state to w in the sectioned v2 format (or the
// serial v1 format when Config.SerialCheckpoint is set). The model weights
// are NOT included (they are the deterministic product of the model
// spec/seed); the loader must supply the same model.
func (r *Ripple) Save(w io.Writer) error {
	if r.cfg.SerialCheckpoint {
		return r.SaveSerial(w)
	}
	buf := r.encodeV2()
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("engine: writing checkpoint: %w", err)
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// encodeV2 builds the complete v2 checkpoint image in memory. Layout:
//
//	magic, u32 version
//	u32 n, u32 numDims, numDims × u32 dim
//	u64 m, per vertex: u32 outDeg + outDeg × {u32 peer, u32 weightBits}
//	u32 tombstoneCount + count × u32 id
//	u32 CRC32-IEEE over everything above
//	sectioned embedding block (own per-section CRCs)
func (r *Ripple) encodeV2() []byte {
	n := r.g.NumVertices()
	m := r.g.NumEdges()
	dims := r.model.Dims
	tombs := 0
	for u := 0; u < n; u++ {
		if r.Removed(graph.VertexID(u)) {
			tombs++
		}
	}
	prefix := 8 + 4 + 4 + 4 + 4*len(dims) + 8 + 4*n + 8*int(m) + 4 + 4*tombs + 4
	buf := make([]byte, 0, prefix+gnn.SectionedSize(n, dims))
	buf = append(buf, checkpointMagic...)
	buf = appendU32(buf, checkpointVersionSectioned)
	buf = appendU32(buf, uint32(n))
	buf = appendU32(buf, uint32(len(dims)))
	for _, d := range dims {
		buf = appendU32(buf, uint32(d))
	}
	buf = appendU64(buf, uint64(m))
	for u := 0; u < n; u++ {
		out := r.g.Out(graph.VertexID(u))
		buf = appendU32(buf, uint32(len(out)))
		for _, e := range out {
			buf = appendU32(buf, uint32(e.Peer))
			buf = appendU32(buf, math.Float32bits(e.Weight))
		}
	}
	buf = appendU32(buf, uint32(tombs))
	for u := 0; u < n; u++ {
		if r.Removed(graph.VertexID(u)) {
			buf = appendU32(buf, uint32(u))
		}
	}
	buf = appendU32(buf, crc32.ChecksumIEEE(buf))
	return r.emb.AppendSectioned(buf)
}

// SaveSerial writes the seed-era v1 checkpoint: single-threaded binary.Write
// loops over edges and vectors. It is the serial baseline that restart-cost
// benchmarks measure the sectioned format against.
func (r *Ripple) SaveSerial(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("engine: writing checkpoint: %w", err)
	}
	writeU32 := func(v uint32) { _ = binary.Write(bw, binary.LittleEndian, v) }
	writeU32(checkpointVersionSerial)
	n := r.g.NumVertices()
	writeU32(uint32(n))
	writeU32(uint32(len(r.model.Dims)))
	for _, d := range r.model.Dims {
		writeU32(uint32(d))
	}

	// Topology.
	writeU32(uint32(r.g.NumEdges()))
	var edgeErr error
	r.g.ForEachEdge(func(u, v graph.VertexID, wgt float32) {
		writeU32(uint32(u))
		writeU32(uint32(v))
		if err := binary.Write(bw, binary.LittleEndian, wgt); err != nil && edgeErr == nil {
			edgeErr = err
		}
	})
	if edgeErr != nil {
		return fmt.Errorf("engine: writing checkpoint edges: %w", edgeErr)
	}

	// Embeddings and aggregates.
	for l := range r.emb.H {
		for u := 0; u < n; u++ {
			if err := writeVec(bw, r.emb.H[l][u]); err != nil {
				return err
			}
			if l > 0 {
				if err := writeVec(bw, r.emb.A[l][u]); err != nil {
					return err
				}
			}
		}
	}

	// Tombstones.
	removedCount := uint32(0)
	for u := 0; u < n; u++ {
		if r.Removed(graph.VertexID(u)) {
			removedCount++
		}
	}
	writeU32(removedCount)
	for u := 0; u < n; u++ {
		if r.Removed(graph.VertexID(u)) {
			writeU32(uint32(u))
		}
	}
	return bw.Flush()
}

func writeVec(w io.Writer, v tensor.Vector) error {
	if err := binary.Write(w, binary.LittleEndian, []float32(v)); err != nil {
		return fmt.Errorf("engine: writing checkpoint vector: %w", err)
	}
	return nil
}

// LoadRipple reconstructs an engine from a checkpoint written by Save (v2)
// or SaveSerial (v1). model must be identical to the one the checkpoint was
// taken under (dimension mismatches are detected; weight mismatches cannot
// be and will produce wrong-but-plausible inferences — supply the same
// spec).
func LoadRipple(rd io.Reader, model *gnn.Model, cfg Config) (*Ripple, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("%w: reading: %v", ErrBadCheckpoint, err)
	}
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	switch version := binary.LittleEndian.Uint32(data[len(checkpointMagic):]); version {
	case checkpointVersionSerial:
		return loadV1(bytes.NewReader(data[len(checkpointMagic)+4:]), model, cfg)
	case checkpointVersionSectioned:
		return loadV2(data, model, cfg)
	default:
		return nil, fmt.Errorf("%w: version %d, want %d or %d", ErrBadCheckpoint,
			version, checkpointVersionSerial, checkpointVersionSectioned)
	}
}

// loadV1 parses the serial v1 body (magic and version already consumed).
func loadV1(br io.Reader, model *gnn.Model, cfg Config) (*Ripple, error) {
	var n, numDims uint32
	for _, p := range []*uint32{&n, &numDims} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: truncated header: %v", ErrBadCheckpoint, err)
		}
	}
	if numDims != uint32(len(model.Dims)) {
		return nil, fmt.Errorf("%w: %d dims, model has %d", ErrBadCheckpoint, numDims, len(model.Dims))
	}
	for i := 0; i < int(numDims); i++ {
		var d uint32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, fmt.Errorf("%w: truncated dims: %v", ErrBadCheckpoint, err)
		}
		if int(d) != model.Dims[i] {
			return nil, fmt.Errorf("%w: dim[%d]=%d, model has %d", ErrBadCheckpoint, i, d, model.Dims[i])
		}
	}

	g := graph.New(int(n))
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("%w: truncated edge count: %v", ErrBadCheckpoint, err)
	}
	for i := uint32(0); i < m; i++ {
		var u, v uint32
		var wgt float32
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("%w: truncated edges: %v", ErrBadCheckpoint, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: truncated edges: %v", ErrBadCheckpoint, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &wgt); err != nil {
			return nil, fmt.Errorf("%w: truncated edges: %v", ErrBadCheckpoint, err)
		}
		if err := g.AddEdge(graph.VertexID(u), graph.VertexID(v), wgt); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}

	emb := gnn.NewEmbeddings(int(n), model.Dims)
	for l := range emb.H {
		for u := 0; u < int(n); u++ {
			if err := readVec(br, emb.H[l][u]); err != nil {
				return nil, err
			}
			if l > 0 {
				if err := readVec(br, emb.A[l][u]); err != nil {
					return nil, err
				}
			}
		}
	}

	r, err := NewRipple(g, model, emb, cfg)
	if err != nil {
		return nil, err
	}
	var removedCount uint32
	if err := binary.Read(br, binary.LittleEndian, &removedCount); err != nil {
		return nil, fmt.Errorf("%w: truncated tombstones: %v", ErrBadCheckpoint, err)
	}
	if removedCount > 0 {
		r.removed = make([]bool, n)
		for i := uint32(0); i < removedCount; i++ {
			var u uint32
			if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
				return nil, fmt.Errorf("%w: truncated tombstones: %v", ErrBadCheckpoint, err)
			}
			if u >= n {
				return nil, fmt.Errorf("%w: tombstone %d out of range", ErrBadCheckpoint, u)
			}
			r.removed[u] = true
		}
	}
	return r, nil
}

func readVec(r io.Reader, v tensor.Vector) error {
	if err := binary.Read(r, binary.LittleEndian, []float32(v)); err != nil {
		return fmt.Errorf("%w: truncated embeddings: %v", ErrBadCheckpoint, err)
	}
	return nil
}

// cursor is a bounds-checked little-endian reader over a byte image.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) u32() uint32 {
	if c.bad || c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.bad || c.off+8 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// checkDims validates the n/dims header fields against the model.
func checkDims(c *cursor, model *gnn.Model, what string) (int, error) {
	n := int(c.u32())
	numDims := int(c.u32())
	if c.bad {
		return 0, fmt.Errorf("%w: truncated %s header", ErrBadCheckpoint, what)
	}
	if numDims != len(model.Dims) {
		return 0, fmt.Errorf("%w: %d dims, model has %d", ErrBadCheckpoint, numDims, len(model.Dims))
	}
	for i := 0; i < numDims; i++ {
		d := int(c.u32())
		if c.bad {
			return 0, fmt.Errorf("%w: truncated %s dims", ErrBadCheckpoint, what)
		}
		if d != model.Dims[i] {
			return 0, fmt.Errorf("%w: dim[%d]=%d, model has %d", ErrBadCheckpoint, i, d, model.Dims[i])
		}
	}
	return n, nil
}

// loadV2 parses a complete v2 image, decoding embedding sections in
// parallel.
func loadV2(data []byte, model *gnn.Model, cfg Config) (*Ripple, error) {
	c := &cursor{b: data, off: len(checkpointMagic) + 4}
	n, err := checkDims(c, model, "checkpoint")
	if err != nil {
		return nil, err
	}
	m := c.u64()
	if c.bad || m > uint64(len(data))/8 {
		return nil, fmt.Errorf("%w: implausible edge count %d", ErrBadCheckpoint, m)
	}
	out := make([][]graph.Edge, n)
	var total uint64
	for u := 0; u < n; u++ {
		deg := int(c.u32())
		if c.bad || c.off+8*deg > len(data) {
			return nil, fmt.Errorf("%w: truncated out-list of vertex %d", ErrBadCheckpoint, u)
		}
		if deg > 0 {
			list := make([]graph.Edge, deg)
			for i := range list {
				peer := c.u32()
				w := math.Float32frombits(c.u32())
				if peer >= uint32(n) {
					return nil, fmt.Errorf("%w: edge peer %d out of range", ErrBadCheckpoint, peer)
				}
				list[i] = graph.Edge{Peer: graph.VertexID(peer), Weight: w}
			}
			out[u] = list
			total += uint64(deg)
		}
	}
	if total != m {
		return nil, fmt.Errorf("%w: out-lists hold %d edges, header says %d", ErrBadCheckpoint, total, m)
	}
	tombs := int(c.u32())
	if c.bad || c.off+4*tombs > len(data) {
		return nil, fmt.Errorf("%w: truncated tombstones", ErrBadCheckpoint)
	}
	var removed []bool
	for i := 0; i < tombs; i++ {
		u := c.u32()
		if u >= uint32(n) {
			return nil, fmt.Errorf("%w: tombstone %d out of range", ErrBadCheckpoint, u)
		}
		if removed == nil {
			removed = make([]bool, n)
		}
		removed[u] = true
	}
	crcOff := c.off
	if got, want := c.u32(), crc32.ChecksumIEEE(data[:crcOff]); c.bad || got != want {
		return nil, fmt.Errorf("%w: header/topology CRC mismatch", ErrBadCheckpoint)
	}

	emb, rest, err := gnn.DecodeSectioned(data[c.off:], n, model.Dims)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(rest))
	}
	r, err := NewRipple(graph.NewFromOutLists(out), model, emb, cfg)
	if err != nil {
		return nil, err
	}
	r.removed = removed
	return r, nil
}

// --- Dirty-row tracking and delta checkpoints ---

// EnableDirtyTracking starts recording which vertices' checkpointed state
// (embedding rows, adjacency, tombstone) changes across batches, the input
// to SaveDelta. Must not be called concurrently with ApplyBatch. Tracking
// costs O(1) per touched vertex and nothing when disabled.
func (r *Ripple) EnableDirtyTracking() {
	if r.dirty == nil {
		r.dirty = make([]bool, r.g.NumVertices())
	}
}

// markDirty records v as changed since the last ResetDirty. No-op unless
// EnableDirtyTracking was called.
func (r *Ripple) markDirty(v graph.VertexID) {
	if r.dirty == nil || r.dirty[v] {
		return
	}
	r.dirty[v] = true
	r.dirtyList = append(r.dirtyList, v)
}

// ResetDirty clears the dirty set: the next SaveDelta captures changes from
// this point. Called after every persisted checkpoint, full or delta.
func (r *Ripple) ResetDirty() {
	for _, v := range r.dirtyList {
		r.dirty[v] = false
	}
	r.dirtyList = r.dirtyList[:0]
}

// DirtyRows returns the number of vertices in the current dirty set.
func (r *Ripple) DirtyRows() int { return len(r.dirtyList) }

// SaveDelta writes a delta checkpoint: the state of every vertex touched
// since the last ResetDirty — all embedding layers, both adjacency lists
// verbatim (out-list order is semantically load-bearing), and the tombstone
// flag — plus the live edge count. Applying it to the state as of the last
// checkpoint reproduces the current state bit-identically. The caller
// resets the baseline (ResetDirty) once the delta is durable.
func (r *Ripple) SaveDelta(w io.Writer) error {
	if r.dirty == nil {
		return fmt.Errorf("engine: SaveDelta without EnableDirtyTracking")
	}
	ids := append([]graph.VertexID(nil), r.dirtyList...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	dims := r.model.Dims
	rowB := gnn.RowBytes(dims)
	size := 8 + 4 + 4 + 4 + 4*len(dims) + 8 + 4
	for _, v := range ids {
		size += 4 + 4 + 4 + 8*len(r.g.Out(v)) + 4 + 8*len(r.g.In(v)) + rowB
	}
	buf := make([]byte, 0, size+4)
	buf = append(buf, deltaMagic...)
	buf = appendU32(buf, deltaVersion)
	buf = appendU32(buf, uint32(r.g.NumVertices()))
	buf = appendU32(buf, uint32(len(dims)))
	for _, d := range dims {
		buf = appendU32(buf, uint32(d))
	}
	buf = appendU64(buf, uint64(r.g.NumEdges()))
	buf = appendU32(buf, uint32(len(ids)))
	for _, v := range ids {
		var flags uint32
		if r.Removed(v) {
			flags |= 1
		}
		buf = appendU32(buf, uint32(v))
		buf = appendU32(buf, flags)
		for _, list := range [][]graph.Edge{r.g.Out(v), r.g.In(v)} {
			buf = appendU32(buf, uint32(len(list)))
			for _, e := range list {
				buf = appendU32(buf, uint32(e.Peer))
				buf = appendU32(buf, math.Float32bits(e.Weight))
			}
		}
		buf = r.emb.AppendRow(buf, int(v))
	}
	buf = appendU32(buf, crc32.ChecksumIEEE(buf))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("engine: writing delta checkpoint: %w", err)
	}
	return nil
}

// ApplyDelta applies a delta checkpoint written by SaveDelta onto the
// current state, which must be the state the delta was taken against (the
// serving layer guarantees this by chaining deltas off checkpoint epochs).
func (r *Ripple) ApplyDelta(rd io.Reader) error {
	data, err := io.ReadAll(rd)
	if err != nil {
		return fmt.Errorf("%w: reading delta: %v", ErrBadCheckpoint, err)
	}
	if len(data) < len(deltaMagic)+8 || string(data[:len(deltaMagic)]) != deltaMagic {
		return fmt.Errorf("%w: bad delta magic", ErrBadCheckpoint)
	}
	if got, want := binary.LittleEndian.Uint32(data[len(data)-4:]), crc32.ChecksumIEEE(data[:len(data)-4]); got != want {
		return fmt.Errorf("%w: delta CRC mismatch", ErrBadCheckpoint)
	}
	c := &cursor{b: data[:len(data)-4], off: len(deltaMagic)}
	if v := c.u32(); v != deltaVersion {
		return fmt.Errorf("%w: delta version %d, want %d", ErrBadCheckpoint, v, deltaVersion)
	}
	n, err := checkDims(c, r.model, "delta")
	if err != nil {
		return err
	}
	if n != r.g.NumVertices() {
		return fmt.Errorf("%w: delta over %d vertices, state has %d", ErrBadCheckpoint, n, r.g.NumVertices())
	}
	m := int64(c.u64())
	count := int(c.u32())

	// Two passes: parse and validate everything first, mutate only after the
	// whole delta is proven well-formed. Recovery leans on this — a rejected
	// delta must leave the state it was offered exactly as it found it, so
	// the chain walk can fall back to WAL replay from that state.
	type deltaEntry struct {
		v      graph.VertexID
		flags  uint32
		out    []graph.Edge
		in     []graph.Edge
		rowOff int
	}
	rowBytes := gnn.RowBytes(r.model.Dims)
	entries := make([]deltaEntry, 0, count)
	prev := graph.VertexID(-1)
	for i := 0; i < count; i++ {
		v := graph.VertexID(c.u32())
		flags := c.u32()
		if c.bad || v <= prev || int(v) >= n {
			return fmt.Errorf("%w: bad delta vertex order at entry %d", ErrBadCheckpoint, i)
		}
		prev = v
		var lists [2][]graph.Edge
		for li := range lists {
			deg := int(c.u32())
			if c.bad || c.off+8*deg > len(c.b) {
				return fmt.Errorf("%w: truncated delta adjacency of vertex %d", ErrBadCheckpoint, v)
			}
			if deg > 0 {
				list := make([]graph.Edge, deg)
				for j := range list {
					peer := c.u32()
					w := math.Float32frombits(c.u32())
					if peer >= uint32(n) {
						return fmt.Errorf("%w: delta peer %d out of range", ErrBadCheckpoint, peer)
					}
					list[j] = graph.Edge{Peer: graph.VertexID(peer), Weight: w}
				}
				lists[li] = list
			}
		}
		if c.off+rowBytes > len(c.b) {
			return fmt.Errorf("%w: truncated delta row of vertex %d", ErrBadCheckpoint, v)
		}
		entries = append(entries, deltaEntry{v: v, flags: flags, out: lists[0], in: lists[1], rowOff: c.off})
		c.off += rowBytes
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing delta bytes", ErrBadCheckpoint, len(c.b)-c.off)
	}

	for _, e := range entries {
		if _, err := r.emb.DecodeRow(c.b[e.rowOff:e.rowOff+rowBytes], int(e.v)); err != nil {
			return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
		if err := r.g.ReplaceAdjacency(e.v, e.out, e.in); err != nil {
			return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
		if e.flags&1 != 0 {
			if r.removed == nil {
				r.removed = make([]bool, n)
			}
			r.removed[e.v] = true
		} else if r.removed != nil {
			r.removed[e.v] = false
		}
	}
	r.g.SetNumEdges(m)
	return nil
}
