package engine

import "ripple/internal/graph"

// BenchScatterHop exposes exactly the scatter work of one propagation hop
// — phases (a)+(b) of ApplyBatch — for benchmarks. It stages changed as
// the hop-0 frontier with zeroed pre-batch embeddings (so each delta
// equals the vertex's current h^0, full-width vector work either way),
// runs the hop-1 scatter on the engine's configured path (serial or
// sharded-parallel), and recycles the batch state. Returns the number of
// messages deposited.
func (r *Ripple) BenchScatterHop(changed []graph.VertexID) int64 {
	for _, u := range changed {
		r.oldH[0].Get(u) // zero old value => delta = current embedding
	}
	r.changed[0] = append(r.changed[0][:0], changed...)
	r.events = r.events[:0]
	var res BatchResult
	r.scatterHop(1, &res)
	r.mailbox[1].Reset(r.cfg.Serial)
	r.oldH[0].Reset()
	return res.Messages
}
