package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// --- trigger-based label notifications ---

func TestTrackLabelsReportsFlips(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRipple(g, m, emb, Config{TrackLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	// 1-dim embeddings: argmax is always 0, so no flips are possible —
	// verify empty, then test a real multi-class flip separately.
	res, err := r.ApplyBatch([]Update{{Kind: EdgeAdd, U: 4, V: 0, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LabelChanges) != 0 {
		t.Errorf("1-dim model reported %d flips", len(res.LabelChanges))
	}
}

func TestTrackLabelsMatchesExternalDiff(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 17}
	w := newTestWorld(t, spec, 40, 160, 171)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{TrackLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	for batchNum := 0; batchNum < 5; batchNum++ {
		// External diff: labels before vs after.
		before := make([]int, 40)
		for u := 0; u < 40; u++ {
			before[u] = r.Label(graph.VertexID(u))
		}
		res, err := r.ApplyBatch(w.randomBatch(6))
		if err != nil {
			t.Fatal(err)
		}
		reported := map[graph.VertexID]LabelChange{}
		for _, lc := range res.LabelChanges {
			reported[lc.Vertex] = lc
		}
		for u := 0; u < 40; u++ {
			after := r.Label(graph.VertexID(u))
			lc, ok := reported[graph.VertexID(u)]
			if after != before[u] {
				if !ok {
					t.Fatalf("batch %d: flip at %d (%d→%d) not reported", batchNum, u, before[u], after)
				}
				if lc.Old != before[u] || lc.New != after {
					t.Fatalf("batch %d: flip at %d reported as %d→%d, want %d→%d",
						batchNum, u, lc.Old, lc.New, before[u], after)
				}
			} else if ok {
				t.Fatalf("batch %d: spurious flip reported at %d", batchNum, u)
			}
		}
	}
}

func TestTrackLabelsOffByDefault(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 18}
	w := newTestWorld(t, spec, 30, 120, 173)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ApplyBatch(w.randomBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelChanges != nil {
		t.Error("label changes populated without TrackLabels")
	}
}

// --- vertex addition/removal (§8 extension) ---

func TestAddVertexThenConnect(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggMean, Dims: []int{5, 6, 4}, Seed: 19}
	w := newTestWorld(t, spec, 30, 120, 177)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}

	feat := tensor.Vector{0.1, -0.2, 0.3, -0.4, 0.5}
	id, err := r.AddVertex(feat)
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != 30 {
		t.Fatalf("new vertex id = %d, want 30", id)
	}
	if l := r.Label(id); l < 0 || l >= 4 {
		t.Errorf("isolated vertex label %d out of range", l)
	}

	// Connect it into the graph and mutate around it; the engine must stay
	// exact versus a from-scratch forward pass on the mirrored world.
	w.g.AddVertex()
	w.x = append(w.x, feat.Clone())
	batch := []Update{
		{Kind: EdgeAdd, U: id, V: 3, Weight: 1},
		{Kind: EdgeAdd, U: 7, V: id, Weight: 1},
	}
	for _, u := range batch {
		if err := w.g.AddEdge(u.U, u.V, u.Weight); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	more := w.randomBatch(6)
	if _, err := r.ApplyBatch(more); err != nil {
		t.Fatal(err)
	}
	truth := w.groundTruth()
	if d := r.Embeddings().MaxAbsDiff(truth); d > embTol {
		t.Fatalf("post-AddVertex drift %v", d)
	}
}

func TestAddVertexValidatesFeatures(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddVertex(tensor.Vector{1, 2}); !errors.Is(err, ErrBadUpdate) {
		t.Errorf("bad feature width error = %v", err)
	}
}

func TestRemoveVertexPropagatesExactly(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 20}
	w := newTestWorld(t, spec, 30, 150, 179)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}

	victim := graph.VertexID(5)
	// Mirror the removal in the reference world: delete incident edges and
	// zero the features.
	for _, e := range w.g.IncidentEdges(victim) {
		if _, err := w.g.RemoveEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	w.x[victim].Zero()

	res, err := r.RemoveVertex(victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Error("removal of a connected vertex should stream updates")
	}
	if !r.Removed(victim) || r.Label(victim) != -1 {
		t.Error("vertex not tombstoned")
	}
	truth := w.groundTruth()
	// Compare all live vertices (the tombstoned one keeps stale h>0 rows,
	// which no live vertex can observe: it has no out-edges).
	for l := range truth.H {
		for u := 0; u < 30; u++ {
			if graph.VertexID(u) == victim && l > 0 {
				continue
			}
			if d := r.Embeddings().H[l][u].MaxAbsDiff(truth.H[l][u]); d > embTol {
				t.Fatalf("layer %d vertex %d drift %v after removal", l, u, d)
			}
		}
	}

	// Further updates touching the tombstone are rejected.
	if _, err := r.ApplyBatch([]Update{{Kind: EdgeAdd, U: 0, V: victim, Weight: 1}}); !errors.Is(err, ErrVertexRemoved) {
		t.Errorf("edge to removed vertex error = %v", err)
	}
	if _, err := r.ApplyBatch([]Update{{Kind: FeatureUpdate, U: victim, Features: tensor.NewVector(5)}}); !errors.Is(err, ErrVertexRemoved) {
		t.Errorf("feature update on removed vertex error = %v", err)
	}
	if _, err := r.RemoveVertex(victim); !errors.Is(err, ErrVertexRemoved) {
		t.Errorf("double removal error = %v", err)
	}

	// Unrelated updates still work.
	if _, err := r.ApplyBatch(w.randomBatchAvoiding(4, victim)); err != nil {
		t.Fatal(err)
	}
}

// randomBatchAvoiding generates updates that never touch the given vertex.
func (w *testWorld) randomBatchAvoiding(size int, avoid graph.VertexID) []Update {
	w.t.Helper()
	var out []Update
	for len(out) < size {
		b := w.randomBatch(1)
		u := b[0]
		if u.U == avoid || (u.Kind != FeatureUpdate && u.V == avoid) {
			// Undo the mirror mutation so the worlds stay in sync.
			switch u.Kind {
			case EdgeAdd:
				if _, err := w.g.RemoveEdge(u.U, u.V); err != nil {
					w.t.Fatal(err)
				}
			case EdgeDelete:
				if err := w.g.AddEdge(u.U, u.V, 1); err != nil {
					w.t.Fatal(err)
				}
				w.edges = append(w.edges, [2]graph.VertexID{u.U, u.V})
			}
			continue
		}
		out = append(out, u)
	}
	return out
}

// --- adaptive batcher (§8 extension) ---

func newBatcherEngine(t *testing.T) (*Ripple, *testWorld) {
	t.Helper()
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 23}
	w := newTestWorld(t, spec, 30, 120, 191)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r, w
}

func TestBatcherSizeTrigger(t *testing.T) {
	r, w := newBatcherEngine(t)
	var mu sync.Mutex
	var flushes []int
	b, err := NewBatcher(r, 4, 0, func(res BatchResult, err error) {
		if err != nil {
			t.Errorf("flush error: %v", err)
		}
		mu.Lock()
		flushes = append(flushes, res.Updates)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	updates := w.randomBatch(10)
	for _, u := range updates {
		if err := b.Submit(u); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := append([]int(nil), flushes...)
	mu.Unlock()
	if len(got) != 2 || got[0] != 4 || got[1] != 4 {
		t.Errorf("size-triggered flushes = %v, want [4 4]", got)
	}
	if b.Pending() != 2 {
		t.Errorf("pending = %d, want 2", b.Pending())
	}
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(flushes) != 3 || flushes[2] != 2 {
		t.Errorf("close flush = %v", flushes)
	}
	if err := b.Submit(updates[0]); !errors.Is(err, ErrBatcherClosed) {
		t.Errorf("submit after close = %v", err)
	}
}

func TestBatcherSubmitAll(t *testing.T) {
	r, w := newBatcherEngine(t)
	var mu sync.Mutex
	var flushes []int
	b, err := NewBatcher(r, 4, 0, func(res BatchResult, err error) {
		if err != nil {
			t.Errorf("flush error: %v", err)
		}
		mu.Lock()
		flushes = append(flushes, res.Updates)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	updates := w.randomBatch(10)

	// A slice crossing the size threshold flushes as ONE combined batch —
	// no interleaved flush can split it.
	if err := b.SubmitAll(updates[:6]); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]int(nil), flushes...)
	mu.Unlock()
	if len(got) != 1 || got[0] != 6 {
		t.Errorf("SubmitAll(6) flushes = %v, want [6]", got)
	}

	// Below the threshold: buffered, nothing flushed.
	if err := b.SubmitAll(updates[6:8]); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 2 {
		t.Errorf("pending = %d, want 2", b.Pending())
	}

	// Empty slice is a no-op even after close; non-empty after close is
	// all-or-nothing rejected with nothing buffered.
	b.Close()
	if err := b.SubmitAll(nil); err != nil {
		t.Errorf("SubmitAll(nil) after close = %v, want nil", err)
	}
	if err := b.SubmitAll(updates[8:]); !errors.Is(err, ErrBatcherClosed) {
		t.Errorf("SubmitAll after close = %v, want ErrBatcherClosed", err)
	}
	if b.Pending() != 0 {
		t.Errorf("pending after rejected SubmitAll = %d, want 0", b.Pending())
	}
}

func TestBatcherDeadlineTrigger(t *testing.T) {
	r, w := newBatcherEngine(t)
	done := make(chan BatchResult, 1)
	b, err := NewBatcher(r, 0, 30*time.Millisecond, func(res BatchResult, err error) {
		if err != nil {
			t.Errorf("flush error: %v", err)
		}
		done <- res
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, u := range w.randomBatch(3) {
		if err := b.Submit(u); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case res := <-done:
		if res.Updates != 3 {
			t.Errorf("deadline flush had %d updates, want 3", res.Updates)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadline flush never fired")
	}
}

func TestBatcherManualFlushAndValidation(t *testing.T) {
	r, w := newBatcherEngine(t)
	if _, err := NewBatcher(r, 0, 0, nil); err == nil {
		t.Error("expected error for batcher without thresholds")
	}
	fired := make(chan struct{}, 1)
	b, err := NewBatcher(r, 100, 0, func(BatchResult, error) { fired <- struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range w.randomBatch(2) {
		if err := b.Submit(u); err != nil {
			t.Fatal(err)
		}
	}
	b.Flush()
	select {
	case <-fired:
	default:
		t.Error("manual flush did not fire callback")
	}
	b.Flush() // empty flush is a no-op
	select {
	case <-fired:
		t.Error("empty flush fired callback")
	default:
	}
}

func TestBatcherEquivalentToDirectBatches(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 29}
	w1 := newTestWorld(t, spec, 30, 120, 197)
	stream := w1.randomBatch(12)

	// Direct application.
	w2 := newTestWorld(t, spec, 30, 120, 197)
	g2, e2 := w2.bootstrap()
	direct, err := NewRipple(g2, w2.model, e2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(stream); lo += 4 {
		if _, err := direct.ApplyBatch(stream[lo:min(lo+4, len(stream))]); err != nil {
			t.Fatal(err)
		}
	}

	// Through the batcher with the same size threshold.
	w3 := newTestWorld(t, spec, 30, 120, 197)
	g3, e3 := w3.bootstrap()
	r, err := NewRipple(g3, w3.model, e3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(r, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range stream {
		if err := b.Submit(u); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if d := direct.Embeddings().MaxAbsDiff(r.Embeddings()); d > 1e-5 {
		t.Errorf("batcher result differs from direct batching by %v", d)
	}
}

// gateStrategy counts in-flight ApplyBatch calls and records the peak, with
// an optional stall so flushes pile up.
type gateStrategy struct {
	stall    time.Duration
	inFlight atomic.Int64
	peak     atomic.Int64
	applied  atomic.Int64
}

func (g *gateStrategy) Name() string { return "gate" }

func (g *gateStrategy) ApplyBatch(batch []Update) (BatchResult, error) {
	n := g.inFlight.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			break
		}
	}
	if g.stall > 0 {
		time.Sleep(g.stall)
	}
	g.inFlight.Add(-1)
	g.applied.Add(int64(len(batch)))
	return BatchResult{Updates: len(batch)}, nil
}

// TestBatcherFlushConcurrencyBound pins SetMaxConcurrentFlushes: the default
// serialises flushes even when many submitters race, and a raised bound is
// still a bound, not a free-for-all.
func TestBatcherFlushConcurrencyBound(t *testing.T) {
	run := func(limit int) *gateStrategy {
		gs := &gateStrategy{stall: 2 * time.Millisecond}
		b, err := NewBatcher(gs, 1, 0, nil) // every submit flushes immediately
		if err != nil {
			t.Fatal(err)
		}
		if limit > 0 {
			b.SetMaxConcurrentFlushes(limit)
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					if err := b.Submit(Update{Kind: FeatureUpdate, U: graph.VertexID(j), Features: tensor.Vector{0, 0, 0, 0, 0}}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		b.Close()
		return gs
	}

	if gs := run(0); gs.peak.Load() != 1 {
		t.Errorf("default flush concurrency peak = %d, want 1", gs.peak.Load())
	}
	gs := run(4)
	if p := gs.peak.Load(); p > 4 {
		t.Errorf("flush concurrency peak = %d, want <= 4", p)
	}
	if got := gs.applied.Load(); got != 40 {
		t.Errorf("applied %d updates, want 40", got)
	}
}
