package engine_test

import (
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/engine"
	"ripple/internal/gnn"
)

// microWorkload builds an Arxiv-shaped graph with a prepared stream for
// strategy micro-benchmarks.
func microWorkload(b *testing.B) (*dataset.Workload, *gnn.Model) {
	b.Helper()
	spec := dataset.Arxiv(0.02) // ≈3.4K vertices, ≈23K edges
	w, err := dataset.Build(spec, dataset.StreamConfig{Total: 4000, HoldoutFrac: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := gnn.NewWorkload("GC-S", []int{spec.FeatureDim, 32, spec.NumClasses}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return w, m
}

func benchStrategy(b *testing.B, build func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error)) {
	w, m := microWorkload(b)
	s, err := build(w, m)
	if err != nil {
		b.Fatal(err)
	}
	batches := w.Batches(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ApplyBatch(batches[i%len(batches)]); err != nil {
			// The cyclic stream eventually re-adds existing edges; rebuild
			// state rather than failing (excluded from timing).
			b.StopTimer()
			s, err = build(w, m)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkRippleApplyBatch10(b *testing.B) {
	benchStrategy(b, func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error) {
		g := w.CloneSnapshot()
		emb, err := gnn.Forward(g, m, w.CloneFeatures())
		if err != nil {
			return nil, err
		}
		return engine.NewRipple(g, m, emb, engine.Config{})
	})
}

func BenchmarkRCApplyBatch10(b *testing.B) {
	benchStrategy(b, func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error) {
		g := w.CloneSnapshot()
		emb, err := gnn.Forward(g, m, w.CloneFeatures())
		if err != nil {
			return nil, err
		}
		return engine.NewRC(g, m, emb, engine.Config{})
	})
}

func BenchmarkDRCApplyBatch10(b *testing.B) {
	benchStrategy(b, func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error) {
		g := w.CloneSnapshot()
		emb, err := gnn.Forward(g, m, w.CloneFeatures())
		if err != nil {
			return nil, err
		}
		return engine.NewDRC(g, m, emb, engine.Config{})
	})
}

// BenchmarkPruneAblation measures the PruneZeroDeltas ablation: dropping
// exactly-unchanged vertices from the frontier (the paper's Ripple does
// not prune; this quantifies what pruning would buy on ReLU-saturated
// embeddings).
func BenchmarkPruneAblation(b *testing.B) {
	for _, prune := range []bool{false, true} {
		name := "NoPrune"
		if prune {
			name = "Prune"
		}
		b.Run(name, func(b *testing.B) {
			benchStrategy(b, func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error) {
				g := w.CloneSnapshot()
				emb, err := gnn.Forward(g, m, w.CloneFeatures())
				if err != nil {
					return nil, err
				}
				return engine.NewRipple(g, m, emb, engine.Config{PruneZeroDeltas: prune})
			})
		})
	}
}
