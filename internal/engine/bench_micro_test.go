package engine_test

import (
	"math/rand"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
)

// microWorkload builds an Arxiv-shaped graph with a prepared stream for
// strategy micro-benchmarks.
func microWorkload(b *testing.B) (*dataset.Workload, *gnn.Model) {
	b.Helper()
	spec := dataset.Arxiv(0.02) // ≈3.4K vertices, ≈23K edges
	w, err := dataset.Build(spec, dataset.StreamConfig{Total: 4000, HoldoutFrac: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := gnn.NewWorkload("GC-S", []int{spec.FeatureDim, 32, spec.NumClasses}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return w, m
}

func benchStrategy(b *testing.B, build func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error)) {
	w, m := microWorkload(b)
	s, err := build(w, m)
	if err != nil {
		b.Fatal(err)
	}
	batches := w.Batches(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ApplyBatch(batches[i%len(batches)]); err != nil {
			// The cyclic stream eventually re-adds existing edges; rebuild
			// state rather than failing (excluded from timing).
			b.StopTimer()
			s, err = build(w, m)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkRippleApplyBatch10(b *testing.B) {
	benchStrategy(b, func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error) {
		g := w.CloneSnapshot()
		emb, err := gnn.Forward(g, m, w.CloneFeatures())
		if err != nil {
			return nil, err
		}
		return engine.NewRipple(g, m, emb, engine.Config{})
	})
}

func BenchmarkRCApplyBatch10(b *testing.B) {
	benchStrategy(b, func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error) {
		g := w.CloneSnapshot()
		emb, err := gnn.Forward(g, m, w.CloneFeatures())
		if err != nil {
			return nil, err
		}
		return engine.NewRC(g, m, emb, engine.Config{})
	})
}

func BenchmarkDRCApplyBatch10(b *testing.B) {
	benchStrategy(b, func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error) {
		g := w.CloneSnapshot()
		emb, err := gnn.Forward(g, m, w.CloneFeatures())
		if err != nil {
			return nil, err
		}
		return engine.NewDRC(g, m, emb, engine.Config{})
	})
}

// BenchmarkScatter isolates the scatter phases (a)+(b) of ApplyBatch —
// the hot path the sharded mailbox parallelises — on a 100k-vertex graph
// with a high-out-degree frontier: 2048 changed vertices, out-degree 128
// each (≈260k delta messages per hop, width 64). Serial is the paper's
// single-writer scatter; Parallel is the sharded default; the Shards=…
// variants sweep the merge granularity. The multi-core win (≥3× at 8
// cores) comes from the merge doing all AXPY work partitioned by sink
// shard — single-core runs degrade gracefully to the same deposit order.
func BenchmarkScatter(b *testing.B) {
	const (
		n       = 100_000
		sources = 2_048
		degree  = 128
		width   = 64
	)
	g := graph.New(n)
	rng := rand.New(rand.NewSource(7))
	changed := make([]graph.VertexID, 0, sources)
	for s := 0; s < sources; s++ {
		src := graph.VertexID(s * (n / sources))
		changed = append(changed, src)
		for added := 0; added < degree; {
			if g.AddEdge(src, graph.VertexID(rng.Intn(n)), 1) == nil {
				added++
			}
		}
	}
	for _, bc := range []struct {
		name string
		cfg  engine.Config
	}{
		{"Serial", engine.Config{Serial: true}},
		{"Parallel", engine.Config{}},
		{"Shards=4", engine.Config{Shards: 4}},
		{"Shards=16", engine.Config{Shards: 16}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			model, err := gnn.NewWorkload("GC-S", []int{width, width, 16}, 1)
			if err != nil {
				b.Fatal(err)
			}
			// Zeroed embeddings: scatter cost is value-independent, so the
			// bootstrap forward pass would only slow the benchmark down.
			eng, err := engine.NewRipple(g, model, gnn.NewEmbeddings(n, model.Dims), bc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var msgs int64
			for i := 0; i < b.N; i++ {
				msgs = eng.BenchScatterHop(changed)
			}
			b.ReportMetric(float64(msgs), "msgs/op")
		})
	}
}

// BenchmarkPruneAblation measures the PruneZeroDeltas ablation: dropping
// exactly-unchanged vertices from the frontier (the paper's Ripple does
// not prune; this quantifies what pruning would buy on ReLU-saturated
// embeddings).
func BenchmarkPruneAblation(b *testing.B) {
	for _, prune := range []bool{false, true} {
		name := "NoPrune"
		if prune {
			name = "Prune"
		}
		b.Run(name, func(b *testing.B) {
			benchStrategy(b, func(w *dataset.Workload, m *gnn.Model) (engine.Strategy, error) {
				g := w.CloneSnapshot()
				emb, err := gnn.Forward(g, m, w.CloneFeatures())
				if err != nil {
					return nil, err
				}
				return engine.NewRipple(g, m, emb, engine.Config{PruneZeroDeltas: prune})
			})
		})
	}
}
