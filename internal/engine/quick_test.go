package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// quickScenario is a generated test case for the golden invariant: a seed
// picks graph/model/update-stream; the property re-derives everything
// deterministically from it.
type quickScenario struct {
	GraphSeed   int64
	ModelSeed   int64
	StreamSeed  int64
	KindIdx     uint8
	AggIdx      uint8
	BatchSizeU8 uint8
}

// TestQuickRippleAlwaysMatchesForward is the package's central
// property-based test: for arbitrary (graph, model, update stream) drawn
// by testing/quick, applying the stream through Ripple yields the same
// embeddings as recomputing from scratch.
func TestQuickRippleAlwaysMatchesForward(t *testing.T) {
	kinds := []gnn.ModelKind{gnn.GraphConv, gnn.GraphSAGE, gnn.GINConv}
	aggs := []gnn.Aggregator{gnn.AggSum, gnn.AggMean, gnn.AggWeighted}

	property := func(sc quickScenario) bool {
		spec := gnn.Spec{
			Kind: kinds[int(sc.KindIdx)%len(kinds)],
			Agg:  aggs[int(sc.AggIdx)%len(aggs)],
			Dims: []int{4, 5, 3},
			Seed: sc.ModelSeed,
		}
		w := newTestWorld(t, spec, 25, 80, sc.GraphSeed)
		w.rng = rand.New(rand.NewSource(sc.StreamSeed))
		g, emb := w.bootstrap()
		r, err := NewRipple(g, w.model, emb, Config{})
		if err != nil {
			t.Logf("NewRipple: %v", err)
			return false
		}
		bs := 1 + int(sc.BatchSizeU8)%8
		for i := 0; i < 3; i++ {
			if _, err := r.ApplyBatch(w.randomBatch(bs)); err != nil {
				t.Logf("ApplyBatch: %v", err)
				return false
			}
		}
		d := r.Embeddings().MaxAbsDiff(w.groundTruth())
		if d > embTol {
			t.Logf("drift %v for %+v", d, sc)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickRCAlwaysMatchesForward is the same property for the recompute
// baseline — the two strategies are verified against the same oracle, so
// any disagreement between them is caught transitively.
func TestQuickRCAlwaysMatchesForward(t *testing.T) {
	property := func(graphSeed, streamSeed int64, aggIdx uint8) bool {
		aggs := []gnn.Aggregator{gnn.AggSum, gnn.AggMean, gnn.AggWeighted}
		spec := gnn.Spec{
			Kind: gnn.GraphSAGE,
			Agg:  aggs[int(aggIdx)%len(aggs)],
			Dims: []int{4, 5, 3},
			Seed: 7,
		}
		w := newTestWorld(t, spec, 20, 60, graphSeed)
		w.rng = rand.New(rand.NewSource(streamSeed))
		g, emb := w.bootstrap()
		rc, err := NewRC(g, w.model, emb, Config{})
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			if _, err := rc.ApplyBatch(w.randomBatch(4)); err != nil {
				return false
			}
		}
		return rc.Embeddings().MaxAbsDiff(w.groundTruth()) <= embTol
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickMailboxCommutativity: delta messages accumulated in any order
// produce the same mailbox sum (the permutation-invariance Ripple relies
// on, §4.3.1), exactly for integer-valued vectors.
func TestQuickMailboxCommutativity(t *testing.T) {
	property := func(raw [][4]int8, perm int64) bool {
		if len(raw) == 0 {
			return true
		}
		msgs := make([]tensor.Vector, len(raw))
		for i, r := range raw {
			msgs[i] = tensor.Vector{float32(r[0]), float32(r[1]), float32(r[2]), float32(r[3])}
		}
		acc1 := tensor.NewVector(4)
		for _, m := range msgs {
			acc1.Add(m)
		}
		rng := rand.New(rand.NewSource(perm))
		shuffled := append([]tensor.Vector(nil), msgs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		acc2 := tensor.NewVector(4)
		for _, m := range shuffled {
			acc2.Add(m)
		}
		return acc1.MaxAbsDiff(acc2) == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickAddDeleteInverse: on integer-valued identity-sum models, any
// edge add followed by its delete restores every embedding bit-for-bit.
func TestQuickAddDeleteInverse(t *testing.T) {
	property := func(graphSeed int64, uRaw, vRaw uint8) bool {
		const n = 15
		rng := rand.New(rand.NewSource(graphSeed))
		g := graph.New(n)
		for i := 0; i < 40; i++ {
			_ = g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 1)
		}
		u := graph.VertexID(uRaw % n)
		v := graph.VertexID(vRaw % n)
		if g.HasEdge(u, v) {
			return true // nothing to test
		}
		m := identitySum(3)
		x := make([]tensor.Vector, n)
		for i := range x {
			x[i] = tensor.Vector{float32(rng.Intn(64) - 32)}
		}
		emb, err := gnn.Forward(g, m, x)
		if err != nil {
			return false
		}
		before := emb.Clone()
		r, err := NewRipple(g, m, emb, Config{})
		if err != nil {
			return false
		}
		if _, err := r.ApplyBatch([]Update{{Kind: EdgeAdd, U: u, V: v, Weight: 1}}); err != nil {
			return false
		}
		if _, err := r.ApplyBatch([]Update{{Kind: EdgeDelete, U: u, V: v}}); err != nil {
			return false
		}
		return r.Embeddings().MaxAbsDiff(before) == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFrontierNeverExceedsGraph: the affected count is bounded by the
// vertex count, and per-hop frontiers are bounded by n, for arbitrary
// batches.
func TestQuickFrontierInvariants(t *testing.T) {
	property := func(streamSeed int64, bsRaw uint8) bool {
		spec := gnn.Spec{Kind: gnn.GINConv, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 3}
		w := newTestWorld(t, spec, 30, 120, 55)
		w.rng = rand.New(rand.NewSource(streamSeed))
		g, emb := w.bootstrap()
		r, err := NewRipple(g, w.model, emb, Config{})
		if err != nil {
			return false
		}
		res, err := r.ApplyBatch(w.randomBatch(1 + int(bsRaw)%12))
		if err != nil {
			return false
		}
		if res.Affected < 0 || res.Affected > 30 {
			return false
		}
		for _, f := range res.FrontierPerHop {
			if f < 0 || f > 30 {
				return false
			}
		}
		// Messages and ops are consistent: at least one op per message.
		return res.VectorOps >= res.Messages
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
