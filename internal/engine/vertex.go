package engine

import (
	"fmt"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// This file implements vertex addition and removal for the Ripple engine —
// the update types the paper defers to future work (§8). Both compose
// from the exact primitives the engine already has:
//
//   - Addition grows the state and computes the isolated vertex's
//     embedding chain locally (an isolated vertex aggregates nothing, so
//     no propagation is needed until edges arrive).
//   - Removal streams exact edge-deletions for every incident edge — the
//     cascade is identical to deleting those edges one by one — then
//     tombstones the vertex. Ids are never reused.

// ErrVertexRemoved is returned for operations touching a removed vertex.
var ErrVertexRemoved = fmt.Errorf("engine: vertex removed")

// AddVertex appends a new vertex with the given features, computes its
// (edge-free) embeddings, and returns its id. The vertex participates in
// future updates like any other; connect it by streaming EdgeAdd updates.
func (r *Ripple) AddVertex(features tensor.Vector) (graph.VertexID, error) {
	if len(features) != r.model.Dims[0] {
		return 0, fmt.Errorf("%w: feature width %d, want %d", ErrBadUpdate, len(features), r.model.Dims[0])
	}
	id := r.g.AddVertex()
	if got := r.emb.Grow(); got != int(id) {
		panic(fmt.Sprintf("engine: embeddings grew to %d, graph to %d", got, id))
	}
	for l := 0; l <= r.model.L(); l++ {
		r.oldH[l].Grow()
		if l > 0 {
			r.mailbox[l].Grow()
		}
	}
	r.affectedStamp = append(r.affectedStamp, 0)
	if r.removed != nil {
		r.removed = append(r.removed, false)
	}
	if r.dirty != nil {
		r.dirty = append(r.dirty, false)
		r.markDirty(id)
	}

	// Embedding chain of an isolated vertex: zero aggregate at every hop.
	r.emb.H[0][id].CopyFrom(features)
	zeroAgg := tensor.NewVector(r.model.MaxDim())
	for l := 1; l <= r.model.L(); l++ {
		layer := r.model.Layers[l-1]
		layer.UpdateInto(r.emb.H[l][id], r.emb.H[l-1][id], zeroAgg[:layer.In], 0, r.scratch)
	}
	return id, nil
}

// RemoveVertex disconnects u by streaming exact edge-deletions for all its
// incident edges (propagating their effects to the rest of the graph),
// zeroes its features, and tombstones it: further updates touching u are
// rejected and Label reports -1. The id is not reused.
func (r *Ripple) RemoveVertex(u graph.VertexID) (BatchResult, error) {
	if err := r.checkLive(u); err != nil {
		return BatchResult{}, err
	}
	incident := r.g.IncidentEdges(u)
	batch := make([]Update, 0, len(incident)+1)
	for _, e := range incident {
		batch = append(batch, Update{Kind: EdgeDelete, U: e.From, V: e.To})
	}
	// Zero the features so the tombstoned vertex holds no stale signal
	// (no out-edges remain, so this propagates nowhere).
	batch = append(batch, Update{Kind: FeatureUpdate, U: u, Features: tensor.NewVector(r.model.Dims[0])})
	res, err := r.ApplyBatch(batch)
	if err != nil {
		return res, err
	}
	if r.removed == nil {
		r.removed = make([]bool, r.g.NumVertices())
	}
	for len(r.removed) < r.g.NumVertices() {
		r.removed = append(r.removed, false)
	}
	r.removed[u] = true
	r.markDirty(u) // the tombstone itself is delta-checkpointed state
	return res, nil
}

// Removed reports whether u has been tombstoned.
func (r *Ripple) Removed(u graph.VertexID) bool {
	return r.removed != nil && int(u) < len(r.removed) && r.removed[u]
}

// checkLive rejects operations on tombstoned vertices.
func (r *Ripple) checkLive(u graph.VertexID) error {
	if u < 0 || int(u) >= r.g.NumVertices() {
		return fmt.Errorf("%w: vertex %d out of range", ErrBadUpdate, u)
	}
	if r.Removed(u) {
		return fmt.Errorf("%w: %d", ErrVertexRemoved, u)
	}
	return nil
}
