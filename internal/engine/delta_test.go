package engine

import (
	"bytes"
	"runtime"
	"testing"

	"ripple/internal/gnn"
	"ripple/internal/graph"
)

// --- sectioned (v2) vs serial (v1) checkpoint formats ---

// TestCheckpointFormatsInterchangeable: the serial v1 writer and the
// sectioned v2 writer encode the same state into different bytes, and
// both load back into bit-identical engines that keep streaming in
// lockstep.
func TestCheckpointFormatsInterchangeable(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 83}
	w := newTestWorld(t, spec, 40, 160, 421)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.ApplyBatch(w.randomBatch(6)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.RemoveVertex(graph.VertexID(7)); err != nil {
		t.Fatal(err)
	}

	var v2 bytes.Buffer
	if err := r.Save(&v2); err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := r.SaveSerial(&v1); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("SaveSerial and Save produced identical bytes — v2 format not in effect")
	}
	// Config.SerialCheckpoint routes Save through the v1 writer.
	rs, err := LoadRipple(bytes.NewReader(v2.Bytes()), w.model, Config{SerialCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	var viaCfg bytes.Buffer
	if err := rs.Save(&viaCfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaCfg.Bytes(), v1.Bytes()) {
		t.Fatal("Config.SerialCheckpoint did not select the v1 writer")
	}

	fromV1, err := LoadRipple(bytes.NewReader(v1.Bytes()), w.model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fromV2, err := LoadRipple(bytes.NewReader(v2.Bytes()), w.model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := fromV1.Embeddings().MaxAbsDiff(fromV2.Embeddings()); d != 0 {
		t.Fatalf("v1 and v2 restores differ by %v", d)
	}
	// Same stream applied to both restores and the original: the three
	// engines must stay bit-identical (v2 restores the exact out-list
	// order, so even float accumulation order is reproduced).
	batch := w.randomBatchAvoiding(6, graph.VertexID(7))
	for _, e := range []*Ripple{r, fromV1, fromV2} {
		if _, err := e.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if d := fromV2.Embeddings().MaxAbsDiff(r.Embeddings()); d != 0 {
		t.Fatalf("v2 restore diverged from the original by %v", d)
	}
	if d := fromV1.Embeddings().MaxAbsDiff(r.Embeddings()); d != 0 {
		t.Fatalf("v1 restore diverged from the original by %v", d)
	}
}

// TestCheckpointBytesIndependentOfParallelism: the v2 checkpoint encodes
// sections with a worker pool, but the file is a pure function of the
// state — crash-equivalence depends on a checkpoint written on an 8-core
// box loading identically on a 1-core one.
func TestCheckpointBytesIndependentOfParallelism(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggMean, Dims: []int{5, 8, 4}, Seed: 89}
	w := newTestWorld(t, spec, 120, 480, 433)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyBatch(w.randomBatch(10)); err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var first []byte
	for _, workers := range []int{1, 4} {
		runtime.GOMAXPROCS(workers)
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("GOMAXPROCS=%d produced different checkpoint bytes", workers)
		}
	}
}

// --- incremental delta checkpoints ---

// TestDeltaCheckpointEquivalence is the delta-chain core property:
// applying a saved delta onto the exact baseline state it was tracked
// from reproduces the source engine bit-identically — embeddings,
// topology (including adjacency order, which fixes float accumulation
// order), tombstones — and the restored engine keeps streaming in
// lockstep.
func TestDeltaCheckpointEquivalence(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 91}
	w := newTestWorld(t, spec, 50, 200, 443)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.ApplyBatch(w.randomBatch(5)); err != nil {
			t.Fatal(err)
		}
	}
	// Freeze the baseline as a second engine via a full checkpoint.
	var full bytes.Buffer
	if err := r.Save(&full); err != nil {
		t.Fatal(err)
	}
	base, err := LoadRipple(bytes.NewReader(full.Bytes()), w.model, Config{})
	if err != nil {
		t.Fatal(err)
	}

	r.EnableDirtyTracking() // baseline = current state; dirty set empty
	victim := graph.VertexID(11)
	for i := 0; i < 4; i++ {
		if _, err := r.ApplyBatch(w.randomBatchAvoiding(6, victim)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.RemoveVertex(victim); err != nil {
		t.Fatal(err)
	}

	var delta bytes.Buffer
	if err := r.SaveDelta(&delta); err != nil {
		t.Fatal(err)
	}
	if err := base.ApplyDelta(bytes.NewReader(delta.Bytes())); err != nil {
		t.Fatal(err)
	}

	if d := base.Embeddings().MaxAbsDiff(r.Embeddings()); d != 0 {
		t.Fatalf("delta restore differs by %v", d)
	}
	if base.Graph().NumEdges() != r.Graph().NumEdges() {
		t.Fatalf("edge count %d, want %d", base.Graph().NumEdges(), r.Graph().NumEdges())
	}
	for v := 0; v < r.Graph().NumVertices(); v++ {
		id := graph.VertexID(v)
		bo, ro := base.Graph().Out(id), r.Graph().Out(id)
		if len(bo) != len(ro) {
			t.Fatalf("vertex %d out-degree %d, want %d", v, len(bo), len(ro))
		}
		for j := range ro {
			if bo[j] != ro[j] {
				t.Fatalf("vertex %d out-list order diverged at %d", v, j)
			}
		}
		if base.Removed(id) != r.Removed(id) {
			t.Fatalf("vertex %d tombstone mismatch", v)
		}
	}
	// Lockstep streaming proves the restore is complete, not just
	// value-equal at the final layer.
	batch := w.randomBatchAvoiding(5, victim)
	if _, err := r.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := base.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d := base.Embeddings().MaxAbsDiff(r.Embeddings()); d != 0 {
		t.Fatalf("post-delta divergence %v", d)
	}
}

// TestDeltaRejectsCorruptionWithoutMutating: ApplyDelta validates the
// whole payload before touching state — recovery's fallback (drop the
// delta, replay the WAL) is only sound if a rejected delta leaves the
// state exactly as it found it.
func TestDeltaRejectsCorruptionWithoutMutating(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 97}
	w := newTestWorld(t, spec, 30, 120, 449)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := r.Save(&full); err != nil {
		t.Fatal(err)
	}
	base, err := LoadRipple(bytes.NewReader(full.Bytes()), w.model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r.EnableDirtyTracking()
	for i := 0; i < 3; i++ {
		if _, err := r.ApplyBatch(w.randomBatch(5)); err != nil {
			t.Fatal(err)
		}
	}
	var delta bytes.Buffer
	if err := r.SaveDelta(&delta); err != nil {
		t.Fatal(err)
	}
	good := delta.Bytes()

	variants := map[string][]byte{
		"empty":          nil,
		"bad magic":      append([]byte("XXXXXXXX"), good[8:]...),
		"truncated tail": good[:len(good)-3],
		"truncated half": good[:len(good)/2],
	}
	// A flipped payload byte keeps the structure parseable up to the CRC.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x10
	variants["flipped byte"] = flipped

	pristine := func() []byte {
		var buf bytes.Buffer
		if err := base.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	before := pristine()
	for name, bad := range variants {
		if err := base.ApplyDelta(bytes.NewReader(bad)); err == nil {
			t.Fatalf("%s: corrupt delta accepted", name)
		}
		if !bytes.Equal(pristine(), before) {
			t.Fatalf("%s: rejected delta mutated the engine", name)
		}
	}
	// The intact delta still applies after all the rejections.
	if err := base.ApplyDelta(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	if d := base.Embeddings().MaxAbsDiff(r.Embeddings()); d != 0 {
		t.Fatalf("delta restore differs by %v after rejection gauntlet", d)
	}
}

// TestDeltaSmallerThanFullForLocalizedChange pins the steady-state
// bytes argument: when a batch touches a small neighbourhood of a large
// graph, the delta persists only the dirtied rows and is a fraction of
// the full checkpoint. (On a tiny graph where one batch's propagation
// reaches most vertices, a delta can legitimately exceed a full — it
// also carries adjacency — which is why this property needs scale.)
func TestDeltaSmallerThanFullForLocalizedChange(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 101}
	w := newTestWorld(t, spec, 600, 1200, 457)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := r.Save(&full); err != nil {
		t.Fatal(err)
	}
	r.EnableDirtyTracking()
	if _, err := r.ApplyBatch(w.randomBatch(2)); err != nil {
		t.Fatal(err)
	}
	var delta bytes.Buffer
	if err := r.SaveDelta(&delta); err != nil {
		t.Fatal(err)
	}
	if delta.Len()*4 >= full.Len() {
		t.Fatalf("localized delta is %d bytes vs %d full — not O(changed rows)", delta.Len(), full.Len())
	}
}

// TestSaveDeltaRequiresTracking: a delta without a baseline would be
// silently empty — refuse instead.
func TestSaveDeltaRequiresTracking(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.SaveDelta(&buf); err == nil {
		t.Fatal("SaveDelta succeeded without EnableDirtyTracking")
	}
}
