// Package engine implements the paper's core contribution: Ripple's
// incremental, strictly look-forward update propagation for streaming GNN
// inference (§4), together with the comparison baselines the evaluation
// uses — layer-wise recompute (RC), vertex-wise recompute (NC), DGL-style
// immutable-graph variants (DRC/DNC) and their simulated-accelerator
// counterparts (DRG/DNG).
//
// All strategies consume the same Update stream and, by construction,
// converge to identical embeddings (they differ only in cost); this
// equivalence is the package's central test invariant.
package engine

import (
	"errors"
	"fmt"
	"time"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// UpdateKind discriminates the three streaming graph update types the
// paper supports (§4.1): edge additions, edge deletions, and vertex
// feature changes. Vertex addition/deletion is future work in the paper
// and unsupported here too.
type UpdateKind uint8

const (
	// EdgeAdd inserts the directed edge U→V with the given Weight.
	EdgeAdd UpdateKind = iota + 1
	// EdgeDelete removes the directed edge U→V.
	EdgeDelete
	// FeatureUpdate replaces vertex U's input features with Features.
	FeatureUpdate
)

// String returns the update kind's name.
func (k UpdateKind) String() string {
	switch k {
	case EdgeAdd:
		return "edge-add"
	case EdgeDelete:
		return "edge-delete"
	case FeatureUpdate:
		return "feature-update"
	default:
		return fmt.Sprintf("UpdateKind(%d)", uint8(k))
	}
}

// Update is one streaming graph update. The hop-0 vertex of an edge update
// is the source U; of a feature update, the updated vertex U (§5.2 uses
// this to route updates to workers).
type Update struct {
	Kind     UpdateKind
	U, V     graph.VertexID // V unused for FeatureUpdate
	Weight   float32        // EdgeAdd only
	Features tensor.Vector  // FeatureUpdate only; width = model input dim
}

// Source returns the hop-0 vertex of the update.
func (u Update) Source() graph.VertexID { return u.U }

// ErrBadUpdate wraps batch validation failures.
var ErrBadUpdate = errors.New("engine: invalid update")

// BatchResult reports the cost and reach of applying one update batch —
// the raw material for every figure in the paper's evaluation.
type BatchResult struct {
	// Updates is the number of updates in the batch.
	Updates int
	// Affected is the number of distinct vertices whose embeddings were
	// recomputed at any hop (the propagation tree size of Figs. 2b/11).
	Affected int
	// FrontierPerHop is the per-hop frontier size, hop 1..L.
	FrontierPerHop []int
	// Messages is the number of delta/structural messages deposited into
	// mailboxes (Ripple) or neighbour embeddings pulled (recompute).
	Messages int64
	// VectorOps counts vector-level numerical operations in aggregation:
	// k per recomputed vertex for RC, 2k′ for Ripple (§4.3.3).
	VectorOps int64
	// KernelLaunches counts layer-batch kernel invocations, the quantity
	// the accelerator cost model charges launch overhead for.
	KernelLaunches int64
	// ScatterShards is the engine's mailbox shard count — the merge-order
	// domain of the parallel scatter phase (see Config.Shards). Zero for
	// strategies without sharded mailboxes (the recompute baselines).
	ScatterShards int
	// ScatterHopsParallel counts the propagation hops of this batch whose
	// scatter phase ran through the sharded parallel path.
	ScatterHopsParallel int
	// ScatterHopsSerial counts the propagation hops of this batch whose
	// scatter phase stayed serial (Serial config, or a frontier below the
	// parallel cutoff).
	ScatterHopsSerial int
	// UpdateTime is the wall time spent applying topology/feature changes
	// (including CSR rebuilds for the DGL-style baselines).
	UpdateTime time.Duration
	// PropagateTime is the wall time spent recomputing embeddings.
	PropagateTime time.Duration
	// SimulatedTime, when non-zero, is the accelerator cost model's
	// estimate for the propagate phase (DRG/DNG strategies).
	SimulatedTime time.Duration
	// LabelChanges lists the vertices whose predicted class flipped in
	// this batch (only populated when Config.TrackLabels is set) — the
	// trigger-based notification stream of §2.2.
	LabelChanges []LabelChange
	// FinalFrontier lists every vertex whose final-layer embedding was
	// recomputed in this batch (only populated when Config.TrackLabels is
	// set). A serving layer uses it to refresh exactly the stale rows of
	// its published label/logit tables instead of rescanning all vertices.
	FinalFrontier []graph.VertexID
}

// Total returns the end-to-end batch latency: update + propagate (or the
// simulated propagate time for accelerator strategies).
func (r BatchResult) Total() time.Duration {
	if r.SimulatedTime > 0 {
		return r.UpdateTime + r.SimulatedTime
	}
	return r.UpdateTime + r.PropagateTime
}

// Strategy is the common face of all inference-maintenance strategies, so
// benchmarks and the distributed runtime can drive them interchangeably.
type Strategy interface {
	// Name returns the strategy's short name as used in the paper's
	// figures (e.g. "Ripple", "RC", "DRC").
	Name() string
	// ApplyBatch applies one batch of updates and refreshes the affected
	// predictions.
	ApplyBatch(batch []Update) (BatchResult, error)
}
