package engine_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// This file is the determinism regression suite for the sharded parallel
// scatter: on a randomized mixed workload, ApplyBatch must produce
// bit-identical embeddings and labels across the serial engine, the
// parallel default, and multiple shard counts — under GOMAXPROCS=1 and
// GOMAXPROCS=8 alike. The frontiers are sized to exceed the parallel
// cutoff, so the sharded path genuinely runs.

// detWorkload is a reproducible mixed update stream over a random graph.
type detWorkload struct {
	n        int
	featDim  int
	edges    [][2]graph.VertexID
	features []tensor.Vector
	batches  [][]engine.Update
}

func makeDetWorkload(seed int64) *detWorkload {
	const (
		n       = 1200
		featDim = 24
		mInit   = 6000
		nBatch  = 5
	)
	rng := rand.New(rand.NewSource(seed))
	w := &detWorkload{n: n, featDim: featDim}

	live := map[[2]graph.VertexID]bool{}
	for len(w.edges) < mInit {
		e := [2]graph.VertexID{graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))}
		if live[e] {
			continue
		}
		live[e] = true
		w.edges = append(w.edges, e)
	}
	for u := 0; u < n; u++ {
		f := tensor.NewVector(featDim)
		for i := range f {
			f[i] = rng.Float32()*2 - 1
		}
		w.features = append(w.features, f)
	}

	// Mixed batches: enough feature updates to push every hop past the
	// parallel scatter cutoff, plus structural churn that keeps the
	// intra-batch overlay honest (adds and deletes of live edges).
	for b := 0; b < nBatch; b++ {
		var batch []engine.Update
		for i := 0; i < 400; i++ {
			u := graph.VertexID(rng.Intn(n))
			f := tensor.NewVector(featDim)
			for j := range f {
				f[j] = rng.Float32()*2 - 1
			}
			batch = append(batch, engine.Update{Kind: engine.FeatureUpdate, U: u, Features: f})
		}
		for i := 0; i < 60; i++ {
			if rng.Intn(2) == 0 || len(w.edges) == 0 {
				e := [2]graph.VertexID{graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))}
				if live[e] {
					continue
				}
				live[e] = true
				w.edges = append(w.edges, e) // bookkeeping only; batch adds it
				batch = append(batch, engine.Update{Kind: engine.EdgeAdd, U: e[0], V: e[1], Weight: 1})
			} else {
				var del [2]graph.VertexID
				found := false
				for e := range live {
					del = e
					found = true
					break
				}
				if !found {
					continue
				}
				delete(live, del)
				batch = append(batch, engine.Update{Kind: engine.EdgeDelete, U: del[0], V: del[1]})
			}
		}
		w.batches = append(w.batches, batch)
	}
	// Map iteration above is randomized by the runtime, but only inside
	// one process invocation of makeDetWorkload — every engine variant
	// replays the *same* generated batches, which is all the test needs.
	return w
}

// run bootstraps a fresh engine over the workload's initial graph and
// applies every batch, returning the final state.
func (w *detWorkload) run(t *testing.T, workload string, cfg engine.Config) (*gnn.Embeddings, []engine.BatchResult) {
	t.Helper()
	g := graph.New(w.n)
	for _, e := range w.edges[:6000] {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	model, err := gnn.NewWorkload(workload, []int{w.featDim, 16, 8}, 99)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := gnn.Forward(g, model, w.features)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(g, model, emb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var results []engine.BatchResult
	for i, b := range w.batches {
		res, err := eng.ApplyBatch(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		results = append(results, res)
	}
	return eng.Embeddings(), results
}

func requireBitIdentical(t *testing.T, name string, ref, got *gnn.Embeddings) {
	t.Helper()
	for l := range ref.H {
		for u := 0; u < ref.N; u++ {
			a, b := ref.H[l][u], got.H[l][u]
			for i := range a {
				if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
					t.Fatalf("%s: H[%d][%d][%d] = %x, serial reference %x — not bit-identical",
						name, l, u, i, math.Float32bits(b[i]), math.Float32bits(a[i]))
				}
			}
			if l > 0 {
				a, b := ref.A[l][u], got.A[l][u]
				for i := range a {
					if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
						t.Fatalf("%s: A[%d][%d][%d] = %x, serial reference %x — not bit-identical",
							name, l, u, i, math.Float32bits(b[i]), math.Float32bits(a[i]))
					}
				}
			}
		}
	}
	if rl, gl := ref.Label(0), got.Label(0); rl != gl {
		t.Fatalf("%s: label(0) = %d, want %d", name, gl, rl)
	}
}

// TestScatterDeterminismAcrossShardsAndProcs is the satellite regression
// test: serial engine, parallel default, and two explicit shard counts
// all produce bit-identical state, at 1 and 8 procs. GC-M exercises
// mean aggregation (live in-degree normalisation), GI-S the
// self-dependent phase (c).
func TestScatterDeterminismAcrossShardsAndProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine replay is slow in -short mode")
	}
	for _, workload := range []string{"GC-M", "GI-S"} {
		t.Run(workload, func(t *testing.T) {
			w := makeDetWorkload(5)
			refEmb, refRes := w.run(t, workload, engine.Config{Serial: true})

			// The parallel path must actually have run somewhere, or the
			// test is vacuous.
			parallelSeen := false

			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
			for _, procs := range []int{1, 8} {
				runtime.GOMAXPROCS(procs)
				for _, cfg := range []engine.Config{
					{Serial: true},
					{}, // parallel, auto shards
					{Shards: 2},
					{Shards: 16},
				} {
					name := fmt.Sprintf("procs=%d/serial=%v/shards=%d", procs, cfg.Serial, cfg.Shards)
					emb, results := w.run(t, workload, cfg)
					requireBitIdentical(t, name, refEmb, emb)
					for i, res := range results {
						// Cost accounting is part of the contract: the
						// parallel scatter must count exactly the serial
						// engine's messages and vector ops.
						if res.Messages != refRes[i].Messages || res.VectorOps != refRes[i].VectorOps ||
							res.Affected != refRes[i].Affected {
							t.Fatalf("%s: batch %d counters (msgs %d vops %d affected %d), serial (%d, %d, %d)",
								name, i, res.Messages, res.VectorOps, res.Affected,
								refRes[i].Messages, refRes[i].VectorOps, refRes[i].Affected)
						}
						if res.ScatterHopsParallel > 0 {
							parallelSeen = true
						}
						if cfg.Serial && res.ScatterHopsParallel != 0 {
							t.Fatalf("%s: serial engine reported parallel scatter hops", name)
						}
					}
				}
			}
			if !parallelSeen {
				t.Fatal("no batch took the parallel scatter path; frontier too small for the cutoff — test is vacuous")
			}
		})
	}
}
