package engine

import (
	"runtime"
	"testing"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// steadyStateAllocBudget bounds what one warmed-up ApplyBatch may
// allocate on the parallel scatter + apply path: the result's own
// FrontierPerHop slice plus the handful of closures the parallel helpers
// force to the heap. Everything sized by the workload — delta slabs,
// scatter logs, apply scratches, mailbox vectors, frontier lists — is
// pooled on the engine and must not show up here.
const steadyStateAllocBudget = 11

// TestApplyBatchSteadyStateAllocs pins the scatter/apply slab pooling:
// after warmup, a batch big enough to take the parallel scatter AND the
// parallel apply path (both engage at frontier ≥ 256) allocates only the
// per-batch result bookkeeping — no per-worker gnn.Scratch, no delta
// slab, no sort closures. Run at GOMAXPROCS=1 so the parallel helpers
// execute inline and AllocsPerRun observes every allocation.
func TestApplyBatchSteadyStateAllocs(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{8, 16, 6}, Seed: 7}
	w := newTestWorld(t, spec, 800, 4000, 99)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// One batch of feature updates over 400 distinct vertices: changed[0]
	// alone clears the 256-task parallel-scatter cutoff, and their
	// out-neighbourhoods push the hop-1 frontier past the parallel-apply
	// cutoff too.
	const touched = 400
	feats := make([]tensor.Vector, touched)
	batch := make([]Update, touched)
	for i := range batch {
		feats[i] = tensor.NewVector(spec.Dims[0])
		for j := range feats[i] {
			feats[i][j] = float32(i+j) * 0.01
		}
		batch[i] = Update{Kind: FeatureUpdate, U: graph.VertexID(i), Features: feats[i]}
	}

	// Warm the pools (slabs, scratches, mailbox vectors, frontier lists
	// all grow to the batch's working set) and check the batch actually
	// exercises the parallel paths it is meant to pin.
	for i := 0; i < 3; i++ {
		res, err := r.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if res.ScatterHopsParallel == 0 {
				t.Fatalf("batch stayed on the serial scatter path: %+v", res)
			}
			if res.FrontierPerHop[0] < 256 {
				t.Fatalf("hop-1 frontier %d below the parallel-apply cutoff", res.FrontierPerHop[0])
			}
		}
	}

	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > steadyStateAllocBudget {
		t.Fatalf("steady-state ApplyBatch: %v allocs per batch, budget %d — a pooled slab regressed", allocs, steadyStateAllocBudget)
	}
}
