package engine

import (
	"fmt"
	"sort"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/par"
	"ripple/internal/tensor"
)

// frontierSet builds deterministic per-hop affected sets for the recompute
// strategies using an epoch-stamped dense membership test. The expansion
// rule matches Ripple's frontier exactly (out-neighbours of the previous
// hop's changes, the changed vertices themselves for self-dependent
// models, and every edge-event sink at every hop), so recompute and
// incremental strategies touch identical vertex sets — which is what makes
// the paper's "% affected nodes" a property of the workload, not the
// strategy (Fig. 2b).
type frontierSet struct {
	stamp []uint32
	epoch uint32
	list  []graph.VertexID
}

func newFrontierSet(n int) *frontierSet { return &frontierSet{stamp: make([]uint32, n)} }

func (f *frontierSet) begin() {
	f.epoch++
	if f.epoch == 0 { // wrapped: stamps are ambiguous, clear them
		for i := range f.stamp {
			f.stamp[i] = 0
		}
		f.epoch = 1
	}
	f.list = f.list[:0]
}

func (f *frontierSet) add(v graph.VertexID) {
	if f.stamp[v] != f.epoch {
		f.stamp[v] = f.epoch
		f.list = append(f.list, v)
	}
}

func (f *frontierSet) sorted() []graph.VertexID {
	sort.Slice(f.list, func(i, j int) bool { return f.list[i] < f.list[j] })
	return f.list
}

// expandAffected computes the hop-l affected set from the hop-(l-1) set.
func expandAffected(g *graph.Graph, selfDep bool, prev []graph.VertexID, events []edgeEvent, out *frontierSet) {
	out.begin()
	for _, u := range prev {
		for _, e := range g.Out(u) {
			out.add(e.Peer)
		}
		if selfDep {
			out.add(u)
		}
	}
	for _, ev := range events {
		out.add(ev.sink)
	}
}

// RC is the paper's competitive baseline (§4.2): layer-wise recomputation
// scoped to the affected neighbourhood, over the same lightweight dynamic
// edge-list graph Ripple uses. For every affected vertex at every hop it
// re-aggregates ALL k in-neighbours — the k-vs-2k′ asymmetry Ripple
// removes.
type RC struct {
	g     *graph.Graph
	model *gnn.Model
	emb   *gnn.Embeddings
	cfg   Config

	fronts        []*frontierSet
	events        []edgeEvent
	featChanged   *frontierSet
	affectedStamp []uint32
	epoch         uint32
	scratch       *gnn.Scratch
}

var _ Strategy = (*RC)(nil)

// NewRC builds the layer-wise recompute baseline over bootstrapped
// embeddings. It takes ownership of g and emb.
func NewRC(g *graph.Graph, model *gnn.Model, emb *gnn.Embeddings, cfg Config) (*RC, error) {
	if emb.N != g.NumVertices() {
		return nil, fmt.Errorf("engine: embeddings for %d vertices, graph has %d", emb.N, g.NumVertices())
	}
	n := g.NumVertices()
	rc := &RC{
		g:             g,
		model:         model,
		emb:           emb,
		cfg:           cfg,
		fronts:        make([]*frontierSet, model.L()+1),
		featChanged:   newFrontierSet(n),
		affectedStamp: make([]uint32, n),
		scratch:       gnn.NewScratch(model.MaxDim()),
	}
	for l := 1; l <= model.L(); l++ {
		rc.fronts[l] = newFrontierSet(n)
	}
	return rc, nil
}

// Name implements Strategy.
func (rc *RC) Name() string { return "RC" }

// Embeddings exposes the baseline's embedding state for verification.
func (rc *RC) Embeddings() *gnn.Embeddings { return rc.emb }

// Graph exposes the baseline's graph.
func (rc *RC) Graph() *graph.Graph { return rc.g }

// ApplyBatch implements Strategy using scoped layer-wise recomputation.
func (rc *RC) ApplyBatch(batch []Update) (BatchResult, error) {
	if err := validateBatch(rc.g, rc.model.Dims[0], batch); err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Updates: len(batch), FrontierPerHop: make([]int, rc.model.L())}
	rc.epoch++
	if rc.epoch == 0 {
		for i := range rc.affectedStamp {
			rc.affectedStamp[i] = 0
		}
		rc.epoch = 1
	}

	start := time.Now()
	rc.events = rc.events[:0]
	rc.featChanged.begin()
	for _, upd := range batch {
		switch upd.Kind {
		case EdgeAdd:
			if err := rc.g.AddEdge(upd.U, upd.V, upd.Weight); err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
			rc.events = append(rc.events, edgeEvent{src: upd.U, sink: upd.V, coeff: gnn.Coeff(rc.model.Agg, upd.Weight)})
		case EdgeDelete:
			w, err := rc.g.RemoveEdge(upd.U, upd.V)
			if err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
			rc.events = append(rc.events, edgeEvent{src: upd.U, sink: upd.V, coeff: -gnn.Coeff(rc.model.Agg, w)})
		case FeatureUpdate:
			rc.emb.H[0][upd.U].CopyFrom(upd.Features)
			rc.featChanged.add(upd.U)
		}
	}
	res.UpdateTime = time.Since(start)

	start = time.Now()
	prev := rc.featChanged.sorted()
	for _, u := range prev {
		rc.countAffected(u, &res)
	}
	for l := 1; l <= rc.model.L(); l++ {
		expandAffected(rc.g, rc.model.SelfDependent(), prev, rc.events, rc.fronts[l])
		frontier := rc.fronts[l].sorted()
		res.FrontierPerHop[l-1] = len(frontier)
		for _, v := range frontier {
			rc.countAffected(v, &res)
		}
		ops, msgs := recomputeLayerDynamic(rc.g, rc.model, rc.emb, l, frontier, rc.cfg.Serial, rc.scratch)
		res.VectorOps += ops
		res.Messages += msgs
		res.KernelLaunches++
		prev = frontier
	}
	res.PropagateTime = time.Since(start)
	return res, nil
}

func (rc *RC) countAffected(v graph.VertexID, res *BatchResult) {
	if rc.affectedStamp[v] != rc.epoch {
		rc.affectedStamp[v] = rc.epoch
		res.Affected++
	}
}

// recomputeLayerDynamic recomputes h^l for every frontier vertex by full
// re-aggregation over the dynamic graph's in-lists. Returns (vectorOps,
// messages≡embeddings pulled).
func recomputeLayerDynamic(g *graph.Graph, model *gnn.Model, emb *gnn.Embeddings, l int, frontier []graph.VertexID, serial bool, scratch *gnn.Scratch) (int64, int64) {
	layer := model.Layers[l-1]
	var pulled int64
	recompute := func(s *gnn.Scratch, v graph.VertexID) int64 {
		agg := emb.A[l][v]
		agg.Zero()
		var k int64
		for _, in := range g.In(v) {
			agg.AXPY(gnn.Coeff(model.Agg, in.Weight), emb.H[l-1][in.Peer])
			k++
		}
		layer.UpdateInto(emb.H[l][v], emb.H[l-1][v], agg, g.InDegree(v), s)
		return k
	}
	if serial || len(frontier) < 256 {
		for _, v := range frontier {
			pulled += recompute(scratch, v)
		}
	} else {
		shardPulled := make([]int64, len(frontier))
		par.For(len(frontier), func(lo, hi int) {
			s := gnn.NewScratch(model.MaxDim())
			for i := lo; i < hi; i++ {
				shardPulled[i] = recompute(s, frontier[i])
			}
		})
		for _, p := range shardPulled {
			pulled += p
		}
	}
	return pulled + int64(len(frontier)), pulled
}

// featureRowsFrom extracts the h^0 rows as a feature slice (helper for
// strategies that keep their own feature copy).
func featureRowsFrom(emb *gnn.Embeddings) []tensor.Vector {
	x := make([]tensor.Vector, emb.N)
	for u := 0; u < emb.N; u++ {
		x[u] = emb.H[0][u]
	}
	return x
}
