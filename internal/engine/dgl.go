package engine

import (
	"fmt"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// This file implements the DGL-style baselines of Fig. 8. DGL's graph is
// immutable: applying a stream of updates forces a full graph-structure
// rebuild per batch, which the paper measures as the dominant "Update" cost
// of DNC/DRC. We model that faithfully by maintaining the dynamic edge
// list (the mutation API) and rebuilding an in-neighbour CSR snapshot on
// every batch, with inference reading only the CSR.

// kernelBatch is the number of frontier vertices a framework fuses into
// one accelerator kernel launch; used only for launch-overhead accounting.
const kernelBatch = 4096

// DRC is DGL-style layer-wise recompute: identical propagation scope to
// RC, but paying an immutable-graph (CSR) rebuild on every update batch.
type DRC struct {
	g     *graph.Graph
	csr   *graph.CSR
	model *gnn.Model
	emb   *gnn.Embeddings
	cfg   Config

	fronts        []*frontierSet
	events        []edgeEvent
	featChanged   *frontierSet
	affectedStamp []uint32
	epoch         uint32
	scratch       *gnn.Scratch
}

var _ Strategy = (*DRC)(nil)

// NewDRC builds the DGL-style layer-wise recompute baseline.
func NewDRC(g *graph.Graph, model *gnn.Model, emb *gnn.Embeddings, cfg Config) (*DRC, error) {
	if emb.N != g.NumVertices() {
		return nil, fmt.Errorf("engine: embeddings for %d vertices, graph has %d", emb.N, g.NumVertices())
	}
	n := g.NumVertices()
	d := &DRC{
		g:             g,
		csr:           g.BuildInCSR(),
		model:         model,
		emb:           emb,
		cfg:           cfg,
		fronts:        make([]*frontierSet, model.L()+1),
		featChanged:   newFrontierSet(n),
		affectedStamp: make([]uint32, n),
		scratch:       gnn.NewScratch(model.MaxDim()),
	}
	for l := 1; l <= model.L(); l++ {
		d.fronts[l] = newFrontierSet(n)
	}
	return d, nil
}

// Name implements Strategy.
func (d *DRC) Name() string { return "DRC" }

// Embeddings exposes the baseline's embedding state for verification.
func (d *DRC) Embeddings() *gnn.Embeddings { return d.emb }

// ApplyBatch implements Strategy: mutate edge lists, rebuild the CSR
// (update phase), then layer-wise recompute over the CSR (propagate).
func (d *DRC) ApplyBatch(batch []Update) (BatchResult, error) {
	if err := validateBatch(d.g, d.model.Dims[0], batch); err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Updates: len(batch), FrontierPerHop: make([]int, d.model.L())}
	d.epoch++
	if d.epoch == 0 {
		for i := range d.affectedStamp {
			d.affectedStamp[i] = 0
		}
		d.epoch = 1
	}

	start := time.Now()
	d.events = d.events[:0]
	d.featChanged.begin()
	for _, upd := range batch {
		switch upd.Kind {
		case EdgeAdd:
			if err := d.g.AddEdge(upd.U, upd.V, upd.Weight); err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
			d.events = append(d.events, edgeEvent{src: upd.U, sink: upd.V, coeff: gnn.Coeff(d.model.Agg, upd.Weight)})
		case EdgeDelete:
			w, err := d.g.RemoveEdge(upd.U, upd.V)
			if err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
			d.events = append(d.events, edgeEvent{src: upd.U, sink: upd.V, coeff: -gnn.Coeff(d.model.Agg, w)})
		case FeatureUpdate:
			d.emb.H[0][upd.U].CopyFrom(upd.Features)
			d.featChanged.add(upd.U)
		}
	}
	// The immutable-graph rebuild: DGL's dominant update cost.
	d.csr = d.g.BuildInCSR()
	res.UpdateTime = time.Since(start)

	start = time.Now()
	prev := d.featChanged.sorted()
	for _, u := range prev {
		d.countAffected(u, &res)
	}
	for l := 1; l <= d.model.L(); l++ {
		expandAffected(d.g, d.model.SelfDependent(), prev, d.events, d.fronts[l])
		frontier := d.fronts[l].sorted()
		res.FrontierPerHop[l-1] = len(frontier)
		for _, v := range frontier {
			d.countAffected(v, &res)
		}
		ops, msgs := d.recomputeLayerCSR(l, frontier)
		res.VectorOps += ops
		res.Messages += msgs
		res.KernelLaunches += 1 + int64(len(frontier)/kernelBatch)
		prev = frontier
	}
	res.PropagateTime = time.Since(start)
	return res, nil
}

func (d *DRC) countAffected(v graph.VertexID, res *BatchResult) {
	if d.affectedStamp[v] != d.epoch {
		d.affectedStamp[v] = d.epoch
		res.Affected++
	}
}

// recomputeLayerCSR is recomputeLayerDynamic reading the CSR snapshot.
func (d *DRC) recomputeLayerCSR(l int, frontier []graph.VertexID) (int64, int64) {
	layer := d.model.Layers[l-1]
	var pulled int64
	for _, v := range frontier {
		agg := d.emb.A[l][v]
		agg.Zero()
		ids, ws := d.csr.In(v)
		for i, src := range ids {
			agg.AXPY(gnn.Coeff(d.model.Agg, ws[i]), d.emb.H[l-1][src])
		}
		pulled += int64(len(ids))
		layer.UpdateInto(d.emb.H[l][v], d.emb.H[l-1][v], agg, d.csr.InDegree(v), d.scratch)
	}
	return pulled + int64(len(frontier)), pulled
}

// DNC is DGL-style vertex-wise (computation-graph) inference: for every
// affected final-hop vertex it rebuilds and evaluates the full L-hop
// computation tree, with no work shared across targets — the redundant-
// computation strategy of Fig. 1 (centre), paying the CSR rebuild as well.
//
// Vertex-wise inference is stateless above h^0: it keeps only features and
// predicted labels, recomputing everything per query from features.
type DNC struct {
	g      *graph.Graph
	csr    *graph.CSR
	model  *gnn.Model
	x      []tensor.Vector
	labels []int32
	cfg    Config

	fronts        []*frontierSet
	events        []edgeEvent
	featChanged   *frontierSet
	affectedStamp []uint32
	epoch         uint32
	scratch       *gnn.Scratch
}

var _ Strategy = (*DNC)(nil)

// NewDNC builds the DGL-style vertex-wise baseline from bootstrapped
// state: features x (copied) and initial labels.
func NewDNC(g *graph.Graph, model *gnn.Model, x []tensor.Vector, labels []int32, cfg Config) (*DNC, error) {
	n := g.NumVertices()
	if len(x) != n || len(labels) != n {
		return nil, fmt.Errorf("engine: DNC needs %d features and labels, got %d/%d", n, len(x), len(labels))
	}
	d := &DNC{
		g:             g,
		csr:           g.BuildInCSR(),
		model:         model,
		x:             make([]tensor.Vector, n),
		labels:        append([]int32(nil), labels...),
		cfg:           cfg,
		fronts:        make([]*frontierSet, model.L()+1),
		featChanged:   newFrontierSet(n),
		affectedStamp: make([]uint32, n),
		scratch:       gnn.NewScratch(model.MaxDim()),
	}
	for i, row := range x {
		d.x[i] = row.Clone()
	}
	for l := 1; l <= model.L(); l++ {
		d.fronts[l] = newFrontierSet(n)
	}
	return d, nil
}

// Name implements Strategy.
func (d *DNC) Name() string { return "DNC" }

// Labels exposes the current predicted labels for verification.
func (d *DNC) Labels() []int32 { return d.labels }

// ApplyBatch implements Strategy: mutate + rebuild CSR, then vertex-wise
// recompute of every affected final-hop vertex.
func (d *DNC) ApplyBatch(batch []Update) (BatchResult, error) {
	if err := validateBatch(d.g, d.model.Dims[0], batch); err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Updates: len(batch), FrontierPerHop: make([]int, d.model.L())}
	d.epoch++
	if d.epoch == 0 {
		for i := range d.affectedStamp {
			d.affectedStamp[i] = 0
		}
		d.epoch = 1
	}

	start := time.Now()
	d.events = d.events[:0]
	d.featChanged.begin()
	for _, upd := range batch {
		switch upd.Kind {
		case EdgeAdd:
			if err := d.g.AddEdge(upd.U, upd.V, upd.Weight); err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
			d.events = append(d.events, edgeEvent{src: upd.U, sink: upd.V, coeff: gnn.Coeff(d.model.Agg, upd.Weight)})
		case EdgeDelete:
			w, err := d.g.RemoveEdge(upd.U, upd.V)
			if err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
			d.events = append(d.events, edgeEvent{src: upd.U, sink: upd.V, coeff: -gnn.Coeff(d.model.Agg, w)})
		case FeatureUpdate:
			d.x[upd.U].CopyFrom(upd.Features)
			d.featChanged.add(upd.U)
		}
	}
	d.csr = d.g.BuildInCSR()
	res.UpdateTime = time.Since(start)

	// Affected targets: the final-hop frontier, expanded hop by hop like
	// every other strategy.
	start = time.Now()
	prev := d.featChanged.sorted()
	for _, u := range prev {
		d.countAffected(u, &res)
	}
	for l := 1; l <= d.model.L(); l++ {
		expandAffected(d.g, d.model.SelfDependent(), prev, d.events, d.fronts[l])
		frontier := d.fronts[l].sorted()
		res.FrontierPerHop[l-1] = len(frontier)
		for _, v := range frontier {
			d.countAffected(v, &res)
		}
		prev = frontier
	}

	// Vertex-wise evaluation of each target's computation tree. Each
	// target gets a fresh memo: overlap between targets is deliberately
	// NOT shared (the redundancy layer-wise inference removes).
	targets := prev
	scale := 1.0
	if s := d.cfg.SampleTargets; s > 0 && len(targets) > s {
		// Deterministic stride sample with linear extrapolation (see
		// Config.SampleTargets).
		stride := len(targets) / s
		sampled := make([]graph.VertexID, 0, s)
		for i := 0; i < len(targets) && len(sampled) < s; i += stride {
			sampled = append(sampled, targets[i])
		}
		scale = float64(len(targets)) / float64(len(sampled))
		targets = sampled
	}
	tProp := time.Now()
	for _, target := range targets {
		h, ops := d.inferTarget(target)
		d.labels[target] = int32(h.ArgMax())
		res.VectorOps += ops
		res.Messages += ops
		res.KernelLaunches += int64(d.model.L())
	}
	if scale > 1 {
		res.PropagateTime = time.Duration(float64(time.Since(tProp)) * scale)
		res.VectorOps = int64(float64(res.VectorOps) * scale)
		res.Messages = int64(float64(res.Messages) * scale)
		res.KernelLaunches = int64(float64(res.KernelLaunches) * scale)
	} else {
		res.PropagateTime = time.Since(start)
	}
	return res, nil
}

func (d *DNC) countAffected(v graph.VertexID, res *BatchResult) {
	if d.affectedStamp[v] != d.epoch {
		d.affectedStamp[v] = d.epoch
		res.Affected++
	}
}

// inferTarget evaluates h^L(target) over the CSR with per-target
// memoisation, counting aggregation vector-ops.
func (d *DNC) inferTarget(target graph.VertexID) (tensor.Vector, int64) {
	memo := make(map[int64]tensor.Vector)
	var ops int64
	var rec func(u graph.VertexID, l int) tensor.Vector
	rec = func(u graph.VertexID, l int) tensor.Vector {
		if l == 0 {
			return d.x[u]
		}
		key := int64(l)<<32 | int64(uint32(u))
		if h, ok := memo[key]; ok {
			return h
		}
		layer := d.model.Layers[l-1]
		agg := tensor.NewVector(layer.In)
		ids, ws := d.csr.In(u)
		for i, src := range ids {
			agg.AXPY(gnn.Coeff(d.model.Agg, ws[i]), rec(src, l-1))
			ops++
		}
		var hSelf tensor.Vector
		if layer.Kind.SelfDependent() {
			hSelf = rec(u, l-1)
		} else {
			hSelf = agg // unused by GraphConv's Update
		}
		dst := tensor.NewVector(layer.Out)
		layer.UpdateInto(dst, hSelf, agg, len(ids), d.scratch)
		ops++
		memo[key] = dst
		return dst
	}
	return rec(target, d.model.L()), ops
}
