package engine

import (
	"math/bits"
	"slices"

	"ripple/internal/graph"
	"ripple/internal/par"
	"ripple/internal/tensor"
)

// This file is the sharded mailbox subsystem behind the engine's parallel
// scatter (DESIGN.md §3.1). The per-hop mailboxes were previously plain
// vecTables, single-writer by construction: every deposit appended to one
// shared touched list, so the dominant scatter phases of ApplyBatch —
// structural contributions and delta messages — had to run serially. A
// shardedMailbox partitions the vertex ID space into power-of-two,
// contiguous-range shards, giving every shard its own touched list and
// vector pool: depositors working on different shards never share a write,
// and merging shard-by-shard in a fixed order keeps floating-point
// accumulation bit-identical to the serial engine.
//
// The subsystem is deliberately self-contained (shard mapping, deposit
// logs, merge) so a future NUMA- or partition-aware scatter can swap the
// shard function or move whole shards across workers without touching the
// propagation logic in ripple.go.

// message is one deferred mailbox deposit: sink's slot += coeff·vec. The
// scatter workers log messages instead of applying them so that the vector
// work lands in the merge phase, where each shard replays its messages in
// global deposit order — parallel across shards, deterministic within one.
type message struct {
	sink  graph.VertexID
	coeff float32
	vec   tensor.Vector
}

// scatterBuf is one scatter worker's private state: a per-shard message
// log plus the worker's share of the batch cost counters. Buffers are
// owned by the engine and reused across hops and batches, so the steady
// state allocates nothing.
type scatterBuf struct {
	byShard   [][]message
	messages  int64
	vectorOps int64
}

// reset prepares the buffer for a scatter pass over the given shard count,
// keeping the logs' capacity. Logs arrive here already zeroed and empty:
// mergeLogs clears each one after replaying it (see there for why), so a
// buffer holds live vector pointers only between its scatter pass and the
// merge that consumes it.
func (b *scatterBuf) reset(shards int) {
	if cap(b.byShard) < shards {
		b.byShard = make([][]message, shards)
	}
	b.byShard = b.byShard[:shards]
	for s := range b.byShard {
		b.byShard[s] = b.byShard[s][:0]
	}
	b.messages, b.vectorOps = 0, 0
}

func (b *scatterBuf) push(shard int, m message) {
	b.byShard[shard] = append(b.byShard[shard], m)
}

// shardedMailbox is a dense vertex→vector table whose bookkeeping is
// partitioned by contiguous vertex ID ranges: shard(v) = v >> shift, with
// a power-of-two shard count. Slot storage is one flat array (a deposit
// for vertex v only ever races with another deposit for v's own shard, and
// the merge gives each shard to exactly one goroutine), while the touched
// lists and vector pools are per shard. Range sharding — rather than
// low-bit interleaving — makes the frontier trivially deterministic: each
// shard's touched list sorted, concatenated in shard order, is globally
// sorted.
type shardedMailbox struct {
	width  int
	shards int  // power of two
	shift  uint // shard(v) = int(v) >> shift
	slots  []tensor.Vector
	sh     []mailboxShard
}

// mailboxShard is one shard's bookkeeping. The pad keeps neighbouring
// shards' append-heavy headers off one cache line during the merge.
type mailboxShard struct {
	touched []graph.VertexID
	pool    []tensor.Vector
	_       [16]byte // two 24-byte slice headers + pad = one 64-byte line
}

func newShardedMailbox(n, width, shards int) *shardedMailbox {
	m := &shardedMailbox{
		width:  width,
		shards: shards,
		slots:  make([]tensor.Vector, n),
		sh:     make([]mailboxShard, shards),
	}
	m.reshard()
	return m
}

// reshard recomputes the range shift so every vertex ID maps into
// [0, shards). Must only be called while the mailbox is empty.
func (m *shardedMailbox) reshard() {
	m.shift = 0
	if n := len(m.slots); n > 1 {
		if top := bits.Len(uint(n - 1)); top > bits.TrailingZeros(uint(m.shards)) {
			m.shift = uint(top - bits.TrailingZeros(uint(m.shards)))
		}
	}
}

// shardOf returns the shard owning vertex u.
func (m *shardedMailbox) shardOf(u graph.VertexID) int { return int(u) >> m.shift }

// Get returns the vector for u, allocating (or reusing) a zeroed one on
// first touch. Safe for concurrent use only across distinct shards.
func (m *shardedMailbox) Get(u graph.VertexID) tensor.Vector {
	return m.getShard(u, m.shardOf(u))
}

// getShard is Get with the shard precomputed (the merge loop already
// knows it).
func (m *shardedMailbox) getShard(u graph.VertexID, s int) tensor.Vector {
	if v := m.slots[u]; v != nil {
		return v
	}
	sh := &m.sh[s]
	var v tensor.Vector
	if k := len(sh.pool); k > 0 {
		v = sh.pool[k-1]
		sh.pool = sh.pool[:k-1]
	} else {
		v = tensor.NewVector(m.width)
	}
	m.slots[u] = v
	sh.touched = append(sh.touched, u)
	return v
}

// Lookup returns the vector for u, or nil if u has not been touched.
func (m *shardedMailbox) Lookup(u graph.VertexID) tensor.Vector { return m.slots[u] }

// Len returns the number of touched vertices.
func (m *shardedMailbox) Len() int {
	total := 0
	for s := range m.sh {
		total += len(m.sh[s].touched)
	}
	return total
}

// Frontier sorts each shard's touched list and returns their concatenation
// in shard order, reusing dst. Because shards are contiguous ID ranges the
// result is globally sorted — the same deterministic iteration order the
// serial engine's single sorted list produced. Shards sort in parallel
// (unless serial is set): sorting is order-independent, so parallelism
// cannot perturb results.
func (m *shardedMailbox) Frontier(dst []graph.VertexID, serial bool) []graph.VertexID {
	sortShard := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			// slices.Sort, not sort.Slice: the generic sort has no
			// per-call closure or interface allocation, keeping the
			// steady-state apply path allocation-free.
			slices.Sort(m.sh[s].touched)
		}
	}
	if total := m.Len(); serial || total < 4096 {
		sortShard(0, m.shards)
	} else {
		par.For(m.shards, sortShard)
	}
	dst = dst[:0]
	for s := range m.sh {
		dst = append(dst, m.sh[s].touched...)
	}
	return dst
}

// mergeLogs replays every worker's per-shard message log into the mailbox,
// shard-by-shard via par.ForShards. Within a shard, logs replay in
// (worker, deposit) order; workers hold contiguous slices of the batch's
// task list, so for every sink the deposits land in exactly the global
// task order the serial scatter uses — float accumulation is bit-identical,
// whatever the shard count or GOMAXPROCS. Each sink belongs to exactly one
// shard, so no slot is written by two goroutines.
func (m *shardedMailbox) mergeLogs(bufs []*scatterBuf, workers int) {
	par.ForShards(m.shards, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			for w := 0; w < workers; w++ {
				log := bufs[w].byShard[s]
				for _, msg := range log {
					m.getShard(msg.sink, s).AXPY(msg.coeff, msg.vec)
				}
				// Zero the log the moment it is consumed. A buffer's next
				// reset is not enough: a worker that later hops never
				// re-invoke (fewer tasks than GOMAXPROCS, or serial-cutoff
				// traffic from here on) would otherwise pin superseded
				// delta slabs and pooled old-embedding vectors through its
				// stale message.vec fields for the engine's lifetime.
				// Distinct (w, s) pairs are distinct slice elements, so
				// shard goroutines never write the same header.
				clear(log)
				bufs[w].byShard[s] = log[:0]
			}
		}
	})
}

// Grow extends the table to cover one more vertex, widening the shard
// ranges when the new ID would fall past the last shard. Must only be
// called between batches (the mailbox is empty).
func (m *shardedMailbox) Grow() {
	m.slots = append(m.slots, nil)
	if m.shardOf(graph.VertexID(len(m.slots)-1)) >= m.shards {
		// Doubling the range size remaps every vertex, which is safe
		// precisely because nothing is touched right now; pooled vectors
		// are interchangeable zeroed storage and stay where they are.
		m.shift++
	}
}

// Reset clears the mailbox, zeroing and recycling all touched vectors into
// their shard's pool — in parallel across shards for large frontiers
// (zeroing is order-independent).
func (m *shardedMailbox) Reset(serial bool) {
	clearShard := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			sh := &m.sh[s]
			for _, u := range sh.touched {
				v := m.slots[u]
				v.Zero()
				sh.pool = append(sh.pool, v)
				m.slots[u] = nil
			}
			sh.touched = sh.touched[:0]
		}
	}
	if total := m.Len(); serial || total < 4096 {
		clearShard(0, m.shards)
	} else {
		par.For(m.shards, clearShard)
	}
}
