package engine

import "ripple/internal/graph"

// LabelChange records one vertex whose predicted class flipped during a
// batch — the payload of the paper's trigger-based inference model (§2.2):
// applications are notified of prediction changes immediately, instead of
// polling.
type LabelChange struct {
	Vertex   graph.VertexID
	Old, New int
}

// trackLabelChanges compares the pre- and post-batch final-layer
// embeddings of the hop-L frontier and returns the label flips. Called by
// the engine when Config.TrackLabels is set.
func (r *Ripple) trackLabelChanges(frontier []graph.VertexID) []LabelChange {
	l := r.model.L()
	var changes []LabelChange
	for _, v := range frontier {
		old := r.oldH[l].Lookup(v)
		if old == nil {
			continue
		}
		oldLabel := old.ArgMax()
		newLabel := r.emb.H[l][v].ArgMax()
		if oldLabel != newLabel {
			changes = append(changes, LabelChange{Vertex: v, Old: oldLabel, New: newLabel})
		}
	}
	return changes
}
