package engine

import "time"

// AccelModel is the simulated-accelerator cost model standing in for the
// paper's GPU runs (DNG/DRG in Fig. 8). No GPU exists in this environment,
// so accelerated strategies execute the identical CPU computation for
// correctness and op counting, then report a simulated propagate time:
//
//	T_sim = T_cpu/Speedup + KernelLaunches·LaunchOverhead + PCIeTransfer
//
// This reproduces the paper's finding structurally: at the evaluation's
// small batch sizes the workload is launch-overhead dominated, so the
// accelerator offers little or negative benefit over the CPU (§7.2, ≈5%
// faster on Arxiv, ≈6% slower on Products for DRG vs DRC).
type AccelModel struct {
	// Speedup is the raw-FLOP advantage over the CPU path.
	Speedup float64
	// LaunchOverhead is charged per kernel launch.
	LaunchOverhead time.Duration
	// TransferOverhead is charged once per batch for fixed host↔device
	// staging.
	TransferOverhead time.Duration
	// TransferFraction charges PCIe movement proportional to the CPU
	// compute time (layer inputs/outputs scale with the touched work).
	// This is what makes the accelerator wash out at streaming batch
	// sizes, the paper's §7.2 observation.
	TransferFraction float64
}

// DefaultAccelModel approximates a discrete GPU over PCIe: healthy FLOP
// advantage, tens of microseconds per kernel launch, fixed staging, and
// data movement proportional to the touched state. Calibrated so
// layer-wise recompute sees the paper's ±5% GPU (non-)benefit.
var DefaultAccelModel = AccelModel{
	Speedup:          3.0,
	LaunchOverhead:   60 * time.Microsecond,
	TransferOverhead: 2 * time.Millisecond,
	TransferFraction: 0.6,
}

// SimulatedTime converts a measured CPU propagate time and kernel-launch
// count into the modelled accelerator time.
func (m AccelModel) SimulatedTime(cpu time.Duration, launches int64) time.Duration {
	if m.Speedup <= 0 {
		m.Speedup = 1
	}
	return time.Duration(float64(cpu)/m.Speedup) +
		time.Duration(launches)*m.LaunchOverhead +
		m.TransferOverhead +
		time.Duration(float64(cpu)*m.TransferFraction)
}

// Accel wraps a CPU strategy and annotates results with simulated
// accelerator timing. The wrapped strategy's state and correctness are
// untouched; only BatchResult.SimulatedTime is added.
type Accel struct {
	inner Strategy
	model AccelModel
	name  string
}

var _ Strategy = (*Accel)(nil)

// NewAccel wraps inner with the cost model. The conventional names map
// CPU→accelerator as in the paper: DRC→DRG, DNC→DNG.
func NewAccel(inner Strategy, model AccelModel) *Accel {
	name := inner.Name() + "+accel"
	switch inner.Name() {
	case "DRC":
		name = "DRG"
	case "DNC":
		name = "DNG"
	}
	return &Accel{inner: inner, model: model, name: name}
}

// Name implements Strategy.
func (a *Accel) Name() string { return a.name }

// ApplyBatch implements Strategy.
func (a *Accel) ApplyBatch(batch []Update) (BatchResult, error) {
	res, err := a.inner.ApplyBatch(batch)
	if err != nil {
		return res, err
	}
	res.SimulatedTime = a.model.SimulatedTime(res.PropagateTime, res.KernelLaunches)
	return res, nil
}
