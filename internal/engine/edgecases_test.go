package engine

import (
	"testing"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

func TestEmptyBatchIsNoOp(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	before := emb.Clone()
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ApplyBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 0 || res.Messages != 0 {
		t.Errorf("empty batch did work: %+v", res)
	}
	if d := r.Embeddings().MaxAbsDiff(before); d != 0 {
		t.Errorf("empty batch changed state by %v", d)
	}
}

func TestSelfLoopUpdates(t *testing.T) {
	// Self-loops make a vertex its own in-neighbour: adding one must
	// change the vertex's own embeddings at every layer, exactly as a
	// fresh forward pass says.
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 41}
	w := newTestWorld(t, spec, 20, 60, 301)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	u := graph.VertexID(3)
	if w.g.HasEdge(u, u) {
		t.Skip("random graph already has the self-loop")
	}
	if err := w.g.AddEdge(u, u, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyBatch([]Update{{Kind: EdgeAdd, U: u, V: u, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if d := r.Embeddings().MaxAbsDiff(w.groundTruth()); d > embTol {
		t.Fatalf("self-loop add drift %v", d)
	}
	// Feature update on a self-looped vertex exercises the combined
	// delta + structural paths.
	feat := tensor.Vector{1, -1, 0.5, 2}
	w.x[u].CopyFrom(feat)
	if _, err := r.ApplyBatch([]Update{{Kind: FeatureUpdate, U: u, Features: feat.Clone()}}); err != nil {
		t.Fatal(err)
	}
	if d := r.Embeddings().MaxAbsDiff(w.groundTruth()); d > embTol {
		t.Fatalf("self-loop feature drift %v", d)
	}
	// And removing the loop returns to the reference world.
	if _, err := w.g.RemoveEdge(u, u); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyBatch([]Update{{Kind: EdgeDelete, U: u, V: u}}); err != nil {
		t.Fatal(err)
	}
	if d := r.Embeddings().MaxAbsDiff(w.groundTruth()); d > embTol {
		t.Fatalf("self-loop delete drift %v", d)
	}
}

func TestIsolatedVertexFeatureUpdate(t *testing.T) {
	// A vertex with no edges at all: its feature update must touch only
	// itself (self-dependent models) or nothing downstream.
	spec := gnn.Spec{Kind: gnn.GINConv, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 43}
	m, err := gnn.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(5)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	x := make([]tensor.Vector, 5)
	for i := range x {
		x[i] = tensor.NewVector(4)
		x[i][0] = float32(i)
	}
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ApplyBatch([]Update{{Kind: FeatureUpdate, U: 4, Features: tensor.Vector{9, 9, 9, 9}}})
	if err != nil {
		t.Fatal(err)
	}
	// GIN is self-dependent: vertex 4 itself recomputes at each hop, but
	// nothing else does (no out-edges).
	if res.Affected != 1 {
		t.Errorf("affected = %d, want 1 (the isolated vertex)", res.Affected)
	}
	x[4] = tensor.Vector{9, 9, 9, 9}
	truth, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Embeddings().MaxAbsDiff(truth); d > embTol {
		t.Fatalf("isolated vertex drift %v", d)
	}
}

func TestWholeStreamInOneBatch(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggMean, Dims: []int{4, 5, 3}, Seed: 47}
	w := newTestWorld(t, spec, 40, 160, 307)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	batch := w.randomBatch(100) // 2.5 updates per vertex on average
	if _, err := r.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d := r.Embeddings().MaxAbsDiff(w.groundTruth()); d > embTol {
		t.Fatalf("mega-batch drift %v", d)
	}
}

func TestWeightChangeViaDeleteAddInOneBatch(t *testing.T) {
	// The traffic-example pattern: an edge weight change streamed as
	// delete + re-add with a new weight within one batch, under
	// weighted-sum aggregation.
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggWeighted, Dims: []int{4, 5, 3}, Seed: 53}
	w := newTestWorld(t, spec, 30, 120, 311)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := w.edges[0]
	oldW, ok := w.g.EdgeWeight(e[0], e[1])
	if !ok {
		t.Fatal("reference edge missing")
	}
	newW := oldW * 3
	if _, err := w.g.RemoveEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.g.AddEdge(e[0], e[1], newW); err != nil {
		t.Fatal(err)
	}
	batch := []Update{
		{Kind: EdgeDelete, U: e[0], V: e[1]},
		{Kind: EdgeAdd, U: e[0], V: e[1], Weight: newW},
	}
	if _, err := r.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d := r.Embeddings().MaxAbsDiff(w.groundTruth()); d > embTol {
		t.Fatalf("weight-change drift %v", d)
	}
}

func TestFourLayerDeepModel(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{4, 5, 5, 5, 3}, Seed: 59}
	w := newTestWorld(t, spec, 30, 100, 313)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.ApplyBatch(w.randomBatch(5)); err != nil {
			t.Fatal(err)
		}
	}
	if d := r.Embeddings().MaxAbsDiff(w.groundTruth()); d > embTol {
		t.Fatalf("4-layer drift %v", d)
	}
}

func TestRepeatedFeatureUpdatesSameVertexInBatch(t *testing.T) {
	// Two feature updates to the same vertex in one batch: last write
	// wins, and the delta is computed against the pre-batch value once.
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Update{
		{Kind: FeatureUpdate, U: 0, Features: tensor.Vector{100}},
		{Kind: FeatureUpdate, U: 0, Features: tensor.Vector{7}},
	}
	if _, err := r.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	// h1 of A's out-neighbours must reflect 7, not 100 or 1+something.
	for _, v := range []int{1, 2, 3} {
		if got := r.Embeddings().H[1][v][0]; got != 7 {
			t.Errorf("h1[%d] = %v, want 7", v, got)
		}
	}
}

func TestBatchResultTotalsConsistent(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{4, 5, 3}, Seed: 61}
	w := newTestWorld(t, spec, 30, 120, 317)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ApplyBatch(w.randomBatch(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 10 {
		t.Errorf("updates = %d", res.Updates)
	}
	if res.Total() != res.UpdateTime+res.PropagateTime {
		t.Error("Total() inconsistent for non-accel result")
	}
	if len(res.FrontierPerHop) != 2 {
		t.Errorf("frontier hops = %d", len(res.FrontierPerHop))
	}
	var frontierSum int
	for _, f := range res.FrontierPerHop {
		frontierSum += f
	}
	if res.Affected > frontierSum+10 { // hop-0 feature updates can add up to bs
		t.Errorf("affected %d exceeds frontier sum %d + batch", res.Affected, frontierSum)
	}
}
