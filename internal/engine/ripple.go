package engine

import (
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/par"
	"ripple/internal/tensor"
)

// Config tunes the Ripple engine. The zero value is the paper-faithful
// configuration.
type Config struct {
	// PruneZeroDeltas drops vertices whose recomputed embedding is exactly
	// unchanged from the next frontier. The paper's Ripple does NOT prune
	// (§4.3: all affected vertices are updated at each hop, unlike
	// InkStream); this switch exists as an ablation and remains exact
	// because a zero delta contributes nothing downstream.
	PruneZeroDeltas bool
	// Serial disables the parallel apply phase (used by the distributed
	// workers, which parallelise across partitions instead, and by
	// benchmarks isolating single-core behaviour).
	Serial bool
	// SampleTargets applies only to the vertex-wise DNC baseline: when
	// positive, each batch evaluates a deterministic stride-sample of at
	// most this many affected targets and linearly extrapolates cost to
	// the full target set (vertex-wise cost is exactly linear in targets,
	// each evaluated independently). Benchmark-only: the labels of
	// unsampled targets go stale, so correctness tests must leave it 0.
	SampleTargets int
	// TrackLabels records per-batch label flips in
	// BatchResult.LabelChanges, enabling the paper's trigger-based serving
	// model: consumers are notified of changed predictions immediately.
	TrackLabels bool
	// SerialCheckpoint makes Save emit the seed-era v1 checkpoint format
	// (single-threaded binary.Write loops) instead of the sectioned v2
	// format. LoadRipple reads both. This is the measured baseline for
	// restart-cost benchmarks (rippleload -measure-recovery A/Bs it); new
	// deployments should leave it false.
	SerialCheckpoint bool
	// Shards is the mailbox shard count of the parallel scatter phase,
	// rounded up to a power of two; 0 (the default) resolves at
	// construction to the smallest power of two covering GOMAXPROCS,
	// with a floor of 8 — shard-ordered merging pays for itself through
	// sink-range cache locality even single-core (see BenchmarkScatter).
	// More shards balance the merge better on skewed frontiers at the
	// cost of per-worker log bookkeeping. Sharding never changes
	// results: the merge replays messages in global deposit order,
	// bit-identical to the serial engine (Ripple engine only; other
	// strategies ignore it).
	Shards int
}

// resolveShards applies Config.Shards' rounding/defaulting rule.
func resolveShards(s int) int {
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
		if s < 8 {
			s = 8
		}
	}
	if s <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(s-1))
}

// edgeEvent records one structural change of the current batch. Coeff
// carries the aggregation coefficient α signed by the event direction:
// +α for an addition, -α for a deletion. At every hop l the sink's mailbox
// receives coeff·h^{l-1}_src using the *pre-batch* value of h^{l-1}_src,
// which composes exactly with the delta messages sent along live edges
// (see the derivation in DESIGN.md §3.2).
type edgeEvent struct {
	src, sink graph.VertexID
	coeff     float32
}

// Ripple is the paper's incremental inference engine (§4.3). It owns the
// graph, the model and the embedding state: vertices are first-class
// entities whose per-hop mailboxes accumulate delta messages, and
// propagation is strictly look-forward — apply the hop-l mailbox, then
// emit hop-(l+1) messages to out-neighbours.
type Ripple struct {
	g     *graph.Graph
	model *gnn.Model
	emb   *gnn.Embeddings
	cfg   Config

	mailbox []*shardedMailbox // [1..L]; mailbox[l] has width dims[l-1]
	oldH    []*vecTable       // [0..L]; pre-batch embeddings of changed vertices
	changed [][]graph.VertexID
	events  []edgeEvent

	// Parallel-scatter state (DESIGN.md §3.1): the resolved shard count,
	// the per-worker message logs, the delta-message slab backing one row
	// per changed vertex of the current hop, and the frontier scratch.
	shards    int
	scatter   []*scatterBuf
	delta     tensor.Vector // serial-path delta scratch
	deltaSlab []float32
	frontier  []graph.VertexID

	// applyScratch pools the apply phase's per-worker gnn.Scratch
	// buffers across batches (grown to the GOMAXPROCS snapshot of each
	// parallel apply), so the steady-state hot path stops allocating one
	// scratch per worker per hop.
	applyScratch []*gnn.Scratch

	// affectedStamp/epoch implement an O(1) distinct-vertex counter across
	// the hops of one batch.
	affectedStamp []uint32
	epoch         uint32

	// removed marks tombstoned vertices (nil until RemoveVertex is used).
	removed []bool

	// Dirty-row tracking for incremental delta checkpoints: nil until
	// EnableDirtyTracking. dirty flags each vertex whose embedding rows,
	// adjacency, or tombstone changed since the last ResetDirty; dirtyList
	// holds the same set in first-touch order for O(dirty) reset and save.
	dirty     []bool
	dirtyList []graph.VertexID

	scratch *gnn.Scratch
}

var _ Strategy = (*Ripple)(nil)

// NewRipple builds a Ripple engine over a graph whose embeddings have
// already been bootstrapped (gnn.Forward). The engine takes ownership of g
// and emb: callers must not mutate them directly afterwards.
func NewRipple(g *graph.Graph, model *gnn.Model, emb *gnn.Embeddings, cfg Config) (*Ripple, error) {
	if emb.N != g.NumVertices() {
		return nil, fmt.Errorf("engine: embeddings for %d vertices, graph has %d", emb.N, g.NumVertices())
	}
	if len(emb.Dims) != len(model.Dims) {
		return nil, fmt.Errorf("engine: embedding dims %v do not match model dims %v", emb.Dims, model.Dims)
	}
	n := g.NumVertices()
	r := &Ripple{
		g:             g,
		model:         model,
		emb:           emb,
		cfg:           cfg,
		mailbox:       make([]*shardedMailbox, model.L()+1),
		oldH:          make([]*vecTable, model.L()+1),
		changed:       make([][]graph.VertexID, model.L()+1),
		shards:        resolveShards(cfg.Shards),
		delta:         tensor.NewVector(model.MaxDim()),
		affectedStamp: make([]uint32, n),
		scratch:       gnn.NewScratch(model.MaxDim()),
	}
	for l := 0; l <= model.L(); l++ {
		r.oldH[l] = newVecTable(n, model.Dims[l])
		if l > 0 {
			r.mailbox[l] = newShardedMailbox(n, model.Dims[l-1], r.shards)
		}
	}
	return r, nil
}

// Shards returns the engine's resolved mailbox shard count (see
// Config.Shards).
func (r *Ripple) Shards() int { return r.shards }

// Name implements Strategy.
func (r *Ripple) Name() string { return "Ripple" }

// EnableLabelTracking switches on Config.TrackLabels after construction.
// The serving layer depends on BatchResult.LabelChanges/FinalFrontier and
// calls this to guarantee the invariant regardless of how the engine was
// bootstrapped. Must not be called concurrently with ApplyBatch.
func (r *Ripple) EnableLabelTracking() { r.cfg.TrackLabels = true }

// Graph exposes the engine-owned graph for read-only inspection.
func (r *Ripple) Graph() *graph.Graph { return r.g }

// Model exposes the engine's model. A restart path needs it (plus the
// engine's Config) to reload a checkpoint of this engine via LoadRipple.
func (r *Ripple) Model() *gnn.Model { return r.model }

// Config returns a copy of the engine's resolved configuration, so a
// recovery path can rebuild an engine with identical behaviour knobs
// (shards, serial mode, pruning, label tracking) — the preconditions for
// bit-identical replay.
func (r *Ripple) Config() Config { return r.cfg }

// Embeddings exposes the engine-owned embedding state for read-only
// inspection (e.g. label lookups by a serving layer).
func (r *Ripple) Embeddings() *gnn.Embeddings { return r.emb }

// Label returns the current predicted class of vertex u, or -1 if u has
// been removed.
func (r *Ripple) Label(u graph.VertexID) int {
	if r.Removed(u) {
		return -1
	}
	return r.emb.Label(int32(u))
}

// LabelTable fills dst (grown if needed) with every vertex's current
// predicted class, -1 for tombstoned vertices, and returns it. This is
// the bulk form of Label for consumers that need the whole table — e.g.
// a serving layer bootstrapping its epoch-0 snapshot — reading the
// final-layer embeddings directly instead of taking the per-vertex
// removed-check round trip, and scanning in parallel on large graphs.
// Must not be called concurrently with ApplyBatch.
func (r *Ripple) LabelTable(dst []int32) []int32 {
	n := r.g.NumVertices()
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	final := r.emb.H[r.model.L()]
	fill := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if r.Removed(graph.VertexID(v)) {
				dst[v] = -1
			} else {
				dst[v] = int32(final[v].ArgMax())
			}
		}
	}
	if r.cfg.Serial || n < 4096 {
		fill(0, n)
	} else {
		par.For(n, fill)
	}
	return dst
}

// ValidateBatch checks every update in batch against the topology g,
// simulating intra-batch edge changes, without touching any state. It is
// the topology/shape validation ApplyBatch runs before applying —
// exported so a distributed serving backend can enforce identical
// all-or-nothing batch semantics at the leader, where a bad update must
// be rejected before it reaches (and fatally breaks) a worker. It does
// NOT cover ApplyBatch's tombstoned-vertex check (RemoveVertex is a
// single-node feature; the distributed runtime never tombstones).
func ValidateBatch(g *graph.Graph, featDim int, batch []Update) error {
	return validateBatch(g, featDim, batch)
}

// validateBatch checks every update against the current topology
// (simulating intra-batch edge changes) so ApplyBatch either applies the
// whole batch or rejects it without touching state.
func validateBatch(g *graph.Graph, featDim int, batch []Update) error {
	n := graph.VertexID(g.NumVertices())
	// overlay simulates intra-batch topology changes on top of the live
	// graph. It is allocated lazily, on the first edge update: pure
	// feature streams — a common serving workload — validate without
	// allocating at all.
	type ekey struct{ u, v graph.VertexID }
	var overlay map[ekey]bool
	edgeLive := func(u, v graph.VertexID) bool {
		if st, ok := overlay[ekey{u, v}]; ok {
			return st
		}
		return g.HasEdge(u, v)
	}
	setOverlay := func(u, v graph.VertexID, live bool) {
		if overlay == nil {
			overlay = make(map[ekey]bool)
		}
		overlay[ekey{u, v}] = live
	}
	for i, upd := range batch {
		if upd.U < 0 || upd.U >= n {
			return fmt.Errorf("%w: batch[%d] %v source %d out of range [0,%d)", ErrBadUpdate, i, upd.Kind, upd.U, n)
		}
		switch upd.Kind {
		case EdgeAdd, EdgeDelete:
			if upd.V < 0 || upd.V >= n {
				return fmt.Errorf("%w: batch[%d] %v sink %d out of range [0,%d)", ErrBadUpdate, i, upd.Kind, upd.V, n)
			}
			if upd.Kind == EdgeAdd {
				if edgeLive(upd.U, upd.V) {
					return fmt.Errorf("%w: batch[%d] edge-add (%d,%d) already exists", ErrBadUpdate, i, upd.U, upd.V)
				}
				setOverlay(upd.U, upd.V, true)
			} else {
				if !edgeLive(upd.U, upd.V) {
					return fmt.Errorf("%w: batch[%d] edge-delete (%d,%d) does not exist", ErrBadUpdate, i, upd.U, upd.V)
				}
				setOverlay(upd.U, upd.V, false)
			}
		case FeatureUpdate:
			if len(upd.Features) != featDim {
				return fmt.Errorf("%w: batch[%d] feature width %d, want %d", ErrBadUpdate, i, len(upd.Features), featDim)
			}
		default:
			return fmt.Errorf("%w: batch[%d] unknown kind %v", ErrBadUpdate, i, upd.Kind)
		}
	}
	return nil
}

// ValidateBatch checks batch against this engine's full admission rules —
// the tombstone check plus the topology/shape validation — without
// touching any state. It accepts exactly the batches ApplyBatch would
// apply; the durability WAL relies on this to log a batch before applying
// it, knowing the apply cannot then be rejected.
func (r *Ripple) ValidateBatch(batch []Update) error {
	if r.removed != nil {
		for i, upd := range batch {
			if r.Removed(upd.U) || (upd.Kind != FeatureUpdate && r.Removed(upd.V)) {
				// RemoveVertex's own cleanup batch is exempt: it zeroes the
				// features before the tombstone is set, so it never hits
				// this path.
				return fmt.Errorf("batch[%d]: %w", i, ErrVertexRemoved)
			}
		}
	}
	return validateBatch(r.g, r.model.Dims[0], batch)
}

// ApplyBatch applies one batch of streaming updates and incrementally
// refreshes all affected embeddings. It implements the paper's two
// operators: update (hop-0 state changes + hop-1 seeding) and propagate
// (apply/compute per hop). On validation error the state is untouched.
func (r *Ripple) ApplyBatch(batch []Update) (BatchResult, error) {
	if err := r.ValidateBatch(batch); err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Updates: len(batch), FrontierPerHop: make([]int, r.model.L())}
	r.epoch++
	epoch := r.epoch

	// --- Update operator: topology + feature changes at hop 0. ---
	start := time.Now()
	r.events = r.events[:0]
	for _, upd := range batch {
		switch upd.Kind {
		case EdgeAdd:
			if err := r.g.AddEdge(upd.U, upd.V, upd.Weight); err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
			r.events = append(r.events, edgeEvent{src: upd.U, sink: upd.V, coeff: gnn.Coeff(r.model.Agg, upd.Weight)})
			// Both endpoints' adjacency lists changed, even if neither ends
			// up on any frontier (e.g. a source with an unchanged h^0).
			r.markDirty(upd.U)
			r.markDirty(upd.V)
		case EdgeDelete:
			w, err := r.g.RemoveEdge(upd.U, upd.V)
			if err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
			r.events = append(r.events, edgeEvent{src: upd.U, sink: upd.V, coeff: -gnn.Coeff(r.model.Agg, w)})
			r.markDirty(upd.U)
			r.markDirty(upd.V)
		case FeatureUpdate:
			if !r.oldH[0].Has(upd.U) {
				r.oldH[0].Get(upd.U).CopyFrom(r.emb.H[0][upd.U])
			}
			r.emb.H[0][upd.U].CopyFrom(upd.Features)
		}
	}
	// changed[0] = feature-updated vertices whose h^0 actually changed.
	r.changed[0] = r.changed[0][:0]
	for _, u := range r.oldH[0].SortedTouched() {
		// Every feature-updated vertex is dirty for delta checkpoints,
		// including pruned zero-delta ones: h^0 was overwritten, and
		// value-equal floats can still differ in bits (-0 vs +0).
		r.markDirty(u)
		if !r.cfg.PruneZeroDeltas || r.oldH[0].Lookup(u).MaxAbsDiff(r.emb.H[0][u]) != 0 {
			r.changed[0] = append(r.changed[0], u)
			r.countAffected(u, epoch, &res)
		}
	}
	res.UpdateTime = time.Since(start)

	// --- Propagate operator: hops 1..L. ---
	start = time.Now()
	res.ScatterShards = r.shards
	for l := 1; l <= r.model.L(); l++ {
		layer := r.model.Layers[l-1]
		mb := r.mailbox[l]

		// (a)+(b) Scatter: structural contributions of every edge event
		// and delta messages from every changed vertex, deposited into the
		// sharded hop-l mailbox — in parallel when the frontier warrants
		// it, bit-identical to the serial order either way.
		r.scatterHop(l, &res)

		// (c) Self-dependence: architectures with a W_self/(1+ε) term must
		// recompute h^l_u whenever h^{l-1}_u changed, message or not.
		if r.model.SelfDependent() {
			for _, u := range r.changed[l-1] {
				mb.Get(u) // ensures u joins the hop-l frontier
			}
		}

		// (d) Apply phase: fold mailboxes into aggregates, recompute
		// embeddings. Frontier is sorted for deterministic float
		// accumulation; vertices are independent, so this parallelises.
		r.frontier = mb.Frontier(r.frontier, r.cfg.Serial)
		frontier := r.frontier
		res.FrontierPerHop[l-1] = len(frontier)
		for _, v := range frontier {
			r.oldH[l].Get(v).CopyFrom(r.emb.H[l][v])
			r.countAffected(v, epoch, &res)
			// Every frontier vertex gets A^l and h^l rewritten by the apply
			// phase below, so it is dirty even when the new value matches.
			r.markDirty(v)
		}
		applyOps := r.applyFrontier(layer, l, frontier)
		res.VectorOps += applyOps

		// Build changed[l] for the next hop.
		r.changed[l] = r.changed[l][:0]
		for _, v := range frontier {
			if r.cfg.PruneZeroDeltas && r.oldH[l].Lookup(v).MaxAbsDiff(r.emb.H[l][v]) == 0 {
				continue
			}
			r.changed[l] = append(r.changed[l], v)
		}
		res.KernelLaunches++

		if r.cfg.TrackLabels && l == r.model.L() {
			res.LabelChanges = r.trackLabelChanges(frontier)
			res.FinalFrontier = append([]graph.VertexID(nil), frontier...)
		}
	}
	res.PropagateTime = time.Since(start)

	// Recycle batch-scoped state.
	for l := 0; l <= r.model.L(); l++ {
		r.oldH[l].Reset()
		if l > 0 {
			r.mailbox[l].Reset(r.cfg.Serial)
		}
	}
	return res, nil
}

// scatterSerialCutoff is the estimated message count below which the hop
// scatters serially: on tiny frontiers the goroutine and log bookkeeping
// costs more than the vector work it spreads. The estimate sums actual
// out-degrees, so a handful of high-fan-out hubs — the workload the
// parallel path exists for — is gated by its real message volume, not by
// how few source vertices it has.
const scatterSerialCutoff = 256

// scatterHop runs the scatter phases of hop l — (a) structural
// contributions of every edge event, using the pre-batch h^{l-1} of the
// source (paper §4.3.1, edge add/delete conditions with h_old or h_new
// taken as zero), and (b) delta messages from vertices whose h^{l-1}
// changed: one ⊖ to form the delta, one ⊕ per out-neighbour to accumulate
// it (the 2k′ operations of the paper's benefit analysis, §4.3.3).
//
// The parallel path treats events ++ changed as one ordered task list:
// par.ForShards hands each worker a contiguous slice to walk in order,
// logging messages into per-(worker, shard) buffers; the sharded merge
// then replays every shard's logs in (worker, deposit) order, which is
// exactly the global task order per sink — so float accumulation is
// bit-identical to the serial path, at any shard count and GOMAXPROCS.
func (r *Ripple) scatterHop(l int, res *BatchResult) {
	mb := r.mailbox[l]
	width := r.model.Dims[l-1]
	events, changed := r.events, r.changed[l-1]
	nEv := len(events)
	nTasks := nEv + len(changed)
	work := nEv
	if !r.cfg.Serial {
		for _, u := range changed {
			work += len(r.g.Out(u))
			if work >= scatterSerialCutoff {
				break // estimate only gates the cutoff; stop at proof
			}
		}
	}

	if r.cfg.Serial || work < scatterSerialCutoff {
		res.ScatterHopsSerial++
		for _, ev := range events {
			hPrev := r.oldH[l-1].Lookup(ev.src)
			if hPrev == nil {
				hPrev = r.emb.H[l-1][ev.src]
			}
			mb.Get(ev.sink).AXPY(ev.coeff, hPrev)
			res.Messages++
			res.VectorOps++
		}
		d := r.delta[:width]
		for _, u := range changed {
			tensor.AddSubInto(d, r.emb.H[l-1][u], r.oldH[l-1].Lookup(u))
			res.VectorOps++
			for _, e := range r.g.Out(u) {
				mb.Get(e.Peer).AXPY(gnn.Coeff(r.model.Agg, e.Weight), d)
				res.Messages++
				res.VectorOps++
			}
		}
		return
	}

	res.ScatterHopsParallel++
	// One delta row per changed vertex: the rows must outlive the scatter
	// pass, because the merge AXPYs them once per out-neighbour.
	if need := len(changed) * width; cap(r.deltaSlab) < need {
		r.deltaSlab = make([]float32, need)
	}
	slab := r.deltaSlab
	// One GOMAXPROCS snapshot bounds both the buffer count and the
	// fan-out (ForShardsN), so a concurrent GOMAXPROCS change can never
	// hand a worker an index past len(r.scatter).
	maxW := runtime.GOMAXPROCS(0)
	for len(r.scatter) < maxW {
		r.scatter = append(r.scatter, &scatterBuf{})
	}
	workers := par.ForShardsN(nTasks, maxW, func(w, lo, hi int) {
		buf := r.scatter[w]
		buf.reset(mb.shards)
		for i := lo; i < hi; i++ {
			if i < nEv {
				ev := events[i]
				hPrev := r.oldH[l-1].Lookup(ev.src)
				if hPrev == nil {
					hPrev = r.emb.H[l-1][ev.src]
				}
				buf.push(mb.shardOf(ev.sink), message{sink: ev.sink, coeff: ev.coeff, vec: hPrev})
				buf.messages++
				buf.vectorOps++
				continue
			}
			c := i - nEv
			u := changed[c]
			d := tensor.Vector(slab[c*width : (c+1)*width])
			tensor.AddSubInto(d, r.emb.H[l-1][u], r.oldH[l-1].Lookup(u))
			buf.vectorOps++
			for _, e := range r.g.Out(u) {
				buf.push(mb.shardOf(e.Peer), message{sink: e.Peer, coeff: gnn.Coeff(r.model.Agg, e.Weight), vec: d})
				buf.messages++
				buf.vectorOps++
			}
		}
	})
	mb.mergeLogs(r.scatter, workers)
	for w := 0; w < workers; w++ {
		res.Messages += r.scatter[w].messages
		res.VectorOps += r.scatter[w].vectorOps
	}
}

// applyFrontier runs the apply phase of hop l over the frontier and
// returns the number of vector operations performed.
func (r *Ripple) applyFrontier(layer *gnn.Layer, l int, frontier []graph.VertexID) int64 {
	if r.cfg.Serial || len(frontier) < 256 {
		for _, v := range frontier {
			r.applyOne(layer, l, v, r.scratch)
		}
		return int64(len(frontier))
	}
	// One GOMAXPROCS snapshot bounds both the scratch pool and the
	// fan-out (ForShardsN), the same discipline as scatterHop: a
	// concurrent GOMAXPROCS change can never hand a worker an index past
	// len(r.applyScratch), and the pooled scratches make the parallel
	// apply phase allocation-free in steady state.
	maxW := runtime.GOMAXPROCS(0)
	for len(r.applyScratch) < maxW {
		r.applyScratch = append(r.applyScratch, gnn.NewScratch(r.model.MaxDim()))
	}
	par.ForShardsN(len(frontier), maxW, func(w, lo, hi int) {
		s := r.applyScratch[w]
		for i := lo; i < hi; i++ {
			r.applyOne(layer, l, frontier[i], s)
		}
	})
	return int64(len(frontier))
}

// applyOne folds vertex v's hop-l mailbox into its aggregate and
// recomputes h^l_v. A method rather than a closure so the hot apply loop
// does not allocate a heap closure per hop.
func (r *Ripple) applyOne(layer *gnn.Layer, l int, v graph.VertexID, s *gnn.Scratch) {
	agg := r.emb.A[l][v]
	agg.Add(r.mailbox[l].Lookup(v))
	layer.UpdateInto(r.emb.H[l][v], r.emb.H[l-1][v], agg, r.g.InDegree(v), s)
}

// countAffected counts v once per batch toward the affected-vertex total.
func (r *Ripple) countAffected(v graph.VertexID, epoch uint32, res *BatchResult) {
	if r.affectedStamp[v] != epoch {
		r.affectedStamp[v] = epoch
		res.Affected++
	}
}
