package engine

import (
	"slices"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// vecTable is a dense vertex→vector table with O(1) lookup, deterministic
// iteration, and pooled storage. It backs the per-hop old-embedding
// tables of the Ripple engine (the per-hop mailboxes, once vecTables too,
// are now shardedMailboxes — see mailbox.go — so the scatter phase can
// deposit from many workers at once).
//
// The dense []tensor.Vector layout (nil = absent) trades O(n) pointers per
// layer for map-free access: the evaluation's dense graphs routinely touch
// large fractions of all vertices per batch (Fig. 2b shows up to 80% for
// Products), where map overhead dominates.
type vecTable struct {
	width   int
	slots   []tensor.Vector // indexed by vertex id; nil when absent
	touched []graph.VertexID
	pool    []tensor.Vector // zeroed vectors ready for reuse
}

func newVecTable(n, width int) *vecTable {
	return &vecTable{width: width, slots: make([]tensor.Vector, n)}
}

// Get returns the vector for u, allocating (or reusing) a zeroed one on
// first touch.
func (t *vecTable) Get(u graph.VertexID) tensor.Vector {
	if v := t.slots[u]; v != nil {
		return v
	}
	var v tensor.Vector
	if k := len(t.pool); k > 0 {
		v = t.pool[k-1]
		t.pool = t.pool[:k-1]
	} else {
		v = tensor.NewVector(t.width)
	}
	t.slots[u] = v
	t.touched = append(t.touched, u)
	return v
}

// Lookup returns the vector for u, or nil if u has not been touched.
func (t *vecTable) Lookup(u graph.VertexID) tensor.Vector { return t.slots[u] }

// Has reports whether u has been touched.
func (t *vecTable) Has(u graph.VertexID) bool { return t.slots[u] != nil }

// Len returns the number of touched vertices.
func (t *vecTable) Len() int { return len(t.touched) }

// SortedTouched sorts the touched list in place and returns it. Sorting
// makes frontier iteration — and therefore floating-point accumulation
// order — deterministic across runs, preserving the paper's deterministic-
// inference guarantee.
func (t *vecTable) SortedTouched() []graph.VertexID {
	// slices.Sort over sort.Slice for the allocation-free generic sort.
	slices.Sort(t.touched)
	return t.touched
}

// Grow extends the table to cover one more vertex.
func (t *vecTable) Grow() { t.slots = append(t.slots, nil) }

// Reset clears the table, zeroing and recycling all touched vectors.
func (t *vecTable) Reset() {
	for _, u := range t.touched {
		v := t.slots[u]
		v.Zero()
		t.pool = append(t.pool, v)
		t.slots[u] = nil
	}
	t.touched = t.touched[:0]
}
