package engine

import (
	"bytes"
	"errors"
	"testing"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// --- checkpoint/restore ---

func TestCheckpointRoundTrip(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggMean, Dims: []int{5, 6, 4}, Seed: 71}
	w := newTestWorld(t, spec, 30, 120, 401)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate state: stream updates and tombstone a vertex.
	for i := 0; i < 3; i++ {
		if _, err := r.ApplyBatch(w.randomBatch(6)); err != nil {
			t.Fatal(err)
		}
	}
	victim := graph.VertexID(9)
	for _, e := range w.g.IncidentEdges(victim) {
		if _, err := w.g.RemoveEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	w.x[victim].Zero()
	if _, err := r.RemoveVertex(victim); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRipple(&buf, w.model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := restored.Embeddings().MaxAbsDiff(r.Embeddings()); d != 0 {
		t.Fatalf("restored embeddings differ by %v", d)
	}
	if !restored.Removed(victim) || restored.Label(victim) != -1 {
		t.Error("tombstone not restored")
	}
	if restored.Graph().NumEdges() != r.Graph().NumEdges() {
		t.Error("topology not restored")
	}

	// The restored engine must continue streaming exactly: apply the same
	// batch to both and compare.
	batch := w.randomBatchAvoiding(5, victim)
	if _, err := r.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d := restored.Embeddings().MaxAbsDiff(r.Embeddings()); d != 0 {
		t.Fatalf("post-restore divergence %v", d)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXXXXXX"), full[8:]...)},
		{"truncated header", full[:10]},
		{"truncated body", full[:len(full)/2]},
		{"truncated tail", full[:len(full)-2]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadRipple(bytes.NewReader(tt.data), m, Config{}); !errors.Is(err, ErrBadCheckpoint) {
				t.Errorf("err = %v, want ErrBadCheckpoint", err)
			}
		})
	}

	// Wrong model dims must be rejected explicitly.
	m3 := identitySum(3)
	if _, err := LoadRipple(bytes.NewReader(full), m3, Config{}); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("dims mismatch err = %v", err)
	}
}

// --- request-based (lazy) serving ---

func TestLazyQueriesMatchEagerLabels(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 73}
	w := newTestWorld(t, spec, 30, 120, 409)
	g, emb := w.bootstrap()
	eager, err := NewRipple(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewLazy(w.g.Clone(), w.model, w.xClone())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		batch := w.randomBatch(6)
		if _, err := eager.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		res, err := lazy.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Affected != 0 || res.PropagateTime != 0 {
			t.Error("lazy engine should not propagate")
		}
		// Lazy must need re-syncing of its feature mirror: randomBatch
		// already mutated w.x which lazy shares a clone of, so apply
		// feature updates explicitly through the batch (done above).
		for u := graph.VertexID(0); u < 30; u++ {
			le := lazy.QueryEmbedding(u)
			ee := eager.Embeddings().H[w.model.L()][u]
			if d := le.MaxAbsDiff(ee); d > embTol {
				t.Fatalf("round %d: lazy embedding at %d differs by %v", round, u, d)
			}
			if lazy.Query(u) != eager.Label(u) {
				// Permit boundary flips only when logits are within tol.
				gap := ee[ee.ArgMax()] - ee[lazy.Query(u)]
				if gap > embTol {
					t.Fatalf("round %d: label mismatch at %d (gap %v)", round, u, gap)
				}
			}
		}
	}
}

func TestLazyValidation(t *testing.T) {
	g := graph.New(3)
	m := identitySum(2)
	if _, err := NewLazy(g, m, nil); err == nil {
		t.Error("expected error for missing features")
	}
	wrongWidth := []tensor.Vector{{1, 2}, {1, 2}, {1, 2}}
	if _, err := NewLazy(g, m, wrongWidth); err == nil {
		t.Error("expected error for wrong feature width")
	}
}

func TestLazyUpdateCostIsTopologyOnly(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GINConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 79}
	w := newTestWorld(t, spec, 40, 160, 419)
	lazy, err := NewLazy(w.g.Clone(), w.model, w.xClone())
	if err != nil {
		t.Fatal(err)
	}
	res, err := lazy.ApplyBatch(w.randomBatch(20))
	if err != nil {
		t.Fatal(err)
	}
	if res.VectorOps != 0 || res.Messages != 0 {
		t.Error("lazy updates should do no numerical work")
	}
	if lazy.Name() != "Lazy" {
		t.Error("name wrong")
	}
}
