package engine

import (
	"fmt"
	"time"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// Lazy is the request-based serving alternative the paper contrasts with
// trigger-based inference (§2.2): updates are O(1) state mutations with no
// propagation at all, and each query recomputes the target's embedding on
// demand by exact vertex-wise inference over the current topology and
// features.
//
// The trade-off against the (trigger-based) Ripple engine is workload
// shape: update-heavy/query-light streams favour Lazy, query-heavy
// streams favour maintaining embeddings incrementally. The ablation bench
// quantifies the crossover.
type Lazy struct {
	g     *graph.Graph
	model *gnn.Model
	x     []tensor.Vector
}

var _ Strategy = (*Lazy)(nil)

// NewLazy builds a request-based engine over the live graph and features.
// It takes ownership of both.
func NewLazy(g *graph.Graph, model *gnn.Model, x []tensor.Vector) (*Lazy, error) {
	if len(x) != g.NumVertices() {
		return nil, fmt.Errorf("engine: lazy got %d feature rows for %d vertices", len(x), g.NumVertices())
	}
	for u, row := range x {
		if len(row) != model.Dims[0] {
			return nil, fmt.Errorf("engine: lazy feature row %d has width %d, want %d", u, len(row), model.Dims[0])
		}
	}
	return &Lazy{g: g, model: model, x: x}, nil
}

// Name implements Strategy.
func (l *Lazy) Name() string { return "Lazy" }

// ApplyBatch implements Strategy: it mutates topology and features only.
// No embeddings exist to refresh, so Affected is always 0 and the cost is
// the pure update time — the whole point of the request-based model.
func (l *Lazy) ApplyBatch(batch []Update) (BatchResult, error) {
	if err := validateBatch(l.g, l.model.Dims[0], batch); err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Updates: len(batch), FrontierPerHop: make([]int, l.model.L())}
	start := time.Now()
	for _, upd := range batch {
		switch upd.Kind {
		case EdgeAdd:
			if err := l.g.AddEdge(upd.U, upd.V, upd.Weight); err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
		case EdgeDelete:
			if _, err := l.g.RemoveEdge(upd.U, upd.V); err != nil {
				return res, fmt.Errorf("engine: applying validated batch: %w", err)
			}
		case FeatureUpdate:
			l.x[upd.U].CopyFrom(upd.Features)
		}
	}
	res.UpdateTime = time.Since(start)
	return res, nil
}

// Query computes the exact, fresh label of u by vertex-wise inference over
// the current state.
func (l *Lazy) Query(u graph.VertexID) int {
	return gnn.InferVertex(l.g, l.model, l.x, u).ArgMax()
}

// QueryEmbedding computes the fresh final-layer embedding of u.
func (l *Lazy) QueryEmbedding(u graph.VertexID) tensor.Vector {
	return gnn.InferVertex(l.g, l.model, l.x, u)
}
