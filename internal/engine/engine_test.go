package engine

import (
	"errors"
	"math/rand"
	"testing"

	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// --- shared test harness ---

// testWorld is a mirrored environment: a live strategy under test plus the
// reference graph/features that let us recompute ground truth from scratch.
type testWorld struct {
	t     *testing.T
	rng   *rand.Rand
	model *gnn.Model
	g     *graph.Graph    // reference topology mirror
	x     []tensor.Vector // reference feature mirror
	edges [][2]graph.VertexID
}

func newTestWorld(t *testing.T, spec gnn.Spec, n, m int, seed int64) *testWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model, err := gnn.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n)
	var edges [][2]graph.VertexID
	for i := 0; i < m; i++ {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if err := g.AddEdge(u, v, 0.1+rng.Float32()); err == nil {
			edges = append(edges, [2]graph.VertexID{u, v})
		}
	}
	x := make([]tensor.Vector, n)
	for i := range x {
		x[i] = tensor.NewVector(spec.Dims[0])
		for j := range x[i] {
			x[i][j] = rng.Float32()*2 - 1
		}
	}
	return &testWorld{t: t, rng: rng, model: model, g: g, x: x, edges: edges}
}

// bootstrap returns an independent (graph, embeddings) pair matching the
// current reference state, for handing to a strategy.
func (w *testWorld) bootstrap() (*graph.Graph, *gnn.Embeddings) {
	w.t.Helper()
	g := w.g.Clone()
	emb, err := gnn.Forward(g, w.model, w.x)
	if err != nil {
		w.t.Fatal(err)
	}
	return g, emb
}

// groundTruth recomputes embeddings from scratch for the current reference
// state.
func (w *testWorld) groundTruth() *gnn.Embeddings {
	w.t.Helper()
	emb, err := gnn.Forward(w.g, w.model, w.x)
	if err != nil {
		w.t.Fatal(err)
	}
	return emb
}

// randomBatch generates size random valid updates and applies them to the
// reference mirror.
func (w *testWorld) randomBatch(size int) []Update {
	w.t.Helper()
	n := w.g.NumVertices()
	var batch []Update
	for len(batch) < size {
		switch w.rng.Intn(3) {
		case 0: // edge add
			u, v := graph.VertexID(w.rng.Intn(n)), graph.VertexID(w.rng.Intn(n))
			if w.g.HasEdge(u, v) {
				continue
			}
			wt := 0.1 + w.rng.Float32()
			if err := w.g.AddEdge(u, v, wt); err != nil {
				w.t.Fatal(err)
			}
			w.edges = append(w.edges, [2]graph.VertexID{u, v})
			batch = append(batch, Update{Kind: EdgeAdd, U: u, V: v, Weight: wt})
		case 1: // edge delete
			if len(w.edges) == 0 {
				continue
			}
			i := w.rng.Intn(len(w.edges))
			e := w.edges[i]
			if !w.g.HasEdge(e[0], e[1]) { // stale entry (already deleted)
				w.edges[i] = w.edges[len(w.edges)-1]
				w.edges = w.edges[:len(w.edges)-1]
				continue
			}
			if _, err := w.g.RemoveEdge(e[0], e[1]); err != nil {
				w.t.Fatal(err)
			}
			w.edges[i] = w.edges[len(w.edges)-1]
			w.edges = w.edges[:len(w.edges)-1]
			batch = append(batch, Update{Kind: EdgeDelete, U: e[0], V: e[1]})
		default: // feature update
			u := graph.VertexID(w.rng.Intn(n))
			feat := tensor.NewVector(len(w.x[u]))
			for j := range feat {
				feat[j] = w.rng.Float32()*2 - 1
			}
			w.x[u].CopyFrom(feat)
			batch = append(batch, Update{Kind: FeatureUpdate, U: u, Features: feat.Clone()})
		}
	}
	return batch
}

func testSpecs() map[string]gnn.Spec {
	specs := map[string]gnn.Spec{}
	for _, kind := range []gnn.ModelKind{gnn.GraphConv, gnn.GraphSAGE, gnn.GINConv} {
		for _, agg := range []gnn.Aggregator{gnn.AggSum, gnn.AggMean, gnn.AggWeighted} {
			name := kind.String() + "/" + agg.String()
			specs[name] = gnn.Spec{Kind: kind, Agg: agg, Dims: []int{5, 6, 4}, Seed: 21}
		}
	}
	// A deeper model to exercise 3-hop propagation.
	specs["GraphSAGE/sum/3L"] = gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 6, 6, 4}, Seed: 22}
	specs["GraphConv/mean/3L"] = gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggMean, Dims: []int{5, 6, 6, 4}, Seed: 23}
	return specs
}

const embTol = 5e-3

// --- golden invariant: every strategy converges to ground truth ---

func TestRippleMatchesFullRecompute(t *testing.T) {
	for name, spec := range testSpecs() {
		t.Run(name, func(t *testing.T) {
			w := newTestWorld(t, spec, 50, 200, 31)
			g, emb := w.bootstrap()
			r, err := NewRipple(g, w.model, emb, Config{})
			if err != nil {
				t.Fatal(err)
			}
			for batchNum := 0; batchNum < 8; batchNum++ {
				batch := w.randomBatch(1 + w.rng.Intn(10))
				if _, err := r.ApplyBatch(batch); err != nil {
					t.Fatalf("batch %d: %v", batchNum, err)
				}
				truth := w.groundTruth()
				if d := r.Embeddings().MaxAbsDiff(truth); d > embTol {
					t.Fatalf("batch %d: Ripple drifted from ground truth by %v", batchNum, d)
				}
			}
		})
	}
}

func TestRCMatchesFullRecompute(t *testing.T) {
	for name, spec := range testSpecs() {
		t.Run(name, func(t *testing.T) {
			w := newTestWorld(t, spec, 40, 150, 37)
			g, emb := w.bootstrap()
			rc, err := NewRC(g, w.model, emb, Config{})
			if err != nil {
				t.Fatal(err)
			}
			for batchNum := 0; batchNum < 6; batchNum++ {
				batch := w.randomBatch(1 + w.rng.Intn(8))
				if _, err := rc.ApplyBatch(batch); err != nil {
					t.Fatalf("batch %d: %v", batchNum, err)
				}
				truth := w.groundTruth()
				if d := rc.Embeddings().MaxAbsDiff(truth); d > embTol {
					t.Fatalf("batch %d: RC drifted from ground truth by %v", batchNum, d)
				}
			}
		})
	}
}

func TestDRCMatchesFullRecompute(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggMean, Dims: []int{5, 6, 4}, Seed: 5}
	w := newTestWorld(t, spec, 40, 150, 41)
	g, emb := w.bootstrap()
	d, err := NewDRC(g, w.model, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for batchNum := 0; batchNum < 6; batchNum++ {
		batch := w.randomBatch(5)
		if _, err := d.ApplyBatch(batch); err != nil {
			t.Fatalf("batch %d: %v", batchNum, err)
		}
		truth := w.groundTruth()
		if diff := d.Embeddings().MaxAbsDiff(truth); diff > embTol {
			t.Fatalf("batch %d: DRC drifted by %v", batchNum, diff)
		}
	}
}

func TestDNCLabelsMatchGroundTruth(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GINConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 6}
	w := newTestWorld(t, spec, 30, 100, 43)
	g, _ := w.bootstrap()
	truth0 := w.groundTruth()
	labels := make([]int32, 30)
	for u := range labels {
		labels[u] = int32(truth0.Label(int32(u)))
	}
	d, err := NewDNC(g, w.model, w.xClone(), labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for batchNum := 0; batchNum < 6; batchNum++ {
		batch := w.randomBatch(4)
		if _, err := d.ApplyBatch(batch); err != nil {
			t.Fatalf("batch %d: %v", batchNum, err)
		}
		truth := w.groundTruth()
		for u := 0; u < 30; u++ {
			if d.Labels()[u] != int32(truth.Label(int32(u))) {
				// Labels at decision boundaries can differ under float
				// noise; verify the logit gap is genuinely tiny.
				h := truth.H[w.model.L()][u]
				if gap := h[h.ArgMax()] - h[d.Labels()[u]]; gap > embTol {
					t.Fatalf("batch %d: DNC label[%d]=%d, truth %d (gap %v)",
						batchNum, u, d.Labels()[u], truth.Label(int32(u)), gap)
				}
			}
		}
	}
}

func (w *testWorld) xClone() []tensor.Vector {
	out := make([]tensor.Vector, len(w.x))
	for i, row := range w.x {
		out[i] = row.Clone()
	}
	return out
}

// --- paper worked example (Figs. 3/4/5) ---

// identitySum builds an L-layer 1-dim GraphConv/sum model whose Update is
// the identity, making embeddings hand-computable neighbourhood sums.
func identitySum(layers int) *gnn.Model {
	dims := make([]int, layers+1)
	for i := range dims {
		dims[i] = 1
	}
	m := &gnn.Model{Kind: gnn.GraphConv, Agg: gnn.AggSum, Dims: dims}
	for l := 0; l < layers; l++ {
		m.Layers = append(m.Layers, &gnn.Layer{
			Kind: gnn.GraphConv, Agg: gnn.AggSum, Act: tensor.ActIdentity,
			In: 1, Out: 1,
			WNeigh: tensor.NewMatrixFrom(1, 1, []float32{1}),
			B:      tensor.NewVector(1),
		})
	}
	return m
}

// paperGraph builds the Fig. 3-style scenario: A→{B,C,D}, F→E, then the
// streamed update adds E→A. Vertex ids: A=0 B=1 C=2 D=3 E=4 F=5.
func paperGraph(t *testing.T) (*graph.Graph, []tensor.Vector) {
	t.Helper()
	g := graph.New(6)
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {0, 3}, {5, 4}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	x := []tensor.Vector{{1}, {2}, {3}, {4}, {5}, {6}}
	return g, x
}

func TestPaperFigure3EdgeAddCascade(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	// Initial state: h1 = [0 1 1 1 6 0], h2 = [0 0 0 0 0 0].
	wantH1 := []float32{0, 1, 1, 1, 6, 0}
	for u, want := range wantH1 {
		if got := emb.H[1][u][0]; got != want {
			t.Fatalf("bootstrap h1[%d] = %v, want %v", u, got, want)
		}
	}

	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.ApplyBatch([]Update{{Kind: EdgeAdd, U: 4, V: 0, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}

	// After ADD E→A: h1_A = x_E = 5; h2_A = h1_E = 6; h2_{B,C,D} = h1_A = 5.
	// F and E must be untouched (the paper's key observation in Fig. 3).
	wantH1 = []float32{5, 1, 1, 1, 6, 0}
	wantH2 := []float32{6, 5, 5, 5, 0, 0}
	for u := range wantH1 {
		if got := r.Embeddings().H[1][u][0]; got != wantH1[u] {
			t.Errorf("h1[%d] = %v, want %v", u, got, wantH1[u])
		}
		if got := r.Embeddings().H[2][u][0]; got != wantH2[u] {
			t.Errorf("h2[%d] = %v, want %v", u, got, wantH2[u])
		}
	}

	// Propagation tree: hop 1 = {A}; hop 2 = {A, B, C, D} (A re-enters as
	// the new edge's structural sink). Affected distinct = 4; E and F never
	// enter the tree.
	if res.FrontierPerHop[0] != 1 || res.FrontierPerHop[1] != 4 {
		t.Errorf("frontier per hop = %v, want [1 4]", res.FrontierPerHop)
	}
	if res.Affected != 4 {
		t.Errorf("affected = %d, want 4", res.Affected)
	}
}

func TestPaperFigure4FeatureUpdate(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// First add E→A (as in Fig. 3), then update E's feature 5→7.
	if _, err := r.ApplyBatch([]Update{{Kind: EdgeAdd, U: 4, V: 0, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	res, err := r.ApplyBatch([]Update{{Kind: FeatureUpdate, U: 4, Features: tensor.Vector{7}}})
	if err != nil {
		t.Fatal(err)
	}
	// h1_A: 5→7. h2_{B,C,D}: 5→7. h2_A = h1_E = 6 — UNCHANGED, because
	// GraphConv has no self term and E's h1 does not depend on its own
	// feature. h2_A must not even be recomputed (not in hop-2 frontier).
	if got := r.Embeddings().H[1][0][0]; got != 7 {
		t.Errorf("h1_A = %v, want 7", got)
	}
	for _, u := range []int{1, 2, 3} {
		if got := r.Embeddings().H[2][u][0]; got != 7 {
			t.Errorf("h2[%d] = %v, want 7", u, got)
		}
	}
	if got := r.Embeddings().H[2][0][0]; got != 6 {
		t.Errorf("h2_A = %v, want 6 (unchanged)", got)
	}
	if res.FrontierPerHop[0] != 1 || res.FrontierPerHop[1] != 3 {
		t.Errorf("frontier per hop = %v, want [1 3]", res.FrontierPerHop)
	}
}

func TestEdgeAddThenDeleteRestoresStateExactly(t *testing.T) {
	// With integer-valued identity-sum arithmetic, add followed by delete
	// must restore every embedding bit-for-bit: the delta messages cancel.
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	before := emb.Clone()
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyBatch([]Update{{Kind: EdgeAdd, U: 4, V: 0, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyBatch([]Update{{Kind: EdgeDelete, U: 4, V: 0}}); err != nil {
		t.Fatal(err)
	}
	if d := r.Embeddings().MaxAbsDiff(before); d != 0 {
		t.Errorf("add+delete left residue %v", d)
	}
	if r.Graph().HasEdge(4, 0) {
		t.Error("edge still present after delete")
	}
}

func TestAddAndDeleteInSameBatchIsNoOp(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	before := emb.Clone()
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Update{
		{Kind: EdgeAdd, U: 4, V: 0, Weight: 1},
		{Kind: EdgeDelete, U: 4, V: 0},
	}
	if _, err := r.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d := r.Embeddings().MaxAbsDiff(before); d != 0 {
		t.Errorf("intra-batch add+delete left residue %v", d)
	}
}

// --- batching invariances ---

func TestBatchOrderInvariance(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 9}
	w := newTestWorld(t, spec, 40, 150, 53)
	batch := w.randomBatch(12)

	run := func(b []Update) *gnn.Embeddings {
		w2 := newTestWorld(t, spec, 40, 150, 53) // identical initial state
		g, emb := w2.bootstrap()
		r, err := NewRipple(g, w2.model, emb, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		return r.Embeddings()
	}

	base := run(batch)
	perm := make([]Update, len(batch))
	copy(perm, batch)
	rand.New(rand.NewSource(3)).Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	// Only compare when the permutation remains valid (no add/delete of
	// the same edge reordered); our generator produces distinct targets,
	// so it is.
	got := run(perm)
	if d := base.MaxAbsDiff(got); d > 1e-4 {
		t.Errorf("batch permutation changed embeddings by %v", d)
	}
}

func TestSingleVsBatchedApplication(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphConv, Agg: gnn.AggMean, Dims: []int{5, 6, 4}, Seed: 10}
	w1 := newTestWorld(t, spec, 40, 150, 59)
	batch := w1.randomBatch(10)

	w2 := newTestWorld(t, spec, 40, 150, 59)
	g1, emb1 := w2.bootstrap()
	rBatched, err := NewRipple(g1, w2.model, emb1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rBatched.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}

	w3 := newTestWorld(t, spec, 40, 150, 59)
	g2, emb2 := w3.bootstrap()
	rSingle, err := NewRipple(g2, w3.model, emb2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range batch {
		if _, err := rSingle.ApplyBatch([]Update{u}); err != nil {
			t.Fatal(err)
		}
	}
	if d := rBatched.Embeddings().MaxAbsDiff(rSingle.Embeddings()); d > 1e-4 {
		t.Errorf("batched vs one-at-a-time differ by %v", d)
	}
}

// --- pruning ablation stays exact ---

func TestPruneZeroDeltasStaysExact(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GraphSAGE, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 12}
	w := newTestWorld(t, spec, 40, 150, 61)
	g, emb := w.bootstrap()
	r, err := NewRipple(g, w.model, emb, Config{PruneZeroDeltas: true})
	if err != nil {
		t.Fatal(err)
	}
	for batchNum := 0; batchNum < 6; batchNum++ {
		batch := w.randomBatch(6)
		if _, err := r.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		truth := w.groundTruth()
		if d := r.Embeddings().MaxAbsDiff(truth); d > embTol {
			t.Fatalf("batch %d: pruned Ripple drifted by %v", batchNum, d)
		}
	}
}

// --- affected-set agreement across strategies ---

func TestAffectedCountsAgreeAcrossStrategies(t *testing.T) {
	spec := gnn.Spec{Kind: gnn.GINConv, Agg: gnn.AggSum, Dims: []int{5, 6, 4}, Seed: 13}
	wA := newTestWorld(t, spec, 50, 250, 67)
	batches := make([][]Update, 5)
	for i := range batches {
		batches[i] = wA.randomBatch(5)
	}

	build := func() (*Ripple, *RC) {
		w := newTestWorld(t, spec, 50, 250, 67)
		g1, e1 := w.bootstrap()
		r, err := NewRipple(g1, w.model, e1, Config{})
		if err != nil {
			t.Fatal(err)
		}
		g2, e2 := w.bootstrap()
		rc, err := NewRC(g2, w.model, e2, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return r, rc
	}
	r, rc := build()
	for i, b := range batches {
		resR, err := r.ApplyBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		resRC, err := rc.ApplyBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if resR.Affected != resRC.Affected {
			t.Errorf("batch %d: affected Ripple=%d RC=%d", i, resR.Affected, resRC.Affected)
		}
		for l := range resR.FrontierPerHop {
			if resR.FrontierPerHop[l] != resRC.FrontierPerHop[l] {
				t.Errorf("batch %d hop %d: frontier Ripple=%d RC=%d",
					i, l, resR.FrontierPerHop[l], resRC.FrontierPerHop[l])
			}
		}
		// The headline benefit analysis (§4.3.3): Ripple performs
		// incremental work proportional to changed in-neighbours, RC to
		// all in-neighbours. On any non-trivial batch RC must pull at
		// least as many embeddings as Ripple sends messages.
		if resRC.VectorOps < resR.VectorOps/4 {
			t.Errorf("batch %d: suspicious op counts RC=%d Ripple=%d", i, resRC.VectorOps, resR.VectorOps)
		}
	}
}

// --- validation and error paths ---

func TestApplyBatchValidation(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	before := emb.Clone()
	r, err := NewRipple(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name  string
		batch []Update
	}{
		{"add existing edge", []Update{{Kind: EdgeAdd, U: 0, V: 1, Weight: 1}}},
		{"delete missing edge", []Update{{Kind: EdgeDelete, U: 1, V: 0}}},
		{"source out of range", []Update{{Kind: EdgeAdd, U: 99, V: 0, Weight: 1}}},
		{"sink out of range", []Update{{Kind: EdgeAdd, U: 0, V: -1, Weight: 1}}},
		{"bad feature width", []Update{{Kind: FeatureUpdate, U: 0, Features: tensor.Vector{1, 2}}}},
		{"unknown kind", []Update{{Kind: UpdateKind(99), U: 0}}},
		{"double add same edge in batch", []Update{
			{Kind: EdgeAdd, U: 4, V: 0, Weight: 1},
			{Kind: EdgeAdd, U: 4, V: 0, Weight: 1},
		}},
		{"delete after intra-batch delete", []Update{
			{Kind: EdgeDelete, U: 0, V: 1},
			{Kind: EdgeDelete, U: 0, V: 1},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := r.ApplyBatch(tt.batch); !errors.Is(err, ErrBadUpdate) {
				t.Fatalf("err = %v, want ErrBadUpdate", err)
			}
			if d := r.Embeddings().MaxAbsDiff(before); d != 0 {
				t.Fatalf("state mutated by rejected batch (diff %v)", d)
			}
		})
	}

	// Valid intra-batch sequences must pass: delete then re-add.
	okBatch := []Update{
		{Kind: EdgeDelete, U: 0, V: 1},
		{Kind: EdgeAdd, U: 0, V: 1, Weight: 1},
	}
	if _, err := r.ApplyBatch(okBatch); err != nil {
		t.Fatalf("valid delete-then-add rejected: %v", err)
	}
}

func TestNewRippleValidation(t *testing.T) {
	g := graph.New(3)
	m := identitySum(2)
	wrongEmb := gnn.NewEmbeddings(5, m.Dims)
	if _, err := NewRipple(g, m, wrongEmb, Config{}); err == nil {
		t.Error("expected error for vertex-count mismatch")
	}
	wrongDims := gnn.NewEmbeddings(3, []int{1, 1})
	if _, err := NewRipple(g, m, wrongDims, Config{}); err == nil {
		t.Error("expected error for dims mismatch")
	}
}

func TestStrategyNames(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewRipple(g.Clone(), m, emb.Clone(), Config{})
	rc, _ := NewRC(g.Clone(), m, emb.Clone(), Config{})
	drc, _ := NewDRC(g.Clone(), m, emb.Clone(), Config{})
	labels := make([]int32, 6)
	dnc, _ := NewDNC(g.Clone(), m, x, labels, Config{})
	if r.Name() != "Ripple" || rc.Name() != "RC" || drc.Name() != "DRC" || dnc.Name() != "DNC" {
		t.Error("strategy names wrong")
	}
	if NewAccel(drc, DefaultAccelModel).Name() != "DRG" {
		t.Error("DRC accel name should be DRG")
	}
	if NewAccel(dnc, DefaultAccelModel).Name() != "DNG" {
		t.Error("DNC accel name should be DNG")
	}
	if NewAccel(rc, DefaultAccelModel).Name() != "RC+accel" {
		t.Error("generic accel name wrong")
	}
}

func TestAccelSimulatedTime(t *testing.T) {
	g, x := paperGraph(t)
	m := identitySum(2)
	emb, err := gnn.Forward(g, m, x)
	if err != nil {
		t.Fatal(err)
	}
	drc, err := NewDRC(g, m, emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAccel(drc, DefaultAccelModel)
	res, err := a.ApplyBatch([]Update{{Kind: EdgeAdd, U: 4, V: 0, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Error("accel result missing simulated time")
	}
	if res.Total() != res.UpdateTime+res.SimulatedTime {
		t.Error("Total should use simulated propagate time for accel strategies")
	}
	// Launch overhead must be charged.
	if res.SimulatedTime < DefaultAccelModel.TransferOverhead {
		t.Error("simulated time below transfer overhead")
	}
}

func TestUpdateKindStringAndSource(t *testing.T) {
	if EdgeAdd.String() != "edge-add" || EdgeDelete.String() != "edge-delete" || FeatureUpdate.String() != "feature-update" {
		t.Error("UpdateKind names wrong")
	}
	u := Update{Kind: EdgeAdd, U: 3, V: 7}
	if u.Source() != 3 {
		t.Error("Source should be hop-0 vertex U")
	}
}

func TestVecTable(t *testing.T) {
	vt := newVecTable(10, 3)
	v := vt.Get(5)
	if !v.IsZero() || vt.Len() != 1 || !vt.Has(5) || vt.Has(4) {
		t.Error("Get/Has/Len wrong")
	}
	v[0] = 7
	if vt.Get(5)[0] != 7 {
		t.Error("second Get should return same vector")
	}
	vt.Get(2)
	vt.Get(8)
	got := vt.SortedTouched()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 8 {
		t.Errorf("SortedTouched = %v", got)
	}
	vt.Reset()
	if vt.Len() != 0 || vt.Has(5) || vt.Lookup(5) != nil {
		t.Error("Reset incomplete")
	}
	// Pool reuse must hand back zeroed vectors.
	if !vt.Get(1).IsZero() {
		t.Error("pooled vector not zeroed")
	}
}
