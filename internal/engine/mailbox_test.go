package engine

import (
	"math/rand"
	"sort"
	"testing"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

func TestResolveShards(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {7, 8}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		if got := resolveShards(tc.in); got != tc.want {
			t.Errorf("resolveShards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// 0 and negatives default from GOMAXPROCS: just require a power of two ≥ 1.
	for _, in := range []int{0, -3} {
		got := resolveShards(in)
		if got < 1 || got&(got-1) != 0 {
			t.Errorf("resolveShards(%d) = %d, want a power of two", in, got)
		}
	}
}

// TestShardedMailboxRangeSharding checks the shard map is a monotone
// partition of the ID space into [0, shards), so that per-shard sorted
// touched lists concatenate into a globally sorted frontier.
func TestShardedMailboxRangeSharding(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 9, 100, 4096, 100_000} {
		for _, shards := range []int{1, 2, 8, 64} {
			m := newShardedMailbox(n, 4, shards)
			prev := 0
			for v := 0; v < n; v++ {
				s := m.shardOf(graph.VertexID(v))
				if s < 0 || s >= shards {
					t.Fatalf("n=%d shards=%d: shardOf(%d) = %d out of range", n, shards, v, s)
				}
				if s < prev {
					t.Fatalf("n=%d shards=%d: shardOf(%d) = %d < shardOf(%d) = %d", n, shards, v, s, v-1, prev)
				}
				prev = s
			}
		}
	}
}

// TestShardedMailboxFrontierSortedAndReset exercises the vecTable-shaped
// contract the propagate loop relies on: Get-once semantics, a globally
// sorted frontier, and Reset recycling zeroed vectors.
func TestShardedMailboxFrontierSortedAndReset(t *testing.T) {
	const n, width = 1000, 3
	m := newShardedMailbox(n, width, 8)
	rng := rand.New(rand.NewSource(2))
	want := map[graph.VertexID]bool{}
	for i := 0; i < 300; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := m.Get(u)
		if !want[u] && !v.IsZero() {
			t.Fatalf("first Get(%d) returned non-zero vector %v", u, v)
		}
		v[0]++ // mark
		want[u] = true
	}
	if m.Len() != len(want) {
		t.Fatalf("Len = %d, want %d distinct", m.Len(), len(want))
	}
	frontier := m.Frontier(nil, false)
	if !sort.SliceIsSorted(frontier, func(i, j int) bool { return frontier[i] < frontier[j] }) {
		t.Fatalf("frontier not globally sorted: %v", frontier)
	}
	if len(frontier) != len(want) {
		t.Fatalf("frontier has %d vertices, want %d", len(frontier), len(want))
	}
	for _, u := range frontier {
		if !want[u] {
			t.Fatalf("frontier contains untouched vertex %d", u)
		}
		if got := m.Lookup(u); got == nil || got[0] == 0 {
			t.Fatalf("Lookup(%d) = %v after deposits", u, got)
		}
	}
	m.Reset(false)
	if m.Len() != 0 {
		t.Fatalf("Len = %d after Reset", m.Len())
	}
	for _, u := range frontier {
		if m.Lookup(u) != nil {
			t.Fatalf("Lookup(%d) non-nil after Reset", u)
		}
	}
	// Recycled vectors come back zeroed.
	if v := m.Get(frontier[0]); !v.IsZero() {
		t.Fatalf("pooled vector not zeroed: %v", v)
	}
}

// TestShardedMailboxGrow checks vertex addition keeps every ID inside the
// shard range, including across the range-doubling boundary.
func TestShardedMailboxGrow(t *testing.T) {
	m := newShardedMailbox(8, 2, 4) // exactly 2 IDs per shard
	for i := 0; i < 100; i++ {
		m.Grow()
		last := graph.VertexID(len(m.slots) - 1)
		if s := m.shardOf(last); s < 0 || s >= m.shards {
			t.Fatalf("after grow to %d: shardOf(%d) = %d out of [0,%d)", len(m.slots), last, s, m.shards)
		}
	}
	// The mailbox still works end to end after regrowth.
	m.Get(graph.VertexID(len(m.slots) - 1))
	m.Get(0)
	if f := m.Frontier(nil, true); len(f) != 2 || f[0] != 0 {
		t.Fatalf("frontier after grow = %v", f)
	}
}

// TestMergeLogsReplaysInGlobalOrder deposits the same message sequence
// serially and via worker logs split at an arbitrary boundary, and
// requires bit-identical slot contents — the determinism contract of
// DESIGN.md §3.1 at the unit level.
func TestMergeLogsReplaysInGlobalOrder(t *testing.T) {
	const n, width, shards = 64, 5, 4
	rng := rand.New(rand.NewSource(7))
	type dep struct {
		sink  graph.VertexID
		coeff float32
		vec   tensor.Vector
	}
	var deps []dep
	for i := 0; i < 500; i++ {
		vec := tensor.NewVector(width)
		for j := range vec {
			vec[j] = rng.Float32()*2 - 1
		}
		deps = append(deps, dep{graph.VertexID(rng.Intn(n)), rng.Float32() + 0.1, vec})
	}

	serial := newShardedMailbox(n, width, shards)
	for _, d := range deps {
		serial.Get(d.sink).AXPY(d.coeff, d.vec)
	}

	merged := newShardedMailbox(n, width, shards)
	var bufs []*scatterBuf
	cuts := []int{0, 137, 137, 400, len(deps)} // uneven slices, one empty worker
	for w := 0; w+1 < len(cuts); w++ {
		buf := &scatterBuf{}
		buf.reset(shards)
		for _, d := range deps[cuts[w]:cuts[w+1]] {
			buf.push(merged.shardOf(d.sink), message{sink: d.sink, coeff: d.coeff, vec: d.vec})
		}
		bufs = append(bufs, buf)
	}
	merged.mergeLogs(bufs, len(bufs))

	for v := 0; v < n; v++ {
		a, b := serial.Lookup(graph.VertexID(v)), merged.Lookup(graph.VertexID(v))
		if (a == nil) != (b == nil) {
			t.Fatalf("vertex %d: touched mismatch (serial %v, merged %v)", v, a != nil, b != nil)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d[%d]: serial %x, merged %x — accumulation order diverged", v, i, a[i], b[i])
			}
		}
	}
}

// TestValidateBatchPureFeatureStreamAllocatesNoOverlay pins the satellite
// fix: a batch with no structural updates must not allocate the
// intra-batch overlay map (or anything else) per call.
func TestValidateBatchPureFeatureStreamAllocatesNoOverlay(t *testing.T) {
	g := graph.New(16)
	feat := tensor.NewVector(4)
	batch := make([]Update, 64)
	for i := range batch {
		batch[i] = Update{Kind: FeatureUpdate, U: graph.VertexID(i % 16), Features: feat}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := validateBatch(g, 4, batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("pure feature batch: %v allocs per validateBatch, want 0", allocs)
	}
}

// TestValidateBatchOverlayStillCatchesIntraBatchConflicts makes sure the
// lazy overlay did not weaken validation of mixed batches.
func TestValidateBatchOverlayStillCatchesIntraBatchConflicts(t *testing.T) {
	g := graph.New(4)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Double-add of the same edge inside one batch must be rejected even
	// though the live graph does not contain it.
	err := validateBatch(g, 2, []Update{
		{Kind: EdgeAdd, U: 2, V: 3, Weight: 1},
		{Kind: EdgeAdd, U: 2, V: 3, Weight: 1},
	})
	if err == nil {
		t.Fatal("intra-batch duplicate edge-add validated")
	}
	// Delete-then-re-add of a live edge is legal only through the overlay.
	err = validateBatch(g, 2, []Update{
		{Kind: EdgeDelete, U: 0, V: 1},
		{Kind: EdgeAdd, U: 0, V: 1, Weight: 2},
	})
	if err != nil {
		t.Fatalf("delete-then-re-add rejected: %v", err)
	}
}
