package engine

import (
	"errors"
	"sync"
	"time"
)

// Batcher accumulates a continuous update stream and flushes it to a
// strategy when either a size threshold or a latency deadline is reached —
// the dynamic-batching extension the paper sketches in §4.1/§8 ("pick a
// dynamic batch size based on an elapsed time-period or latency
// deadlines"). The batch-size/latency trade-off of Fig. 9 becomes a
// policy: MaxSize bounds throughput-oriented batching, MaxDelay bounds the
// staleness of any single update.
type Batcher struct {
	strategy Strategy
	maxSize  int
	maxDelay time.Duration
	onBatch  func(BatchResult, error)

	mu       sync.Mutex
	buf      []Update
	timer    *time.Timer
	closed   bool
	flushSem chan struct{} // bounds concurrent ApplyBatch calls (default 1)
}

// ErrBatcherClosed is returned by Submit after Close.
var ErrBatcherClosed = errors.New("engine: batcher closed")

// NewBatcher wraps a strategy. maxSize <= 0 means unlimited (deadline
// only); maxDelay <= 0 means no deadline (size only); at least one must be
// set. onBatch receives every flush result (may be called from the timer
// goroutine) and must not call back into the Batcher.
func NewBatcher(s Strategy, maxSize int, maxDelay time.Duration, onBatch func(BatchResult, error)) (*Batcher, error) {
	if maxSize <= 0 && maxDelay <= 0 {
		return nil, errors.New("engine: batcher needs a size threshold or a deadline")
	}
	if onBatch == nil {
		onBatch = func(BatchResult, error) {}
	}
	return &Batcher{
		strategy: s,
		maxSize:  maxSize,
		maxDelay: maxDelay,
		onBatch:  onBatch,
		flushSem: make(chan struct{}, 1),
	}, nil
}

// SetMaxConcurrentFlushes bounds how many ApplyBatch calls may run at
// once. The default is 1: strategies are not concurrency-safe, and with
// n > 1 two flushes touching the same vertex can apply out of submission
// order — only raise it for strategies that tolerate both (e.g. a sharded
// or commutative apply). n < 1 is clamped to 1. Call it before the first
// Submit; changing the bound while flushes are in flight only affects
// flushes that start afterwards.
func (b *Batcher) SetMaxConcurrentFlushes(n int) {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	b.flushSem = make(chan struct{}, n)
	b.mu.Unlock()
}

// Submit enqueues one update, flushing if the size threshold is reached.
// The first update of a batch arms the deadline timer.
func (b *Batcher) Submit(u Update) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBatcherClosed
	}
	b.buf = append(b.buf, u)
	if b.maxSize > 0 && len(b.buf) >= b.maxSize {
		batch := b.take()
		b.mu.Unlock()
		b.apply(batch)
		return nil
	}
	if b.maxDelay > 0 && b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, b.deadlineFlush)
	}
	b.mu.Unlock()
	return nil
}

// SubmitAll enqueues a slice of updates atomically: either every update is
// buffered or (if the batcher is closed) none is — a caller never has to
// reason about a partially-enqueued prefix. The whole slice is appended
// under one lock hold, so no flush can interleave mid-slice; if the size
// threshold is crossed the combined buffer flushes as one batch.
func (b *Batcher) SubmitAll(updates []Update) error {
	if len(updates) == 0 {
		return nil
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBatcherClosed
	}
	b.buf = append(b.buf, updates...)
	if b.maxSize > 0 && len(b.buf) >= b.maxSize {
		batch := b.take()
		b.mu.Unlock()
		b.apply(batch)
		return nil
	}
	if b.maxDelay > 0 && b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, b.deadlineFlush)
	}
	b.mu.Unlock()
	return nil
}

// take detaches the pending buffer and disarms the timer. Caller holds mu.
func (b *Batcher) take() []Update {
	batch := b.buf
	b.buf = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// deadlineFlush fires on the staleness deadline.
func (b *Batcher) deadlineFlush() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.timer = nil
	batch := b.take()
	b.mu.Unlock()
	b.apply(batch)
}

// Flush forces the pending updates out immediately.
func (b *Batcher) Flush() {
	b.mu.Lock()
	batch := b.take()
	b.mu.Unlock()
	b.apply(batch)
}

// Close flushes the remainder and rejects further submissions.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.take()
	b.mu.Unlock()
	b.apply(batch)
}

// Pending returns the number of buffered updates.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

func (b *Batcher) apply(batch []Update) {
	if len(batch) == 0 {
		return
	}
	b.mu.Lock()
	sem := b.flushSem
	b.mu.Unlock()
	sem <- struct{}{}
	res, err := b.strategy.ApplyBatch(batch)
	<-sem
	b.onBatch(res, err)
}
