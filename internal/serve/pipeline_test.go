package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ripple/internal/engine"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// featUpdate builds an always-valid single-vertex feature update (feature
// updates commute at the validation level: any interleaving of them is
// admissible, which is what a concurrency test needs).
func featUpdate(v, gor, it int) engine.Update {
	f := make(tensor.Vector, 6) // conf-world model input dim
	for c := range f {
		f[c] = float32(gor+1)*0.125 + float32(it)*0.01 + float32(c)*0.001
	}
	return engine.Update{Kind: engine.FeatureUpdate, U: graph.VertexID(v), Features: f}
}

// TestPipelinedConcurrentSubmitters hammers the staged admission pipeline
// with many synchronous submitters under the race detector and pins the
// pipeline's user-visible contract:
//
//   - every valid batch is admitted exactly once: final epoch, applied-batch
//     count and WAL append count all equal the number of successful Applies;
//   - acks respect epoch order: after a submitter's k-th Apply returns, the
//     published epoch is at least k (durability-before-visibility means the
//     ack can only trail the publish);
//   - invalid batches are rejected without consuming an epoch or leaving a
//     WAL record, even when racing valid admissions;
//   - a graceful close then reopen recovers the exact final state with zero
//     replay (nothing was acked that was not durable).
func TestPipelinedConcurrentSubmitters(t *testing.T) {
	const (
		goroutines = 8
		perG       = 16
		badApplies = 10
	)
	w := newDurWorld(t, 40, 160, 1, 1, 131)
	dir := t.TempDir()
	srv, err := Open(w.engineLoader(), Config{DataDir: dir, Fsync: true, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := srv.Apply([]engine.Update{featUpdate((g*7+i)%40, g, i)}); err != nil {
					errc <- fmt.Errorf("goroutine %d apply %d: %w", g, i, err)
					return
				}
				// Ack-ordering invariant: my k-th ack implies epoch >= k.
				if ep := srv.Stats().Epoch; ep < uint64(i+1) {
					errc <- fmt.Errorf("goroutine %d: epoch %d after %d acks", g, ep, i+1)
					return
				}
			}
		}(g)
	}
	// One adversarial submitter races wrong-width feature updates (an
	// ErrBadUpdate-class rejection) against the valid stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < badApplies; i++ {
			bad := engine.Update{Kind: engine.FeatureUpdate, U: graph.VertexID(i % 40), Features: tensor.Vector{1, 2}}
			if _, err := srv.Apply([]engine.Update{bad}); !errors.Is(err, engine.ErrBadUpdate) {
				errc <- fmt.Errorf("bad apply %d: err = %v, want ErrBadUpdate", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := srv.Stats()
	const want = goroutines * perG
	if st.Epoch != want || st.Batches != want {
		t.Fatalf("epoch %d, batches %d, want %d", st.Epoch, st.Batches, want)
	}
	if st.Rejected != badApplies {
		t.Fatalf("rejected %d, want %d", st.Rejected, badApplies)
	}
	if st.WALAppends != want {
		t.Fatalf("wal appends %d, want %d (rejections must not log)", st.WALAppends, want)
	}
	if st.WALFsyncs > st.WALAppends {
		t.Fatalf("wal fsyncs %d > appends %d", st.WALFsyncs, st.WALAppends)
	}

	final := srv.Snapshot()
	srv.Close()

	rsrv, err := Open(w.engineLoader(), Config{DataDir: dir, Fsync: true, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	if n := rsrv.Stats().RecoveredBatches; n != 0 {
		t.Fatalf("graceful close reopened with %d replayed batches, want 0", n)
	}
	assertBitIdentical(t, rsrv.Snapshot(), final, "reopen after concurrent run")
}

// TestSlowCheckpointDoesNotBlockAdmission is the stall regression test:
// with the checkpoint's file write artificially blocked, admission must
// keep applying and publishing batches — on the old serial path the
// in-line automatic checkpoint held the write lock for its whole duration,
// so a stuck disk froze every writer.
func TestSlowCheckpointDoesNotBlockAdmission(t *testing.T) {
	w := newDurWorld(t, 40, 160, 24, 3, 137)
	dir := t.TempDir()
	srv, err := Open(w.engineLoader(), Config{DataDir: dir, CheckpointEvery: 2, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	orig := srv.writeCkpt
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	srv.writeCkpt = func(path string, data []byte) error {
		once.Do(func() { close(entered) })
		<-gate
		return orig(path, data)
	}

	for _, b := range w.batches[:2] {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("automatic checkpoint never reached its file write")
	}

	// The checkpoint is wedged in its file write, holding ckptMu but no
	// server lock. Every remaining batch must admit, apply and publish.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, b := range w.batches[2:] {
			if _, err := srv.Apply(b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("admission stalled behind a slow checkpoint")
	}
	st := srv.Stats()
	if st.Epoch != uint64(len(w.batches)) {
		t.Fatalf("epoch %d with checkpoint wedged, want %d", st.Epoch, len(w.batches))
	}
	if st.LastCheckpointEpoch != 0 {
		t.Fatalf("checkpoint completed at epoch %d despite blocked writer", st.LastCheckpointEpoch)
	}

	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().LastCheckpointEpoch == 0 {
		if time.Now().After(deadline) {
			t.Fatal("released checkpoint never completed")
		}
		time.Sleep(time.Millisecond)
	}

	final := srv.Snapshot()
	srv.Close()
	rsrv, err := Open(w.engineLoader(), Config{DataDir: dir, CheckpointEvery: 2, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	assertBitIdentical(t, rsrv.Snapshot(), final, "reopen after wedged checkpoint")
}

// TestPipelineValidatesAgainstInflightTail pins compositional admission:
// a batch that conflicts with an admitted-but-not-yet-applied batch is
// rejected at admission time, not replayed-and-rejected after a crash.
// (Crash equivalence depends on the WAL holding only admissible batches.)
func TestPipelineValidatesAgainstInflightTail(t *testing.T) {
	w := newDurWorld(t, 40, 160, 1, 1, 139)
	srv, err := Open(w.engineLoader(), Config{DataDir: t.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Find a non-edge to add.
	var u, v graph.VertexID
	add := engine.Update{}
search:
	for a := 0; a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			u, v = graph.VertexID(a), graph.VertexID(b)
			add = engine.Update{Kind: engine.EdgeAdd, U: u, V: v, Weight: 0.5}
			if err := srv.backend.(validatingBackend).ValidateBatch([]engine.Update{add}); err == nil {
				break search
			}
		}
	}

	// White-box: with the edge add sitting in the in-flight tail, admitting
	// it again must reject — validation composes the tail over the
	// published topology. An unrelated feature update stays admissible.
	srv.mu.Lock()
	srv.pendingUpd = append(srv.pendingUpd, add)
	dupErr := srv.validateInflightLocked([]engine.Update{add})
	okErr := srv.validateInflightLocked([]engine.Update{featUpdate(int(u), 0, 0)})
	srv.pendingUpd = srv.pendingUpd[:0]
	srv.mu.Unlock()
	if !errors.Is(dupErr, engine.ErrBadUpdate) {
		t.Fatalf("duplicate over in-flight tail = %v, want ErrBadUpdate", dupErr)
	}
	if okErr != nil {
		t.Fatalf("independent update over in-flight tail = %v, want nil", okErr)
	}

	// End to end: two racing admissions of the same edge add. Exactly one
	// may win — whichever admits second is rejected (against the tail if
	// the first is still in flight, against the published state otherwise)
	// and, critically, never reaches the WAL.
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = srv.Apply([]engine.Update{add})
		}(i)
	}
	wg.Wait()
	okN, dupN := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			okN++
		case errors.Is(err, engine.ErrBadUpdate):
			dupN++
		default:
			t.Fatalf("racing edge add: unexpected error %v", err)
		}
	}
	if okN != 1 || dupN != 1 {
		t.Fatalf("racing duplicate adds: %d accepted, %d rejected, want 1 and 1", okN, dupN)
	}
	st := srv.Stats()
	if st.Epoch != 1 || st.WALAppends != 1 {
		t.Fatalf("epoch %d, wal appends %d after duplicate rejection, want 1, 1", st.Epoch, st.WALAppends)
	}
}
