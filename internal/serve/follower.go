package serve

// Follower is the replica side of leader→replica replication: a read-only
// serving process that maintains its own paged copy-on-write snapshots
// from the leader's streamed delta frames, without ever running
// propagation. It owns a Publisher — the same epoch-publication/read half
// the leader serves from — so replica reads get identical semantics:
// lock-free, pinnable, repeatable at an epoch watermark.
//
// Catch-up is layered exactly like the leader's own recovery:
//
//  1. newest local checkpoint (a snapshot frame under the serve
//     checkpoint envelope) bootstraps the tables at its epoch;
//  2. the local WAL tail — raw delta-frame bytes, appended before each
//     apply — replays the epochs after it (wal.TailReader);
//  3. the live session resumes from the resulting watermark: the leader
//     either backfills from its in-memory log or, if the follower is too
//     far behind, resyncs it with a full snapshot frame.
//
// Application is exactly-once by epoch arithmetic: a frame at or below
// the watermark is a duplicate (dropped), watermark+1 applies, anything
// further ahead is a desync (session ends; reconnecting re-negotiates).
// If the leader dies, the follower keeps serving its last published epoch
// and redials until the leader returns.

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/graph"
	"ripple/internal/obs"
	"ripple/internal/tensor"
	"ripple/internal/transport"
	"ripple/internal/wal"
)

// FollowerConfig tunes a Follower. Leader is required; the zero value of
// everything else gets sensible defaults.
type FollowerConfig struct {
	// Leader is the leader's replication listener address (the
	// StartReplication / rippleserve -replicate-addr endpoint).
	Leader string
	// PageRows is the page granularity of the replica's snapshot tables
	// (same semantics as Config.PageRows). Default 256.
	PageRows int

	// DataDir, when set, makes the follower durable: applied delta frames
	// are written ahead to a local WAL and snapshot checkpoints replace
	// the log periodically, so a restarted follower catches up from disk
	// instead of a full leader resync.
	DataDir string
	// Fsync syncs the follower's WAL after every applied frame.
	Fsync bool
	// CheckpointEvery takes an automatic local checkpoint after this many
	// applied frames. 0 defaults to 1024; negative disables automatic
	// checkpoints.
	CheckpointEvery int
	// SegmentBytes is the follower WAL's rotation threshold (default 4 MiB).
	SegmentBytes int64

	// DialTimeout bounds each leader dial (default 5s); RetryEvery is the
	// redial backoff after a failed dial or a dead session (default 250ms).
	DialTimeout time.Duration
	RetryEvery  time.Duration

	// Logger receives the follower's structured operational logs —
	// session churn, snapshot resyncs, recovery. Nil discards them.
	Logger *slog.Logger
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.PageRows <= 0 {
		c.PageRows = defaultPageRows
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1024
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 250 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// FollowerStats is a point-in-time counter snapshot of a Follower.
type FollowerStats struct {
	Epoch       uint64 `json:"epoch"`        // newest locally published epoch
	LeaderEpoch uint64 `json:"leader_epoch"` // newest epoch the leader has reported
	LagEpochs   uint64 `json:"lag_epochs"`   // LeaderEpoch - Epoch (0 when caught up)
	Connected   bool   `json:"connected"`    // a live session to the leader exists
	Ready       bool   `json:"ready"`        // a snapshot has been published (reads serve)

	FramesApplied   int64 `json:"frames_applied"`   // delta frames applied (all sessions)
	RowsApplied     int64 `json:"rows_applied"`     // changed rows applied
	SnapshotResyncs int64 `json:"snapshot_resyncs"` // full-snapshot installs over existing state
	Sessions        int64 `json:"sessions"`         // leader sessions established
	RecoveredFrames int64 `json:"recovered_frames"` // frames replayed from the local WAL at start

	Reads       int64 `json:"reads"`        // explicit Snapshot() pins served
	PagesCopied int64 `json:"pages_copied"` // snapshot pages copy-on-written
	PagesShared int64 `json:"pages_shared"` // snapshot pages shared across publishes

	// Durability counters (zero for a non-durable follower).
	WALBytes            int64  `json:"wal_bytes"`
	WALSegments         int    `json:"wal_segments"`
	WALAppends          uint64 `json:"wal_appends"`
	WALFsyncs           uint64 `json:"wal_fsyncs"`
	LastCheckpointEpoch uint64 `json:"last_checkpoint_epoch"`

	// Replication-link traffic: transport stream counters summed over
	// completed sessions plus the live one.
	WireBytesIn  int64 `json:"wire_bytes_in"`
	WireBytesOut int64 `json:"wire_bytes_out"`
	WireMsgsIn   int64 `json:"wire_msgs_in"`
	WireMsgsOut  int64 `json:"wire_msgs_out"`

	// FrameApplyHist is the full bucket vector of per-frame apply time
	// (decode + WAL append + publish), power-of-two-ns buckets — the
	// follower-side analogue of the leader's apply histogram.
	FrameApplyHist obs.HistSnapshot `json:"frame_apply_hist"`
}

// Follower follows a replication leader. Build with Follow; reads are
// safe from any goroutine the moment Ready() closes (or immediately — a
// not-yet-ready follower just misses: Label -1, Snapshot nil).
type Follower struct {
	cfg FollowerConfig
	pub *Publisher

	// mu serialises state transitions: frame application, snapshot
	// installs, checkpoints, the live-stream handle, close. The read path
	// never takes it.
	mu        sync.Mutex
	wal       *wal.Log
	hasCkpt   bool
	sinceCkpt int
	stream    *transport.Stream // live session, severed by Close
	rowBuf    []Row             // apply scratch
	labBuf    []int32           // checkpoint scratch
	logBuf    []float32

	closed    chan struct{}
	closeOnce sync.Once
	ready     chan struct{}
	readyOnce sync.Once
	wg        sync.WaitGroup

	connected   atomic.Bool
	leaderEpoch atomic.Uint64
	frames      atomic.Int64
	rows        atomic.Int64
	resyncs     atomic.Int64
	sessions    atomic.Int64
	recovered   atomic.Int64
	lastCkpt    atomic.Uint64

	// Wire-traffic counters of completed sessions; the live stream's
	// counters are added on top in Stats.
	wireSent     atomic.Int64
	wireRecv     atomic.Int64
	wireMsgsSent atomic.Int64
	wireMsgsRecv atomic.Int64

	frameApplyH obs.LatencyHist
	log         *slog.Logger
	metricsOnce sync.Once
	metrics     *obs.Registry
}

// Follow builds a follower: recover whatever DataDir holds (checkpoint +
// WAL tail), then keep a session to the leader, applying live frames. It
// returns once local recovery is complete; catching up to the leader
// happens in the background (wait on Ready for the first served epoch).
func Follow(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" {
		return nil, errors.New("serve: FollowerConfig.Leader is required")
	}
	cfg = cfg.withDefaults()
	f := &Follower{
		cfg:    cfg,
		pub:    NewPublisher(cfg.PageRows),
		closed: make(chan struct{}),
		ready:  make(chan struct{}),
		log:    cfg.Logger,
	}
	if cfg.DataDir != "" {
		if err := f.recover(); err != nil {
			if f.wal != nil {
				f.wal.Close()
			}
			return nil, err
		}
		if n := f.recovered.Load(); n > 0 {
			f.log.Info("follower recovered from local wal", "component", "follower", "frames", n, "epoch", f.pub.Current().epoch)
		}
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// recover loads the newest local checkpoint and replays the WAL tail
// after it — the same shape as the leader's Open, over follower-native
// artifacts (snapshot-frame checkpoints, delta-frame WAL records).
func (f *Follower) recover() error {
	dir := f.cfg.DataDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating follower data dir: %w", err)
	}
	if strays, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, stray := range strays {
			os.Remove(stray)
		}
	}

	epochs := listCheckpoints(dir)
	var firstErr error
	for _, epoch := range epochs {
		err := f.loadCheckpoint(epoch)
		if err == nil {
			f.hasCkpt = true
			f.lastCkpt.Store(epoch)
			break
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if !f.hasCkpt {
		if firstErr != nil {
			return fmt.Errorf("serve: %d follower checkpoint file(s) present but none loadable (newest: %w)", len(epochs), firstErr)
		}
		// No base tables: a WAL alone is unusable (its frames are deltas
		// over a checkpointed state). Start clean; the leader will resync.
		if err := os.RemoveAll(filepath.Join(dir, "wal")); err != nil {
			return fmt.Errorf("serve: clearing orphaned follower wal: %w", err)
		}
	}

	w, err := wal.Open(filepath.Join(dir, "wal"), wal.Config{
		SegmentBytes: f.cfg.SegmentBytes,
		Fsync:        f.cfg.Fsync,
	})
	if err != nil {
		return err
	}
	f.wal = w

	if f.hasCkpt {
		// Replay the tail through the normal frame-apply path, minus the
		// WAL append (the records are already on disk).
		tail := w.Tail(f.lastCkpt.Load())
		for {
			epoch, payload, ok, err := tail.Next()
			if err != nil {
				return fmt.Errorf("serve: follower wal tail: %w", err)
			}
			if !ok {
				break
			}
			if err := f.applyFrame(payload, false); err != nil {
				return fmt.Errorf("serve: replaying follower wal record for epoch %d: %w", epoch, err)
			}
			f.recovered.Add(1)
		}
		f.markReady()
	}
	return nil
}

// loadCheckpoint publishes the snapshot held by one checkpoint file.
func (f *Follower) loadCheckpoint(epoch uint64) error {
	file, err := os.Open(checkpointPath(f.cfg.DataDir, epoch))
	if err != nil {
		return err
	}
	defer file.Close()
	hdrEpoch, err := readCheckpointHeader(file)
	if err != nil {
		return err
	}
	if hdrEpoch != epoch {
		return fmt.Errorf("%w: file named for epoch %d holds epoch %d", ErrBadCheckpointFile, epoch, hdrEpoch)
	}
	payload, err := io.ReadAll(file)
	if err != nil {
		return err
	}
	frameEpoch, classes, labels, logits, err := cluster.DecodeSnapshotFrame(payload)
	if err != nil {
		return err
	}
	if frameEpoch != epoch {
		return fmt.Errorf("%w: snapshot frame for epoch %d under header epoch %d", ErrBadCheckpointFile, frameEpoch, epoch)
	}
	f.pub.BootstrapFlat(labels, logits, classes, epoch)
	f.maxLeaderEpoch(epoch)
	return nil
}

// run is the session loop: dial, subscribe, consume until the session
// dies, redial — until Close.
func (f *Follower) run() {
	defer f.wg.Done()
	for {
		select {
		case <-f.closed:
			return
		default:
		}
		st, err := transport.DialStream(f.cfg.Leader, f.cfg.DialTimeout)
		if err == nil {
			f.mu.Lock()
			select {
			case <-f.closed:
				f.mu.Unlock()
				st.Close()
				return
			default:
			}
			f.stream = st
			f.mu.Unlock()
			f.session(st)
			f.connected.Store(false)
			st.Close()
			c := st.Counters()
			f.wireSent.Add(c.BytesSent)
			f.wireRecv.Add(c.BytesRecv)
			f.wireMsgsSent.Add(c.MsgsSent)
			f.wireMsgsRecv.Add(c.MsgsRecv)
			f.mu.Lock()
			f.stream = nil
			f.mu.Unlock()
			select {
			case <-f.closed:
			default:
				f.log.Warn("leader session ended; redialing", "component", "follower", "leader", f.cfg.Leader, "epoch", f.epochNow(), "leader_epoch", f.leaderEpoch.Load())
			}
		} else {
			f.log.Debug("leader dial failed", "component", "follower", "leader", f.cfg.Leader, "err", err)
		}
		select {
		case <-f.closed:
			return
		case <-time.After(f.cfg.RetryEvery):
		}
	}
}

// session runs one subscribe→consume exchange. Any protocol violation or
// transport error returns; the caller redials.
func (f *Follower) session(st *transport.Stream) {
	// An empty follower has no base tables for deltas to land on; the
	// MaxUint64 sentinel makes the leader resync it with a full snapshot
	// even when its delta log nominally reaches back to epoch 1 (and even
	// when the leader itself is still at its bootstrap epoch).
	watermark := uint64(math.MaxUint64)
	if cur := f.pub.Current(); cur != nil {
		watermark = cur.epoch
	}
	if st.Send(cluster.KindRepSubscribe, cluster.EncodeEpochFrame(watermark)) != nil {
		return
	}
	f.sessions.Add(1)
	f.connected.Store(true)
	f.log.Info("leader session established", "component", "follower", "leader", f.cfg.Leader, "watermark", watermark)
	for {
		msg, err := st.Recv()
		if err != nil {
			return
		}
		switch msg.Kind {
		case cluster.KindRepHello:
			epoch, err := cluster.DecodeEpochFrame(msg.Payload)
			if err != nil {
				return
			}
			f.maxLeaderEpoch(epoch)
		case cluster.KindRepSnapshot:
			if err := f.installSnapshot(msg.Payload); err != nil {
				f.log.Warn("snapshot install failed; ending session", "component", "follower", "err", err)
				return
			}
		case cluster.KindRepDelta:
			start := time.Now()
			err := f.applyFrame(msg.Payload, true)
			f.frameApplyH.Observe(time.Since(start))
			if err != nil {
				f.log.Warn("delta frame apply failed; ending session", "component", "follower", "epoch", f.epochNow(), "err", err)
				return
			}
		default:
			return // unknown frame: protocol desync
		}
	}
}

// epochNow is the current published epoch (0 before any snapshot).
func (f *Follower) epochNow() uint64 {
	if cur := f.pub.Current(); cur != nil {
		return cur.epoch
	}
	return 0
}

// applyFrame applies one delta frame: sequencing check, bounds check,
// WAL-append (live frames only), publish. Duplicate epochs are dropped
// silently — the at-least-once session boundary makes them normal.
func (f *Follower) applyFrame(payload []byte, logToWAL bool) error {
	epoch, classes, rows, err := cluster.DecodeDeltaFrame(payload)
	if err != nil {
		return err
	}
	cur := f.pub.Current()
	if cur == nil {
		return errors.New("serve: delta frame before any snapshot")
	}
	if epoch <= cur.epoch {
		return nil // duplicate across a session boundary
	}
	if epoch != cur.epoch+1 {
		return fmt.Errorf("serve: delta frame for epoch %d over local epoch %d (gap)", epoch, cur.epoch)
	}
	if classes != cur.classes {
		return fmt.Errorf("serve: delta frame with %d classes over %d-class tables", classes, cur.classes)
	}
	for _, row := range rows {
		if row.Vertex < 0 || int(row.Vertex) >= cur.n {
			return fmt.Errorf("serve: delta frame row for vertex %d outside table of %d", row.Vertex, cur.n)
		}
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.closed:
		return ErrClosed
	default:
	}
	if logToWAL && f.wal != nil {
		if err := f.wal.Append(epoch, payload); err != nil {
			return fmt.Errorf("serve: follower wal append: %w", err)
		}
	}
	f.rowBuf = f.rowBuf[:0]
	for _, row := range rows {
		f.rowBuf = append(f.rowBuf, Row{Vertex: row.Vertex, Label: row.NewLabel, Logits: row.Logits})
	}
	f.pub.Publish(f.rowBuf)
	f.frames.Add(1)
	f.rows.Add(int64(len(rows)))
	f.maxLeaderEpoch(epoch)
	if f.wal != nil && f.cfg.CheckpointEvery > 0 {
		f.sinceCkpt++
		if f.sinceCkpt >= f.cfg.CheckpointEvery {
			// Best effort, like the leader's automatic checkpoints.
			_, _ = f.checkpointLocked()
		}
	}
	return nil
}

// installSnapshot replaces the local tables with a full-snapshot resync
// frame. For a durable follower the frame is also the new on-disk
// checkpoint — written before the install so a crash never strands a WAL
// whose base tables were lost.
func (f *Follower) installSnapshot(payload []byte) error {
	epoch, classes, labels, logits, err := cluster.DecodeSnapshotFrame(payload)
	if err != nil {
		return err
	}
	if len(logits) != len(labels)*classes {
		return fmt.Errorf("serve: snapshot frame tables disagree: %d labels, %d logits, %d classes", len(labels), len(logits), classes)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.closed:
		return ErrClosed
	default:
	}
	if f.wal != nil {
		if last := f.wal.Stats().LastEpoch; last != 0 && last >= epoch {
			// The local WAL is ahead of the offered snapshot: this leader
			// rewound (or is a different deployment). Refuse rather than
			// serve a forked history; the operator clears the data dir.
			return fmt.Errorf("serve: leader offers snapshot at epoch %d behind local wal epoch %d (diverged history; clear the follower data dir)", epoch, last)
		}
		if err := f.writeCheckpointLocked(epoch, payload); err != nil {
			return err
		}
	}
	had := f.pub.Current() != nil
	f.pub.BootstrapFlat(labels, logits, classes, epoch)
	if had {
		f.resyncs.Add(1)
		f.log.Info("full snapshot resync installed", "component", "follower", "epoch", epoch, "rows", len(labels))
	} else {
		f.log.Info("initial snapshot installed", "component", "follower", "epoch", epoch, "rows", len(labels))
	}
	f.maxLeaderEpoch(epoch)
	f.markReady()
	return nil
}

// Checkpoint takes a local checkpoint at the current epoch, truncating
// the follower's WAL behind it. Errors for a non-durable follower.
func (f *Follower) Checkpoint() (CheckpointStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.checkpointLocked()
}

func (f *Follower) checkpointLocked() (CheckpointStats, error) {
	f.sinceCkpt = 0
	if f.wal == nil {
		return CheckpointStats{}, errors.New("serve: follower is not durable (no data dir)")
	}
	cur := f.pub.Current()
	if cur == nil {
		return CheckpointStats{}, errors.New("serve: nothing to checkpoint yet")
	}
	epoch := cur.epoch
	if epoch == f.lastCkpt.Load() && f.hasCkpt {
		st := f.wal.Stats()
		out := CheckpointStats{Epoch: epoch, WALBytes: st.Bytes, WALSegments: st.Segments}
		if info, err := os.Stat(checkpointPath(f.cfg.DataDir, epoch)); err == nil {
			out.Bytes = info.Size()
		}
		return out, nil
	}
	f.labBuf, f.logBuf = cur.Tables(f.labBuf, f.logBuf)
	payload := cluster.EncodeSnapshotFrame(epoch, cur.classes, f.labBuf, f.logBuf)
	if err := f.writeCheckpointLocked(epoch, payload); err != nil {
		return CheckpointStats{}, err
	}
	st := f.wal.Stats()
	out := CheckpointStats{Epoch: epoch, WALBytes: st.Bytes, WALSegments: st.Segments}
	if info, err := os.Stat(checkpointPath(f.cfg.DataDir, epoch)); err == nil {
		out.Bytes = info.Size()
	}
	return out, nil
}

// writeCheckpointLocked durably writes a snapshot-frame checkpoint at
// epoch, retires the WAL records it covers, and prunes older checkpoints.
func (f *Follower) writeCheckpointLocked(epoch uint64, payload []byte) error {
	path := checkpointPath(f.cfg.DataDir, epoch)
	err := wal.WriteFileAtomic(path, func(w io.Writer) error {
		if err := writeCheckpointHeader(w, epoch); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	})
	if err != nil {
		return fmt.Errorf("serve: writing follower checkpoint: %w", err)
	}
	if err := f.wal.MarkCheckpoint(epoch); err != nil {
		return err
	}
	for _, old := range listCheckpoints(f.cfg.DataDir) {
		if old != epoch {
			os.Remove(checkpointPath(f.cfg.DataDir, old))
		}
	}
	f.hasCkpt = true
	f.lastCkpt.Store(epoch)
	f.sinceCkpt = 0
	return nil
}

// maxLeaderEpoch raises the observed leader watermark monotonically.
func (f *Follower) maxLeaderEpoch(epoch uint64) {
	for {
		cur := f.leaderEpoch.Load()
		if epoch <= cur || f.leaderEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

func (f *Follower) markReady() {
	f.readyOnce.Do(func() { close(f.ready) })
}

// Ready closes once the follower has published its first snapshot —
// recovered locally or installed from the leader. Reads before that
// simply miss (Snapshot nil, Label -1).
func (f *Follower) Ready() <-chan struct{} { return f.ready }

// Snapshot pins the current epoch (nil before Ready). Identical
// semantics to Server.Snapshot: immutable, repeatable reads.
func (f *Follower) Snapshot() *Snapshot { return f.pub.Snapshot() }

// Label returns vertex v's predicted class at the current epoch (-1 if
// out of range, removed, or not ready). Lock-free.
func (f *Follower) Label(v graph.VertexID) int { return f.pub.Label(v) }

// Embedding returns a copy of vertex v's final-layer logits at the
// current epoch (nil if out of range or not ready). Lock-free.
func (f *Follower) Embedding(v graph.VertexID) tensor.Vector { return f.pub.Embedding(v) }

// TopK returns vertex v's k best classes at the current epoch. Lock-free.
func (f *Follower) TopK(v graph.VertexID, k int) []Ranked { return f.pub.TopK(v, k) }

// Stats returns current counters. Epoch/LeaderEpoch/LagEpochs are the
// replication watermarks a health endpoint should surface.
func (f *Follower) Stats() FollowerStats {
	var epoch uint64
	ready := false
	if cur := f.pub.Current(); cur != nil {
		epoch, ready = cur.epoch, true
	}
	leader := f.leaderEpoch.Load()
	var lag uint64
	if leader > epoch {
		lag = leader - epoch
	}
	st := FollowerStats{
		Epoch:       epoch,
		LeaderEpoch: leader,
		LagEpochs:   lag,
		Connected:   f.connected.Load(),
		Ready:       ready,

		FramesApplied:   f.frames.Load(),
		RowsApplied:     f.rows.Load(),
		SnapshotResyncs: f.resyncs.Load(),
		Sessions:        f.sessions.Load(),
		RecoveredFrames: f.recovered.Load(),

		Reads:       f.pub.reads.Load(),
		PagesCopied: f.pub.pagesCopied.Load(),
		PagesShared: f.pub.pagesShared.Load(),

		LastCheckpointEpoch: f.lastCkpt.Load(),

		FrameApplyHist: f.frameApplyH.Snapshot(),
	}
	wire := transport.Counters{
		BytesSent: f.wireSent.Load(),
		BytesRecv: f.wireRecv.Load(),
		MsgsSent:  f.wireMsgsSent.Load(),
		MsgsRecv:  f.wireMsgsRecv.Load(),
	}
	f.mu.Lock()
	if f.wal != nil {
		ws := f.wal.Stats()
		st.WALBytes, st.WALSegments = ws.Bytes, ws.Segments
		st.WALAppends, st.WALFsyncs = ws.Appends, ws.Fsyncs
	}
	if f.stream != nil {
		wire = wire.Add(f.stream.Counters())
	}
	f.mu.Unlock()
	st.WireBytesIn, st.WireBytesOut = wire.BytesRecv, wire.BytesSent
	st.WireMsgsIn, st.WireMsgsOut = wire.MsgsRecv, wire.MsgsSent
	return st
}

// Compact republishes the current epoch over contiguous pages (see
// Server.Compact). Serialised with frame application.
func (f *Follower) Compact() PageStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pub.Compact()
}

// Close stops following: the session is severed, the loop exits, and a
// durable follower takes a final checkpoint (so a restart replays zero
// frames) and closes its WAL. Reads keep serving the final epoch.
func (f *Follower) Close() {
	f.closeOnce.Do(func() {
		close(f.closed)
		f.mu.Lock()
		st := f.stream
		f.mu.Unlock()
		if st != nil {
			st.Close() // unblock the session's Recv
		}
		f.wg.Wait()
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.wal != nil {
			if cur := f.pub.Current(); cur != nil && (!f.hasCkpt || cur.epoch > f.lastCkpt.Load()) {
				// Best effort: on failure the WAL remains the durable truth.
				_, _ = f.checkpointLocked()
			}
			f.wal.Close()
		}
	})
}
