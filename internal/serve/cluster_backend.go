package serve

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"ripple/internal/cluster"
	"ripple/internal/engine"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// clusterBackend serves epochs from a partitioned in-process cluster: the
// paper's §5 multi-machine runtime promoted from a benchmark harness to a
// serving tier. Each applied batch runs the distributed BSP propagation
// and then the delta-gather phase — every worker ships only the
// final-layer rows its local frontier touched — so an epoch publication
// costs O(frontier rows on the wire), the distributed mirror of the
// publisher's O(pages touched) copy-on-write locally.
//
// The backend keeps a leader-side shadow of the global topology purely
// for validation: workers treat an invalid update as a fatal protocol
// error (their state would diverge), so the leader enforces the engine's
// exact all-or-nothing ApplyBatch contract before routing anything. A
// rejected batch therefore mutates neither the cluster nor the published
// epoch — identical failure atomicity to the single-node backend.
type clusterBackend struct {
	c       *cluster.LocalCluster
	shadow  *graph.Graph // leader-side topology mirror, validation only
	featDim int
	classes int

	rows []Row // reused across batches; consumed during publication

	commBytes   atomic.Int64
	commMsgs    atomic.Int64
	routeBytes  atomic.Int64
	gatherBytes atomic.Int64
}

// NewClusterBackend adapts an in-process distributed cluster to the
// serving Backend interface. shadow must be the same topology the cluster
// was bootstrapped from; the backend takes ownership of it (as its
// validation mirror) and, via the Server, of the cluster: closing the
// Server shuts the workers down. The cluster must run the incremental
// (ripple) strategy — the RC baseline cannot ship changed-row deltas.
func NewClusterBackend(c *cluster.LocalCluster, shadow *graph.Graph) (Backend, error) {
	if c == nil || shadow == nil {
		return nil, errors.New("serve: nil cluster or shadow graph")
	}
	if c.NumVertices() != shadow.NumVertices() {
		return nil, fmt.Errorf("serve: cluster covers %d vertices, shadow graph %d", c.NumVertices(), shadow.NumVertices())
	}
	dims := c.Dims()
	return &clusterBackend{
		c:       c,
		shadow:  shadow,
		featDim: dims[0],
		classes: dims[len(dims)-1],
	}, nil
}

// Bootstrap gathers every partition's final layer into the epoch-0
// tables. This is the one full-table scan of a serving deployment's
// lifetime; every subsequent epoch moves only deltas.
func (b *clusterBackend) Bootstrap() ([]int32, []tensor.Vector, int) {
	final := b.c.GatherFinalLayer()
	labels := make([]int32, len(final))
	for v := range labels {
		labels[v] = int32(final[v].ArgMax())
	}
	return labels, final, b.classes
}

// ValidateBatch implements the durable-serving face against the leader's
// shadow topology — the same check ApplyBatch runs first, so a batch the
// WAL logs can never be rejected when it is applied or replayed.
func (b *clusterBackend) ValidateBatch(batch []engine.Update) error {
	return engine.ValidateBatch(b.shadow, b.featDim, batch)
}

// SaveCheckpoint implements the durable-serving face: the leader runs the
// barrier checkpoint — every worker serializes its partition — and writes
// one manifest holding the topology, the placement and the gathered
// embedding state. Serialised with ApplyBatch by the Server's write lock,
// so the cut is epoch-consistent.
func (b *clusterBackend) SaveCheckpoint(w io.Writer) error {
	emb, err := b.c.CheckpointEmbeddings()
	if err != nil {
		return err
	}
	return cluster.WriteManifest(w, b.shadow, b.c.Ownership(), emb)
}

func (b *clusterBackend) ApplyBatch(batch []engine.Update) (engine.BatchResult, []Row, error) {
	if err := b.ValidateBatch(batch); err != nil {
		return engine.BatchResult{}, nil, err
	}
	// Row widths need no re-check here: the leader rejects cross-rank
	// width disagreements, and the agreed width is by construction the
	// same worker-model Dims this backend read b.classes from.
	res, delta, err := b.c.ApplyBatchDelta(batch)
	if err != nil {
		return engine.BatchResult{}, nil, err
	}
	// The batch is applied cluster-side; mirror its topology on the
	// shadow. Validation already proved every step legal, so errors here
	// are impossible by construction.
	for _, u := range batch {
		switch u.Kind {
		case engine.EdgeAdd:
			_ = b.shadow.AddEdge(u.U, u.V, u.Weight)
		case engine.EdgeDelete:
			_, _ = b.shadow.RemoveEdge(u.U, u.V)
		}
	}

	b.commBytes.Add(res.CommBytes)
	b.commMsgs.Add(res.CommMsgs)
	b.routeBytes.Add(res.RouteBytes)
	b.gatherBytes.Add(res.GatherBytes)

	out := engine.BatchResult{
		Updates:       res.Updates,
		Affected:      int(res.Affected),
		Messages:      res.Messages,
		VectorOps:     res.VectorOps,
		UpdateTime:    res.UpdateTime,
		PropagateTime: res.ComputeTime,
	}
	// FinalFrontier escapes with the BatchResult (observers, Apply
	// callers), so it is freshly allocated per batch; the Row buffer is
	// only borrowed until publication and is reused.
	b.rows = b.rows[:0]
	if len(delta) > 0 {
		out.FinalFrontier = make([]graph.VertexID, 0, len(delta))
	}
	for _, row := range delta {
		b.rows = append(b.rows, Row{Vertex: row.Vertex, Label: row.NewLabel, Logits: row.Logits})
		out.FinalFrontier = append(out.FinalFrontier, row.Vertex)
		if row.OldLabel != row.NewLabel {
			out.LabelChanges = append(out.LabelChanges, engine.LabelChange{
				Vertex: row.Vertex,
				Old:    int(row.OldLabel),
				New:    int(row.NewLabel),
			})
		}
	}
	return out, b.rows, nil
}

// CommStats implements the optional comm-counter face of Backend.
func (b *clusterBackend) CommStats() CommStats {
	return CommStats{
		CommBytes:   b.commBytes.Load(),
		CommMsgs:    b.commMsgs.Load(),
		RouteBytes:  b.routeBytes.Load(),
		GatherBytes: b.gatherBytes.Load(),
	}
}

// Close shuts the cluster's workers down.
func (b *clusterBackend) Close() error { return b.c.Close() }
