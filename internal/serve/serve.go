// Package serve is the snapshot-isolated concurrent serving layer over a
// write Backend — the single-node Ripple engine or the distributed
// cluster — the missing piece between the paper's trigger-based inference
// model (§2.2) and a deployment where many consumers read predictions
// while the update stream is applying.
//
// A backend is single-writer: every label read races with an in-flight
// ApplyBatch. This package decouples the two with epoch-based publication
// of immutable snapshots:
//
//   - Writes are serialised. Each applied batch rebuilds only the label
//     and logit rows named by BatchResult.FinalFrontier — copy-on-write
//     at page granularity over the previous epoch's tables, so an epoch
//     costs O(pages touched), not O(|V|) — and publishes the new Snapshot
//     with a single atomic pointer store.
//   - Reads are lock-free and never block a writer: a reader loads the
//     current snapshot pointer and works on immutable data. Pinning a
//     snapshot gives repeatable reads for arbitrarily long — the pinned
//     epoch can never observe a half-applied batch, because batches are
//     only ever visible as whole published epochs.
//   - An admission queue (the engine's dynamic Batcher) coalesces
//     individual Submit calls into batches, flushing on size or age so
//     bursts amortise propagation cost and trickles stay fresh.
//
// Label-change triggers reuse the engine's TrackLabels machinery:
// subscribers get every LabelChange pushed over a channel the moment the
// batch that caused it is published.
package serve

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/engine"
	"ripple/internal/graph"
	"ripple/internal/obs"
	"ripple/internal/tensor"
	"ripple/internal/wal"
)

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// MaxBatch is the admission queue's size trigger: a flush happens as
	// soon as this many updates are buffered. Default 256.
	MaxBatch int
	// MaxAge is the admission queue's staleness trigger: a flush happens
	// once the oldest buffered update is this old. Default 2ms.
	MaxAge time.Duration
	// OnBatch, when set, observes every applied (or rejected) batch from
	// both the admission queue and direct Apply calls. It runs with the
	// write lock held and must not call back into the Server.
	OnBatch func(engine.BatchResult, error)
	// PageRows is the page granularity of the snapshot tables, rounded up
	// to a power of two. Publishing an epoch copies every page the batch's
	// final frontier lands on, so smaller pages copy less per scattered
	// frontier row at the cost of a larger page table. Default 256.
	PageRows int

	// DataDir, when set, makes the server durable: admitted batches are
	// written ahead to a WAL under this directory and checkpoints replace
	// the log periodically. Durable servers are built with Open (New and
	// NewBackend reject a DataDir — they cannot recover prior state).
	DataDir string
	// Fsync syncs the WAL after every admitted batch. Off (the default),
	// appends survive process death immediately and power loss only after
	// the next checkpoint/rotation/close; recovery stays exact either way
	// because torn tails are detected and discarded.
	Fsync bool
	// CheckpointEvery takes an automatic checkpoint (truncating the WAL)
	// after this many applied batches. 0 disables automatic checkpoints:
	// only Checkpoint calls and the final checkpoint in Close cut the log.
	CheckpointEvery int
	// FullCheckpointEvery makes every Nth checkpoint a full-state write
	// and the N-1 between them incremental deltas holding only the rows
	// changed since the previous checkpoint — steady-state checkpoint
	// bytes become O(changed rows) instead of O(|V|). Recovery loads the
	// newest full checkpoint, applies the delta chain, then replays the
	// WAL tail (which is only truncated at full checkpoints, so a lost
	// delta falls back to replay). 0 or 1 keeps every checkpoint full.
	// Requires a backend with delta support (the single-node engine);
	// other backends silently cut full checkpoints at every interval.
	FullCheckpointEvery int
	// Recovery, when set, is updated live while Open rebuilds state —
	// checkpoint load, delta chain, WAL tail replay — so a health endpoint
	// can report recovery progress before Open returns the Server.
	Recovery *RecoveryProgress
	// SegmentBytes is the WAL's segment-rotation threshold (default 4 MiB).
	SegmentBytes int64

	// PipelineDepth bounds the staged admission pipeline's apply queue:
	// how many admitted batches may be in flight — logged and awaiting
	// their group-commit fsync or their turn to apply — before admission
	// blocks. 0 means the default depth (8). A negative depth disables
	// the pipeline entirely and restores the serial write path (validate,
	// log+fsync, apply, publish and fan out under one lock) — kept as the
	// measurable baseline the pipeline is benchmarked against.
	PipelineDepth int

	// ReplicationLogEpochs bounds the in-memory replication log: the
	// leader keeps the encoded delta frames of this many recent epochs so
	// reconnecting followers can catch up incrementally; one that has
	// fallen further behind is resynced with a full snapshot frame
	// instead. Only consulted once StartReplication is called. Default 1024.
	ReplicationLogEpochs int

	// Logger receives the server's structured operational logs —
	// background checkpoint failures, replication follower churn, backend
	// failure latches, slow-batch traces. Nil discards them (the library
	// default; the daemons wire their slog here).
	Logger *slog.Logger
	// TraceRing sizes the batch flight recorder: the last N batch traces
	// are retained for /debug/traces, recorded alloc-free and lock-free on
	// the write path. 0 means the default (1024); negative disables
	// retention (a 1-slot ring, effectively only the slow-batch hook).
	TraceRing int
	// SlowBatch, when positive, logs a structured warning with the full
	// stage-span breakdown for every batch whose admission→published
	// duration reaches the threshold.
	SlowBatch time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 2 * time.Millisecond
	}
	if c.PageRows <= 0 {
		c.PageRows = defaultPageRows
	}
	// Round up to a power of two so page lookup is a shift and a mask.
	c.PageRows = 1 << bits.Len(uint(c.PageRows-1))
	if c.ReplicationLogEpochs <= 0 {
		c.ReplicationLogEpochs = 1024
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	switch {
	case c.TraceRing == 0:
		c.TraceRing = obs.DefaultTraceRing
	case c.TraceRing < 0:
		c.TraceRing = 1
	}
	return c
}

// ErrClosed is returned by write operations after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrBackendFailed is returned by write operations after the backend has
// failed out from under the server — a distributed worker died, the
// transport closed, the protocol desynced. Unlike a per-batch rejection
// (ErrBadUpdate-class errors, which leave the backend serving), a failed
// backend can never apply another batch: the server stops accepting
// writes and reports Stats.BackendFailed, while reads keep serving the
// last published epoch.
var ErrBackendFailed = errors.New("serve: backend failed")

// isRejection distinguishes per-batch validation rejections — the
// batch's fault, backend still healthy — from infrastructure failure.
func isRejection(err error) bool {
	return errors.Is(err, engine.ErrBadUpdate) || errors.Is(err, engine.ErrVertexRemoved)
}

// Stats is a point-in-time counter snapshot of a Server.
type Stats struct {
	Epoch          uint64 `json:"epoch"`           // current published epoch
	Batches        int64  `json:"batches"`         // batches applied
	Rejected       int64  `json:"rejected"`        // batches rejected by validation
	UpdatesApplied int64  `json:"updates_applied"` // updates in applied batches
	LabelFlips     int64  `json:"label_flips"`     // label changes published
	Dropped        int64  `json:"dropped"`         // notifications dropped on full subscriber channels
	Reads          int64  `json:"reads"`           // explicit Snapshot() pins served
	Pending        int    `json:"pending"`         // updates buffered in the admission queue
	Subscribers    int    `json:"subscribers"`     // live subscriptions
	BackendFailed  bool   `json:"backend_failed"`  // backend infrastructure failed; writes are refused
	PagesCopied    int64  `json:"pages_copied"`    // snapshot pages copy-on-written across all publishes
	PagesShared    int64  `json:"pages_shared"`    // snapshot pages shared with the previous epoch across all copying publishes

	// Scatter parallelism of the wrapped engine's write path: the mailbox
	// shard count the scatter merges into, and how many propagation hops
	// took the sharded parallel path vs the serial small-frontier path
	// across all applied batches. Zero for backends without sharded
	// mailboxes (the distributed cluster parallelises across partitions).
	ScatterShards       int   `json:"scatter_shards"`
	ScatterHopsParallel int64 `json:"scatter_hops_parallel"`
	ScatterHopsSerial   int64 `json:"scatter_hops_serial"`

	// Durability counters (all zero for a non-durable server): the WAL's
	// live on-disk footprint, the newest checkpoint's epoch, and how many
	// logged batches the last Open replayed to reach the current state.
	WALBytes            int64  `json:"wal_bytes"`
	WALSegments         int    `json:"wal_segments"`
	WALAppends          uint64 `json:"wal_appends"`
	WALFsyncs           uint64 `json:"wal_fsyncs"`
	LastCheckpointEpoch uint64 `json:"last_checkpoint_epoch"`
	RecoveredBatches    int64  `json:"recovered_batches"`
	// Full/delta checkpoint accounting (see Config.FullCheckpointEvery):
	// counts per kind plus the most recent file size of each, the measured
	// steady-state bytes argument for incremental checkpoints.
	FullCheckpoints          int64 `json:"full_checkpoints"`
	DeltaCheckpoints         int64 `json:"delta_checkpoints"`
	LastFullCheckpointBytes  int64 `json:"last_full_checkpoint_bytes"`
	LastDeltaCheckpointBytes int64 `json:"last_delta_checkpoint_bytes"`
	// Recovering is true while Open replays the WAL tail: the state is
	// still behind the pre-crash epoch, so a health endpoint should report
	// degraded until it clears.
	Recovering bool `json:"recovering"`

	// Admission-pipeline observability (all zero on the serial baseline
	// except the fsync/apply pair, which both paths record). Quantiles
	// come from fixed power-of-two-ns histograms — 2×-granular upper
	// bounds, one atomic add per observation on the hot path.
	InFlight          int   `json:"in_flight"`           // admitted batches queued for apply
	QueueWaitP50NS    int64 `json:"queue_wait_p50_ns"`   // admission → applier pickup
	QueueWaitP99NS    int64 `json:"queue_wait_p99_ns"`
	FsyncWaitP50NS    int64 `json:"fsync_wait_p50_ns"`   // applier's residual durability wait
	FsyncWaitP99NS    int64 `json:"fsync_wait_p99_ns"`
	ApplyP50NS        int64 `json:"apply_p50_ns"`        // ApplyBatch + publish critical section
	ApplyP99NS        int64 `json:"apply_p99_ns"`
	CheckpointStallNS int64 `json:"checkpoint_stall_ns"` // cumulative write-lock time spent encoding checkpoints

	// Full bucket vectors behind the quantile pairs above (power-of-two-ns
	// buckets, trailing zeros trimmed), plus the end-to-end batch
	// histogram (admission → published). Exact counts: /metrics renders
	// these as cumulative `le` buckets and rippleload differences two
	// snapshots to get true window quantiles instead of since-boot ones.
	QueueWaitHist  obs.HistSnapshot `json:"queue_wait_hist"`
	FsyncWaitHist  obs.HistSnapshot `json:"fsync_wait_hist"`
	ApplyHist      obs.HistSnapshot `json:"apply_hist"`
	BatchTotalHist obs.HistSnapshot `json:"batch_total_hist"`
	// TracesRecorded counts batch traces captured by the flight recorder.
	TracesRecorded uint64 `json:"traces_recorded"`

	// CommStats (embedded, so comm_bytes/comm_msgs/route_bytes/gather_bytes
	// surface as top-level counters) holds the cumulative
	// distributed-communication traffic of a cluster backend: worker
	// propagation traffic, leader routing bytes, and the delta-gather
	// bytes each epoch publication cost on the wire. All zero for a
	// single-node engine backend.
	CommStats

	// ReplStats (embedded) holds the leader-side replication hub's
	// counters: connected followers, frames/bytes streamed, snapshot
	// resyncs. All zero until StartReplication.
	ReplStats
}

// PageStats describes the paged publisher's state: the page geometry of
// the current epoch plus the cumulative copy-on-write accounting. The
// shared/copied ratio is the measured benefit of paging over whole-table
// cloning — every shared page is one a whole-table clone would have
// memmoved. Publishes with an empty frontier copy nothing under either
// design and are excluded from the shared count.
type PageStats struct {
	Epoch       uint64 `json:"epoch"`        // epoch the accounting was taken at
	PageRows    int    `json:"page_rows"`    // rows per page
	Pages       int    `json:"pages"`        // pages in the current epoch's table
	PagesCopied int64  `json:"pages_copied"` // pages copy-on-written across all publishes
	PagesShared int64  `json:"pages_shared"` // pages shared across all publishes
}

// Server serves predictions from a Backend — the single-node engine or
// the distributed cluster — under concurrent load. All mutation goes
// through the Server (Submit/Apply); the wrapped backend and its state
// must not be touched directly while serving.
type Server struct {
	backend Backend
	cfg     Config
	onBatch func(engine.BatchResult, error)

	// pub owns the epoch-publication/read half: the paged copy-on-write
	// snapshot store and its accounting. Server is its sole mutator.
	pub *Publisher

	mu      sync.Mutex // serialises ApplyBatch + publication + subscriber set
	closed  bool
	subs    map[int]chan engine.LabelChange
	nextSub int

	// repl, when non-nil, is the leader-side replication hub: every
	// published epoch's delta rows are recorded to its in-memory log and
	// fanned out to connected followers. Set once by StartReplication
	// (under mu) and only read under mu thereafter.
	repl *Replication

	// failed latches backend infrastructure failure. Atomic (not under
	// mu) so Submit's fail-fast check never blocks behind an in-flight
	// batch holding the write lock.
	failed atomic.Bool

	batcher *engine.Batcher

	// Staged admission pipeline (see pipeline.go; unused when serial).
	// admitMu orders admissions — validate, WAL append, enqueue are one
	// critical section per batch, so admission order, WAL record order
	// and queue order are the same total order. The applier goroutine
	// (applyLoop) never takes admitMu.
	serial      bool // Config.PipelineDepth < 0: old single-lock write path
	admitMu     sync.Mutex
	admitClosed bool // set by Close before applyQ closes (guarded by admitMu)
	applyQ      chan *admission
	applierDone chan struct{}

	// pendingUpd is the flattened update tail of every admitted-but-not-
	// yet-applied batch; admissions validate against published state plus
	// this tail. valScratch is its reusable concatenation buffer. Both
	// guarded by mu (admitters extend, the applier trims).
	pendingUpd []engine.Update
	valScratch []engine.Update

	// fanMu orders subscriber fan-out after mu is released: the applier
	// acquires it before unlocking mu, and cancel/Close close subscriber
	// channels under it, so off-lock sends stay per-subscriber ordered
	// and never race a close.
	fanMu      sync.Mutex
	fanScratch []chan engine.LabelChange

	queueWaitH  obs.LatencyHist
	fsyncWaitH  obs.LatencyHist
	applyH      obs.LatencyHist
	batchTotalH obs.LatencyHist // admission → published, whole pipeline

	// rec is the batch flight recorder (never nil); log is the structured
	// logger (never nil — NopLogger by default). metricsOnce lazily builds
	// the /metrics registry on first MetricsRegistry call.
	rec         *obs.FlightRecorder
	log         *slog.Logger
	metricsOnce sync.Once
	metrics     *obs.Registry

	// Durability state (nil/zero for non-durable servers). wal is set once
	// by Open after the tail replay and never changes; it is only written
	// through under mu.
	wal        *wal.Log
	hasCkpt    atomic.Bool // a checkpoint file exists on disk
	sinceCkpt  int         // batches applied since the last checkpoint (guarded by mu)
	lastCkpt   atomic.Uint64
	recovered  atomic.Int64
	recovering atomic.Bool
	progress   *RecoveryProgress // Config.Recovery; nil when unobserved

	// Incremental-checkpoint state (see Config.FullCheckpointEvery).
	// deltaCap is latched at Open: delta chains are configured AND the
	// backend has the delta face. ckptSeq counts persisted checkpoints to
	// drive the every-Nth-full cadence; forceFull latches after a write
	// failure that already advanced the delta baseline (the missed rows
	// must ride the next full); lastCkptDelta remembers the newest
	// checkpoint file's kind.
	deltaCap      bool
	ckptSeq       atomic.Int64
	forceFull     atomic.Bool
	lastCkptDelta atomic.Bool
	fullCkpts     atomic.Int64
	deltaCkpts    atomic.Int64
	lastFullB     atomic.Int64
	lastDeltaB    atomic.Int64

	// Checkpoint single-flight state: ckptMu serialises whole checkpoints
	// (manual, automatic-background and Close's final one); ckptBusy
	// gates spawning a second background checkpoint; ckptStall sums the
	// write-lock time spent encoding checkpoint state; writeCkpt is the
	// phase-2 file writer (a test seam — defaults to wal.WriteFileAtomic).
	ckptMu    sync.Mutex
	ckptBusy  atomic.Bool
	ckptStall atomic.Int64
	writeCkpt func(path string, data []byte) error

	batches    atomic.Int64
	rejected   atomic.Int64
	updates    atomic.Int64
	flips      atomic.Int64
	dropped    atomic.Int64
	scatterPar atomic.Int64
	scatterSer atomic.Int64
}

// New wraps a single-node engine in a serving layer — shorthand for
// NewBackend over NewEngineBackend. Label tracking is enabled on the
// engine: the incremental snapshot rebuild and the Subscribe triggers
// both depend on it.
func New(eng *engine.Ripple, cfg Config) (*Server, error) {
	b, err := NewEngineBackend(eng)
	if err != nil {
		return nil, err
	}
	return NewBackend(b, cfg)
}

// NewBackend wraps any serving backend and publishes the bootstrap
// snapshot (epoch 0) from the backend's full table scan. The Server
// becomes the backend's sole writer. For a durable server (Config.DataDir)
// use Open, which can recover prior state; NewBackend rejects the config.
func NewBackend(backend Backend, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir != "" {
		return nil, errors.New("serve: Config.DataDir requires Open (NewBackend cannot recover prior state)")
	}
	return newServer(backend, cfg, 0)
}

// newServer builds a Server whose first published snapshot — scanned from
// the backend's current tables — carries the given epoch: 0 at bootstrap,
// the checkpoint's epoch during recovery.
func newServer(backend Backend, cfg Config, epoch uint64) (*Server, error) {
	if backend == nil {
		return nil, errors.New("serve: nil backend")
	}
	s := &Server{
		backend: backend,
		cfg:     cfg,
		onBatch: cfg.OnBatch,
		pub:     NewPublisher(cfg.PageRows),
		subs:    map[int]chan engine.LabelChange{},
		serial:  cfg.PipelineDepth < 0,
		rec:     obs.NewFlightRecorder(cfg.TraceRing),
		log:     cfg.Logger,
	}
	if cfg.SlowBatch > 0 {
		s.rec.SetSlowHook(cfg.SlowBatch, s.logSlowBatch)
	}
	s.writeCkpt = func(path string, data []byte) error {
		return wal.WriteFileAtomic(path, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		})
	}
	labels, logits, classes := backend.Bootstrap()
	s.pub.Bootstrap(labels, logits, classes, epoch)

	b, err := engine.NewBatcher(applyFunc(s.applyCoalesced), cfg.MaxBatch, cfg.MaxAge, nil)
	if err != nil {
		return nil, err
	}
	s.batcher = b
	if !s.serial {
		depth := cfg.PipelineDepth
		if depth == 0 {
			depth = defaultPipelineDepth
		}
		s.applyQ = make(chan *admission, depth)
		s.applierDone = make(chan struct{})
		go s.applyLoop()
	}
	return s, nil
}

// applyFunc adapts a function to engine.Strategy for the admission queue.
type applyFunc func([]engine.Update) (engine.BatchResult, error)

func (applyFunc) Name() string { return "serve" }
func (f applyFunc) ApplyBatch(batch []engine.Update) (engine.BatchResult, error) {
	return f(batch)
}

// Snapshot pins the current epoch. The returned snapshot is immutable:
// every read through it observes the same published state, regardless of
// concurrent writes.
func (s *Server) Snapshot() *Snapshot { return s.pub.Snapshot() }

// Label returns vertex v's predicted class at the current epoch (-1 if
// out of range or removed). Lock-free: the convenience read paths do not
// touch the (shared, contended) Stats.Reads counter — only explicit
// Snapshot pins are counted.
func (s *Server) Label(v graph.VertexID) int { return s.pub.Label(v) }

// Embedding returns a copy of vertex v's final-layer logits at the
// current epoch (nil if out of range). Lock-free.
func (s *Server) Embedding(v graph.VertexID) tensor.Vector { return s.pub.Embedding(v) }

// TopK returns vertex v's k best classes at the current epoch. Lock-free.
func (s *Server) TopK(v graph.VertexID, k int) []Ranked { return s.pub.TopK(v, k) }

// Submit enqueues one update on the admission queue; it is applied — and
// becomes visible as a new epoch — when the queue flushes on size or age.
// If a coalesced flush fails validation, the valid updates in it are
// salvaged and applied individually: one client's bad update cannot
// discard other clients' queued writes. Rejections are observable via
// Config.OnBatch and Stats.Rejected.
func (s *Server) Submit(u engine.Update) error {
	if s.failed.Load() {
		return ErrBackendFailed
	}
	if err := s.batcher.Submit(u); err != nil {
		if errors.Is(err, engine.ErrBatcherClosed) {
			return ErrClosed
		}
		return err
	}
	return nil
}

// SubmitAll enqueues a whole slice of updates on the admission queue
// atomically: either every update is buffered (and will flush on size or
// age like individual Submits) or none is. This is the all-or-nothing
// ingress for multi-update requests — a caller that gets an error knows
// zero of its updates were queued, never a silent prefix.
func (s *Server) SubmitAll(updates []engine.Update) error {
	if s.failed.Load() {
		return ErrBackendFailed
	}
	if err := s.batcher.SubmitAll(updates); err != nil {
		if errors.Is(err, engine.ErrBatcherClosed) {
			return ErrClosed
		}
		return err
	}
	return nil
}

// Flush forces the admission queue's buffered updates out immediately.
func (s *Server) Flush() { s.batcher.Flush() }

// Apply applies one batch synchronously, bypassing the admission queue,
// and publishes the resulting epoch before returning. Concurrent Apply
// callers are pipelined: admission (validation, WAL append) is ordered
// under a short lock, the group-commit fsync and the completion wait
// happen off it.
func (s *Server) Apply(batch []engine.Update) (engine.BatchResult, error) {
	return s.applyOne(batch)
}

// applyCoalesced is the admission queue's flush path. The engine's batch
// contract is all-or-nothing, but a coalesced flush mixes independent
// submitters — so on rejection the batch is re-applied update by update,
// salvaging every valid write and dropping only the invalid ones (each
// counted in Stats.Rejected and reported to OnBatch). The transient
// whole-batch rejection that triggers salvage is not itself counted or
// reported: observers see only the per-update outcomes.
func (s *Server) applyCoalesced(batch []engine.Update) (engine.BatchResult, error) {
	res, err := s.apply(batch, len(batch) > 1)
	if err == nil || len(batch) <= 1 || errors.Is(err, ErrClosed) || errors.Is(err, ErrBackendFailed) {
		// A failed backend cannot salvage anything: retrying the flush
		// update-by-update would only re-apply work against dead workers.
		return res, err
	}
	var agg engine.BatchResult
	for _, u := range batch {
		one, err := s.applyOne([]engine.Update{u})
		if err != nil {
			continue // invalid (or server closed); already counted/observed
		}
		agg.Updates += one.Updates
		agg.Affected += one.Affected
		agg.Messages += one.Messages
		agg.VectorOps += one.VectorOps
		agg.KernelLaunches += one.KernelLaunches
		agg.UpdateTime += one.UpdateTime
		agg.PropagateTime += one.PropagateTime
		agg.SimulatedTime += one.SimulatedTime
		agg.ScatterShards = one.ScatterShards // engine constant, not additive
		agg.ScatterHopsParallel += one.ScatterHopsParallel
		agg.ScatterHopsSerial += one.ScatterHopsSerial
		// Per-hop frontiers sum elementwise over the longest hop count seen.
		for len(agg.FrontierPerHop) < len(one.FrontierPerHop) {
			agg.FrontierPerHop = append(agg.FrontierPerHop, 0)
		}
		for l, f := range one.FrontierPerHop {
			agg.FrontierPerHop[l] += f
		}
		agg.LabelChanges = append(agg.LabelChanges, one.LabelChanges...)
		agg.FinalFrontier = append(agg.FinalFrontier, one.FinalFrontier...)
	}
	return agg, nil
}

// applyOne is the write path for one batch: engine apply, copy-on-write
// snapshot rebuild, atomic publication, subscriber fan-out. Rebuilding
// clones only the page table plus the pages holding rows named by
// FinalFrontier — O(pages touched), not O(|V|); batches that touch no
// final-layer row republish the previous epoch's page table without
// copying anything.
func (s *Server) applyOne(batch []engine.Update) (engine.BatchResult, error) {
	return s.apply(batch, false)
}

// apply dispatches a batch to the staged admission pipeline, or to the
// retained serial baseline when Config.PipelineDepth < 0. quietReject
// suppresses rejection accounting for the transient whole-batch failure
// that precedes a per-update salvage.
func (s *Server) apply(batch []engine.Update, quietReject bool) (engine.BatchResult, error) {
	if s.serial {
		return s.applySerial(batch, quietReject)
	}
	return s.applyPipelined(batch, quietReject)
}

// applySerial is the pre-pipeline write path, kept intact as the
// measurable baseline (rippleload --compare-serial, the admission
// benchmarks): validate, WAL append + fsync, apply, publish, fan-out and
// the automatic checkpoint all under one mu hold.
func (s *Server) applySerial(batch []engine.Update, quietReject bool) (engine.BatchResult, error) {
	var tr obs.BatchTrace
	tr.Begin(len(batch))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return engine.BatchResult{}, ErrClosed
	}
	if s.failed.Load() {
		return engine.BatchResult{}, ErrBackendFailed
	}
	// Every outcome past the fail-fast gates is a trace: applied batches,
	// rejections and infrastructure failures all land in the ring.
	defer func() { s.recordTrace(&tr) }()
	var loggedEpoch uint64
	if s.wal != nil {
		// Durable admission: prove the batch admissible, then log it,
		// then apply — so the WAL holds exactly the accepted-batch
		// sequence and a logged batch can never be rejected on replay.
		// (The backend re-validates inside ApplyBatch; the duplicate is
		// deliberate — validation is O(batch) with a lazy, alloc-free
		// overlay, dwarfed by propagation, and keeping ApplyBatch
		// self-contained keeps the all-or-nothing contract local.)
		tr.Enter(obs.StageAdmit)
		err := s.backend.(validatingBackend).ValidateBatch(batch)
		tr.Exit(obs.StageAdmit)
		if err != nil {
			tr.Rejected = true
			if !quietReject {
				s.rejected.Add(1)
				if s.onBatch != nil {
					s.onBatch(engine.BatchResult{}, err)
				}
			}
			return engine.BatchResult{}, err
		}
		loggedEpoch = s.pub.Current().epoch + 1
		fsyncStart := time.Now()
		tr.Enter(obs.StageWALAppend)
		err = s.wal.Append(loggedEpoch, cluster.EncodeUpdates(batch))
		tr.Exit(obs.StageWALAppend)
		// The serial Append fsyncs inline, so durability is reached at the
		// append's end: a zero-width durable span keeps the timeline's
		// stage order identical to the pipelined path.
		tr.Enter(obs.StageDurable)
		tr.Exit(obs.StageDurable)
		s.fsyncWaitH.Observe(time.Since(fsyncStart))
		if err != nil {
			// A write path that cannot log cannot promise durability:
			// fail like infrastructure, keep serving reads.
			tr.Rejected = true
			s.failed.Store(true)
			err = fmt.Errorf("%w: %v", ErrBackendFailed, err)
			s.log.Error("wal append failed; latching backend failure", "component", "serve", "epoch", loggedEpoch, "err", err)
			if s.onBatch != nil {
				s.onBatch(engine.BatchResult{}, err)
			}
			return engine.BatchResult{}, err
		}
	}
	applyStart := time.Now()
	tr.Enter(obs.StageApply)
	res, rows, err := s.backend.ApplyBatch(batch)
	tr.Exit(obs.StageApply)
	if err != nil {
		tr.Rejected = true
		if !isRejection(err) {
			if s.wal != nil && loggedEpoch != 0 {
				// The logged batch never became an epoch: withdraw the
				// record (best effort — a crash in this window replays
				// it, which is at-least-once, not wrong) so recovery
				// does not resurrect a write this client saw fail.
				_ = s.wal.AbortLast(loggedEpoch)
			}
			// Infrastructure failure, not the batch's fault: no later
			// batch (or per-update salvage retry) can succeed either.
			// Latch failure so writes fail fast and distinguishably;
			// reads keep serving the last published epoch.
			s.failed.Store(true)
			err = fmt.Errorf("%w: %v", ErrBackendFailed, err)
			s.log.Error("backend apply failed; latching backend failure", "component", "serve", "err", err)
			if s.onBatch != nil {
				s.onBatch(res, err)
			}
			return res, err
		}
		if !quietReject {
			s.rejected.Add(1)
			if s.onBatch != nil {
				s.onBatch(res, err)
			}
		}
		return res, err
	}

	prev := s.pub.Current()
	tr.Enter(obs.StagePublish)
	next := s.pub.Publish(rows)
	tr.Exit(obs.StagePublish)
	tr.Epoch = next.epoch
	tr.Enter(obs.StageReplicate)
	if s.repl != nil {
		// Record the published delta while the backend-borrowed row logits
		// are still valid (they die at the next ApplyBatch) and mu still
		// orders epochs: followers see exactly the leader's epoch sequence.
		s.repl.record(prev, next, rows)
	}
	tr.Exit(obs.StageReplicate)
	s.applyH.Observe(time.Since(applyStart))

	s.batches.Add(1)
	s.updates.Add(int64(res.Updates))
	s.flips.Add(int64(len(res.LabelChanges)))
	s.scatterPar.Add(int64(res.ScatterHopsParallel))
	s.scatterSer.Add(int64(res.ScatterHopsSerial))
	tr.Enter(obs.StageFanout)
	for _, lc := range res.LabelChanges {
		for _, ch := range s.subs {
			select {
			case ch <- lc:
			default:
				s.dropped.Add(1)
			}
		}
	}
	tr.Exit(obs.StageFanout)
	if s.onBatch != nil {
		s.onBatch(res, nil)
	}
	if s.wal != nil && s.cfg.CheckpointEvery > 0 {
		s.sinceCkpt++
		if s.sinceCkpt >= s.cfg.CheckpointEvery {
			// Best effort: a failed automatic checkpoint leaves the WAL
			// intact (recovery still works) and retries an interval later.
			_, _ = s.checkpointLocked(false)
		}
	}
	return res, nil
}

// Subscribe registers for label-change triggers: every LabelChange of
// every applied batch is sent on the returned channel, in batch order. A
// subscriber that falls more than buffer notifications behind loses the
// excess (counted in Stats.Dropped) rather than stalling the write path.
// cancel unsubscribes and closes the channel.
func (s *Server) Subscribe(buffer int) (<-chan engine.LabelChange, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan engine.LabelChange, buffer)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(ch) // a ranging consumer terminates instead of hanging forever
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	// Whoever removes the subscription from the map owns closing the
	// channel — this makes cancel idempotent and safe against Close. The
	// close itself happens under fanMu: the pipelined applier fans out
	// over a snapshot of the map after releasing mu, so the map removal
	// alone cannot prove no send is in flight.
	cancel := func() {
		s.mu.Lock()
		_, live := s.subs[id]
		delete(s.subs, id)
		s.mu.Unlock()
		if live {
			s.fanMu.Lock()
			close(ch)
			s.fanMu.Unlock()
		}
	}
	return ch, cancel
}

// Stats returns current counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	subs := len(s.subs)
	repl := s.repl
	s.mu.Unlock()
	st := Stats{
		BackendFailed:  s.failed.Load(),
		Epoch:          s.pub.Current().epoch,
		Batches:        s.batches.Load(),
		Rejected:       s.rejected.Load(),
		UpdatesApplied: s.updates.Load(),
		LabelFlips:     s.flips.Load(),
		Dropped:        s.dropped.Load(),
		Reads:          s.pub.reads.Load(),
		Pending:        s.batcher.Pending(),
		Subscribers:    subs,
		PagesCopied:    s.pub.pagesCopied.Load(),
		PagesShared:    s.pub.pagesShared.Load(),

		ScatterHopsParallel: s.scatterPar.Load(),
		ScatterHopsSerial:   s.scatterSer.Load(),

		LastCheckpointEpoch: s.lastCkpt.Load(),
		RecoveredBatches:    s.recovered.Load(),
		Recovering:          s.recovering.Load(),

		FullCheckpoints:          s.fullCkpts.Load(),
		DeltaCheckpoints:         s.deltaCkpts.Load(),
		LastFullCheckpointBytes:  s.lastFullB.Load(),
		LastDeltaCheckpointBytes: s.lastDeltaB.Load(),

		InFlight:          len(s.applyQ),
		QueueWaitP50NS:    s.queueWaitH.Quantile(0.50),
		QueueWaitP99NS:    s.queueWaitH.Quantile(0.99),
		FsyncWaitP50NS:    s.fsyncWaitH.Quantile(0.50),
		FsyncWaitP99NS:    s.fsyncWaitH.Quantile(0.99),
		ApplyP50NS:        s.applyH.Quantile(0.50),
		ApplyP99NS:        s.applyH.Quantile(0.99),
		CheckpointStallNS: s.ckptStall.Load(),

		QueueWaitHist:  s.queueWaitH.Snapshot(),
		FsyncWaitHist:  s.fsyncWaitH.Snapshot(),
		ApplyHist:      s.applyH.Snapshot(),
		BatchTotalHist: s.batchTotalH.Snapshot(),
		TracesRecorded: s.rec.Recorded(),
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		st.WALBytes, st.WALSegments = ws.Bytes, ws.Segments
		st.WALAppends, st.WALFsyncs = ws.Appends, ws.Fsyncs
	}
	if sh, ok := s.backend.(shardReporter); ok {
		st.ScatterShards = sh.Shards()
	}
	if cr, ok := s.backend.(commReporter); ok {
		st.CommStats = cr.CommStats()
	}
	if repl != nil {
		st.ReplStats = repl.stats()
	}
	return st
}

// recordTrace finishes one batch trace: published batches feed the
// end-to-end histogram, and every traced outcome — applied, rejected,
// failed — lands in the flight-recorder ring. Alloc-free and lock-free;
// the slow-batch hook (if armed) fires from inside Record.
func (s *Server) recordTrace(t *obs.BatchTrace) {
	if !t.Rejected {
		s.batchTotalH.Observe(time.Duration(t.TotalNS()))
	}
	s.rec.Record(t)
}

// logSlowBatch is the flight recorder's slow-batch hook: a structured
// warning carrying the full stage breakdown. It only runs for batches
// over Config.SlowBatch, so its allocations never touch the common case.
func (s *Server) logSlowBatch(t obs.BatchTrace) {
	attrs := make([]any, 0, 2*obs.NumStages+8)
	attrs = append(attrs, "component", "serve", "epoch", t.Epoch,
		"updates", t.Updates, "total_ns", t.TotalNS())
	for i := 0; i < obs.NumStages; i++ {
		attrs = append(attrs, obs.Stage(i).String()+"_ns", t.Spans[i].EndNS-t.Spans[i].StartNS)
	}
	s.log.Warn("slow batch", attrs...)
}

// Traces drains the flight recorder: the retained batch traces with
// end-to-end duration >= min, oldest first. Safe under concurrent writes;
// this is the /debug/traces read path.
func (s *Server) Traces(min time.Duration) []obs.BatchTrace {
	return s.rec.Snapshot(min)
}

// Compact republishes the current epoch over freshly allocated contiguous
// pages and returns the publisher's page accounting. The published data
// (and the epoch number) are unchanged — compaction is invisible to
// readers — but the new table shares no page with any historical epoch,
// so storage pinned only by old snapshots becomes reclaimable as soon as
// those snapshots are released, and the read path regains bootstrap-like
// locality after many copy-on-write generations. Serialised with the
// write path; safe to call on a closed server.
func (s *Server) Compact() PageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pub.Compact()
}

// Close flushes the admission queue, drains the pipeline (every already-
// admitted batch completes — published and durable), stops accepting
// writes, closes all subscriber channels, and shuts the backend down if
// it is closable (a cluster backend terminates its workers). A durable
// server additionally takes a clean final checkpoint (so a restart
// replays zero batches) and closes the WAL. Reads keep working against
// the final epoch.
func (s *Server) Close() {
	s.batcher.Close() // flushes the remainder through the admission path
	if !s.serial {
		s.admitMu.Lock()
		if !s.admitClosed {
			s.admitClosed = true
			close(s.applyQ)
		}
		s.admitMu.Unlock()
		<-s.applierDone // pipeline drained: every admitted batch resolved
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	subs := s.subs
	s.subs = map[int]chan engine.LabelChange{}
	repl := s.repl
	s.mu.Unlock()
	s.fanMu.Lock() // no fan-out can race the closes (applier has exited)
	for _, ch := range subs {
		close(ch)
	}
	s.fanMu.Unlock()
	if repl != nil {
		repl.close()
	}
	if s.wal != nil {
		if s.serial {
			s.mu.Lock()
			if !s.failed.Load() && (!s.hasCkpt.Load() || s.pub.Current().epoch > s.lastCkpt.Load()) {
				// Best effort: a failed final checkpoint leaves the WAL as
				// the durable truth and the next Open replays it. Always a
				// full checkpoint: restart after graceful shutdown loads one
				// file and replays nothing.
				_, _ = s.checkpointLocked(true)
			}
			s.wal.Close()
			s.mu.Unlock()
		} else {
			// ckptMu serialises the final checkpoint and the WAL close
			// against an in-flight background checkpoint; one that starts
			// after sees s.closed and refuses.
			s.ckptMu.Lock()
			if !s.failed.Load() && (!s.hasCkpt.Load() || s.pub.Current().epoch > s.lastCkpt.Load()) {
				_, _ = s.doCheckpoint(true)
			}
			s.wal.Close()
			s.ckptMu.Unlock()
		}
	}
	if c, ok := s.backend.(io.Closer); ok {
		c.Close()
	}
}
