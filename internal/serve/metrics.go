package serve

// Prometheus /metrics adapters: the existing Stats / FollowerStats
// snapshots — already cheap, already consistent — are re-emitted as typed
// series on every scrape. Nothing here touches the write path; a scrape
// costs one Stats() call plus encoding.

import (
	"ripple/internal/obs"
)

// EmitMetrics renders the snapshot as Prometheus series. Shared by the
// server's own registry and by anything embedding Stats elsewhere.
func (st Stats) EmitMetrics(e *obs.Emitter) {
	// Write path.
	e.Counter("ripple_batches_total", "Batches applied and published.", float64(st.Batches))
	e.Counter("ripple_batches_rejected_total", "Batches rejected by validation.", float64(st.Rejected))
	e.Counter("ripple_updates_applied_total", "Graph updates in applied batches.", float64(st.UpdatesApplied))
	e.Counter("ripple_label_flips_total", "Label changes published.", float64(st.LabelFlips))
	e.Counter("ripple_notifications_dropped_total", "Notifications dropped on full subscriber channels.", float64(st.Dropped))
	e.Gauge("ripple_epoch", "Current published epoch.", float64(st.Epoch))
	e.Gauge("ripple_pending_updates", "Updates buffered in the admission queue.", float64(st.Pending))
	e.Gauge("ripple_in_flight_batches", "Admitted batches queued for apply.", float64(st.InFlight))
	e.Gauge("ripple_backend_failed", "1 when the backend has failed and writes are refused.", boolGauge(st.BackendFailed))

	// Read path.
	e.Counter("ripple_snapshot_reads_total", "Explicit snapshot pins served.", float64(st.Reads))
	e.Gauge("ripple_subscribers", "Live label-change subscriptions.", float64(st.Subscribers))
	e.Counter("ripple_pages_copied_total", "Snapshot pages copy-on-written across publishes.", float64(st.PagesCopied))
	e.Counter("ripple_pages_shared_total", "Snapshot pages shared with the previous epoch.", float64(st.PagesShared))

	// Engine scatter parallelism.
	e.Gauge("ripple_scatter_shards", "Mailbox shard count of the engine scatter.", float64(st.ScatterShards))
	e.Counter("ripple_scatter_hops_total", "Propagation hops by scatter path.", float64(st.ScatterHopsParallel), obs.L("path", "parallel"))
	e.Counter("ripple_scatter_hops_total", "Propagation hops by scatter path.", float64(st.ScatterHopsSerial), obs.L("path", "serial"))

	// Durability.
	e.Gauge("ripple_wal_bytes", "Live WAL bytes on disk.", float64(st.WALBytes))
	e.Gauge("ripple_wal_segments", "Live WAL segment files.", float64(st.WALSegments))
	e.Counter("ripple_wal_appends_total", "WAL records appended.", float64(st.WALAppends))
	e.Counter("ripple_wal_fsyncs_total", "WAL fsyncs issued (group commit shares them).", float64(st.WALFsyncs))
	e.Gauge("ripple_last_checkpoint_epoch", "Epoch of the newest checkpoint.", float64(st.LastCheckpointEpoch))
	e.Counter("ripple_recovered_batches", "Logged batches replayed by the last recovery.", float64(st.RecoveredBatches))
	e.Counter("ripple_checkpoints_total", "Checkpoints by kind.", float64(st.FullCheckpoints), obs.L("kind", "full"))
	e.Counter("ripple_checkpoints_total", "Checkpoints by kind.", float64(st.DeltaCheckpoints), obs.L("kind", "delta"))
	e.Gauge("ripple_last_checkpoint_bytes", "Size of the most recent checkpoint file by kind.", float64(st.LastFullCheckpointBytes), obs.L("kind", "full"))
	e.Gauge("ripple_last_checkpoint_bytes", "Size of the most recent checkpoint file by kind.", float64(st.LastDeltaCheckpointBytes), obs.L("kind", "delta"))
	e.Counter("ripple_checkpoint_stall_seconds_total", "Cumulative write-lock time spent encoding checkpoints.", float64(st.CheckpointStallNS)/1e9)
	e.Gauge("ripple_recovering", "1 while WAL replay is still running.", boolGauge(st.Recovering))

	// Pipeline stage-wait histograms (full bucket vectors).
	e.Histogram("ripple_queue_wait_seconds", "Admission-to-applier pickup wait.", st.QueueWaitHist)
	e.Histogram("ripple_fsync_wait_seconds", "Applier residual durability wait.", st.FsyncWaitHist)
	e.Histogram("ripple_apply_seconds", "ApplyBatch + publish critical section.", st.ApplyHist)
	e.Histogram("ripple_batch_total_seconds", "Admission to published, end to end.", st.BatchTotalHist)
	e.Counter("ripple_traces_recorded_total", "Batch traces captured by the flight recorder.", float64(st.TracesRecorded))

	// Cluster backend communication (zero for single-node).
	e.Counter("ripple_comm_bytes_total", "Distributed worker propagation bytes.", float64(st.CommBytes))
	e.Counter("ripple_comm_msgs_total", "Distributed worker propagation messages.", float64(st.CommMsgs))
	e.Counter("ripple_route_bytes_total", "Leader routing bytes.", float64(st.RouteBytes))
	e.Counter("ripple_gather_bytes_total", "Delta-gather bytes per epoch publication.", float64(st.GatherBytes))

	// Leader-side replication hub.
	e.Gauge("ripple_repl_followers", "Connected replication followers.", float64(st.ReplFollowers))
	e.Gauge("ripple_repl_log_epochs", "Epochs held by the in-memory replication log.", float64(st.ReplLogEpochs))
	e.Counter("ripple_repl_frames_sent_total", "Delta frames streamed to followers.", float64(st.ReplFramesSent))
	e.Counter("ripple_repl_bytes_sent_total", "Replication payload bytes streamed.", float64(st.ReplBytesSent))
	e.Counter("ripple_repl_snapshots_sent_total", "Full-snapshot resyncs served.", float64(st.ReplSnapshotsSent))
	e.Counter("ripple_repl_dropped_total", "Followers dropped for not draining.", float64(st.ReplDropped))
	e.Gauge("ripple_repl_epoch", "Newest epoch recorded to the replication log.", float64(st.ReplEpoch))
}

// EmitMetrics renders the follower snapshot as Prometheus series.
func (st FollowerStats) EmitMetrics(e *obs.Emitter) {
	e.Gauge("ripple_follower_epoch", "Newest locally published epoch.", float64(st.Epoch))
	e.Gauge("ripple_follower_leader_epoch", "Newest epoch the leader has reported.", float64(st.LeaderEpoch))
	e.Gauge("ripple_follower_lag_epochs", "Epochs behind the leader (0 when caught up).", float64(st.LagEpochs))
	e.Gauge("ripple_follower_connected", "1 when a live leader session exists.", boolGauge(st.Connected))
	e.Gauge("ripple_follower_ready", "1 once a snapshot has been published.", boolGauge(st.Ready))

	e.Counter("ripple_follower_frames_applied_total", "Delta frames applied across sessions.", float64(st.FramesApplied))
	e.Counter("ripple_follower_rows_applied_total", "Changed rows applied.", float64(st.RowsApplied))
	e.Counter("ripple_follower_snapshot_resyncs_total", "Full-snapshot installs over existing state.", float64(st.SnapshotResyncs))
	e.Counter("ripple_follower_sessions_total", "Leader sessions established.", float64(st.Sessions))
	e.Counter("ripple_follower_recovered_frames", "Frames replayed from the local WAL at start.", float64(st.RecoveredFrames))

	e.Counter("ripple_snapshot_reads_total", "Explicit snapshot pins served.", float64(st.Reads))
	e.Counter("ripple_pages_copied_total", "Snapshot pages copy-on-written across publishes.", float64(st.PagesCopied))
	e.Counter("ripple_pages_shared_total", "Snapshot pages shared with the previous epoch.", float64(st.PagesShared))

	e.Gauge("ripple_wal_bytes", "Live WAL bytes on disk.", float64(st.WALBytes))
	e.Gauge("ripple_wal_segments", "Live WAL segment files.", float64(st.WALSegments))
	e.Counter("ripple_wal_appends_total", "WAL records appended.", float64(st.WALAppends))
	e.Counter("ripple_wal_fsyncs_total", "WAL fsyncs issued.", float64(st.WALFsyncs))
	e.Gauge("ripple_last_checkpoint_epoch", "Epoch of the newest checkpoint.", float64(st.LastCheckpointEpoch))

	e.Counter("ripple_wire_bytes_total", "Replication-link bytes by direction.", float64(st.WireBytesIn), obs.L("dir", "in"))
	e.Counter("ripple_wire_bytes_total", "Replication-link bytes by direction.", float64(st.WireBytesOut), obs.L("dir", "out"))
	e.Counter("ripple_wire_msgs_total", "Replication-link messages by direction.", float64(st.WireMsgsIn), obs.L("dir", "in"))
	e.Counter("ripple_wire_msgs_total", "Replication-link messages by direction.", float64(st.WireMsgsOut), obs.L("dir", "out"))

	e.Histogram("ripple_follower_frame_apply_seconds", "Per-frame apply time: decode, WAL append, publish.", st.FrameApplyHist)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// MetricsRegistry returns the server's /metrics registry (built once):
// runtime series plus every Stats counter and stage-wait histogram,
// re-snapshotted on each scrape.
func (s *Server) MetricsRegistry() *obs.Registry {
	s.metricsOnce.Do(func() {
		r := obs.NewRegistry()
		r.CollectGoRuntime()
		r.Collect(func(e *obs.Emitter) { s.Stats().EmitMetrics(e) })
		s.metrics = r
	})
	return s.metrics
}

// MetricsRegistry returns the follower's /metrics registry (built once).
func (f *Follower) MetricsRegistry() *obs.Registry {
	f.metricsOnce.Do(func() {
		r := obs.NewRegistry()
		r.CollectGoRuntime()
		r.Collect(func(e *obs.Emitter) { f.Stats().EmitMetrics(e) })
		f.metrics = r
	})
	return f.metrics
}
