package serve

// The staged admission pipeline: the write path split so the expensive,
// overlappable work — the WAL fsync, the subscriber fan-out, the
// checkpoint file write — leaves the big critical section.
//
// Stages (Config.PipelineDepth >= 0; PipelineDepth < 0 keeps the old
// serial path as a measurable baseline):
//
//   - Admission (caller's goroutine, admitMu + a short mu hold): prove
//     the batch admissible against the published state PLUS the tail of
//     in-flight admitted batches, assign its epoch by appending the WAL
//     record without waiting for the fsync (wal.AppendNextNoWait), and
//     enqueue it on the bounded apply queue. admitMu makes admission
//     order, WAL record order and queue order the same total order.
//   - Group commit (caller's goroutine, no server lock): wait until an
//     fsync covers the record. Concurrent admitters pile into one
//     wal group commit here, and the wait overlaps the applier working
//     on earlier epochs — this is where the old path burned one full
//     fsync per batch inside the lock.
//   - Apply (single applier goroutine): consume admissions in order;
//     re-confirm durability; ApplyBatch + publish + replication record
//     under mu (the epoch-consistency critical section); subscriber
//     fan-out after unlock, ordered by fanMu.
//
// Invariants the stages preserve (pinned by the durability and
// replication suites plus the pipeline tests):
//
//   - WAL record order == epoch order: epochs are allocated by the WAL
//     append inside admitMu, and the single applier publishes in queue
//     order, checking record epoch == published epoch + 1.
//   - Durability before visibility: an epoch is published, replicated
//     and its submitter acked only after WaitDurable covered its record.
//   - The validation tail (pendingUpd) and the backend state always
//     compose to the same topology: both are mutated under mu — the
//     applier trims a batch from the tail in the same critical section
//     that applies it.

import (
	"errors"
	"fmt"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/engine"
	"ripple/internal/obs"
)

// defaultPipelineDepth bounds the apply queue when Config.PipelineDepth
// is zero: deep enough to keep the applier fed while a group commit
// forms, shallow enough that admission backpressure kicks in before the
// validation tail grows past a few batches.
const defaultPipelineDepth = 8

// admission is one batch's ride through the pipeline.
type admission struct {
	batch []engine.Update
	quiet bool // suppress rejection accounting (pre-salvage probe)

	// Durable-admission state (zero on non-durable servers): the WAL
	// epoch the record was logged at, the WAL write sequence WaitDurable
	// must cover before the batch may become visible, and how many
	// updates the admission appended to the in-flight validation tail.
	epoch uint64
	seq   uint64
	trim  int

	// reject marks a report-only entry: admission-time validation (or the
	// WAL append) refused the batch. It rides the queue anyway so OnBatch
	// observers see admissions — acceptances and rejections — in
	// admission order.
	reject error

	res      engine.BatchResult
	err      error
	enqueued time.Time
	done     chan struct{}

	// trace is the batch's flight-recorder record. The admitting goroutine
	// stamps the admit and wal_append spans before the channel send; the
	// applier stamps everything after (the send is the happens-before
	// edge) and records the finished trace. The submitter's own off-lock
	// WaitDurable deliberately does NOT touch the trace — it can still be
	// running when the applier records.
	trace obs.BatchTrace
}

// applyPipelined is the staged write path: admit under admitMu, then wait
// off-lock for durability and the applier's completion signal.
func (s *Server) applyPipelined(batch []engine.Update, quietReject bool) (engine.BatchResult, error) {
	a := &admission{batch: batch, quiet: quietReject, done: make(chan struct{})}
	a.trace.Begin(len(batch))
	s.admitMu.Lock()
	if s.admitClosed {
		s.admitMu.Unlock()
		return engine.BatchResult{}, ErrClosed
	}
	if s.failed.Load() {
		s.admitMu.Unlock()
		return engine.BatchResult{}, ErrBackendFailed
	}
	s.mu.Lock()
	if s.wal != nil {
		// Durable admission: prove the batch admissible over the in-flight
		// tail, then log it — so the WAL holds exactly the accepted-batch
		// sequence and a logged batch can never be rejected on replay.
		a.trace.Enter(obs.StageAdmit)
		err := s.validateInflightLocked(batch)
		a.trace.Exit(obs.StageAdmit)
		if err != nil {
			a.reject = err
		} else {
			a.trace.Enter(obs.StageWALAppend)
			epoch, seq, err := s.wal.AppendNextNoWait(cluster.EncodeUpdates(batch))
			a.trace.Exit(obs.StageWALAppend)
			if err != nil {
				// A write path that cannot log cannot promise durability:
				// fail like infrastructure, keep serving reads.
				s.failed.Store(true)
				a.reject = fmt.Errorf("%w: %v", ErrBackendFailed, err)
				s.log.Error("wal append failed; latching backend failure", "component", "serve", "err", err)
			} else {
				a.epoch, a.seq = epoch, seq
				s.pendingUpd = append(s.pendingUpd, batch...)
				a.trim = len(batch)
			}
		}
	}
	s.mu.Unlock()
	a.enqueued = time.Now()
	// The queue is bounded: a full pipeline blocks admission here (holding
	// admitMu, NOT mu) until the applier drains a slot — backpressure, not
	// unbounded buffering. The applier never takes admitMu, so this cannot
	// deadlock.
	s.applyQ <- a
	s.admitMu.Unlock()

	if a.seq != 0 {
		// Drive the group commit from the submitter's goroutine: waiters
		// racing here are what forms fsync groups, and the wait overlaps
		// the applier working on earlier epochs. The applier re-checks
		// durability before publishing; an error here surfaces there.
		_ = s.wal.WaitDurable(a.seq)
	}
	<-a.done
	return a.res, a.err
}

// validateInflightLocked proves batch admissible against the published
// state plus every in-flight admitted batch. Validation is compositional
// — the backend's overlay simulates the tail's edge changes sequentially
// — so validating tail++batch accepts batch exactly when it would be
// accepted after the tail applies. Caller holds mu (the tail and the
// backend state only change under it).
func (s *Server) validateInflightLocked(batch []engine.Update) error {
	vb := s.backend.(validatingBackend) // interface checked at Open
	if len(s.pendingUpd) == 0 {
		return vb.ValidateBatch(batch)
	}
	s.valScratch = append(s.valScratch[:0], s.pendingUpd...)
	s.valScratch = append(s.valScratch, batch...)
	err := vb.ValidateBatch(s.valScratch)
	if err == nil {
		return nil
	}
	// Error fidelity: the combined error indexes into tail++batch. If the
	// batch is invalid on its own report that error verbatim; otherwise
	// the conflict is with an in-flight admission.
	if own := vb.ValidateBatch(batch); own != nil {
		return own
	}
	return fmt.Errorf("serve: batch conflicts with in-flight admission: %w", err)
}

// trimPendingLocked retires the front n updates of the validation tail —
// the batch the applier just resolved. Caller holds mu. The tail must
// shrink in the same critical section that changes the backend state (or
// resolves the batch without applying it): a stale tail entry would make
// the validation overlay re-apply an update the topology already holds.
func (s *Server) trimPendingLocked(n int) {
	if n <= 0 {
		return
	}
	s.pendingUpd = append(s.pendingUpd[:0], s.pendingUpd[n:]...)
}

// applyLoop is the pipeline's single consumer: it resolves admissions in
// admission order until Close closes the queue, then signals applierDone.
func (s *Server) applyLoop() {
	defer close(s.applierDone)
	for a := range s.applyQ {
		s.processAdmission(a)
	}
}

// processAdmission resolves one admission: report-only entries just
// surface their verdict; admitted batches wait for durability, apply and
// publish under mu, and fan out label flips after unlock.
func (s *Server) processAdmission(a *admission) {
	defer close(a.done)
	// Record the finished trace before done closes (defers run LIFO): the
	// submitter — and anyone reading a.res/a.err — observes a fully
	// recorded trace, and nothing touches it afterwards.
	defer func() { s.recordTrace(&a.trace) }()
	s.queueWaitH.Observe(time.Since(a.enqueued))

	if a.reject != nil {
		a.trace.Rejected = true
		// Report in admission order, like the old in-lock accounting.
		s.mu.Lock()
		if isRejection(a.reject) {
			if !a.quiet {
				s.rejected.Add(1)
				if s.onBatch != nil {
					s.onBatch(engine.BatchResult{}, a.reject)
				}
			}
		} else if s.onBatch != nil {
			s.onBatch(engine.BatchResult{}, a.reject)
		}
		s.mu.Unlock()
		a.err = a.reject
		return
	}

	if a.seq != 0 {
		// Durability before visibility. Usually already covered — the
		// submitter drove the group commit while earlier epochs applied —
		// so this is a re-check, not a stall. The durable span is stamped
		// here, by the applier, NOT by the submitter's own WaitDurable:
		// that wait can still be running when the trace is recorded.
		start := time.Now()
		a.trace.Enter(obs.StageDurable)
		err := s.wal.WaitDurable(a.seq)
		a.trace.Exit(obs.StageDurable)
		s.fsyncWaitH.Observe(time.Since(start))
		if err != nil {
			a.trace.Rejected = true
			err = fmt.Errorf("%w: %v", ErrBackendFailed, err)
			s.log.Error("wal fsync failed; latching backend failure", "component", "serve", "epoch", a.epoch, "err", err)
			s.mu.Lock()
			s.trimPendingLocked(a.trim)
			s.failed.Store(true)
			if s.onBatch != nil {
				s.onBatch(engine.BatchResult{}, err)
			}
			s.mu.Unlock()
			a.err = err
			return
		}
	}

	if s.failed.Load() {
		// An earlier admission latched infrastructure failure. This
		// batch's record (if any) stays in the log — the same
		// at-least-once window as a crash between append and abort.
		a.trace.Rejected = true
		s.mu.Lock()
		s.trimPendingLocked(a.trim)
		s.mu.Unlock()
		a.err = ErrBackendFailed
		return
	}

	start := time.Now()
	s.mu.Lock()
	if a.epoch != 0 && a.epoch != s.pub.Current().epoch+1 {
		a.trace.Rejected = true
		// Defensive: admission order, queue order and epoch order are one
		// total order by construction; a desync means the pipeline is
		// broken and publishing would corrupt the WAL-replay contract.
		s.trimPendingLocked(a.trim)
		s.failed.Store(true)
		err := fmt.Errorf("%w: pipeline desync: record epoch %d over published epoch %d", ErrBackendFailed, a.epoch, s.pub.Current().epoch)
		s.log.Error("pipeline desync; latching backend failure", "component", "serve", "record_epoch", a.epoch, "published_epoch", s.pub.Current().epoch)
		if s.onBatch != nil {
			s.onBatch(engine.BatchResult{}, err)
		}
		s.mu.Unlock()
		a.err = err
		return
	}
	a.trace.Enter(obs.StageApply)
	res, rows, err := s.backend.ApplyBatch(a.batch)
	a.trace.Exit(obs.StageApply)
	s.trimPendingLocked(a.trim)
	if err != nil {
		a.trace.Rejected = true
		if !isRejection(err) {
			if s.wal != nil && a.epoch != 0 {
				// The logged batch never became an epoch: withdraw the
				// record (best effort — later in-flight records, or a
				// crash in this window, leave it to replay, which is
				// at-least-once, not wrong) so recovery does not
				// resurrect a write this client saw fail.
				_ = s.wal.AbortLast(a.epoch)
			}
			s.failed.Store(true)
			err = fmt.Errorf("%w: %v", ErrBackendFailed, err)
			s.log.Error("backend apply failed; latching backend failure", "component", "serve", "epoch", a.epoch, "err", err)
			if s.onBatch != nil {
				s.onBatch(res, err)
			}
			s.mu.Unlock()
			a.res, a.err = res, err
			return
		}
		// Unreachable for durable servers (admission pre-validated over
		// the tail); non-durable pipelines discover rejections here.
		if !a.quiet {
			s.rejected.Add(1)
			if s.onBatch != nil {
				s.onBatch(res, err)
			}
		}
		s.mu.Unlock()
		a.res, a.err = res, err
		return
	}

	prev := s.pub.Current()
	a.trace.Enter(obs.StagePublish)
	next := s.pub.Publish(rows)
	a.trace.Exit(obs.StagePublish)
	a.trace.Epoch = next.epoch
	a.trace.Enter(obs.StageReplicate)
	if s.repl != nil {
		// Record the published delta while the backend-borrowed row logits
		// are still valid (they die at the next ApplyBatch — issued only
		// by this goroutine) and mu still orders epochs: followers see
		// exactly the leader's epoch sequence.
		s.repl.record(prev, next, rows)
	}
	a.trace.Exit(obs.StageReplicate)

	s.batches.Add(1)
	s.updates.Add(int64(res.Updates))
	s.flips.Add(int64(len(res.LabelChanges)))
	s.scatterPar.Add(int64(res.ScatterHopsParallel))
	s.scatterSer.Add(int64(res.ScatterHopsSerial))
	if s.onBatch != nil {
		s.onBatch(res, nil)
	}
	if s.wal != nil && s.cfg.CheckpointEvery > 0 {
		s.sinceCkpt++
		if s.sinceCkpt >= s.cfg.CheckpointEvery && s.ckptBusy.CompareAndSwap(false, true) {
			// Single-flight background checkpoint: state is encoded under
			// a short mu hold inside, file IO and WAL truncation off it —
			// admission never stalls behind the checkpoint.
			go s.backgroundCheckpoint()
		}
	}
	var fan []chan engine.LabelChange
	if len(res.LabelChanges) > 0 && len(s.subs) > 0 {
		s.fanScratch = s.fanScratch[:0]
		for _, ch := range s.subs {
			s.fanScratch = append(s.fanScratch, ch)
		}
		fan = s.fanScratch
	}
	if fan == nil {
		s.mu.Unlock()
		s.applyH.Observe(time.Since(start))
		a.trace.Enter(obs.StageFanout)
		a.trace.Exit(obs.StageFanout)
		a.res, a.err = res, nil
		return
	}
	// Fan out after unlock: the sends no longer extend the write critical
	// section by flips × subscribers. fanMu is taken BEFORE mu is released
	// so batches fan out in epoch order per subscriber, and a concurrent
	// cancel/Close (which closes channels under fanMu) cannot race a send.
	s.fanMu.Lock()
	s.mu.Unlock()
	s.applyH.Observe(time.Since(start))
	a.trace.Enter(obs.StageFanout)
	for _, lc := range res.LabelChanges {
		for _, ch := range fan {
			select {
			case ch <- lc:
			default:
				s.dropped.Add(1)
			}
		}
	}
	a.trace.Exit(obs.StageFanout)
	s.fanMu.Unlock()
	a.res, a.err = res, nil
}

// backgroundCheckpoint runs automatic checkpoints off the write path.
// Best effort, like the old in-line automatic checkpoint: failure leaves
// the WAL intact (recovery still works) and a later interval retries.
// After each checkpoint it re-checks the trigger: admissions that crossed
// the interval while this one was in flight lost their CAS and nobody
// else will retry if the stream pauses — an interval must not silently
// stretch just because the previous checkpoint was slow.
func (s *Server) backgroundCheckpoint() {
	for {
		s.ckptMu.Lock()
		if _, err := s.doCheckpoint(false); err != nil &&
			!errors.Is(err, ErrClosed) && !errors.Is(err, ErrBackendFailed) {
			// Previously this failure was silently dropped; surface it —
			// an operator watching logs should know checkpoints are not
			// landing long before the WAL grows past its budget. (A closed
			// or already-failed server refusing a checkpoint is expected
			// shutdown noise, not an operational signal.)
			s.log.Warn("background checkpoint failed; WAL retained, will retry next interval", "component", "serve", "err", err)
		}
		s.ckptMu.Unlock()
		s.ckptBusy.Store(false)
		s.mu.Lock()
		again := !s.closed && s.wal != nil && !s.failed.Load() &&
			s.cfg.CheckpointEvery > 0 && s.sinceCkpt >= s.cfg.CheckpointEvery
		s.mu.Unlock()
		if !again || !s.ckptBusy.CompareAndSwap(false, true) {
			return
		}
	}
}
