package serve

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// BenchmarkPipelinedAdmission measures the tentpole claim: fsync-enabled
// write throughput with 8 concurrent submitters, staged admission pipeline
// vs the retained serial baseline (PipelineDepth < 0). The serial path
// burns one full fsync per batch inside the write lock; the pipeline
// overlaps the group-commit fsync of later admissions with the engine
// apply of earlier ones, so fsyncs/batch drops below 1 and throughput
// rises. Run both:
//
//	go test ./internal/serve/ -run xxx -bench BenchmarkPipelinedAdmission
func BenchmarkPipelinedAdmission(b *testing.B) {
	const (
		submitters = 8
		vertices   = 256
		edges      = 1024
	)
	rng := rand.New(rand.NewSource(211))
	model, err := gnn.NewWorkload("GC-S", []int{6, 8, 5}, 211)
	if err != nil {
		b.Fatal(err)
	}
	g0 := graph.New(vertices)
	for i := 0; i < edges; i++ {
		u, v := graph.VertexID(rng.Intn(vertices)), graph.VertexID(rng.Intn(vertices))
		if u != v {
			_ = g0.AddEdge(u, v, 0.2+rng.Float32())
		}
	}
	feats := make([]tensor.Vector, vertices)
	for i := range feats {
		f := make(tensor.Vector, 6)
		for c := range f {
			f[c] = rng.Float32()
		}
		feats[i] = f
	}
	loader := func(ckpt io.Reader) (Backend, error) {
		if ckpt != nil {
			eng, err := engine.LoadRipple(ckpt, model, engine.Config{})
			if err != nil {
				return nil, err
			}
			return NewEngineBackend(eng)
		}
		g := g0.Clone()
		emb, err := gnn.Forward(g, model, feats)
		if err != nil {
			return nil, err
		}
		eng, err := engine.NewRipple(g, model, emb, engine.Config{})
		if err != nil {
			return nil, err
		}
		return NewEngineBackend(eng)
	}

	for _, mode := range []struct {
		name  string
		depth int
	}{
		{"Serial", -1},
		{"Pipelined", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv, err := Open(loader, Config{
				DataDir:       b.TempDir(),
				Fsync:         true,
				SegmentBytes:  256 << 20,
				PipelineDepth: mode.depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < submitters; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						u := featUpdate(int(i)%vertices, w, int(i))
						if _, err := srv.Apply([]engine.Update{u}); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			st := srv.Stats()
			if st.WALAppends > 0 {
				b.ReportMetric(float64(st.WALFsyncs)/float64(st.WALAppends), "fsyncs/batch")
			}
		})
	}
}
