package serve

import (
	"errors"
	"testing"

	"ripple/internal/engine"
	"ripple/internal/tensor"
)

// faultBackend wraps a healthy backend and injects one infrastructure
// error on demand, counting pass-through calls.
type faultBackend struct {
	inner   Backend
	inject  error
	applies int
}

func (f *faultBackend) Bootstrap() ([]int32, []tensor.Vector, int) { return f.inner.Bootstrap() }

func (f *faultBackend) ApplyBatch(batch []engine.Update) (engine.BatchResult, []Row, error) {
	f.applies++
	if f.inject != nil {
		err := f.inject
		f.inject = nil
		return engine.BatchResult{}, nil, err
	}
	return f.inner.ApplyBatch(batch)
}

// TestBackendFailureLatches pins the outage contract: an infrastructure
// error from the backend (anything that is not an ErrBadUpdate-class
// rejection) latches the server into a failed state — writes are refused
// fast with ErrBackendFailed and never reach the backend again, nothing
// is counted as a client rejection, no salvage retries run, and reads
// keep serving the last published epoch.
func TestBackendFailureLatches(t *testing.T) {
	w := newWorld(t, 31)
	inner, err := NewEngineBackend(w.eng)
	if err != nil {
		t.Fatal(err)
	}
	fb := &faultBackend{inner: inner}
	srv, err := NewBackend(fb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A rejection first: counted, not latching.
	bad := engine.Update{Kind: engine.FeatureUpdate, U: 5, Features: tensor.NewVector(1)}
	if _, err := srv.Apply([]engine.Update{bad}); !errors.Is(err, engine.ErrBadUpdate) {
		t.Fatalf("bad-update error = %v", err)
	}
	if _, err := srv.Apply(w.batch(3)); err != nil {
		t.Fatalf("healthy apply after rejection: %v", err)
	}
	epoch := srv.Snapshot().Epoch()

	// Infrastructure failure: latches, is not a rejection.
	fb.inject = errors.New("transport: connection closed")
	_, err = srv.Apply(w.batch(2))
	if !errors.Is(err, ErrBackendFailed) {
		t.Fatalf("infra failure error = %v, want ErrBackendFailed", err)
	}
	st := srv.Stats()
	if !st.BackendFailed {
		t.Fatal("Stats.BackendFailed not set")
	}
	if st.Rejected != 1 {
		t.Fatalf("infra failure counted as rejection: Rejected = %d, want 1 (the bad update only)", st.Rejected)
	}
	if st.Epoch != epoch {
		t.Fatalf("failed batch moved the epoch: %d → %d", epoch, st.Epoch)
	}

	// Writes now fail fast without touching the backend; no salvage runs.
	applies := fb.applies
	if _, err := srv.Apply(w.batch(2)); !errors.Is(err, ErrBackendFailed) {
		t.Fatalf("post-failure Apply error = %v", err)
	}
	if err := srv.Submit(w.batch(1)[0]); !errors.Is(err, ErrBackendFailed) {
		t.Fatalf("post-failure Submit error = %v", err)
	}
	srv.Flush()
	if fb.applies != applies {
		t.Fatalf("failed server still drove the backend: %d extra applies", fb.applies-applies)
	}

	// Reads keep serving the last published epoch.
	snap := srv.Snapshot()
	if snap.Epoch() != epoch || snap.Label(0) < 0 {
		t.Fatalf("reads degraded after backend failure: epoch %d label %d", snap.Epoch(), snap.Label(0))
	}
}

// TestBackendFailureSkipsSalvage checks the coalesced-flush path: a flush
// that dies on infrastructure failure is not retried update-by-update.
func TestBackendFailureSkipsSalvage(t *testing.T) {
	w := newWorld(t, 33)
	inner, err := NewEngineBackend(w.eng)
	if err != nil {
		t.Fatal(err)
	}
	fb := &faultBackend{inner: inner}
	srv, err := NewBackend(fb, Config{MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, u := range w.batch(5) {
		if err := srv.Submit(u); err != nil {
			t.Fatal(err)
		}
	}
	fb.inject = errors.New("cluster: worker failed")
	applies := fb.applies
	srv.Flush() // one coalesced flush hits the injected failure
	if fb.applies != applies+1 {
		t.Fatalf("flush drove the backend %d times, want exactly 1 (no per-update salvage)", fb.applies-applies)
	}
	if st := srv.Stats(); !st.BackendFailed || st.Rejected != 0 {
		t.Fatalf("after failed flush: BackendFailed=%v Rejected=%d", st.BackendFailed, st.Rejected)
	}
}
