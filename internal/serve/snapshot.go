package serve

import (
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// Snapshot is one immutable epoch of the serving tables: every vertex's
// predicted label and final-layer logits as of the batch that published
// it. Snapshots are never mutated after publication — a reader that pins
// one sees a single consistent epoch for as long as it holds the
// reference, no matter how many batches the writer applies meanwhile
// (reclamation of unpinned epochs is the garbage collector's job, the Go
// equivalent of RCU grace periods).
type Snapshot struct {
	epoch   uint64
	classes int
	labels  []int32   // labels[v]; -1 for removed vertices
	logits  []float32 // row-major [v*classes : (v+1)*classes]
}

// Epoch returns the publication epoch: 0 for the bootstrap snapshot,
// incremented by one for every applied batch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumVertices returns the number of vertices covered by the snapshot.
func (s *Snapshot) NumVertices() int { return len(s.labels) }

// NumClasses returns the width of the final layer.
func (s *Snapshot) NumClasses() int { return s.classes }

// Label returns the predicted class of vertex v at this epoch, or -1 if v
// is out of range or was removed.
func (s *Snapshot) Label(v graph.VertexID) int {
	if v < 0 || int(v) >= len(s.labels) {
		return -1
	}
	return int(s.labels[v])
}

// Embedding returns a copy of vertex v's final-layer logits at this
// epoch, or nil if v is out of range.
func (s *Snapshot) Embedding(v graph.VertexID) tensor.Vector {
	row := s.row(v)
	if row == nil {
		return nil
	}
	out := tensor.NewVector(s.classes)
	copy(out, row)
	return out
}

// row returns the internal logit row of v (shared storage — callers must
// not write through it), or nil if v is out of range.
func (s *Snapshot) row(v graph.VertexID) []float32 {
	if v < 0 || int(v) >= len(s.labels) {
		return nil
	}
	return s.logits[int(v)*s.classes : (int(v)+1)*s.classes]
}

// Ranked is one entry of a TopK result: a class and its logit score.
type Ranked struct {
	Class int     `json:"class"`
	Score float32 `json:"score"`
}

// TopK returns vertex v's k highest-scoring classes in descending score
// order (ties broken by lower class id), or nil if v is out of range. k
// is clamped to the number of classes.
func (s *Snapshot) TopK(v graph.VertexID, k int) []Ranked {
	row := s.row(v)
	if row == nil || k <= 0 {
		return nil
	}
	if k > s.classes {
		k = s.classes
	}
	out := make([]Ranked, 0, k)
	for c, score := range row {
		// Insert into the (small, k-bounded) sorted result.
		i := len(out)
		for i > 0 && out[i-1].Score < score {
			i--
		}
		if i >= k {
			continue
		}
		if len(out) < k {
			out = append(out, Ranked{})
		}
		copy(out[i+1:], out[i:])
		out[i] = Ranked{Class: c, Score: score}
	}
	return out
}
