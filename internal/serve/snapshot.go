package serve

import (
	"math/bits"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// defaultPageRows is the default page granularity of the serving tables.
// The choice trades copy amplification against page-table size: publishing
// an epoch copies every page a frontier row lands on, so a page costs
// rows·classes·4 bytes of memmove even when the batch rewrote a single
// row in it, while the page table costs one pointer per page per epoch.
// At 256 rows a 40-class table copies ≤40 KiB per touched page — a
// scattered 64-row frontier on a million-vertex graph publishes ~2.6 MiB
// instead of the old 164 MiB whole-table clone — while the page table
// stays under 4k entries (≲32 KiB cloned per epoch). See BenchmarkPublish
// and DESIGN.md §4.
const defaultPageRows = 256

// page is one fixed-size block of the serving tables: the labels and
// row-major logits of pageRows consecutive vertices (fewer in the last
// page). Pages are immutable once referenced by a published snapshot;
// the publisher copies a page before rewriting rows in it.
type page struct {
	labels []int32   // labels[off]; -1 for removed vertices
	logits []float32 // row-major [off*classes : (off+1)*classes]
}

// Snapshot is one immutable epoch of the serving tables: every vertex's
// predicted label and final-layer logits as of the batch that published
// it. Snapshots are never mutated after publication — a reader that pins
// one sees a single consistent epoch for as long as it holds the
// reference, no matter how many batches the writer applies meanwhile
// (reclamation of unpinned epochs is the garbage collector's job, the Go
// equivalent of RCU grace periods).
//
// Storage is paged copy-on-write: the tables are split into fixed-size
// pages behind a page table, and consecutive epochs share every page the
// publishing batch did not touch. Publishing therefore costs O(pages
// touched by the frontier), not O(|V|).
type Snapshot struct {
	epoch   uint64
	classes int
	n       int     // vertices covered
	shift   uint    // log2(rows per page)
	mask    int     // rows per page - 1
	pages   []*page // page table; len = ceil(n / rows)
}

// buildSnapshot lays n = len(labels) vertices out over fresh pages of the
// given power-of-two row count, carved from one contiguous backing
// allocation per table for bootstrap-scan locality.
func buildSnapshot(labels []int32, final []tensor.Vector, classes, pageRows int) *Snapshot {
	n := len(labels)
	logs := make([]float32, n*classes)
	for v := 0; v < n; v++ {
		copy(logs[v*classes:(v+1)*classes], final[v])
	}
	return buildSnapshotFlat(labels, logs, classes, pageRows)
}

// buildSnapshotFlat is buildSnapshot from an already-flat row-major logit
// table — the wire form of replication snapshot frames and follower
// checkpoints. Both inputs are copied; callers may reuse them.
func buildSnapshotFlat(labels []int32, logits []float32, classes, pageRows int) *Snapshot {
	n := len(labels)
	s := &Snapshot{
		classes: classes,
		n:       n,
		shift:   uint(bits.TrailingZeros(uint(pageRows))),
		mask:    pageRows - 1,
		pages:   make([]*page, (n+pageRows-1)/pageRows),
	}
	labs := make([]int32, n)
	logs := make([]float32, n*classes)
	copy(labs, labels)
	copy(logs, logits)
	for p := range s.pages {
		lo := p * pageRows
		hi := lo + pageRows
		if hi > n {
			hi = n
		}
		s.pages[p] = &page{labels: labs[lo:hi:hi], logits: logs[lo*classes : hi*classes : hi*classes]}
	}
	return s
}

// Tables materialises the snapshot's dense label and flat row-major logit
// tables, appending into the truncated dst slices so callers can reuse
// capacity across epochs. This is the inverse of buildSnapshotFlat: the
// exact payload a replication snapshot frame or a follower checkpoint
// carries.
func (s *Snapshot) Tables(labels []int32, logits []float32) ([]int32, []float32) {
	labels, logits = labels[:0], logits[:0]
	for _, pg := range s.pages {
		labels = append(labels, pg.labels...)
		logits = append(logits, pg.logits...)
	}
	return labels, logits
}

// rebuild derives the next epoch from s: the page table is cloned, every
// page holding a changed row is copied before its rows are rewritten from
// the backend-reported delta, and all other pages are shared with s. It
// returns the new snapshot and the number of pages copied. A nil/empty
// delta shares the page table itself: the epoch advances with zero
// copying.
func (s *Snapshot) rebuild(rows []Row) (*Snapshot, int) {
	next := &Snapshot{epoch: s.epoch + 1, classes: s.classes, n: s.n, shift: s.shift, mask: s.mask}
	if len(rows) == 0 {
		next.pages = s.pages
		return next, 0
	}
	next.pages = append([]*page(nil), s.pages...)
	copied := 0
	for _, row := range rows {
		pi := int(row.Vertex) >> s.shift
		pg := next.pages[pi]
		if pg == s.pages[pi] {
			pg = &page{
				labels: append([]int32(nil), pg.labels...),
				logits: append([]float32(nil), pg.logits...),
			}
			next.pages[pi] = pg
			copied++
		}
		off := int(row.Vertex) & s.mask
		copy(pg.logits[off*s.classes:(off+1)*s.classes], row.Logits)
		pg.labels[off] = row.Label
	}
	return next, copied
}

// compacted returns a same-epoch snapshot with every page freshly copied
// into contiguous backing storage. The data is bit-identical (keeping the
// epoch is sound: one epoch, one state), but the result shares no page
// with any earlier epoch — so pages pinned only by historical snapshots
// become reclaimable the moment those snapshots are released, and reads
// regain bootstrap-like locality after many copy-on-write generations.
func (s *Snapshot) compacted() *Snapshot {
	labs := make([]int32, s.n)
	logs := make([]float32, s.n*s.classes)
	rows := s.mask + 1
	next := &Snapshot{epoch: s.epoch, classes: s.classes, n: s.n, shift: s.shift, mask: s.mask, pages: make([]*page, len(s.pages))}
	for p, pg := range s.pages {
		lo := p * rows
		hi := lo + len(pg.labels)
		copy(labs[lo:hi], pg.labels)
		copy(logs[lo*s.classes:hi*s.classes], pg.logits)
		next.pages[p] = &page{labels: labs[lo:hi:hi], logits: logs[lo*s.classes : hi*s.classes : hi*s.classes]}
	}
	return next
}

// Epoch returns the publication epoch: 0 for the bootstrap snapshot,
// incremented by one for every applied batch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumVertices returns the number of vertices covered by the snapshot.
func (s *Snapshot) NumVertices() int { return s.n }

// NumClasses returns the width of the final layer.
func (s *Snapshot) NumClasses() int { return s.classes }

// Label returns the predicted class of vertex v at this epoch, or -1 if v
// is out of range or was removed.
func (s *Snapshot) Label(v graph.VertexID) int {
	if v < 0 || int(v) >= s.n {
		return -1
	}
	return int(s.pages[int(v)>>s.shift].labels[int(v)&s.mask])
}

// Labels bulk-reads the predicted classes of ids at this epoch into dst,
// reusing dst's storage (it is truncated and appended to; pass a slice
// with cap(dst) >= len(ids) for a zero-allocation read) and returning the
// filled slice. Out-of-range and removed vertices yield -1 at their
// position — the per-id analogue of a 404, folded into the row so one bad
// id cannot fail a batch. This is the read path behind POST /labels: one
// snapshot pin serves the whole batch, so every row is from the same
// epoch.
func (s *Snapshot) Labels(ids []graph.VertexID, dst []int32) []int32 {
	dst = dst[:0]
	for _, v := range ids {
		if v < 0 || int(v) >= s.n {
			dst = append(dst, -1)
			continue
		}
		dst = append(dst, s.pages[int(v)>>s.shift].labels[int(v)&s.mask])
	}
	return dst
}

// Embedding returns a copy of vertex v's final-layer logits at this
// epoch, or nil if v is out of range.
func (s *Snapshot) Embedding(v graph.VertexID) tensor.Vector {
	row := s.row(v)
	if row == nil {
		return nil
	}
	out := tensor.NewVector(s.classes)
	copy(out, row)
	return out
}

// row returns the internal logit row of v (shared storage — callers must
// not write through it), or nil if v is out of range.
func (s *Snapshot) row(v graph.VertexID) []float32 {
	if v < 0 || int(v) >= s.n {
		return nil
	}
	off := (int(v) & s.mask) * s.classes
	return s.pages[int(v)>>s.shift].logits[off : off+s.classes]
}

// Ranked is one entry of a TopK result: a class and its logit score.
type Ranked struct {
	Class int     `json:"class"`
	Score float32 `json:"score"`
}

// TopK returns vertex v's k highest-scoring classes in descending score
// order (ties broken by lower class id), or nil if v is out of range. k
// is clamped to the number of classes.
func (s *Snapshot) TopK(v graph.VertexID, k int) []Ranked {
	row := s.row(v)
	if row == nil || k <= 0 {
		return nil
	}
	if k > s.classes {
		k = s.classes
	}
	out := make([]Ranked, 0, k)
	for c, score := range row {
		// Insert into the (small, k-bounded) sorted result.
		i := len(out)
		for i > 0 && out[i-1].Score < score {
			i--
		}
		if i >= k {
			continue
		}
		if len(out) < k {
			out = append(out, Ranked{})
		}
		copy(out[i+1:], out[i:])
		out[i] = Ranked{Class: c, Score: score}
	}
	return out
}
