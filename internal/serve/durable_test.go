package serve

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/tensor"
)

// The durability suite. The central property — crash equivalence — is
// the ISSUE's acceptance criterion: for ANY prefix of the WAL (including
// mid-record torn writes), recovering from the newest checkpoint plus the
// surviving tail and then replaying the remaining stream must end in a
// state bit-identical to an uninterrupted run: same epoch, same labels,
// same logits, same trigger history. Both backends are held to it.

// durWorld freezes a bootstrap state and pre-draws the whole admitted
// stream, so reference runs, durable runs and recovery runs all consume
// identical history.
type durWorld struct {
	t       *testing.T
	model   *gnn.Model
	bootG   *graph.Graph
	bootX   []tensor.Vector
	batches [][]engine.Update
}

func newDurWorld(t *testing.T, n, m, nbatch, maxK int, seed int64) *durWorld {
	t.Helper()
	w := newConfWorld(t, n, m, seed)
	bootG := w.g.Clone()
	bootX := make([]tensor.Vector, len(w.x))
	for i := range bootX {
		bootX[i] = w.x[i].Clone()
	}
	batches := make([][]engine.Update, 0, nbatch)
	for b := 0; b < nbatch; b++ {
		batches = append(batches, w.batch(1+w.rng.Intn(maxK)))
	}
	return &durWorld{t: t, model: w.model, bootG: bootG, bootX: bootX, batches: batches}
}

// engineLoader is the recovery callback for a single-node deployment:
// reload the engine checkpoint, or redo the deterministic bootstrap.
func (w *durWorld) engineLoader() func(io.Reader) (Backend, error) {
	return func(ckpt io.Reader) (Backend, error) {
		if ckpt != nil {
			eng, err := engine.LoadRipple(ckpt, w.model, engine.Config{})
			if err != nil {
				return nil, err
			}
			return NewEngineBackend(eng)
		}
		g := w.bootG.Clone()
		emb, err := gnn.Forward(g, w.model, w.bootX)
		if err != nil {
			return nil, err
		}
		eng, err := engine.NewRipple(g, w.model, emb, engine.Config{})
		if err != nil {
			return nil, err
		}
		return NewEngineBackend(eng)
	}
}

// clusterLoader is the recovery callback for a distributed deployment:
// rebuild the cluster from the barrier manifest (no forward pass), or
// bootstrap and partition from scratch.
func (w *durWorld) clusterLoader(k int) func(io.Reader) (Backend, error) {
	return func(ckpt io.Reader) (Backend, error) {
		if ckpt != nil {
			g, assign, emb, err := cluster.LoadManifest(ckpt)
			if err != nil {
				return nil, err
			}
			c, err := cluster.NewLocal(cluster.LocalConfig{
				Graph: g, Model: w.model, Embeddings: emb,
				Assignment: assign, Strategy: cluster.StratRipple,
			})
			if err != nil {
				return nil, err
			}
			return NewClusterBackend(c, g)
		}
		g := w.bootG.Clone()
		emb, err := gnn.Forward(g, w.model, w.bootX)
		if err != nil {
			return nil, err
		}
		assign, err := partition.ByName("hash", g, k)
		if err != nil {
			return nil, err
		}
		c, err := cluster.NewLocal(cluster.LocalConfig{
			Graph: g, Model: w.model, Embeddings: emb,
			Assignment: assign, Strategy: cluster.StratRipple,
		})
		if err != nil {
			return nil, err
		}
		return NewClusterBackend(c, g)
	}
}

// copyDir clones a data directory (one level of subdirectories, which is
// all the durability layout uses).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// flipCollector accumulates the per-epoch trigger history via OnBatch.
type flipCollector struct {
	perEpoch [][]engine.LabelChange
}

func (c *flipCollector) observe(res engine.BatchResult, err error) {
	if err == nil {
		c.perEpoch = append(c.perEpoch, append([]engine.LabelChange(nil), res.LabelChanges...))
	}
}

func sameFlips(a, b [][]engine.LabelChange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// assertBitIdentical compares two snapshots row by row, exactly — no
// tolerance: recovery replays the same deterministic pipeline, so even
// the float accumulation order is reproduced.
func assertBitIdentical(t *testing.T, got, want *Snapshot, ctx string) {
	t.Helper()
	if got.Epoch() != want.Epoch() {
		t.Fatalf("%s: epoch %d, want %d", ctx, got.Epoch(), want.Epoch())
	}
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: %d vertices, want %d", ctx, got.NumVertices(), want.NumVertices())
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := vid(v)
		if got.Label(id) != want.Label(id) {
			t.Fatalf("%s: vertex %d label %d, want %d", ctx, v, got.Label(id), want.Label(id))
		}
		gl, wl := got.Embedding(id), want.Embedding(id)
		for c := range wl {
			if gl[c] != wl[c] {
				t.Fatalf("%s: vertex %d logit %d = %v, want %v (not bit-identical)", ctx, v, c, gl[c], wl[c])
			}
		}
	}
}

// runCrashEquivalence drives the property: build a reference run, a
// durable run crash-imaged after the full stream (with a checkpoint cut
// at ckptAfter batches; 0 = crash before any checkpoint), then for WAL
// truncation points every `step` bytes (plus the exact end and a
// one-byte tear) recover, replay the remaining stream, and demand bit
// identity.
func runCrashEquivalence(t *testing.T, w *durWorld, loader func(io.Reader) (Backend, error), ckptAfter int, step int) {
	t.Helper()
	M := len(w.batches)

	// Reference: one uninterrupted, non-durable run.
	refBackend, err := loader(nil)
	if err != nil {
		t.Fatal(err)
	}
	var refFlips flipCollector
	refSrv, err := NewBackend(refBackend, Config{OnBatch: refFlips.observe})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(refSrv.Close)
	for i, b := range w.batches {
		if _, err := refSrv.Apply(b); err != nil {
			t.Fatalf("reference batch %d: %v", i, err)
		}
	}
	refSnap := refSrv.Snapshot()

	// Durable run: same stream, then image the data dir as a crash would
	// leave it (no Close, no final checkpoint).
	dir := t.TempDir()
	dsrv, err := Open(loader, Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range w.batches {
		if _, err := dsrv.Apply(b); err != nil {
			t.Fatalf("durable batch %d: %v", i, err)
		}
		if i+1 == ckptAfter {
			if _, err := dsrv.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after batch %d: %v", i, err)
			}
		}
	}
	image := t.TempDir()
	copyDir(t, dir, image)
	dsrv.Close()

	segs, err := filepath.Glob(filepath.Join(image, "wal", "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("crash image holds %d WAL segments (%v), expected 1", len(segs), err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	cuts := []int{len(full), len(full) - 1, 0}
	for cut := step; cut < len(full); cut += step {
		cuts = append(cuts, cut)
	}
	sawFull, sawPartial := false, false
	for _, cut := range cuts {
		cdir := t.TempDir()
		copyDir(t, image, cdir)
		if err := os.Truncate(filepath.Join(cdir, "wal", segName), int64(cut)); err != nil {
			t.Fatal(err)
		}
		var flips flipCollector
		rsrv, err := Open(loader, Config{DataDir: cdir, OnBatch: flips.observe})
		if err != nil {
			t.Fatalf("cut %d/%d: recovery failed: %v", cut, len(full), err)
		}
		e := int(rsrv.Snapshot().Epoch())
		if e < ckptAfter || e > M {
			t.Fatalf("cut %d: recovered to epoch %d outside [%d,%d]", cut, e, ckptAfter, M)
		}
		if e == M {
			sawFull = true
		} else {
			sawPartial = true
		}
		if st := rsrv.Stats(); st.RecoveredBatches != int64(e-ckptAfter) {
			t.Fatalf("cut %d: stats report %d recovered batches, epoch says %d", cut, st.RecoveredBatches, e-ckptAfter)
		}
		// Replay the remaining stream — the batches whose epochs the
		// crash destroyed — through the normal write path.
		for i, b := range w.batches[e:] {
			if _, err := rsrv.Apply(b); err != nil {
				t.Fatalf("cut %d: re-applying batch %d: %v", cut, e+i, err)
			}
		}
		assertBitIdentical(t, rsrv.Snapshot(), refSnap, "cut "+segName)
		// Trigger history: replayed + re-applied flips must be the
		// reference's, epoch for epoch, from the checkpoint on.
		if !sameFlips(flips.perEpoch, refFlips.perEpoch[ckptAfter:]) {
			t.Fatalf("cut %d: trigger history diverges from reference", cut)
		}
		rsrv.Close()
	}
	if !sawFull || !sawPartial {
		t.Fatalf("cut schedule did not cover both full (%v) and torn (%v) recovery", sawFull, sawPartial)
	}
}

func TestCrashEquivalenceEngine(t *testing.T) {
	w := newDurWorld(t, 60, 240, 9, 5, 101)
	runCrashEquivalence(t, w, w.engineLoader(), 3, 23)
}

func TestCrashEquivalenceEngineNoCheckpoint(t *testing.T) {
	w := newDurWorld(t, 40, 160, 6, 4, 103)
	runCrashEquivalence(t, w, w.engineLoader(), 0, 61)
}

func TestCrashEquivalenceCluster(t *testing.T) {
	w := newDurWorld(t, 48, 200, 6, 4, 107)
	runCrashEquivalence(t, w, w.clusterLoader(3), 2, 211)
}

// waitForCheckpoint polls until an automatic checkpoint at epoch has
// completed and truncated the WAL behind it. Automatic checkpoints are
// background work since the admission pipeline — they no longer complete
// before the triggering Apply returns.
func waitForCheckpoint(t *testing.T, srv *Server, epoch uint64) Stats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.LastCheckpointEpoch == epoch && st.WALBytes == 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint at epoch %d did not land: last %d, %d live WAL bytes",
				epoch, st.LastCheckpointEpoch, st.WALBytes)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCheckpointTruncatesWAL pins the steady-state disk bound: with
// periodic checkpoints the on-disk footprint is one checkpoint plus the
// batches since it — the WAL never grows with total history, and old
// checkpoints are pruned.
func TestCheckpointTruncatesWAL(t *testing.T) {
	w := newDurWorld(t, 40, 160, 24, 3, 109)
	srv, err := Open(w.engineLoader(), Config{DataDir: t.TempDir(), CheckpointEvery: 4, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var walPeak, intervalPeak int64
	for i, b := range w.batches {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
		if (i+1)%4 == 0 {
			// The background checkpoint must land, truncate the WAL and
			// prune its predecessor; only the completion is asynchronous.
			waitForCheckpoint(t, srv, uint64(i+1))
			continue
		}
		st := srv.Stats()
		if st.WALBytes > walPeak {
			walPeak = st.WALBytes
		}
		if i < 4 && st.WALBytes > intervalPeak {
			intervalPeak = st.WALBytes // footprint of one full interval
		}
	}
	// The WAL never outgrew O(batches since the last checkpoint): across
	// 6 checkpoint intervals its peak stayed within one interval's bytes
	// (×2 slack for batch-size variance), never O(total history).
	if walPeak == 0 || walPeak > 2*intervalPeak {
		t.Fatalf("WAL peaked at %d bytes; one interval is %d — footprint grows with history", walPeak, intervalPeak)
	}
	if st := srv.Stats(); st.WALSegments > 2 {
		t.Fatalf("steady state holds %d WAL segments", st.WALSegments)
	}

	// Exactly one checkpoint file lives on disk (older ones pruned).
	ckpts, err := filepath.Glob(filepath.Join(srv.cfg.DataDir, "ckpt-*"+ckptSuffix))
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("%d checkpoint files on disk (%v), want 1", len(ckpts), err)
	}
}

// TestGracefulCloseNeedsZeroReplay: Close takes a clean final checkpoint,
// so the next Open replays nothing.
func TestGracefulCloseNeedsZeroReplay(t *testing.T) {
	w := newDurWorld(t, 40, 160, 5, 4, 113)
	dir := t.TempDir()
	srv, err := Open(w.engineLoader(), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.batches {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	want := srv.Snapshot()
	srv.Close()

	srv2, err := Open(w.engineLoader(), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	st := srv2.Stats()
	if st.RecoveredBatches != 0 {
		t.Fatalf("clean restart replayed %d batches", st.RecoveredBatches)
	}
	if st.LastCheckpointEpoch != uint64(len(w.batches)) {
		t.Fatalf("clean restart resumed from checkpoint epoch %d, want %d", st.LastCheckpointEpoch, len(w.batches))
	}
	if st.WALBytes != 0 {
		t.Fatalf("clean restart found %d live WAL bytes", st.WALBytes)
	}
	assertBitIdentical(t, srv2.Snapshot(), want, "clean restart")
}

// TestDurableRejectionsStayOut: a batch that fails validation must not
// reach the WAL — recovery must not replay garbage — and the durable
// server keeps the engine's rejection semantics (including the admission
// queue's per-update salvage).
func TestDurableRejectionsStayOut(t *testing.T) {
	w := newDurWorld(t, 30, 120, 3, 3, 127)
	dir := t.TempDir()
	srv, err := Open(w.engineLoader(), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.batches {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	bad := []engine.Update{{Kind: engine.FeatureUpdate, U: vid(1000), Features: tensor.NewVector(w.model.Dims[0])}}
	if _, err := srv.Apply(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	st := srv.Stats()
	if st.Rejected != 1 || st.Epoch != uint64(len(w.batches)) {
		t.Fatalf("rejection accounting: %+v", st)
	}
	srv.Close()

	srv2, err := Open(w.engineLoader(), Config{DataDir: dir})
	if err != nil {
		t.Fatalf("recovery after rejection: %v", err)
	}
	defer srv2.Close()
	if got := srv2.Snapshot().Epoch(); got != uint64(len(w.batches)) {
		t.Fatalf("recovered epoch %d, want %d", got, len(w.batches))
	}
}

// TestOpenRefusesCorruptCheckpoint: when checkpoint files exist but none
// loads, Open must fail — the WAL behind a checkpoint was truncated, so
// silently falling back to bootstrap would serve a state missing the
// checkpointed history as if nothing were wrong.
func TestOpenRefusesCorruptCheckpoint(t *testing.T) {
	w := newDurWorld(t, 30, 120, 4, 3, 137)
	dir := t.TempDir()
	srv, err := Open(w.engineLoader(), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.batches {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close() // final checkpoint; WAL fully truncated

	ckpts, err := filepath.Glob(filepath.Join(dir, "ckpt-*"+ckptSuffix))
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("checkpoint files: %v (%v)", ckpts, err)
	}
	b, err := os.ReadFile(ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff // break the envelope magic: the checkpoint no longer loads
	if err := os.WriteFile(ckpts[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(w.engineLoader(), Config{DataDir: dir}); err == nil {
		t.Fatal("Open served bootstrap state over an existing (corrupt) checkpoint")
	}

	// A truncated backend payload (structural corruption past the
	// envelope) must refuse the same way.
	if err := os.WriteFile(ckpts[0], append([]byte{}, b[:len(b)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff // restore magic; payload is now half missing
	if err := os.WriteFile(ckpts[0], b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(w.engineLoader(), Config{DataDir: dir}); err == nil {
		t.Fatal("Open served bootstrap state over a truncated checkpoint")
	}
}

// failingBackend wraps a real backend and fails ApplyBatch with an
// infrastructure-class error once armed — validation still passes, so
// the batch reaches the WAL before the apply fails.
type failingBackend struct {
	Backend
	arm bool
}

func (f *failingBackend) ApplyBatch(batch []engine.Update) (engine.BatchResult, []Row, error) {
	if f.arm {
		return engine.BatchResult{}, nil, errors.New("injected infrastructure failure")
	}
	return f.Backend.ApplyBatch(batch)
}
func (f *failingBackend) ValidateBatch(batch []engine.Update) error {
	return f.Backend.(interface {
		ValidateBatch([]engine.Update) error
	}).ValidateBatch(batch)
}
func (f *failingBackend) SaveCheckpoint(w io.Writer) error {
	return f.Backend.(interface{ SaveCheckpoint(io.Writer) error }).SaveCheckpoint(w)
}

// TestInfraFailureDoesNotResurrectLoggedBatch: a batch that was logged
// but whose apply failed with an infrastructure error was reported as
// failed to its client — the WAL record must be withdrawn so recovery
// does not silently apply it.
func TestInfraFailureDoesNotResurrectLoggedBatch(t *testing.T) {
	w := newDurWorld(t, 30, 120, 4, 3, 139)
	dir := t.TempDir()
	var fb *failingBackend
	loader := func(ckpt io.Reader) (Backend, error) {
		b, err := w.engineLoader()(ckpt)
		if err != nil {
			return nil, err
		}
		fb = &failingBackend{Backend: b}
		return fb, nil
	}
	srv, err := Open(loader, Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.batches[:3] {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	fb.arm = true
	if _, err := srv.Apply(w.batches[3]); !errors.Is(err, ErrBackendFailed) {
		t.Fatalf("injected failure surfaced as %v, want ErrBackendFailed", err)
	}
	srv.Close() // failed backend: no final checkpoint; WAL is the truth

	srv2, err := Open(w.engineLoader(), Config{DataDir: dir})
	if err != nil {
		t.Fatalf("recovery after infrastructure failure: %v", err)
	}
	defer srv2.Close()
	st := srv2.Stats()
	if st.Epoch != 3 || st.RecoveredBatches != 3 {
		t.Fatalf("recovered to epoch %d with %d replayed — the failed batch was resurrected (want epoch 3)", st.Epoch, st.RecoveredBatches)
	}
}

// TestNewBackendRejectsDataDir: the non-recovering constructors must not
// silently ignore a durability config.
func TestNewBackendRejectsDataDir(t *testing.T) {
	w := newDurWorld(t, 20, 60, 1, 2, 131)
	b, err := w.engineLoader()(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBackend(b, Config{DataDir: t.TempDir()}); err == nil {
		t.Fatal("NewBackend accepted a DataDir")
	}
}

// --- incremental delta chains (Config.FullCheckpointEvery) ---

// deltaChainImage builds the canonical delta-chain crash image: 12
// batches with a manual checkpoint after every 2, FullCheckpointEvery=3,
// so the cadence cuts full@2, delta@4, delta@6, full@8, delta@10 and the
// crash (no Close) leaves full@8 + delta@10 on disk with a WAL tail
// holding epochs 9..12. Returns the image dir, the reference snapshot
// and per-epoch trigger history of an uninterrupted run.
func deltaChainImage(t *testing.T, w *durWorld, loader func(io.Reader) (Backend, error)) (string, *Snapshot, [][]engine.LabelChange) {
	t.Helper()
	if len(w.batches) != 12 {
		t.Fatalf("deltaChainImage wants 12 batches, got %d", len(w.batches))
	}
	refBackend, err := loader(nil)
	if err != nil {
		t.Fatal(err)
	}
	var refFlips flipCollector
	refSrv, err := NewBackend(refBackend, Config{OnBatch: refFlips.observe})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(refSrv.Close)
	for i, b := range w.batches {
		if _, err := refSrv.Apply(b); err != nil {
			t.Fatalf("reference batch %d: %v", i, err)
		}
	}

	dir := t.TempDir()
	dsrv, err := Open(loader, Config{DataDir: dir, FullCheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantDeltaAt := map[int]bool{2: false, 4: true, 6: true, 8: false, 10: true}
	for i, b := range w.batches {
		if _, err := dsrv.Apply(b); err != nil {
			t.Fatalf("durable batch %d: %v", i, err)
		}
		epoch := i + 1
		if epoch%2 != 0 || epoch >= len(w.batches) {
			continue
		}
		st, err := dsrv.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint at epoch %d: %v", epoch, err)
		}
		if st.Delta != wantDeltaAt[epoch] {
			t.Fatalf("checkpoint at epoch %d: delta=%v, cadence wants %v", epoch, st.Delta, wantDeltaAt[epoch])
		}
		if st.Delta && st.BaseEpoch != uint64(epoch-2) {
			t.Fatalf("delta at epoch %d chains onto %d, want %d", epoch, st.BaseEpoch, epoch-2)
		}
		if !st.Delta && st.WALBytes != 0 {
			t.Fatalf("full checkpoint at epoch %d left %d WAL bytes", epoch, st.WALBytes)
		}
		if st.Delta && st.WALBytes == 0 {
			t.Fatalf("delta checkpoint at epoch %d truncated the WAL — its fallback is gone", epoch)
		}
		// Pruning safety, observed live: after a full cut no delta may
		// survive (a surviving one would chain onto a pruned base), and
		// exactly one full remains.
		if !st.Delta {
			if d, _ := filepath.Glob(filepath.Join(dir, "ckpt-*"+deltaCkptSuffix)); len(d) != 0 {
				t.Fatalf("full checkpoint at epoch %d left deltas behind: %v", epoch, d)
			}
			if f, _ := filepath.Glob(filepath.Join(dir, "ckpt-*"+ckptSuffix)); len(f) != 1 {
				t.Fatalf("full checkpoint at epoch %d left %d fulls", epoch, len(f))
			}
		}
	}
	st := dsrv.Stats()
	if st.FullCheckpoints != 2 || st.DeltaCheckpoints != 3 {
		t.Fatalf("checkpoint accounting: %d full / %d delta, want 2/3", st.FullCheckpoints, st.DeltaCheckpoints)
	}
	image := t.TempDir()
	copyDir(t, dir, image)
	dsrv.Close()

	if f, _ := filepath.Glob(filepath.Join(image, "ckpt-*"+ckptSuffix)); len(f) != 1 {
		t.Fatalf("crash image holds %d full checkpoints, want 1 (epoch 8)", len(f))
	}
	if d, _ := filepath.Glob(filepath.Join(image, "ckpt-*"+deltaCkptSuffix)); len(d) != 1 {
		t.Fatalf("crash image holds %d deltas, want 1 (epoch 10)", len(d))
	}
	return image, refSrv.Snapshot(), refFlips.perEpoch
}

// recoverAndVerify opens a copy-free image dir, asserts the recovered
// epoch starts at chainEnd, replays the rest of the stream and demands
// bit identity with the reference, trigger history included.
func recoverAndVerify(t *testing.T, w *durWorld, loader func(io.Reader) (Backend, error), dir string, chainEnd int, refSnap *Snapshot, refFlips [][]engine.LabelChange, ctx string) {
	t.Helper()
	M := len(w.batches)
	var flips flipCollector
	rsrv, err := Open(loader, Config{DataDir: dir, FullCheckpointEvery: 3, OnBatch: flips.observe})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", ctx, err)
	}
	defer rsrv.Close()
	e := int(rsrv.Snapshot().Epoch())
	if e < chainEnd || e > M {
		t.Fatalf("%s: recovered to epoch %d outside [%d,%d]", ctx, e, chainEnd, M)
	}
	if st := rsrv.Stats(); st.RecoveredBatches != int64(e-chainEnd) {
		t.Fatalf("%s: stats report %d recovered batches; epoch %d from chain end %d says %d",
			ctx, st.RecoveredBatches, e, chainEnd, e-chainEnd)
	}
	for i, b := range w.batches[e:] {
		if _, err := rsrv.Apply(b); err != nil {
			t.Fatalf("%s: re-applying batch %d: %v", ctx, e+i, err)
		}
	}
	assertBitIdentical(t, rsrv.Snapshot(), refSnap, ctx)
	if !sameFlips(flips.perEpoch, refFlips[chainEnd:]) {
		t.Fatalf("%s: trigger history diverges from reference", ctx)
	}
}

// TestCrashEquivalenceDeltaChain: crash equivalence over full+delta
// chains. With the chain intact, recovery = full@8 + delta@10 + WAL
// tail; for every WAL truncation point the result must be bit-identical
// to the uninterrupted reference.
func TestCrashEquivalenceDeltaChain(t *testing.T) {
	w := newDurWorld(t, 60, 240, 12, 5, 151)
	loader := w.engineLoader()
	image, refSnap, refFlips := deltaChainImage(t, w, loader)

	segs, err := filepath.Glob(filepath.Join(image, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("crash image WAL segments: %v (%v)", segs, err)
	}
	// Cut the newest segment (the one holding the tail records).
	seg := segs[len(segs)-1]
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{len(full), len(full) - 1, len(full) / 2, 0}
	for _, cut := range cuts {
		cdir := t.TempDir()
		copyDir(t, image, cdir)
		if err := os.Truncate(filepath.Join(cdir, "wal", filepath.Base(seg)), int64(cut)); err != nil {
			t.Fatal(err)
		}
		// Chain end is epoch 10 (full@8 + delta@10) regardless of the WAL
		// cut: deltas don't depend on WAL bytes.
		recoverAndVerify(t, w, loader, cdir, 10, refSnap, refFlips, fmt.Sprintf("wal cut %d/%d", cut, len(full)))
	}
}

// TestDeltaTruncationFallsBackToReplay: arbitrary truncation or
// corruption of the delta file must not lose history — recovery drops
// the unusable delta, falls back to the full checkpoint, and the WAL
// tail (never truncated at delta epochs) covers the difference. The
// dropped file is also deleted so later recoveries skip it.
func TestDeltaTruncationFallsBackToReplay(t *testing.T) {
	w := newDurWorld(t, 60, 240, 12, 5, 157)
	loader := w.engineLoader()
	image, refSnap, refFlips := deltaChainImage(t, w, loader)

	deltas, err := filepath.Glob(filepath.Join(image, "ckpt-*"+deltaCkptSuffix))
	if err != nil || len(deltas) != 1 {
		t.Fatalf("delta files: %v (%v)", deltas, err)
	}
	raw, err := os.ReadFile(deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(deltas[0])

	corrupt := func(dir string, mutate func(path string)) string {
		cdir := t.TempDir()
		copyDir(t, dir, cdir)
		mutate(filepath.Join(cdir, name))
		return cdir
	}
	cases := []struct {
		ctx    string
		mutate func(path string)
	}{
		{"delta truncated to 0", func(p string) { os.Truncate(p, 0) }},
		{"delta header-only", func(p string) { os.Truncate(p, 20) }},
		{"delta half", func(p string) { os.Truncate(p, int64(len(raw)/2)) }},
		{"delta one-byte tear", func(p string) { os.Truncate(p, int64(len(raw)-1)) }},
		{"delta payload bit-flip", func(p string) {
			b := append([]byte(nil), raw...)
			b[len(b)-5] ^= 0x20
			os.WriteFile(p, b, 0o644)
		}},
		{"delta missing", func(p string) { os.Remove(p) }},
	}
	for _, tc := range cases {
		cdir := corrupt(image, tc.mutate)
		// Chain end falls back to the full checkpoint at epoch 8; the WAL
		// holds 9..12, so recovery still reaches epoch 12.
		recoverAndVerify(t, w, loader, cdir, 8, refSnap, refFlips, tc.ctx)
		if left, _ := filepath.Glob(filepath.Join(cdir, "ckpt-*"+deltaCkptSuffix)); len(left) != 0 {
			t.Fatalf("%s: unusable delta not deleted: %v", tc.ctx, left)
		}
	}
}

// TestDeltaChainSerialBaseline: the serial write path (PipelineDepth<0)
// cuts the same chains through checkpointLocked; a graceful Close always
// ends on a full checkpoint so the restart replays nothing.
func TestDeltaChainSerialBaseline(t *testing.T) {
	w := newDurWorld(t, 40, 160, 6, 4, 163)
	dir := t.TempDir()
	srv, err := Open(w.engineLoader(), Config{DataDir: dir, FullCheckpointEvery: 2, PipelineDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := []bool{false, true, false} // cadence: full, delta, full
	for i, b := range w.batches {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
		if (i+1)%2 == 0 && (i+1)/2 <= len(wantDelta) {
			st, err := srv.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if st.Delta != wantDelta[(i+1)/2-1] {
				t.Fatalf("serial checkpoint %d: delta=%v, want %v", (i+1)/2, st.Delta, wantDelta[(i+1)/2-1])
			}
		}
	}
	want := srv.Snapshot()
	srv.Close() // final checkpoint must be full

	srv2, err := Open(w.engineLoader(), Config{DataDir: dir, FullCheckpointEvery: 2, PipelineDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if st := srv2.Stats(); st.RecoveredBatches != 0 {
		t.Fatalf("graceful serial restart replayed %d batches — Close did not end on a full checkpoint", st.RecoveredBatches)
	}
	if d, _ := filepath.Glob(filepath.Join(dir, "ckpt-*"+deltaCkptSuffix)); len(d) != 0 {
		t.Fatalf("graceful close left deltas: %v", d)
	}
	assertBitIdentical(t, srv2.Snapshot(), want, "serial delta-chain restart")
}

// TestClusterBackendFallsBackToFullCheckpoints: the cluster backend has
// no delta face; FullCheckpointEvery must degrade to full checkpoints at
// every interval, not fail or write bad files.
func TestClusterBackendFallsBackToFullCheckpoints(t *testing.T) {
	w := newDurWorld(t, 48, 200, 4, 4, 167)
	dir := t.TempDir()
	srv, err := Open(w.clusterLoader(3), Config{DataDir: dir, FullCheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range w.batches {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
		if (i+1)%2 == 0 {
			st, err := srv.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if st.Delta {
				t.Fatalf("cluster backend cut a delta at epoch %d", i+1)
			}
		}
	}
	if st := srv.Stats(); st.DeltaCheckpoints != 0 || st.FullCheckpoints != 2 {
		t.Fatalf("cluster checkpoint accounting: %+v", st)
	}
	if d, _ := filepath.Glob(filepath.Join(dir, "ckpt-*"+deltaCkptSuffix)); len(d) != 0 {
		t.Fatalf("cluster backend wrote delta files: %v", d)
	}
	want := srv.Snapshot()
	srv.Close()
	srv2, err := Open(w.clusterLoader(3), Config{DataDir: dir, FullCheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	assertBitIdentical(t, srv2.Snapshot(), want, "cluster full-fallback restart")
}

// TestRecoveryProgressReports: the progress gauge activates on Open
// entry, counts every replayed batch, and deactivates with the final
// totals readable.
func TestRecoveryProgressReports(t *testing.T) {
	w := newDurWorld(t, 40, 160, 6, 4, 173)
	dir := t.TempDir()
	srv, err := Open(w.engineLoader(), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.batches {
		if _, err := srv.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	image := t.TempDir()
	copyDir(t, dir, image) // crash image: no checkpoint, full WAL
	srv.Close()

	var p RecoveryProgress
	if snap := p.Snapshot(); snap.Started || snap.Active {
		t.Fatalf("zero-value progress reports %+v", snap)
	}
	srv2, err := Open(w.engineLoader(), Config{DataDir: image, Recovery: &p})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	snap := p.Snapshot()
	if snap.Active {
		t.Fatal("progress still active after Open returned")
	}
	if !snap.Started || snap.Batches != int64(len(w.batches)) {
		t.Fatalf("final progress %+v, want %d batches", snap, len(w.batches))
	}
	if snap.Seconds <= 0 || snap.BatchesPerSec <= 0 {
		t.Fatalf("final progress has no rate: %+v", snap)
	}
}

// vid converts an int vertex index for readability in the tests above.
func vid(v int) graph.VertexID { return graph.VertexID(v) }
