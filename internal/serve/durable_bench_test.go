package serve

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"ripple/internal/dataset"
	"ripple/internal/engine"
	"ripple/internal/gnn"
)

// BenchmarkRecovery measures serve.Open's full recovery path at serving
// scale — 100k vertices (arxiv shape) — from a crash image holding one
// checkpoint plus a WAL tail: checkpoint load, engine reconstruction,
// and tail replay through the normal apply path. The reported
// replayed-batches/op metric is the tail length each op re-derived.
func BenchmarkRecovery(b *testing.B) {
	const (
		scale      = 0.6 // 169343 × 0.6 ≈ 100k vertices
		batchSize  = 64
		total      = 48 // batches streamed before the crash
		ckptAfter  = 16 // checkpoint position: 32-batch replay tail
		hiddenDim  = 32
		walSegSize = 64 << 20
	)
	spec, err := dataset.ByName("arxiv", scale)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := dataset.Build(spec, dataset.StreamConfig{Total: total * batchSize, HoldoutFrac: 0.1, Seed: spec.Seed})
	if err != nil {
		b.Fatal(err)
	}
	model, err := gnn.NewWorkload("GC-S", []int{spec.FeatureDim, hiddenDim, spec.NumClasses}, spec.Seed)
	if err != nil {
		b.Fatal(err)
	}
	loader := func(ckpt io.Reader) (Backend, error) {
		if ckpt != nil {
			eng, err := engine.LoadRipple(ckpt, model, engine.Config{})
			if err != nil {
				return nil, err
			}
			return NewEngineBackend(eng)
		}
		g := wl.CloneSnapshot()
		emb, err := gnn.Forward(g, model, wl.Features)
		if err != nil {
			return nil, err
		}
		eng, err := engine.NewRipple(g, model, emb, engine.Config{})
		if err != nil {
			return nil, err
		}
		return NewEngineBackend(eng)
	}

	// Build the crash image once: bootstrap, stream, checkpoint mid-way,
	// abandon without Close so the WAL tail survives.
	image := b.TempDir()
	srv, err := Open(loader, Config{DataDir: image, SegmentBytes: walSegSize})
	if err != nil {
		b.Fatal(err)
	}
	batches := wl.Batches(batchSize)
	if len(batches) > total {
		batches = batches[:total]
	}
	for i, batch := range batches {
		if _, err := srv.Apply(batch); err != nil {
			b.Fatalf("batch %d: %v", i, err)
		}
		if i+1 == ckptAfter {
			if _, err := srv.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Deliberately no srv.Close(): a close would checkpoint the tail away.

	var replayed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		benchCopyDir(b, image, dir)
		b.StartTimer()
		rsrv, err := Open(loader, Config{DataDir: dir, SegmentBytes: walSegSize})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st := rsrv.Stats()
		replayed += st.RecoveredBatches
		if st.Epoch != uint64(len(batches)) {
			b.Fatalf("recovered to epoch %d, want %d", st.Epoch, len(batches))
		}
		// Skip Close's final checkpoint: the image copy is discarded.
		// Drain the admission pipeline first so the applier goroutine
		// exits before the WAL goes away underneath it.
		rsrv.batcher.Close()
		rsrv.admitMu.Lock()
		rsrv.admitClosed = true
		close(rsrv.applyQ)
		rsrv.admitMu.Unlock()
		<-rsrv.applierDone
		rsrv.mu.Lock()
		rsrv.closed = true
		rsrv.wal.Close()
		rsrv.mu.Unlock()
		b.StartTimer()
	}
	b.ReportMetric(float64(replayed)/float64(b.N), "replayed-batches/op")
}

func benchCopyDir(b *testing.B, src, dst string) {
	b.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		b.Fatal(err)
	}
}
