package serve

import (
	"errors"
	"io"

	"ripple/internal/engine"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// Row is one refreshed final-layer row of the serving tables: a vertex
// whose prediction the last applied batch recomputed, with its new label
// and logits. Rows are the currency between a Backend and the publisher —
// the snapshot rebuild copies exactly these rows into copy-on-write pages,
// so publication cost is O(rows), never O(|V|).
//
// Logits are borrowed from the backend: they stay valid until the
// backend's next ApplyBatch, which is long enough for the publisher to
// copy them (the write path is serialised).
type Row struct {
	Vertex graph.VertexID
	Label  int32
	Logits tensor.Vector
}

// Backend is the write-side contract of the serving layer: some engine —
// single-node or distributed — that applies update batches and reports
// which final-layer rows each batch touched. The Server is agnostic to
// what stands behind it: epochs, snapshots, the admission queue, salvage
// and triggers behave identically over any implementation (the backend
// conformance suite asserts this for the two shipped ones).
type Backend interface {
	// Bootstrap scans the backend's current state into dense label/logit
	// tables for the epoch-0 snapshot. Called once, before any ApplyBatch.
	Bootstrap() (labels []int32, logits []tensor.Vector, classes int)
	// ApplyBatch applies one update batch. On success it returns the
	// engine-level accounting — FinalFrontier and LabelChanges must be
	// populated — plus one Row per touched final-layer row, sorted by
	// vertex id. On validation failure the backend's state is unchanged
	// and the error is returned with no rows.
	ApplyBatch(batch []engine.Update) (engine.BatchResult, []Row, error)
}

// CommStats are the cumulative distributed-communication counters of a
// cluster-backed server: worker-to-worker propagation traffic, the
// leader's routed sub-batches, and the delta-gather phase that ships
// changed rows back for publication. A single-node backend reports zeros.
type CommStats struct {
	CommBytes   int64 `json:"comm_bytes"`   // worker propagation traffic (halo exchanges)
	CommMsgs    int64 `json:"comm_msgs"`    // worker propagation messages
	RouteBytes  int64 `json:"route_bytes"`  // leader→worker routed sub-batches
	GatherBytes int64 `json:"gather_bytes"` // worker→leader changed-row deltas
}

// commReporter is the optional Backend face exposing comm counters.
type commReporter interface{ CommStats() CommStats }

// shardReporter is the optional Backend face exposing the engine's
// mailbox shard count (see engine.Config.Shards).
type shardReporter interface{ Shards() int }

// engineBackend adapts the single-node Ripple engine to the Backend
// interface — a thin shim: the engine already reports FinalFrontier and
// LabelChanges, so the adapter only dresses the frontier rows up with
// their labels and (borrowed) logit vectors.
type engineBackend struct {
	eng  *engine.Ripple
	rows []Row // reused across batches; consumers copy before the next apply
}

// NewEngineBackend wraps a single-node engine as a serving backend. Label
// tracking is enabled on the engine as a side effect — the incremental
// publication and the Subscribe triggers depend on it.
func NewEngineBackend(eng *engine.Ripple) (Backend, error) {
	if eng == nil {
		return nil, errors.New("serve: nil engine")
	}
	eng.EnableLabelTracking()
	return &engineBackend{eng: eng}, nil
}

func (b *engineBackend) Bootstrap() ([]int32, []tensor.Vector, int) {
	emb := b.eng.Embeddings()
	// One bulk argmax scan of the final layer (tombstoned vertices publish
	// -1) instead of a per-vertex Label call through the slow removed-check
	// path.
	return b.eng.LabelTable(nil), emb.H[emb.L()], emb.Dims[emb.L()]
}

func (b *engineBackend) ApplyBatch(batch []engine.Update) (engine.BatchResult, []Row, error) {
	res, err := b.eng.ApplyBatch(batch)
	if err != nil {
		return res, nil, err
	}
	emb := b.eng.Embeddings()
	final := emb.H[emb.L()]
	b.rows = b.rows[:0]
	for _, v := range res.FinalFrontier {
		b.rows = append(b.rows, Row{Vertex: v, Label: int32(b.eng.Label(v)), Logits: final[v]})
	}
	return res, b.rows, nil
}

// Shards reports the wrapped engine's mailbox shard count for Stats.
func (b *engineBackend) Shards() int { return b.eng.Shards() }

// ValidateBatch implements the durable-serving face: it accepts exactly
// the batches the engine's ApplyBatch would apply (tombstones included),
// so the WAL can log a batch before applying it.
func (b *engineBackend) ValidateBatch(batch []engine.Update) error {
	return b.eng.ValidateBatch(batch)
}

// SaveCheckpoint serializes the engine's full state (topology,
// embeddings, aggregates, tombstones) via the engine checkpoint format.
func (b *engineBackend) SaveCheckpoint(w io.Writer) error { return b.eng.Save(w) }

// deltaBackend is the optional Backend face for incremental delta
// checkpoints: a backend that can track which rows changed since a
// baseline and serialize just those. Backends without it (the cluster
// backend, whose checkpoint is the leader's barrier manifest) silently get
// full checkpoints at every interval — the durable layer degrades rather
// than requiring the face.
type deltaBackend interface {
	// EnableDeltaTracking starts dirty-row accounting; called once at Open
	// when Config.FullCheckpointEvery enables delta chains.
	EnableDeltaTracking()
	// SaveDeltaCheckpoint serializes every row changed since the last
	// ResetDeltaBaseline; applying it onto that baseline state reproduces
	// the current state bit-identically.
	SaveDeltaCheckpoint(w io.Writer) error
	// LoadDeltaCheckpoint applies a saved delta onto the current state
	// (the recovery path walks the delta chain with this).
	LoadDeltaCheckpoint(r io.Reader) error
	// ResetDeltaBaseline marks the current state as the new baseline;
	// called after any checkpoint (full or delta) becomes durable.
	ResetDeltaBaseline()
}

func (b *engineBackend) EnableDeltaTracking()                 { b.eng.EnableDirtyTracking() }
func (b *engineBackend) SaveDeltaCheckpoint(w io.Writer) error { return b.eng.SaveDelta(w) }
func (b *engineBackend) LoadDeltaCheckpoint(r io.Reader) error { return b.eng.ApplyDelta(r) }
func (b *engineBackend) ResetDeltaBaseline()                   { b.eng.ResetDirty() }
