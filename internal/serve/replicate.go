package serve

// Leader-side replication: StartReplication turns a Server into a
// replication leader. The admission path already computes, for every
// published epoch, exactly the changed label/logit rows a remote reader
// needs (the delta-gather result it publishes from) — the hub records
// those rows as encoded epoch-tagged delta frames in a bounded in-memory
// log and streams them to any number of connected followers over
// internal/transport streams.
//
// Session protocol (one follower connection):
//
//	follower → leader  KindRepSubscribe(watermark)   newest epoch it has
//	leader → follower  KindRepHello(leaderEpoch)     lag baseline
//	leader → follower  [KindRepSnapshot(tables)]     only if the watermark
//	                                                 predates the in-memory log
//	leader → follower  KindRepDelta(epoch E)...      backlog, then live, in
//	                                                 strictly increasing order
//	leader → follower  KindRepHello(leaderEpoch)     ~1s heartbeat when idle
//
// The hub never blocks the write path: frames are handed to per-follower
// buffered channels, and a follower that cannot drain its buffer is
// dropped (it reconnects and catches up from its watermark — the same
// path as any other reconnect). Delivery is therefore at-least-once per
// session boundary; the follower's epoch watermark makes application
// exactly-once.

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/transport"
)

// errReplStarted rejects a second StartReplication: one hub per server.
var errReplStarted = errors.New("serve: replication already started")

// replSendBuffer is the per-follower frame queue; a follower this many
// epochs behind the live stream is dropped to reconnect.
const replSendBuffer = 256

// replHeartbeat is the idle-stream hello interval keeping follower lag
// observable when no batches flow.
const replHeartbeat = time.Second

// ReplStats is the leader-side replication hub's counter snapshot,
// embedded in Stats.
type ReplStats struct {
	ReplFollowers     int    `json:"repl_followers"`      // connected followers
	ReplLogEpochs     int    `json:"repl_log_epochs"`     // epochs the in-memory log holds
	ReplFramesSent    int64  `json:"repl_frames_sent"`    // delta frames streamed
	ReplBytesSent     int64  `json:"repl_bytes_sent"`     // delta/snapshot payload bytes streamed
	ReplSnapshotsSent int64  `json:"repl_snapshots_sent"` // full-snapshot resyncs served
	ReplDropped       int64  `json:"repl_dropped"`        // followers dropped for not draining
	ReplEpoch         uint64 `json:"repl_epoch"`          // newest epoch recorded to the log
}

// replFrame is one recorded epoch: its already-encoded delta frame.
type replFrame struct {
	epoch   uint64
	payload []byte
}

// replSub is one connected follower's send side.
type replSub struct {
	id int
	ch chan replFrame
	st *transport.Stream
}

// Replication is the leader-side hub. Create with Server.StartReplication;
// it lives until the server closes.
type Replication struct {
	srv *Server
	ln  *transport.StreamListener

	mu      sync.Mutex
	log     []replFrame // consecutive epochs, oldest first, bounded
	maxLog  int
	subs    map[int]*replSub
	nextSub int
	closed  bool

	wg sync.WaitGroup

	frames atomic.Int64
	bytes  atomic.Int64
	snaps  atomic.Int64
	drops  atomic.Int64

	// scratch for encoding under the server's write lock (record is the
	// only writer, serialised by Server.mu).
	rowScratch []cluster.DeltaRow
}

// StartReplication binds a replication listener (":0" for an ephemeral
// port) and starts streaming every subsequently published epoch to
// connecting followers. One hub per server; the hub closes with the
// server.
func (s *Server) StartReplication(addr string) (*Replication, error) {
	ln, err := transport.ListenStream(addr)
	if err != nil {
		return nil, err
	}
	r := &Replication{
		srv:    s,
		ln:     ln,
		maxLog: s.cfg.ReplicationLogEpochs,
		subs:   map[int]*replSub{},
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, ErrClosed
	}
	if s.repl != nil {
		s.mu.Unlock()
		ln.Close()
		return nil, errReplStarted
	}
	s.repl = r
	s.mu.Unlock()

	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the listener's bound address (what followers dial).
func (r *Replication) Addr() string { return r.ln.Addr() }

// record logs one published epoch and fans it out. Called from the
// server's apply path under Server.mu — prev is the snapshot the rows
// were applied over (source of the old labels), next the one just
// published. Row logits are borrowed from the backend and die at the next
// ApplyBatch; encoding here, synchronously, is what makes handing frames
// to asynchronous senders safe.
func (r *Replication) record(prev, next *Snapshot, rows []Row) {
	r.rowScratch = r.rowScratch[:0]
	for _, row := range rows {
		r.rowScratch = append(r.rowScratch, cluster.DeltaRow{
			Vertex:   row.Vertex,
			OldLabel: int32(prev.Label(row.Vertex)),
			NewLabel: row.Label,
			Logits:   row.Logits,
		})
	}
	frame := replFrame{
		epoch:   next.epoch,
		payload: cluster.EncodeDeltaFrame(next.epoch, next.classes, r.rowScratch),
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.log = append(r.log, frame)
	if len(r.log) > r.maxLog {
		// Drop the oldest epoch; shift instead of re-slice so the backing
		// array (and its dead frames) do not pin memory forever.
		copy(r.log, r.log[1:])
		r.log = r.log[:len(r.log)-1]
	}
	for id, sub := range r.subs {
		select {
		case sub.ch <- frame:
		default:
			// The follower is not draining; cut it loose rather than
			// stalling or buffering unboundedly. It will reconnect and
			// catch up from its watermark.
			delete(r.subs, id)
			close(sub.ch)
			sub.st.Close()
			r.drops.Add(1)
			r.srv.log.Warn("follower dropped: send buffer full", "component", "repl", "follower_id", id, "epoch", frame.epoch)
		}
	}
	r.mu.Unlock()
}

// stats snapshots the hub's counters.
func (r *Replication) stats() ReplStats {
	r.mu.Lock()
	followers := len(r.subs)
	logLen := len(r.log)
	var newest uint64
	if logLen > 0 {
		newest = r.log[logLen-1].epoch
	}
	r.mu.Unlock()
	return ReplStats{
		ReplFollowers:     followers,
		ReplLogEpochs:     logLen,
		ReplFramesSent:    r.frames.Load(),
		ReplBytesSent:     r.bytes.Load(),
		ReplSnapshotsSent: r.snaps.Load(),
		ReplDropped:       r.drops.Load(),
		ReplEpoch:         newest,
	}
}

func (r *Replication) acceptLoop() {
	defer r.wg.Done()
	for {
		st, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handleFollower(st)
		}()
	}
}

// handleFollower runs one follower session: handshake, catch-up, live
// stream, heartbeats. Any send/recv error ends the session; the follower
// owns reconnecting.
func (r *Replication) handleFollower(st *transport.Stream) {
	defer st.Close()
	msg, err := st.Recv()
	if err != nil || msg.Kind != cluster.KindRepSubscribe {
		return
	}
	watermark, err := cluster.DecodeEpochFrame(msg.Payload)
	if err != nil {
		return
	}

	// Decide the catch-up plan and register for live frames under one
	// lock acquisition, so no published epoch can fall between the backlog
	// and the subscription.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	cur := r.srv.pub.Current()
	needSnapshot := false
	if watermark > cur.epoch {
		// A fresh follower subscribes with the MaxUint64 sentinel (it has
		// no tables at all), and a follower of a different or wiped leader
		// history can claim any future epoch. Both need full tables —
		// deltas presume a base at the watermark that neither has — so
		// force the snapshot even when the delta log nominally covers
		// everything, and even when this leader is still at epoch 0.
		watermark = 0
		needSnapshot = true
	}
	var backlog []replFrame
	if !needSnapshot && watermark < cur.epoch {
		covered := len(r.log) > 0 && r.log[0].epoch <= watermark+1 && r.log[len(r.log)-1].epoch == cur.epoch
		if covered {
			start := 0
			for start < len(r.log) && r.log[start].epoch <= watermark {
				start++
			}
			backlog = append([]replFrame(nil), r.log[start:]...)
		} else {
			needSnapshot = true
		}
	}
	sub := &replSub{id: r.nextSub, ch: make(chan replFrame, replSendBuffer), st: st}
	r.nextSub++
	r.subs[sub.id] = sub
	r.mu.Unlock()
	defer r.unsubscribe(sub)
	r.srv.log.Info("follower subscribed", "component", "repl", "follower_id", sub.id, "watermark", watermark, "snapshot_resync", needSnapshot, "backlog_epochs", len(backlog))
	defer r.srv.log.Debug("follower session ended", "component", "repl", "follower_id", sub.id)

	hello := func() error {
		epoch := r.srv.pub.Current().epoch
		return st.Send(cluster.KindRepHello, cluster.EncodeEpochFrame(epoch))
	}
	if hello() != nil {
		return
	}
	if needSnapshot {
		snap := r.srv.pub.Snapshot()
		labels, logits := snap.Tables(nil, nil)
		payload := cluster.EncodeSnapshotFrame(snap.epoch, snap.classes, labels, logits)
		if st.Send(cluster.KindRepSnapshot, payload) != nil {
			return
		}
		r.snaps.Add(1)
		r.bytes.Add(int64(len(payload)))
		watermark = snap.epoch
	}
	send := func(f replFrame) bool {
		if f.epoch <= watermark {
			return true // duplicate across the backlog/live boundary
		}
		if st.Send(cluster.KindRepDelta, f.payload) != nil {
			return false
		}
		watermark = f.epoch
		r.frames.Add(1)
		r.bytes.Add(int64(len(f.payload)))
		return true
	}
	for _, f := range backlog {
		if !send(f) {
			return
		}
	}
	heartbeat := time.NewTicker(replHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case f, ok := <-sub.ch:
			if !ok || !send(f) {
				return // dropped by record(), or the follower went away
			}
		case <-heartbeat.C:
			if hello() != nil {
				return
			}
		}
	}
}

// unsubscribe removes a follower registration if record() has not already
// dropped it.
func (r *Replication) unsubscribe(sub *replSub) {
	r.mu.Lock()
	if cur, ok := r.subs[sub.id]; ok && cur == sub {
		delete(r.subs, sub.id)
		close(sub.ch)
	}
	r.mu.Unlock()
}

// close tears the hub down: stop accepting, sever every follower, wait
// for the session goroutines. Called by Server.Close.
func (r *Replication) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	subs := make([]*replSub, 0, len(r.subs))
	for _, sub := range r.subs {
		subs = append(subs, sub)
	}
	r.subs = map[int]*replSub{}
	r.mu.Unlock()
	r.ln.Close()
	for _, sub := range subs {
		close(sub.ch)
		sub.st.Close()
	}
	r.wg.Wait()
}
