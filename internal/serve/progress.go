package serve

import (
	"sync/atomic"
	"time"
)

// RecoveryProgress publishes live recovery state across an Open call.
// Open runs to completion before returning a Server, so without this a
// health endpoint has nothing to report during a long replay; with it,
// the process can answer "recovering, N batches at R/s" from another
// goroutine while Open is still walking the checkpoint chain and WAL.
// All methods are safe for concurrent use; the zero value is inactive.
type RecoveryProgress struct {
	active  atomic.Bool
	batches atomic.Int64
	startNS atomic.Int64
	doneNS  atomic.Int64
}

// begin resets the counters and marks recovery active. Called at the top
// of Open so the active window covers checkpoint load and the delta
// chain, not just WAL replay.
func (p *RecoveryProgress) begin() {
	p.batches.Store(0)
	p.doneNS.Store(0)
	p.startNS.Store(time.Now().UnixNano())
	p.active.Store(true)
}

// note records one replayed batch.
func (p *RecoveryProgress) note() { p.batches.Add(1) }

// end marks recovery finished; the counters remain readable.
func (p *RecoveryProgress) end() {
	p.doneNS.Store(time.Now().UnixNano())
	p.active.Store(false)
}

// RecoverySnapshot is a point-in-time view of recovery progress.
type RecoverySnapshot struct {
	// Active is true while Open is rebuilding state.
	Active bool `json:"active"`
	// Started is true once a recovery has ever begun in this process.
	Started bool `json:"started"`
	// Batches is the number of WAL batches replayed so far.
	Batches int64 `json:"recovered_batches"`
	// Seconds elapsed since recovery began (frozen once it ends).
	Seconds float64 `json:"seconds"`
	// BatchesPerSec is Batches/Seconds — the live replay rate.
	BatchesPerSec float64 `json:"replay_rate"`
}

// Snapshot returns the current progress. Valid both mid-recovery and
// after: once recovery ends the elapsed clock freezes, so the final
// snapshot reports the whole-recovery replay rate.
func (p *RecoveryProgress) Snapshot() RecoverySnapshot {
	start := p.startNS.Load()
	s := RecoverySnapshot{
		Active:  p.active.Load(),
		Started: start != 0,
		Batches: p.batches.Load(),
	}
	if start == 0 {
		return s
	}
	end := p.doneNS.Load()
	if s.Active || end == 0 {
		end = time.Now().UnixNano()
	}
	if sec := float64(end-start) / 1e9; sec > 0 {
		s.Seconds = sec
		s.BatchesPerSec = float64(s.Batches) / sec
	}
	return s
}
