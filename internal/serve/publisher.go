package serve

import (
	"math/bits"
	"sync/atomic"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// Publisher is the epoch-publication/read half of the serving layer: the
// paged copy-on-write snapshot store, the atomic pointer readers pin, and
// the page accounting. It is deliberately free of any write path — it does
// not know about backends, admission queues, or WALs — so it can serve two
// masters: Server drives one from its backend's ApplyBatch deltas, and a
// replication Follower drives one from delta frames streamed off a leader,
// giving replicas the exact same lock-free pinned-read semantics as the
// leader without ever running propagation.
//
// Concurrency contract: reads (Snapshot/Current/Label/Embedding/TopK) are
// lock-free and safe from any goroutine at any time. Mutation (Bootstrap,
// Publish, Compact) must be serialised by the owner — Server under its
// write lock, Follower under its apply loop.
type Publisher struct {
	pageRows int

	cur atomic.Pointer[Snapshot]

	reads       atomic.Int64
	pagesCopied atomic.Int64
	pagesShared atomic.Int64
}

// NewPublisher returns an empty publisher with the given page granularity
// (rounded up to a power of two; <=0 selects the default). No snapshot is
// published until Bootstrap: Current returns nil and reads miss.
func NewPublisher(pageRows int) *Publisher {
	if pageRows <= 0 {
		pageRows = defaultPageRows
	}
	pageRows = 1 << bits.Len(uint(pageRows-1))
	return &Publisher{pageRows: pageRows}
}

// PageRows returns the (power-of-two) page granularity.
func (p *Publisher) PageRows() int { return p.pageRows }

// Bootstrap publishes the first snapshot from dense tables at the given
// epoch: 0 at a fresh boot, the checkpoint's epoch during recovery, the
// leader's epoch when a follower instals a streamed snapshot. The inputs
// are copied; callers may reuse them.
func (p *Publisher) Bootstrap(labels []int32, logits []tensor.Vector, classes int, epoch uint64) *Snapshot {
	snap := buildSnapshot(labels, logits, classes, p.pageRows)
	snap.epoch = epoch
	p.cur.Store(snap)
	return snap
}

// BootstrapFlat is Bootstrap from a flat row-major logit table — the wire
// form carried by replication snapshot frames and follower checkpoints.
// The inputs are copied; callers may reuse them.
func (p *Publisher) BootstrapFlat(labels []int32, logits []float32, classes int, epoch uint64) *Snapshot {
	snap := buildSnapshotFlat(labels, logits, classes, p.pageRows)
	snap.epoch = epoch
	p.cur.Store(snap)
	return snap
}

// Publish derives and publishes the next epoch from the current snapshot
// by copy-on-write: only pages holding rows in the delta are copied, the
// rest are shared with the previous epoch. It returns the new snapshot.
// Must be serialised by the owner; panics if called before Bootstrap.
func (p *Publisher) Publish(rows []Row) *Snapshot {
	old := p.cur.Load()
	next, copied := old.rebuild(rows)
	p.cur.Store(next)
	p.pagesCopied.Add(int64(copied))
	if len(rows) > 0 {
		// Empty-frontier publishes are excluded: the pre-paging design
		// shared storage there too, so counting them would overstate
		// paging's measured benefit.
		p.pagesShared.Add(int64(len(next.pages) - copied))
	}
	return next
}

// Snapshot pins the current epoch and counts the pin (Stats.Reads). The
// returned snapshot is immutable; nil before Bootstrap.
func (p *Publisher) Snapshot() *Snapshot {
	p.reads.Add(1)
	return p.cur.Load()
}

// Current returns the current snapshot without counting a pin — the
// convenience read paths use it so single-vertex lookups never contend on
// the shared read counter. Nil before Bootstrap.
func (p *Publisher) Current() *Snapshot { return p.cur.Load() }

// Label returns vertex v's predicted class at the current epoch (-1 if
// out of range, removed, or nothing is published yet). Lock-free.
func (p *Publisher) Label(v graph.VertexID) int {
	cur := p.cur.Load()
	if cur == nil {
		return -1
	}
	return cur.Label(v)
}

// Embedding returns a copy of vertex v's final-layer logits at the
// current epoch (nil if out of range or nothing is published). Lock-free.
func (p *Publisher) Embedding(v graph.VertexID) tensor.Vector {
	cur := p.cur.Load()
	if cur == nil {
		return nil
	}
	return cur.Embedding(v)
}

// TopK returns vertex v's k best classes at the current epoch (nil if out
// of range or nothing is published). Lock-free.
func (p *Publisher) TopK(v graph.VertexID, k int) []Ranked {
	cur := p.cur.Load()
	if cur == nil {
		return nil
	}
	return cur.TopK(v, k)
}

// Compact republishes the current epoch over freshly allocated contiguous
// pages (see Server.Compact for the why) and returns the page accounting.
// Must be serialised with Publish by the owner; no-op before Bootstrap.
func (p *Publisher) Compact() PageStats {
	cur := p.cur.Load()
	if cur == nil {
		return PageStats{PageRows: p.pageRows}
	}
	compacted := cur.compacted()
	p.cur.Store(compacted)
	return PageStats{
		Epoch:       compacted.epoch,
		PageRows:    cur.mask + 1,
		Pages:       len(compacted.pages),
		PagesCopied: p.pagesCopied.Load(),
		PagesShared: p.pagesShared.Load(),
	}
}
