package serve

import (
	"testing"

	"ripple/internal/graph"
)

// TestSnapshotLabels checks the bulk read against the single-id read:
// same values in id order, -1 folded in for out-of-range ids, dst reused
// in place. PageRows 16 forces the id walk across page boundaries.
func TestSnapshotLabels(t *testing.T) {
	w := newWorld(t, 11)
	srv, err := New(w.eng, Config{PageRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 10; i++ {
		if _, err := srv.Apply(w.batch(8)); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.Snapshot()

	ids := []graph.VertexID{0, 17, 16, testN - 1, -1, graph.VertexID(testN), 5, 5, 299, 1 << 30}
	got := snap.Labels(ids, nil)
	if len(got) != len(ids) {
		t.Fatalf("len(Labels) = %d, want %d", len(got), len(ids))
	}
	for i, id := range ids {
		if want := int32(snap.Label(id)); got[i] != want {
			t.Errorf("Labels[%d] (vertex %d) = %d, want %d", i, id, got[i], want)
		}
	}
	if got[4] != -1 || got[5] != -1 || got[9] != -1 {
		t.Errorf("out-of-range ids must read -1, got %v", got)
	}

	// dst reuse: the returned slice shares dst's storage and truncates any
	// previous contents.
	dst := make([]int32, 3, len(ids))
	dst[0], dst[1], dst[2] = 42, 42, 42
	got2 := snap.Labels(ids, dst)
	if &got2[0] != &dst[:1][0] {
		t.Error("Labels did not reuse dst's backing array")
	}
	for i := range got {
		if got2[i] != got[i] {
			t.Fatalf("reused-dst read diverges at %d: %d vs %d", i, got2[i], got[i])
		}
	}
}

// TestSnapshotLabelsZeroAlloc pins the zero-allocation contract of the
// batched read path: with cap(dst) >= len(ids), Labels allocates nothing.
func TestSnapshotLabelsZeroAlloc(t *testing.T) {
	w := newWorld(t, 12)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	snap := srv.Snapshot()

	ids := make([]graph.VertexID, 1000)
	for i := range ids {
		ids[i] = graph.VertexID(i % (testN + 5)) // a few out-of-range
	}
	dst := make([]int32, 0, len(ids))
	allocs := testing.AllocsPerRun(100, func() {
		dst = snap.Labels(ids, dst)
	})
	if allocs != 0 {
		t.Errorf("Snapshot.Labels allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkLabelsBatch measures the bulk label read behind POST /labels:
// 1k ids against a pinned snapshot, amortising the snapshot pin and
// bounds checks over the batch.
func BenchmarkLabelsBatch(b *testing.B) {
	w := newWorld(b, 13)
	srv, err := New(w.eng, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 5; i++ {
		if _, err := srv.Apply(w.batch(8)); err != nil {
			b.Fatal(err)
		}
	}
	snap := srv.Snapshot()
	ids := make([]graph.VertexID, 1000)
	for i := range ids {
		ids[i] = graph.VertexID((i * 7) % testN)
	}
	dst := make([]int32, 0, len(ids))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = snap.Labels(ids, dst)
	}
	_ = dst
}
