package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latHist is a fixed-bucket latency histogram for the admission path's
// observability counters: power-of-two nanosecond buckets (bucket i holds
// durations in [2^(i-1), 2^i)), each an atomic counter, so observing on
// the hot path is one atomic add — no allocation, no lock. Quantiles are
// therefore 2×-granular upper bounds, which is exactly enough to tell "the
// fsync wait is ~100µs" from "~3ms" without paying for a sketch.
type latHist struct {
	buckets [latHistBuckets]atomic.Uint64
	count   atomic.Uint64
}

// latHistBuckets covers [1ns, 2^47ns ≈ 39h); anything longer clamps into
// the top bucket.
const latHistBuckets = 48

// observe records one duration. Negative durations (clock steps) count as
// zero rather than corrupting a bucket index.
func (h *latHist) observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	idx := bits.Len64(ns) // 0 for 0ns, else ⌈log2⌉ bucket
	if idx >= latHistBuckets {
		idx = latHistBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
}

// quantile returns an upper bound (in ns) for the q-quantile of every
// observation so far — the top of the first bucket whose cumulative count
// reaches q. Zero with no observations.
func (h *latHist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < latHistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			return int64(1) << i
		}
	}
	return int64(1) << (latHistBuckets - 1)
}
