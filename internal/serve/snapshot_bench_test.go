package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"ripple/internal/graph"
	"ripple/internal/tensor"
)

// BenchmarkPublish measures the cost of publishing one epoch as a
// function of graph size and frontier size, for the paged copy-on-write
// publisher against the pre-paging whole-table-clone baseline. The paged
// publisher's cost tracks the frontier (pages touched), the baseline's
// tracks |V| — at 1M vertices with a 64-row frontier the paged publish
// must be at least an order of magnitude cheaper (the PR's acceptance
// bar; see DESIGN.md §4). Frontier rows are drawn uniformly, i.e. the
// worst case for paging: every frontier row tends to land on its own
// page.
//
// Run with: go test -run=NONE -bench=Publish ./internal/serve/
func BenchmarkPublish(b *testing.B) {
	const classes = 40 // arxiv-shaped final layer
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		labels, final := benchTables(n, classes)
		paged := buildSnapshot(labels, final, classes, defaultPageRows)
		flat := &flatSnapshot{labels: labels, logits: flatten(final, classes)}
		labelOf := func(v graph.VertexID) int32 { return int32(final[v].ArgMax()) }
		for _, fs := range []int{1, 64, 4096} {
			frontier := benchFrontier(n, fs)
			rows := benchRows(frontier, final, labelOf)
			name := fmt.Sprintf("n=%d/frontier=%d", n, fs)
			b.Run("impl=paged/"+name, func(b *testing.B) {
				b.ReportAllocs()
				snap := paged
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					snap, _ = snap.rebuild(rows)
				}
			})
			b.Run("impl=fullclone/"+name, func(b *testing.B) {
				b.ReportAllocs()
				snap := flat
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					snap = snap.rebuild(classes, frontier, final, labelOf)
				}
			})
		}
	}
}

// flatSnapshot replicates the pre-paging publisher: one labels slice, one
// row-major logits slice, both cloned whole on every publish.
type flatSnapshot struct {
	labels []int32
	logits []float32
}

func (s *flatSnapshot) rebuild(classes int, frontier []graph.VertexID, final []tensor.Vector, labelOf func(graph.VertexID) int32) *flatSnapshot {
	next := &flatSnapshot{
		labels: append([]int32(nil), s.labels...),
		logits: append([]float32(nil), s.logits...),
	}
	for _, v := range frontier {
		copy(next.logits[int(v)*classes:(int(v)+1)*classes], final[v])
		next.labels[v] = labelOf(v)
	}
	return next
}

func benchTables(n, classes int) ([]int32, []tensor.Vector) {
	rng := rand.New(rand.NewSource(int64(n)))
	labels := make([]int32, n)
	final := make([]tensor.Vector, n)
	for v := range final {
		final[v] = tensor.NewVector(classes)
		for c := range final[v] {
			final[v][c] = rng.Float32()
		}
		labels[v] = int32(final[v].ArgMax())
	}
	return labels, final
}

func benchFrontier(n, size int) []graph.VertexID {
	rng := rand.New(rand.NewSource(int64(n + size)))
	seen := map[int]bool{}
	frontier := make([]graph.VertexID, 0, size)
	for len(frontier) < size {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			frontier = append(frontier, graph.VertexID(v))
		}
	}
	return frontier
}

// benchRows dresses a frontier up as the backend changed-rows delta the
// paged publisher consumes.
func benchRows(frontier []graph.VertexID, final []tensor.Vector, labelOf func(graph.VertexID) int32) []Row {
	rows := make([]Row, 0, len(frontier))
	for _, v := range frontier {
		rows = append(rows, Row{Vertex: v, Label: labelOf(v), Logits: final[v]})
	}
	return rows
}

func flatten(final []tensor.Vector, classes int) []float32 {
	out := make([]float32, len(final)*classes)
	for v, row := range final {
		copy(out[v*classes:(v+1)*classes], row)
	}
	return out
}

// TestPublishBenchmarkEquivalence pins the benchmark's two publishers to
// the same semantics: starting from the same base tables and rewriting
// the same frontier, paged and full-clone snapshots agree on every row.
func TestPublishBenchmarkEquivalence(t *testing.T) {
	const n, classes = 5000, 7
	labels, base := benchTables(n, classes)
	frontier := benchFrontier(n, 64)
	updated := make([]tensor.Vector, n)
	copy(updated, base)
	for _, v := range frontier {
		row := tensor.NewVector(classes)
		for c := range row {
			row[c] = -base[v][c]
		}
		updated[v] = row
	}
	labelOf := func(v graph.VertexID) int32 { return int32(updated[v].ArgMax()) }
	paged, _ := buildSnapshot(labels, base, classes, 64).rebuild(benchRows(frontier, updated, labelOf))
	flat := (&flatSnapshot{labels: labels, logits: flatten(base, classes)}).rebuild(classes, frontier, updated, labelOf)
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		if int32(paged.Label(id)) != flat.labels[v] {
			t.Fatalf("vertex %d: paged label %d, flat label %d", v, paged.Label(id), flat.labels[v])
		}
		if paged.Embedding(id).MaxAbsDiff(flat.logits[v*classes:(v+1)*classes]) != 0 {
			t.Fatalf("vertex %d: paged and flat logits diverge", v)
		}
	}
}
