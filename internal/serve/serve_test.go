package serve

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

const (
	testN       = 300
	testFeatDim = 8
	testClasses = 6
)

// world is a bootstrapped engine plus the bookkeeping a single-threaded
// writer needs to generate valid random batches against it.
type world struct {
	eng   *engine.Ripple
	rng   *rand.Rand
	edges map[[2]graph.VertexID]bool
}

func newWorld(t testing.TB, seed int64) *world {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(testN)
	edges := map[[2]graph.VertexID]bool{}
	for len(edges) < testN*4 {
		u := graph.VertexID(rng.Intn(testN))
		v := graph.VertexID(rng.Intn(testN))
		if u == v || edges[[2]graph.VertexID{u, v}] {
			continue
		}
		if err := g.AddEdge(u, v, 0.5+rng.Float32()); err != nil {
			t.Fatal(err)
		}
		edges[[2]graph.VertexID{u, v}] = true
	}
	features := make([]tensor.Vector, testN)
	for i := range features {
		features[i] = randVec(rng, testFeatDim)
	}
	model, err := gnn.NewWorkload("GS-S", []int{testFeatDim, 16, testClasses}, seed)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := gnn.Forward(g, model, features)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(g, model, emb, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, rng: rng, edges: edges}
}

func randVec(rng *rand.Rand, d int) tensor.Vector {
	v := tensor.NewVector(d)
	for i := range v {
		v[i] = rng.Float32()*4 - 2
	}
	return v
}

// batch generates one valid random batch of size k: feature updates and
// edge adds/deletes, each edge slot touched at most once per batch.
func (w *world) batch(k int) []engine.Update {
	var batch []engine.Update
	touched := map[[2]graph.VertexID]bool{}
	for len(batch) < k {
		switch w.rng.Intn(3) {
		case 0: // feature update
			u := graph.VertexID(w.rng.Intn(testN))
			batch = append(batch, engine.Update{Kind: engine.FeatureUpdate, U: u, Features: randVec(w.rng, testFeatDim)})
		case 1: // edge add
			u := graph.VertexID(w.rng.Intn(testN))
			v := graph.VertexID(w.rng.Intn(testN))
			key := [2]graph.VertexID{u, v}
			if u == v || w.edges[key] || touched[key] {
				continue
			}
			w.edges[key] = true
			touched[key] = true
			batch = append(batch, engine.Update{Kind: engine.EdgeAdd, U: u, V: v, Weight: 0.5 + w.rng.Float32()})
		default: // edge delete
			if len(w.edges) == 0 {
				continue
			}
			for key := range w.edges {
				if touched[key] {
					break
				}
				delete(w.edges, key)
				touched[key] = true
				batch = append(batch, engine.Update{Kind: engine.EdgeDelete, U: key[0], V: key[1]})
				break
			}
		}
	}
	return batch
}

// TestSnapshotMatchesEngine checks that after a stream of batches the
// published snapshot agrees with the engine on every vertex.
func TestSnapshotMatchesEngine(t *testing.T) {
	w := newWorld(t, 1)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 40; i++ {
		if _, err := srv.Apply(w.batch(8)); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.Snapshot()
	if snap.Epoch() != 40 {
		t.Fatalf("epoch = %d, want 40", snap.Epoch())
	}
	final := w.eng.Embeddings().H[w.eng.Embeddings().L()]
	for v := 0; v < testN; v++ {
		id := graph.VertexID(v)
		if got, want := snap.Label(id), w.eng.Label(id); got != want {
			t.Fatalf("vertex %d: snapshot label %d, engine label %d", v, got, want)
		}
		if got := snap.Embedding(id); got.MaxAbsDiff(final[v]) != 0 {
			t.Fatalf("vertex %d: snapshot logits diverge from engine", v)
		}
	}
}

// TestSnapshotIsolation is the regression test for the core guarantee: a
// pinned snapshot never observes any part of a later batch — not a
// half-applied one, not a fully applied one.
func TestSnapshotIsolation(t *testing.T) {
	w := newWorld(t, 2)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Apply(w.batch(8)); err != nil {
		t.Fatal(err)
	}

	pinned := srv.Snapshot()
	wantEpoch := pinned.Epoch()
	wantLabels := make([]int, testN)
	wantLogits := make([]tensor.Vector, testN)
	for v := 0; v < testN; v++ {
		wantLabels[v] = pinned.Label(graph.VertexID(v))
		wantLogits[v] = pinned.Embedding(graph.VertexID(v))
	}

	for i := 0; i < 50; i++ {
		if _, err := srv.Apply(w.batch(8)); err != nil {
			t.Fatal(err)
		}
	}

	if pinned.Epoch() != wantEpoch {
		t.Fatalf("pinned epoch mutated: %d → %d", wantEpoch, pinned.Epoch())
	}
	for v := 0; v < testN; v++ {
		id := graph.VertexID(v)
		if pinned.Label(id) != wantLabels[v] {
			t.Fatalf("vertex %d: pinned label mutated %d → %d", v, wantLabels[v], pinned.Label(id))
		}
		if pinned.Embedding(id).MaxAbsDiff(wantLogits[v]) != 0 {
			t.Fatalf("vertex %d: pinned logits mutated", v)
		}
	}
	if cur := srv.Snapshot(); cur.Epoch() != wantEpoch+50 {
		t.Fatalf("current epoch = %d, want %d", cur.Epoch(), wantEpoch+50)
	}
}

// TestConcurrentReadsDuringApplies runs 12 reader goroutines against a
// continuous stream of update batches (both the synchronous Apply path
// and the admission queue) and checks, inside every pinned snapshot, the
// epoch-consistency invariant label == argmax(logits). Run under -race
// this is the concurrency proof for the serving layer.
func TestConcurrentReadsDuringApplies(t *testing.T) {
	w := newWorld(t, 3)
	srv, err := New(w.eng, Config{MaxBatch: 16, MaxAge: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 12
	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastEpoch uint64
			for !done.Load() {
				snap := srv.Snapshot()
				if e := snap.Epoch(); e < lastEpoch {
					errs <- "epoch went backwards"
					return
				} else {
					lastEpoch = e
				}
				for i := 0; i < 8; i++ {
					v := graph.VertexID(rng.Intn(testN))
					label := snap.Label(v)
					logits := snap.Embedding(v)
					if label != logits.ArgMax() {
						errs <- "snapshot label inconsistent with its own logits"
						return
					}
					if again := snap.Label(v); again != label {
						errs <- "non-repeatable read within one snapshot"
						return
					}
					if tk := snap.TopK(v, 3); len(tk) != 3 || tk[0].Class != label {
						errs <- "TopK head disagrees with Label"
						return
					}
				}
				// Exercise the convenience (current-epoch) read path too.
				srv.Label(graph.VertexID(rng.Intn(testN)))
			}
		}(int64(r + 100))
	}

	// Writer: 120 synchronous batches interleaved with admission-queue
	// traffic, all from this goroutine (batch generation is stateful).
	// Submitted updates are feature-only: they stay valid no matter how
	// the queue's flushes interleave with the synchronous edge batches.
stream:
	for i := 0; i < 120; i++ {
		if _, err := srv.Apply(w.batch(6)); err != nil {
			t.Error(err)
			break
		}
		for j := 0; j < 4; j++ {
			u := graph.VertexID(w.rng.Intn(testN))
			if err := srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: u, Features: randVec(w.rng, testFeatDim)}); err != nil {
				t.Error(err)
				break stream
			}
		}
	}
	srv.Flush()
	done.Store(true)
	wg.Wait()
	srv.Close()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiescent: the final epoch must agree with the engine exactly.
	snap := srv.Snapshot()
	for v := 0; v < testN; v++ {
		if got, want := snap.Label(graph.VertexID(v)), w.eng.Label(graph.VertexID(v)); got != want {
			t.Fatalf("vertex %d: final label %d, engine %d", v, got, want)
		}
	}
}

// TestSubscribeDeliversEveryFlip checks the trigger path: with a buffer
// large enough to never drop, subscribers see exactly the label flips the
// engine reported, and cancel/Close close the channel exactly once.
func TestSubscribeDeliversEveryFlip(t *testing.T) {
	w := newWorld(t, 4)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := srv.Subscribe(1 << 14)
	for i := 0; i < 60; i++ {
		if _, err := srv.Apply(w.batch(8)); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.LabelFlips == 0 {
		t.Fatal("workload produced no label flips; test is vacuous")
	}
	if st.Dropped != 0 {
		t.Fatalf("%d notifications dropped despite huge buffer", st.Dropped)
	}
	var got int64
	for len(ch) > 0 {
		lc := <-ch
		if lc.Old == lc.New {
			t.Fatalf("notification with no flip: %+v", lc)
		}
		got++
	}
	if got != st.LabelFlips {
		t.Fatalf("received %d notifications, engine reported %d flips", got, st.LabelFlips)
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	srv.Close() // must not double-close the cancelled channel
}

// TestAdmissionQueueCoalesces checks the size trigger batches Submit
// traffic and Flush drains the remainder.
func TestAdmissionQueueCoalesces(t *testing.T) {
	w := newWorld(t, 5)
	srv, err := New(w.eng, Config{MaxBatch: 16, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 64; i++ {
		u := graph.VertexID(w.rng.Intn(testN))
		if err := srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: u, Features: randVec(w.rng, testFeatDim)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.Batches != 4 || st.UpdatesApplied != 64 || st.Pending != 0 {
		t.Fatalf("after 64 submits: %+v, want 4 batches of 16", st)
	}
	u := graph.VertexID(w.rng.Intn(testN))
	if err := srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: u, Features: randVec(w.rng, testFeatDim)}); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Pending != 1 {
		t.Fatalf("pending = %d, want 1", st.Pending)
	}
	srv.Flush()
	if st := srv.Stats(); st.Batches != 5 || st.Pending != 0 {
		t.Fatalf("after flush: %+v, want 5 batches", st)
	}
}

// TestRejectedBatchPublishesNothing checks failure atomicity end to end:
// a batch that fails validation leaves the published epoch untouched.
func TestRejectedBatchPublishesNothing(t *testing.T) {
	w := newWorld(t, 6)
	var observed error
	srv, err := New(w.eng, Config{OnBatch: func(_ engine.BatchResult, err error) { observed = err }})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var existing [2]graph.VertexID
	for key := range w.edges {
		existing = key
		break
	}
	bad := []engine.Update{{Kind: engine.EdgeAdd, U: existing[0], V: existing[1], Weight: 1}}
	if _, err := srv.Apply(bad); err == nil {
		t.Fatal("duplicate edge-add accepted")
	}
	if observed == nil {
		t.Fatal("OnBatch did not observe the rejection")
	}
	if st := srv.Stats(); st.Epoch != 0 || st.Rejected != 1 || st.Batches != 0 {
		t.Fatalf("after rejection: %+v, want epoch 0", st)
	}
	if _, err := srv.Apply(w.batch(4)); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Epoch != 1 || st.Batches != 1 {
		t.Fatalf("after recovery: %+v, want epoch 1", st)
	}
}

// TestWritesAfterCloseFail checks Close semantics: writes fail, reads
// keep serving the final epoch.
func TestWritesAfterCloseFail(t *testing.T) {
	w := newWorld(t, 7)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(w.batch(4)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if err := srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: 0, Features: randVec(w.rng, testFeatDim)}); err != ErrClosed {
		t.Fatalf("Submit after close: %v, want ErrClosed", err)
	}
	if _, err := srv.Apply(w.batch(4)); err != ErrClosed {
		t.Fatalf("Apply after close: %v, want ErrClosed", err)
	}
	if snap := srv.Snapshot(); snap.Epoch() != 1 || snap.Label(0) < 0 {
		t.Fatal("reads broken after close")
	}
}

// TestCoalescedFlushSalvagesValidUpdates checks that one submitter's
// invalid update cannot discard other submitters' writes coalesced into
// the same admission-queue flush.
func TestCoalescedFlushSalvagesValidUpdates(t *testing.T) {
	w := newWorld(t, 9)
	srv, err := New(w.eng, Config{MaxBatch: 3, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var existing [2]graph.VertexID
	for key := range w.edges {
		existing = key
		break
	}
	before := w.eng.Embeddings().H[0][7].Clone()
	feat := randVec(w.rng, testFeatDim)
	// Flush of 3: valid feature, invalid duplicate edge-add, valid feature.
	srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: 7, Features: feat})
	srv.Submit(engine.Update{Kind: engine.EdgeAdd, U: existing[0], V: existing[1], Weight: 1})
	srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: 8, Features: randVec(w.rng, testFeatDim)})
	st := srv.Stats()
	if st.UpdatesApplied != 2 {
		t.Fatalf("salvaged %d updates, want 2 (stats %+v)", st.UpdatesApplied, st)
	}
	// Exactly 1 rejection: the bad singleton. The transient whole-flush
	// failure that triggered the salvage must not be double-counted.
	if st.Rejected != 1 || st.Batches != 2 || st.Pending != 0 {
		t.Fatalf("stats %+v, want 2 applied singletons and 1 rejection", st)
	}
	if got := w.eng.Embeddings().H[0][7]; got.MaxAbsDiff(feat) != 0 || got.MaxAbsDiff(before) == 0 {
		t.Fatal("valid feature update was not salvaged")
	}
}

// TestSubscribeAfterClose checks a late subscriber gets a closed channel
// instead of one that never delivers and never closes.
func TestSubscribeAfterClose(t *testing.T) {
	w := newWorld(t, 10)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ch, cancel := srv.Subscribe(8)
	if _, open := <-ch; open {
		t.Fatal("subscription after Close should be closed")
	}
	cancel() // must not panic
}

// TestEmptyFrontierSharesStorage checks the no-copy publication fast
// path: a batch touching no final-layer row advances the epoch without
// cloning the tables. GraphConv is not self-dependent, so a feature
// update on a vertex with no out-edges deterministically propagates
// nowhere: the final frontier is empty.
func TestEmptyFrontierSharesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New(4)
	// 2-hop path 0→1→2 so a change at 0 reaches the final layer of the
	// 2-layer model; vertex 3 stays edge-free.
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	features := make([]tensor.Vector, 4)
	for i := range features {
		features[i] = randVec(rng, testFeatDim)
	}
	model, err := gnn.NewWorkload("GC-S", []int{testFeatDim, 16, testClasses}, 11)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := gnn.Forward(g, model, features)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(g, model, emb, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pre := srv.Snapshot()
	res, err := srv.Apply([]engine.Update{{Kind: engine.FeatureUpdate, U: 3, Features: randVec(rng, testFeatDim)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalFrontier) != 0 {
		t.Fatalf("isolated-vertex feature update reached the final layer: %v", res.FinalFrontier)
	}
	post := srv.Snapshot()
	if post.Epoch() != pre.Epoch()+1 {
		t.Fatalf("epoch %d, want %d", post.Epoch(), pre.Epoch()+1)
	}
	if &post.logits[0] != &pre.logits[0] {
		t.Fatal("empty-frontier publication cloned the tables")
	}
	// And the copying path must not share storage.
	res, err = srv.Apply([]engine.Update{{Kind: engine.FeatureUpdate, U: 0, Features: randVec(rng, testFeatDim)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalFrontier) == 0 {
		t.Fatal("connected-vertex feature update should reach the final layer")
	}
	if cur := srv.Snapshot(); &cur.logits[0] == &post.logits[0] {
		t.Fatal("non-empty frontier publication shared storage")
	}
}

// TestTopKAgainstBruteForce cross-checks TopK against a full sort.
func TestTopKAgainstBruteForce(t *testing.T) {
	w := newWorld(t, 8)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	snap := srv.Snapshot()
	for v := 0; v < 32; v++ {
		logits := snap.Embedding(graph.VertexID(v))
		for k := 0; k <= testClasses+1; k++ {
			got := snap.TopK(graph.VertexID(v), k)
			want := bruteTopK(logits, k)
			if len(got) != len(want) {
				t.Fatalf("v=%d k=%d: got %v, want %v", v, k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("v=%d k=%d: got %v, want %v", v, k, got, want)
				}
			}
		}
	}
	if snap.TopK(graph.VertexID(testN), 3) != nil || snap.TopK(-1, 3) != nil {
		t.Fatal("TopK out of range should be nil")
	}
}

func bruteTopK(logits tensor.Vector, k int) []Ranked {
	if k <= 0 {
		return nil
	}
	all := make([]Ranked, len(logits))
	for c, s := range logits {
		all[c] = Ranked{Class: c, Score: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Class < all[j].Class
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
