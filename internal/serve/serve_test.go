package serve

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/tensor"
)

const (
	testN       = 300
	testFeatDim = 8
	testClasses = 6
)

// world is a bootstrapped engine plus the bookkeeping a single-threaded
// writer needs to generate valid random batches against it.
type world struct {
	eng   *engine.Ripple
	rng   *rand.Rand
	edges map[[2]graph.VertexID]bool
}

func newWorld(t testing.TB, seed int64) *world {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(testN)
	edges := map[[2]graph.VertexID]bool{}
	for len(edges) < testN*4 {
		u := graph.VertexID(rng.Intn(testN))
		v := graph.VertexID(rng.Intn(testN))
		if u == v || edges[[2]graph.VertexID{u, v}] {
			continue
		}
		if err := g.AddEdge(u, v, 0.5+rng.Float32()); err != nil {
			t.Fatal(err)
		}
		edges[[2]graph.VertexID{u, v}] = true
	}
	features := make([]tensor.Vector, testN)
	for i := range features {
		features[i] = randVec(rng, testFeatDim)
	}
	model, err := gnn.NewWorkload("GS-S", []int{testFeatDim, 16, testClasses}, seed)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := gnn.Forward(g, model, features)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(g, model, emb, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, rng: rng, edges: edges}
}

func randVec(rng *rand.Rand, d int) tensor.Vector {
	v := tensor.NewVector(d)
	for i := range v {
		v[i] = rng.Float32()*4 - 2
	}
	return v
}

// batch generates one valid random batch of size k: feature updates and
// edge adds/deletes, each edge slot touched at most once per batch.
func (w *world) batch(k int) []engine.Update {
	var batch []engine.Update
	touched := map[[2]graph.VertexID]bool{}
	for len(batch) < k {
		switch w.rng.Intn(3) {
		case 0: // feature update
			u := graph.VertexID(w.rng.Intn(testN))
			batch = append(batch, engine.Update{Kind: engine.FeatureUpdate, U: u, Features: randVec(w.rng, testFeatDim)})
		case 1: // edge add
			u := graph.VertexID(w.rng.Intn(testN))
			v := graph.VertexID(w.rng.Intn(testN))
			key := [2]graph.VertexID{u, v}
			if u == v || w.edges[key] || touched[key] {
				continue
			}
			w.edges[key] = true
			touched[key] = true
			batch = append(batch, engine.Update{Kind: engine.EdgeAdd, U: u, V: v, Weight: 0.5 + w.rng.Float32()})
		default: // edge delete
			if len(w.edges) == 0 {
				continue
			}
			for key := range w.edges {
				if touched[key] {
					break
				}
				delete(w.edges, key)
				touched[key] = true
				batch = append(batch, engine.Update{Kind: engine.EdgeDelete, U: key[0], V: key[1]})
				break
			}
		}
	}
	return batch
}

// TestSnapshotMatchesEngine checks that after a stream of batches the
// published snapshot agrees with the engine on every vertex. PageRows 16
// spreads the 300 test vertices over 19 pages (the last one partial), so
// the agreement scan crosses every page boundary.
func TestSnapshotMatchesEngine(t *testing.T) {
	w := newWorld(t, 1)
	srv, err := New(w.eng, Config{PageRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 40; i++ {
		if _, err := srv.Apply(w.batch(8)); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.Snapshot()
	if snap.Epoch() != 40 {
		t.Fatalf("epoch = %d, want 40", snap.Epoch())
	}
	final := w.eng.Embeddings().H[w.eng.Embeddings().L()]
	for v := 0; v < testN; v++ {
		id := graph.VertexID(v)
		if got, want := snap.Label(id), w.eng.Label(id); got != want {
			t.Fatalf("vertex %d: snapshot label %d, engine label %d", v, got, want)
		}
		if got := snap.Embedding(id); got.MaxAbsDiff(final[v]) != 0 {
			t.Fatalf("vertex %d: snapshot logits diverge from engine", v)
		}
	}
}

// TestSnapshotIsolation is the regression test for the core guarantee: a
// pinned snapshot never observes any part of a later batch — not a
// half-applied one, not a fully applied one. It runs once with the
// default (single-page at this scale) geometry and once with 8-row pages,
// where 50 publishes copy-on-write most of the 38-page table many times
// over: a pinned epoch must stay bit-identical even though later epochs
// share all of its untouched pages.
func TestSnapshotIsolation(t *testing.T) {
	for _, cfg := range []struct {
		name string
		conf Config
	}{
		{"default-pages", Config{}},
		{"8-row-pages", Config{PageRows: 8}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			w := newWorld(t, 2)
			srv, err := New(w.eng, cfg.conf)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			if _, err := srv.Apply(w.batch(8)); err != nil {
				t.Fatal(err)
			}

			pinned := srv.Snapshot()
			wantEpoch := pinned.Epoch()
			wantLabels := make([]int, testN)
			wantLogits := make([]tensor.Vector, testN)
			for v := 0; v < testN; v++ {
				wantLabels[v] = pinned.Label(graph.VertexID(v))
				wantLogits[v] = pinned.Embedding(graph.VertexID(v))
			}

			for i := 0; i < 50; i++ {
				if _, err := srv.Apply(w.batch(8)); err != nil {
					t.Fatal(err)
				}
			}

			if pinned.Epoch() != wantEpoch {
				t.Fatalf("pinned epoch mutated: %d → %d", wantEpoch, pinned.Epoch())
			}
			for v := 0; v < testN; v++ {
				id := graph.VertexID(v)
				if pinned.Label(id) != wantLabels[v] {
					t.Fatalf("vertex %d: pinned label mutated %d → %d", v, wantLabels[v], pinned.Label(id))
				}
				if pinned.Embedding(id).MaxAbsDiff(wantLogits[v]) != 0 {
					t.Fatalf("vertex %d: pinned logits mutated", v)
				}
			}
			if cur := srv.Snapshot(); cur.Epoch() != wantEpoch+50 {
				t.Fatalf("current epoch = %d, want %d", cur.Epoch(), wantEpoch+50)
			}
		})
	}
}

// TestConcurrentReadsDuringApplies runs 12 reader goroutines against a
// continuous stream of update batches (both the synchronous Apply path
// and the admission queue) and checks, inside every pinned snapshot, the
// epoch-consistency invariant label == argmax(logits). Run under -race
// this is the concurrency proof for the serving layer.
func TestConcurrentReadsDuringApplies(t *testing.T) {
	// 32-row pages put the 300 vertices on 10 pages so the racing readers
	// cross page boundaries while the writer copy-on-writes pages.
	w := newWorld(t, 3)
	srv, err := New(w.eng, Config{MaxBatch: 16, MaxAge: 500 * time.Microsecond, PageRows: 32})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 12
	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastEpoch uint64
			for !done.Load() {
				snap := srv.Snapshot()
				if e := snap.Epoch(); e < lastEpoch {
					errs <- "epoch went backwards"
					return
				} else {
					lastEpoch = e
				}
				for i := 0; i < 8; i++ {
					v := graph.VertexID(rng.Intn(testN))
					label := snap.Label(v)
					logits := snap.Embedding(v)
					if label != logits.ArgMax() {
						errs <- "snapshot label inconsistent with its own logits"
						return
					}
					if again := snap.Label(v); again != label {
						errs <- "non-repeatable read within one snapshot"
						return
					}
					if tk := snap.TopK(v, 3); len(tk) != 3 || tk[0].Class != label {
						errs <- "TopK head disagrees with Label"
						return
					}
				}
				// Exercise the convenience (current-epoch) read path too.
				srv.Label(graph.VertexID(rng.Intn(testN)))
			}
		}(int64(r + 100))
	}

	// Writer: 120 synchronous batches interleaved with admission-queue
	// traffic, all from this goroutine (batch generation is stateful).
	// Submitted updates are feature-only: they stay valid no matter how
	// the queue's flushes interleave with the synchronous edge batches.
stream:
	for i := 0; i < 120; i++ {
		if _, err := srv.Apply(w.batch(6)); err != nil {
			t.Error(err)
			break
		}
		for j := 0; j < 4; j++ {
			u := graph.VertexID(w.rng.Intn(testN))
			if err := srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: u, Features: randVec(w.rng, testFeatDim)}); err != nil {
				t.Error(err)
				break stream
			}
		}
	}
	srv.Flush()
	done.Store(true)
	wg.Wait()
	srv.Close()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiescent: the final epoch must agree with the engine exactly.
	snap := srv.Snapshot()
	for v := 0; v < testN; v++ {
		if got, want := snap.Label(graph.VertexID(v)), w.eng.Label(graph.VertexID(v)); got != want {
			t.Fatalf("vertex %d: final label %d, engine %d", v, got, want)
		}
	}
}

// TestSubscribeDeliversEveryFlip checks the trigger path: with a buffer
// large enough to never drop, subscribers see exactly the label flips the
// engine reported, and cancel/Close close the channel exactly once.
func TestSubscribeDeliversEveryFlip(t *testing.T) {
	w := newWorld(t, 4)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := srv.Subscribe(1 << 14)
	for i := 0; i < 60; i++ {
		if _, err := srv.Apply(w.batch(8)); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.LabelFlips == 0 {
		t.Fatal("workload produced no label flips; test is vacuous")
	}
	if st.Dropped != 0 {
		t.Fatalf("%d notifications dropped despite huge buffer", st.Dropped)
	}
	var got int64
	for len(ch) > 0 {
		lc := <-ch
		if lc.Old == lc.New {
			t.Fatalf("notification with no flip: %+v", lc)
		}
		got++
	}
	if got != st.LabelFlips {
		t.Fatalf("received %d notifications, engine reported %d flips", got, st.LabelFlips)
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	srv.Close() // must not double-close the cancelled channel
}

// TestAdmissionQueueCoalesces checks the size trigger batches Submit
// traffic and Flush drains the remainder.
func TestAdmissionQueueCoalesces(t *testing.T) {
	w := newWorld(t, 5)
	srv, err := New(w.eng, Config{MaxBatch: 16, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 64; i++ {
		u := graph.VertexID(w.rng.Intn(testN))
		if err := srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: u, Features: randVec(w.rng, testFeatDim)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.Batches != 4 || st.UpdatesApplied != 64 || st.Pending != 0 {
		t.Fatalf("after 64 submits: %+v, want 4 batches of 16", st)
	}
	u := graph.VertexID(w.rng.Intn(testN))
	if err := srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: u, Features: randVec(w.rng, testFeatDim)}); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Pending != 1 {
		t.Fatalf("pending = %d, want 1", st.Pending)
	}
	srv.Flush()
	if st := srv.Stats(); st.Batches != 5 || st.Pending != 0 {
		t.Fatalf("after flush: %+v, want 5 batches", st)
	}
}

// TestRejectedBatchPublishesNothing checks failure atomicity end to end:
// a batch that fails validation leaves the published epoch untouched.
func TestRejectedBatchPublishesNothing(t *testing.T) {
	w := newWorld(t, 6)
	var observed error
	srv, err := New(w.eng, Config{OnBatch: func(_ engine.BatchResult, err error) { observed = err }})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var existing [2]graph.VertexID
	for key := range w.edges {
		existing = key
		break
	}
	bad := []engine.Update{{Kind: engine.EdgeAdd, U: existing[0], V: existing[1], Weight: 1}}
	if _, err := srv.Apply(bad); err == nil {
		t.Fatal("duplicate edge-add accepted")
	}
	if observed == nil {
		t.Fatal("OnBatch did not observe the rejection")
	}
	if st := srv.Stats(); st.Epoch != 0 || st.Rejected != 1 || st.Batches != 0 {
		t.Fatalf("after rejection: %+v, want epoch 0", st)
	}
	if _, err := srv.Apply(w.batch(4)); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Epoch != 1 || st.Batches != 1 {
		t.Fatalf("after recovery: %+v, want epoch 1", st)
	}
}

// TestWritesAfterCloseFail checks Close semantics: writes fail, reads
// keep serving the final epoch.
func TestWritesAfterCloseFail(t *testing.T) {
	w := newWorld(t, 7)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(w.batch(4)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if err := srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: 0, Features: randVec(w.rng, testFeatDim)}); err != ErrClosed {
		t.Fatalf("Submit after close: %v, want ErrClosed", err)
	}
	if _, err := srv.Apply(w.batch(4)); err != ErrClosed {
		t.Fatalf("Apply after close: %v, want ErrClosed", err)
	}
	if snap := srv.Snapshot(); snap.Epoch() != 1 || snap.Label(0) < 0 {
		t.Fatal("reads broken after close")
	}
}

// TestCoalescedFlushSalvagesValidUpdates checks that one submitter's
// invalid update cannot discard other submitters' writes coalesced into
// the same admission-queue flush.
func TestCoalescedFlushSalvagesValidUpdates(t *testing.T) {
	w := newWorld(t, 9)
	srv, err := New(w.eng, Config{MaxBatch: 3, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var existing [2]graph.VertexID
	for key := range w.edges {
		existing = key
		break
	}
	before := w.eng.Embeddings().H[0][7].Clone()
	feat := randVec(w.rng, testFeatDim)
	// Flush of 3: valid feature, invalid duplicate edge-add, valid feature.
	srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: 7, Features: feat})
	srv.Submit(engine.Update{Kind: engine.EdgeAdd, U: existing[0], V: existing[1], Weight: 1})
	srv.Submit(engine.Update{Kind: engine.FeatureUpdate, U: 8, Features: randVec(w.rng, testFeatDim)})
	st := srv.Stats()
	if st.UpdatesApplied != 2 {
		t.Fatalf("salvaged %d updates, want 2 (stats %+v)", st.UpdatesApplied, st)
	}
	// Exactly 1 rejection: the bad singleton. The transient whole-flush
	// failure that triggered the salvage must not be double-counted.
	if st.Rejected != 1 || st.Batches != 2 || st.Pending != 0 {
		t.Fatalf("stats %+v, want 2 applied singletons and 1 rejection", st)
	}
	if got := w.eng.Embeddings().H[0][7]; got.MaxAbsDiff(feat) != 0 || got.MaxAbsDiff(before) == 0 {
		t.Fatal("valid feature update was not salvaged")
	}
}

// TestSubscribeAfterClose checks a late subscriber gets a closed channel
// instead of one that never delivers and never closes.
func TestSubscribeAfterClose(t *testing.T) {
	w := newWorld(t, 10)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ch, cancel := srv.Subscribe(8)
	if _, open := <-ch; open {
		t.Fatal("subscription after Close should be closed")
	}
	cancel() // must not panic
}

// TestEmptyFrontierSharesStorage checks the no-copy publication fast
// path: a batch touching no final-layer row advances the epoch without
// cloning the tables. GraphConv is not self-dependent, so a feature
// update on a vertex with no out-edges deterministically propagates
// nowhere: the final frontier is empty.
func TestEmptyFrontierSharesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New(4)
	// 2-hop path 0→1→2 so a change at 0 reaches the final layer of the
	// 2-layer model; vertex 3 stays edge-free.
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	features := make([]tensor.Vector, 4)
	for i := range features {
		features[i] = randVec(rng, testFeatDim)
	}
	model, err := gnn.NewWorkload("GC-S", []int{testFeatDim, 16, testClasses}, 11)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := gnn.Forward(g, model, features)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(g, model, emb, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 2-row pages over 4 vertices: 2 pages, so partial-copy sharing is
	// observable.
	srv, err := New(eng, Config{PageRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pre := srv.Snapshot()
	res, err := srv.Apply([]engine.Update{{Kind: engine.FeatureUpdate, U: 3, Features: randVec(rng, testFeatDim)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalFrontier) != 0 {
		t.Fatalf("isolated-vertex feature update reached the final layer: %v", res.FinalFrontier)
	}
	post := srv.Snapshot()
	if post.Epoch() != pre.Epoch()+1 {
		t.Fatalf("epoch %d, want %d", post.Epoch(), pre.Epoch()+1)
	}
	if &post.pages[0] != &pre.pages[0] {
		t.Fatal("empty-frontier publication cloned the page table")
	}
	// Empty-frontier publishes copy nothing and count toward neither side
	// of the sharing ratio (the clone design skipped copying here too).
	if st := srv.Stats(); st.PagesCopied != 0 || st.PagesShared != 0 {
		t.Fatalf("empty-frontier publish accounting: %d copied / %d shared, want 0 / 0", st.PagesCopied, st.PagesShared)
	}
	// And the copying path must copy the touched page — but only that one.
	res, err = srv.Apply([]engine.Update{{Kind: engine.FeatureUpdate, U: 0, Features: randVec(rng, testFeatDim)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalFrontier) == 0 {
		t.Fatal("connected-vertex feature update should reach the final layer")
	}
	cur := srv.Snapshot()
	touched := map[int]bool{}
	for _, v := range res.FinalFrontier {
		touched[int(v)>>cur.shift] = true
	}
	for p := range cur.pages {
		if touched[p] && cur.pages[p] == post.pages[p] {
			t.Fatalf("page %d holds frontier rows but was shared, not copied", p)
		}
		if !touched[p] && cur.pages[p] != post.pages[p] {
			t.Fatalf("page %d holds no frontier row but was copied", p)
		}
	}
	if st := srv.Stats(); st.PagesCopied != int64(len(touched)) {
		t.Fatalf("copying publish accounting: %d pages copied, want %d", st.PagesCopied, len(touched))
	}
}

// TestSalvagedFlushAggregatesResult is the regression test for the lossy
// salvage path: the aggregated BatchResult of a salvaged coalesced flush
// must carry every cost/reach field of the per-update applies — the same
// FinalFrontier set, elementwise-summed per-hop frontiers, summed kernel
// launches — not just the subset applyCoalesced used to merge.
func TestSalvagedFlushAggregatesResult(t *testing.T) {
	w := newWorld(t, 12)
	var singles []engine.BatchResult
	srv, err := New(w.eng, Config{OnBatch: func(res engine.BatchResult, err error) {
		if err == nil {
			singles = append(singles, res)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var existing [2]graph.VertexID
	for key := range w.edges {
		existing = key
		break
	}
	// Salvage flush: valid feature update, invalid duplicate edge-add,
	// valid feature update — forced through the admission queue's path.
	batch := []engine.Update{
		{Kind: engine.FeatureUpdate, U: existing[0], Features: randVec(w.rng, testFeatDim)},
		{Kind: engine.EdgeAdd, U: existing[0], V: existing[1], Weight: 1},
		{Kind: engine.FeatureUpdate, U: existing[1], Features: randVec(w.rng, testFeatDim)},
	}
	agg, err := srv.applyCoalesced(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(singles) != 2 {
		t.Fatalf("observed %d applied singletons, want 2", len(singles))
	}

	var wantFrontier []graph.VertexID
	var wantPerHop []int
	var wantLaunches int64
	var wantSimulated time.Duration
	var wantScatterHops int
	for _, one := range singles {
		wantFrontier = append(wantFrontier, one.FinalFrontier...)
		for len(wantPerHop) < len(one.FrontierPerHop) {
			wantPerHop = append(wantPerHop, 0)
		}
		for l, f := range one.FrontierPerHop {
			wantPerHop[l] += f
		}
		wantLaunches += one.KernelLaunches
		wantSimulated += one.SimulatedTime
		wantScatterHops += one.ScatterHopsParallel + one.ScatterHopsSerial
	}
	if len(wantFrontier) == 0 {
		t.Fatal("salvaged updates reached no final-layer row; test is vacuous")
	}

	asSet := func(vs []graph.VertexID) map[graph.VertexID]int {
		set := map[graph.VertexID]int{}
		for _, v := range vs {
			set[v]++
		}
		return set
	}
	gotSet, wantSet := asSet(agg.FinalFrontier), asSet(wantFrontier)
	if len(gotSet) != len(wantSet) {
		t.Fatalf("aggregated FinalFrontier %v, per-update applies reported %v", agg.FinalFrontier, wantFrontier)
	}
	for v, n := range wantSet {
		if gotSet[v] != n {
			t.Fatalf("aggregated FinalFrontier %v, per-update applies reported %v", agg.FinalFrontier, wantFrontier)
		}
	}
	if len(agg.FrontierPerHop) != len(wantPerHop) {
		t.Fatalf("aggregated FrontierPerHop %v, want %v", agg.FrontierPerHop, wantPerHop)
	}
	for l := range wantPerHop {
		if agg.FrontierPerHop[l] != wantPerHop[l] {
			t.Fatalf("aggregated FrontierPerHop %v, want %v", agg.FrontierPerHop, wantPerHop)
		}
	}
	if agg.KernelLaunches != wantLaunches {
		t.Fatalf("aggregated KernelLaunches %d, want %d", agg.KernelLaunches, wantLaunches)
	}
	if agg.SimulatedTime != wantSimulated {
		t.Fatalf("aggregated SimulatedTime %v, want %v", agg.SimulatedTime, wantSimulated)
	}
	if agg.Updates != 2 || len(agg.LabelChanges) != len(singles[0].LabelChanges)+len(singles[1].LabelChanges) {
		t.Fatalf("aggregated Updates/LabelChanges lost: %+v", agg)
	}
	if got := agg.ScatterHopsParallel + agg.ScatterHopsSerial; got != wantScatterHops || agg.ScatterShards != w.eng.Shards() {
		t.Fatalf("aggregated scatter accounting (hops %d, shards %d), want (%d, %d)",
			got, agg.ScatterShards, wantScatterHops, w.eng.Shards())
	}
}

// TestStatsSurfaceScatterCounters checks the engine's scatter parallelism
// is visible through Stats: the shard count is the engine's, and every
// propagation hop of every applied batch is accounted to exactly one of
// the parallel/serial paths.
func TestStatsSurfaceScatterCounters(t *testing.T) {
	w := newWorld(t, 21)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const layers = 2 // newWorld's model: [feat, 16, classes]
	for i := 0; i < 6; i++ {
		if _, err := srv.Apply(w.batch(8)); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.ScatterShards != w.eng.Shards() || st.ScatterShards < 1 {
		t.Fatalf("Stats.ScatterShards = %d, engine has %d", st.ScatterShards, w.eng.Shards())
	}
	if got := st.ScatterHopsParallel + st.ScatterHopsSerial; got != st.Batches*layers {
		t.Fatalf("scatter hops parallel %d + serial %d = %d, want batches(%d)×layers(%d)",
			st.ScatterHopsParallel, st.ScatterHopsSerial, got, st.Batches, layers)
	}
}

// TestBootstrapPublishesRemovedVertices checks epoch 0 is built from the
// engine's bulk label table: vertices tombstoned before serving starts
// publish -1, and every live vertex agrees with the engine.
func TestBootstrapPublishesRemovedVertices(t *testing.T) {
	w := newWorld(t, 13)
	const removed = 17
	if _, err := w.eng.RemoveVertex(removed); err != nil {
		t.Fatal(err)
	}
	// Drop the removed vertex's edges from the generator's shadow topology
	// so later batches stay valid.
	for key := range w.edges {
		if key[0] == removed || key[1] == removed {
			delete(w.edges, key)
		}
	}
	srv, err := New(w.eng, Config{PageRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	snap := srv.Snapshot()
	if snap.Epoch() != 0 {
		t.Fatalf("bootstrap epoch = %d, want 0", snap.Epoch())
	}
	if got := snap.Label(removed); got != -1 {
		t.Fatalf("removed vertex published label %d in epoch 0, want -1", got)
	}
	for v := 0; v < testN; v++ {
		if got, want := snap.Label(graph.VertexID(v)), w.eng.Label(graph.VertexID(v)); got != want {
			t.Fatalf("vertex %d: bootstrap label %d, engine label %d", v, got, want)
		}
	}
	// The tombstone survives the incremental rebuild path too.
	if _, err := srv.Apply(w.batch(8)); err != nil {
		t.Fatal(err)
	}
	if got := srv.Label(removed); got != -1 {
		t.Fatalf("removed vertex label %d after applies, want -1", got)
	}
}

// TestPageBoundaryReads exercises the paged read path directly around
// page boundaries, including a partial last page, and checks rebuild
// copies exactly the pages its frontier rows land on.
func TestPageBoundaryReads(t *testing.T) {
	const (
		rows    = 8
		n       = 2*rows + 3 // 19 vertices on 3 pages; last page holds 3 rows
		classes = 4
	)
	labels := make([]int32, n)
	final := make([]tensor.Vector, n)
	for v := 0; v < n; v++ {
		final[v] = tensor.NewVector(classes)
		for c := 0; c < classes; c++ {
			final[v][c] = float32(v*classes + c)
		}
		// Highest logit is the last class: labels are deterministic.
		labels[v] = classes - 1
	}
	snap := buildSnapshot(labels, final, classes, rows)
	if len(snap.pages) != 3 || len(snap.pages[2].labels) != 3 {
		t.Fatalf("page table: %d pages, last holds %d rows; want 3 pages, last 3 rows", len(snap.pages), len(snap.pages[len(snap.pages)-1].labels))
	}
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		if got := snap.Label(id); got != int(labels[v]) {
			t.Fatalf("vertex %d: label %d, want %d", v, got, labels[v])
		}
		if emb := snap.Embedding(id); emb.MaxAbsDiff(final[v]) != 0 {
			t.Fatalf("vertex %d: logits %v, want %v", v, emb, final[v])
		}
	}
	if snap.Label(-1) != -1 || snap.Label(n) != -1 || snap.Embedding(n) != nil || snap.TopK(n, 2) != nil {
		t.Fatal("out-of-range reads must be -1/nil")
	}

	// Rewrite the two rows straddling the first page boundary plus the
	// last row of the partial page: pages 0, 1 and 2 all get copied once.
	newRow := tensor.NewVector(classes)
	newRow[0] = 999 // argmax flips to class 0
	frontier := []graph.VertexID{rows - 1, rows, n - 1}
	for _, v := range frontier {
		final[v] = newRow
	}
	rebuilt := make([]Row, 0, len(frontier))
	for _, v := range frontier {
		rebuilt = append(rebuilt, Row{Vertex: v, Label: 0, Logits: final[v]})
	}
	next, copied := snap.rebuild(rebuilt)
	if copied != 3 {
		t.Fatalf("rebuild copied %d pages, want 3", copied)
	}
	for _, v := range frontier {
		if next.Label(v) != 0 || next.Embedding(v).MaxAbsDiff(newRow) != 0 {
			t.Fatalf("vertex %d not rewritten across page boundary", v)
		}
		if snap.Label(v) != classes-1 {
			t.Fatalf("rebuild mutated the source snapshot at vertex %d", v)
		}
	}
	// Rows sharing a page with a frontier row came along via the copy;
	// everything else must be untouched and shared.
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		isFrontier := id == rows-1 || id == rows || id == graph.VertexID(n-1)
		if !isFrontier && next.Label(id) != int(labels[v]) {
			t.Fatalf("vertex %d: label changed to %d without being in the frontier", v, next.Label(id))
		}
	}
	// A second rebuild touching only page 0 shares pages 1 and 2.
	next2, copied := next.rebuild([]Row{{Vertex: 0, Label: 0, Logits: final[0]}})
	if copied != 1 || next2.pages[1] != next.pages[1] || next2.pages[2] != next.pages[2] {
		t.Fatalf("single-page rebuild copied %d pages and broke sharing", copied)
	}
}

// TestCompactPreservesStateAndUnsharesPages checks Compact republishes
// identical data at the same epoch over pages shared with no prior
// snapshot, and that serving continues normally afterwards.
func TestCompactPreservesStateAndUnsharesPages(t *testing.T) {
	w := newWorld(t, 14)
	srv, err := New(w.eng, Config{PageRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 10; i++ {
		if _, err := srv.Apply(w.batch(6)); err != nil {
			t.Fatal(err)
		}
	}
	pre := srv.Snapshot()
	stats := srv.Compact()
	cur := srv.Snapshot()
	if cur.Epoch() != pre.Epoch() {
		t.Fatalf("compaction moved the epoch %d → %d", pre.Epoch(), cur.Epoch())
	}
	wantPages := (testN + 7) / 8
	if stats.PageRows != 8 || stats.Pages != wantPages {
		t.Fatalf("PageStats %+v, want 8-row pages, %d pages", stats, wantPages)
	}
	if stats.PagesCopied == 0 || stats.PagesShared == 0 {
		t.Fatalf("PageStats %+v: 10 small batches must both copy and share pages", stats)
	}
	for p := range cur.pages {
		if cur.pages[p] == pre.pages[p] {
			t.Fatalf("page %d still shared with the pre-compaction epoch", p)
		}
	}
	for v := 0; v < testN; v++ {
		id := graph.VertexID(v)
		if cur.Label(id) != pre.Label(id) || cur.Embedding(id).MaxAbsDiff(pre.Embedding(id)) != 0 {
			t.Fatalf("vertex %d changed across compaction", v)
		}
	}
	if _, err := srv.Apply(w.batch(6)); err != nil {
		t.Fatal(err)
	}
	if got := srv.Snapshot().Epoch(); got != pre.Epoch()+1 {
		t.Fatalf("post-compaction epoch = %d, want %d", got, pre.Epoch()+1)
	}
	srv.Close()
	srv.Compact() // safe on a closed server
}

// TestTopKAgainstBruteForce cross-checks TopK against a full sort.
func TestTopKAgainstBruteForce(t *testing.T) {
	w := newWorld(t, 8)
	srv, err := New(w.eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	snap := srv.Snapshot()
	for v := 0; v < 32; v++ {
		logits := snap.Embedding(graph.VertexID(v))
		for k := 0; k <= testClasses+1; k++ {
			got := snap.TopK(graph.VertexID(v), k)
			want := bruteTopK(logits, k)
			if len(got) != len(want) {
				t.Fatalf("v=%d k=%d: got %v, want %v", v, k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("v=%d k=%d: got %v, want %v", v, k, got, want)
				}
			}
		}
	}
	if snap.TopK(graph.VertexID(testN), 3) != nil || snap.TopK(-1, 3) != nil {
		t.Fatal("TopK out of range should be nil")
	}
}

func bruteTopK(logits tensor.Vector, k int) []Ranked {
	if k <= 0 {
		return nil
	}
	all := make([]Ranked, len(logits))
	for c, s := range logits {
		all[c] = Ranked{Class: c, Score: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Class < all[j].Class
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
