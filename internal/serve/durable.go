package serve

// The durability subsystem: everything the paper's serving state is —
// the accumulated product of every update batch since bootstrap — is
// expensive to rebuild, so a durable Server persists two things under
// Config.DataDir:
//
//   - A write-ahead log (internal/wal) of the admitted-batch sequence:
//     on the admission path each batch is validated, appended to the WAL
//     (framed with the cluster codec's batch encoding), and only then
//     applied. Exactly the batches that produced epochs are durable.
//   - Epoch-consistent checkpoints: the backend serializes its full
//     state (engine checkpoint, or the cluster's leader-coordinated
//     barrier manifest) at a published epoch, after which the WAL
//     segments that checkpoint covers are deleted — steady-state disk is
//     O(one checkpoint + batches since it).
//
// Open reverses the two: load the newest valid checkpoint, replay the
// WAL tail through the normal Backend.ApplyBatch path (re-deriving
// snapshots, stats and trigger state), and resume at the exact pre-crash
// epoch — bit-identical labels/logits to an uninterrupted run. A torn
// tail record (the crash interrupted an append) is detected by the WAL's
// CRC framing and discarded: that batch never produced an epoch, so
// discarding it is the correct history.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/engine"
	"ripple/internal/wal"
)

// validatingBackend is the Backend face a durable server requires for
// the WAL admission path: the batch must be proven admissible before it
// is logged, so the log holds exactly the batches that will apply.
type validatingBackend interface {
	// ValidateBatch accepts exactly the batches ApplyBatch would apply,
	// without touching state.
	ValidateBatch(batch []engine.Update) error
}

// durableBackend is the Backend face a durable server requires for
// checkpoints: a full-state serialization a future process can hand back
// through Open's load callback.
type durableBackend interface {
	// SaveCheckpoint serializes the backend's complete state at the
	// current (quiescent) epoch. For the cluster backend this runs the
	// leader-coordinated barrier checkpoint.
	SaveCheckpoint(w io.Writer) error
}

// Serve-level checkpoint files wrap the backend payload with an envelope
// recording the published epoch the state belongs to.
const ckptMagic = "RIPPLSCK"
const ckptVersion = 1
const ckptSuffix = ".ckpt"

// ErrBadCheckpointFile wraps envelope-level checkpoint corruption.
var ErrBadCheckpointFile = errors.New("serve: invalid checkpoint file")

func checkpointPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x%s", epoch, ckptSuffix))
}

// listCheckpoints returns the epoch of every checkpoint file in dir,
// newest first.
func listCheckpoints(dir string) []uint64 {
	return wal.ListEpochFiles(dir, "ckpt-", ckptSuffix)
}

// writeCheckpointHeader / readCheckpointHeader frame the backend payload.
func writeCheckpointHeader(w io.Writer, epoch uint64) error {
	var hdr [20]byte
	copy(hdr[:], ckptMagic)
	putU32 := func(off int, v uint32) {
		hdr[off], hdr[off+1], hdr[off+2], hdr[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	putU32(8, ckptVersion)
	putU32(12, uint32(epoch))
	putU32(16, uint32(epoch>>32))
	_, err := w.Write(hdr[:])
	return err
}

func readCheckpointHeader(r io.Reader) (uint64, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated header: %v", ErrBadCheckpointFile, err)
	}
	if string(hdr[:8]) != ckptMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadCheckpointFile)
	}
	u32 := func(off int) uint64 {
		return uint64(hdr[off]) | uint64(hdr[off+1])<<8 | uint64(hdr[off+2])<<16 | uint64(hdr[off+3])<<24
	}
	if v := u32(8); v != ckptVersion {
		return 0, fmt.Errorf("%w: version %d, want %d", ErrBadCheckpointFile, v, ckptVersion)
	}
	return u32(12) | u32(16)<<32, nil
}

// loadNewestCheckpoint hands the newest readable checkpoint payload to
// the load callback, falling back to older checkpoints on failure (a
// crash mid-checkpoint never leaves a half-written file — they go
// through wal.WriteFileAtomic — but a corrupted disk can). With no
// checkpoint file at all, load(nil) asks the caller for bootstrap state;
// if checkpoints EXIST but none loads, Open fails instead — the WAL
// behind them was truncated, so bootstrapping would silently serve a
// state missing the checkpointed history.
func loadNewestCheckpoint(dir string, load func(io.Reader) (Backend, error)) (uint64, Backend, bool, error) {
	epochs := listCheckpoints(dir)
	var firstErr error
	for _, epoch := range epochs {
		backend, err := func() (Backend, error) {
			f, err := os.Open(checkpointPath(dir, epoch))
			if err != nil {
				return nil, err
			}
			defer f.Close()
			hdrEpoch, err := readCheckpointHeader(f)
			if err != nil {
				return nil, err
			}
			if hdrEpoch != epoch {
				return nil, fmt.Errorf("%w: file named for epoch %d holds epoch %d", ErrBadCheckpointFile, epoch, hdrEpoch)
			}
			return load(f)
		}()
		if err == nil {
			return epoch, backend, true, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return 0, nil, false, fmt.Errorf("serve: %d checkpoint file(s) present but none loadable (newest: %w); refusing to serve bootstrap state over checkpointed history", len(epochs), firstErr)
	}
	backend, err := load(nil)
	if err != nil {
		return 0, nil, false, err
	}
	return 0, backend, false, nil
}

// Open builds a durable Server under cfg.DataDir: it loads the newest
// valid checkpoint (handing its payload to load; load(nil) must return
// the backend in bootstrap state), replays the WAL tail through the
// normal apply path — Config.OnBatch observes the replayed batches and
// Stats/trigger state are re-derived — and resumes at the exact pre-crash
// epoch. The returned server appends every subsequently admitted batch to
// the WAL before applying it.
//
// Recovering from a WAL with no checkpoint assumes load(nil) rebuilds the
// identical bootstrap state the log was written over (deterministic
// regeneration); a checkpoint removes that assumption.
func Open(load func(ckpt io.Reader) (Backend, error), cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if load == nil {
		return nil, errors.New("serve: Open requires a backend loader")
	}
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Open requires Config.DataDir")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating data dir: %w", err)
	}
	// A crash mid-checkpoint can strand a temp file; it holds nothing the
	// envelope protocol admits, so clear it.
	if strays, err := filepath.Glob(filepath.Join(cfg.DataDir, "*.tmp")); err == nil {
		for _, stray := range strays {
			os.Remove(stray)
		}
	}

	epoch, backend, hasCkpt, err := loadNewestCheckpoint(cfg.DataDir, load)
	if err != nil {
		return nil, err
	}
	closeBackend := func() {
		if c, ok := backend.(io.Closer); ok {
			c.Close()
		}
	}
	if _, ok := backend.(validatingBackend); !ok {
		closeBackend()
		return nil, errors.New("serve: backend cannot pre-validate batches; durability requires ValidateBatch")
	}
	if _, ok := backend.(durableBackend); !ok {
		closeBackend()
		return nil, errors.New("serve: backend cannot checkpoint; durability requires SaveCheckpoint")
	}
	s, err := newServer(backend, cfg, epoch)
	if err != nil {
		closeBackend()
		return nil, err
	}
	s.hasCkpt.Store(hasCkpt)
	s.lastCkpt.Store(epoch)

	w, err := wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Config{
		SegmentBytes: cfg.SegmentBytes,
		Fsync:        cfg.Fsync,
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	// Replay the tail: every admitted batch after the checkpoint, in
	// epoch order, through the normal apply path. s.wal is still nil, so
	// replayed batches are not re-appended.
	s.recovering.Store(true)
	err = w.Replay(epoch, s.replayRecord)
	s.recovering.Store(false)
	if err != nil {
		w.Close()
		s.Close()
		return nil, err
	}
	// A checkpoint that truncated every segment leaves the reopened log
	// with no records: raise its epoch floor so the next admitted batch
	// continues the pre-crash sequence instead of restarting at 1.
	w.AdvanceEpoch(s.pub.Current().epoch)
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
	return s, nil
}

// replayRecord re-applies one WAL record during recovery. The record was
// validated before it was logged, so a rejection here (or an epoch
// desync) means the log and the checkpoint disagree — recovery fails
// loudly rather than serving a diverged history.
func (s *Server) replayRecord(epoch uint64, payload []byte) error {
	batch, err := cluster.DecodeUpdates(payload)
	if err != nil {
		return fmt.Errorf("serve: wal record for epoch %d: %w", epoch, err)
	}
	if _, err := s.applyOne(batch); err != nil {
		return fmt.Errorf("serve: replaying wal record for epoch %d: %w", epoch, err)
	}
	if got := s.pub.Current().epoch; got != epoch {
		return fmt.Errorf("serve: wal replay desync: record for epoch %d published epoch %d", epoch, got)
	}
	s.recovered.Add(1)
	return nil
}

// CheckpointStats describes a completed checkpoint: the epoch it cut,
// its file size, and the WAL footprint left after truncation.
type CheckpointStats struct {
	Epoch       uint64 `json:"epoch"`
	Bytes       int64  `json:"bytes"`
	WALBytes    int64  `json:"wal_bytes"`
	WALSegments int    `json:"wal_segments"`
}

// Checkpoint serializes the backend's state at the current epoch,
// durably replaces the previous checkpoint, and truncates the WAL
// segments the new checkpoint covers. The state encoding is serialised
// with the write path (so the cut is epoch-consistent; for the cluster
// backend, via the leader's barrier), but the file write, fsync, rename
// and WAL truncation run off the write lock — admission proceeds while
// the checkpoint hits disk. If the current epoch is already checkpointed
// this is a no-op.
func (s *Server) Checkpoint() (CheckpointStats, error) {
	if s.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.checkpointLocked()
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.doCheckpoint(false)
}

// doCheckpoint is the pipelined checkpoint: phase 1 encodes the backend
// state into memory under a short mu hold (the only part that can stall
// admission — accounted in Stats.CheckpointStallNS); phase 2 writes,
// fsyncs and renames the file and truncates the WAL with no server lock
// held. Caller holds ckptMu (whole checkpoints are single-flight). final
// marks Close's last checkpoint, which must run although closed is set.
func (s *Server) doCheckpoint(final bool) (CheckpointStats, error) {
	s.mu.Lock()
	s.sinceCkpt = 0
	if s.wal == nil {
		s.mu.Unlock()
		return CheckpointStats{}, errors.New("serve: server is not durable (no data dir)")
	}
	if s.failed.Load() {
		s.mu.Unlock()
		return CheckpointStats{}, ErrBackendFailed
	}
	if s.closed && !final {
		s.mu.Unlock()
		return CheckpointStats{}, ErrClosed
	}
	epoch := s.pub.Current().epoch
	path := checkpointPath(s.cfg.DataDir, epoch)
	if epoch == s.lastCkpt.Load() && s.hasCkpt.Load() {
		st := s.wal.Stats()
		s.mu.Unlock()
		info, err := os.Stat(path)
		if err != nil {
			return CheckpointStats{}, err
		}
		return CheckpointStats{Epoch: epoch, Bytes: info.Size(), WALBytes: st.Bytes, WALSegments: st.Segments}, nil
	}
	start := time.Now()
	var buf bytes.Buffer
	err := writeCheckpointHeader(&buf, epoch)
	if err == nil {
		err = s.backend.(durableBackend).SaveCheckpoint(&buf) // interface checked at Open
	}
	s.ckptStall.Add(time.Since(start).Nanoseconds())
	s.mu.Unlock()
	if err != nil {
		return CheckpointStats{}, fmt.Errorf("serve: writing checkpoint: %w", err)
	}

	if err := s.writeCkpt(path, buf.Bytes()); err != nil {
		return CheckpointStats{}, fmt.Errorf("serve: writing checkpoint: %w", err)
	}
	// The checkpoint is durable; everything it covers is dead weight. The
	// WAL's own lock orders this against concurrent admissions appending.
	if err := s.wal.MarkCheckpoint(epoch); err != nil {
		return CheckpointStats{}, err
	}
	for _, old := range listCheckpoints(s.cfg.DataDir) {
		if old != epoch {
			os.Remove(checkpointPath(s.cfg.DataDir, old))
		}
	}
	s.hasCkpt.Store(true)
	s.lastCkpt.Store(epoch)

	st := s.wal.Stats()
	out := CheckpointStats{Epoch: epoch, WALBytes: st.Bytes, WALSegments: st.Segments}
	if info, err := os.Stat(path); err == nil {
		out.Bytes = info.Size()
	}
	return out, nil
}

// checkpointLocked is the serial baseline's checkpoint: everything —
// encode, file write, fsync, WAL truncation — under the caller's mu hold.
func (s *Server) checkpointLocked() (CheckpointStats, error) {
	s.sinceCkpt = 0
	if s.wal == nil {
		return CheckpointStats{}, errors.New("serve: server is not durable (no data dir)")
	}
	if s.failed.Load() {
		return CheckpointStats{}, ErrBackendFailed
	}
	epoch := s.pub.Current().epoch
	path := checkpointPath(s.cfg.DataDir, epoch)
	if epoch == s.lastCkpt.Load() && s.hasCkpt.Load() {
		st := s.wal.Stats()
		info, err := os.Stat(path)
		if err != nil {
			return CheckpointStats{}, err
		}
		return CheckpointStats{Epoch: epoch, Bytes: info.Size(), WALBytes: st.Bytes, WALSegments: st.Segments}, nil
	}

	start := time.Now()
	db := s.backend.(durableBackend) // interface checked at Open
	err := wal.WriteFileAtomic(path, func(w io.Writer) error {
		if err := writeCheckpointHeader(w, epoch); err != nil {
			return err
		}
		return db.SaveCheckpoint(w)
	})
	s.ckptStall.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return CheckpointStats{}, fmt.Errorf("serve: writing checkpoint: %w", err)
	}

	// The checkpoint is durable; everything it covers is dead weight.
	if err := s.wal.MarkCheckpoint(epoch); err != nil {
		return CheckpointStats{}, err
	}
	for _, old := range listCheckpoints(s.cfg.DataDir) {
		if old != epoch {
			os.Remove(checkpointPath(s.cfg.DataDir, old))
		}
	}
	s.hasCkpt.Store(true)
	s.lastCkpt.Store(epoch)

	st := s.wal.Stats()
	out := CheckpointStats{Epoch: epoch, WALBytes: st.Bytes, WALSegments: st.Segments}
	if info, err := os.Stat(path); err == nil {
		out.Bytes = info.Size()
	}
	return out, nil
}
