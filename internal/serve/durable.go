package serve

// The durability subsystem: everything the paper's serving state is —
// the accumulated product of every update batch since bootstrap — is
// expensive to rebuild, so a durable Server persists two things under
// Config.DataDir:
//
//   - A write-ahead log (internal/wal) of the admitted-batch sequence:
//     on the admission path each batch is validated, appended to the WAL
//     (framed with the cluster codec's batch encoding), and only then
//     applied. Exactly the batches that produced epochs are durable.
//   - Epoch-consistent checkpoints: the backend serializes its full
//     state (engine checkpoint, or the cluster's leader-coordinated
//     barrier manifest) at a published epoch, after which the WAL
//     segments that checkpoint covers are deleted — steady-state disk is
//     O(one checkpoint + batches since it).
//
// Open reverses the two: load the newest valid checkpoint, replay the
// WAL tail through the normal Backend.ApplyBatch path (re-deriving
// snapshots, stats and trigger state), and resume at the exact pre-crash
// epoch — bit-identical labels/logits to an uninterrupted run. A torn
// tail record (the crash interrupted an append) is detected by the WAL's
// CRC framing and discarded: that batch never produced an epoch, so
// discarding it is the correct history.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/engine"
	"ripple/internal/wal"
)

// validatingBackend is the Backend face a durable server requires for
// the WAL admission path: the batch must be proven admissible before it
// is logged, so the log holds exactly the batches that will apply.
type validatingBackend interface {
	// ValidateBatch accepts exactly the batches ApplyBatch would apply,
	// without touching state.
	ValidateBatch(batch []engine.Update) error
}

// durableBackend is the Backend face a durable server requires for
// checkpoints: a full-state serialization a future process can hand back
// through Open's load callback.
type durableBackend interface {
	// SaveCheckpoint serializes the backend's complete state at the
	// current (quiescent) epoch. For the cluster backend this runs the
	// leader-coordinated barrier checkpoint.
	SaveCheckpoint(w io.Writer) error
}

// Serve-level checkpoint files wrap the backend payload with an envelope
// recording the published epoch the state belongs to.
const ckptMagic = "RIPPLSCK"
const ckptVersion = 1
const ckptSuffix = ".ckpt"

// ErrBadCheckpointFile wraps envelope-level checkpoint corruption.
var ErrBadCheckpointFile = errors.New("serve: invalid checkpoint file")

func checkpointPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x%s", epoch, ckptSuffix))
}

// listCheckpoints returns the epoch of every checkpoint file in dir,
// newest first.
func listCheckpoints(dir string) []uint64 {
	return wal.ListEpochFiles(dir, "ckpt-", ckptSuffix)
}

// Delta checkpoints (see Config.FullCheckpointEvery) get their own
// envelope: a distinct magic, and a base epoch naming the checkpoint the
// delta chains onto — recovery refuses a delta whose base is not the
// state it just rebuilt. The suffix differs from ckptSuffix so the
// full-checkpoint listing never sees them.
const deltaCkptMagic = "RIPPLSDC"
const deltaCkptVersion = 1
const deltaCkptSuffix = ".delta"

func deltaCheckpointPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x%s", epoch, deltaCkptSuffix))
}

// listDeltaCheckpoints returns the epoch of every delta checkpoint file
// in dir, newest first.
func listDeltaCheckpoints(dir string) []uint64 {
	return wal.ListEpochFiles(dir, "ckpt-", deltaCkptSuffix)
}

func writeDeltaCheckpointHeader(w io.Writer, epoch, base uint64) error {
	var hdr [28]byte
	copy(hdr[:], deltaCkptMagic)
	putU32 := func(off int, v uint32) {
		hdr[off], hdr[off+1], hdr[off+2], hdr[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	putU32(8, deltaCkptVersion)
	putU32(12, uint32(epoch))
	putU32(16, uint32(epoch>>32))
	putU32(20, uint32(base))
	putU32(24, uint32(base>>32))
	_, err := w.Write(hdr[:])
	return err
}

func readDeltaCheckpointHeader(r io.Reader) (epoch, base uint64, err error) {
	var hdr [28]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: truncated delta header: %v", ErrBadCheckpointFile, err)
	}
	if string(hdr[:8]) != deltaCkptMagic {
		return 0, 0, fmt.Errorf("%w: bad delta magic", ErrBadCheckpointFile)
	}
	u32 := func(off int) uint64 {
		return uint64(hdr[off]) | uint64(hdr[off+1])<<8 | uint64(hdr[off+2])<<16 | uint64(hdr[off+3])<<24
	}
	if v := u32(8); v != deltaCkptVersion {
		return 0, 0, fmt.Errorf("%w: delta version %d, want %d", ErrBadCheckpointFile, v, deltaCkptVersion)
	}
	return u32(12) | u32(16)<<32, u32(20) | u32(24)<<32, nil
}

// writeCheckpointHeader / readCheckpointHeader frame the backend payload.
func writeCheckpointHeader(w io.Writer, epoch uint64) error {
	var hdr [20]byte
	copy(hdr[:], ckptMagic)
	putU32 := func(off int, v uint32) {
		hdr[off], hdr[off+1], hdr[off+2], hdr[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	putU32(8, ckptVersion)
	putU32(12, uint32(epoch))
	putU32(16, uint32(epoch>>32))
	_, err := w.Write(hdr[:])
	return err
}

func readCheckpointHeader(r io.Reader) (uint64, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated header: %v", ErrBadCheckpointFile, err)
	}
	if string(hdr[:8]) != ckptMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadCheckpointFile)
	}
	u32 := func(off int) uint64 {
		return uint64(hdr[off]) | uint64(hdr[off+1])<<8 | uint64(hdr[off+2])<<16 | uint64(hdr[off+3])<<24
	}
	if v := u32(8); v != ckptVersion {
		return 0, fmt.Errorf("%w: version %d, want %d", ErrBadCheckpointFile, v, ckptVersion)
	}
	return u32(12) | u32(16)<<32, nil
}

// loadNewestCheckpoint hands the newest readable checkpoint payload to
// the load callback, falling back to older checkpoints on failure (a
// crash mid-checkpoint never leaves a half-written file — they go
// through wal.WriteFileAtomic — but a corrupted disk can). With no
// checkpoint file at all, load(nil) asks the caller for bootstrap state;
// if checkpoints EXIST but none loads, Open fails instead — the WAL
// behind them was truncated, so bootstrapping would silently serve a
// state missing the checkpointed history.
func loadNewestCheckpoint(dir string, load func(io.Reader) (Backend, error)) (uint64, Backend, bool, error) {
	epochs := listCheckpoints(dir)
	var firstErr error
	for _, epoch := range epochs {
		backend, err := func() (Backend, error) {
			f, err := os.Open(checkpointPath(dir, epoch))
			if err != nil {
				return nil, err
			}
			defer f.Close()
			hdrEpoch, err := readCheckpointHeader(f)
			if err != nil {
				return nil, err
			}
			if hdrEpoch != epoch {
				return nil, fmt.Errorf("%w: file named for epoch %d holds epoch %d", ErrBadCheckpointFile, epoch, hdrEpoch)
			}
			return load(f)
		}()
		if err == nil {
			return epoch, backend, true, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return 0, nil, false, fmt.Errorf("serve: %d checkpoint file(s) present but none loadable (newest: %w); refusing to serve bootstrap state over checkpointed history", len(epochs), firstErr)
	}
	backend, err := load(nil)
	if err != nil {
		return 0, nil, false, err
	}
	return 0, backend, false, nil
}

// applyDeltaChain applies the delta checkpoints chained onto the full
// checkpoint at base, in epoch order. The chain is advisory: it exists
// only to make recovery cheap (bulk row restore instead of GNN
// re-propagation), so any break — a gap in base continuity, a truncated
// or corrupt file — just ends the walk there, and the WAL tail (which is
// only truncated at full checkpoints, so it reaches back to base) covers
// the rest through replay. The backend validates a delta completely
// before mutating state, so a rejected delta leaves the rebuilt state
// untouched. Unusable files and everything chained past them are deleted
// so the next recovery skips them. Returns the chain-end epoch and the
// number of deltas applied.
func applyDeltaChain(dir string, db deltaBackend, base uint64) (uint64, int) {
	epochs := listDeltaCheckpoints(dir) // newest first
	for i, j := 0, len(epochs)-1; i < j; i, j = i+1, j-1 {
		epochs[i], epochs[j] = epochs[j], epochs[i]
	}
	prev, applied := base, 0
	for i, epoch := range epochs {
		if epoch <= base {
			// Predates the full checkpoint we loaded — dead weight.
			os.Remove(deltaCheckpointPath(dir, epoch))
			continue
		}
		err := func() error {
			f, err := os.Open(deltaCheckpointPath(dir, epoch))
			if err != nil {
				return err
			}
			defer f.Close()
			hdrEpoch, hdrBase, err := readDeltaCheckpointHeader(f)
			if err != nil {
				return err
			}
			if hdrEpoch != epoch {
				return fmt.Errorf("%w: file named for epoch %d holds epoch %d", ErrBadCheckpointFile, epoch, hdrEpoch)
			}
			if hdrBase != prev {
				return fmt.Errorf("%w: delta for epoch %d chains onto epoch %d, want %d", ErrBadCheckpointFile, epoch, hdrBase, prev)
			}
			return db.LoadDeltaCheckpoint(f)
		}()
		if err != nil {
			// This delta and everything chained past it are unusable (their
			// baselines are unreachable). Remove them; replay covers the gap.
			for _, dead := range epochs[i:] {
				os.Remove(deltaCheckpointPath(dir, dead))
			}
			break
		}
		prev, applied = epoch, applied+1
	}
	return prev, applied
}

// Open builds a durable Server under cfg.DataDir: it loads the newest
// valid checkpoint (handing its payload to load; load(nil) must return
// the backend in bootstrap state), replays the WAL tail through the
// normal apply path — Config.OnBatch observes the replayed batches and
// Stats/trigger state are re-derived — and resumes at the exact pre-crash
// epoch. The returned server appends every subsequently admitted batch to
// the WAL before applying it.
//
// Recovering from a WAL with no checkpoint assumes load(nil) rebuilds the
// identical bootstrap state the log was written over (deterministic
// regeneration); a checkpoint removes that assumption.
func Open(load func(ckpt io.Reader) (Backend, error), cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if load == nil {
		return nil, errors.New("serve: Open requires a backend loader")
	}
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Open requires Config.DataDir")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating data dir: %w", err)
	}
	// Progress is observable from the first disk touch: the "recovering"
	// window a health endpoint reports covers checkpoint load and the
	// delta chain, not just WAL replay.
	progress := cfg.Recovery
	if progress != nil {
		progress.begin()
		defer progress.end()
	}
	// A crash mid-checkpoint can strand a temp file; it holds nothing the
	// envelope protocol admits, so clear it.
	if strays, err := filepath.Glob(filepath.Join(cfg.DataDir, "*.tmp")); err == nil {
		for _, stray := range strays {
			os.Remove(stray)
		}
	}

	epoch, backend, hasCkpt, err := loadNewestCheckpoint(cfg.DataDir, load)
	if err != nil {
		return nil, err
	}
	closeBackend := func() {
		if c, ok := backend.(io.Closer); ok {
			c.Close()
		}
	}
	if _, ok := backend.(validatingBackend); !ok {
		closeBackend()
		return nil, errors.New("serve: backend cannot pre-validate batches; durability requires ValidateBatch")
	}
	if _, ok := backend.(durableBackend); !ok {
		closeBackend()
		return nil, errors.New("serve: backend cannot checkpoint; durability requires SaveCheckpoint")
	}
	// Walk the delta chain on top of the full checkpoint. Backends without
	// the delta face never wrote deltas, so skipping them is exact; with no
	// full checkpoint any delta file is an orphan the chain walk would
	// refuse anyway.
	deltasApplied := 0
	if db, ok := backend.(deltaBackend); ok && hasCkpt {
		epoch, deltasApplied = applyDeltaChain(cfg.DataDir, db, epoch)
	}
	s, err := newServer(backend, cfg, epoch)
	if err != nil {
		closeBackend()
		return nil, err
	}
	s.hasCkpt.Store(hasCkpt)
	s.lastCkpt.Store(epoch)
	s.lastCkptDelta.Store(deltasApplied > 0)
	s.progress = progress
	if db, ok := backend.(deltaBackend); ok && cfg.FullCheckpointEvery > 1 {
		s.deltaCap = true
		// Enabled before WAL replay so replayed batches mark dirty rows —
		// the first delta after recovery must capture them.
		db.EnableDeltaTracking()
		if hasCkpt {
			// Continue the every-Nth-full cadence where the recovered chain
			// left off: the full counted as one checkpoint, each delta as
			// one more.
			s.ckptSeq.Store(int64(deltasApplied) + 1)
		}
	}

	w, err := wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Config{
		SegmentBytes: cfg.SegmentBytes,
		Fsync:        cfg.Fsync,
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	// Replay the tail: every admitted batch after the checkpoint chain, in
	// epoch order, through the normal apply path. s.wal is still nil, so
	// replayed batches are not re-appended. The serial baseline replays
	// read-decode-apply in sequence; the default path pipelines the stages.
	s.recovering.Store(true)
	if s.serial {
		err = w.Replay(epoch, s.replayRecord)
	} else {
		err = s.replayPipelined(w, epoch)
	}
	s.recovering.Store(false)
	if err != nil {
		w.Close()
		s.Close()
		return nil, err
	}
	// A checkpoint that truncated every segment leaves the reopened log
	// with no records: raise its epoch floor so the next admitted batch
	// continues the pre-crash sequence instead of restarting at 1.
	w.AdvanceEpoch(s.pub.Current().epoch)
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
	return s, nil
}

// replayRecord re-applies one WAL record during recovery. The record was
// validated before it was logged, so a rejection here (or an epoch
// desync) means the log and the checkpoint disagree — recovery fails
// loudly rather than serving a diverged history.
func (s *Server) replayRecord(epoch uint64, payload []byte) error {
	batch, err := cluster.DecodeUpdates(payload)
	if err != nil {
		return fmt.Errorf("serve: wal record for epoch %d: %w", epoch, err)
	}
	if _, err := s.applyOne(batch); err != nil {
		return fmt.Errorf("serve: replaying wal record for epoch %d: %w", epoch, err)
	}
	if got := s.pub.Current().epoch; got != epoch {
		return fmt.Errorf("serve: wal replay desync: record for epoch %d published epoch %d", epoch, got)
	}
	s.recovered.Add(1)
	if s.progress != nil {
		s.progress.note()
	}
	return nil
}

// replayReadAhead bounds the pipelined replay channels: how far the
// reader and decoder stages may run ahead of the applier.
const replayReadAhead = 64

// decodedRecord is one WAL record after the decode stage.
type decodedRecord struct {
	epoch uint64
	batch []engine.Update
	err   error
}

// replayPipelined replays the WAL tail as a three-stage pipeline: the
// WAL's reader goroutine streams raw records ahead (segment reads and
// CRC checks overlap with apply), a decode goroutine turns payloads into
// update batches, and this goroutine applies them in strict epoch order
// through the same checks replayRecord performs. Restart time becomes
// bounded by apply cost alone instead of read+decode+apply in sequence,
// and the bounded channels keep memory O(replayReadAhead) regardless of
// WAL size.
func (s *Server) replayPipelined(w *wal.Log, after uint64) error {
	records, stop, werr := w.StreamReplay(after, replayReadAhead)
	defer stop()
	done := make(chan struct{})
	defer close(done) // unblocks the decoder if apply fails mid-stream
	decoded := make(chan decodedRecord, replayReadAhead)
	go func() {
		defer close(decoded)
		for rec := range records {
			batch, err := cluster.DecodeUpdates(rec.Payload)
			if err != nil {
				err = fmt.Errorf("serve: wal record for epoch %d: %w", rec.Epoch, err)
			}
			select {
			case decoded <- decodedRecord{epoch: rec.Epoch, batch: batch, err: err}:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	for d := range decoded {
		if d.err != nil {
			return d.err
		}
		if _, err := s.applyOne(d.batch); err != nil {
			return fmt.Errorf("serve: replaying wal record for epoch %d: %w", d.epoch, err)
		}
		if got := s.pub.Current().epoch; got != d.epoch {
			return fmt.Errorf("serve: wal replay desync: record for epoch %d published epoch %d", d.epoch, got)
		}
		s.recovered.Add(1)
		if s.progress != nil {
			s.progress.note()
		}
	}
	// The applier drained everything the reader produced; surface a
	// read-side failure (torn mid-log record, I/O error) if one ended the
	// stream early.
	return werr()
}

// CheckpointStats describes a completed checkpoint: the epoch it cut,
// its file size, and the WAL footprint left after truncation.
type CheckpointStats struct {
	Epoch       uint64 `json:"epoch"`
	Bytes       int64  `json:"bytes"`
	WALBytes    int64  `json:"wal_bytes"`
	WALSegments int    `json:"wal_segments"`
	// Delta marks an incremental checkpoint (see
	// Config.FullCheckpointEvery); BaseEpoch is the checkpoint it chains
	// onto. Both are zero for full checkpoints.
	Delta     bool   `json:"delta,omitempty"`
	BaseEpoch uint64 `json:"base_epoch,omitempty"`
}

// wantDelta decides the next checkpoint's kind: an incremental delta
// when chains are enabled and capable, unless this is Close's final
// checkpoint (a restart after graceful shutdown should load one file), a
// write failure latched forceFull (the baseline already advanced past
// rows only a full can now cover), no full exists yet, or the
// every-Nth-full cadence lands here.
func (s *Server) wantDelta(final bool) bool {
	if final || !s.deltaCap || s.forceFull.Load() || !s.hasCkpt.Load() {
		return false
	}
	return s.ckptSeq.Load()%int64(s.cfg.FullCheckpointEvery) != 0
}

// finishCheckpoint records a durably written checkpoint file: the
// cadence counter, per-kind stats, and the newest-checkpoint identity
// that delta bases and the epoch-dedup fast path read.
func (s *Server) finishCheckpoint(epoch uint64, delta bool, size int64) {
	s.ckptSeq.Add(1)
	if delta {
		s.deltaCkpts.Add(1)
		s.lastDeltaB.Store(size)
	} else {
		s.forceFull.Store(false)
		s.fullCkpts.Add(1)
		s.lastFullB.Store(size)
		s.hasCkpt.Store(true)
	}
	s.lastCkptDelta.Store(delta)
	s.lastCkpt.Store(epoch)
}

// pruneCheckpoints removes every checkpoint file the full checkpoint at
// epoch supersedes: all deltas (checkpoints are single-flight and epochs
// increase, so every delta on disk chains to states at or before this
// full) and every other full. Running only after a full cut means a
// delta is never stranded without its base.
func (s *Server) pruneCheckpoints(epoch uint64) {
	for _, old := range listDeltaCheckpoints(s.cfg.DataDir) {
		os.Remove(deltaCheckpointPath(s.cfg.DataDir, old))
	}
	for _, old := range listCheckpoints(s.cfg.DataDir) {
		if old != epoch {
			os.Remove(checkpointPath(s.cfg.DataDir, old))
		}
	}
}

// Checkpoint serializes the backend's state at the current epoch,
// durably replaces the previous checkpoint, and truncates the WAL
// segments the new checkpoint covers. The state encoding is serialised
// with the write path (so the cut is epoch-consistent; for the cluster
// backend, via the leader's barrier), but the file write, fsync, rename
// and WAL truncation run off the write lock — admission proceeds while
// the checkpoint hits disk. If the current epoch is already checkpointed
// this is a no-op.
func (s *Server) Checkpoint() (CheckpointStats, error) {
	if s.serial {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.checkpointLocked(false)
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.doCheckpoint(false)
}

// doCheckpoint is the pipelined checkpoint: phase 1 encodes the backend
// state into memory under a short mu hold (the only part that can stall
// admission — accounted in Stats.CheckpointStallNS); phase 2 writes,
// fsyncs and renames the file and truncates the WAL with no server lock
// held. Caller holds ckptMu (whole checkpoints are single-flight). final
// marks Close's last checkpoint, which must run although closed is set.
func (s *Server) doCheckpoint(final bool) (CheckpointStats, error) {
	s.mu.Lock()
	s.sinceCkpt = 0
	if s.wal == nil {
		s.mu.Unlock()
		return CheckpointStats{}, errors.New("serve: server is not durable (no data dir)")
	}
	if s.failed.Load() {
		s.mu.Unlock()
		return CheckpointStats{}, ErrBackendFailed
	}
	if s.closed && !final {
		s.mu.Unlock()
		return CheckpointStats{}, ErrClosed
	}
	epoch := s.pub.Current().epoch
	if epoch == s.lastCkpt.Load() && s.hasCkpt.Load() {
		st := s.wal.Stats()
		wasDelta := s.lastCkptDelta.Load()
		s.mu.Unlock()
		path := checkpointPath(s.cfg.DataDir, epoch)
		if wasDelta {
			path = deltaCheckpointPath(s.cfg.DataDir, epoch)
		}
		info, err := os.Stat(path)
		if err != nil {
			return CheckpointStats{}, err
		}
		return CheckpointStats{Epoch: epoch, Delta: wasDelta, Bytes: info.Size(), WALBytes: st.Bytes, WALSegments: st.Segments}, nil
	}
	delta := s.wantDelta(final)
	base := s.lastCkpt.Load()
	path := checkpointPath(s.cfg.DataDir, epoch)
	if delta {
		path = deltaCheckpointPath(s.cfg.DataDir, epoch)
	}
	start := time.Now()
	var buf bytes.Buffer
	var err error
	if delta {
		if err = writeDeltaCheckpointHeader(&buf, epoch, base); err == nil {
			err = s.backend.(deltaBackend).SaveDeltaCheckpoint(&buf) // deltaCap checked the face at Open
		}
	} else {
		if err = writeCheckpointHeader(&buf, epoch); err == nil {
			err = s.backend.(durableBackend).SaveCheckpoint(&buf) // interface checked at Open
		}
	}
	if err == nil && s.deltaCap {
		// Either kind captured every row dirtied since the old baseline;
		// rows dirtied after this instant belong to the next delta.
		s.backend.(deltaBackend).ResetDeltaBaseline()
	}
	s.ckptStall.Add(time.Since(start).Nanoseconds())
	s.mu.Unlock()
	if err != nil {
		return CheckpointStats{}, fmt.Errorf("serve: writing checkpoint: %w", err)
	}

	if err := s.writeCkpt(path, buf.Bytes()); err != nil {
		// The baseline already advanced past the rows this file carried;
		// only a full checkpoint can cover them now.
		s.forceFull.Store(s.deltaCap)
		return CheckpointStats{}, fmt.Errorf("serve: writing checkpoint: %w", err)
	}
	s.finishCheckpoint(epoch, delta, int64(buf.Len()))
	if !delta {
		// The full checkpoint is durable; everything it covers is dead
		// weight. The WAL's own lock orders this against concurrent
		// admissions appending. Deltas deliberately do NOT truncate: the
		// WAL tail back to the last full checkpoint is the fallback if a
		// delta file is lost or corrupted.
		if err := s.wal.MarkCheckpoint(epoch); err != nil {
			return CheckpointStats{}, err
		}
		s.pruneCheckpoints(epoch)
	}

	st := s.wal.Stats()
	out := CheckpointStats{Epoch: epoch, Delta: delta, WALBytes: st.Bytes, WALSegments: st.Segments}
	if delta {
		out.BaseEpoch = base
	}
	if info, err := os.Stat(path); err == nil {
		out.Bytes = info.Size()
	}
	return out, nil
}

// checkpointLocked is the serial baseline's checkpoint: everything —
// encode, file write, fsync, WAL truncation — under the caller's mu hold.
func (s *Server) checkpointLocked(final bool) (CheckpointStats, error) {
	s.sinceCkpt = 0
	if s.wal == nil {
		return CheckpointStats{}, errors.New("serve: server is not durable (no data dir)")
	}
	if s.failed.Load() {
		return CheckpointStats{}, ErrBackendFailed
	}
	epoch := s.pub.Current().epoch
	if epoch == s.lastCkpt.Load() && s.hasCkpt.Load() {
		st := s.wal.Stats()
		path := checkpointPath(s.cfg.DataDir, epoch)
		wasDelta := s.lastCkptDelta.Load()
		if wasDelta {
			path = deltaCheckpointPath(s.cfg.DataDir, epoch)
		}
		info, err := os.Stat(path)
		if err != nil {
			return CheckpointStats{}, err
		}
		return CheckpointStats{Epoch: epoch, Delta: wasDelta, Bytes: info.Size(), WALBytes: st.Bytes, WALSegments: st.Segments}, nil
	}

	delta := s.wantDelta(final)
	base := s.lastCkpt.Load()
	path := checkpointPath(s.cfg.DataDir, epoch)
	if delta {
		path = deltaCheckpointPath(s.cfg.DataDir, epoch)
	}
	start := time.Now()
	var err error
	if delta {
		db := s.backend.(deltaBackend) // deltaCap checked the face at Open
		err = wal.WriteFileAtomic(path, func(w io.Writer) error {
			if err := writeDeltaCheckpointHeader(w, epoch, base); err != nil {
				return err
			}
			return db.SaveDeltaCheckpoint(w)
		})
	} else {
		db := s.backend.(durableBackend) // interface checked at Open
		err = wal.WriteFileAtomic(path, func(w io.Writer) error {
			if err := writeCheckpointHeader(w, epoch); err != nil {
				return err
			}
			return db.SaveCheckpoint(w)
		})
	}
	s.ckptStall.Add(time.Since(start).Nanoseconds())
	if err != nil {
		// The streaming write may have consumed dirty-row state before
		// failing; conservatively demand a full next time.
		s.forceFull.Store(s.deltaCap)
		return CheckpointStats{}, fmt.Errorf("serve: writing checkpoint: %w", err)
	}
	if s.deltaCap {
		s.backend.(deltaBackend).ResetDeltaBaseline()
	}

	var size int64
	if info, err := os.Stat(path); err == nil {
		size = info.Size()
	}
	s.finishCheckpoint(epoch, delta, size)
	if !delta {
		// The full checkpoint is durable; everything it covers is dead
		// weight. Deltas do not truncate the WAL (the tail is their
		// fallback).
		if err := s.wal.MarkCheckpoint(epoch); err != nil {
			return CheckpointStats{}, err
		}
		s.pruneCheckpoints(epoch)
	}

	st := s.wal.Stats()
	out := CheckpointStats{Epoch: epoch, Delta: delta, Bytes: size, WALBytes: st.Bytes, WALSegments: st.Segments}
	if delta {
		out.BaseEpoch = base
	}
	return out, nil
}
