package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ripple/internal/engine"
	"ripple/internal/obs"
)

// scrape hits the registry through real HTTP plumbing and returns the
// parsed, lint-clean exposition.
func scrape(t *testing.T, reg *obs.Registry) *obs.Exposition {
	t.Helper()
	ts := httptest.NewServer(reg)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.LintExposition(body)
	if err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}
	return exp
}

// TestServerMetricsConformance scrapes a live durable server and pins the
// acceptance bar: lint-clean Prometheus text with ≥30 series including ≥4
// pow2-bucket histograms, and counter values that agree exactly with the
// /stats snapshot the series were derived from.
func TestServerMetricsConformance(t *testing.T) {
	w := newDurWorld(t, 30, 120, 1, 1, 7)
	srv, err := Open(w.engineLoader(), Config{DataDir: t.TempDir(), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 6; i++ {
		if _, err := srv.Apply([]engine.Update{featUpdate(i, 0, i)}); err != nil {
			t.Fatal(err)
		}
	}

	exp := scrape(t, srv.MetricsRegistry())
	if n := exp.SeriesCount(); n < 30 {
		t.Errorf("series count = %d, want >= 30", n)
	}
	if h := exp.HistogramCount(); h < 4 {
		t.Errorf("histogram count = %d, want >= 4", h)
	}

	st := srv.Stats()
	parity := map[string]float64{
		"ripple_batches_total":     float64(st.Batches),
		"ripple_epoch":             float64(st.Epoch),
		"ripple_wal_appends_total": float64(st.WALAppends),
		"ripple_wal_fsyncs_total":  float64(st.WALFsyncs),
	}
	for name, want := range parity {
		got, ok := exp.Value(name)
		if !ok {
			t.Errorf("series %s missing", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v (stats parity)", name, got, want)
		}
	}
	// The end-to-end histogram must have seen every applied batch.
	if got, ok := exp.Value("ripple_batch_total_seconds_count"); !ok || got != float64(st.Batches) {
		t.Errorf("ripple_batch_total_seconds_count = %v (present=%v), want %d", got, ok, st.Batches)
	}
	// Registry is built once; a second scrape must re-snapshot, not replay.
	if _, err := srv.Apply([]engine.Update{featUpdate(7, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	exp2 := scrape(t, srv.MetricsRegistry())
	if got, _ := exp2.Value("ripple_batches_total"); got != float64(st.Batches+1) {
		t.Errorf("after one more batch, ripple_batches_total = %v, want %d", got, st.Batches+1)
	}
}

// TestFollowerMetricsConformance pins the same bar for the follower role.
func TestFollowerMetricsConformance(t *testing.T) {
	w := newDurWorld(t, 30, 120, 1, 1, 11)
	srv, err := Open(w.engineLoader(), Config{DataDir: t.TempDir(), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	repl, err := srv.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Follow(FollowerConfig{Leader: repl.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitReady(t, f)
	for i := 0; i < 4; i++ {
		if _, err := srv.Apply([]engine.Update{featUpdate(i, 0, i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFollowerEpoch(t, f, 4)

	exp := scrape(t, f.MetricsRegistry())
	if n := exp.SeriesCount(); n < 30 {
		t.Errorf("follower series count = %d, want >= 30", n)
	}
	if h := exp.HistogramCount(); h < 1 {
		t.Errorf("follower histogram count = %d, want >= 1", h)
	}
	st := f.Stats()
	if got, _ := exp.Value("ripple_follower_frames_applied_total"); got != float64(st.FramesApplied) {
		t.Errorf("ripple_follower_frames_applied_total = %v, want %d", got, st.FramesApplied)
	}
	if got, _ := exp.Value("ripple_follower_ready"); got != 1 {
		t.Errorf("ripple_follower_ready = %v, want 1", got)
	}
	if got, ok := exp.Value("ripple_follower_frame_apply_seconds_count"); !ok || got < 1 {
		t.Errorf("frame apply histogram count = %v (present=%v), want >= 1", got, ok)
	}
}

// TestBatchTraceTimeline pins the flight-recorder contract for a durable
// pipelined batch: every stage of the admission pipeline appears in the
// trace with a monotone, non-negative timeline.
func TestBatchTraceTimeline(t *testing.T) {
	w := newDurWorld(t, 30, 120, 1, 1, 13)
	srv, err := Open(w.engineLoader(), Config{DataDir: t.TempDir(), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const batches = 5
	for i := 0; i < batches; i++ {
		if _, err := srv.Apply([]engine.Update{featUpdate(i, 0, i)}); err != nil {
			t.Fatal(err)
		}
	}
	// recordTrace runs before the submitter's ack (the done-channel close),
	// so all five traces are visible here without waiting.
	traces := srv.Traces(0)
	if len(traces) != batches {
		t.Fatalf("recorded %d traces, want %d", len(traces), batches)
	}
	for i, tr := range traces {
		if tr.Epoch != uint64(i+1) {
			t.Errorf("trace %d: epoch %d, want %d (oldest-first order)", i, tr.Epoch, i+1)
		}
		if tr.Rejected {
			t.Errorf("trace %d: marked rejected", i)
		}
		if tr.Updates != 1 {
			t.Errorf("trace %d: updates %d, want 1", i, tr.Updates)
		}
		if tr.TotalNS() <= 0 {
			t.Errorf("trace %d: total %dns, want > 0", i, tr.TotalNS())
		}
		prev := int64(0)
		for s := obs.Stage(0); int(s) < obs.NumStages; s++ {
			sp := tr.Spans[s]
			if sp.StartNS < 0 || sp.EndNS < sp.StartNS {
				t.Errorf("trace %d stage %s: span [%d,%d] not well-formed", i, s, sp.StartNS, sp.EndNS)
			}
			if sp.StartNS < prev {
				t.Errorf("trace %d stage %s: starts at %d before previous stage end %d", i, s, sp.StartNS, prev)
			}
			prev = sp.EndNS
		}
		// A durable batch must actually spend time in the WAL stage.
		if sp := tr.Spans[obs.StageWALAppend]; sp.EndNS == sp.StartNS {
			t.Errorf("trace %d: zero-width wal_append span for a durable batch", i)
		}
	}
	if srv.Stats().TracesRecorded != batches {
		t.Errorf("TracesRecorded = %d, want %d", srv.Stats().TracesRecorded, batches)
	}
}

// TestTraceRingConcurrent hammers the recorder from 8 pipelined
// submitters while readers drain Traces() and scrape /metrics — run under
// -race this pins the seqlock ring and the scrape path as data-race free,
// and the validation below catches torn reads structurally.
func TestTraceRingConcurrent(t *testing.T) {
	w := newDurWorld(t, 40, 160, 1, 1, 17)
	srv, err := Open(w.engineLoader(), Config{DataDir: t.TempDir(), Fsync: true, TraceRing: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const goroutines, perG = 8, 12
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range srv.Traces(0) {
				for s := obs.Stage(0); int(s) < obs.NumStages; s++ {
					sp := tr.Spans[s]
					if sp.EndNS < sp.StartNS {
						t.Errorf("torn trace: seq %d stage %s span [%d,%d]", tr.Seq, s, sp.StartNS, sp.EndNS)
						return
					}
				}
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := srv.MetricsRegistry().Expose(); err != nil {
				t.Errorf("scrape during load: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				if _, err := srv.Apply([]engine.Update{featUpdate((g*5+i)%40, g, i)}); err != nil {
					t.Errorf("goroutine %d apply %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := srv.Stats().TracesRecorded; got != goroutines*perG {
		t.Errorf("TracesRecorded = %d, want %d", got, goroutines*perG)
	}
	// Ring capacity 64 < 96 recorded: snapshot holds the newest window.
	traces := srv.Traces(0)
	if len(traces) != 64 {
		t.Errorf("ring snapshot holds %d traces, want 64", len(traces))
	}
	// Slow-batch filtering: an impossible threshold must return nothing.
	if n := len(srv.Traces(time.Hour)); n != 0 {
		t.Errorf("Traces(1h) returned %d traces, want 0", n)
	}
}
